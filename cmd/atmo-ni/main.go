// Command atmo-ni runs the isolation and non-interference checker on
// the paper's A/B/V configuration (§4.3): arbitrary syscalls are fuzzed
// from the two isolated containers while the unwinding conditions —
// step consistency, output consistency, and the isolation invariants —
// are validated at every transition.
//
// Usage:
//
//	atmo-ni                     # default: 2000 steps, seed 1
//	atmo-ni -steps 5000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"atmosphere/internal/ni"
	"atmosphere/internal/verify"
)

func main() {
	steps := flag.Int("steps", 2000, "fuzzed transitions")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	fmt.Printf("building A/B/V scenario, fuzzing %d transitions (seed %d)...\n", *steps, *seed)
	f, err := ni.NewFuzzer(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Run(*steps); err != nil {
		fmt.Fprintf(os.Stderr, "checker failure: %v\n", err)
		os.Exit(1)
	}
	if len(f.SCViolations) > 0 {
		fmt.Fprintf(os.Stderr, "STEP CONSISTENCY VIOLATED (%d):\n", len(f.SCViolations))
		for _, v := range f.SCViolations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	acted := map[string]int{}
	for _, rec := range f.Trace {
		acted[rec.Domain]++
	}
	fmt.Printf("step consistency: OK across %d transitions (A:%d B:%d V:%d)\n",
		len(f.Trace), acted["A"], acted["B"], acted["V"])
	fmt.Printf("isolation invariants (memory_iso, endpoint_iso): held at every step\n")
	fmt.Printf("service V: handled %d requests, released %d pages, correctness held\n",
		f.V.Handled, f.V.Released)

	// Output consistency: replay and compare.
	fmt.Printf("checking output consistency (replaying seed %d)...\n", *seed)
	t2, err := ni.ReplayTrace(*seed, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if eq, diff := ni.TracesEqual(f.Trace, t2); !eq {
		fmt.Fprintf(os.Stderr, "OUTPUT CONSISTENCY VIOLATED: %s\n", diff)
		os.Exit(1)
	}
	fmt.Println("output consistency: OK (bit-identical replay)")
	fmt.Println("local respect: subsumed by step consistency in this configuration (§4.3)")

	if err := verify.TotalWF(f.S.K); err != nil {
		fmt.Fprintf(os.Stderr, "final state ill-formed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("final kernel state: well-formed")
}
