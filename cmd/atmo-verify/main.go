// Command atmo-verify runs the verification substitute: it discharges
// every per-function obligation (specification conformance plus the
// global well-formedness invariants) and prints per-function times —
// the repository's analogue of running Verus over the kernel (Figure 2
// and Table 2).
//
// Usage:
//
//	atmo-verify             # sequential discharge, per-function report
//	atmo-verify -threads 8  # parallel discharge
//	atmo-verify -module ipc # one module only
package main

import (
	"flag"
	"fmt"
	"os"

	"atmosphere/internal/verify"
)

func main() {
	threads := flag.Int("threads", 1, "parallel verification workers")
	module := flag.String("module", "", "restrict to one module (memory, page_table, process_manager, ipc, iommu)")
	flag.Parse()

	obls := verify.Obligations()
	if *module != "" {
		var filtered []verify.Obligation
		for _, o := range obls {
			if o.Module == *module {
				filtered = append(filtered, o)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "no obligations in module %q\n", *module)
			os.Exit(2)
		}
		obls = filtered
	}
	fmt.Printf("discharging %d obligations with %d worker(s)...\n\n", len(obls), *threads)
	timings, total, err := verify.RunObligations(obls, *threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-36s %-18s %12s\n", "function", "module", "time")
	for _, t := range timings {
		fmt.Printf("%-36s %-18s %12s\n", t.Name, t.Module, t.Elapsed.Round(100_000))
	}
	fmt.Printf("\nall obligations discharged in %s\n", total.Round(1_000_000))

	wd, _ := os.Getwd()
	if root, ok := verify.FindModuleRoot(wd); ok {
		if stats, err := verify.CountLoC(root); err == nil {
			fmt.Printf("proof-role lines: %d, exec-role lines: %d, ratio %.2f:1 (paper: 3.32:1)\n",
				stats.Proof, stats.Exec, stats.Ratio())
		}
	}
}
