// Command atmo-sim boots the simulated Atmosphere kernel and runs a
// small demonstration workload under full checking: containers,
// processes, memory, IPC, and a container kill, narrating each step and
// validating the specification and invariants after every syscall.
//
// Usage:
//
//	atmo-sim [-frames 8192] [-cores 4]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"atmosphere/internal/drivers"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/nic"
	"atmosphere/internal/nvme"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/profile"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

func main() {
	frames := flag.Int("frames", 8192, "physical frames (4 KiB)")
	cores := flag.Int("cores", 4, "simulated cores")
	traceOut := flag.String("trace", "", "write a Perfetto trace of the demo workload to this path")
	metricsOut := flag.String("metrics", "", "write a plain-text metrics dump to this path")
	profileOut := flag.String("profile", "", "write <prefix>.folded and <prefix>.pb.gz cycle profiles of the demo workload")
	flag.Parse()

	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" || *profileOut != "" {
		tracer = obs.NewTracer(0)
	}
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}

	c, init, err := verify.NewChecker(hw.Config{Frames: *frames, Cores: *cores, TLBSlots: 512})
	if err != nil {
		fail(err)
	}
	k := c.K
	k.AttachObs(tracer, registry)
	defer writeObs(tracer, registry, *traceOut, *metricsOut, *profileOut)
	say := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	must := func(r kernel.Ret, err error) kernel.Ret {
		if err != nil {
			fail(err)
		}
		if r.Errno != kernel.OK && r.Errno != kernel.EWOULDBLOCK {
			fail(fmt.Errorf("syscall failed: %v", r.Errno))
		}
		return r
	}

	say("booted: %d frames (%d MiB), %d cores; init thread %#x",
		*frames, *frames*4/1024, *cores, init)
	say("every syscall below is checked against its specification + all invariants")

	r := must(c.NewContainer(0, init, 400, []int{0, 1}))
	cntr := pm.Ptr(r.Vals[0])
	say("created container %#x (quota 400 pages, cores 0-1)", cntr)

	r = must(c.NewProcessIn(0, init, cntr))
	proc := pm.Ptr(r.Vals[0])
	r = must(c.NewThreadIn(0, init, proc, 1))
	worker := pm.Ptr(r.Vals[0])
	say("created process %#x with worker thread %#x on core 1", proc, worker)

	must(c.Mmap(1, worker, 0x400000, 16, hw.Size4K, pt.RW))
	say("worker mapped 16 pages at 0x400000 (container used %d/%d pages)",
		k.PM.Cntr(cntr).UsedPages, k.PM.Cntr(cntr).QuotaPages)

	table := k.PM.Proc(proc).PageTable
	k.Machine.MMU.Store(table.CR3(), 0x400000, []byte("written through the real MMU walk"))
	got, _ := k.Machine.MMU.Load(table.CR3(), 0x400000, 33)
	say("MMU round trip through the worker's page table: %q", got)

	// IPC between init and the worker.
	must(c.NewEndpoint(0, init, 0))
	ep := k.PM.Thrd(init).Endpoints[0]
	k.PM.Thrd(worker).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	must(c.Recv(1, worker, 0, kernel.RecvArgs{PageVA: 0x9000, EdptSlot: -1}))
	must(c.Mmap(0, init, 0x100000, 1, hw.Size4K, pt.RW))
	initTable := k.PM.Proc(k.PM.Thrd(init).OwningProc).PageTable
	k.Machine.MMU.Store(initTable.CR3(), 0x100000, []byte("shared page payload"))
	must(c.Send(0, init, 0, kernel.SendArgs{Regs: [4]uint64{42}, SendPage: true, PageVA: 0x100000}))
	got, _ = k.Machine.MMU.Load(table.CR3(), 0x9000, 19)
	say("IPC page transfer: worker reads %q at its 0x9000", got)

	free := k.Alloc.FreeCount4K()
	must(c.KillContainer(0, init, cntr))
	say("killed the container: %d pages harvested back to the free list",
		k.Alloc.FreeCount4K()-free)

	if err := verify.TotalWF(k); err != nil {
		fail(err)
	}
	say("final state: %d checked transitions, all specifications and invariants held", c.Transitions)
	say("cycles consumed: core0=%d core1=%d (simulated %0.f µs at 2.2 GHz)",
		k.Machine.Core(0).Clock.Cycles(), k.Machine.Core(1).Clock.Cycles(),
		float64(k.Machine.TotalCycles())/hw.ClockHz*1e6)

	driverDemo(say)
}

// driverDemo runs both user-level drivers on fresh kernels under a 10%
// fault plan and prints their counters: faults are absorbed by bounded
// retry (NVMe) and descriptor validation (NIC), never by panicking.
func driverDemo(say func(string, ...any)) {
	say("")
	say("driver robustness: both drivers under a seeded 10%% fault plan")

	senv, err := drivers.NewStorageEnv(drivers.CfgDriverLinked, 2048, 16)
	if err != nil {
		fail(err)
	}
	inj, err := faults.NewInjector(1, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.NvmeCmdError, Rate: 0.10},
	}}, senv.K.Machine.TotalCycles)
	if err != nil {
		fail(err)
	}
	senv.Dev.SetInjector(inj)
	const ios, batch = 256, 8
	lost := 0
	for done := 0; done < ios; done += batch {
		if err := senv.Drv.SubmitBatch(nvme.OpWrite, uint64(done%1024), batch); err != nil {
			fail(err)
		}
		for remaining := batch; remaining > 0; {
			n, err := senv.Drv.PollCompletions(remaining)
			remaining -= n
			switch {
			case err == nil:
			case errors.Is(err, drivers.ErrCmdFailed):
				lost++
				remaining--
			case errors.Is(err, drivers.ErrCmdTimeout):
			default:
				fail(err)
			}
		}
	}
	say("nvme driver: %s (injected errors: %d, lost after bounded retry: %d)",
		senv.Drv.Stats(), inj.Injected[faults.NvmeCmdError], lost)

	nenv, err := drivers.NewNetEnv(drivers.CfgDriverLinked, nic.NewGenerator(1, 16, 64))
	if err != nil {
		fail(err)
	}
	ninj, err := faults.NewInjector(1, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.NicDescCorrupt, Rate: 0.10},
	}}, nenv.K.Machine.TotalCycles)
	if err != nil {
		fail(err)
	}
	nenv.Dev.SetInjector(ninj)
	if _, err := nenv.RunRx(512, 32, func(*hw.Clock, []byte) bool { return false }); err != nil {
		fail(err)
	}
	say("nic driver:  %s (injected corruptions: %d)",
		nenv.Drv.Stats(), ninj.Injected[faults.NicDescCorrupt])
}

// writeObs exports the demo kernel's trace/metrics/profile to the
// flag-named files (nil sink or empty path skips that export).
func writeObs(t *obs.Tracer, m *obs.Registry, tracePath, metricsPath, profilePath string) {
	if t != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteTrace(f, t); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote trace (%d events) to %s\n", t.Len(), tracePath)
	}
	if m != nil && metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fail(err)
		}
		if err := m.WriteText(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote metrics to %s\n", metricsPath)
	}
	if t != nil && profilePath != "" {
		p, err := profile.WriteFiles(profilePath, t)
		if err != nil {
			fail(err)
		}
		fmt.Println(p.Describe(profilePath))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atmo-sim:", err)
	os.Exit(1)
}
