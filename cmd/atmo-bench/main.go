// Command atmo-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints measured values next to the
// paper's reported numbers.
//
// Usage:
//
//	atmo-bench                  # run everything
//	atmo-bench -experiment fig4 # one experiment
//	atmo-bench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atmosphere/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or comma list, or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	var run []bench.Experiment
	if *experiment == "all" {
		run = bench.All()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			run = append(run, e)
		}
	}
	for _, e := range run {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}
}
