// Command atmo-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints measured values next to the
// paper's reported numbers.
//
// Usage:
//
//	atmo-bench                  # run everything
//	atmo-bench -experiment fig4 # one experiment
//	atmo-bench -series multicore # the multicore scalability series
//	atmo-bench -series cluster   # the multi-machine chaos scenario
//	atmo-bench -list            # list experiment ids
//	atmo-bench -json -outdir .  # also write BENCH_<id>.json per experiment
//	atmo-bench -check bench_all_reference.txt  # exit nonzero on >10% regression
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"atmosphere/internal/bench"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/profile"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or comma list, or 'all')")
	series := flag.String("series", "", "named experiment series (multicore, batch, cluster, paper, all); overrides -experiment")
	list := flag.Bool("list", false, "list experiment ids")
	traceOut := flag.String("trace", "", "write a Perfetto trace of the instrumented experiments to this path")
	metricsOut := flag.String("metrics", "", "write a plain-text metrics dump to this path")
	profileOut := flag.String("profile", "", "write <prefix>.folded and <prefix>.pb.gz cycle profiles of the instrumented experiments")
	jsonOut := flag.Bool("json", false, "write BENCH_<id>.json per experiment (machine-readable trajectory)")
	outdir := flag.String("outdir", ".", "directory for BENCH_<id>.json files")
	check := flag.String("check", "", "reference dump to compare against (exit 1 on >10% regression)")
	tolerance := flag.Float64("tolerance", 10, "regression tolerance for -check, in percent")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" || *profileOut != "" || *jsonOut {
		tracer = obs.NewTracer(0)
	}
	if *metricsOut != "" {
		registry = obs.NewRegistry()
		// The accounting gauges ride the metrics dump: the ledger rebinds
		// per experiment boot, so the dump reflects the last kernel.
		bench.SetLedger(account.NewLedger())
	}
	bench.SetObs(tracer, registry)

	var run []bench.Experiment
	if *series != "" {
		var ok bool
		run, ok = bench.Series(*series)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown series %q (multicore, batch, cluster, paper, all)\n", *series)
			os.Exit(2)
		}
	} else if *experiment == "all" {
		run = bench.All()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			run = append(run, e)
		}
	}
	var results []bench.Result
	for _, e := range run {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		results = append(results, res)
		fmt.Println(res)
		if *jsonOut {
			var hash uint64
			if tracer != nil {
				hash = tracer.Hash()
			}
			path := filepath.Join(*outdir, "BENCH_"+res.ID+".json")
			err := writeFile(path, func(w io.Writer) error {
				return bench.WriteResultJSON(w, res, hash)
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if tracer != nil && *traceOut != "" {
		if err := writeFile(*traceOut, func(w io.Writer) error { return obs.WriteTrace(w, tracer) }); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace (%d events) to %s\n", tracer.Len(), *traceOut)
	}
	if registry != nil {
		if err := writeFile(*metricsOut, registry.WriteText); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *profileOut != "" {
		p, err := profile.WriteFiles(*profileOut, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(p.Describe(*profileOut))
	}

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		ref, err := bench.ParseReference(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		regressions := bench.CompareToReference(results, ref, *tolerance)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "atmo-bench: %d regression(s) beyond %.0f%% vs %s:\n",
				len(regressions), *tolerance, *check)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions beyond %.0f%% vs %s\n", *tolerance, *check)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
