// Command atmo-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints measured values next to the
// paper's reported numbers.
//
// Usage:
//
//	atmo-bench                  # run everything
//	atmo-bench -experiment fig4 # one experiment
//	atmo-bench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"atmosphere/internal/bench"
	"atmosphere/internal/obs"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or comma list, or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	traceOut := flag.String("trace", "", "write a Perfetto trace of the instrumented experiments to this path")
	metricsOut := flag.String("metrics", "", "write a plain-text metrics dump to this path")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}
	bench.SetObs(tracer, registry)

	var run []bench.Experiment
	if *experiment == "all" {
		run = bench.All()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			run = append(run, e)
		}
	}
	for _, e := range run {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}

	if tracer != nil {
		if err := writeFile(*traceOut, func(w io.Writer) error { return obs.WriteTrace(w, tracer) }); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace (%d events) to %s\n", tracer.Len(), *traceOut)
	}
	if registry != nil {
		if err := writeFile(*metricsOut, registry.WriteText); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
