// Command atmo-top runs a workload on the simulated kernel with the
// accounting ledger attached and prints a top(1)-style view: one row
// per container with its live object/user pages and the cycles billed
// to it, plus allocator-level totals (live pages, watermark,
// fragmentation) and the closure-audit tally. With -diff it runs the
// same seed twice — to the midpoint and to the end — and shows what
// each container gained or lost over the second half; determinism
// makes the midpoint an exact prefix of the full run.
//
// Usage:
//
//	atmo-top -workload chaos -seed 7 -ops 400
//	atmo-top -workload kvstore -ops 300 -diff
//	atmo-top -workload ipc -ops 500
//	atmo-top -workload multicore -cores 4 -ops 200
//	atmo-top -workload multicore -cores 4 -locks            # contention snapshot
//	atmo-top -workload multicore -mc ipc -cores 4 -locks    # sharded ipc frontiers
//	atmo-top -workload multicore -cores 4 -locks -by-class  # one row per lock class
//	atmo-top -workload multicore -cores 4 -locks -diff      # second-half contention delta
package main

import (
	"flag"
	"fmt"
	"os"

	"atmosphere/internal/bench"
	"atmosphere/internal/drivers"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/contend"
	"atmosphere/internal/obs/profile"
	"atmosphere/internal/pm"
)

func main() {
	workload := flag.String("workload", "kvstore", "workload: kvstore, chaos, ipc, multicore")
	seed := flag.Uint64("seed", 1, "workload seed")
	ops := flag.Int("ops", 300, "operations (kv ops or ipc round trips; per-core mmaps for multicore)")
	cores := flag.Int("cores", 4, "core count for the multicore workload")
	mc := flag.String("mc", "alloc", "multicore sub-workload: ipc, kvstore, alloc")
	diff := flag.Bool("diff", false, "show the per-container delta between ops/2 and ops")
	locks := flag.Bool("locks", false, "print the contention snapshot (per-lock waits, attribution, run-queue delays) instead of the accounting view")
	byClass := flag.Bool("by-class", false, "with -locks: roll the per-lock table up to one row per lock class (big, container, endpoint)")
	profileOut := flag.String("profile", "", "also write <prefix>.folded and <prefix>.pb.gz cycle profiles")
	flag.Parse()

	full, tr, cobs, err := run(*workload, *mc, *seed, *ops, *cores)
	if err != nil {
		fail(err)
	}
	switch {
	case *locks && *diff:
		_, _, half, err := run(*workload, *mc, *seed, *ops/2, *cores)
		if err != nil {
			fail(err)
		}
		printLocksDiff(half, cobs, *ops)
	case *locks:
		printLocks(cobs, *ops, *byClass)
	case *diff:
		half, _, _, err := run(*workload, *mc, *seed, *ops/2, *cores)
		if err != nil {
			fail(err)
		}
		printDiff(half, full, *ops)
	default:
		printSnapshot(full, *ops)
	}
	if *profileOut != "" {
		p, err := profile.WriteFiles(*profileOut, tr)
		if err != nil {
			fail(err)
		}
		fmt.Println(p.Describe(*profileOut))
	}
}

// run executes the workload with a fresh ledger + tracer + contention
// observatory attached and returns all three after a final closure
// audit. Each run gets its own observatory (like the ledger), so the
// -diff halves never share frontier registrations.
func run(workload, mc string, seed uint64, ops, cores int) (*account.Ledger, *obs.Tracer, *contend.Observatory, error) {
	l := account.NewLedger()
	tr := obs.NewTracer(0)
	cobs := contend.New()
	var err error
	switch workload {
	case "multicore":
		// One sub-workload of the multicore series, chosen by -mc. For
		// alloc the per-core page caches are on, so the "page-cache"
		// pseudo-container row shows the frames parked in per-core
		// caches at the end of the run; for ipc the contention snapshot
		// shows the per-container/per-endpoint sharded frontiers.
		bench.SetContention(cobs)
		_, _, _, err = bench.RunMulticore(mc, cores, seed, ops, tr, nil, l)
		bench.SetContention(nil)
	case "kvstore":
		_, err = drivers.RunChaosKV(drivers.ChaosConfig{
			Seed: seed, Ops: ops, Trace: tr, Ledger: l, Contend: cobs,
		})
	case "chaos":
		_, err = drivers.RunChaosKV(drivers.ChaosConfig{
			Seed: seed, Ops: ops, Plan: drivers.DefaultChaosPlan(), Trace: tr, Ledger: l, Contend: cobs,
		})
	case "ipc":
		err = runIPC(l, tr, cobs, ops)
	default:
		return nil, nil, nil, fmt.Errorf("unknown workload %q (kvstore, chaos, ipc, multicore)", workload)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	if err := l.Audit(); err != nil {
		return nil, nil, nil, fmt.Errorf("closure audit failed: %w", err)
	}
	return l, tr, cobs, nil
}

// runIPC is the Table 3 call/reply ping-pong with accounting attached.
func runIPC(l *account.Ledger, tr *obs.Tracer, cobs *contend.Observatory, rounds int) error {
	k, init, err := kernel.Boot(hw.Config{Frames: 1024, Cores: 2, TLBSlots: 64})
	if err != nil {
		return err
	}
	k.AttachObs(tr, nil)
	k.AttachLedger(l)
	k.AttachContention(cobs)
	r := k.SysNewThread(0, init, 0)
	if r.Errno != kernel.OK {
		return fmt.Errorf("new_thread: %v", r.Errno)
	}
	server := pm.Ptr(r.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	if re.Errno != kernel.OK {
		return fmt.Errorf("endpoint: %v", re.Errno)
	}
	k.PM.Thrd(server).Endpoints[0] = pm.Ptr(re.Vals[0])
	k.PM.EndpointIncRef(pm.Ptr(re.Vals[0]), 1)
	if r := k.SysRecv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return fmt.Errorf("park: %v", r.Errno)
	}
	for i := 0; i < rounds; i++ {
		if r := k.SysCall(0, init, 0, kernel.SendArgs{Regs: [4]uint64{uint64(i)}}); r.Errno != kernel.EWOULDBLOCK {
			return fmt.Errorf("call: %v", r.Errno)
		}
		if r := k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return fmt.Errorf("reply_recv: %v", r.Errno)
		}
	}
	return nil
}

func printSnapshot(l *account.Ledger, ops int) {
	rows := l.Rows()
	var totalCycles uint64
	for _, r := range rows {
		totalCycles += r.Cycles
	}
	fmt.Printf("%-16s %8s %8s %8s %14s %6s\n", "CONTAINER", "OBJ", "USER", "PAGES", "CYCLES", "CYC%")
	for _, r := range rows {
		pct := 0.0
		if totalCycles > 0 {
			pct = 100 * float64(r.Cycles) / float64(totalCycles)
		}
		fmt.Printf("%-16s %8d %8d %8d %14d %5.1f%%\n",
			r.Name, r.ObjPages, r.UserPages, r.Pages(), r.Cycles, pct)
	}
	audits, fails := l.AuditStats()
	fmt.Printf("\n%d ops: %d pages live (watermark %d), fragmentation %d%%\n",
		ops, l.LivePages(), l.Watermark(), l.FragPercent())
	fmt.Printf("audits %d (failed %d), attribution anomalies %d\n",
		audits, fails, l.Anomalies())
}

func printDiff(half, full *account.Ledger, ops int) {
	halfRows := make(map[string]account.ContainerRow)
	for _, r := range half.Rows() {
		halfRows[r.Name] = r
	}
	fmt.Printf("delta over ops %d..%d:\n", ops/2, ops)
	fmt.Printf("%-16s %10s %14s\n", "CONTAINER", "ΔPAGES", "ΔCYCLES")
	for _, r := range full.Rows() {
		h := halfRows[r.Name]
		dp := int64(r.Pages()) - int64(h.Pages())
		dc := int64(r.Cycles) - int64(h.Cycles)
		if dp == 0 && dc == 0 {
			continue
		}
		fmt.Printf("%-16s %+10d %+14d\n", r.Name, dp, dc)
	}
	fmt.Printf("\nlive pages %d -> %d (watermark %d -> %d)\n",
		half.LivePages(), full.LivePages(), half.Watermark(), full.Watermark())
}

// printLocks renders the contention snapshot: the observatory's full
// report (top-contended locks, wait attribution, run-queue delays,
// ordering status). With byClass the per-lock table is rolled up to one
// row per lock class — the readable view once sharding multiplies the
// frontier count. Every section is sorted, so equal runs print
// byte-identically — golden tests diff this output directly.
func printLocks(o *contend.Observatory, ops int, byClass bool) {
	fmt.Printf("contention after %d ops:\n", ops)
	if !byClass {
		if err := o.WriteReport(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println("== contention: locks by class ==")
	if err := o.WriteLocksByClass(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println("== contention: attribution ==")
	if err := o.WriteAttribution(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println("== contention: scheduler ==")
	if err := o.WriteSched(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println("== contention: order ==")
	if err := o.WriteOrder(os.Stdout); err != nil {
		fail(err)
	}
}

// printLocksDiff shows what each lock frontier accumulated over the
// second half of the run: the half-ops observatory is an exact prefix
// of the full one (determinism), so the deltas are exact.
func printLocksDiff(half, full *contend.Observatory, ops int) {
	halfRows := make(map[string]contend.LockSummary)
	for _, s := range half.Summary() {
		halfRows[s.Ident] = s
	}
	fmt.Printf("contention delta over ops %d..%d:\n", ops/2, ops)
	fmt.Printf("%-24s %10s %10s %14s\n", "LOCK", "ΔACQ", "ΔCONTEND", "ΔWAITCYCLES")
	for _, s := range full.Summary() {
		h := halfRows[s.Ident]
		fmt.Printf("%-24s %+10d %+10d %+14d\n", s.Ident,
			int64(s.Acquisitions)-int64(h.Acquisitions),
			int64(s.Contended)-int64(h.Contended),
			int64(s.WaitCycles)-int64(h.WaitCycles))
	}
	fmt.Printf("\nsteals %d -> %d, runq delays observed %d -> %d\n",
		half.Steals(), full.Steals(),
		half.RunqDelays().Count(), full.RunqDelays().Count())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atmo-top:", err)
	os.Exit(1)
}
