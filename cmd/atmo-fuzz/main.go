// Command atmo-fuzz drives long randomized syscall traces through the
// fully-checked kernel — every transition validated against its
// specification and the complete invariant suite — and reports coverage
// statistics. It is the repository's syzkaller-shaped confidence tool:
// where atmo-verify discharges curated obligations, atmo-fuzz searches
// for states the curated scenarios miss.
//
// Usage:
//
//	atmo-fuzz                      # 2000 steps, seed 1
//	atmo-fuzz -steps 10000 -seed 9
//	atmo-fuzz -seeds 8             # 8 independent seeds
//	atmo-fuzz -chaos -seeds 4      # randomized traces under a fault plan
//
// With -chaos each trace runs on a raw kernel with a seeded fault
// injector armed — allocator exhaustion on every allocation site,
// dropped interrupt edges, spurious interrupts — and the full invariant
// suite (verify.TotalWF) is checked after every transition. The report
// is the invariant pass rate plus the injector's deterministic trace
// hash, so a failing seed reproduces bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

type stats struct {
	ops    map[string]int
	errnos map[string]int
}

func main() {
	steps := flag.Int("steps", 2000, "transitions per seed")
	seed := flag.Uint64("seed", 1, "first seed")
	seeds := flag.Int("seeds", 1, "number of independent seeds")
	chaos := flag.Bool("chaos", false, "inject faults and report the invariant pass rate")
	traceOut := flag.String("trace", "", "with -chaos: write the last seed's Perfetto trace to this path")
	metricsOut := flag.String("metrics", "", "with -chaos: write a metrics dump to this path")
	flag.Parse()

	if *chaos {
		runChaos(*seed, *seeds, *steps, *traceOut, *metricsOut)
		return
	}
	if *traceOut != "" || *metricsOut != "" {
		fmt.Fprintln(os.Stderr, "atmo-fuzz: -trace/-metrics require -chaos")
		os.Exit(2)
	}

	total := stats{ops: map[string]int{}, errnos: map[string]int{}}
	transitions := 0
	for s := 0; s < *seeds; s++ {
		n, err := fuzzOne(*seed+uint64(s), *steps, &total)
		transitions += n
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d FAILED after %d transitions: %v\n",
				*seed+uint64(s), n, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: %d checked transitions, all specs and invariants held\n",
			*seed+uint64(s), n)
	}
	fmt.Printf("\ntotal: %d checked transitions\n\nsyscall coverage:\n", transitions)
	printSorted(total.ops)
	fmt.Println("\nerrno coverage:")
	printSorted(total.errnos)
}

func printSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %7d\n", k, m[k])
	}
}

// fuzzOne runs one seed's trace on a fresh checked kernel.
func fuzzOne(seed uint64, steps int, st *stats) (int, error) {
	c, init, err := verify.NewChecker(hw.Config{Frames: 8192, Cores: 4, TLBSlots: 256})
	if err != nil {
		return 0, err
	}
	r := hw.NewRand(seed)
	type actor struct {
		tid  pm.Ptr
		core int
	}
	actors := []actor{{init, 0}}
	var containers []pm.Ptr
	nextVA := uint64(0x10000000)

	// A shared rendezvous endpoint in slot 0 of every actor, installed
	// at thread creation (boot-style channel setup): blocked senders
	// and receivers pair up over time instead of stranding forever.
	if ret, e := c.NewEndpoint(0, init, 0); e != nil || ret.Errno != kernel.OK {
		return 0, fmt.Errorf("rendezvous endpoint: %v %v", ret.Errno, e)
	}
	rendezvous := c.K.PM.Thrd(init).Endpoints[0]
	adopt := func(tid pm.Ptr) {
		if _, alive := c.K.PM.TryEdpt(rendezvous); !alive {
			return
		}
		t := c.K.PM.Thrd(tid)
		if t.Endpoints[0] == pm.NoEndpoint {
			t.Endpoints[0] = rendezvous
			c.K.PM.EndpointIncRef(rendezvous, 1)
		}
	}

	record := func(op string, ret kernel.Ret, err error) error {
		st.ops[op]++
		st.errnos[ret.Errno.String()]++
		return err
	}
	for i := 0; i < steps; i++ {
		// Pick among currently runnable actors (blocked ones resume
		// when a partner rendezvous completes).
		var runnable []actor
		live := actors[:0]
		for _, cand := range actors {
			if th, alive := c.K.PM.TryThrd(cand.tid); alive {
				live = append(live, cand)
				if th.State == pm.ThreadRunnable || th.State == pm.ThreadRunning {
					runnable = append(runnable, cand)
				}
			}
		}
		actors = live
		if len(runnable) == 0 {
			return c.Transitions, fmt.Errorf("all actors stranded at step %d", i)
		}
		a := runnable[r.Intn(len(runnable))]
		th := c.K.PM.Thrd(a.tid)
		op := r.Intn(15)
		if len(runnable) == 1 && (op == 5 || op == 6) {
			// The last runnable actor must not strand itself: only
			// rendezvous in the direction that completes immediately
			// (rescuing a blocked partner), otherwise yield.
			op = 7
			if ep, alive := c.K.PM.TryEdpt(rendezvous); alive && len(ep.Queue) > 0 {
				if ep.QueuedRecv {
					op = 5 // receivers waiting: a send completes
				} else {
					op = 6 // senders waiting: a recv completes
				}
			}
		}
		var err error
		switch op {
		case 0:
			count := 1 + r.Intn(4)
			va := hw.VirtAddr(nextVA)
			nextVA += uint64(count+1) * hw.PageSize4K
			ret, e := c.Mmap(a.core, a.tid, va, count, hw.Size4K, pt.RW)
			err = record("mmap", ret, e)
		case 1:
			ret, e := c.Munmap(a.core, a.tid,
				hw.VirtAddr(0x10000000+uint64(r.Intn(256))*hw.PageSize4K), 1, hw.Size4K)
			err = record("munmap", ret, e)
		case 2:
			ret, e := c.NewContainer(a.core, a.tid, uint64(5+r.Intn(40)), []int{a.core})
			if e == nil && ret.Errno == kernel.OK {
				containers = append(containers, pm.Ptr(ret.Vals[0]))
			}
			err = record("new_container", ret, e)
		case 3:
			ret, e := c.NewProcess(a.core, a.tid)
			if e == nil && ret.Errno == kernel.OK {
				tr, e2 := c.NewThreadIn(a.core, a.tid, pm.Ptr(ret.Vals[0]), a.core)
				if e2 == nil && tr.Errno == kernel.OK {
					adopt(pm.Ptr(tr.Vals[0]))
					actors = append(actors, actor{pm.Ptr(tr.Vals[0]), a.core})
				}
				e = e2
			}
			err = record("new_proc+thread", ret, e)
		case 4:
			slot := freeSlot(th)
			if slot >= 0 {
				ret, e := c.NewEndpoint(a.core, a.tid, slot)
				err = record("new_endpoint", ret, e)
			}
		case 5:
			slot := 0 // mostly the shared rendezvous endpoint
			if len(runnable) > 1 && r.Intn(10) < 3 {
				slot = r.Intn(pm.MaxEndpoints)
			}
			ret, e := c.Send(a.core, a.tid, slot,
				kernel.SendArgs{Regs: [4]uint64{r.Uint64()}})
			err = record("send", ret, e)
		case 6:
			slot := 0
			if len(runnable) > 1 && r.Intn(10) < 3 {
				slot = r.Intn(pm.MaxEndpoints)
			}
			ret, e := c.Recv(a.core, a.tid, slot, kernel.RecvArgs{EdptSlot: -1})
			err = record("recv", ret, e)
		case 7:
			ret, e := c.Yield(a.core, a.tid)
			err = record("yield", ret, e)
		case 8:
			ret, e := c.IommuCreateDomain(a.core, a.tid)
			err = record("iommu_create", ret, e)
		case 9:
			if len(containers) > 0 {
				i := r.Intn(len(containers))
				ret, e := c.KillContainer(0, init, containers[i])
				if e == nil && ret.Errno == kernel.OK {
					containers = append(containers[:i], containers[i+1:]...)
				}
				err = record("kill_container", ret, e)
			}
		case 10:
			if len(containers) > 0 {
				i := r.Intn(len(containers))
				ret, e := c.KillContainerBounded(0, init, containers[i], 1+r.Intn(4))
				if e == nil && ret.Errno == kernel.OK {
					containers = append(containers[:i], containers[i+1:]...)
				}
				err = record("kill_container_bounded", ret, e)
			}
		case 11:
			// Never slot 0: the rendezvous endpoint stays shared.
			ret, e := c.CloseEndpoint(a.core, a.tid, 1+r.Intn(pm.MaxEndpoints-1))
			err = record("close_endpoint", ret, e)
		case 12:
			slot := freeSlot(th)
			irq := 32 + r.Intn(8)
			if slot >= 0 {
				if ret, e := c.NewEndpoint(a.core, a.tid, slot); e != nil || ret.Errno != kernel.OK {
					err = record("irq_register", ret, e)
					break
				}
				ret, e := c.IrqRegister(a.core, a.tid, irq, slot)
				if e == nil && ret.Errno == kernel.OK {
					c.K.RaiseIRQ(a.core, irq)
					wret, we := c.IrqWait(a.core, a.tid, irq)
					_ = record("irq_wait", wret, we)
					e = we
				}
				err = record("irq_register", ret, e)
			}
		case 13:
			if len(actors) > 1 {
				i := 1 + r.Intn(len(actors)-1)
				victim := actors[i]
				if vt, ok := c.K.PM.TryThrd(victim.tid); ok && victim.tid != a.tid &&
					(vt.State == pm.ThreadRunnable || vt.State == pm.ThreadRunning) &&
					(len(runnable) > 2 || vt.State == pm.ThreadRunnable && len(runnable) > 1) {
					ret, e := c.ExitThread(victim.core, victim.tid)
					if e == nil && ret.Errno == kernel.OK {
						actors = append(actors[:i], actors[i+1:]...)
					}
					err = record("exit_thread", ret, e)
				}
			}
		default: // hostile arguments
			ret, e := c.Mmap(a.core, a.tid, hw.VirtAddr(r.Uint64n(1<<40)),
				int(r.Uint64n(6))-2, hw.Size4K, pt.RW)
			err = record("mmap(junk)", ret, e)
		}
		if err != nil {
			return c.Transitions, err
		}
	}
	return c.Transitions, nil
}

// freeSlot finds an empty descriptor slot, skipping slot 0 (the shared
// rendezvous endpoint).
func freeSlot(t *pm.Thread) int {
	for i := 1; i < pm.MaxEndpoints; i++ {
		if t.Endpoints[i] == pm.NoEndpoint {
			return i
		}
	}
	return -1
}

// chaosPlan is the fuzzer's fault mix: allocator exhaustion hits every
// allocation site a syscall touches, dropped and spurious interrupt
// edges stress the dispatch path.
func chaosPlan() faults.Plan {
	return faults.Plan{Rules: []faults.Rule{
		{Kind: faults.AllocExhaust, Rate: 0.10},
		{Kind: faults.IRQDrop, Rate: 0.30},
		{Kind: faults.IRQSpurious, Rate: 0.05},
	}}
}

// runChaos drives the -chaos mode: per seed, a randomized trace on a
// raw kernel with the injector armed, TotalWF checked after every
// transition, and a pass-rate summary at the end. Each seed gets a
// fresh tracer (one kernel, one timeline); the last seed's trace is
// the one exported. The metrics registry is shared, so counters
// accumulate across seeds.
func runChaos(first uint64, seeds, steps int, traceOut, metricsOut string) {
	var registry *obs.Registry
	if metricsOut != "" {
		registry = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	checked, violations := 0, 0
	for s := 0; s < seeds; s++ {
		seed := first + uint64(s)
		if traceOut != "" {
			tracer = obs.NewTracer(0)
		}
		c, v, inj, err := chaosOne(seed, steps, tracer, registry)
		checked += c
		violations += v
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d FAILED after %d transitions: %v\n", seed, c, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: %d transitions, %d invariant violations; injected %d faults (%s), trace hash %#x\n",
			seed, c, v, inj.InjectedTotal(), inj.Counts(), inj.TraceHash())
	}
	rate := 100.0
	if checked > 0 {
		rate = 100 * float64(checked-violations) / float64(checked)
	}
	fmt.Printf("\nchaos: %d transitions checked under faults, %d violations, invariant pass rate %.2f%%\n",
		checked, violations, rate)
	if tracer != nil {
		if err := writeOut(traceOut, func(w io.Writer) error { return obs.WriteTrace(w, tracer) }); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-fuzz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace (%d events) to %s\n", tracer.Len(), traceOut)
	}
	if registry != nil {
		if err := writeOut(metricsOut, registry.WriteText); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-fuzz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", metricsOut)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// writeOut creates path and streams write into it.
func writeOut(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// chaosOne runs one seed's randomized trace with faults armed. Unlike
// fuzzOne it drives the raw kernel — injected allocator failures make
// syscalls return ENOMEM mid-operation, which the per-step spec checker
// would (correctly) flag as off-spec, while the invariant suite must
// hold regardless: errored syscalls may abort, never corrupt.
func chaosOne(seed uint64, steps int, tracer *obs.Tracer, registry *obs.Registry) (checked, violations int, inj *faults.Injector, err error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 4096, Cores: 4, TLBSlots: 256})
	if err != nil {
		return 0, 0, nil, err
	}
	k.AttachObs(tracer, registry)
	inj, err = faults.NewInjector(seed, chaosPlan(), k.Machine.TotalCycles)
	if err != nil {
		return 0, 0, nil, err
	}
	inj.SetTracer(tracer)
	inj.RegisterMetrics(registry)
	k.Alloc.SetFaultHook(func() bool { return inj.Hit(faults.AllocExhaust) })
	k.IRQFilter = func(core, irq int) bool { return !inj.Hit(faults.IRQDrop) }

	r := hw.NewRand(seed ^ 0x9e3779b97f4a7c15)
	var containers []pm.Ptr
	nextVA := uint64(0x20000000)
	var firstViolation error
	step := func() {
		checked++
		if e := verify.TotalWF(k); e != nil {
			violations++
			if firstViolation == nil {
				firstViolation = e
			}
		}
	}
	for i := 0; i < steps; i++ {
		switch r.Intn(9) {
		case 0, 1:
			count := 1 + r.Intn(4)
			va := hw.VirtAddr(nextVA)
			nextVA += uint64(count+1) * hw.PageSize4K
			k.SysMmap(0, init, va, count, hw.Size4K, pt.RW)
		case 2:
			k.SysMunmap(0, init,
				hw.VirtAddr(0x20000000+uint64(r.Intn(512))*hw.PageSize4K), 1, hw.Size4K)
		case 3:
			if ret := k.SysNewContainer(0, init, uint64(5+r.Intn(40)), []int{0}); ret.Errno == kernel.OK {
				containers = append(containers, pm.Ptr(ret.Vals[0]))
			}
		case 4:
			if len(containers) > 0 {
				if ret := k.SysNewProcessIn(0, init, containers[r.Intn(len(containers))]); ret.Errno == kernel.OK {
					k.SysNewThreadIn(0, init, pm.Ptr(ret.Vals[0]), 1+r.Intn(3))
				}
			}
		case 5:
			slot := 1 + r.Intn(pm.MaxEndpoints-1)
			if r.Intn(2) == 0 {
				k.SysNewEndpoint(0, init, slot)
			} else {
				k.SysCloseEndpoint(0, init, slot)
			}
		case 6:
			if len(containers) > 0 {
				j := r.Intn(len(containers))
				ret := kernel.Ret{Errno: kernel.EAGAIN}
				for rounds := 0; ret.Errno == kernel.EAGAIN && rounds < 64; rounds++ {
					ret = k.SysKillContainerBounded(0, init, containers[j], 1+r.Intn(4))
					step() // every intermediate kill state must be well-formed
				}
				if ret.Errno == kernel.OK {
					containers = append(containers[:j], containers[j+1:]...)
				}
				continue
			}
		case 7:
			k.SysYield(0, init)
		default:
			if inj.Hit(faults.IRQSpurious) {
				k.RaiseIRQ(r.Intn(4), 32+r.Intn(16)) // unbound line: must be inert
			}
		}
		step()
	}
	return checked, violations, inj, firstViolation
}
