// Command atmo-fuzz drives generated syscall programs through the
// kernel under one of three oracles. It is the repository's
// syzkaller-shaped confidence tool: where atmo-verify discharges
// curated obligations, atmo-fuzz searches for states the curated
// scenarios miss.
//
// Usage:
//
//	atmo-fuzz                      # checked mode: 2000 ops, seed 1
//	atmo-fuzz -steps 10000 -seed 9
//	atmo-fuzz -seeds 8             # 8 independent swarm profiles
//	atmo-fuzz -diff -seeds 8       # differential spec-vs-kernel lockstep
//	atmo-fuzz -repro f.repro       # replay a minimized repro file
//	atmo-fuzz -chaos -seeds 4      # randomized traces under a fault plan
//
// The default (checked) mode validates every transition against its
// per-syscall specification predicate plus the full invariant suite.
//
// With -diff each program instead runs in lockstep with the pure spec
// interpreter: after every syscall the kernel's abstraction Ψ is
// compared field-by-field against the independently-evolved Ψ′. On
// divergence the failing program is delta-debugged down to a minimal
// op sequence and written as a self-contained repro file; replay it
// with -repro.
//
// With -chaos each trace runs on a raw kernel with a seeded fault
// injector armed — allocator exhaustion on every allocation site,
// dropped interrupt edges, spurious interrupts — and the full invariant
// suite (verify.TotalWF) is checked after every transition. The report
// is the invariant pass rate plus the injector's deterministic trace
// hash, so a failing seed reproduces bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/mck"
	"atmosphere/internal/obs"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

func main() {
	steps := flag.Int("steps", 2000, "ops per seed")
	seed := flag.Uint64("seed", 1, "first seed")
	seeds := flag.Int("seeds", 1, "number of independent seeds")
	diff := flag.Bool("diff", false, "differential mode: lockstep kernel-vs-spec-interpreter oracle")
	repro := flag.String("repro", "", "replay a repro file through the differential oracle and exit")
	reproOut := flag.String("repro-out", "atmo-fuzz-failure.repro", "with -diff: where to write a minimized failing program")
	chaos := flag.Bool("chaos", false, "inject faults and report the invariant pass rate")
	traceOut := flag.String("trace", "", "with -chaos: write the last seed's Perfetto trace to this path")
	metricsOut := flag.String("metrics", "", "with -chaos: write a metrics dump to this path")
	flag.Parse()

	switch {
	case *repro != "":
		runRepro(*repro)
		return
	case *chaos:
		runChaos(*seed, *seeds, *steps, *traceOut, *metricsOut)
		return
	}
	if *traceOut != "" || *metricsOut != "" {
		fmt.Fprintln(os.Stderr, "atmo-fuzz: -trace/-metrics require -chaos")
		os.Exit(2)
	}
	if *diff {
		runDiff(*seed, *seeds, *steps, *reproOut)
		return
	}
	runChecked(*seed, *seeds, *steps)
}

// runChecked is the default mode: every generated program runs on a
// kernel wrapped by verify.Checker, so each transition is validated
// against its specification predicate and the invariant suite.
func runChecked(first uint64, seeds, steps int) {
	total := mck.Stats{Ops: map[string]int{}, Errnos: map[string]int{}}
	for s := 0; s < seeds; s++ {
		seed := first + uint64(s)
		st, err := mck.RunChecked(mck.Generate(seed, steps), mck.Options{})
		total.Merge(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d FAILED after %d ops: %v\n", seed, st.Steps, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: %d checked transitions, all specs and invariants held\n", seed, st.Steps)
	}
	fmt.Printf("\ntotal: %d checked transitions\n\nsyscall coverage:\n", total.Steps)
	printSorted(total.Ops)
	fmt.Println("\nerrno coverage:")
	printSorted(total.Errnos)
}

// runDiff is the lockstep differential mode: kernel vs. pure spec
// interpreter, field-level Ψ comparison after every op, with the
// runtime lock-order checker armed on every booted kernel. The first
// divergence is shrunk to a minimal repro and written to reproOut; a
// lock-order inversion fails the seed with the checker's two-site
// report.
func runDiff(first uint64, seeds, steps int, reproOut string) {
	total := mck.Stats{Ops: map[string]int{}, Errnos: map[string]int{}}
	baseOpt := mck.Options{WFEvery: 256}
	for s := 0; s < seeds; s++ {
		seed := first + uint64(s)
		p := mck.Generate(seed, steps)
		opt, inversion := baseOpt.WithLockOrder()
		res, st, err := mck.RunDiff(p, opt)
		total.Merge(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: boot failed: %v\n", seed, err)
			os.Exit(1)
		}
		if res != nil {
			fmt.Fprintf(os.Stderr, "seed %d DIVERGED: %v\nshrinking...\n", seed, res)
			min := mck.Shrink(p, func(q mck.Program) bool { return mck.Fails(q, baseOpt) })
			if werr := os.WriteFile(reproOut, min.EncodeRepro(), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "atmo-fuzz: writing repro: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "minimized to %d ops; wrote %s (replay with -repro)\n",
					len(min.Ops), reproOut)
			}
			os.Exit(1)
		}
		if v := inversion(); v != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %s\n", seed, v)
			os.Exit(1)
		}
		fmt.Printf("seed %d: %d ops in lockstep, kernel and spec agreed on every field of Ψ\n", seed, st.Steps)
	}
	fmt.Printf("\ntotal: %d differential transitions\n\nsyscall coverage:\n", total.Steps)
	printSorted(total.Ops)
	fmt.Println("\nerrno coverage:")
	printSorted(total.Errnos)
}

// runRepro replays a minimized repro file through the differential
// oracle; exit status reports whether the divergence still reproduces.
func runRepro(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atmo-fuzz: %v\n", err)
		os.Exit(2)
	}
	p, err := mck.ParseRepro(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atmo-fuzz: %s: %v\n", path, err)
		os.Exit(2)
	}
	res, st, err := mck.RunDiff(p, mck.Options{WFEvery: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: boot failed: %v\n", path, err)
		os.Exit(1)
	}
	if res != nil {
		fmt.Printf("%s: still diverges after %d ops: %v\n", path, st.Steps, res)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ops replayed, kernel and spec agree (divergence fixed)\n", path, st.Steps)
}

func printSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %7d\n", k, m[k])
	}
}

// chaosPlan is the fuzzer's fault mix: allocator exhaustion hits every
// allocation site a syscall touches, dropped and spurious interrupt
// edges stress the dispatch path.
func chaosPlan() faults.Plan {
	return faults.Plan{Rules: []faults.Rule{
		{Kind: faults.AllocExhaust, Rate: 0.10},
		{Kind: faults.IRQDrop, Rate: 0.30},
		{Kind: faults.IRQSpurious, Rate: 0.05},
	}}
}

// runChaos drives the -chaos mode: per seed, a randomized trace on a
// raw kernel with the injector armed, TotalWF checked after every
// transition, and a pass-rate summary at the end. Each seed gets a
// fresh tracer (one kernel, one timeline); the last seed's trace is
// the one exported. The metrics registry is shared, so counters
// accumulate across seeds.
func runChaos(first uint64, seeds, steps int, traceOut, metricsOut string) {
	var registry *obs.Registry
	if metricsOut != "" {
		registry = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	checked, violations := 0, 0
	for s := 0; s < seeds; s++ {
		seed := first + uint64(s)
		if traceOut != "" {
			tracer = obs.NewTracer(0)
		}
		c, v, inj, err := chaosOne(seed, steps, tracer, registry)
		checked += c
		violations += v
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d FAILED after %d transitions: %v\n", seed, c, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: %d transitions, %d invariant violations; injected %d faults (%s), trace hash %#x\n",
			seed, c, v, inj.InjectedTotal(), inj.Counts(), inj.TraceHash())
	}
	rate := 100.0
	if checked > 0 {
		rate = 100 * float64(checked-violations) / float64(checked)
	}
	fmt.Printf("\nchaos: %d transitions checked under faults, %d violations, invariant pass rate %.2f%%\n",
		checked, violations, rate)
	if tracer != nil {
		if err := writeOut(traceOut, func(w io.Writer) error { return obs.WriteTrace(w, tracer) }); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-fuzz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace (%d events) to %s\n", tracer.Len(), traceOut)
	}
	if registry != nil {
		if err := writeOut(metricsOut, registry.WriteText); err != nil {
			fmt.Fprintf(os.Stderr, "atmo-fuzz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", metricsOut)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// writeOut creates path and streams write into it.
func writeOut(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// chaosOne runs one seed's randomized trace with faults armed. Unlike
// the checked mode it drives the raw kernel — injected allocator
// failures make syscalls return ENOMEM mid-operation, which the
// per-step spec checker would (correctly) flag as off-spec, while the
// invariant suite must hold regardless: errored syscalls may abort,
// never corrupt.
func chaosOne(seed uint64, steps int, tracer *obs.Tracer, registry *obs.Registry) (checked, violations int, inj *faults.Injector, err error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 4096, Cores: 4, TLBSlots: 256})
	if err != nil {
		return 0, 0, nil, err
	}
	k.AttachObs(tracer, registry)
	inj, err = faults.NewInjector(seed, chaosPlan(), k.Machine.TotalCycles)
	if err != nil {
		return 0, 0, nil, err
	}
	inj.SetTracer(tracer)
	inj.RegisterMetrics(registry)
	k.Alloc.SetFaultHook(func() bool { return inj.Hit(faults.AllocExhaust) })
	k.IRQFilter = func(core, irq int) bool { return !inj.Hit(faults.IRQDrop) }

	r := hw.NewRand(seed ^ 0x9e3779b97f4a7c15)
	var containers []pm.Ptr
	nextVA := uint64(0x20000000)
	var firstViolation error
	step := func() {
		checked++
		if e := verify.TotalWF(k); e != nil {
			violations++
			if firstViolation == nil {
				firstViolation = e
			}
		}
	}
	for i := 0; i < steps; i++ {
		switch r.Intn(9) {
		case 0, 1:
			count := 1 + r.Intn(4)
			va := hw.VirtAddr(nextVA)
			nextVA += uint64(count+1) * hw.PageSize4K
			k.SysMmap(0, init, va, count, hw.Size4K, pt.RW)
		case 2:
			k.SysMunmap(0, init,
				hw.VirtAddr(0x20000000+uint64(r.Intn(512))*hw.PageSize4K), 1, hw.Size4K)
		case 3:
			if ret := k.SysNewContainer(0, init, uint64(5+r.Intn(40)), []int{0}); ret.Errno == kernel.OK {
				containers = append(containers, pm.Ptr(ret.Vals[0]))
			}
		case 4:
			if len(containers) > 0 {
				if ret := k.SysNewProcessIn(0, init, containers[r.Intn(len(containers))]); ret.Errno == kernel.OK {
					k.SysNewThreadIn(0, init, pm.Ptr(ret.Vals[0]), 1+r.Intn(3))
				}
			}
		case 5:
			slot := 1 + r.Intn(pm.MaxEndpoints-1)
			if r.Intn(2) == 0 {
				k.SysNewEndpoint(0, init, slot)
			} else {
				k.SysCloseEndpoint(0, init, slot)
			}
		case 6:
			if len(containers) > 0 {
				j := r.Intn(len(containers))
				ret := kernel.Ret{Errno: kernel.EAGAIN}
				for rounds := 0; ret.Errno == kernel.EAGAIN && rounds < 64; rounds++ {
					ret = k.SysKillContainerBounded(0, init, containers[j], 1+r.Intn(4))
					step() // every intermediate kill state must be well-formed
				}
				if ret.Errno == kernel.OK {
					containers = append(containers[:j], containers[j+1:]...)
				}
				continue
			}
		case 7:
			k.SysYield(0, init)
		default:
			if inj.Hit(faults.IRQSpurious) {
				k.RaiseIRQ(r.Intn(4), 32+r.Intn(16)) // unbound line: must be inert
			}
		}
		step()
	}
	return checked, violations, inj, firstViolation
}
