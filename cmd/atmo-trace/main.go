// Command atmo-trace runs a workload on the simulated kernel with the
// cycle-accurate tracer attached and exports the result: a Chrome/
// Perfetto trace_event JSON file (open it at https://ui.perfetto.dev)
// and, optionally, a plain-text metrics dump. Everything rides the
// deterministic cycle clock, so two runs with the same flags produce
// byte-identical files.
//
// Usage:
//
//	atmo-trace -workload kvstore -seed 1 -o trace.json
//	atmo-trace -workload chaos -seed 7 -o trace.json -metrics metrics.txt
//	atmo-trace -workload ipc -ops 1000 -o trace.json
//	atmo-trace -workload multicore -cores 4 -o trace.json
//	atmo-trace -workload kvstore-batch -cores 4 -o trace.json
//	atmo-trace -workload cluster -seed 1107 -o trace.json
//	atmo-trace -workload cluster -merged -seed 1107 -o merged.json
//	atmo-trace -workload multicore -cores 4 -contention -o trace.json
//
// With -merged the cluster workload runs with distributed tracing on
// and -o receives the merged multi-machine trace instead: one process
// track per participant (client, lb, every backend) with flow arrows
// linking each request's hops, plus a critical-path attribution report
// on stdout.
//
// With -contention a contention observatory rides the run: per-lock
// wait-rate and holder-queue-depth counter tracks merge onto the
// exported timeline, and the deterministic contention report (top
// contended locks, per-syscall/container wait attribution, run-queue
// delays) prints to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"atmosphere/internal/bench"
	"atmosphere/internal/cluster"
	"atmosphere/internal/drivers"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/contend"
	"atmosphere/internal/obs/dist"
	"atmosphere/internal/obs/profile"
	"atmosphere/internal/pm"
)

func main() {
	workload := flag.String("workload", "kvstore", "workload to trace: kvstore, kvstore-batch, chaos, ipc, multicore, cluster")
	seed := flag.Uint64("seed", 1, "workload seed")
	ops := flag.Int("ops", 200, "operations (kv ops or ipc round trips; per-core for multicore)")
	cores := flag.Int("cores", 4, "core count for the multicore workload")
	out := flag.String("o", "trace.json", "Perfetto trace output path")
	metricsOut := flag.String("metrics", "", "metrics dump output path (empty = skip)")
	profileOut := flag.String("profile", "", "write <prefix>.folded and <prefix>.pb.gz cycle profiles (empty = skip)")
	events := flag.Int("events", obs.DefaultEventCapacity, "tracer ring capacity (events)")
	merged := flag.Bool("merged", false, "cluster workload: distributed tracing on, write the merged multi-machine trace to -o")
	contention := flag.Bool("contention", false, "attach a contention observatory: counter tracks in the trace plus a contention report on stdout")
	flag.Parse()
	if *merged && *workload != "cluster" {
		fmt.Fprintln(os.Stderr, "atmo-trace: -merged requires -workload cluster")
		os.Exit(2)
	}
	if *contention && *workload == "cluster" {
		fmt.Fprintln(os.Stderr, "atmo-trace: -contention covers the single-machine workloads (kvstore, kvstore-batch, chaos, ipc, multicore)")
		os.Exit(2)
	}

	tracer := obs.NewTracer(*events)
	registry := obs.NewRegistry()
	var cobs *contend.Observatory
	if *contention {
		cobs = contend.New()
	}

	var totalCycles uint64
	var distCol *dist.Collector
	var err error
	switch *workload {
	case "kvstore":
		totalCycles, err = runKV(tracer, registry, *seed, *ops, drivers.ChaosConfig{Contend: cobs})
	case "chaos":
		totalCycles, err = runKV(tracer, registry, *seed, *ops,
			drivers.ChaosConfig{Plan: drivers.DefaultChaosPlan(), Contend: cobs})
	case "ipc":
		totalCycles, err = runIPC(tracer, registry, cobs, *ops)
	case "multicore":
		totalCycles, err = runMulticore(tracer, registry, cobs, *cores, *seed, *ops)
	case "kvstore-batch":
		totalCycles, err = runKVBatch(tracer, registry, cobs, *cores, *seed, *ops)
	case "cluster":
		totalCycles, distCol, err = runCluster(tracer, registry, *seed, *merged)
	default:
		fmt.Fprintf(os.Stderr, "atmo-trace: unknown workload %q (kvstore, kvstore-batch, chaos, ipc, multicore, cluster)\n", *workload)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if *merged {
		err = dist.WriteMerged(f, distCol)
	} else {
		err = obs.WriteTrace(f, tracer)
	}
	if err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := registry.WriteText(mf); err != nil {
			fail(err)
		}
		if err := mf.Close(); err != nil {
			fail(err)
		}
	}

	if *profileOut != "" {
		p, err := profile.WriteFiles(*profileOut, tracer)
		if err != nil {
			fail(err)
		}
		fmt.Println(p.Describe(*profileOut))
	}

	if *merged {
		if err := distCol.Attribution(5).WriteText(os.Stdout); err != nil {
			fail(err)
		}
		for _, line := range distCol.PressureNotes() {
			fmt.Println(line)
		}
	}

	if cobs != nil {
		if err := cobs.WriteReport(os.Stdout); err != nil {
			fail(err)
		}
	}

	coverage := 0.0
	if totalCycles > 0 {
		coverage = 100 * float64(tracer.SpanTotal()) / float64(totalCycles)
	}
	fmt.Printf("%s: %d events (%d dropped), trace hash %016x\n",
		*workload, tracer.Len(), tracer.Dropped(), tracer.Hash())
	fmt.Printf("spans cover %d of %d charged cycles (%.1f%%)\n",
		tracer.SpanTotal(), totalCycles, coverage)
	fmt.Printf("wrote %s — open it at https://ui.perfetto.dev\n", *out)
}

// runKV drives the chaos-harness kvstore workload (fault-free when
// cfg.Plan is empty) with the tracer attached end to end.
func runKV(t *obs.Tracer, m *obs.Registry, seed uint64, ops int, cfg drivers.ChaosConfig) (uint64, error) {
	cfg.Seed = seed
	cfg.Ops = ops
	cfg.Trace = t
	cfg.Metrics = m
	report, err := drivers.RunChaosKV(cfg)
	if report == nil {
		return 0, err
	}
	return report.TotalCycles, err
}

// runMulticore traces the multicore scalability series' three
// sub-workloads back to back on a cores-wide machine: contention-aware
// big lock, per-core page caches, work stealing — the lock.wait spans
// show up on every contended core's timeline. When cobs is non-nil all
// three sub-workloads report into it; each booted kernel registers a
// distinct big-lock frontier (big/kernel, big/kernel#1, ...).
func runMulticore(t *obs.Tracer, m *obs.Registry, cobs *contend.Observatory, cores int, seed uint64, ops int) (uint64, error) {
	if cobs != nil {
		bench.SetContention(cobs)
		defer bench.SetContention(nil)
	}
	var total uint64
	for _, wl := range []string{"ipc", "kvstore", "alloc"} {
		_, _, tc, err := bench.RunMulticore(wl, cores, seed, ops, t, m, nil)
		if err != nil {
			return total, fmt.Errorf("atmo-trace: multicore %s: %w", wl, err)
		}
		total += tc
	}
	return total, nil
}

// runKVBatch traces the batched kv-rpc workload: per-core client/server
// pairs moving request pages by grant through submission-ring
// doorbells. The SysBatch spans wrap the per-op spans of everything a
// doorbell drains, so the amortized trampoline is visible on the
// timeline.
func runKVBatch(t *obs.Tracer, m *obs.Registry, cobs *contend.Observatory, cores int, seed uint64, ops int) (uint64, error) {
	if cobs != nil {
		bench.SetContention(cobs)
		defer bench.SetContention(nil)
	}
	_, _, tc, err := bench.RunKVRPC(true, cores, seed, ops, t, m, nil)
	if err != nil {
		return tc, fmt.Errorf("atmo-trace: kvstore-batch: %w", err)
	}
	return tc, nil
}

// runCluster traces the multi-machine chaos scenario: the bench
// series' kill-one-backend plan, with the fault injector's instants and
// the cluster's kill/respawn/evict/reinstate events on one timeline.
// With merged set, distributed tracing is on and the returned collector
// holds every participant's request spans for the merged export.
func runCluster(t *obs.Tracer, m *obs.Registry, seed uint64, merged bool) (uint64, *dist.Collector, error) {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.Tracer = t
	cfg.Metrics = m
	cfg.DistTracing = merged
	cfg.Plan = faults.Plan{Rules: []faults.Rule{{
		Kind:   faults.MachineKill,
		Period: 800 * cluster.TickCycles,
		Until:  801 * cluster.TickCycles,
		Target: 3, // backend 1
	}}}
	c, err := cluster.New(cfg)
	if err != nil {
		return 0, nil, err
	}
	r := c.Run()
	fmt.Printf("cluster: %d responses, %d lost, reconverge kill %d cycles, trace hash %016x\n",
		r.Responses, r.GaveUp, r.ReconvergeKillCycles, r.TraceHash)
	return r.KernelCycles, c.Dist(), nil
}

// runIPC traces a bare call/reply ping-pong — the Table 3 microbench
// shape, instrumented.
func runIPC(t *obs.Tracer, m *obs.Registry, cobs *contend.Observatory, rounds int) (uint64, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 1024, Cores: 2, TLBSlots: 64})
	if err != nil {
		return 0, err
	}
	k.AttachObs(t, m)
	if cobs != nil {
		k.AttachContention(cobs)
	}
	r := k.SysNewThread(0, init, 0)
	if r.Errno != kernel.OK {
		return 0, fmt.Errorf("atmo-trace: new_thread: %v", r.Errno)
	}
	server := pm.Ptr(r.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	if re.Errno != kernel.OK {
		return 0, fmt.Errorf("atmo-trace: endpoint: %v", re.Errno)
	}
	k.PM.Thrd(server).Endpoints[0] = pm.Ptr(re.Vals[0])
	k.PM.EndpointIncRef(pm.Ptr(re.Vals[0]), 1)
	if r := k.SysRecv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return 0, fmt.Errorf("atmo-trace: park: %v", r.Errno)
	}
	for i := 0; i < rounds; i++ {
		if r := k.SysCall(0, init, 0, kernel.SendArgs{Regs: [4]uint64{uint64(i)}}); r.Errno != kernel.EWOULDBLOCK {
			return 0, fmt.Errorf("atmo-trace: call: %v", r.Errno)
		}
		if r := k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return 0, fmt.Errorf("atmo-trace: reply_recv: %v", r.Errno)
		}
	}
	return k.Machine.TotalCycles(), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atmo-trace:", err)
	os.Exit(1)
}
