// Package atmosphere's root benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (§6). Each benchmark
// regenerates its experiment through internal/bench and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. cmd/atmo-bench prints the same
// experiments as human-readable tables with the paper's values inline.
package atmosphere

import (
	"strings"
	"testing"

	"atmosphere/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration and
// reports its rows as metrics on the final run.
func runExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		name := metricName(row.Name, row.Unit)
		b.ReportMetric(row.Value, name)
	}
}

// metricName builds a compact, unique metric label.
func metricName(name, unit string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "/", "-", ",", "", "<", "", ">", "", ":", "")
	label := r.Replace(name)
	if len(label) > 48 {
		label = label[:48]
	}
	u := strings.Fields(unit)
	if len(u) > 0 {
		return label + "_" + u[0]
	}
	return label
}

func BenchmarkTable1ProofEffort(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2VerificationTime(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3Syscalls(b *testing.B)         { runExperiment(b, "table3") }
func BenchmarkFig2PerFunction(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig3History(b *testing.B)            { runExperiment(b, "fig3") }
func BenchmarkFig4Ixgbe(b *testing.B)              { runExperiment(b, "fig4") }
func BenchmarkFig5Nvme(b *testing.B)               { runExperiment(b, "fig5") }
func BenchmarkFig6Apps(b *testing.B)               { runExperiment(b, "fig6") }
func BenchmarkFig7KvStore(b *testing.B)            { runExperiment(b, "fig7") }
func BenchmarkAblationFlatVsRecursive(b *testing.B) {
	runExperiment(b, "ablation")
}

// TestAllExperimentsProduceRows is the smoke test that every experiment
// runs and produces sane output (ensuring `go test ./...` exercises the
// whole evaluation pipeline even without -bench).
func TestAllExperimentsProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	for _, e := range bench.All() {
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s produced no rows", e.ID)
		}
		if res.ID != e.ID {
			t.Fatalf("experiment %s returned result id %s", e.ID, res.ID)
		}
		if res.String() == "" {
			t.Fatalf("%s rendered empty", e.ID)
		}
	}
}
