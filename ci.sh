#!/bin/sh
# Repository gate: vet, build, the full test suite, a race-detector
# shard over the concurrency-bearing packages, and CLI smoke runs.
# Run from the repo root; any failure fails the script.
set -eu

cd "$(dirname "$0")"

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (kernel/obs+contend/drivers/mem/pm/verify/cluster/shmring shard)"
# ./internal/obs/... includes the contention observatory
# (internal/obs/contend) and the distributed tracer (internal/obs/dist).
go test -race ./internal/kernel/... ./internal/obs/... ./internal/drivers/... \
    ./internal/mem/... ./internal/pm/... ./internal/verify/... \
    ./internal/cluster/... ./internal/shmring/...

echo "== fuzz smoke (10s per target)"
go test ./internal/mck/ -run '^$' -fuzz '^FuzzDiff$' -fuzztime 10s
go test ./internal/mck/ -run '^$' -fuzz '^FuzzChecked$' -fuzztime 10s
go test ./internal/mck/ -run '^$' -fuzz '^FuzzDiffBatch$' -fuzztime 10s

echo "== docs relative-link check"
# Every relative link in docs/*.md must resolve (fragment stripped);
# http(s)/mailto and pure in-page anchors are skipped.
for f in docs/*.md; do
    grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//' | while IFS= read -r link; do
        case "$link" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "docs/$target" ]; then
            echo "$f: dead relative link ($link)" >&2
            exit 1
        fi
    done
done

echo "== atmo-fuzz -diff smoke"
go run ./cmd/atmo-fuzz -diff -seeds 4 -steps 2000

echo "== atmo-trace smoke"
smoke_dir=$(mktemp -d /tmp/atmo-ci-smoke.XXXXXX)
trap 'rm -rf "$smoke_dir"' EXIT
go run ./cmd/atmo-trace -workload kvstore -seed 1 -ops 50 \
    -o "$smoke_dir/trace.json" -profile "$smoke_dir/trace"
if [ ! -s "$smoke_dir/trace.json" ]; then
    echo "atmo-trace: smoke run produced an empty trace" >&2
    exit 1
fi
if [ ! -s "$smoke_dir/trace.folded" ] || [ ! -s "$smoke_dir/trace.pb.gz" ]; then
    echo "atmo-trace: smoke run produced no profile exports" >&2
    exit 1
fi

echo "== atmo-top smoke"
go run ./cmd/atmo-top -workload chaos -seed 7 -ops 200 > "$smoke_dir/top.txt"
if ! grep -q "^nvme.gen0" "$smoke_dir/top.txt"; then
    echo "atmo-top: smoke run shows no driver container row" >&2
    cat "$smoke_dir/top.txt" >&2
    exit 1
fi

echo "== atmo-top -locks smoke"
go run ./cmd/atmo-top -workload multicore -cores 4 -ops 100 -locks > "$smoke_dir/locks.txt"
# The alloc workload's hot mmap path resolves to the caller's container
# frontier under the sharded lock plans; the big lock shows up only for
# the cache-refill and lifecycle entries.
if ! grep -q "^lock container/root " "$smoke_dir/locks.txt"; then
    echo "atmo-top: -locks smoke shows no container-frontier row" >&2
    cat "$smoke_dir/locks.txt" >&2
    exit 1
fi
if ! grep -q "^lock big/kernel " "$smoke_dir/locks.txt"; then
    echo "atmo-top: -locks smoke shows no big-lock row" >&2
    cat "$smoke_dir/locks.txt" >&2
    exit 1
fi
if ! grep -q "^wait container/root sys=mmap cntr=root " "$smoke_dir/locks.txt"; then
    echo "atmo-top: -locks smoke shows no wait-attribution row" >&2
    cat "$smoke_dir/locks.txt" >&2
    exit 1
fi

echo "== atmo-top -locks -by-class smoke"
go run ./cmd/atmo-top -workload multicore -cores 4 -ops 100 -locks -by-class > "$smoke_dir/byclass.txt"
if ! grep -q "^class container locks=" "$smoke_dir/byclass.txt"; then
    echo "atmo-top: -by-class smoke shows no container class row" >&2
    cat "$smoke_dir/byclass.txt" >&2
    exit 1
fi

echo "== atmo-bench -json -check smoke"
go run ./cmd/atmo-bench -experiment table3 -json -outdir "$smoke_dir" \
    -check bench_all_reference.txt
if [ ! -s "$smoke_dir/BENCH_table3.json" ]; then
    echo "atmo-bench: smoke run produced no BENCH_table3.json" >&2
    exit 1
fi

echo "== atmo-bench -series multicore smoke"
go run ./cmd/atmo-bench -series multicore -json -outdir "$smoke_dir" \
    -check bench_all_reference.txt
if [ ! -s "$smoke_dir/BENCH_multicore.json" ]; then
    echo "atmo-bench: smoke run produced no BENCH_multicore.json" >&2
    exit 1
fi

echo "== atmo-bench -series batch smoke"
go run ./cmd/atmo-bench -series batch -json -outdir "$smoke_dir" \
    -check bench_all_reference.txt
if [ ! -s "$smoke_dir/BENCH_batch.json" ]; then
    echo "atmo-bench: smoke run produced no BENCH_batch.json" >&2
    exit 1
fi

echo "== atmo-bench -series cluster smoke"
go run ./cmd/atmo-bench -series cluster -json -outdir "$smoke_dir" \
    -check bench_all_reference.txt
if [ ! -s "$smoke_dir/BENCH_cluster.json" ]; then
    echo "atmo-bench: smoke run produced no BENCH_cluster.json" >&2
    exit 1
fi

echo "== atmo-trace -workload cluster -merged smoke (byte determinism)"
go run ./cmd/atmo-trace -workload cluster -merged -seed 1107 \
    -o "$smoke_dir/merged_a.json" > "$smoke_dir/merged_a.txt"
go run ./cmd/atmo-trace -workload cluster -merged -seed 1107 \
    -o "$smoke_dir/merged_b.json" > "$smoke_dir/merged_b.txt"
if [ ! -s "$smoke_dir/merged_a.json" ]; then
    echo "atmo-trace: merged smoke produced an empty export" >&2
    exit 1
fi
if ! cmp -s "$smoke_dir/merged_a.json" "$smoke_dir/merged_b.json"; then
    echo "atmo-trace: merged export is not byte-deterministic across same-seed runs" >&2
    exit 1
fi
# The "wrote <path>" line names the (different) output files; everything
# else on stdout must be identical.
grep -v '^wrote ' "$smoke_dir/merged_a.txt" > "$smoke_dir/merged_a.flt"
grep -v '^wrote ' "$smoke_dir/merged_b.txt" > "$smoke_dir/merged_b.flt"
if ! cmp -s "$smoke_dir/merged_a.flt" "$smoke_dir/merged_b.flt"; then
    echo "atmo-trace: merged attribution report is not deterministic" >&2
    exit 1
fi
if ! grep -q "distributed trace attribution" "$smoke_dir/merged_a.txt"; then
    echo "atmo-trace: merged smoke printed no attribution report" >&2
    cat "$smoke_dir/merged_a.txt" >&2
    exit 1
fi

echo "== atmo-trace -workload kvstore-batch smoke (byte determinism)"
go run ./cmd/atmo-trace -workload kvstore-batch -cores 4 \
    -o "$smoke_dir/kvb_a.json" > "$smoke_dir/kvb_a.txt"
go run ./cmd/atmo-trace -workload kvstore-batch -cores 4 \
    -o "$smoke_dir/kvb_b.json" > "$smoke_dir/kvb_b.txt"
if [ ! -s "$smoke_dir/kvb_a.json" ]; then
    echo "atmo-trace: kvstore-batch smoke produced an empty trace" >&2
    exit 1
fi
if ! cmp -s "$smoke_dir/kvb_a.json" "$smoke_dir/kvb_b.json"; then
    echo "atmo-trace: kvstore-batch trace is not byte-deterministic across same-seed runs" >&2
    exit 1
fi

echo "== atmo-trace -contention smoke (byte determinism)"
go run ./cmd/atmo-trace -workload multicore -cores 4 -ops 60 -contention \
    -o "$smoke_dir/contend_a.json" > "$smoke_dir/contend_a.txt"
go run ./cmd/atmo-trace -workload multicore -cores 4 -ops 60 -contention \
    -o "$smoke_dir/contend_b.json" > "$smoke_dir/contend_b.txt"
if ! cmp -s "$smoke_dir/contend_a.json" "$smoke_dir/contend_b.json"; then
    echo "atmo-trace: -contention trace is not byte-deterministic across same-seed runs" >&2
    exit 1
fi
grep -v '^wrote ' "$smoke_dir/contend_a.txt" > "$smoke_dir/contend_a.flt"
grep -v '^wrote ' "$smoke_dir/contend_b.txt" > "$smoke_dir/contend_b.flt"
if ! cmp -s "$smoke_dir/contend_a.flt" "$smoke_dir/contend_b.flt"; then
    echo "atmo-trace: contention report is not deterministic" >&2
    exit 1
fi
if ! grep -q "== contention: locks ==" "$smoke_dir/contend_a.txt"; then
    echo "atmo-trace: -contention smoke printed no contention report" >&2
    cat "$smoke_dir/contend_a.txt" >&2
    exit 1
fi
if ! grep -q '"lock\.' "$smoke_dir/contend_a.json"; then
    echo "atmo-trace: -contention trace has no lock counter tracks" >&2
    exit 1
fi

echo "== atmo-trace -contention 16-core sharded smoke (byte determinism)"
# The multicore workload includes the many-container ipc sub-workload;
# at 16 cores its lock plans touch dozens of container and endpoint
# frontiers, and the export must still be byte-deterministic.
go run ./cmd/atmo-trace -workload multicore -cores 16 -ops 40 -contention \
    -o "$smoke_dir/shard_a.json" > "$smoke_dir/shard_a.txt"
go run ./cmd/atmo-trace -workload multicore -cores 16 -ops 40 -contention \
    -o "$smoke_dir/shard_b.json" > "$smoke_dir/shard_b.txt"
if ! cmp -s "$smoke_dir/shard_a.json" "$smoke_dir/shard_b.json"; then
    echo "atmo-trace: sharded 16-core -contention trace is not byte-deterministic" >&2
    exit 1
fi
grep -v '^wrote ' "$smoke_dir/shard_a.txt" > "$smoke_dir/shard_a.flt"
grep -v '^wrote ' "$smoke_dir/shard_b.txt" > "$smoke_dir/shard_b.flt"
if ! cmp -s "$smoke_dir/shard_a.flt" "$smoke_dir/shard_b.flt"; then
    echo "atmo-trace: sharded 16-core contention report is not deterministic" >&2
    exit 1
fi

echo "ci: all checks passed"
