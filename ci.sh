#!/bin/sh
# Repository gate: vet, build, and the full test suite under the race
# detector. Run from the repo root; any failure fails the script.
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "ci: all checks passed"
