#!/bin/sh
# Repository gate: vet, build, and the full test suite under the race
# detector. Run from the repo root; any failure fails the script.
set -eu

cd "$(dirname "$0")"

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== atmo-trace smoke"
trace_out=$(mktemp /tmp/atmo-trace-smoke.XXXXXX.json)
trap 'rm -f "$trace_out"' EXIT
go run ./cmd/atmo-trace -workload kvstore -seed 1 -ops 50 -o "$trace_out"
if [ ! -s "$trace_out" ]; then
    echo "atmo-trace: smoke run produced an empty trace" >&2
    exit 1
fi

echo "ci: all checks passed"
