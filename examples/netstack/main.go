// Netstack: the user-level ixgbe driver plus the Maglev load balancer
// (§6.5.1, §6.6) — packets DMA through the IOMMU into a driver process,
// cross a kernel-established shared-memory ring to the Maglev process
// on another core, get a backend chosen by consistent hashing, and go
// back out the TX path.
package main

import (
	"fmt"
	"log"

	"atmosphere/internal/apps"
	"atmosphere/internal/drivers"
	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
	"atmosphere/internal/nic"
)

func main() {
	// The load balancer: 8 backends, Maglev permutation table.
	var names []string
	var addrs []netproto.IPv4
	for i := 0; i < 8; i++ {
		names = append(names, fmt.Sprintf("backend-%d", i))
		addrs = append(addrs, netproto.IPv4{172, 16, 0, byte(i + 1)})
	}
	maglev, err := apps.NewMaglev(names, addrs, apps.DefaultTableSize)
	if err != nil {
		log.Fatal(err)
	}
	counts := maglev.TableCounts()
	fmt.Printf("maglev table populated: %d entries across %d backends (min %d, max %d per backend)\n",
		apps.DefaultTableSize, len(names), minOf(counts), maxOf(counts))

	// atmo-c2: driver on core 1, Maglev on core 2, shared rings between.
	gen := nic.NewGenerator(2026, 1024, 60) // 1024 flows of 64B UDP
	env, err := drivers.NewNetEnv(drivers.CfgC2, gen)
	if err != nil {
		log.Fatal(err)
	}
	// Count what leaves on the wire per backend.
	txPerBackend := map[netproto.IPv4]int{}
	env.Dev.TxSink = func(frame []byte) {
		if p, err := netproto.ParseUDP(frame); err == nil {
			txPerBackend[p.DstIP]++
		}
	}
	rates, err := env.RunRx(8192, 32, maglev.Forward)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forwarded %d packets at %.2f Mpps (paper's atmo-c2 Maglev: 13.3 Mpps)\n",
		maglev.Forwarded, rates.Mpps)
	fmt.Printf("driver core spent %d cycles, app core %d cycles\n", rates.DrvCycles, rates.AppCycles)

	fmt.Println("per-backend distribution on the wire:")
	for i, a := range addrs {
		fmt.Printf("  %s (%s): %d packets\n", names[i], a, txPerBackend[a])
	}
	if env.Dev.Faults != 0 {
		log.Fatalf("%d DMA faults — IOMMU containment failed", env.Dev.Faults)
	}
	fmt.Println("zero DMA faults: every device access translated through the IOMMU domain")
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

var _ = hw.ClockHz // keep the cycle model import explicit for readers
