// Quickstart: boot the simulated Atmosphere kernel, create a container
// with a process and a thread, map memory, exchange an IPC message, and
// tear everything down — the minimal tour of the public kernel API.
package main

import (
	"fmt"
	"log"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

func main() {
	// Boot a machine: 16 MiB of simulated RAM, 2 cores.
	k, init, err := kernel.Boot(hw.Config{Frames: 4096, Cores: 2, TLBSlots: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted; init thread %#x in the root container\n", init)

	// Create an isolated container with a 100-page reservation.
	r := k.SysNewContainer(0, init, 100, []int{0, 1})
	check(r, "new_container")
	cntr := pm.Ptr(r.Vals[0])

	// Populate it: one process, one thread on core 1.
	r = k.SysNewProcessIn(0, init, cntr)
	check(r, "new_proc_in")
	proc := pm.Ptr(r.Vals[0])
	r = k.SysNewThreadIn(0, init, proc, 1)
	check(r, "new_thread_in")
	worker := pm.Ptr(r.Vals[0])
	fmt.Printf("container %#x: process %#x, worker thread %#x\n", cntr, proc, worker)

	// The worker maps 4 pages and writes through the real MMU.
	r = k.SysMmap(1, worker, 0x400000, 4, hw.Size4K, pt.RW)
	check(r, "mmap")
	table := k.PM.Proc(proc).PageTable
	k.Machine.MMU.Store(table.CR3(), 0x400000, []byte("hello, atmosphere"))
	data, _ := k.Machine.MMU.Load(table.CR3(), 0x400000, 17)
	fmt.Printf("worker wrote and read back: %q\n", data)

	// IPC: init sends scalars + a shared page to the worker.
	r = k.SysNewEndpoint(0, init, 0)
	check(r, "new_endpoint")
	ep := pm.Ptr(r.Vals[0])
	k.PM.Thrd(worker).Endpoints[0] = ep // boot-time channel setup by the parent
	k.PM.EndpointIncRef(ep, 1)

	if r := k.SysRecv(1, worker, 0, kernel.RecvArgs{PageVA: 0x800000, EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		log.Fatalf("recv: %v", r.Errno)
	}
	r = k.SysMmap(0, init, 0x100000, 1, hw.Size4K, pt.RW)
	check(r, "mmap(init)")
	initTable := k.PM.Proc(k.PM.Thrd(init).OwningProc).PageTable
	k.Machine.MMU.Store(initTable.CR3(), 0x100000, []byte("shared!"))
	r = k.SysSend(0, init, 0, kernel.SendArgs{Regs: [4]uint64{1, 2, 3, 4}, SendPage: true, PageVA: 0x100000})
	check(r, "send")
	shared, _ := k.Machine.MMU.Load(table.CR3(), 0x800000, 7)
	fmt.Printf("worker received regs %v and shared page %q\n",
		k.PM.Thrd(worker).IPC.Msg.Regs, shared)

	// Revocation: kill the container; its quota and pages return.
	free := k.Alloc.FreeCount4K()
	r = k.SysKillContainer(0, init, cntr)
	check(r, "kill_container")
	fmt.Printf("container killed; %d pages harvested\n", k.Alloc.FreeCount4K()-free)
	fmt.Printf("total simulated cycles: %d\n", k.Machine.TotalCycles())
}

func check(r kernel.Ret, what string) {
	if r.Errno != kernel.OK {
		log.Fatalf("%s failed: %v", what, r.Errno)
	}
}
