// KVStore: the network-attached key-value store of §6.6 — a FNV
// open-addressing hash table served over UDP through the user-level
// ixgbe driver, with the application linked against the driver
// (atmo-driver configuration).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"atmosphere/internal/apps"
	"atmosphere/internal/drivers"
	"atmosphere/internal/nic"
)

func main() {
	store, err := apps.NewKVStore(1_000_000, 16, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Traffic: 90% GET / 10% SET over a 20K-key working set, carried in
	// 64-byte UDP requests from 256 client flows.
	const keyspace = 20_000
	gen := nic.NewGenerator(7, 256, 60)
	gen.SetPayload(func(i uint64, buf []byte) int {
		// Each decade of requests SETs one key first, then GETs it, so
		// reads always find data.
		key := make([]byte, 16)
		binary.LittleEndian.PutUint64(key, (i/10*10)%keyspace)
		op := byte(apps.KVGet)
		var val []byte
		if i%10 == 0 {
			op = apps.KVSet
			val = make([]byte, 16)
			binary.LittleEndian.PutUint64(val, i)
		}
		n, err := apps.BuildKVRequest(buf, op, key, val)
		if err != nil {
			panic(err)
		}
		return n
	})

	env, err := drivers.NewNetEnv(drivers.CfgDriverLinked, gen)
	if err != nil {
		log.Fatal(err)
	}
	var replies int
	env.Dev.TxSink = func(frame []byte) { replies++ }

	rates, err := env.RunRx(16384, 32, store.Serve)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests at %.2f Mreq/s\n", rates.Packets, rates.Mpps)
	fmt.Printf("table: %d entries used of 1M; gets=%d (hits=%d, misses=%d) sets=%d\n",
		store.Used(), store.Gets, store.Hits, store.Misses, store.Sets)
	fmt.Printf("replies on the wire: %d\n", replies)
	if store.Hits == 0 {
		log.Fatal("no hits — workload broken")
	}
	hitRate := float64(store.Hits) / float64(store.Gets) * 100
	fmt.Printf("hit rate: %.1f%% (keys become hits once their SET has arrived)\n", hitRate)
}
