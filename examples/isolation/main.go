// Isolation: the paper's running example (§4.3) — two mutually
// distrusting containers A and B, completely isolated by the kernel,
// each talking to a verified shared service V over dedicated endpoints.
// The example exchanges requests through V, then kills A mid-transaction
// and shows that V releases everything it received and B is unaffected.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/ni"
	"atmosphere/internal/pt"
)

func main() {
	s, err := ni.Build(ni.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	v := ni.NewService(s)
	k := s.K
	fmt.Printf("A=%#x B=%#x V=%#x (cores 1, 2, 3; dedicated endpoints A-V and B-V)\n", s.A, s.B, s.V)

	// A asks V to increment a number through a shared page.
	step(v) // V waits on A's channel
	if r := k.SysMmap(1, s.TA, 0x40000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		log.Fatalf("A mmap: %v", r.Errno)
	}
	tableA := k.PM.Proc(s.PA).PageTable
	var req [8]byte
	binary.LittleEndian.PutUint64(req[:], 41)
	k.Machine.MMU.Store(tableA.CR3(), 0x40000, req[:])
	if r := k.SysCall(1, s.TA, s.SlotAV, kernel.SendArgs{Regs: [4]uint64{7}, SendPage: true, PageVA: 0x40000}); r.Errno != kernel.EWOULDBLOCK {
		log.Fatalf("A call: %v", r.Errno)
	}
	step(v) // V handles, replies, releases
	resp, _ := k.Machine.MMU.Load(tableA.CR3(), 0x40008, 8)
	fmt.Printf("A sent 41, V wrote back %d into the shared page; reply regs %v\n",
		binary.LittleEndian.Uint64(resp), k.PM.Thrd(s.TA).IPC.Msg.Regs[:2])

	// Isolation invariants hold throughout.
	if err := s.CheckIsolation(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("memory_iso and endpoint_iso: OK (A and B share nothing)")

	// B's observable state is untouched by the entire A<->V exchange.
	obsB := ni.Observe(k, s.B)

	// A dies mid-transaction: it calls V with a page, then is killed
	// before V handles the request.
	step(v) // V waits on B's channel
	step(v) // V waits on A's channel again
	if r := k.SysMmap(1, s.TA, 0x50000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		log.Fatalf("A mmap2: %v", r.Errno)
	}
	if r := k.SysCall(1, s.TA, s.SlotAV, kernel.SendArgs{SendPage: true, PageVA: 0x50000}); r.Errno != kernel.EWOULDBLOCK {
		log.Fatalf("A call2: %v", r.Errno)
	}
	if r := k.SysKillContainer(0, s.Init, s.A); r.Errno != kernel.OK {
		log.Fatalf("kill A: %v", r.Errno)
	}
	fmt.Println("killed container A mid-transaction")
	step(v) // V handles the orphaned request and releases the page
	if err := v.CheckCorrectness(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V released the dead client's page (released=%d) and returned to baseline\n", v.Released)

	if after := ni.Observe(k, s.B); after != obsB {
		log.Fatal("B's observable state changed — non-interference violated!")
	}
	fmt.Println("B's observable state is bit-identical through all of A's activity and death")
}

func step(v *ni.Service) {
	if err := v.Step(); err != nil {
		log.Fatal(err)
	}
}
