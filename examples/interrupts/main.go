// Interrupts: the user-level-driver interrupt model (§3) — a driver
// process binds the NIC's interrupt line to one of its endpoints,
// sleeps in irq_wait, and is woken by the kernel's interrupt dispatch
// whenever the device delivers packets, processing them in batches.
// Interrupts arriving while the driver is busy coalesce into a pending
// count instead of being lost.
package main

import (
	"fmt"
	"log"

	"atmosphere/internal/drivers"
	"atmosphere/internal/kernel"
	"atmosphere/internal/netproto"
	"atmosphere/internal/nic"
	"atmosphere/internal/pm"
)

func main() {
	gen := nic.NewGenerator(11, 32, 60)
	env, err := drivers.NewNetEnv(drivers.CfgDriverLinked, gen)
	if err != nil {
		log.Fatal(err)
	}
	k := env.K
	const nicIRQ = 32

	// Bind the device's interrupt to an endpoint in the driver's
	// descriptor table.
	if r := k.SysNewEndpoint(0, env.DrvTid, 5); r.Errno != kernel.OK {
		log.Fatalf("endpoint: %v", r.Errno)
	}
	if r := k.SysIrqRegister(0, env.DrvTid, nicIRQ, 5); r.Errno != kernel.OK {
		log.Fatalf("irq_register: %v", r.Errno)
	}
	env.Dev.OnRxInterrupt = func() { k.RaiseIRQ(0, nicIRQ) }
	// A sibling keeps the core busy while the driver sleeps.
	if r := k.SysNewThread(0, env.DrvTid, 0); r.Errno != kernel.OK {
		log.Fatalf("sibling: %v", r.Errno)
	}

	received, wakeups, coalesced := 0, 0, uint64(0)
	for round := 0; round < 8; round++ {
		r := k.SysIrqWait(0, env.DrvTid, nicIRQ)
		switch r.Errno {
		case kernel.EWOULDBLOCK:
			// Asleep. Traffic arrives in two bursts before the driver
			// gets to run — the second burst coalesces.
			if _, err := env.Dev.DeliverRX(8); err != nil {
				log.Fatal(err)
			}
			if _, err := env.Dev.DeliverRX(8); err != nil {
				log.Fatal(err)
			}
			wakeups++
			msg := k.PM.Thrd(env.DrvTid).IPC.Msg
			coalesced += msg.Regs[1]
			fmt.Printf("round %d: woken by irq %d (%d interrupt(s) coalesced)\n",
				round, msg.Regs[0], msg.Regs[1])
		case kernel.OK:
			wakeups++
			coalesced += r.Vals[1]
			fmt.Printf("round %d: consumed %d pending interrupt(s) without sleeping\n",
				round, r.Vals[1])
		default:
			log.Fatalf("irq_wait: %v", r.Errno)
		}
		n := env.Drv.RxBurst(32)
		for _, f := range env.Drv.Frames[:n] {
			if _, err := netproto.ParseUDP(f); err != nil {
				log.Fatalf("bad frame: %v", err)
			}
		}
		received += n
	}
	fmt.Printf("\nreceived %d packets across %d wakeups (%d raw interrupts)\n",
		received, wakeups, coalesced)
	fmt.Printf("driver thread %#x never polled an idle device: every wakeup had work\n",
		pm.Ptr(env.DrvTid))
	if env.Dev.Faults != 0 {
		log.Fatalf("%d DMA faults", env.Dev.Faults)
	}
}
