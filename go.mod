module atmosphere

go 1.22
