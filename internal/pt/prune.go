package pt

import (
	"atmosphere/internal/hw"
)

// PruneEmpty frees every table node (never the root) whose entries are
// all non-present, clearing the parent slots that pointed at them. The
// kernel uses it on mmap failure paths so that quota accounting never has
// to carry nodes that no mapping reaches. Returns the number of node
// pages freed.
func (t *PageTable) PruneEmpty() int {
	freed := 0
	m := t.alloc.Mem()

	empty := func(table hw.PhysAddr) bool {
		for i := 0; i < hw.EntriesPerTable; i++ {
			if m.ReadU64(slotAddr(table, i))&hw.PtePresent != 0 {
				return false
			}
		}
		return true
	}

	// prune processes one table at the given level (4 = PML4) and
	// reports whether it is empty after pruning its children.
	var prune func(table hw.PhysAddr, level int) bool
	prune = func(table hw.PhysAddr, level int) bool {
		for i := 0; i < hw.EntriesPerTable; i++ {
			slot := slotAddr(table, i)
			e := m.ReadU64(slot)
			if e&hw.PtePresent == 0 {
				continue
			}
			if level == 1 || e&hw.PteHuge != 0 {
				continue // terminal mapping
			}
			child := hw.PhysAddr(e & hw.PteAddrMask)
			if prune(child, level-1) && empty(child) {
				t.write(slot, 0, false)
				t.nodes.Remove(child)
				if err := t.alloc.FreePage(child); err != nil {
					panic(err)
				}
				freed++
			}
		}
		return empty(table)
	}
	prune(t.cr3, 4)
	return freed
}
