package pt

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

func benchTable(b *testing.B, frames int) (*PageTable, *mem.Allocator, *hw.MMU) {
	b.Helper()
	pm := hw.NewPhysMem(frames)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(pm, clk, 1)
	t, err := New(alloc, clk)
	if err != nil {
		b.Fatal(err)
	}
	return t, alloc, hw.NewMMU(pm)
}

func BenchmarkMapUnmap4K(b *testing.B) {
	t, alloc, _ := benchTable(b, 256)
	phys, err := alloc.AllocUserPage4K()
	if err != nil {
		b.Fatal(err)
	}
	// Warm intermediates.
	if err := t.Map4K(0x400000, phys, RW); err != nil {
		b.Fatal(err)
	}
	if _, err := t.Unmap(0x400000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Map4K(0x400000, phys, RW); err != nil {
			b.Fatal(err)
		}
		if _, err := t.Unmap(0x400000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolve(b *testing.B) {
	t, alloc, _ := benchTable(b, 512)
	for i := 0; i < 64; i++ {
		p, err := alloc.AllocUserPage4K()
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Map4K(hw.VirtAddr(0x400000+i*hw.PageSize4K), p, RW); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Resolve(hw.VirtAddr(0x400000 + (i%64)*hw.PageSize4K)); !ok {
			b.Fatal("resolve failed")
		}
	}
}

func BenchmarkCheckRefinement(b *testing.B) {
	t, alloc, mmu := benchTable(b, 2048)
	for i := 0; i < 1024; i++ {
		p, err := alloc.AllocUserPage4K()
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Map4K(hw.VirtAddr(0x400000+i*hw.PageSize4K), p, RW); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.CheckRefinement(mmu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMMUWalk(b *testing.B) {
	t, alloc, mmu := benchTable(b, 256)
	p, _ := alloc.AllocUserPage4K()
	if err := t.Map4K(0x400000, p, RW); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := mmu.Walk(t.CR3(), 0x400123); !ok {
			b.Fatal("walk failed")
		}
	}
}
