package pt

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

// This file holds the executable form of the page-table refinement
// theorem (§6.2): the abstract mapping equals, in both directions, what
// the hardware MMU resolves from the concrete tables. These functions
// never charge cycles — they are ghost code, the analogue of proof
// functions erased at compile time.

// Enumerate walks the concrete radix tree and returns every terminal
// mapping it encodes, keyed by base virtual address. This is the
// "resolve_mapping" side of the §6.2 forall, materialized.
func (t *PageTable) Enumerate() map[hw.VirtAddr]MapEntry {
	out := make(map[hw.VirtAddr]MapEntry)
	m := t.alloc.Mem()
	for i4 := 0; i4 < hw.EntriesPerTable; i4++ {
		e4 := m.ReadU64(slotAddr(t.cr3, i4))
		if e4&hw.PtePresent == 0 {
			continue
		}
		l3 := hw.PhysAddr(e4 & hw.PteAddrMask)
		for i3 := 0; i3 < hw.EntriesPerTable; i3++ {
			e3 := m.ReadU64(slotAddr(l3, i3))
			if e3&hw.PtePresent == 0 {
				continue
			}
			if e3&hw.PteHuge != 0 {
				va := hw.VAFromIndices(i4, i3, 0, 0)
				out[va] = entryFromPte(e3, hw.Size1G)
				continue
			}
			l2 := hw.PhysAddr(e3 & hw.PteAddrMask)
			for i2 := 0; i2 < hw.EntriesPerTable; i2++ {
				e2 := m.ReadU64(slotAddr(l2, i2))
				if e2&hw.PtePresent == 0 {
					continue
				}
				if e2&hw.PteHuge != 0 {
					va := hw.VAFromIndices(i4, i3, i2, 0)
					out[va] = entryFromPte(e2, hw.Size2M)
					continue
				}
				l1 := hw.PhysAddr(e2 & hw.PteAddrMask)
				for i1 := 0; i1 < hw.EntriesPerTable; i1++ {
					e1 := m.ReadU64(slotAddr(l1, i1))
					if e1&hw.PtePresent == 0 {
						continue
					}
					va := hw.VAFromIndices(i4, i3, i2, i1)
					out[va] = entryFromPte(e1, hw.Size4K)
				}
			}
		}
	}
	return out
}

// CheckRefinement validates both directions of the refinement theorem:
//
//  1. for every entry of the abstract maps, an MMU walk from CR3 resolves
//     to the same physical address, size, and permissions;
//  2. every terminal mapping present in the concrete tables appears in
//     the abstract maps (no hidden mappings).
func (t *PageTable) CheckRefinement(mmu *hw.MMU) error {
	check := func(ghost map[hw.VirtAddr]MapEntry, size hw.PageSize) error {
		for va, e := range ghost {
			tr, ok := mmu.Walk(t.cr3, va)
			if !ok {
				return fmt.Errorf("pt: ghost %v mapping %#x not resolved by MMU", size, va)
			}
			if tr.Size != size {
				return fmt.Errorf("pt: %#x resolves at %v, ghost says %v", va, tr.Size, size)
			}
			if tr.Phys != e.Phys {
				return fmt.Errorf("pt: %#x resolves to %#x, ghost says %#x", va, tr.Phys, e.Phys)
			}
			if tr.Writable != e.Perm.Write || tr.User != e.Perm.User || tr.NX == e.Perm.Exec {
				return fmt.Errorf("pt: %#x permission mismatch: hw=%+v ghost=%+v", va, tr, e.Perm)
			}
		}
		return nil
	}
	if err := check(t.ghost4K, hw.Size4K); err != nil {
		return err
	}
	if err := check(t.ghost2M, hw.Size2M); err != nil {
		return err
	}
	if err := check(t.ghost1G, hw.Size1G); err != nil {
		return err
	}
	// Direction 2 checks each concrete mapping against the ghost maps
	// directly — the flat design needs no intermediate reconstruction of
	// the address space, so this pass allocates nothing beyond the
	// enumeration itself.
	concrete := t.Enumerate()
	if len(concrete) != t.MappedCount() {
		return fmt.Errorf("pt: concrete has %d mappings, abstract %d", len(concrete), t.MappedCount())
	}
	for va, ce := range concrete {
		var ae MapEntry
		var ok bool
		switch ce.Size {
		case hw.Size4K:
			ae, ok = t.ghost4K[va]
		case hw.Size2M:
			ae, ok = t.ghost2M[va]
		case hw.Size1G:
			ae, ok = t.ghost1G[va]
		}
		if !ok {
			return fmt.Errorf("pt: concrete mapping %#x missing from abstract state", va)
		}
		if ae != ce {
			return fmt.Errorf("pt: %#x concrete %+v != abstract %+v", va, ce, ae)
		}
	}
	return nil
}

// CheckStructure validates the structural invariants of the radix tree:
// every non-leaf present entry points at a page in the flat node set,
// every node page is allocated to the page-table subsystem, and no node
// is reachable twice (acyclicity / no sharing).
func (t *PageTable) CheckStructure() error {
	m := t.alloc.Mem()
	seen := mem.NewPageSet(t.cr3)
	visit := func(table hw.PhysAddr) error {
		if !t.nodes.Contains(table) {
			return fmt.Errorf("pt: reachable node %#x not in flat node set", table)
		}
		meta, err := t.alloc.Meta(table)
		if err != nil {
			return err
		}
		if meta.State != mem.StateAllocated || meta.Owner != t.owner {
			return fmt.Errorf("pt: node %#x is %v/%v, want allocated/%v", table, meta.State, meta.Owner, t.owner)
		}
		return nil
	}
	if err := visit(t.cr3); err != nil {
		return err
	}
	var walk func(table hw.PhysAddr, level int) error
	walk = func(table hw.PhysAddr, level int) error {
		for i := 0; i < hw.EntriesPerTable; i++ {
			e := m.ReadU64(slotAddr(table, i))
			if e&hw.PtePresent == 0 {
				continue
			}
			if level == 1 || e&hw.PteHuge != 0 {
				continue // terminal mapping, not a node
			}
			next := hw.PhysAddr(e & hw.PteAddrMask)
			if seen.Contains(next) {
				return fmt.Errorf("pt: node %#x reachable twice", next)
			}
			seen.Insert(next)
			if err := visit(next); err != nil {
				return err
			}
			if err := walk(next, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.cr3, 4); err != nil {
		return err
	}
	if !seen.Equal(t.nodes) {
		return fmt.Errorf("pt: flat node set has %d pages, %d reachable", t.nodes.Len(), seen.Len())
	}
	return nil
}
