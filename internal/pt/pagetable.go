// Package pt implements Atmosphere's 4-level page table (§4.2, §6.2).
//
// The concrete state is a radix tree of 512-entry tables stored in
// simulated physical memory and walked by the hardware MMU model. The
// abstract state — the paper's ghost `Map<VAddr, MapEntry>`, one map per
// page size — is maintained eagerly alongside every update, and the
// refinement property of §6.2 (the abstract map equals what the MMU
// resolves, in both directions) is checked by internal/verify and by this
// package's own CheckRefinement.
//
// Following the flat permission design, permissions to all table nodes of
// every level are stored at the top level of the page table (the Nodes
// set), not threaded through the hierarchy.
package pt

import (
	"errors"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

// Mapping errors.
var (
	ErrAlreadyMapped = errors.New("pt: virtual address already mapped")
	ErrNotMapped     = errors.New("pt: virtual address not mapped")
	ErrMisaligned    = errors.New("pt: misaligned address")
	ErrConflict      = errors.New("pt: conflicting mapping granularity")
)

// Perm is the access permission of a mapping.
type Perm struct {
	Write bool
	User  bool
	Exec  bool
}

// RW is the common read-write user permission.
var RW = Perm{Write: true, User: true, Exec: false}

// RX is a read-execute user permission.
var RX = Perm{Write: false, User: true, Exec: true}

func (p Perm) bits() uint64 {
	b := hw.PtePresent
	if p.Write {
		b |= hw.PteWritable
	}
	if p.User {
		b |= hw.PteUser
	}
	if !p.Exec {
		b |= hw.PteNX
	}
	return b
}

// MapEntry is one entry of the abstract address-space map: the physical
// page a virtual address maps to, at which granularity, with which
// permissions (Listing 1, line 3).
type MapEntry struct {
	Phys hw.PhysAddr
	Size hw.PageSize
	Perm Perm
}

// tableFlags are the permissions on non-leaf entries: maximally permissive
// so leaves control effective permissions (standard x86-64 practice).
const tableFlags = hw.PtePresent | hw.PteWritable | hw.PteUser

// PageTable is one address space's page table.
type PageTable struct {
	alloc *mem.Allocator
	clock *hw.Clock
	cr3   hw.PhysAddr
	owner mem.Owner

	// Nodes is the flat set of all table-node pages of every level —
	// the flat permission storage of §4.1 applied to the page table
	// (tracked permissions of each PML level stored at the top, §6.2).
	nodes mem.PageSet

	// Ghost abstract state: one map per page size (§6.2).
	ghost4K map[hw.VirtAddr]MapEntry
	ghost2M map[hw.VirtAddr]MapEntry
	ghost1G map[hw.VirtAddr]MapEntry

	// OnStep, when set, is invoked after every individual page-table
	// entry write with whether the write touched a last-level entry.
	// The §4.2 consistency property — non-leaf steps leave the abstract
	// address space unchanged; a leaf step changes exactly one entry —
	// is checked through this hook.
	OnStep func(leafWrite bool)
}

// New allocates an empty page table (one zeroed PML4 node) whose node
// pages account to the CPU page-table subsystem.
func New(alloc *mem.Allocator, clock *hw.Clock) (*PageTable, error) {
	return NewOwned(alloc, clock, mem.OwnerPageTable)
}

// NewOwned allocates an empty page table whose node pages account to the
// given subsystem (the IOMMU uses the same 4-level format with its own
// closure, §4.2).
func NewOwned(alloc *mem.Allocator, clock *hw.Clock, owner mem.Owner) (*PageTable, error) {
	root, err := alloc.AllocPage4K(owner)
	if err != nil {
		return nil, err
	}
	return &PageTable{
		alloc:   alloc,
		clock:   clock,
		cr3:     root,
		owner:   owner,
		nodes:   mem.NewPageSet(root),
		ghost4K: make(map[hw.VirtAddr]MapEntry),
		ghost2M: make(map[hw.VirtAddr]MapEntry),
		ghost1G: make(map[hw.VirtAddr]MapEntry),
	}, nil
}

// CR3 returns the physical address of the root table.
func (t *PageTable) CR3() hw.PhysAddr { return t.cr3 }

// Mem returns the physical memory holding the table (ghost access for
// verification code).
func (t *PageTable) Mem() *hw.PhysMem { return t.alloc.Mem() }

// Mapping4K returns the abstract 4 KiB mapping (live reference; callers
// must not mutate).
func (t *PageTable) Mapping4K() map[hw.VirtAddr]MapEntry { return t.ghost4K }

// Mapping2M returns the abstract 2 MiB mapping.
func (t *PageTable) Mapping2M() map[hw.VirtAddr]MapEntry { return t.ghost2M }

// Mapping1G returns the abstract 1 GiB mapping.
func (t *PageTable) Mapping1G() map[hw.VirtAddr]MapEntry { return t.ghost1G }

// AddressSpace returns a fresh merged view of all three abstract maps —
// the Ψ.get_address_space(proc) of the paper's specifications.
func (t *PageTable) AddressSpace() map[hw.VirtAddr]MapEntry {
	out := make(map[hw.VirtAddr]MapEntry, len(t.ghost4K)+len(t.ghost2M)+len(t.ghost1G))
	for va, e := range t.ghost4K {
		out[va] = e
	}
	for va, e := range t.ghost2M {
		out[va] = e
	}
	for va, e := range t.ghost1G {
		out[va] = e
	}
	return out
}

// MappedCount returns the number of abstract mappings.
func (t *PageTable) MappedCount() int {
	return len(t.ghost4K) + len(t.ghost2M) + len(t.ghost1G)
}

// PageClosure returns the set of pages used by the page table itself: its
// table nodes. A page table owns no other objects (§4.2).
func (t *PageTable) PageClosure() mem.PageSet { return t.nodes.Clone() }

// MappedFrames returns the set of physical pages currently mapped, for
// isolation checks.
func (t *PageTable) MappedFrames() mem.PageSet {
	s := mem.NewPageSet()
	for _, e := range t.ghost4K {
		s.Insert(e.Phys)
	}
	for _, e := range t.ghost2M {
		s.Insert(e.Phys)
	}
	for _, e := range t.ghost1G {
		s.Insert(e.Phys)
	}
	return s
}

func (t *PageTable) write(addr hw.PhysAddr, v uint64, leaf bool) {
	t.clock.Charge(hw.CostPTWrite)
	t.alloc.Mem().WriteU64(addr, v)
	if t.OnStep != nil {
		t.OnStep(leaf)
	}
}

func (t *PageTable) read(addr hw.PhysAddr) uint64 {
	t.clock.Charge(hw.CostPTWalkLevel)
	return t.alloc.Mem().ReadU64(addr)
}

// ensureTable returns the next-level table pointed to by the entry at
// slot, allocating and installing a zeroed node if the entry is empty.
func (t *PageTable) ensureTable(slot hw.PhysAddr) (hw.PhysAddr, error) {
	e := t.read(slot)
	if e&hw.PtePresent != 0 {
		if e&hw.PteHuge != 0 {
			return 0, ErrConflict
		}
		return hw.PhysAddr(e & hw.PteAddrMask), nil
	}
	node, err := t.alloc.AllocPage4K(t.owner)
	if err != nil {
		return 0, err
	}
	t.nodes.Insert(node)
	t.write(slot, uint64(node)|tableFlags, false)
	return node, nil
}

func slotAddr(table hw.PhysAddr, index int) hw.PhysAddr {
	return table + hw.PhysAddr(index*hw.PtrSize)
}

// Map4K installs va -> phys at 4 KiB granularity.
func (t *PageTable) Map4K(va hw.VirtAddr, phys hw.PhysAddr, perm Perm) error {
	if !hw.Aligned4K(uint64(va)) || !hw.Aligned4K(uint64(phys)) {
		return fmt.Errorf("%w: va=%#x phys=%#x", ErrMisaligned, va, phys)
	}
	if t.covered(va) {
		return fmt.Errorf("%w: %#x", ErrAlreadyMapped, va)
	}
	l3, err := t.ensureTable(slotAddr(t.cr3, hw.L4Index(va)))
	if err != nil {
		return err
	}
	l2, err := t.ensureTable(slotAddr(l3, hw.L3Index(va)))
	if err != nil {
		return err
	}
	l1, err := t.ensureTable(slotAddr(l2, hw.L2Index(va)))
	if err != nil {
		return err
	}
	slot := slotAddr(l1, hw.L1Index(va))
	if t.read(slot)&hw.PtePresent != 0 {
		return fmt.Errorf("%w: %#x", ErrAlreadyMapped, va)
	}
	t.write(slot, uint64(phys)|perm.bits(), true)
	t.ghost4K[va] = MapEntry{Phys: phys, Size: hw.Size4K, Perm: perm}
	return nil
}

// Map2M installs va -> phys at 2 MiB granularity.
func (t *PageTable) Map2M(va hw.VirtAddr, phys hw.PhysAddr, perm Perm) error {
	if !hw.Aligned2M(uint64(va)) || !hw.Aligned2M(uint64(phys)) {
		return fmt.Errorf("%w: va=%#x phys=%#x", ErrMisaligned, va, phys)
	}
	if t.covered(va) {
		return fmt.Errorf("%w: %#x", ErrAlreadyMapped, va)
	}
	l3, err := t.ensureTable(slotAddr(t.cr3, hw.L4Index(va)))
	if err != nil {
		return err
	}
	l2, err := t.ensureTable(slotAddr(l3, hw.L3Index(va)))
	if err != nil {
		return err
	}
	slot := slotAddr(l2, hw.L2Index(va))
	if t.read(slot)&hw.PtePresent != 0 {
		return fmt.Errorf("%w: %#x", ErrConflict, va)
	}
	t.write(slot, uint64(phys)|perm.bits()|hw.PteHuge, true)
	t.ghost2M[va] = MapEntry{Phys: phys, Size: hw.Size2M, Perm: perm}
	return nil
}

// Map1G installs va -> phys at 1 GiB granularity.
func (t *PageTable) Map1G(va hw.VirtAddr, phys hw.PhysAddr, perm Perm) error {
	if !hw.Aligned1G(uint64(va)) || !hw.Aligned1G(uint64(phys)) {
		return fmt.Errorf("%w: va=%#x phys=%#x", ErrMisaligned, va, phys)
	}
	if t.covered(va) {
		return fmt.Errorf("%w: %#x", ErrAlreadyMapped, va)
	}
	l3, err := t.ensureTable(slotAddr(t.cr3, hw.L4Index(va)))
	if err != nil {
		return err
	}
	slot := slotAddr(l3, hw.L3Index(va))
	if t.read(slot)&hw.PtePresent != 0 {
		return fmt.Errorf("%w: %#x", ErrConflict, va)
	}
	t.write(slot, uint64(phys)|perm.bits()|hw.PteHuge, true)
	t.ghost1G[va] = MapEntry{Phys: phys, Size: hw.Size1G, Perm: perm}
	return nil
}

// Map dispatches on size.
func (t *PageTable) Map(va hw.VirtAddr, phys hw.PhysAddr, size hw.PageSize, perm Perm) error {
	switch size {
	case hw.Size4K:
		return t.Map4K(va, phys, perm)
	case hw.Size2M:
		return t.Map2M(va, phys, perm)
	case hw.Size1G:
		return t.Map1G(va, phys, perm)
	}
	return fmt.Errorf("pt: invalid page size %v", size)
}

// covered reports whether va falls inside any existing mapping (of any
// granularity) — the abstract domain-disjointness precondition.
func (t *PageTable) covered(va hw.VirtAddr) bool {
	if _, ok := t.ghost4K[va&^hw.VirtAddr(hw.PageSize4K-1)]; ok {
		return true
	}
	if _, ok := t.ghost2M[va&^hw.VirtAddr(hw.PageSize2M-1)]; ok {
		return true
	}
	if _, ok := t.ghost1G[va&^hw.VirtAddr(hw.PageSize1G-1)]; ok {
		return true
	}
	return false
}

// Lookup returns the abstract mapping covering va, if any.
func (t *PageTable) Lookup(va hw.VirtAddr) (MapEntry, bool) {
	if e, ok := t.ghost4K[va&^hw.VirtAddr(hw.PageSize4K-1)]; ok {
		return e, true
	}
	if e, ok := t.ghost2M[va&^hw.VirtAddr(hw.PageSize2M-1)]; ok {
		return e, true
	}
	if e, ok := t.ghost1G[va&^hw.VirtAddr(hw.PageSize1G-1)]; ok {
		return e, true
	}
	return MapEntry{}, false
}

// Unmap removes the mapping whose base is exactly va and returns its
// entry. It charges the TLB invalidation the architecture requires.
func (t *PageTable) Unmap(va hw.VirtAddr) (MapEntry, error) {
	if e, ok := t.ghost4K[va]; ok {
		l1, err := t.leafTable(va, 3)
		if err != nil {
			return MapEntry{}, err
		}
		t.write(slotAddr(l1, hw.L1Index(va)), 0, true)
		delete(t.ghost4K, va)
		t.clock.Charge(hw.CostInvlpg)
		return e, nil
	}
	if e, ok := t.ghost2M[va]; ok {
		l2, err := t.leafTable(va, 2)
		if err != nil {
			return MapEntry{}, err
		}
		t.write(slotAddr(l2, hw.L2Index(va)), 0, true)
		delete(t.ghost2M, va)
		t.clock.Charge(hw.CostInvlpg)
		return e, nil
	}
	if e, ok := t.ghost1G[va]; ok {
		l3, err := t.leafTable(va, 1)
		if err != nil {
			return MapEntry{}, err
		}
		t.write(slotAddr(l3, hw.L3Index(va)), 0, true)
		delete(t.ghost1G, va)
		t.clock.Charge(hw.CostInvlpg)
		return e, nil
	}
	return MapEntry{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
}

// leafTable walks depth levels below the root and returns the table that
// holds va's leaf entry at that depth (1 = PDPT, 2 = PD, 3 = PT).
func (t *PageTable) leafTable(va hw.VirtAddr, depth int) (hw.PhysAddr, error) {
	table := t.cr3
	idx := []int{hw.L4Index(va), hw.L3Index(va), hw.L2Index(va)}
	for d := 0; d < depth; d++ {
		e := t.read(slotAddr(table, idx[d]))
		if e&hw.PtePresent == 0 || e&hw.PteHuge != 0 {
			return 0, fmt.Errorf("%w: broken walk at depth %d for %#x", ErrNotMapped, d, va)
		}
		table = hw.PhysAddr(e & hw.PteAddrMask)
	}
	return table, nil
}

// Resolve performs a software walk (charging per-level cost) and returns
// the mapping covering va. This is the kernel's own walk; the MMU model
// in hw performs the hardware walk for refinement checks.
func (t *PageTable) Resolve(va hw.VirtAddr) (MapEntry, bool) {
	table := t.cr3
	e := t.read(slotAddr(table, hw.L4Index(va)))
	if e&hw.PtePresent == 0 {
		return MapEntry{}, false
	}
	e = t.read(slotAddr(hw.PhysAddr(e&hw.PteAddrMask), hw.L3Index(va)))
	if e&hw.PtePresent == 0 {
		return MapEntry{}, false
	}
	if e&hw.PteHuge != 0 {
		return entryFromPte(e, hw.Size1G), true
	}
	e = t.read(slotAddr(hw.PhysAddr(e&hw.PteAddrMask), hw.L2Index(va)))
	if e&hw.PtePresent == 0 {
		return MapEntry{}, false
	}
	if e&hw.PteHuge != 0 {
		return entryFromPte(e, hw.Size2M), true
	}
	e = t.read(slotAddr(hw.PhysAddr(e&hw.PteAddrMask), hw.L1Index(va)))
	if e&hw.PtePresent == 0 {
		return MapEntry{}, false
	}
	return entryFromPte(e, hw.Size4K), true
}

func entryFromPte(e uint64, size hw.PageSize) MapEntry {
	base := e & hw.PteAddrMask &^ (size.Bytes() - 1)
	return MapEntry{
		Phys: hw.PhysAddr(base),
		Size: size,
		Perm: Perm{
			Write: e&hw.PteWritable != 0,
			User:  e&hw.PteUser != 0,
			Exec:  e&hw.PteNX == 0,
		},
	}
}

// Destroy frees all table nodes. The abstract mapping must already be
// empty (the kernel unmaps and releases user frames first); this mirrors
// Atmosphere's rule that permissions are consumed at deallocation.
func (t *PageTable) Destroy() error {
	if t.MappedCount() != 0 {
		return fmt.Errorf("pt: destroy with %d live mappings", t.MappedCount())
	}
	for _, p := range t.nodes.Sorted() {
		if err := t.alloc.FreePage(p); err != nil {
			return err
		}
	}
	t.nodes = mem.NewPageSet()
	t.cr3 = 0
	return nil
}
