package pt

import (
	"errors"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

type fixture struct {
	mem   *hw.PhysMem
	mmu   *hw.MMU
	alloc *mem.Allocator
	clock *hw.Clock
	pt    *PageTable
}

func newFixture(t *testing.T, frames int) *fixture {
	t.Helper()
	pm := hw.NewPhysMem(frames)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(pm, clk, 1)
	table, err := New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: pm, mmu: hw.NewMMU(pm), alloc: alloc, clock: clk, pt: table}
}

func (f *fixture) userPage(t *testing.T) hw.PhysAddr {
	t.Helper()
	p, err := f.alloc.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *fixture) checkAll(t *testing.T) {
	t.Helper()
	if err := f.pt.CheckRefinement(f.mmu); err != nil {
		t.Fatal(err)
	}
	if err := f.pt.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestMap4KAndResolve(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	if err := f.pt.Map4K(0x40000000, p, RW); err != nil {
		t.Fatal(err)
	}
	e, ok := f.pt.Resolve(0x40000000)
	if !ok || e.Phys != p || e.Size != hw.Size4K || !e.Perm.Write {
		t.Fatalf("resolve = %+v ok=%v", e, ok)
	}
	tr, ok := f.mmu.Walk(f.pt.CR3(), 0x40000123)
	if !ok || tr.Phys != p+0x123 {
		t.Fatalf("mmu walk = %+v ok=%v", tr, ok)
	}
	f.checkAll(t)
}

func TestMapRejectsDoubleMap(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	if err := f.pt.Map4K(0x1000, p, RW); err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map4K(0x1000, p, RW); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("double map: %v", err)
	}
}

func TestMapRejectsMisaligned(t *testing.T) {
	f := newFixture(t, 64)
	if err := f.pt.Map4K(0x1001, 0x2000, RW); !errors.Is(err, ErrMisaligned) {
		t.Fatal("misaligned va accepted")
	}
	if err := f.pt.Map4K(0x1000, 0x2001, RW); !errors.Is(err, ErrMisaligned) {
		t.Fatal("misaligned phys accepted")
	}
	if err := f.pt.Map2M(hw.PageSize4K, 0, RW); !errors.Is(err, ErrMisaligned) {
		t.Fatal("misaligned 2M accepted")
	}
	if err := f.pt.Map1G(hw.PageSize2M, 0, RW); !errors.Is(err, ErrMisaligned) {
		t.Fatal("misaligned 1G accepted")
	}
}

func TestUnmapRestoresState(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	if err := f.pt.Map4K(0x5000, p, RW); err != nil {
		t.Fatal(err)
	}
	e, err := f.pt.Unmap(0x5000)
	if err != nil || e.Phys != p {
		t.Fatalf("unmap = %+v err=%v", e, err)
	}
	if _, ok := f.pt.Resolve(0x5000); ok {
		t.Fatal("resolve after unmap succeeded")
	}
	if _, ok := f.mmu.Walk(f.pt.CR3(), 0x5000); ok {
		t.Fatal("mmu walk after unmap succeeded")
	}
	if _, err := f.pt.Unmap(0x5000); !errors.Is(err, ErrNotMapped) {
		t.Fatal("double unmap not rejected")
	}
	f.checkAll(t)
}

func TestMap2MHugePage(t *testing.T) {
	f := newFixture(t, 3*hw.Pages4KPer2M)
	if _, err := f.alloc.Merge2M(); err != nil {
		t.Fatal(err)
	}
	p, err := f.alloc.AllocUserPage(mem.Size2M)
	if err != nil {
		t.Fatal(err)
	}
	va := hw.VirtAddr(1 << 21)
	if err := f.pt.Map2M(va, p, RW); err != nil {
		t.Fatal(err)
	}
	tr, ok := f.mmu.Walk(f.pt.CR3(), va+0x12345)
	if !ok || tr.Size != hw.Size2M || tr.Phys != p+0x12345 {
		t.Fatalf("2M walk = %+v ok=%v", tr, ok)
	}
	f.checkAll(t)
	if _, err := f.pt.Unmap(va); err != nil {
		t.Fatal(err)
	}
	f.checkAll(t)
}

func TestMapConflictGranularity(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	// Map a 4K page inside the first 2M region, then try to map the
	// region as 2M: the L2 entry already points at a PT.
	if err := f.pt.Map4K(0x1000, p, RW); err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map2M(0, 0, RW); !errors.Is(err, ErrConflict) {
		t.Fatalf("2M over PT: %v", err)
	}
	// And a 4K map under an existing 2M mapping must fail.
	va2m := hw.VirtAddr(4 << 21)
	if err := f.pt.Map2M(va2m, 0x200000, RW); err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map4K(va2m+0x3000, p, RW); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("4K under 2M: %v", err)
	}
}

func TestPermissionsPropagate(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	ro := Perm{Write: false, User: true, Exec: false}
	if err := f.pt.Map4K(0x9000, p, ro); err != nil {
		t.Fatal(err)
	}
	tr, ok := f.mmu.Walk(f.pt.CR3(), 0x9000)
	if !ok || tr.Writable || !tr.User || !tr.NX {
		t.Fatalf("ro mapping = %+v", tr)
	}
	f.checkAll(t)
}

func TestHighHalfAddresses(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	va := hw.VAFromIndices(511, 10, 20, 30)
	if err := f.pt.Map4K(va, p, RW); err != nil {
		t.Fatal(err)
	}
	tr, ok := f.mmu.Walk(f.pt.CR3(), va)
	if !ok || tr.Phys != p {
		t.Fatalf("high-half walk = %+v ok=%v", tr, ok)
	}
	f.checkAll(t)
}

func TestMapOtherEntriesUnchanged(t *testing.T) {
	// The §6.2 property that motivated the flat design: adding one
	// mapping changes no other abstract entry.
	f := newFixture(t, 256)
	var vas []hw.VirtAddr
	for i := 0; i < 30; i++ {
		va := hw.VirtAddr(0x100000 + i*hw.PageSize4K)
		if err := f.pt.Map4K(va, f.userPage(t), RW); err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	before := f.pt.AddressSpace()
	newVA := hw.VirtAddr(0x900000)
	if err := f.pt.Map4K(newVA, f.userPage(t), RW); err != nil {
		t.Fatal(err)
	}
	after := f.pt.AddressSpace()
	if len(after) != len(before)+1 {
		t.Fatal("domain grew by more than one")
	}
	for _, va := range vas {
		if before[va] != after[va] {
			t.Fatalf("mapping %#x changed", va)
		}
	}
	f.checkAll(t)
}

func TestStepConsistency(t *testing.T) {
	// §4.2: non-leaf page-table writes never change the abstract
	// address space; each leaf write changes exactly one entry.
	f := newFixture(t, 256)
	prev := f.pt.Enumerate()
	f.pt.OnStep = func(leaf bool) {
		cur := f.pt.Enumerate()
		if !leaf {
			if len(cur) != len(prev) {
				t.Fatalf("non-leaf step changed address space: %d -> %d", len(prev), len(cur))
			}
			for va, e := range prev {
				if cur[va] != e {
					t.Fatalf("non-leaf step changed mapping %#x", va)
				}
			}
		} else {
			diff := 0
			for va, e := range cur {
				if pe, ok := prev[va]; !ok || pe != e {
					diff++
				}
			}
			for va := range prev {
				if _, ok := cur[va]; !ok {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("leaf step changed %d entries, want exactly 1", diff)
			}
		}
		prev = cur
	}
	for i := 0; i < 10; i++ {
		va := hw.VirtAddr(uint64(i) << 30 / 2) // spread across L3/L2 boundaries
		va &^= hw.VirtAddr(hw.PageSize4K - 1)
		if err := f.pt.Map4K(va, f.userPage(t), RW); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.pt.Unmap(0); err != nil {
		t.Fatal(err)
	}
}

func TestPageClosureAndDestroy(t *testing.T) {
	f := newFixture(t, 64)
	p := f.userPage(t)
	if err := f.pt.Map4K(0x1000, p, RW); err != nil {
		t.Fatal(err)
	}
	closure := f.pt.PageClosure()
	if closure.Len() != 4 { // PML4 + PDPT + PD + PT
		t.Fatalf("closure = %d nodes", closure.Len())
	}
	alloc := f.alloc.AllocatedTo(mem.OwnerPageTable)
	if !closure.Equal(alloc) {
		t.Fatal("closure disagrees with allocator ownership")
	}
	if err := f.pt.Destroy(); err == nil {
		t.Fatal("destroy with live mapping should fail")
	}
	if _, err := f.pt.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Destroy(); err != nil {
		t.Fatal(err)
	}
	if f.alloc.AllocatedTo(mem.OwnerPageTable).Len() != 0 {
		t.Fatal("destroy leaked node pages")
	}
}

func TestMappedFrames(t *testing.T) {
	f := newFixture(t, 64)
	p1, p2 := f.userPage(t), f.userPage(t)
	f.pt.Map4K(0x1000, p1, RW)
	f.pt.Map4K(0x2000, p2, RW)
	frames := f.pt.MappedFrames()
	if !frames.Equal(mem.NewPageSet(p1, p2)) {
		t.Fatalf("mapped frames = %v", frames.Sorted())
	}
}

func TestRandomizedRefinement(t *testing.T) {
	f := newFixture(t, 1024)
	r := hw.NewRand(99)
	live := map[hw.VirtAddr]bool{}
	for step := 0; step < 400; step++ {
		if r.Bool() || len(live) == 0 {
			va := hw.VirtAddr(r.Uint64n(1<<30)) &^ hw.VirtAddr(hw.PageSize4K-1)
			p, err := f.alloc.AllocUserPage4K()
			if err != nil {
				continue
			}
			if err := f.pt.Map4K(va, p, RW); err != nil {
				f.alloc.DecRef(p)
				continue
			}
			live[va] = true
		} else {
			for va := range live {
				e, err := f.pt.Unmap(va)
				if err != nil {
					t.Fatal(err)
				}
				f.alloc.DecRef(e.Phys)
				delete(live, va)
				break
			}
		}
	}
	f.checkAll(t)
	if f.pt.MappedCount() != len(live) {
		t.Fatalf("ghost count %d != model %d", f.pt.MappedCount(), len(live))
	}
}

func TestMapChargesCycles(t *testing.T) {
	f := newFixture(t, 64)
	before := f.clock.Cycles()
	if err := f.pt.Map4K(0x1000, f.userPage(t), RW); err != nil {
		t.Fatal(err)
	}
	if f.clock.Cycles() <= before {
		t.Fatal("map charged no cycles")
	}
}

func TestLookupCoversSuperpages(t *testing.T) {
	f := newFixture(t, 64)
	va := hw.VirtAddr(6 << 21)
	if err := f.pt.Map2M(va, 0x400000, RW); err != nil {
		t.Fatal(err)
	}
	e, ok := f.pt.Lookup(va + 0x12345)
	if !ok || e.Size != hw.Size2M {
		t.Fatalf("lookup inside 2M = %+v ok=%v", e, ok)
	}
	if _, ok := f.pt.Lookup(va - 1); ok {
		t.Fatal("lookup below mapping succeeded")
	}
}

func TestPruneEmpty(t *testing.T) {
	f := newFixture(t, 128)
	// Build mappings in two distinct regions, then unmap one region:
	// its now-empty table chain is prunable, the other must survive.
	vaA := hw.VirtAddr(0x40000000)
	vaB := hw.VirtAddr(1) << 39 // different PML4 entry
	f.pt.Map4K(vaA, f.userPage(t), RW)
	f.pt.Map4K(vaB, f.userPage(t), RW)
	nodesFull := f.pt.PageClosure().Len()
	if _, err := f.pt.Unmap(vaB); err != nil {
		t.Fatal(err)
	}
	freed := f.pt.PruneEmpty()
	if freed != 3 { // B's PDPT+PD+PT chain
		t.Fatalf("pruned %d nodes, want 3", freed)
	}
	if f.pt.PageClosure().Len() != nodesFull-3 {
		t.Fatal("closure not reduced")
	}
	// A's mapping still resolves; structure and refinement intact.
	if _, ok := f.pt.Resolve(vaA); !ok {
		t.Fatal("surviving mapping lost")
	}
	f.checkAll(t)
	// Prune on a table with no empties is a no-op.
	if f.pt.PruneEmpty() != 0 {
		t.Fatal("second prune freed something")
	}
}

func TestPruneEmptyNeverFreesRoot(t *testing.T) {
	f := newFixture(t, 32)
	if f.pt.PruneEmpty() != 0 {
		t.Fatal("empty table pruned its root")
	}
	if f.pt.PageClosure().Len() != 1 {
		t.Fatal("root freed")
	}
}
