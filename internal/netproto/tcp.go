package netproto

import (
	"encoding/binary"
)

// TCP-lite: enough of TCP for the httpd evaluation — three-way
// handshake, in-order data segments with piggybacked ACKs, and FIN
// teardown. No retransmission or windowing: the simulated link neither
// drops nor reorders.

// TCP header flags.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeaderLen is the fixed header size this dialect uses (no options).
const TCPHeaderLen = 20

// TCPPacket is a parsed view of a TCP-over-IPv4-over-Ethernet frame.
type TCPPacket struct {
	DstMAC, SrcMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Payload          []byte
}

// Tuple extracts the flow five-tuple.
func (p *TCPPacket) Tuple() FiveTuple {
	return FiveTuple{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: ProtoTCP}
}

// Reverse returns the reply direction's five-tuple.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{SrcIP: t.DstIP, DstIP: t.SrcIP, SrcPort: t.DstPort, DstPort: t.SrcPort, Proto: t.Proto}
}

// BuildTCP assembles a TCP frame into buf and returns the frame length.
func BuildTCP(buf []byte, srcMAC, dstMAC MAC, srcIP, dstIP IPv4,
	srcPort, dstPort uint16, seq, ack uint32, flags uint8, payload []byte) (int, error) {
	n := EthHeaderLen + IPv4HeaderLen + TCPHeaderLen + len(payload)
	pad := 0
	if n < MinFrameLen {
		pad = MinFrameLen - n
		n = MinFrameLen
	}
	if len(buf) < n {
		return 0, ErrTooShort
	}
	copy(buf[0:6], dstMAC[:])
	copy(buf[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)

	ip := buf[EthHeaderLen:]
	// Padding is Ethernet-level; the IP total length excludes it, which
	// is how the receiver recovers the exact payload length.
	ipLen := IPv4HeaderLen + TCPHeaderLen + len(payload)
	ip[0] = 0x45
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	binary.BigEndian.PutUint16(ip[4:6], 0)
	binary.BigEndian.PutUint16(ip[6:8], 0x4000)
	ip[8] = 64
	ip[9] = ProtoTCP
	binary.BigEndian.PutUint16(ip[10:12], 0)
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:IPv4HeaderLen]))

	tcp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], srcPort)
	binary.BigEndian.PutUint16(tcp[2:4], dstPort)
	binary.BigEndian.PutUint32(tcp[4:8], seq)
	binary.BigEndian.PutUint32(tcp[8:12], ack)
	tcp[12] = (TCPHeaderLen / 4) << 4 // data offset
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:16], 0xffff) // window
	binary.BigEndian.PutUint16(tcp[16:18], 0)      // checksum (link is lossless)
	binary.BigEndian.PutUint16(tcp[18:20], 0)      // urgent
	copy(tcp[TCPHeaderLen:], payload)
	for i := TCPHeaderLen + len(payload); i < TCPHeaderLen+len(payload)+pad; i++ {
		tcp[i] = 0
	}
	return n, nil
}

// ParseTCP parses a TCP frame in place. The payload excludes padding
// (its length comes from the IP total length).
func ParseTCP(frame []byte) (TCPPacket, error) {
	var p TCPPacket
	if len(frame) < EthHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		return p, ErrTooShort
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return p, ErrNotIPv4
	}
	copy(p.DstMAC[:], frame[0:6])
	copy(p.SrcMAC[:], frame[6:12])
	ip := frame[EthHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, ErrNotIPv4
	}
	ihl := int(ip[0]&0xf) * 4
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if ip[9] != ProtoTCP {
		return p, ErrNotUDP
	}
	if len(ip) < ihl+TCPHeaderLen || totalLen < ihl+TCPHeaderLen || totalLen > len(ip) {
		return p, ErrTooShort
	}
	copy(p.SrcIP[:], ip[12:16])
	copy(p.DstIP[:], ip[16:20])
	tcp := ip[ihl:totalLen]
	p.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	p.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	p.Seq = binary.BigEndian.Uint32(tcp[4:8])
	p.Ack = binary.BigEndian.Uint32(tcp[8:12])
	off := int(tcp[12]>>4) * 4
	if off < TCPHeaderLen || len(tcp) < off {
		return p, ErrTooShort
	}
	p.Flags = tcp[13]
	p.Payload = tcp[off:]
	return p, nil
}
