package netproto

import (
	"bytes"
	"errors"
	"fmt"
)

// Minimal HTTP/1.1 for the httpd evaluation (§6.6): request-line parsing
// and static responses, enough to serve wrk-style load.

// HTTPRequest is a parsed request line plus headers of interest.
type HTTPRequest struct {
	Method    string
	Path      string
	KeepAlive bool
}

// ErrBadRequest reports an unparsable request.
var ErrBadRequest = errors.New("netproto: bad HTTP request")

var (
	crlf       = []byte("\r\n")
	connClose  = []byte("Connection: close")
	httpSuffix = []byte(" HTTP/1.1")
)

// ParseHTTPRequest parses the request head in buf.
func ParseHTTPRequest(buf []byte) (HTTPRequest, error) {
	var r HTTPRequest
	lineEnd := bytes.Index(buf, crlf)
	if lineEnd < 0 {
		return r, ErrBadRequest
	}
	line := buf[:lineEnd]
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return r, ErrBadRequest
	}
	r.Method = string(line[:sp])
	rest := line[sp+1:]
	if !bytes.HasSuffix(rest, httpSuffix) {
		// HTTP/1.0 or garbage; accept 1.0 without keep-alive.
		sp2 := bytes.IndexByte(rest, ' ')
		if sp2 < 0 {
			return r, ErrBadRequest
		}
		r.Path = string(rest[:sp2])
		return r, nil
	}
	r.Path = string(rest[:len(rest)-len(httpSuffix)])
	r.KeepAlive = !bytes.Contains(buf, connClose) // 1.1 default keep-alive
	return r, nil
}

// BuildHTTPResponse writes a 200 response with the body into buf and
// returns the length.
func BuildHTTPResponse(buf []byte, body []byte, keepAlive bool) (int, error) {
	conn := "keep-alive"
	if !keepAlive {
		conn = "close"
	}
	head := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: atmo-httpd\r\nContent-Type: text/html\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n", len(body), conn)
	if len(buf) < len(head)+len(body) {
		return 0, ErrTooShort
	}
	n := copy(buf, head)
	n += copy(buf[n:], body)
	return n, nil
}

// BuildHTTP404 writes a 404 response.
func BuildHTTP404(buf []byte) (int, error) {
	const resp = "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
	if len(buf) < len(resp) {
		return 0, ErrTooShort
	}
	return copy(buf, resp), nil
}
