package netproto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuildParseUDPRoundTrip(t *testing.T) {
	buf := make([]byte, 128)
	payload := []byte("hello packet")
	n, err := BuildUDP(buf, MAC{1}, MAC{2}, IPv4{10, 0, 0, 1}, IPv4{10, 0, 0, 2}, 1234, 53, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n < MinFrameLen {
		t.Fatalf("frame %d below minimum", n)
	}
	p, err := ParseUDP(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcPort != 1234 || p.DstPort != 53 {
		t.Fatalf("ports %d %d", p.SrcPort, p.DstPort)
	}
	if p.SrcIP != (IPv4{10, 0, 0, 1}) || p.DstIP != (IPv4{10, 0, 0, 2}) {
		t.Fatal("addresses wrong")
	}
	if !bytes.HasPrefix(p.Payload, payload) {
		t.Fatalf("payload %q", p.Payload)
	}
	if err := VerifyIPv4Checksum(buf[:n]); err != nil {
		t.Fatal(err)
	}
}

func TestParseUDPRejectsGarbage(t *testing.T) {
	if _, err := ParseUDP([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	buf := make([]byte, 64)
	buf[12], buf[13] = 0x08, 0x06 // ARP
	if _, err := ParseUDP(buf); err != ErrNotIPv4 {
		t.Fatalf("ARP accepted: %v", err)
	}
	buf[12], buf[13] = 0x08, 0x00
	buf[14] = 0x45
	buf[23] = ProtoTCP
	if _, err := ParseUDP(buf); err != ErrNotUDP {
		t.Fatalf("TCP accepted as UDP: %v", err)
	}
}

func TestChecksumProperties(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		// Writing the computed checksum into a zeroed field makes the
		// whole buffer sum to zero (RFC 1071).
		b := append([]byte(nil), data...)
		b[0], b[1] = 0, 0
		c := Checksum(b)
		b[0], b[1] = byte(c>>8), byte(c)
		return Checksum(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteDstIP(t *testing.T) {
	buf := make([]byte, 128)
	n, _ := BuildUDP(buf, MAC{1}, MAC{2}, IPv4{10, 0, 0, 1}, IPv4{10, 0, 0, 2}, 1, 2, nil)
	if err := RewriteDstIP(buf[:n], IPv4{172, 16, 0, 9}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyIPv4Checksum(buf[:n]); err != nil {
		t.Fatal("checksum not fixed after rewrite")
	}
	p, err := ParseUDP(buf[:n])
	if err != nil || p.DstIP != (IPv4{172, 16, 0, 9}) {
		t.Fatalf("dst not rewritten: %v %v", p.DstIP, err)
	}
}

func TestHTTPParse(t *testing.T) {
	req, err := ParseHTTPRequest([]byte("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || !req.KeepAlive {
		t.Fatalf("parsed %+v", req)
	}
	req, err = ParseHTTPRequest([]byte("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"))
	if err != nil || req.KeepAlive {
		t.Fatal("connection: close not honored")
	}
	if _, err := ParseHTTPRequest([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	req, err = ParseHTTPRequest([]byte("GET /x HTTP/1.0\r\n\r\n"))
	if err != nil || req.KeepAlive || req.Path != "/x" {
		t.Fatalf("HTTP/1.0 handling: %+v %v", req, err)
	}
}

func TestHTTPResponse(t *testing.T) {
	buf := make([]byte, 512)
	body := []byte("<html>hi</html>")
	n, err := BuildHTTPResponse(buf, body, true)
	if err != nil {
		t.Fatal(err)
	}
	resp := string(buf[:n])
	if !bytes.Contains(buf[:n], body) || !bytes.Contains(buf[:n], []byte("200 OK")) {
		t.Fatalf("response %q", resp)
	}
	if _, err := BuildHTTPResponse(make([]byte, 4), body, true); err == nil {
		t.Fatal("overflow not detected")
	}
	if n, err := BuildHTTP404(buf); err != nil || !bytes.Contains(buf[:n], []byte("404")) {
		t.Fatal("404 wrong")
	}
}

func TestFiveTuple(t *testing.T) {
	buf := make([]byte, 128)
	n, _ := BuildUDP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 99, 100, nil)
	p, _ := ParseUDP(buf[:n])
	tu := p.Tuple()
	if tu.SrcPort != 99 || tu.DstPort != 100 || tu.Proto != ProtoUDP {
		t.Fatalf("tuple %+v", tu)
	}
}

func TestMACStringAndIPString(t *testing.T) {
	if (MAC{0xde, 0xad, 0xbe, 0xef, 0, 1}).String() != "de:ad:be:ef:00:01" {
		t.Fatal("MAC string")
	}
	if (IPv4{192, 168, 0, 1}).String() != "192.168.0.1" {
		t.Fatal("IP string")
	}
}
