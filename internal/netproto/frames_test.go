package netproto

import (
	"bytes"
	"testing"
)

// TestBuildParseTCPRoundTrip: every header field and the payload
// survive a build/parse round trip, and padding added to reach the
// minimum frame size is stripped via the IP total length.
func TestBuildParseTCPRoundTrip(t *testing.T) {
	buf := make([]byte, 256)
	payload := []byte("GET")
	n, err := BuildTCP(buf, MAC{1}, MAC{2}, IPv4{10, 0, 0, 1}, IPv4{10, 0, 0, 2},
		4321, 80, 0x11223344, 0x55667788, TCPSyn|TCPAck, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != MinFrameLen {
		t.Fatalf("3-byte payload frame is %d bytes, want padded to %d", n, MinFrameLen)
	}
	p, err := ParseTCP(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcPort != 4321 || p.DstPort != 80 {
		t.Fatalf("ports %d %d", p.SrcPort, p.DstPort)
	}
	if p.Seq != 0x11223344 || p.Ack != 0x55667788 {
		t.Fatalf("seq/ack %#x %#x", p.Seq, p.Ack)
	}
	if p.Flags != TCPSyn|TCPAck {
		t.Fatalf("flags %#x", p.Flags)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload %q (padding not stripped?)", p.Payload)
	}
	rev := p.Tuple().Reverse()
	if rev.SrcPort != 80 || rev.DstPort != 4321 || rev.SrcIP != p.DstIP || rev.Proto != ProtoTCP {
		t.Fatalf("reverse tuple %+v", rev)
	}
}

// TestParseTruncatedFrames: every prefix of a valid frame either parses
// or errors — never panics, and never yields a payload that reaches
// past the prefix.
func TestParseTruncatedFrames(t *testing.T) {
	buf := make([]byte, 256)
	un, err := BuildUDP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 9, 10,
		[]byte("truncate me please, I am a long payload"))
	if err != nil {
		t.Fatal(err)
	}
	udpFrame := append([]byte(nil), buf[:un]...)
	tn, err := BuildTCP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 9, 10,
		1, 2, TCPPsh|TCPAck, []byte("truncate me too, also quite long as payloads go"))
	if err != nil {
		t.Fatal(err)
	}
	tcpFrame := append([]byte(nil), buf[:tn]...)

	for cut := 0; cut < len(udpFrame); cut++ {
		if p, err := ParseUDP(udpFrame[:cut]); err == nil && len(p.Payload) > cut {
			t.Fatalf("UDP prefix %d: payload reaches past the frame", cut)
		}
	}
	// The full UDP frame must still parse after the sweep (no aliasing
	// damage from partial parses).
	if _, err := ParseUDP(udpFrame); err != nil {
		t.Fatalf("full UDP frame: %v", err)
	}
	for cut := 0; cut < len(tcpFrame); cut++ {
		if p, err := ParseTCP(tcpFrame[:cut]); err == nil && len(p.Payload) > cut {
			t.Fatalf("TCP prefix %d: payload reaches past the frame", cut)
		}
	}
	if _, err := ParseTCP(tcpFrame); err != nil {
		t.Fatalf("full TCP frame: %v", err)
	}
}

// TestParseLengthFieldLies: header length fields that point past the
// received bytes must be rejected, not trusted.
func TestParseLengthFieldLies(t *testing.T) {
	buf := make([]byte, 256)
	n, _ := BuildUDP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 9, 10, []byte("xyz"))
	frame := append([]byte(nil), buf[:n]...)

	// UDP length claiming more bytes than the frame carries.
	udpOff := EthHeaderLen + IPv4HeaderLen
	frame[udpOff+4], frame[udpOff+5] = 0xff, 0xff
	if _, err := ParseUDP(frame); err != ErrTooShort {
		t.Fatalf("lying UDP length accepted: %v", err)
	}
	// UDP length smaller than its own header.
	frame[udpOff+4], frame[udpOff+5] = 0, UDPHeaderLen-1
	if _, err := ParseUDP(frame); err != ErrTooShort {
		t.Fatalf("undersized UDP length accepted: %v", err)
	}

	// An IHL pointing past the frame.
	n, _ = BuildUDP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 9, 10, nil)
	frame = append(frame[:0], buf[:n]...)
	frame[EthHeaderLen] = 0x4f // version 4, IHL 15 -> 60-byte header
	if _, err := ParseUDP(frame); err != ErrTooShort {
		t.Fatalf("oversized IHL accepted: %v", err)
	}

	// TCP data offset pointing past the segment.
	n, _ = BuildTCP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 9, 10, 1, 2, TCPAck, nil)
	frame = append(frame[:0], buf[:n]...)
	frame[EthHeaderLen+IPv4HeaderLen+12] = 0xf0 // offset 15 -> 60-byte header
	if _, err := ParseTCP(frame); err != ErrTooShort {
		t.Fatalf("lying TCP offset accepted: %v", err)
	}
	// TCP total length beyond the frame.
	n, _ = BuildTCP(buf, MAC{1}, MAC{2}, IPv4{1, 2, 3, 4}, IPv4{5, 6, 7, 8}, 9, 10, 1, 2, TCPAck, nil)
	frame = append(frame[:0], buf[:n]...)
	frame[EthHeaderLen+2], frame[EthHeaderLen+3] = 0xff, 0xff
	if _, err := ParseTCP(frame); err != ErrTooShort {
		t.Fatalf("lying IP total length accepted: %v", err)
	}
}

// TestBuildRejectsSmallBuffers: builders report ErrTooShort instead of
// writing out of bounds.
func TestBuildRejectsSmallBuffers(t *testing.T) {
	small := make([]byte, MinFrameLen-1)
	if _, err := BuildUDP(small, MAC{}, MAC{}, IPv4{}, IPv4{}, 1, 2, nil); err != ErrTooShort {
		t.Fatalf("BuildUDP into %d bytes: %v", len(small), err)
	}
	if _, err := BuildTCP(small, MAC{}, MAC{}, IPv4{}, IPv4{}, 1, 2, 0, 0, 0, nil); err != ErrTooShort {
		t.Fatalf("BuildTCP into %d bytes: %v", len(small), err)
	}
}
