package netproto

import (
	"bytes"
	"errors"
	"testing"
)

func mustHeader(t *testing.T, h TraceHeader) []byte {
	t.Helper()
	buf := make([]byte, TraceHeaderLen)
	n, err := EncodeTraceHeader(buf, h)
	if err != nil || n != TraceHeaderLen {
		t.Fatalf("encode: n=%d err=%v", n, err)
	}
	return buf
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	want := TraceHeader{TraceID: 0xdeadbeefcafef00d, Hop: 3, Parent: 0x01020304}
	payload := append(mustHeader(t, want), []byte("kv request bytes")...)
	got, rest, err := DecodeTraceHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if !bytes.Equal(rest, []byte("kv request bytes")) {
		t.Fatalf("rest = %q", rest)
	}
}

func TestTraceHeaderUpdate(t *testing.T) {
	buf := mustHeader(t, TraceHeader{TraceID: 42, Hop: 0, Parent: 0})
	if err := UpdateTraceHeader(buf, 1, 777); err != nil {
		t.Fatal(err)
	}
	h, _, err := DecodeTraceHeader(buf)
	if err != nil {
		t.Fatalf("update broke the checksum: %v", err)
	}
	if h.TraceID != 42 || h.Hop != 1 || h.Parent != 777 {
		t.Fatalf("after update: %+v", h)
	}
	if err := UpdateTraceHeader(buf[:TraceHeaderLen-1], 2, 0); !errors.Is(err, ErrNoTraceHeader) {
		t.Fatalf("update on truncated buffer: err=%v", err)
	}
}

// TestTraceHeaderEncodeShort pins the only encode failure mode.
func TestTraceHeaderEncodeShort(t *testing.T) {
	if _, err := EncodeTraceHeader(make([]byte, TraceHeaderLen-1), TraceHeader{}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short encode: err=%v", err)
	}
}

// TestTraceHeaderRejectsTruncation covers every truncation length: a
// partial header must decode to ErrNoTraceHeader, never to a header.
func TestTraceHeaderRejectsTruncation(t *testing.T) {
	full := mustHeader(t, TraceHeader{TraceID: 0x1122334455667788, Hop: 2, Parent: 9})
	for n := 0; n < TraceHeaderLen; n++ {
		h, rest, err := DecodeTraceHeader(full[:n])
		if !errors.Is(err, ErrNoTraceHeader) {
			t.Fatalf("len %d: err=%v", n, err)
		}
		if h != (TraceHeader{}) || rest != nil {
			t.Fatalf("len %d: leaked header %+v rest %v", n, h, rest)
		}
	}
	if _, _, err := DecodeTraceHeader(nil); !errors.Is(err, ErrNoTraceHeader) {
		t.Fatalf("nil payload: err=%v", err)
	}
}

// TestTraceHeaderRejectsCorruption is the LinkCorrupt coverage: flip
// every bit of a valid header in turn (the table), and the decoder must
// either reject the frame outright or — never — return a different
// trace ID than the one encoded. Corrupting the check byte itself must
// also reject, so a lying checksum cannot launder a damaged header.
func TestTraceHeaderRejectsCorruption(t *testing.T) {
	orig := TraceHeader{TraceID: 0x0123456789abcdef, Hop: 1, Parent: 0xfeedface}
	for byteIx := 0; byteIx < TraceHeaderLen; byteIx++ {
		for bit := 0; bit < 8; bit++ {
			buf := mustHeader(t, orig)
			buf[byteIx] ^= 1 << bit
			h, _, err := DecodeTraceHeader(buf)
			if err == nil {
				t.Fatalf("byte %d bit %d: corrupted header decoded as %+v", byteIx, bit, h)
			}
			if h.TraceID != 0 {
				t.Fatalf("byte %d bit %d: error path leaked trace ID %#x", byteIx, bit, h.TraceID)
			}
			switch byteIx {
			case 0, 1:
				if !errors.Is(err, ErrNoTraceHeader) {
					t.Fatalf("magic corruption must read as no-header, got %v", err)
				}
			default:
				if !errors.Is(err, ErrTraceHeaderSum) {
					t.Fatalf("byte %d bit %d: want checksum error, got %v", byteIx, bit, err)
				}
			}
		}
	}
}

// TestTraceHeaderFuzzCorruption is the fuzz-style sweep: a seeded LCG
// mangles random byte runs of random frames. The decoder must never
// panic, and whenever it does return a header, the input must be
// byte-identical to a real encoding of that header (no mis-joins).
func TestTraceHeaderFuzzCorruption(t *testing.T) {
	lcg := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(n))
	}
	for round := 0; round < 5000; round++ {
		orig := TraceHeader{
			TraceID: lcg * 0x2545f4914f6cdd1d,
			Hop:     uint8(next(5)),
			Parent:  uint32(next(1 << 16)),
		}
		payload := append(mustHeader(t, orig), byte(next(256)), byte(next(256)))
		// Corrupt 1..4 bytes anywhere in the buffer.
		for k := 0; k <= next(4); k++ {
			payload[next(len(payload))] ^= byte(1 + next(255))
		}
		// And sometimes truncate.
		if next(4) == 0 {
			payload = payload[:next(len(payload)+1)]
		}
		h, _, err := DecodeTraceHeader(payload)
		if err != nil {
			continue // rejected: the safe outcome
		}
		canonical := mustHeader(t, h)
		if !bytes.Equal(payload[:TraceHeaderLen], canonical) {
			t.Fatalf("round %d: decoder accepted a non-canonical header: %x -> %+v", round, payload[:TraceHeaderLen], h)
		}
	}
}

func TestTraceIDUniqueAcrossAttemptsAndRequests(t *testing.T) {
	seen := map[uint64][3]int{}
	for flow := 0; flow < 8; flow++ {
		for seq := 0; seq < 8; seq++ {
			for attempt := 0; attempt < 4; attempt++ {
				id := TraceID(1107, flow, uint64(seq), attempt)
				if prev, dup := seen[id]; dup {
					t.Fatalf("trace ID collision: flow=%d seq=%d attempt=%d vs %v", flow, seq, attempt, prev)
				}
				seen[id] = [3]int{flow, seq, attempt}
			}
		}
	}
	if TraceID(1, 0, 0, 0) == TraceID(2, 0, 0, 0) {
		t.Fatal("seed does not perturb the trace ID")
	}
}
