package netproto

import (
	"encoding/binary"
	"errors"
)

// Distributed-trace context header. When cluster-level tracing is on,
// the client prepends this 16-byte header to the UDP payload ahead of
// the application request; every hop (LB forward, backend serve, LB
// return) increments the hop count and stamps its own span reference so
// the receiving side can link per-machine spans into one causal chain.
// Replies echo the header back to the client. When tracing is off the
// header is simply absent — the wire bytes are identical to an
// untraced build, which is what keeps propagation zero-cost.
//
// Layout (little-endian scalars):
//
//	[0]     magic 0xA7
//	[1]     magic 0x7A
//	[2]     hop count (0 = client send, 1 = LB fwd, 2 = backend, 3 = LB return)
//	[3]     check: FNV-1a over the other 15 bytes, folded to one byte
//	[4:12]  trace ID (one per request attempt)
//	[12:16] parent span ref (the previous hop's span sequence number)
//
// The check byte exists so that a corrupted or truncated header is
// rejected rather than mis-joined to another trace: DecodeTraceHeader
// fails closed on any magic, length, or checksum mismatch.

// TraceHeaderLen is the on-wire size of a trace-context header.
const TraceHeaderLen = 16

// Trace header magic bytes.
const (
	traceMagic0 = 0xA7
	traceMagic1 = 0x7A
)

// Trace header errors.
var (
	ErrNoTraceHeader  = errors.New("netproto: no trace header")
	ErrTraceHeaderSum = errors.New("netproto: trace header checksum mismatch")
)

// TraceHeader is the decoded trace context carried ahead of the
// application payload.
type TraceHeader struct {
	TraceID uint64 // FNV-1a of (seed, flow, request seq, attempt)
	Hop     uint8
	Parent  uint32 // span ref of the hop that last forwarded the frame
}

// traceCheck folds an FNV-1a hash of the 15 non-check header bytes to
// one byte. A single flipped bit anywhere in the header changes it.
func traceCheck(b []byte) byte {
	h := uint64(14695981039346656037)
	for i := 0; i < TraceHeaderLen; i++ {
		if i == 3 {
			continue
		}
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	var c byte
	for i := 0; i < 8; i++ {
		c ^= byte(h >> (8 * i))
	}
	return c
}

// EncodeTraceHeader writes h into the first TraceHeaderLen bytes of buf
// and returns TraceHeaderLen. It charges no cycles and is safe to call
// on the hot path; buf too short is the only error.
func EncodeTraceHeader(buf []byte, h TraceHeader) (int, error) {
	if len(buf) < TraceHeaderLen {
		return 0, ErrTooShort
	}
	buf[0] = traceMagic0
	buf[1] = traceMagic1
	buf[2] = h.Hop
	binary.LittleEndian.PutUint64(buf[4:12], h.TraceID)
	binary.LittleEndian.PutUint32(buf[12:16], h.Parent)
	buf[3] = traceCheck(buf)
	return TraceHeaderLen, nil
}

// DecodeTraceHeader parses a trace header off the front of payload and
// returns it with the remaining application bytes. It fails closed:
// truncated buffers and wrong magic return ErrNoTraceHeader, a magic
// match with a bad checksum returns ErrTraceHeaderSum, and in neither
// case is a header value returned that could be mis-joined to another
// trace. Nil and short payloads are safe.
func DecodeTraceHeader(payload []byte) (TraceHeader, []byte, error) {
	if len(payload) < TraceHeaderLen || payload[0] != traceMagic0 || payload[1] != traceMagic1 {
		return TraceHeader{}, nil, ErrNoTraceHeader
	}
	if traceCheck(payload[:TraceHeaderLen]) != payload[3] {
		return TraceHeader{}, nil, ErrTraceHeaderSum
	}
	h := TraceHeader{
		TraceID: binary.LittleEndian.Uint64(payload[4:12]),
		Hop:     payload[2],
		Parent:  binary.LittleEndian.Uint32(payload[12:16]),
	}
	return h, payload[TraceHeaderLen:], nil
}

// UpdateTraceHeader rewrites the hop count and parent span ref of a
// valid in-place header (what a forwarding hop does) and fixes the
// check byte. The trace ID is never rewritten — identity is stamped
// once, at the client.
func UpdateTraceHeader(payload []byte, hop uint8, parent uint32) error {
	if len(payload) < TraceHeaderLen || payload[0] != traceMagic0 || payload[1] != traceMagic1 {
		return ErrNoTraceHeader
	}
	payload[2] = hop
	binary.LittleEndian.PutUint32(payload[12:16], parent)
	payload[3] = traceCheck(payload[:TraceHeaderLen])
	return nil
}

// TraceID derives an attempt's trace ID: FNV-1a over (seed, flow,
// request sequence number, attempt). Including the per-flow request
// sequence keeps IDs unique across a flow's successive requests, so a
// straggler reply from a finished request can never be mis-joined to
// the flow's next one.
func TraceID(seed uint64, flow int, seq uint64, attempt int) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range [4]uint64{seed, uint64(flow), seq, uint64(attempt)} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}
