// Package netproto implements the wire formats the evaluation workloads
// speak: Ethernet II, IPv4, UDP (the 64-byte packets of §6.5.1 and the
// Maglev/kv-store traffic of §6.6), and a minimal HTTP/1.1 for httpd.
// Everything is stdlib-only and allocation-conscious: the driver paths
// parse headers in place.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	// MinFrameLen is the minimum Ethernet frame (without FCS), the
	// 64-byte packets of the evaluation minus the 4-byte FCS.
	MinFrameLen = 60
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// Parse errors.
var (
	ErrTooShort = errors.New("netproto: packet too short")
	ErrNotIPv4  = errors.New("netproto: not IPv4")
	ErrNotUDP   = errors.New("netproto: not UDP")
	ErrChecksum = errors.New("netproto: bad checksum")
)

// MAC is an Ethernet address.
type MAC [6]byte

// String implements fmt.Stringer.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is an IPv4 address.
type IPv4 [4]byte

// String implements fmt.Stringer.
func (a IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// UDPPacket is a parsed view of a UDP-over-IPv4-over-Ethernet frame.
// Slices alias the underlying frame.
type UDPPacket struct {
	DstMAC, SrcMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Payload          []byte
}

// FiveTuple is a flow key.
type FiveTuple struct {
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Proto            uint8
}

// BuildUDP assembles a UDP frame into buf and returns the frame length.
// buf must be at least EthHeaderLen+IPv4HeaderLen+UDPHeaderLen+
// len(payload) bytes and frames shorter than MinFrameLen are padded.
func BuildUDP(buf []byte, srcMAC, dstMAC MAC, srcIP, dstIP IPv4, srcPort, dstPort uint16, payload []byte) (int, error) {
	n := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + len(payload)
	pad := 0
	if n < MinFrameLen {
		pad = MinFrameLen - n
		n = MinFrameLen
	}
	if len(buf) < n {
		return 0, ErrTooShort
	}
	copy(buf[0:6], dstMAC[:])
	copy(buf[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)

	ip := buf[EthHeaderLen:]
	ipLen := IPv4HeaderLen + UDPHeaderLen + len(payload) + pad
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	binary.BigEndian.PutUint16(ip[4:6], 0) // id
	binary.BigEndian.PutUint16(ip[6:8], 0x4000)
	ip[8] = 64 // TTL
	ip[9] = ProtoUDP
	binary.BigEndian.PutUint16(ip[10:12], 0) // checksum below
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:IPv4HeaderLen]))

	udp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], srcPort)
	binary.BigEndian.PutUint16(udp[2:4], dstPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(UDPHeaderLen+len(payload)+pad))
	binary.BigEndian.PutUint16(udp[6:8], 0) // UDP checksum optional over IPv4
	copy(udp[UDPHeaderLen:], payload)
	for i := UDPHeaderLen + len(payload); i < UDPHeaderLen+len(payload)+pad; i++ {
		udp[i] = 0
	}
	return n, nil
}

// ParseUDP parses a frame in place.
func ParseUDP(frame []byte) (UDPPacket, error) {
	var p UDPPacket
	if len(frame) < EthHeaderLen+IPv4HeaderLen+UDPHeaderLen {
		return p, ErrTooShort
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return p, ErrNotIPv4
	}
	copy(p.DstMAC[:], frame[0:6])
	copy(p.SrcMAC[:], frame[6:12])
	ip := frame[EthHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, ErrNotIPv4
	}
	ihl := int(ip[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl+UDPHeaderLen {
		return p, ErrTooShort
	}
	if ip[9] != ProtoUDP {
		return p, ErrNotUDP
	}
	copy(p.SrcIP[:], ip[12:16])
	copy(p.DstIP[:], ip[16:20])
	udp := ip[ihl:]
	p.SrcPort = binary.BigEndian.Uint16(udp[0:2])
	p.DstPort = binary.BigEndian.Uint16(udp[2:4])
	ulen := int(binary.BigEndian.Uint16(udp[4:6]))
	if ulen < UDPHeaderLen || len(udp) < ulen {
		return p, ErrTooShort
	}
	p.Payload = udp[UDPHeaderLen:ulen]
	return p, nil
}

// Tuple extracts the packet's flow five-tuple.
func (p *UDPPacket) Tuple() FiveTuple {
	return FiveTuple{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: ProtoUDP}
}

// Checksum computes the RFC 1071 internet checksum.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum validates the header checksum of the IPv4 header
// starting at the given offset of the frame.
func VerifyIPv4Checksum(frame []byte) error {
	if len(frame) < EthHeaderLen+IPv4HeaderLen {
		return ErrTooShort
	}
	if Checksum(frame[EthHeaderLen:EthHeaderLen+IPv4HeaderLen]) != 0 {
		return ErrChecksum
	}
	return nil
}

// RewriteDstIP rewrites the destination IP in place and fixes the
// header checksum incrementally (what Maglev's forwarding plane does).
func RewriteDstIP(frame []byte, newDst IPv4) error {
	if len(frame) < EthHeaderLen+IPv4HeaderLen {
		return ErrTooShort
	}
	ip := frame[EthHeaderLen:]
	copy(ip[16:20], newDst[:])
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:IPv4HeaderLen]))
	return nil
}
