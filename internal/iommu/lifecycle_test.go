package iommu

import (
	"errors"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

// wf fails the test if the unit's invariants do not hold; the lifecycle
// tests call it after every transition so a violation pins the exact
// step that introduced it.
func wf(t *testing.T, u *IOMMU) {
	t.Helper()
	if err := u.CheckWF(); err != nil {
		t.Fatalf("well-formedness broken: %v", err)
	}
}

// TestDoubleDetach: the second detach of the same device must fail with
// ErrDeviceNotBound and leave all domain state untouched.
func TestDoubleDetach(t *testing.T) {
	u, _ := newIOMMU(t)
	d, err := u.CreateDomain()
	if err != nil {
		t.Fatal(err)
	}
	const dev = DeviceID(3)
	if err := u.AttachDevice(dev, d.ID); err != nil {
		t.Fatal(err)
	}
	wf(t, u)
	if err := u.DetachDevice(dev); err != nil {
		t.Fatal(err)
	}
	wf(t, u)
	if err := u.DetachDevice(dev); !errors.Is(err, ErrDeviceNotBound) {
		t.Fatalf("double detach: %v, want ErrDeviceNotBound", err)
	}
	wf(t, u)
	if len(d.Devices) != 0 {
		t.Fatalf("domain still lists %d devices after detach", len(d.Devices))
	}
	// A detached device must be re-attachable; a failed detach must not
	// have left a phantom binding in the way.
	if err := u.AttachDevice(dev, d.ID); err != nil {
		t.Fatalf("re-attach after double detach: %v", err)
	}
	wf(t, u)
}

// TestDestroyBusyDomain: destroying a domain with devices attached is
// refused with ErrDomainBusy, succeeds once the device is gone, and the
// dead ID rejects every subsequent operation with ErrNoDomain.
func TestDestroyBusyDomain(t *testing.T) {
	u, _ := newIOMMU(t)
	d, err := u.CreateDomain()
	if err != nil {
		t.Fatal(err)
	}
	const dev = DeviceID(7)
	if err := u.AttachDevice(dev, d.ID); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(d.ID, 0x1000, 0x8000); err != nil {
		t.Fatal(err)
	}
	wf(t, u)

	if err := u.DestroyDomain(d.ID); !errors.Is(err, ErrDomainBusy) {
		t.Fatalf("destroy with attached device: %v, want ErrDomainBusy", err)
	}
	wf(t, u)
	// The refused destroy must not have revoked the device's view.
	if _, ok := u.Translate(dev, 0x1000); !ok {
		t.Fatal("mapping lost after refused destroy")
	}

	if err := u.DetachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if err := u.DestroyDomain(d.ID); err != nil {
		t.Fatalf("destroy after detach: %v", err)
	}
	wf(t, u)

	if err := u.DestroyDomain(d.ID); !errors.Is(err, ErrNoDomain) {
		t.Fatalf("second destroy: %v, want ErrNoDomain", err)
	}
	if err := u.Map(d.ID, 0x2000, 0x9000); !errors.Is(err, ErrNoDomain) {
		t.Fatalf("map into dead domain: %v, want ErrNoDomain", err)
	}
	if err := u.Unmap(d.ID, 0x1000); !errors.Is(err, ErrNoDomain) {
		t.Fatalf("unmap from dead domain: %v, want ErrNoDomain", err)
	}
	if err := u.AttachDevice(dev, d.ID); !errors.Is(err, ErrNoDomain) {
		t.Fatalf("attach to dead domain: %v, want ErrNoDomain", err)
	}
	if _, ok := u.Translate(dev, 0x1000); ok {
		t.Fatal("detached device still translates")
	}
	wf(t, u)
}

// TestDoubleAttachAcrossDomains: a device bound to one domain cannot be
// bound to a second without detaching first — the isolation invariant
// the unit exists to enforce.
func TestDoubleAttachAcrossDomains(t *testing.T) {
	u, _ := newIOMMU(t)
	d1, err := u.CreateDomain()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := u.CreateDomain()
	if err != nil {
		t.Fatal(err)
	}
	const dev = DeviceID(1)
	if err := u.AttachDevice(dev, d1.ID); err != nil {
		t.Fatal(err)
	}
	if err := u.AttachDevice(dev, d2.ID); !errors.Is(err, ErrDeviceBound) {
		t.Fatalf("re-attach without detach: %v, want ErrDeviceBound", err)
	}
	wf(t, u)
	// Only d1 may carry the binding; a half-applied attach would list the
	// device in both.
	if _, in1 := d1.Devices[dev]; !in1 {
		t.Fatal("device missing from its domain")
	}
	if _, in2 := d2.Devices[dev]; in2 {
		t.Fatal("failed attach leaked the device into the second domain")
	}
	// Migration via detach+attach works and moves the translation view.
	if err := u.Map(d2.ID, 0x3000, 0xa000); err != nil {
		t.Fatal(err)
	}
	if err := u.DetachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if err := u.AttachDevice(dev, d2.ID); err != nil {
		t.Fatal(err)
	}
	if pa, ok := u.Translate(dev, 0x3000); !ok || pa != 0xa000 {
		t.Fatalf("migrated device translate = %#x,%v", pa, ok)
	}
	wf(t, u)
}

// TestLifecycleChurn cycles create/attach/map/unmap/detach/destroy many
// times; page accounting must return to the baseline every round, so a
// leak anywhere in the lifecycle shows up as monotonic growth.
func TestLifecycleChurn(t *testing.T) {
	pm := hw.NewPhysMem(256)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(pm, clk, 1)
	u, err := New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	baseline := len(u.PageClosure())
	for round := 0; round < 32; round++ {
		d, err := u.CreateDomain()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		dev := DeviceID(round % 5)
		if err := u.AttachDevice(dev, d.ID); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 4; i++ {
			if err := u.Map(d.ID, hw.VirtAddr(0x1000*(i+1)), hw.PhysAddr(0x10000+0x1000*i)); err != nil {
				t.Fatalf("round %d map %d: %v", round, i, err)
			}
		}
		wf(t, u)
		if err := u.DetachDevice(dev); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// DestroyDomain unmaps the leftovers itself.
		if err := u.DestroyDomain(d.ID); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		wf(t, u)
		if got := len(u.PageClosure()); got != baseline {
			t.Fatalf("round %d: page closure %d pages, baseline %d — lifecycle leaks", round, got, baseline)
		}
	}
}
