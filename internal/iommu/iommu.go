// Package iommu models the I/O memory management unit Atmosphere programs
// to confine DMA-capable devices (§3, §5). Devices are assigned to
// domains; each domain has its own 4-level translation table (same format
// as the CPU page table, walked by the device model before any DMA), and
// a root context table maps device identifiers to domains.
//
// Following the flat design, all domain and context state is stored in
// flat maps at the IOMMU top level; the per-domain translation tables
// account their node pages to the IOMMU's page closure, which the
// verifier checks for disjointness against every other subsystem.
package iommu

import (
	"errors"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
	"atmosphere/internal/pt"
)

// IOMMU errors.
var (
	ErrNoDomain       = errors.New("iommu: no such domain")
	ErrDeviceBound    = errors.New("iommu: device already bound")
	ErrDeviceNotBound = errors.New("iommu: device not bound")
	ErrDomainBusy     = errors.New("iommu: domain still has devices")
)

// DeviceID identifies a PCIe function (bus:device.function packed).
type DeviceID uint16

// DomainID identifies an isolation domain. Domain identifiers are the
// "IOMMU identifiers" threads pass over endpoints (§3).
type DomainID uint32

// Domain is one DMA isolation domain.
type Domain struct {
	ID      DomainID
	Table   *pt.PageTable
	Devices map[DeviceID]struct{}
}

// IOMMU is the simulated I/O MMU.
type IOMMU struct {
	alloc *mem.Allocator
	clock *hw.Clock
	// root is the context-table page (allocated, owner IOMMU).
	root hw.PhysAddr
	// Flat maps: every domain and every binding at the top level.
	domains  map[DomainID]*Domain
	contexts map[DeviceID]DomainID
	nextID   DomainID
}

// New initializes an IOMMU, allocating its root context page.
func New(alloc *mem.Allocator, clock *hw.Clock) (*IOMMU, error) {
	root, err := alloc.AllocPage4K(mem.OwnerIOMMU)
	if err != nil {
		return nil, err
	}
	return &IOMMU{
		alloc:    alloc,
		clock:    clock,
		root:     root,
		domains:  make(map[DomainID]*Domain),
		contexts: make(map[DeviceID]DomainID),
		nextID:   1,
	}, nil
}

// CreateDomain allocates a fresh domain with an empty translation table.
func (u *IOMMU) CreateDomain() (*Domain, error) {
	table, err := pt.NewOwned(u.alloc, u.clock, mem.OwnerIOMMU)
	if err != nil {
		return nil, err
	}
	d := &Domain{ID: u.nextID, Table: table, Devices: make(map[DeviceID]struct{})}
	u.nextID++
	u.domains[d.ID] = d
	u.clock.Charge(hw.CostMMIOWrite)
	return d, nil
}

// Domain returns the domain with the given id.
func (u *IOMMU) Domain(id DomainID) (*Domain, error) {
	d, ok := u.domains[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoDomain, id)
	}
	return d, nil
}

// Domains returns the flat domain map (read-only use).
func (u *IOMMU) Domains() map[DomainID]*Domain { return u.domains }

// AttachDevice binds a device to a domain; subsequent DMA from the device
// translates through the domain's table.
func (u *IOMMU) AttachDevice(dev DeviceID, id DomainID) error {
	if _, ok := u.contexts[dev]; ok {
		return fmt.Errorf("%w: %d", ErrDeviceBound, dev)
	}
	d, ok := u.domains[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoDomain, id)
	}
	u.contexts[dev] = id
	d.Devices[dev] = struct{}{}
	u.clock.Charge(hw.CostMMIOWrite * 2) // context entry + flush
	return nil
}

// DetachDevice unbinds a device.
func (u *IOMMU) DetachDevice(dev DeviceID) error {
	id, ok := u.contexts[dev]
	if !ok {
		return fmt.Errorf("%w: %d", ErrDeviceNotBound, dev)
	}
	delete(u.contexts, dev)
	delete(u.domains[id].Devices, dev)
	u.clock.Charge(hw.CostMMIOWrite * 2)
	return nil
}

// DestroyDomain tears down an empty domain, returning its table pages.
// All mappings must have been removed first (matching the page-table
// destroy protocol).
func (u *IOMMU) DestroyDomain(id DomainID) error {
	d, ok := u.domains[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoDomain, id)
	}
	if len(d.Devices) != 0 {
		return fmt.Errorf("%w: %d devices", ErrDomainBusy, len(d.Devices))
	}
	for va := range d.Table.AddressSpace() {
		if _, err := d.Table.Unmap(va); err != nil {
			return err
		}
	}
	if err := d.Table.Destroy(); err != nil {
		return err
	}
	delete(u.domains, id)
	return nil
}

// Map adds iova -> phys to the device domain at 4 KiB granularity.
func (u *IOMMU) Map(id DomainID, iova hw.VirtAddr, phys hw.PhysAddr) error {
	d, ok := u.domains[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoDomain, id)
	}
	return d.Table.Map4K(iova, phys, pt.RW)
}

// Unmap removes iova from the device domain.
func (u *IOMMU) Unmap(id DomainID, iova hw.VirtAddr) error {
	d, ok := u.domains[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoDomain, id)
	}
	if _, err := d.Table.Unmap(iova); err != nil {
		return err
	}
	u.clock.Charge(hw.CostInvlpg) // IOTLB invalidation
	return nil
}

// Translate resolves a DMA address for a device; the device models call
// this before every DMA touch, so an unmapped access faults instead of
// corrupting memory — the property the paper relies on to exclude devices
// from the TCB (§5, item 11).
func (u *IOMMU) Translate(dev DeviceID, iova hw.VirtAddr) (hw.PhysAddr, bool) {
	id, ok := u.contexts[dev]
	if !ok {
		return 0, false
	}
	e, ok := u.domains[id].Table.Lookup(iova)
	if !ok {
		return 0, false
	}
	off := uint64(iova) & (e.Size.Bytes() - 1)
	return e.Phys + hw.PhysAddr(off), true
}

// PageClosure returns every page owned by the IOMMU subsystem: the root
// context page plus every domain's table nodes.
func (u *IOMMU) PageClosure() mem.PageSet {
	s := mem.NewPageSet(u.root)
	for _, d := range u.domains {
		s.Union(d.Table.PageClosure())
	}
	return s
}

// CheckWF validates the IOMMU structural invariants: context entries
// reference live domains, domain device sets mirror the context map, and
// every domain table passes its own structural check.
func (u *IOMMU) CheckWF() error {
	for dev, id := range u.contexts {
		d, ok := u.domains[id]
		if !ok {
			return fmt.Errorf("iommu: device %d bound to dead domain %d", dev, id)
		}
		if _, ok := d.Devices[dev]; !ok {
			return fmt.Errorf("iommu: context/domain device sets disagree for %d", dev)
		}
	}
	for id, d := range u.domains {
		if d.ID != id {
			return fmt.Errorf("iommu: domain id mismatch %d != %d", d.ID, id)
		}
		for dev := range d.Devices {
			if u.contexts[dev] != id {
				return fmt.Errorf("iommu: domain %d lists device %d not bound to it", id, dev)
			}
		}
		if err := d.Table.CheckStructure(); err != nil {
			return fmt.Errorf("iommu domain %d: %w", id, err)
		}
	}
	return nil
}
