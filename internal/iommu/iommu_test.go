package iommu

import (
	"errors"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

func newIOMMU(t *testing.T) (*IOMMU, *mem.Allocator) {
	t.Helper()
	pm := hw.NewPhysMem(256)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(pm, clk, 1)
	u, err := New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	return u, alloc
}

func TestDomainLifecycle(t *testing.T) {
	u, _ := newIOMMU(t)
	d, err := u.CreateDomain()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Domain(d.ID); err != nil {
		t.Fatal(err)
	}
	if err := u.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Domain(d.ID); !errors.Is(err, ErrNoDomain) {
		t.Fatal("destroyed domain still visible")
	}
}

func TestAttachDetach(t *testing.T) {
	u, _ := newIOMMU(t)
	d, _ := u.CreateDomain()
	if err := u.AttachDevice(7, d.ID); err != nil {
		t.Fatal(err)
	}
	if err := u.AttachDevice(7, d.ID); !errors.Is(err, ErrDeviceBound) {
		t.Fatal("double attach accepted")
	}
	if err := u.DestroyDomain(d.ID); !errors.Is(err, ErrDomainBusy) {
		t.Fatal("destroyed domain with attached device")
	}
	if err := u.DetachDevice(7); err != nil {
		t.Fatal(err)
	}
	if err := u.DetachDevice(7); !errors.Is(err, ErrDeviceNotBound) {
		t.Fatal("double detach accepted")
	}
	if err := u.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
}

func TestAttachToDeadDomain(t *testing.T) {
	u, _ := newIOMMU(t)
	if err := u.AttachDevice(1, 999); !errors.Is(err, ErrNoDomain) {
		t.Fatal("attach to missing domain accepted")
	}
}

func TestTranslate(t *testing.T) {
	u, alloc := newIOMMU(t)
	d, _ := u.CreateDomain()
	u.AttachDevice(3, d.ID)
	buf, err := alloc.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Map(d.ID, 0x10000, buf); err != nil {
		t.Fatal(err)
	}
	pa, ok := u.Translate(3, 0x10234)
	if !ok || pa != buf+0x234 {
		t.Fatalf("translate = %#x ok=%v", pa, ok)
	}
	// Unbound device must fault.
	if _, ok := u.Translate(4, 0x10000); ok {
		t.Fatal("unbound device translated")
	}
	// Unmapped iova must fault.
	if _, ok := u.Translate(3, 0x99000); ok {
		t.Fatal("unmapped iova translated")
	}
	if err := u.Unmap(d.ID, 0x10000); err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Translate(3, 0x10000); ok {
		t.Fatal("translated after unmap")
	}
}

func TestDMAIsolationBetweenDomains(t *testing.T) {
	u, alloc := newIOMMU(t)
	d1, _ := u.CreateDomain()
	d2, _ := u.CreateDomain()
	u.AttachDevice(1, d1.ID)
	u.AttachDevice(2, d2.ID)
	p1, _ := alloc.AllocUserPage4K()
	u.Map(d1.ID, 0x1000, p1)
	// Device 2 must not see domain 1's mapping.
	if _, ok := u.Translate(2, 0x1000); ok {
		t.Fatal("cross-domain translation leaked")
	}
}

func TestPageClosureAccounting(t *testing.T) {
	u, alloc := newIOMMU(t)
	d, _ := u.CreateDomain()
	p, _ := alloc.AllocUserPage4K()
	u.Map(d.ID, 0x40000000, p)
	closure := u.PageClosure()
	owned := alloc.AllocatedTo(mem.OwnerIOMMU)
	if !closure.Equal(owned) {
		t.Fatalf("closure %d pages, allocator says %d", closure.Len(), owned.Len())
	}
	if err := u.CheckWF(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyDomainReclaimsPages(t *testing.T) {
	u, alloc := newIOMMU(t)
	before := alloc.AllocatedTo(mem.OwnerIOMMU).Len()
	d, _ := u.CreateDomain()
	p, _ := alloc.AllocUserPage4K()
	if err := u.Map(d.ID, 0x2000, p); err != nil {
		t.Fatal(err)
	}
	if err := u.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
	if got := alloc.AllocatedTo(mem.OwnerIOMMU).Len(); got != before {
		t.Fatalf("domain destroy leaked: %d -> %d pages", before, got)
	}
}

func TestCheckWFCatchesCorruption(t *testing.T) {
	u, _ := newIOMMU(t)
	d, _ := u.CreateDomain()
	u.AttachDevice(5, d.ID)
	// Corrupt: remove from domain set but leave context binding.
	delete(d.Devices, 5)
	if err := u.CheckWF(); err == nil {
		t.Fatal("corrupted device sets passed CheckWF")
	}
}
