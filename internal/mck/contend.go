package mck

import (
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs/contend"
)

// WithLockOrder returns a copy of opt whose boot hook additionally
// attaches a fresh contention observatory to each booted kernel and
// arms the runtime lock-order checker against the kernel's declared
// ordering (contend.KernelOrder). The returned function reports the
// first ordering inversion any of those kernels observed (nil if
// none) — fuzz targets and atmo-fuzz call it after the run and fail
// with the checker's two-site report.
func (opt Options) WithLockOrder() (Options, func() *contend.Inversion) {
	var observed []*contend.Observatory
	prev := opt.Hook
	opt.Hook = func(k *kernel.Kernel) {
		if prev != nil {
			prev(k)
		}
		o := contend.New()
		k.AttachContention(o)
		k.ArmLockOrder()
		observed = append(observed, o)
	}
	return opt, func() *contend.Inversion {
		for _, o := range observed {
			if v := o.FirstInversion(); v != nil {
				return v
			}
		}
		return nil
	}
}
