package mck

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzOps caps how many decoded ops a single fuzz execution runs: the
// engine loves growing inputs, and each op costs a full syscall plus a
// spec step plus (periodically) an abstraction diff.
const fuzzOps = 300

// fuzzSeeds feeds the checked-in corpus to a fuzz target: generator
// output across several swarm profiles plus every minimized regression
// repro (re-encoded to the binary form the targets consume).
func fuzzSeeds(f *testing.F) {
	for seed := uint64(1); seed <= 6; seed++ {
		f.Add(Generate(seed, 120).Encode())
	}
	files, err := filepath.Glob(filepath.Join("testdata", "repro_*.repro"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		p, err := ParseRepro(data)
		if err != nil {
			f.Fatalf("%s: %v", file, err)
		}
		f.Add(p.Encode())
	}
}

// FuzzDiff decodes arbitrary bytes into a syscall program (decoding is
// total) and runs it through the lockstep differential oracle: any
// kernel-vs-spec divergence, interpreter errno mismatch, kernel panic,
// or lock-order inversion (the checker runs armed under fuzzing) fails
// the target.
func FuzzDiff(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := FromBytes(data)
		if len(p.Ops) > fuzzOps {
			p.Ops = p.Ops[:fuzzOps]
		}
		opt, inversion := Options{WFEvery: 64}.WithLockOrder()
		res, _, err := RunDiff(p, opt)
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		if res != nil {
			t.Fatalf("divergence: %v\nrepro:\n%s", res, p.EncodeRepro())
		}
		if v := inversion(); v != nil {
			t.Fatalf("%s\nrepro:\n%s", v, p.EncodeRepro())
		}
	})
}

// FuzzChecked runs the same decoded programs through the per-syscall
// spec predicates and the invariant suite instead of the interpreter,
// with the lock-order checker armed as well.
func FuzzChecked(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := FromBytes(data)
		if len(p.Ops) > fuzzOps {
			p.Ops = p.Ops[:fuzzOps]
		}
		opt, inversion := Options{}.WithLockOrder()
		if _, err := RunChecked(p, opt); err != nil {
			t.Fatalf("checked run: %v\nrepro:\n%s", err, p.EncodeRepro())
		}
		if v := inversion(); v != nil {
			t.Fatalf("%s\nrepro:\n%s", v, p.EncodeRepro())
		}
	})
}
