package mck

import "atmosphere/internal/hw"

// Profile is a swarm-testing op profile: the subset of the vocabulary a
// particular seed is allowed to emit, with per-kind weights. Disabling
// ops per run is what makes swarm testing effective — programs that
// never create containers exercise deep endpoint queues, programs that
// never yield exercise revocation of blocked threads, and so on;
// uniform mixes visit such states with vanishing probability.
type Profile struct {
	Enabled [numKinds]bool
	Weights [numKinds]int
}

// baseWeight biases the mix toward the stateful object ops — container
// trees, endpoints, and the quota-heavy paths — which is where the
// interesting divergences (accounting, revocation, rendezvous) live.
var baseWeight = [numKinds]int{
	KMmap:          3,
	KMunmap:        2,
	KNewContainer:  4,
	KNewProcess:    3,
	KNewProcessIn:  3,
	KNewThreadIn:   4,
	KExitThread:    1,
	KNewEndpoint:   4,
	KCloseEndpoint: 3,
	KSend:          4,
	KRecv:          4,
	KCall:          2,
	KYield:         1,
	KKillProcess:   2,
	KKillContainer: 3,
	KIommuCreate:   1,
	KSendAsync:     4,
	KBatch:         3,
}

// NewProfile draws a swarm profile: each kind is enabled with
// probability ~0.65, at least three kinds always survive, and enabled
// kinds keep their base weight perturbed by a small random factor.
func NewProfile(r *hw.Rand) Profile {
	var p Profile
	enabled := 0
	for k := Kind(0); k < numKinds; k++ {
		if r.Float64() < 0.65 {
			p.Enabled[k] = true
			p.Weights[k] = baseWeight[k] + r.Intn(3)
			enabled++
		}
	}
	for enabled < 3 {
		k := Kind(r.Intn(int(numKinds)))
		if !p.Enabled[k] {
			p.Enabled[k] = true
			p.Weights[k] = baseWeight[k] + r.Intn(3)
			enabled++
		}
	}
	return p
}

// pick draws a kind from the profile's weighted distribution.
func (p Profile) pick(r *hw.Rand) Kind {
	total := 0
	for k := Kind(0); k < numKinds; k++ {
		if p.Enabled[k] {
			total += p.Weights[k]
		}
	}
	n := r.Intn(total)
	for k := Kind(0); k < numKinds; k++ {
		if !p.Enabled[k] {
			continue
		}
		n -= p.Weights[k]
		if n < 0 {
			return k
		}
	}
	panic("mck: weighted pick fell through")
}

// Generate builds a seeded n-op program on the default machine shape:
// one swarm profile per seed, then weighted kind draws with uniformly
// random (typed-by-the-resolver) arguments.
func Generate(seed uint64, n int) Program {
	r := hw.NewRand(seed)
	prof := NewProfile(r)
	p := Program{Frames: DefaultFrames, Cores: DefaultCores}
	p.Ops = make([]Op, n)
	for i := range p.Ops {
		p.Ops[i] = Op{
			Kind:  prof.pick(r),
			Actor: uint8(r.Uint64()),
			A:     uint16(r.Uint64()),
			B:     uint16(r.Uint64()),
			C:     uint16(r.Uint64()),
		}
	}
	return p
}

// batchProfile is the fixed op mix behind GenerateBatched: the batch
// dialect. Everything that can ride a submission ring — or set up the
// objects ring ops touch — is enabled, weighted heavily toward KBatch
// doorbells and the grant-bearing sends; the teardown-only kinds stay
// out so rings and endpoints live long enough to be exercised.
func batchProfile() Profile {
	var p Profile
	for k, w := range map[Kind]int{
		KMmap:          4,
		KMunmap:        2,
		KNewContainer:  2,
		KNewProcessIn:  2,
		KNewThreadIn:   3,
		KExitThread:    1,
		KNewEndpoint:   3,
		KCloseEndpoint: 2,
		KSend:          3,
		KRecv:          4,
		KCall:          2,
		KYield:         1,
		KSendAsync:     6,
		KBatch:         8,
	} {
		p.Enabled[k] = true
		p.Weights[k] = w
	}
	return p
}

// GenerateBatched builds a seeded n-op program from the batch dialect:
// same resolver, same machine shape as Generate, but a fixed profile
// dominated by KBatch and KSendAsync so submission rings, buffered
// grants, and the amortized dispatch path carry most of the schedule.
func GenerateBatched(seed uint64, n int) Program {
	r := hw.NewRand(seed)
	prof := batchProfile()
	p := Program{Frames: DefaultFrames, Cores: DefaultCores}
	p.Ops = make([]Op, n)
	for i := range p.Ops {
		p.Ops[i] = Op{
			Kind:  prof.pick(r),
			Actor: uint8(r.Uint64()),
			A:     uint16(r.Uint64()),
			B:     uint16(r.Uint64()),
			C:     uint16(r.Uint64()),
		}
	}
	return p
}

// FromBytesBatch decodes arbitrary bytes into a batch-dialect program:
// total like FromBytes, then the kinds outside the batch vocabulary are
// remapped deterministically onto the ring ops (by argument parity) so
// engine mutations stay batch-heavy instead of drifting back into the
// general mix. GenerateBatched output passes through unchanged.
func FromBytesBatch(data []byte) Program {
	p := FromBytes(data)
	for i, op := range p.Ops {
		switch op.Kind {
		case KKillProcess, KKillContainer, KIommuCreate, KNewProcess:
			if op.A&1 == 0 {
				p.Ops[i].Kind = KBatch
			} else {
				p.Ops[i].Kind = KSendAsync
			}
		}
	}
	return p
}
