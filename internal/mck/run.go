package mck

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/spec"
	"atmosphere/internal/verify"
)

// Options configures a program run.
type Options struct {
	// Frames/Cores override the program's machine shape when nonzero.
	Frames int
	Cores  int
	// Hook runs after boot, before the first op — the mutation self-test
	// uses it to install a kernel.PostSyscall perturbation.
	Hook func(*kernel.Kernel)
	// WFEvery > 0 additionally runs the full invariant suite
	// (verify.TotalWF) every WFEvery steps.
	WFEvery int
}

func (o Options) shape(p Program) (frames, cores int) {
	frames, cores = p.Frames, p.Cores
	if o.Frames > 0 {
		frames = o.Frames
	}
	if o.Cores > 0 {
		cores = o.Cores
	}
	if frames <= 0 {
		frames = DefaultFrames
	}
	if cores <= 0 {
		cores = DefaultCores
	}
	return frames, cores
}

// Stats is a run's coverage report.
type Stats struct {
	Steps  int
	Ops    map[string]int
	Errnos map[string]int
}

func newStats() Stats {
	return Stats{Ops: map[string]int{}, Errnos: map[string]int{}}
}

func (s *Stats) record(name string, ret kernel.Ret) {
	s.Steps++
	s.Ops[name]++
	s.Errnos[ret.Errno.String()]++
}

// Merge folds another run's coverage into s.
func (s *Stats) Merge(o Stats) {
	s.Steps += o.Steps
	for k, v := range o.Ops {
		s.Ops[k] += v
	}
	for k, v := range o.Errnos {
		s.Errnos[k] += v
	}
}

// DiffResult reports the first divergence between kernel and spec.
type DiffResult struct {
	Step int
	Op   Op
	Err  error
}

func (r *DiffResult) Error() string {
	return fmt.Sprintf("step %d (%v): %v", r.Step, r.Op, r.Err)
}

// registries hold object pointers in creation order. Entries are never
// removed — a dead pointer resolves to whatever the kernel reuses the
// page for (or to an ENOENT probe), mirrored exactly by the spec side.
type registries struct {
	threads []pm.Ptr
	procs   []pm.Ptr
	cntrs   []pm.Ptr
}

func bootRegistries(k *kernel.Kernel, init pm.Ptr) *registries {
	return &registries{
		threads: []pm.Ptr{init},
		procs:   []pm.Ptr{k.PM.Thrd(init).OwningProc},
		cntrs:   []pm.Ptr{k.PM.RootContainer},
	}
}

// record appends creation witnesses after a successful op.
func (r *registries) record(c call, ret kernel.Ret) {
	if ret.Errno != kernel.OK {
		return
	}
	switch c.kind {
	case KNewContainer:
		r.cntrs = append(r.cntrs, pm.Ptr(ret.Vals[0]))
	case KNewProcess, KNewProcessIn:
		r.procs = append(r.procs, pm.Ptr(ret.Vals[0]))
	case KNewThreadIn:
		r.threads = append(r.threads, pm.Ptr(ret.Vals[0]))
	}
}

// call is a fully resolved syscall: the abstract Op's fields mapped onto
// concrete arguments against the current object registries.
type call struct {
	kind     Kind
	tid      pm.Ptr
	core     int
	va       hw.VirtAddr
	count    int
	quota    uint64
	cpus     []int
	cntr     pm.Ptr
	proc     pm.Ptr
	onCore   int
	slot     int
	sendEdpt bool
	xferSlot int
	reqSlot  int
	reg      uint64
	grantVA  hw.VirtAddr
	seed     uint64
}

// mmapBase keeps generated mappings clear of any boot-time state.
const mmapBase = 0x4000_0000

// resolve maps an abstract op onto concrete syscall arguments. The
// mapping is a pure function of (op, registries, live threads), so a
// replay resolves identically. Slot/count/core arguments are reduced
// modulo "valid range plus a little", so out-of-range probes stay in
// the mix. Returns ok=false when no thread exists to issue the call.
func resolve(k *kernel.Kernel, regs *registries, op Op, cores int) (call, bool) {
	var live []pm.Ptr
	for _, t := range regs.threads {
		if _, ok := k.PM.TryThrd(t); ok {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return call{}, false
	}
	c := call{kind: op.Kind}
	c.tid = live[int(op.Actor)%len(live)]
	c.core = k.PM.Thrd(c.tid).Core

	switch op.Kind {
	case KMmap, KMunmap:
		c.va = mmapBase + hw.VirtAddr(op.A)*hw.PageSize4K
		if op.C%8 == 7 {
			c.va += hw.VirtAddr(op.C) & 0xFFF // misalignment probe
		}
		c.count = int(op.B%16) - 1 // <= 0 probes EINVAL
	case KNewContainer:
		c.quota = uint64(op.A % 40) // 0 probes EQUOTA
		for i := 0; i < cores+2; i++ {
			if op.B>>i&1 != 0 {
				c.cpus = append(c.cpus, i) // >= cores probes EINVAL
			}
		}
	case KNewProcessIn, KKillContainer:
		c.cntr = regs.cntrs[int(op.A)%len(regs.cntrs)]
	case KNewThreadIn:
		c.proc = regs.procs[int(op.A)%len(regs.procs)]
		c.onCore = int(op.B) % (cores + 2)
	case KKillProcess:
		c.proc = regs.procs[int(op.A)%len(regs.procs)]
	case KNewEndpoint, KCloseEndpoint:
		c.slot = int(op.A) % (pm.MaxEndpoints + 2)
	case KSend, KCall:
		c.slot = int(op.A) % (pm.MaxEndpoints + 2)
		c.reg = uint64(op.C)
		switch code := op.B % 19; {
		case code == 0:
			// scalars only
		case code == 18:
			c.sendEdpt, c.xferSlot = true, -1 // negative-slot probe
		default:
			c.sendEdpt, c.xferSlot = true, int(code)-1 // 16 probes EINVAL
		}
	case KRecv:
		c.slot = int(op.A) % (pm.MaxEndpoints + 2)
		if code := op.B % 18; code == 0 {
			c.reqSlot = -1 // first free
		} else {
			c.reqSlot = int(code) - 1 // 16 probes delivery failure
		}
	case KSendAsync:
		c.slot = int(op.A) % (pm.MaxEndpoints + 2)
		c.reg = uint64(op.C)
		if op.B != 0 {
			// Grant the page at the op.B-coded va. Small op.B values
			// land where small-op.A mmaps map, so mutated corpora hit
			// real pages; misses probe ENOENT.
			c.grantVA = mmapBase + hw.VirtAddr(op.B>>1)*hw.PageSize4K
			if op.B&1 == 1 {
				c.grantVA += hw.VirtAddr(op.C) & 0xFFF // sub-page probe: the kernel aligns down
			}
		}
	case KBatch:
		// The three fields seed a deterministic derived bop sequence
		// (deriveBops); the batch itself runs via runBatch.
		c.seed = uint64(op.A)<<32 | uint64(op.B)<<16 | uint64(op.C)
	}
	return c, true
}

// dispatchKernel issues the resolved call against the concrete kernel.
func dispatchKernel(k *kernel.Kernel, c call) kernel.Ret {
	switch c.kind {
	case KMmap:
		return k.SysMmap(c.core, c.tid, c.va, c.count, hw.Size4K, pt.RW)
	case KMunmap:
		return k.SysMunmap(c.core, c.tid, c.va, c.count, hw.Size4K)
	case KNewContainer:
		return k.SysNewContainer(c.core, c.tid, c.quota, c.cpus)
	case KNewProcess:
		return k.SysNewProcess(c.core, c.tid)
	case KNewProcessIn:
		return k.SysNewProcessIn(c.core, c.tid, c.cntr)
	case KNewThreadIn:
		return k.SysNewThreadIn(c.core, c.tid, c.proc, c.onCore)
	case KExitThread:
		return k.SysExitThread(c.core, c.tid)
	case KNewEndpoint:
		return k.SysNewEndpoint(c.core, c.tid, c.slot)
	case KCloseEndpoint:
		return k.SysCloseEndpoint(c.core, c.tid, c.slot)
	case KSend:
		return k.SysSend(c.core, c.tid, c.slot,
			kernel.SendArgs{Regs: [4]uint64{c.reg}, SendEdpt: c.sendEdpt, EdptSlot: c.xferSlot})
	case KRecv:
		return k.SysRecv(c.core, c.tid, c.slot, kernel.RecvArgs{EdptSlot: c.reqSlot})
	case KCall:
		return k.SysCall(c.core, c.tid, c.slot,
			kernel.SendArgs{Regs: [4]uint64{c.reg}, SendEdpt: c.sendEdpt, EdptSlot: c.xferSlot})
	case KSendAsync:
		args := kernel.SendArgs{Regs: [4]uint64{c.reg}}
		if c.grantVA != 0 {
			args.GrantPage, args.PageVA = true, c.grantVA
		}
		return k.SysSendAsync(c.core, c.tid, c.slot, args)
	case KYield:
		return k.SysYield(c.core, c.tid)
	case KKillProcess:
		return k.SysKillProcess(c.core, c.tid, c.proc)
	case KKillContainer:
		return k.SysKillContainer(c.core, c.tid, c.cntr)
	case KIommuCreate:
		return k.SysIommuCreateDomain(c.core, c.tid)
	}
	panic("mck: unhandled kind " + c.kind.String())
}

// applyInterp applies the same call's specification to Ψ′, checking the
// kernel's return value against the spec's prediction.
func applyInterp(ip *spec.Interp, c call, ret kernel.Ret) error {
	switch c.kind {
	case KMmap:
		return ip.Mmap(c.tid, c.va, c.count, ret)
	case KMunmap:
		return ip.Munmap(c.tid, c.va, c.count, ret)
	case KNewContainer:
		return ip.NewContainer(c.tid, c.quota, c.cpus, ret)
	case KNewProcess:
		return ip.NewProcess(c.tid, ret)
	case KNewProcessIn:
		return ip.NewProcessIn(c.tid, c.cntr, ret)
	case KNewThreadIn:
		return ip.NewThreadIn(c.tid, c.proc, c.onCore, ret)
	case KExitThread:
		return ip.ExitThread(c.tid, ret)
	case KNewEndpoint:
		return ip.NewEndpoint(c.tid, c.slot, ret)
	case KCloseEndpoint:
		return ip.CloseEndpoint(c.tid, c.slot, ret)
	case KSend:
		return ip.Send(c.tid, c.slot, c.sendEdpt, c.xferSlot, c.grantVA, ret)
	case KRecv:
		return ip.Recv(c.tid, c.slot, c.reqSlot, 0, ret)
	case KCall:
		return ip.Call(c.tid, c.slot, c.sendEdpt, c.xferSlot, c.grantVA, ret)
	case KSendAsync:
		return ip.SendAsync(c.tid, c.slot, c.grantVA, ret)
	case KYield:
		return ip.Yield(c.tid, ret)
	case KKillProcess:
		return ip.KillProcess(c.tid, c.proc, ret)
	case KKillContainer:
		return ip.KillContainer(c.tid, c.cntr, ret)
	case KIommuCreate:
		return ip.IommuCreate(c.tid, ret)
	}
	panic("mck: unhandled kind " + c.kind.String())
}

// RunDiff executes the program in lockstep on a freshly booted kernel
// and on the pure spec interpreter, comparing Abstract(kernel) against
// the independently evolved Ψ′ after every step. It returns the first
// divergence (nil if the whole program agrees), the run's coverage, and
// a boot error if the machine could not be constructed.
func RunDiff(p Program, opt Options) (*DiffResult, Stats, error) {
	st := newStats()
	frames, cores := opt.shape(p)
	k, init, err := kernel.Boot(hw.Config{Frames: frames, Cores: cores, TLBSlots: 256})
	if err != nil {
		return nil, st, err
	}
	if opt.Hook != nil {
		opt.Hook(k)
	}
	ip := spec.NewInterp(spec.Abstract(k.PM, k.Alloc, k.IOMMU))
	regs := bootRegistries(k, init)

	// Shared rendezvous endpoint in init's slot 0, adopted by every new
	// thread: without one seeded shared descriptor no two threads ever
	// hold the same endpoint (transfer itself needs a rendezvous), and
	// the whole IPC delivery surface would go unexercised.
	rret := k.SysNewEndpoint(0, init, 0)
	if err := ip.NewEndpoint(init, 0, rret); err != nil {
		return &DiffResult{Step: -1, Err: fmt.Errorf("rendezvous setup: %w", err)}, st, nil
	}
	rendezvous := pm.Ptr(rret.Vals[0])

	for i, op := range p.Ops {
		c, ok := resolve(k, regs, op, cores)
		if !ok {
			continue // no thread left to issue calls
		}
		var ret kernel.Ret
		if c.kind == KBatch {
			var err error
			ret, err = runBatch(k, ip, c)
			st.record(c.kind.String(), ret)
			if err != nil {
				return &DiffResult{Step: i, Op: op, Err: err}, st, nil
			}
		} else {
			ret = dispatchKernel(k, c)
			st.record(c.kind.String(), ret)
			if err := applyInterp(ip, c, ret); err != nil {
				return &DiffResult{Step: i, Op: op, Err: err}, st, nil
			}
		}
		if err := ip.Diff(spec.Abstract(k.PM, k.Alloc, k.IOMMU)); err != nil {
			return &DiffResult{Step: i, Op: op, Err: err}, st, nil
		}
		regs.record(c, ret)
		if c.kind == KNewThreadIn && ret.Errno == kernel.OK {
			adopt(k, ip, rendezvous, pm.Ptr(ret.Vals[0]))
		}
		if opt.WFEvery > 0 && (i+1)%opt.WFEvery == 0 {
			if err := verify.TotalWF(k); err != nil {
				return &DiffResult{Step: i, Op: op, Err: fmt.Errorf("invariants: %w", err)}, st, nil
			}
		}
	}
	return nil, st, nil
}

// adopt installs the shared rendezvous endpoint into a new thread's
// slot 0 on both sides (a reference is taken). No-ops once the endpoint
// has died; if its page was reused for a new endpoint, both sides see
// the same pointer and stay in agreement.
func adopt(k *kernel.Kernel, ip *spec.Interp, ep, tid pm.Ptr) {
	if _, alive := k.PM.TryEdpt(ep); !alive {
		return
	}
	t := k.PM.Thrd(tid)
	if t.Endpoints[0] != pm.NoEndpoint {
		return
	}
	t.Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	ip.Adopt(tid, ep)
}

// Fails reports whether the program fails the differential oracle. A
// kernel panic counts as a failure and is recovered — the shrinker must
// be able to minimize crashing programs, not just diverging ones.
func Fails(p Program, opt Options) (failed bool) {
	defer func() {
		if recover() != nil {
			failed = true
		}
	}()
	res, _, err := RunDiff(p, opt)
	return err != nil || res != nil
}
