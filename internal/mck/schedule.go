package mck

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/contend"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

// Schedule exploration: the differential runner fixes one schedule
// (threads stay on their creation cores, the big lock is uncontended),
// so it can never see a bug that needs a particular interleaving. The
// explorer runs a fixed multicore workload — per-core IPC ping-pong,
// mapping churn, scheduler churn, and a pool of stealable threads —
// under a PCT-style seeded perturbation of the two schedule-shaping
// mechanisms the simulation has: the big lock's arrival order
// (hw.LockSim.SetJitter) and the work stealer's victim choice
// (pm.SetStealSeed). Per seed it checks the full invariant suite at
// intervals and that the per-core trace hashes are bit-identical across
// a repeated run — determinism is itself a checked property (§4.3
// output consistency).

// ScheduleReport summarizes an exploration sweep.
type ScheduleReport struct {
	Seeds     int
	Rounds    int
	Steals    uint64 // threads migrated, total across seeds
	Contended uint64 // contended lock acquisitions, total across seeds
	Distinct  int    // distinct per-core trace-hash vectors across seeds
}

// ExploreSchedules runs the workload once per seed (plus a determinism
// re-run), failing on the first invariant violation or cross-run trace
// divergence.
func ExploreSchedules(seeds []uint64, rounds int, opt Options) (*ScheduleReport, error) {
	rep := &ScheduleReport{Seeds: len(seeds), Rounds: rounds}
	vectors := map[string]bool{}
	for _, seed := range seeds {
		h1, steals, contended, err := runSchedule(seed, rounds, opt)
		if err != nil {
			return rep, fmt.Errorf("schedule seed %d: %w", seed, err)
		}
		h2, _, _, err := runSchedule(seed, rounds, opt)
		if err != nil {
			return rep, fmt.Errorf("schedule seed %d (re-run): %w", seed, err)
		}
		if len(h1) != len(h2) {
			return rep, fmt.Errorf("schedule seed %d: hash vector length %d vs %d", seed, len(h1), len(h2))
		}
		for c := range h1 {
			if h1[c] != h2[c] {
				return rep, fmt.Errorf("schedule seed %d: core %d trace hash %#x vs %#x — same seed, different trace",
					seed, c, h1[c], h2[c])
			}
		}
		rep.Steals += steals
		rep.Contended += contended
		key := fmt.Sprint(h1)
		if !vectors[key] {
			vectors[key] = true
			rep.Distinct++
		}
	}
	return rep, nil
}

// runSchedule drives one seeded run and returns the per-core trace
// hashes plus the run's steal and contention counts.
func runSchedule(seed uint64, rounds int, opt Options) (hashes []uint64, steals, contended uint64, err error) {
	frames, cores := opt.shape(Program{})
	k, init, err := kernel.Boot(hw.Config{Frames: frames, Cores: cores, TLBSlots: 256})
	if err != nil {
		return nil, 0, 0, err
	}
	tracer := obs.NewTracer(0)
	k.AttachObs(tracer, nil)
	// Schedule exploration runs with the lock-order checker armed: any
	// interleaving the perturbations produce must still respect the
	// declared ordering DAG (contend.KernelOrder).
	cobs := contend.New()
	k.AttachContention(cobs)
	k.ArmLockOrder()
	if opt.Hook != nil {
		opt.Hook(k)
	}
	k.PM.EnableWorkStealing()
	k.PM.SetStealSeed(seed)

	// One client/server ping-pong pair on core 0 (steady lock traffic),
	// plus a pool of floater threads parked on core 0. The other cores
	// start empty: their PickNext calls must go through the stealer, so
	// floaters migrate under the seeded victim policy, run a little on
	// their new core, and occasionally exit (re-emptying the core) while
	// a replacement spawns back on core 0 to keep the pool alive.
	rc := k.SysNewThread(0, init, 0)
	if rc.Errno != kernel.OK {
		return nil, 0, 0, fmt.Errorf("client: %v", rc.Errno)
	}
	client := pm.Ptr(rc.Vals[0])
	rs := k.SysNewThread(0, init, 0)
	if rs.Errno != kernel.OK {
		return nil, 0, 0, fmt.Errorf("server: %v", rs.Errno)
	}
	server := pm.Ptr(rs.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	if re.Errno != kernel.OK {
		return nil, 0, 0, fmt.Errorf("endpoint: %v", re.Errno)
	}
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(client).Endpoints[0] = ep
	k.PM.Thrd(server).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 2)
	if r := k.SysRecv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return nil, 0, 0, fmt.Errorf("server park: %v", r.Errno)
	}
	floaters := make(map[pm.Ptr]bool, 3*cores)
	spawnFloater := func() error {
		r := k.SysNewThread(0, init, 0)
		if r.Errno != kernel.OK {
			return fmt.Errorf("floater: %v", r.Errno)
		}
		floaters[pm.Ptr(r.Vals[0])] = true
		return nil
	}
	for i := 0; i < 3*cores; i++ {
		if err := spawnFloater(); err != nil {
			return nil, 0, 0, err
		}
	}

	// Align the clocks, then arm both perturbations: from here the lock
	// hand-off order and steal victims are functions of the seed.
	var mx uint64
	for c := 0; c < cores; c++ {
		if cy := k.Machine.Core(c).Clock.Cycles(); cy > mx {
			mx = cy
		}
	}
	for c := 0; c < cores; c++ {
		clk := &k.Machine.Core(c).Clock
		clk.Charge(mx - clk.Cycles())
	}
	k.EnableContention()
	k.SetLockJitter(seed, 256)

	r := hw.NewRand(seed ^ 0x5ca1ab1e)
	for i := 0; i < rounds; i++ {
		// Core 0: a full call/reply round trip under the perturbed lock.
		if ret := k.SysCall(0, client, 0, kernel.SendArgs{Regs: [4]uint64{uint64(i)}}); ret.Errno != kernel.EWOULDBLOCK {
			return nil, 0, 0, fmt.Errorf("call round %d: %v", i, ret.Errno)
		}
		if ret := k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); ret.Errno != kernel.EWOULDBLOCK {
			return nil, 0, 0, fmt.Errorf("reply_recv round %d: %v", i, ret.Errno)
		}
		// Other cores: schedule churn. An empty core's PickNext goes
		// through the seeded stealer; whatever lands runs a little and
		// sometimes exits, re-emptying the core.
		for c := 1; c < cores; c++ {
			next := k.PM.PickNext(c)
			if next == 0 {
				continue
			}
			switch {
			case r.Intn(3) == 0 && floaters[next]:
				k.SysExitThread(c, next)
				delete(floaters, next)
				if err := spawnFloater(); err != nil {
					return nil, 0, 0, err
				}
			case r.Bool():
				va := hw.VirtAddr(0x5000_0000 + uint64(c)<<24 + uint64(i%512)*hw.PageSize4K)
				k.SysMmap(c, next, va, 1, hw.Size4K, pt.RW)
				if r.Bool() {
					k.SysMunmap(c, next, va, 1, hw.Size4K)
				}
			default:
				k.SysYield(c, next)
			}
		}
		if (i+1)%32 == 0 {
			if err := verify.TotalWF(k); err != nil {
				return nil, 0, 0, fmt.Errorf("round %d: invariants: %w", i, err)
			}
		}
	}
	if err := verify.TotalWF(k); err != nil {
		return nil, 0, 0, fmt.Errorf("final: invariants: %w", err)
	}
	if v := cobs.FirstInversion(); v != nil {
		return nil, 0, 0, fmt.Errorf("lock order: %s", v)
	}
	_, contended, _ = k.LockStats()
	return perCoreTraceHashes(tracer, cores), k.PM.Steals(), contended, nil
}

// perCoreTraceHashes folds the tracer's event stream into one FNV-1a
// hash per core, keyed by each track's Perfetto pid (the core number);
// machine-wide tracks are skipped. Same recipe as the multicore bench
// determinism gate, reimplemented here so the harness stands alone.
func perCoreTraceHashes(tr *obs.Tracer, cores int) []uint64 {
	hs := make([]uint64, cores)
	sums := make([]hash.Hash64, cores)
	for c := range sums {
		sums[c] = fnv.New64a()
	}
	tracks := tr.Tracks()
	var buf [8 * 5]byte
	for _, e := range tr.Events() {
		pid := tracks[e.Track].PID
		if pid < 0 || pid >= cores {
			continue
		}
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Kind)<<32|uint64(uint32(e.Name)))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.Track))
		binary.LittleEndian.PutUint64(buf[16:], e.TS)
		binary.LittleEndian.PutUint64(buf[24:], e.Dur)
		binary.LittleEndian.PutUint64(buf[32:], e.Arg)
		sums[pid].Write(buf[:])
	}
	for c := range sums {
		hs[c] = sums[c].Sum64()
	}
	return hs
}
