package mck

import (
	"strings"
	"testing"

	"atmosphere/internal/kernel"
	"atmosphere/internal/obs/contend"
)

// crossContainerProgram builds the canonical sharded-lock workout: a
// second container pinned to core 1 with one thread, then rounds of
// cross-container rendezvous over the shared endpoint every new thread
// adopts in slot 0. Each round is recv (the child parks), call (init
// rendezvouses cross-container — the plan holds both container
// frontiers plus the endpoint), send (the child replies, waking init).
func crossContainerProgram(rounds int) Program {
	p := Program{Frames: DefaultFrames, Cores: 2}
	p.Ops = append(p.Ops,
		// quota = 20%40, cpus = {1} from the B bitmask.
		Op{Kind: KNewContainer, Actor: 0, A: 20, B: 0b10},
		// container registry index 1 = the one just created.
		Op{Kind: KNewProcessIn, Actor: 0, A: 1},
		// process registry index 1, pinned on core 1%(cores+2) = 1.
		Op{Kind: KNewThreadIn, Actor: 0, A: 1, B: 1},
	)
	for i := 0; i < rounds; i++ {
		p.Ops = append(p.Ops,
			Op{Kind: KRecv, Actor: 1, A: 0, B: 0},
			Op{Kind: KCall, Actor: 0, A: 0, B: 0, C: uint16(i)},
			Op{Kind: KSend, Actor: 1, A: 0, B: 0, C: uint16(i)},
		)
	}
	return p
}

// TestShardedAbstractEquivalence pins the tentpole's safety claim: with
// contention enabled, per-shard jitter armed, and the lock-order checker
// watching, a cross-container IPC program — the workload whose plans
// hold two container frontiers and an endpoint frontier at once — keeps
// Abstract(kernel) lockstep-equal to the spec interpreter at every step,
// for every jitter seed. Sharding perturbs only the virtual-time cost
// model; if a plan ever influenced a state transition, the differential
// oracle would diverge here.
func TestShardedAbstractEquivalence(t *testing.T) {
	p := crossContainerProgram(64)
	for seed := uint64(1); seed <= 8; seed++ {
		var cobs *contend.Observatory
		opt := Options{
			WFEvery: 32,
			Hook: func(k *kernel.Kernel) {
				cobs = contend.New()
				k.AttachContention(cobs)
				k.ArmLockOrder()
				k.EnableContention()
				k.SetLockJitter(seed, 256)
			},
		}
		res, st, err := RunDiff(p, opt)
		if err != nil {
			t.Fatalf("seed %d: boot: %v", seed, err)
		}
		if res != nil {
			t.Fatalf("seed %d: divergence: %v", seed, res)
		}
		if st.Steps != len(p.Ops) {
			t.Fatalf("seed %d: executed %d of %d ops", seed, st.Steps, len(p.Ops))
		}
		if v := cobs.FirstInversion(); v != nil {
			t.Fatalf("seed %d: lock order: %s", seed, v)
		}
		// Prove the sharded plans actually ran: container and endpoint
		// frontiers must have been created, registered, and acquired.
		byClass := map[string]uint64{}
		for _, c := range cobs.ByClass() {
			byClass[c.Class] = c.Acquisitions
		}
		for _, class := range []string{"big", "container", "endpoint"} {
			if byClass[class] == 0 {
				t.Fatalf("seed %d: no %s-frontier acquisitions (classes: %v)", seed, class, byClass)
			}
		}
	}
}

// TestPlantedCrossShardInversion plants a cross-shard ordering bug —
// the test-only plan flip acquires the endpoint frontier before its
// container — and demands the armed checker catch it under schedule
// exploration, deterministically: two identical sweeps must fail with
// byte-identical inversion reports.
func TestPlantedCrossShardInversion(t *testing.T) {
	opt := Options{
		Hook: func(k *kernel.Kernel) { k.SetLockPlanFlipForTest(true) },
	}
	_, err1 := ExploreSchedules([]uint64{7}, 40, opt)
	if err1 == nil {
		t.Fatalf("planted endpoint-before-container inversion went undetected")
	}
	for _, want := range []string{
		"lock-order inversion",
		"while holding endpoint/",
		"acquiring container/",
		"(no endpoint -> container edge declared)",
	} {
		if !strings.Contains(err1.Error(), want) {
			t.Fatalf("inversion report missing %q:\n%s", want, err1)
		}
	}
	_, err2 := ExploreSchedules([]uint64{7}, 40, opt)
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("planted inversion not deterministic:\nrun 1: %v\nrun 2: %v", err1, err2)
	}
}
