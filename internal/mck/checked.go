package mck

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

// RunChecked executes the program on a kernel wrapped by verify.Checker:
// every transition is validated against its per-syscall specification
// predicate plus the full invariant suite. This is the harness behind
// atmo-fuzz's default mode — same generator, same resolution, different
// oracle (per-step predicates instead of the lockstep interpreter).
func RunChecked(p Program, opt Options) (Stats, error) {
	st := newStats()
	frames, cores := opt.shape(p)
	c, init, err := verify.NewChecker(hw.Config{Frames: frames, Cores: cores, TLBSlots: 256})
	if err != nil {
		return st, err
	}
	if opt.Hook != nil {
		opt.Hook(c.K)
	}
	regs := bootRegistries(c.K, init)

	// Boot-style channel setup, as in RunDiff: a shared rendezvous
	// endpoint in slot 0, adopted by every new thread.
	rret, err := c.NewEndpoint(0, init, 0)
	if err != nil || rret.Errno != kernel.OK {
		return st, fmt.Errorf("rendezvous setup: %v %v", rret.Errno, err)
	}
	rendezvous := pm.Ptr(rret.Vals[0])
	adoptChecked := func(tid pm.Ptr) {
		if _, alive := c.K.PM.TryEdpt(rendezvous); !alive {
			return
		}
		t := c.K.PM.Thrd(tid)
		if t.Endpoints[0] != pm.NoEndpoint {
			return
		}
		t.Endpoints[0] = rendezvous
		c.K.PM.EndpointIncRef(rendezvous, 1)
	}

	for _, op := range p.Ops {
		rc, ok := resolve(c.K, regs, op, cores)
		if !ok {
			continue
		}
		ret, err := dispatchChecked(c, rc)
		st.record(rc.kind.String(), ret)
		if err != nil {
			return st, err
		}
		regs.record(rc, ret)
		if rc.kind == KNewThreadIn && ret.Errno == kernel.OK {
			adoptChecked(pm.Ptr(ret.Vals[0]))
		}
	}
	return st, nil
}

func dispatchChecked(c *verify.Checker, rc call) (kernel.Ret, error) {
	switch rc.kind {
	case KMmap:
		return c.Mmap(rc.core, rc.tid, rc.va, rc.count, hw.Size4K, pt.RW)
	case KMunmap:
		return c.Munmap(rc.core, rc.tid, rc.va, rc.count, hw.Size4K)
	case KNewContainer:
		return c.NewContainer(rc.core, rc.tid, rc.quota, rc.cpus)
	case KNewProcess:
		return c.NewProcess(rc.core, rc.tid)
	case KNewProcessIn:
		return c.NewProcessIn(rc.core, rc.tid, rc.cntr)
	case KNewThreadIn:
		return c.NewThreadIn(rc.core, rc.tid, rc.proc, rc.onCore)
	case KExitThread:
		return c.ExitThread(rc.core, rc.tid)
	case KNewEndpoint:
		return c.NewEndpoint(rc.core, rc.tid, rc.slot)
	case KCloseEndpoint:
		return c.CloseEndpoint(rc.core, rc.tid, rc.slot)
	case KSend:
		return c.Send(rc.core, rc.tid, rc.slot,
			kernel.SendArgs{Regs: [4]uint64{rc.reg}, SendEdpt: rc.sendEdpt, EdptSlot: rc.xferSlot})
	case KRecv:
		return c.Recv(rc.core, rc.tid, rc.slot, kernel.RecvArgs{EdptSlot: rc.reqSlot})
	case KCall:
		return c.Call(rc.core, rc.tid, rc.slot,
			kernel.SendArgs{Regs: [4]uint64{rc.reg}, SendEdpt: rc.sendEdpt, EdptSlot: rc.xferSlot})
	case KYield:
		return c.Yield(rc.core, rc.tid)
	case KKillProcess:
		return c.KillProcess(rc.core, rc.tid, rc.proc)
	case KKillContainer:
		return c.KillContainer(rc.core, rc.tid, rc.cntr)
	case KIommuCreate:
		return c.IommuCreateDomain(rc.core, rc.tid)
	case KSendAsync:
		args := kernel.SendArgs{Regs: [4]uint64{rc.reg}}
		if rc.grantVA != 0 {
			args.GrantPage, args.PageVA = true, rc.grantVA
		}
		return c.SendAsync(rc.core, rc.tid, rc.slot, args)
	case KBatch:
		return dispatchCheckedBatch(c, rc)
	}
	panic("mck: unhandled kind " + rc.kind.String())
}

// dispatchCheckedBatch runs a KBatch op's derived submissions as
// individual checked syscalls: the checked oracle is per-transition
// predicates, so the flattened sequence is exactly what it validates
// (the ring framing itself is the differential runner's concern).
func dispatchCheckedBatch(c *verify.Checker, rc call) (kernel.Ret, error) {
	var last kernel.Ret
	for _, b := range deriveBops(rc.seed) {
		var err error
		switch b.op {
		case kernel.BopNop:
			continue
		case kernel.BopMmap:
			last, err = c.Mmap(rc.core, rc.tid, hw.VirtAddr(b.args[0]), int(b.args[1]), hw.Size4K, pt.RW)
		case kernel.BopMunmap:
			last, err = c.Munmap(rc.core, rc.tid, hw.VirtAddr(b.args[0]), int(b.args[1]), hw.Size4K)
		case kernel.BopSend:
			last, err = c.Send(rc.core, rc.tid, int(b.args[0]), batchSendArgs(b))
		case kernel.BopSendAsync:
			last, err = c.SendAsync(rc.core, rc.tid, int(b.args[0]), batchSendArgs(b))
		case kernel.BopCall:
			last, err = c.Call(rc.core, rc.tid, int(b.args[0]), batchSendArgs(b))
		case kernel.BopRecv:
			last, err = c.Recv(rc.core, rc.tid, int(b.args[0]),
				kernel.RecvArgs{PageVA: hw.VirtAddr(b.args[1]), EdptSlot: int(b.args[2]) - 1})
		case kernel.BopYield:
			last, err = c.Yield(rc.core, rc.tid)
		}
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// batchSendArgs decodes a derived send-family bop's arguments, mirroring
// kernel.batchDispatch.
func batchSendArgs(b bop) kernel.SendArgs {
	args := kernel.SendArgs{Regs: [4]uint64{b.args[1], b.args[2]}}
	if va := hw.VirtAddr(b.args[3]); va != 0 {
		args.GrantPage, args.PageVA = true, va
	}
	return args
}
