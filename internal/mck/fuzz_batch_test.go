package mck

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"atmosphere/internal/kernel"
)

// fuzzBatchSeeds feeds the batch-dialect corpus: generator output plus
// every checked-in batch repro. The batch repros are named
// repro_batch_*.repro, so the general targets (FuzzDiff/FuzzChecked)
// pick them up through their repro_*.repro glob as well.
func fuzzBatchSeeds(f *testing.F) {
	for seed := uint64(1); seed <= 6; seed++ {
		f.Add(GenerateBatched(seed, 120).Encode())
	}
	files, err := filepath.Glob(filepath.Join("testdata", "repro_batch_*.repro"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		p, err := ParseRepro(data)
		if err != nil {
			f.Fatalf("%s: %v", file, err)
		}
		f.Add(p.Encode())
	}
}

// FuzzDiffBatch is the batching differential target: arbitrary bytes
// decode (totally) into a batch-dialect program — KBatch doorbells,
// grant-bearing sends, and the setup ops they need — and run through
// the lockstep oracle. The oracle property is exactly the batching
// spec: Ψ after a batch must equal the spec interpreter run over the
// flattened per-op sequence the completion ring reports, op by op.
func FuzzDiffBatch(f *testing.F) {
	fuzzBatchSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := FromBytesBatch(data)
		if len(p.Ops) > fuzzOps {
			p.Ops = p.Ops[:fuzzOps]
		}
		opt, inversion := Options{WFEvery: 64}.WithLockOrder()
		res, _, err := RunDiff(p, opt)
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		if res != nil {
			t.Fatalf("divergence: %v\nrepro:\n%s", res, p.EncodeRepro())
		}
		if v := inversion(); v != nil {
			t.Fatalf("%s\nrepro:\n%s", v, p.EncodeRepro())
		}
	})
}

// TestBatchDiffSeeds runs the deterministic batch-dialect corpus
// through both oracles — the lockstep interpreter and the per-step
// predicates — so the batching spec is exercised on every plain `go
// test` run, not only under the fuzz engine.
func TestBatchDiffSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := GenerateBatched(seed, 250)
		opt, inversion := Options{WFEvery: 32}.WithLockOrder()
		res, st, err := RunDiff(p, opt)
		if err != nil {
			t.Fatalf("seed %d: boot: %v", seed, err)
		}
		if res != nil {
			t.Fatalf("seed %d diverged: %v\nrepro:\n%s", seed, res, p.EncodeRepro())
		}
		if v := inversion(); v != nil {
			t.Fatalf("seed %d: %s", seed, v)
		}
		if st.Ops["batch"] == 0 {
			t.Fatalf("seed %d: batch dialect ran zero doorbells", seed)
		}
		if _, err := RunChecked(p, Options{}); err != nil {
			t.Fatalf("seed %d checked: %v", seed, err)
		}
	}
}

// grantLeakOptions arms the planted double-grant bug: the kernel skips
// revoking the sender's mapping (and crediting its quota) when a grant
// moves into flight, so one page ends up with two owners. Crucially the
// ledger audit and the memory invariants both stay self-consistent —
// the mapping and the in-flight reference are each properly accounted —
// so only the differential oracle can see it, as a kernel-vs-spec
// used_pages/address-space divergence.
func grantLeakOptions() Options {
	return Options{Hook: func(k *kernel.Kernel) { k.SetGrantLeakForTest(true) }}
}

// grantLeakSeed is a batch-dialect seed whose program drives a grant
// through a KBatch doorbell early; the golden below pins its shrink.
const grantLeakSeed = 15

// TestGrantLeakCaught is the batching oracle's proof of life: with the
// double-grant planted, a batch-dialect program must (a) diverge at the
// field level, (b) shrink to a tiny deterministic repro that still
// carries the grant. A blind oracle turns this whole file decorative.
func TestGrantLeakCaught(t *testing.T) {
	p := GenerateBatched(grantLeakSeed, 400)
	res, _, err := RunDiff(p, grantLeakOptions())
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if res == nil {
		t.Fatalf("oracle missed the planted double-grant over %d ops", len(p.Ops))
	}
	if res.Err == nil {
		t.Fatalf("divergence carries no field description: %+v", res)
	}
	t.Logf("caught: %v", res)

	failing := func(q Program) bool { return Fails(q, grantLeakOptions()) }
	s1 := Shrink(p, failing)
	if len(s1.Ops) > 10 {
		t.Fatalf("shrunk repro has %d ops, want <= 10:\n%s", len(s1.Ops), s1.EncodeRepro())
	}
	if !failing(s1) {
		t.Fatalf("shrunk repro no longer fails")
	}
	s2 := Shrink(p, failing)
	if !bytes.Equal(s1.EncodeRepro(), s2.EncodeRepro()) {
		t.Fatalf("shrink is not deterministic:\n%s\nvs\n%s", s1.EncodeRepro(), s2.EncodeRepro())
	}
}

// TestGrantLeakShrinkGolden pins the minimized double-grant repro
// byte-for-byte, and proves it replays: the checked-in file must still
// diverge under the planted bug and must pass on the healthy kernel
// (so the corpus can carry it as a regression seed). Regenerate
// deliberately with UPDATE_GOLDEN=1.
func TestGrantLeakShrinkGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking loop is slow")
	}
	failing := func(q Program) bool { return Fails(q, grantLeakOptions()) }
	s := Shrink(GenerateBatched(grantLeakSeed, 400), failing)
	got := s.EncodeRepro()
	golden := filepath.Join("testdata", "repro_batch_grant_leak.repro")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("shrunk repro drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	p, err := ParseRepro(want)
	if err != nil {
		t.Fatalf("golden does not parse: %v", err)
	}
	if !Fails(p, grantLeakOptions()) {
		t.Fatal("golden repro no longer reproduces the planted double-grant")
	}
	if res, _, err := RunDiff(p, Options{WFEvery: 1}); err != nil || res != nil {
		t.Fatalf("golden repro fails on the healthy kernel: res=%v err=%v", res, err)
	}
}
