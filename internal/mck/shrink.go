package mck

// Shrink minimizes a failing program with delta debugging: ddmin over
// the op list (drop whole chunks at shrinking granularity), then arg
// canonicalization (zero each field of each surviving op). failing must
// be a pure predicate — typically func(q Program) bool { return
// Fails(q, opt) } — and is assumed true for p. The result is the
// smallest program the procedure finds that still fails, deterministic
// for a fixed (p, failing) pair.
func Shrink(p Program, failing func(Program) bool) Program {
	p = ddmin(p, failing)
	p = canonicalize(p, failing)
	// A canonicalized arg can re-enable a drop (an op may have become a
	// no-op); one more reduction pass picks that up cheaply.
	p = ddmin(p, failing)
	return p
}

func withOps(p Program, ops []Op) Program {
	q := p
	q.Ops = ops
	return q
}

// ddmin is the classic Zeller/Hildebrandt reduction: try to remove
// chunks of exponentially finer granularity until single ops remain.
func ddmin(p Program, failing func(Program) bool) Program {
	ops := append([]Op(nil), p.Ops...)
	n := 2
	for len(ops) >= 2 {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			trial := make([]Op, 0, len(ops)-(end-start))
			trial = append(trial, ops[:start]...)
			trial = append(trial, ops[end:]...)
			if len(trial) > 0 && failing(withOps(p, trial)) {
				ops = trial
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(ops) {
			break
		}
		n = min(2*n, len(ops))
	}
	return withOps(p, ops)
}

// canonicalize drives every op field toward zero while the program
// still fails, so repros read as minimally as they run: actor 0, slot
// 0, the smallest counts and indices that preserve the failure.
func canonicalize(p Program, failing func(Program) bool) Program {
	ops := append([]Op(nil), p.Ops...)
	try := func(i int, mutate func(*Op)) {
		saved := ops[i]
		mutate(&ops[i])
		if ops[i] == saved {
			return
		}
		if !failing(withOps(p, ops)) {
			ops[i] = saved
		}
	}
	for i := range ops {
		try(i, func(o *Op) { o.Actor = 0 })
		try(i, func(o *Op) { o.A = 0 })
		try(i, func(o *Op) { o.B = 0 })
		try(i, func(o *Op) { o.C = 0 })
	}
	return withOps(p, ops)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
