package mck

import (
	"fmt"
	"testing"
)

// TestRunDiffSeeds is the differential oracle's bread and butter: many
// seeds, many ops each, kernel and interpreter must agree on every
// field of Ψ after every step.
func TestRunDiffSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := Generate(seed, 400)
			res, st, err := RunDiff(p, Options{WFEvery: 64})
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			if res != nil {
				t.Fatalf("divergence: %v", res)
			}
			if st.Steps == 0 {
				t.Fatalf("no ops executed")
			}
		})
	}
}

// TestRunCheckedSeeds drives the same generator through the per-syscall
// spec predicates plus the invariant suite.
func TestRunCheckedSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := Generate(seed, 250)
			if _, err := RunChecked(p, Options{}); err != nil {
				t.Fatalf("checked run: %v", err)
			}
		})
	}
}
