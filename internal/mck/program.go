// Package mck is the model-checking harness around the executable
// specification: a seeded, typed syscall-program generator (swarm
// profiles over the op vocabulary), a differential runner that executes
// each program in lockstep on the concrete kernel and on the pure spec
// interpreter (spec.Interp) and reports the first field-level divergence
// of Ψ, a delta-debugging shrinker that reduces a failing program to a
// minimal self-contained repro, and a schedule explorer that perturbs
// the big-lock hand-off order and work-stealing victims per seed.
//
// Programs are flat op lists with total binary and text encodings, so
// native `go test -fuzz` corpora, repro files, and generated traces are
// all the same object.
package mck

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the syscall vocabulary the generator emits. The
// interpreter in internal/spec models exactly this set.
type Kind uint8

const (
	KMmap Kind = iota
	KMunmap
	KNewContainer
	KNewProcess
	KNewProcessIn
	KNewThreadIn
	KExitThread
	KNewEndpoint
	KCloseEndpoint
	KSend
	KRecv
	KCall
	KYield
	KKillProcess
	KKillContainer
	KIommuCreate
	KSendAsync
	KBatch
	numKinds
)

var kindNames = [numKinds]string{
	"mmap", "munmap", "new_container", "new_proc", "new_proc_in",
	"new_thread_in", "exit_thread", "new_endpoint", "close_endpoint",
	"send", "recv", "call", "yield", "kill_proc", "kill_container",
	"iommu_create", "send_async", "batch",
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// kindByName is the inverse of kindNames, for repro parsing.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, n := range kindNames {
		m[n] = Kind(k)
	}
	return m
}()

// Op is one abstract syscall. Actor indexes the thread registry (threads
// in creation order, modulo its current length); A, B, C are typed per
// kind by the resolver in run.go — registry indices, slots, counts,
// virtual-address offsets — always reduced modulo the valid-plus-probe
// range, so every bit pattern is a meaningful program.
type Op struct {
	Kind  Kind
	Actor uint8
	A     uint16
	B     uint16
	C     uint16
}

func (o Op) String() string {
	return fmt.Sprintf("op %s actor=%d a=%d b=%d c=%d", o.Kind, o.Actor, o.A, o.B, o.C)
}

// Program is a syscall program plus the machine shape it runs on.
type Program struct {
	Frames int
	Cores  int
	Ops    []Op
}

// Default machine shape for programs decoded from raw fuzz bytes.
const (
	DefaultFrames = 8192
	DefaultCores  = 4
)

const opBytes = 8

// Encode serializes the op list (not the machine shape) to the compact
// binary form used as fuzz-corpus payload: 8 bytes per op,
// little-endian.
func (p Program) Encode() []byte {
	out := make([]byte, 0, len(p.Ops)*opBytes)
	var buf [opBytes]byte
	for _, o := range p.Ops {
		buf[0] = byte(o.Kind)
		buf[1] = o.Actor
		binary.LittleEndian.PutUint16(buf[2:], o.A)
		binary.LittleEndian.PutUint16(buf[4:], o.B)
		binary.LittleEndian.PutUint16(buf[6:], o.C)
		out = append(out, buf[:]...)
	}
	return out
}

// FromBytes decodes a program from raw bytes. The decoding is total —
// every input is a valid program (kinds wrap modulo the vocabulary,
// trailing partial ops are dropped) — so the fuzzer's mutations always
// produce executable programs.
func FromBytes(data []byte) Program {
	p := Program{Frames: DefaultFrames, Cores: DefaultCores}
	for len(data) >= opBytes {
		p.Ops = append(p.Ops, Op{
			Kind:  Kind(data[0] % uint8(numKinds)),
			Actor: data[1],
			A:     binary.LittleEndian.Uint16(data[2:]),
			B:     binary.LittleEndian.Uint16(data[4:]),
			C:     binary.LittleEndian.Uint16(data[6:]),
		})
		data = data[opBytes:]
	}
	return p
}

// reproHeader is the first line of the self-contained repro format.
const reproHeader = "# atmo-mck repro v1"

// EncodeRepro serializes the whole program — machine shape included —
// to the self-contained text repro format replayed by `atmo-fuzz
// -repro`. The encoding is byte-deterministic: a fixed program always
// produces identical bytes (the shrinker's goldens rely on this).
func (p Program) EncodeRepro() []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, reproHeader)
	fmt.Fprintf(&b, "frames %d\n", p.Frames)
	fmt.Fprintf(&b, "cores %d\n", p.Cores)
	for _, o := range p.Ops {
		fmt.Fprintln(&b, o.String())
	}
	return b.Bytes()
}

// ParseRepro parses the text repro format. Unknown directives are
// errors — a repro file is a precise artifact, not a lenient config.
func ParseRepro(data []byte) (Program, error) {
	p := Program{Frames: DefaultFrames, Cores: DefaultCores}
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if text != reproHeader {
				return p, fmt.Errorf("line 1: want %q, got %q", reproHeader, text)
			}
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "frames", "cores":
			if len(fields) != 2 {
				return p, fmt.Errorf("line %d: want %q <n>", line, fields[0])
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return p, fmt.Errorf("line %d: bad %s %q", line, fields[0], fields[1])
			}
			if fields[0] == "frames" {
				p.Frames = n
			} else {
				p.Cores = n
			}
		case "op":
			o, err := parseOpLine(fields)
			if err != nil {
				return p, fmt.Errorf("line %d: %w", line, err)
			}
			p.Ops = append(p.Ops, o)
		default:
			return p, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return p, err
	}
	if line == 0 {
		return p, fmt.Errorf("empty repro")
	}
	return p, nil
}

func parseOpLine(fields []string) (Op, error) {
	var o Op
	if len(fields) != 6 {
		return o, fmt.Errorf("want op <kind> actor= a= b= c=, got %d fields", len(fields))
	}
	k, ok := kindByName[fields[1]]
	if !ok {
		return o, fmt.Errorf("unknown op kind %q", fields[1])
	}
	o.Kind = k
	for i, key := range []string{"actor=", "a=", "b=", "c="} {
		f := fields[2+i]
		if !strings.HasPrefix(f, key) {
			return o, fmt.Errorf("field %d: want %s<n>, got %q", 2+i, key, f)
		}
		n, err := strconv.ParseUint(f[len(key):], 10, 16)
		if err != nil {
			return o, fmt.Errorf("field %q: %v", f, err)
		}
		switch i {
		case 0:
			if n > 255 {
				return o, fmt.Errorf("actor %d out of range", n)
			}
			o.Actor = uint8(n)
		case 1:
			o.A = uint16(n)
		case 2:
			o.B = uint16(n)
		case 3:
			o.C = uint16(n)
		}
	}
	return o, nil
}
