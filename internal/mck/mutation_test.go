package mck

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
)

// mutantOptions returns Options whose Hook sabotages the kernel: after
// the first successful new_container, the root container's page
// accounting is silently bumped by one. The spec interpreter applies
// the unperturbed specification, so the differential oracle must flag
// a used_pages divergence on that very step. Hook runs once per
// RunDiff, so the fired latch is fresh for every shrink candidate.
func mutantOptions() Options {
	return Options{Hook: func(k *kernel.Kernel) {
		fired := false
		k.PostSyscall = func(name string, _ pm.Ptr, ret kernel.Ret) {
			if fired || name != "new_container" || ret.Errno != kernel.OK {
				return
			}
			fired = true
			k.PM.Cntr(k.PM.RootContainer).UsedPages++
		}
	}}
}

// TestMutationSelfTest is the oracle's proof of life: a deliberately
// perturbed kernel transition must be (a) caught as a field-level Ψ
// divergence, (b) shrunk to a tiny deterministic repro. If this test
// ever passes against an oracle that has gone blind, the whole
// differential harness is decorative.
func TestMutationSelfTest(t *testing.T) {
	opt := mutantOptions()
	p := Generate(1, 400)
	res, _, err := RunDiff(p, opt)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if res == nil {
		t.Fatalf("oracle missed the planted mutation over %d ops", len(p.Ops))
	}
	if res.Err == nil {
		t.Fatalf("divergence carries no field description: %+v", res)
	}
	t.Logf("caught: %v", res)

	failing := func(q Program) bool { return Fails(q, mutantOptions()) }
	s1 := Shrink(p, failing)
	if len(s1.Ops) > 10 {
		t.Fatalf("shrunk repro has %d ops, want <= 10:\n%s", len(s1.Ops), s1.EncodeRepro())
	}
	if !failing(s1) {
		t.Fatalf("shrunk repro no longer fails")
	}
	// Shrinking is deterministic: a second pass over the same input
	// must emit byte-identical output.
	s2 := Shrink(p, failing)
	if !bytes.Equal(s1.EncodeRepro(), s2.EncodeRepro()) {
		t.Fatalf("shrink is not deterministic:\n%s\nvs\n%s", s1.EncodeRepro(), s2.EncodeRepro())
	}
}

// TestMutationShrinkGolden pins the shrinker's minimized output for the
// planted mutation byte-for-byte. Any change to the generator, the
// resolver, or the ddmin schedule shows up here as a diff against
// testdata — regenerate deliberately with UPDATE_GOLDEN=1.
func TestMutationShrinkGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking loop is slow")
	}
	failing := func(q Program) bool { return Fails(q, mutantOptions()) }
	s := Shrink(Generate(1, 400), failing)
	got := s.EncodeRepro()
	golden := filepath.Join("testdata", "mutation_shrunk.repro")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("shrunk repro drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
