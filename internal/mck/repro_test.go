package mck

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEncodeDecodeRoundTrip: binary op encoding survives a round trip,
// and decoding is total (any byte soup yields a valid program).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Generate(7, 200)
	q := FromBytes(p.Encode())
	if len(q.Ops) != len(p.Ops) {
		t.Fatalf("op count %d -> %d", len(p.Ops), len(q.Ops))
	}
	for i := range p.Ops {
		if p.Ops[i] != q.Ops[i] {
			t.Fatalf("op %d: %v -> %v", i, p.Ops[i], q.Ops[i])
		}
	}
	// Partial trailing op is dropped, not an error.
	trunc := FromBytes(p.Encode()[:len(p.Ops)*opBytes-3])
	if len(trunc.Ops) != len(p.Ops)-1 {
		t.Fatalf("truncated decode: %d ops, want %d", len(trunc.Ops), len(p.Ops)-1)
	}
	// Arbitrary bytes decode to in-range kinds.
	junk := FromBytes([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8})
	if len(junk.Ops) != 1 || junk.Ops[0].Kind >= numKinds {
		t.Fatalf("junk decode out of range: %+v", junk.Ops)
	}
}

// TestReproRoundTrip: the text repro format is parse(encode(p)) == p
// and byte-deterministic.
func TestReproRoundTrip(t *testing.T) {
	p := Generate(11, 60)
	p.Frames = 4096
	p.Cores = 2
	text := p.EncodeRepro()
	q, err := ParseRepro(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if q.Frames != p.Frames || q.Cores != p.Cores || len(q.Ops) != len(p.Ops) {
		t.Fatalf("shape mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Ops {
		if p.Ops[i] != q.Ops[i] {
			t.Fatalf("op %d: %v -> %v", i, p.Ops[i], q.Ops[i])
		}
	}
	if !bytes.Equal(text, q.EncodeRepro()) {
		t.Fatalf("repro encoding not a fixed point")
	}
}

func TestParseReproRejects(t *testing.T) {
	cases := map[string]string{
		"missing header":    "frames 1024\ncores 1\n",
		"bad directive":     reproHeader + "\nbogus 3\n",
		"bad kind":          reproHeader + "\nop warp actor=0 a=0 b=0 c=0\n",
		"malformed op line": reproHeader + "\nop send actor=zero a=0 b=0 c=0\n",
	}
	for name, text := range cases {
		if _, err := ParseRepro([]byte(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestReproRegressions replays every checked-in repro under testdata/
// through the differential oracle. Each file is a minimized program
// that once exposed a real kernel-vs-spec divergence; they must all
// run clean forever after.
func TestReproRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repro_*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression repros found under testdata/")
	}
	for _, f := range files {
		f := f
		t.Run(strings.TrimSuffix(filepath.Base(f), ".repro"), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ParseRepro(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, _, err := RunDiff(p, Options{})
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			if res != nil {
				t.Fatalf("regressed: %v", res)
			}
		})
	}
}
