package mck

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/shmring"
	"atmosphere/internal/spec"
)

// bop is one derived batch submission: an opcode plus the four argument
// words batchDispatch decodes.
type bop struct {
	op   uint8
	args [4]uint64
}

// batchVABase keeps derived batch mappings in a small window at the
// bottom of the generator's mmap region, so grants, maps, and unmaps
// within one batch (and across batches of the same run) collide often.
const (
	batchVAPages  = 32
	batchRecvBias = batchVAPages // recv landing window sits above the grant window
)

// deriveBops expands a KBatch op's packed seed into a deterministic
// submission sequence. The derivation is a pure function of the seed —
// a replayed program re-derives the identical batch — and is weighted
// toward the IPC ops whose batched interleavings (grants mid-drain,
// blocking stops, buffered pops) are the interesting surface.
func deriveBops(seed uint64) []bop {
	r := hw.NewRand(seed)
	n := 1 + r.Intn(8)
	bops := make([]bop, 0, n)
	grantVA := func() uint64 {
		if r.Intn(2) == 0 {
			return 0 // scalars only
		}
		va := uint64(mmapBase) + uint64(r.Intn(batchVAPages))*hw.PageSize4K
		if r.Intn(8) == 0 {
			va += uint64(r.Intn(int(hw.PageSize4K))) // sub-page probe
		}
		return va
	}
	slot := func() uint64 {
		if r.Intn(2) == 0 {
			return 0 // the shared rendezvous endpoint
		}
		return uint64(r.Intn(pm.MaxEndpoints + 2))
	}
	for i := 0; i < n; i++ {
		var b bop
		switch r.Intn(10) {
		case 0:
			b = bop{op: kernel.BopNop}
		case 1, 2:
			b = bop{op: kernel.BopMmap, args: [4]uint64{
				uint64(mmapBase) + uint64(r.Intn(batchVAPages))*hw.PageSize4K,
				uint64(1 + r.Intn(3))}}
		case 3:
			b = bop{op: kernel.BopMunmap, args: [4]uint64{
				uint64(mmapBase) + uint64(r.Intn(batchVAPages))*hw.PageSize4K,
				uint64(1 + r.Intn(3))}}
		case 4, 5:
			b = bop{op: kernel.BopSendAsync, args: [4]uint64{
				slot(), r.Uint64() & 0xffff, r.Uint64() & 0xffff, grantVA()}}
		case 6:
			b = bop{op: kernel.BopSend, args: [4]uint64{
				slot(), r.Uint64() & 0xffff, r.Uint64() & 0xffff, grantVA()}}
		case 7:
			b = bop{op: kernel.BopCall, args: [4]uint64{
				slot(), r.Uint64() & 0xffff, r.Uint64() & 0xffff, grantVA()}}
		case 8:
			b = bop{op: kernel.BopRecv, args: [4]uint64{
				slot(),
				uint64(mmapBase) + uint64(batchRecvBias+r.Intn(batchVAPages))*hw.PageSize4K,
				uint64(r.Intn(pm.MaxEndpoints + 2))}}
		case 9:
			b = bop{op: kernel.BopYield}
		}
		bops = append(bops, b)
	}
	return bops
}

// runBatch drives one KBatch op differentially: it encodes the derived
// submission sequence into scratch rings, rings SysBatchRings directly
// (the kernel-internal doorbell the model checker is documented to
// drive), then replays exactly the drained prefix — as reported by the
// posted CQEs — through the spec interpreter. This is the batch oracle:
// Abstract(kernel) after the batch must equal spec.Interp over the
// flattened op sequence, with each op's errno pinned by its CQE.
func runBatch(k *kernel.Kernel, ip *spec.Interp, c call) (kernel.Ret, error) {
	mem := hw.NewPhysMem(2)
	clk := &k.Machine.Core(c.core).Clock
	sq := shmring.New(mem, clk, 0, shmring.SlotsPerPage())
	cq := shmring.New(mem, clk, hw.PageSize4K, shmring.SlotsPerPage())
	bops := deriveBops(c.seed)
	for i, b := range bops {
		if err := shmring.EncodeSQE(sq, b.op, 0, uint16(i), b.args[:]...); err != nil {
			return kernel.Ret{}, fmt.Errorf("batch encode %d: %v", i, err)
		}
	}
	ret := k.SysBatchRings(c.core, c.tid, sq, cq, 0)
	drained := int(ret.Vals[0])
	if drained > len(bops) {
		return ret, fmt.Errorf("batch drained %d of %d submissions", drained, len(bops))
	}
	for i := 0; i < drained; i++ {
		cqe, err := shmring.PopCQE(cq)
		if err != nil {
			return ret, fmt.Errorf("batch completion %d: %v", i, err)
		}
		if cqe.Token != uint16(i) || cqe.Op != bops[i].op {
			return ret, fmt.Errorf("batch completion %d: token %d op %d, want %d/%d",
				i, cqe.Token, cqe.Op, i, bops[i].op)
		}
		bret := kernel.Ret{Errno: kernel.Errno(cqe.Errno), Vals: [4]uint64{cqe.Val}}
		if err := applyBop(ip, c.tid, bops[i], bret); err != nil {
			return ret, fmt.Errorf("batch op %d (%d): %w", i, bops[i].op, err)
		}
	}
	if _, err := shmring.PopCQE(cq); err != shmring.ErrEmpty {
		return ret, fmt.Errorf("batch posted more completions than Vals[0]=%d", drained)
	}
	return ret, nil
}

// applyBop applies one drained submission's specification, mirroring
// batchDispatch's argument decoding exactly.
func applyBop(ip *spec.Interp, tid pm.Ptr, b bop, ret kernel.Ret) error {
	switch b.op {
	case kernel.BopNop:
		if ret.Errno != kernel.OK {
			return fmt.Errorf("nop: errno %v", ret.Errno)
		}
		return nil
	case kernel.BopMmap:
		return ip.Mmap(tid, hw.VirtAddr(b.args[0]), int(b.args[1]), ret)
	case kernel.BopMunmap:
		return ip.Munmap(tid, hw.VirtAddr(b.args[0]), int(b.args[1]), ret)
	case kernel.BopSend:
		return ip.Send(tid, int(b.args[0]), false, 0, hw.VirtAddr(b.args[3]), ret)
	case kernel.BopSendAsync:
		return ip.SendAsync(tid, int(b.args[0]), hw.VirtAddr(b.args[3]), ret)
	case kernel.BopCall:
		return ip.Call(tid, int(b.args[0]), false, 0, hw.VirtAddr(b.args[3]), ret)
	case kernel.BopRecv:
		return ip.Recv(tid, int(b.args[0]), int(b.args[2])-1, hw.VirtAddr(b.args[1]), ret)
	case kernel.BopYield:
		return ip.Yield(tid, ret)
	}
	return fmt.Errorf("unhandled bop %d", b.op)
}
