package mck

import "testing"

// TestExploreSchedules sweeps schedule seeds: per seed the invariant
// suite must hold throughout and a repeated run must produce
// bit-identical per-core trace hashes; across seeds the perturbations
// must actually move the schedule (steals happen, interleavings differ).
func TestExploreSchedules(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	rep, err := ExploreSchedules(seeds, 200, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steals == 0 {
		t.Error("no threads were stolen — the steal perturbation never engaged")
	}
	if rep.Contended == 0 {
		t.Error("no contended acquisitions — the lock perturbation never engaged")
	}
	if rep.Distinct < 2 {
		t.Errorf("only %d distinct trace-hash vectors across %d seeds — schedules did not vary", rep.Distinct, len(seeds))
	}
}
