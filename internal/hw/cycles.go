package hw

// The cycle cost model. All performance results in the repository are
// deterministic functions of the operations the kernel and devices execute,
// priced by this table. The constants are calibrated so the microbenchmark
// primitives land where the paper measured them on the CloudLab c220g5
// testbed (Table 3 and §6.4-§6.6); the derived results (drivers,
// applications) then follow from the same operation sequences the real
// system executes.

// ClockHz is the simulated CPU frequency (c220g5: Xeon Silver 4114,
// 2.20 GHz, turbo and frequency scaling disabled as in §6).
const ClockHz = 2_200_000_000

// Cost constants, in cycles.
const (
	// CostSyscallEntry prices the sysenter trampoline: swapgs, stack
	// switch, register save (the 172 lines of trusted assembly in §5).
	CostSyscallEntry = 110
	// CostSyscallExit prices sysexit and register restore.
	CostSyscallExit = 110
	// CostSyscallDispatch prices the slowpath dispatcher: argument copy
	// from user registers, range validation, and the syscall table
	// indirect call. The IPC fastpath (call/reply) skips it, as seL4's
	// fastpath does.
	CostSyscallDispatch = 150
	// CostBigLock prices acquiring and releasing the kernel big lock
	// (§3) on an uncontended cache-hot path. This is deliberately the
	// *uncontended* cost — what a single-core run pays; contention is
	// not a constant but a function of concurrent holders, derived
	// deterministically by LockSim (lock.go) and charged on top when
	// the contention model is enabled.
	CostBigLock = 40
	// CostContextSwitch prices a full thread context switch: register
	// file save/restore, CR3 reload, and the direct-cost part of the
	// TLB refill.
	CostContextSwitch = 430
	// CostCacheTouch prices touching one cache line of kernel state
	// (an L1-hit load/store pair).
	CostCacheTouch = 4
	// CostCacheMiss prices an LLC-missing memory reference (used for
	// cold descriptor and DMA buffer access in device models).
	CostCacheMiss = 90
	// CostPTWrite prices one page-table entry store plus the
	// accounting writes around it.
	CostPTWrite = 24
	// CostPTWalkLevel prices one level of a software page-table walk
	// performed by the kernel (not the MMU).
	CostPTWalkLevel = 18
	// CostInvlpg prices a single-address TLB invalidation.
	CostInvlpg = 120
	// CostPageZero prices zeroing a fresh 4 KiB page: 64 cache lines of
	// cold stores, each paying the read-for-ownership miss (~20 cycles
	// per line on the c220g5's DRAM).
	CostPageZero = 1250
	// CostAllocFast prices the page allocator fast path (pop from a
	// doubly-linked free list + page-state update).
	CostAllocFast = 36
	// CostEndpointOp prices the endpoint bookkeeping of one IPC
	// operation: queue unlink, message register copy, descriptor
	// transfer bookkeeping.
	CostEndpointOp = 150
	// CostSchedPick prices the scheduler picking the next runnable
	// thread.
	CostSchedPick = 60
	// CostSchedSteal prices a work-stealing migration: scanning the
	// victim queues, the cross-core cache transfer of the stolen
	// thread's state, and the queue relinking.
	CostSchedSteal = 250
	// CostDirectSwitch prices the IPC fastpath's direct handoff to the
	// partner thread (register windows only; no scheduler, no full
	// context save).
	CostDirectSwitch = 100
	// CostMMIORead and CostMMIOWrite price uncached device register
	// access (doorbells, tail pointers).
	CostMMIORead  = 300
	CostMMIOWrite = 280
	// CostDMADescriptor prices processing one DMA descriptor in a
	// device ring (read/writeback).
	CostDMADescriptor = 55
	// CostPerByteCopy prices one byte of a software packet copy
	// (amortized rep movsb).
	CostPerByteCopy = 1.0 / 16
	// CostInterruptDispatch prices vectoring through the IDT into a
	// handler (unused on polling paths, exercised by interrupt tests).
	CostInterruptDispatch = 600
	// CostBatchDispatch prices decoding and dispatching one submission
	// entry inside a syscall batch: SQE load, opcode table lookup, and
	// the per-op argument unpack. It replaces the per-op
	// entry/dispatch/exit trampoline costs, which a batch pays once.
	CostBatchDispatch = 40
	// CostEndpointBuffer prices appending to or popping from an
	// endpoint's bounded asynchronous message buffer: no partner wakeup,
	// no scheduler work — just the queue store and bookkeeping.
	CostEndpointBuffer = 80
)

// Clock accumulates simulated cycles for one core.
type Clock struct {
	cycles uint64
}

// Cycles returns the cycles elapsed so far.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Charge adds n cycles.
func (c *Clock) Charge(n uint64) { c.cycles += n }

// ChargeBytes adds the copy cost of n bytes.
func (c *Clock) ChargeBytes(n int) {
	c.cycles += uint64(float64(n) * CostPerByteCopy)
}

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles = 0 }

// Seconds converts the elapsed cycles to simulated wall-clock seconds.
func (c *Clock) Seconds() float64 { return float64(c.cycles) / ClockHz }

// PerSecond converts an event count observed over the clock's elapsed
// cycles into an events-per-second rate. It returns 0 when no cycles have
// elapsed.
func (c *Clock) PerSecond(events uint64) float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(events) * ClockHz / float64(c.cycles)
}
