package hw

import (
	"encoding/binary"
	"fmt"
)

// PhysMem is the simulated physical memory of the machine: a contiguous
// range of 4 KiB frames starting at physical address 0. Page tables are
// stored inside PhysMem and walked by the software MMU, and the simulated
// NIC and NVMe devices DMA directly into it, so the kernel's pointer
// arithmetic is exercised for real rather than mocked.
type PhysMem struct {
	data   []byte
	frames int
}

// NewPhysMem creates a simulated physical memory with the given number of
// 4 KiB frames. It panics if frames is not positive.
func NewPhysMem(frames int) *PhysMem {
	if frames <= 0 {
		panic("hw: PhysMem needs at least one frame")
	}
	return &PhysMem{data: make([]byte, frames*PageSize4K), frames: frames}
}

// Frames returns the number of 4 KiB frames.
func (m *PhysMem) Frames() int { return m.frames }

// Size returns the total size in bytes.
func (m *PhysMem) Size() uint64 { return uint64(len(m.data)) }

// Contains reports whether [addr, addr+n) lies inside physical memory.
func (m *PhysMem) Contains(addr PhysAddr, n uint64) bool {
	a := uint64(addr)
	return a < m.Size() && n <= m.Size()-a
}

func (m *PhysMem) check(addr PhysAddr, n uint64) {
	if !m.Contains(addr, n) {
		panic(fmt.Sprintf("hw: physical access [%#x,+%d) out of range %#x", addr, n, m.Size()))
	}
}

// ReadU64 reads a little-endian 64-bit word at addr.
func (m *PhysMem) ReadU64(addr PhysAddr) uint64 {
	m.check(addr, 8)
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// WriteU64 writes a little-endian 64-bit word at addr.
func (m *PhysMem) WriteU64(addr PhysAddr, v uint64) {
	m.check(addr, 8)
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// ReadU32 reads a little-endian 32-bit word at addr.
func (m *PhysMem) ReadU32(addr PhysAddr) uint32 {
	m.check(addr, 4)
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// WriteU32 writes a little-endian 32-bit word at addr.
func (m *PhysMem) WriteU32(addr PhysAddr, v uint32) {
	m.check(addr, 4)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *PhysMem) Read(addr PhysAddr, n uint64) []byte {
	m.check(addr, n)
	out := make([]byte, n)
	copy(out, m.data[addr:uint64(addr)+n])
	return out
}

// ReadInto copies len(dst) bytes starting at addr into dst without
// allocating.
func (m *PhysMem) ReadInto(addr PhysAddr, dst []byte) {
	m.check(addr, uint64(len(dst)))
	copy(dst, m.data[addr:])
}

// Write copies src into physical memory at addr.
func (m *PhysMem) Write(addr PhysAddr, src []byte) {
	m.check(addr, uint64(len(src)))
	copy(m.data[addr:], src)
}

// Slice returns a live view of [addr, addr+n). Devices use it for DMA; the
// kernel proper never holds live views across syscalls.
func (m *PhysMem) Slice(addr PhysAddr, n uint64) []byte {
	m.check(addr, n)
	return m.data[addr : uint64(addr)+n : uint64(addr)+n]
}

// ZeroPage clears the 4 KiB frame at addr, which must be frame-aligned.
func (m *PhysMem) ZeroPage(addr PhysAddr) {
	if !Aligned4K(uint64(addr)) {
		panic(fmt.Sprintf("hw: ZeroPage of unaligned address %#x", addr))
	}
	m.check(addr, PageSize4K)
	b := m.data[addr : uint64(addr)+PageSize4K]
	for i := range b {
		b[i] = 0
	}
}

// FrameAddr returns the physical address of frame index i.
func (m *PhysMem) FrameAddr(i int) PhysAddr {
	if i < 0 || i >= m.frames {
		panic(fmt.Sprintf("hw: frame index %d out of range %d", i, m.frames))
	}
	return PhysAddr(uint64(i) * PageSize4K)
}

// FrameIndex returns the frame index containing addr.
func (m *PhysMem) FrameIndex(addr PhysAddr) int {
	m.check(addr, 1)
	return int(uint64(addr) / PageSize4K)
}
