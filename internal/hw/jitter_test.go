package hw

import "testing"

// Jitter is off by default and when max = 0: waits stay pure functions
// of the frontier, so every pre-existing contention number is intact.
func TestLockSimJitterOffByDefault(t *testing.T) {
	var l LockSim
	l.Enable()
	l.Acquire(100)
	l.Release(600)
	if w := l.Acquire(200); w != 400 {
		t.Fatalf("unjittered wait = %d, want 400", w)
	}
	l.SetJitter(42, 0) // max 0: disarmed again
	l.Release(700)
	if w := l.Acquire(300); w != 400 {
		t.Fatalf("wait with max=0 jitter = %d, want 400", w)
	}
}

// Same seed, same arrival sequence, same waits — and a nonzero max
// actually perturbs at least one hand-off relative to the unjittered run.
func TestLockSimJitterDeterministic(t *testing.T) {
	run := func(seed, max uint64) []uint64 {
		var l LockSim
		l.Enable()
		l.SetJitter(seed, max)
		var waits []uint64
		arrival := uint64(0)
		for i := 0; i < 64; i++ {
			w := l.Acquire(arrival)
			l.Release(arrival + w + 150)
			waits = append(waits, w)
			arrival += 100
		}
		return waits
	}
	a, b := run(7, 256), run(7, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at acquire %d: %d vs %d", i, a[i], b[i])
		}
	}
	base := run(7, 0)
	diff := false
	for i := range a {
		if a[i] != base[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("jitter max=256 never changed a wait over 64 acquisitions")
	}
	other := run(8, 256)
	diff = false
	for i := range a {
		if a[i] != other[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("seeds 7 and 8 produced identical wait sequences")
	}
}
