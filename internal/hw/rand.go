package hw

// Rand is a small deterministic pseudo-random generator (xoshiro256**).
// Every source of randomness in the repository — workload generators, the
// non-interference fuzzer, property tests that need reproducible corpora —
// draws from a seeded Rand so runs reproduce exactly.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("hw: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hw: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bytes fills dst with random bytes.
func (r *Rand) Bytes(dst []byte) {
	var w uint64
	for i := range dst {
		if i%8 == 0 {
			w = r.Uint64()
		}
		dst[i] = byte(w)
		w >>= 8
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
