package hw

// LockSim is the deterministic contention model of the kernel big lock
// (§3). The real kernel serializes every syscall through one mutex; on
// real hardware a core arriving while another holds the lock spins, and
// those spin cycles are what keep a big-lock kernel from scaling. The
// simulation reproduces that cost as a pure function of the per-core
// virtual clocks: the lock keeps a monotone *frontier* — the global
// cycle timestamp at which the last holder released — and an arriving
// core whose clock reads earlier than the frontier waits exactly the
// difference. This is a conservative FIFO (ticket-lock) arbiter: cores
// are served in arrival order of their virtual timestamps, ties resolved
// by the program's (deterministic) call order.
//
// The model is opt-in (Enable). It interprets per-core clock readings as
// timestamps on one global timeline, which is only meaningful for
// workloads that drive cores in lock-step from aligned clocks (the
// multicore scalability series, cross-core tests). Legacy single-core
// benchmarks and tests that issue occasional syscalls from skewed cores
// keep the uncontended model: a disabled LockSim charges nothing, so
// every pre-existing number is bit-identical.
type LockSim struct {
	enabled bool
	freeAt  uint64 // frontier: global cycle at which the lock is next free

	acquisitions uint64
	contended    uint64
	waitCycles   uint64

	// Seeded arrival jitter (SetJitter): each Acquire adds a deterministic
	// pseudo-random delay in [0, jitterMax] to the arrival timestamp,
	// perturbing the FIFO service order without giving up reproducibility.
	jitterMax   uint64
	jitterState uint64

	// Identity (SetIdentity): the lock's class ("big", "endpoint",
	// "container", ...) and instance label. A kernel with one frontier
	// has one class; a sharded kernel registers many instances of a few
	// classes into one contention registry, which attributes waits and
	// checks acquisition ordering per class.
	class    string
	instance string

	// obs, when non-nil, receives every enabled acquisition and release
	// (SetObserver). The observer reads state and charges nothing, so
	// attaching one never changes a wait.
	obs LockObserver
}

// LockObserver receives a registered lock's enabled acquisitions and
// releases — the hook a contention registry (internal/obs/contend)
// installs so every frontier reports into it. Implementations must not
// charge cycles.
type LockObserver interface {
	// LockAcquire fires after the wait is computed: arrival is the
	// (jittered) arrival timestamp, wait the cycles the core will spin.
	LockAcquire(l *LockSim, arrival, wait uint64)
	// LockRelease fires after the frontier update with the new frontier.
	LockRelease(l *LockSim, frontier uint64)
}

// SetIdentity names the lock: a class shared with every frontier of the
// same kind plus an instance label. Registries key ordering rules by
// class and reports by (class, instance).
func (l *LockSim) SetIdentity(class, instance string) {
	if l != nil {
		l.class, l.instance = class, instance
	}
}

// Class returns the lock's class ("" until SetIdentity).
func (l *LockSim) Class() string {
	if l == nil {
		return ""
	}
	return l.class
}

// Instance returns the lock's instance label ("" until SetIdentity).
func (l *LockSim) Instance() string {
	if l == nil {
		return ""
	}
	return l.instance
}

// SetObserver installs (or, with nil, removes) the acquisition observer.
func (l *LockSim) SetObserver(o LockObserver) {
	if l != nil {
		l.obs = o
	}
}

// Frontier returns the current frontier — the global cycle at which the
// lock is next free. It is monotone: Release never moves it backwards.
func (l *LockSim) Frontier() uint64 {
	if l == nil {
		return 0
	}
	return l.freeAt
}

// Enable turns the contention model on. Off (the zero value), Acquire
// and Release are no-ops and the lock costs only CostBigLock.
func (l *LockSim) Enable() {
	if l != nil {
		l.enabled = true
	}
}

// Enabled reports whether the contention model is active.
func (l *LockSim) Enabled() bool { return l != nil && l.enabled }

// SetJitter arms seeded arrival jitter: every subsequent Acquire shifts
// its arrival timestamp forward by a splitmix64-derived delay in
// [0, max]. Schedule-exploration harnesses use this to reorder lock
// hand-offs per seed while staying fully deterministic; max = 0 turns
// the jitter back off.
func (l *LockSim) SetJitter(seed, max uint64) {
	if l == nil {
		return
	}
	l.jitterState = seed
	l.jitterMax = max
}

// nextJitter steps the splitmix64 stream and folds it into [0, jitterMax].
func (l *LockSim) nextJitter() uint64 {
	l.jitterState += 0x9e3779b97f4a7c15
	z := l.jitterState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z % (l.jitterMax + 1)
}

// Acquire records a lock acquisition by a core whose clock reads arrival
// and returns the wait cycles the core must charge before it holds the
// lock: max(0, frontier - arrival). Disabled, it returns 0.
func (l *LockSim) Acquire(arrival uint64) uint64 {
	if l == nil || !l.enabled {
		return 0
	}
	if l.jitterMax > 0 {
		arrival += l.nextJitter()
	}
	l.acquisitions++
	var wait uint64
	if l.freeAt > arrival {
		wait = l.freeAt - arrival
		l.contended++
		l.waitCycles += wait
	}
	if l.obs != nil {
		l.obs.LockAcquire(l, arrival, wait)
	}
	return wait
}

// Release advances the frontier to heldUntil — the global cycle at which
// the holder let go (its arrival + wait + the cycles it spent under the
// lock). The frontier is monotone: a release in the past (possible when
// a core's clock lags the frontier's previous holder) leaves it alone.
func (l *LockSim) Release(heldUntil uint64) {
	if l == nil || !l.enabled {
		return
	}
	if heldUntil > l.freeAt {
		l.freeAt = heldUntil
	}
	if l.obs != nil {
		l.obs.LockRelease(l, l.freeAt)
	}
}

// Stats reports (acquisitions, contended acquisitions, total wait
// cycles) since Enable.
func (l *LockSim) Stats() (acquisitions, contended, waitCycles uint64) {
	if l == nil {
		return 0, 0, 0
	}
	return l.acquisitions, l.contended, l.waitCycles
}
