package hw

// LockSim is the deterministic contention model of the kernel big lock
// (§3). The real kernel serializes every syscall through one mutex; on
// real hardware a core arriving while another holds the lock spins, and
// those spin cycles are what keep a big-lock kernel from scaling. The
// simulation reproduces that cost as a pure function of the per-core
// virtual clocks: the lock keeps a monotone *frontier* — the global
// cycle timestamp at which the last holder released — and an arriving
// core whose clock reads earlier than the frontier waits exactly the
// difference. This is a conservative FIFO (ticket-lock) arbiter: cores
// are served in arrival order of their virtual timestamps, ties resolved
// by the program's (deterministic) call order.
//
// The model is opt-in (Enable). It interprets per-core clock readings as
// timestamps on one global timeline, which is only meaningful for
// workloads that drive cores in lock-step from aligned clocks (the
// multicore scalability series, cross-core tests). Legacy single-core
// benchmarks and tests that issue occasional syscalls from skewed cores
// keep the uncontended model: a disabled LockSim charges nothing, so
// every pre-existing number is bit-identical.
type LockSim struct {
	enabled bool
	freeAt  uint64 // frontier: global cycle at which the lock is next free

	acquisitions uint64
	contended    uint64
	waitCycles   uint64

	// Seeded arrival jitter (SetJitter): each Acquire adds a deterministic
	// pseudo-random delay in [0, jitterMax] to the arrival timestamp,
	// perturbing the FIFO service order without giving up reproducibility.
	jitterMax   uint64
	jitterState uint64
}

// Enable turns the contention model on. Off (the zero value), Acquire
// and Release are no-ops and the lock costs only CostBigLock.
func (l *LockSim) Enable() {
	if l != nil {
		l.enabled = true
	}
}

// Enabled reports whether the contention model is active.
func (l *LockSim) Enabled() bool { return l != nil && l.enabled }

// SetJitter arms seeded arrival jitter: every subsequent Acquire shifts
// its arrival timestamp forward by a splitmix64-derived delay in
// [0, max]. Schedule-exploration harnesses use this to reorder lock
// hand-offs per seed while staying fully deterministic; max = 0 turns
// the jitter back off.
func (l *LockSim) SetJitter(seed, max uint64) {
	if l == nil {
		return
	}
	l.jitterState = seed
	l.jitterMax = max
}

// nextJitter steps the splitmix64 stream and folds it into [0, jitterMax].
func (l *LockSim) nextJitter() uint64 {
	l.jitterState += 0x9e3779b97f4a7c15
	z := l.jitterState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z % (l.jitterMax + 1)
}

// Acquire records a lock acquisition by a core whose clock reads arrival
// and returns the wait cycles the core must charge before it holds the
// lock: max(0, frontier - arrival). Disabled, it returns 0.
func (l *LockSim) Acquire(arrival uint64) uint64 {
	if l == nil || !l.enabled {
		return 0
	}
	if l.jitterMax > 0 {
		arrival += l.nextJitter()
	}
	l.acquisitions++
	if l.freeAt <= arrival {
		return 0
	}
	wait := l.freeAt - arrival
	l.contended++
	l.waitCycles += wait
	return wait
}

// Release advances the frontier to heldUntil — the global cycle at which
// the holder let go (its arrival + wait + the cycles it spent under the
// lock). The frontier is monotone: a release in the past (possible when
// a core's clock lags the frontier's previous holder) leaves it alone.
func (l *LockSim) Release(heldUntil uint64) {
	if l == nil || !l.enabled {
		return
	}
	if heldUntil > l.freeAt {
		l.freeAt = heldUntil
	}
}

// Stats reports (acquisitions, contended acquisitions, total wait
// cycles) since Enable.
func (l *LockSim) Stats() (acquisitions, contended, waitCycles uint64) {
	if l == nil {
		return 0, 0, 0
	}
	return l.acquisitions, l.contended, l.waitCycles
}
