// Package hw simulates the hardware substrate Atmosphere runs on: physical
// memory, a software MMU that walks page tables stored in that memory, a
// TLB, simulated CPU cores, and a deterministic cycle cost model calibrated
// to the paper's CloudLab c220g5 testbed (2× Xeon Silver 4114, 2.20 GHz).
//
// Everything in this package is deterministic: time is an explicit cycle
// counter and randomness flows from a seeded generator, so every benchmark
// in the repository reproduces bit-for-bit.
package hw

// PhysAddr is a physical memory address in the simulated machine.
type PhysAddr uint64

// VirtAddr is a virtual address translated by the simulated MMU.
type VirtAddr uint64

// Page size constants. Atmosphere allocates kernel objects at 4 KiB
// granularity and supports 2 MiB and 1 GiB superpages (§4.2).
const (
	PageSize4K = 1 << 12
	PageSize2M = 1 << 21
	PageSize1G = 1 << 30

	// EntriesPerTable is the number of entries in one page-table node on
	// x86-64 (512 8-byte entries per 4 KiB table).
	EntriesPerTable = 512

	// PtrSize is the size of a page-table entry in bytes.
	PtrSize = 8
)

// Pages4KPer2M and Pages4KPer1G give superpage composition counts.
const (
	Pages4KPer2M = PageSize2M / PageSize4K // 512
	Pages4KPer1G = PageSize1G / PageSize4K // 262144
	Pages2MPer1G = PageSize1G / PageSize2M // 512
)

// PageSize enumerates the supported mapping granularities.
type PageSize int

// Supported page sizes.
const (
	Size4K PageSize = iota
	Size2M
	Size1G
)

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 {
	switch s {
	case Size4K:
		return PageSize4K
	case Size2M:
		return PageSize2M
	case Size1G:
		return PageSize1G
	}
	return 0
}

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Size4K:
		return "4KiB"
	case Size2M:
		return "2MiB"
	case Size1G:
		return "1GiB"
	}
	return "invalid"
}

// Page-table entry bits, x86-64 layout.
const (
	PtePresent  uint64 = 1 << 0
	PteWritable uint64 = 1 << 1
	PteUser     uint64 = 1 << 2
	PteHuge     uint64 = 1 << 7 // PS bit: terminal 2M/1G mapping
	PteNX       uint64 = 1 << 63

	// PteAddrMask extracts the physical frame address from an entry.
	PteAddrMask uint64 = 0x000f_ffff_ffff_f000
)

// Virtual address index extraction for the 4-level radix walk.
const (
	l4Shift = 39
	l3Shift = 30
	l2Shift = 21
	l1Shift = 12
	idxMask = 0x1ff
)

// L4Index returns the PML4 index of va.
func L4Index(va VirtAddr) int { return int(uint64(va)>>l4Shift) & idxMask }

// L3Index returns the PDPT index of va.
func L3Index(va VirtAddr) int { return int(uint64(va)>>l3Shift) & idxMask }

// L2Index returns the PD index of va.
func L2Index(va VirtAddr) int { return int(uint64(va)>>l2Shift) & idxMask }

// L1Index returns the PT index of va.
func L1Index(va VirtAddr) int { return int(uint64(va)>>l1Shift) & idxMask }

// VAFromIndices reconstructs a canonical virtual address from radix indices.
func VAFromIndices(l4, l3, l2, l1 int) VirtAddr {
	va := uint64(l4)<<l4Shift | uint64(l3)<<l3Shift | uint64(l2)<<l2Shift | uint64(l1)<<l1Shift
	// Sign-extend bit 47 to form a canonical address.
	if va&(1<<47) != 0 {
		va |= 0xffff_0000_0000_0000
	}
	return VirtAddr(va)
}

// Aligned4K reports whether a is 4 KiB aligned.
func Aligned4K(a uint64) bool { return a&(PageSize4K-1) == 0 }

// Aligned2M reports whether a is 2 MiB aligned.
func Aligned2M(a uint64) bool { return a&(PageSize2M-1) == 0 }

// Aligned1G reports whether a is 1 GiB aligned.
func Aligned1G(a uint64) bool { return a&(PageSize1G-1) == 0 }
