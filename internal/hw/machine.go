package hw

import "fmt"

// Machine bundles the simulated hardware of one node: physical memory, an
// MMU, per-core clocks and TLBs. Configurations mirror the CloudLab nodes
// used in the paper's evaluation (§6).
type Machine struct {
	Mem   *PhysMem
	MMU   *MMU
	cores []*Core
}

// Core is one simulated CPU core with its own clock and TLB.
type Core struct {
	ID    int
	Clock Clock
	TLB   *TLB
}

// Config describes a simulated machine.
type Config struct {
	// Frames is the number of 4 KiB physical frames.
	Frames int
	// Cores is the number of CPU cores.
	Cores int
	// TLBSlots is the per-core TLB capacity.
	TLBSlots int
}

// DefaultConfig is a laptop-scale machine: 64 MiB of simulated RAM and
// 4 cores, large enough for every experiment in the repository.
func DefaultConfig() Config {
	return Config{Frames: 16384, Cores: 4, TLBSlots: 1536}
}

// C220G5Config mirrors the CloudLab c220g5 node shape used for the
// microbenchmarks (scaled memory; core count preserved per-socket).
func C220G5Config() Config {
	return Config{Frames: 32768, Cores: 10, TLBSlots: 1536}
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.Frames <= 0 || cfg.Cores <= 0 {
		panic(fmt.Sprintf("hw: invalid machine config %+v", cfg))
	}
	m := &Machine{Mem: NewPhysMem(cfg.Frames)}
	m.MMU = NewMMU(m.Mem)
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &Core{ID: i, TLB: NewTLB(cfg.TLBSlots)})
	}
	return m
}

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core {
	if i < 0 || i >= len(m.cores) {
		panic(fmt.Sprintf("hw: core %d out of range %d", i, len(m.cores)))
	}
	return m.cores[i]
}

// TotalCycles sums cycles across all cores (useful for aggregate budgets).
func (m *Machine) TotalCycles() uint64 {
	var sum uint64
	for _, c := range m.cores {
		sum += c.Clock.Cycles()
	}
	return sum
}

// MaxCycles returns the largest per-core cycle count — simulated wall-clock
// time when cores run concurrently.
func (m *Machine) MaxCycles() uint64 {
	var mx uint64
	for _, c := range m.cores {
		if c.Clock.Cycles() > mx {
			mx = c.Clock.Cycles()
		}
	}
	return mx
}
