package hw

import "testing"

// Disabled, the arbiter charges nothing — the legacy uncontended model.
func TestLockSimDisabledIsFree(t *testing.T) {
	var l LockSim
	if w := l.Acquire(0); w != 0 {
		t.Fatalf("disabled Acquire waited %d", w)
	}
	l.Release(1000)
	if w := l.Acquire(10); w != 0 {
		t.Fatalf("disabled Acquire after Release waited %d", w)
	}
	if acq, _, _ := l.Stats(); acq != 0 {
		t.Fatalf("disabled lock counted %d acquisitions", acq)
	}
	var nilLock *LockSim
	if w := nilLock.Acquire(0); w != 0 {
		t.Fatalf("nil Acquire waited %d", w)
	}
	nilLock.Release(5) // must not panic
}

// Enabled, waits are exactly the frontier gap and the frontier is
// monotone.
func TestLockSimFrontier(t *testing.T) {
	var l LockSim
	l.Enable()
	if w := l.Acquire(100); w != 0 {
		t.Fatalf("first acquire waited %d", w)
	}
	l.Release(600) // held [100, 600)
	if w := l.Acquire(200); w != 400 {
		t.Fatalf("contended acquire waited %d, want 400", w)
	}
	l.Release(700)
	// A release in the past must not move the frontier backwards.
	l.Release(50)
	if w := l.Acquire(650); w != 50 {
		t.Fatalf("acquire after stale release waited %d, want 50", w)
	}
	l.Release(800)
	// An arrival after the frontier pays nothing.
	if w := l.Acquire(900); w != 0 {
		t.Fatalf("late acquire waited %d", w)
	}
	acq, contended, wait := l.Stats()
	if acq != 4 || contended != 2 || wait != 450 {
		t.Fatalf("stats = (%d, %d, %d), want (4, 2, 450)", acq, contended, wait)
	}
}

// Under seeded arrival jitter the counters must stay coherent at every
// step: the contended count and the wait total never disagree (a wait
// was charged iff an acquisition was contended, and every contended
// acquisition waited at least one cycle), per-Acquire returns sum to
// the Stats total, and the frontier stays monotone no matter how the
// jitter reorders arrivals.
func TestLockSimStatsConsistentUnderJitter(t *testing.T) {
	for _, tc := range []struct{ seed, max uint64 }{
		{1, 0}, {1, 64}, {7, 500}, {0xdead, 5000},
	} {
		var l LockSim
		l.Enable()
		l.SetJitter(tc.seed, tc.max)
		// A deterministic arrival pattern dense enough to contend: walk
		// the clock forward slowly while holding the lock for longer
		// stretches, so jittered arrivals land on both sides of the
		// frontier.
		rng := tc.seed*2654435761 + 1
		var arrival, sumWaits, prevContended, lastFrontier uint64
		for i := 0; i < 400; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			arrival += rng % 97
			w := l.Acquire(arrival)
			sumWaits += w
			acq, c, wc := l.Stats()
			if acq != uint64(i+1) {
				t.Fatalf("seed %d max %d step %d: acquisitions = %d", tc.seed, tc.max, i, acq)
			}
			if wc != sumWaits {
				t.Fatalf("seed %d max %d step %d: Stats wait %d != summed Acquire returns %d", tc.seed, tc.max, i, wc, sumWaits)
			}
			if (w > 0) != (c == prevContended+1) {
				t.Fatalf("seed %d max %d step %d: wait %d but contended went %d -> %d", tc.seed, tc.max, i, w, prevContended, c)
			}
			if (c == 0) != (wc == 0) {
				t.Fatalf("seed %d max %d step %d: contended %d vs wait cycles %d disagree", tc.seed, tc.max, i, c, wc)
			}
			if wc < c {
				t.Fatalf("seed %d max %d step %d: wait cycles %d < contended %d — some contended acquisition waited 0", tc.seed, tc.max, i, wc, c)
			}
			prevContended = c
			l.Release(arrival + w + 40 + rng%300)
			if f := l.Frontier(); f < lastFrontier {
				t.Fatalf("seed %d max %d step %d: frontier moved backwards %d -> %d", tc.seed, tc.max, i, lastFrontier, f)
			} else {
				lastFrontier = f
			}
		}
		if _, c, _ := l.Stats(); c == 0 {
			t.Fatalf("seed %d max %d: pattern never contended — the invariants were vacuous", tc.seed, tc.max)
		}
	}
}
