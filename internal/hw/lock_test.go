package hw

import "testing"

// Disabled, the arbiter charges nothing — the legacy uncontended model.
func TestLockSimDisabledIsFree(t *testing.T) {
	var l LockSim
	if w := l.Acquire(0); w != 0 {
		t.Fatalf("disabled Acquire waited %d", w)
	}
	l.Release(1000)
	if w := l.Acquire(10); w != 0 {
		t.Fatalf("disabled Acquire after Release waited %d", w)
	}
	if acq, _, _ := l.Stats(); acq != 0 {
		t.Fatalf("disabled lock counted %d acquisitions", acq)
	}
	var nilLock *LockSim
	if w := nilLock.Acquire(0); w != 0 {
		t.Fatalf("nil Acquire waited %d", w)
	}
	nilLock.Release(5) // must not panic
}

// Enabled, waits are exactly the frontier gap and the frontier is
// monotone.
func TestLockSimFrontier(t *testing.T) {
	var l LockSim
	l.Enable()
	if w := l.Acquire(100); w != 0 {
		t.Fatalf("first acquire waited %d", w)
	}
	l.Release(600) // held [100, 600)
	if w := l.Acquire(200); w != 400 {
		t.Fatalf("contended acquire waited %d, want 400", w)
	}
	l.Release(700)
	// A release in the past must not move the frontier backwards.
	l.Release(50)
	if w := l.Acquire(650); w != 50 {
		t.Fatalf("acquire after stale release waited %d, want 50", w)
	}
	l.Release(800)
	// An arrival after the frontier pays nothing.
	if w := l.Acquire(900); w != 0 {
		t.Fatalf("late acquire waited %d", w)
	}
	acq, contended, wait := l.Stats()
	if acq != 4 || contended != 2 || wait != 450 {
		t.Fatalf("stats = (%d, %d, %d), want (4, 2, 450)", acq, contended, wait)
	}
}
