package hw

// TLB is a small direct-mapped translation lookaside buffer. The kernel
// invalidates entries on unmap (invlpg) and the cycle model charges the
// invalidation; the TLB itself exists so tests can observe that the kernel
// issues the architecturally required invalidations (§4.2, consistency of
// page table updates).
type TLB struct {
	entries []tlbEntry
	hits    uint64
	misses  uint64
	flushes uint64
}

type tlbEntry struct {
	valid bool
	cr3   PhysAddr
	vpage VirtAddr
	tr    Translation
}

// NewTLB returns a TLB with the given number of slots (rounded up to 1).
func NewTLB(slots int) *TLB {
	if slots < 1 {
		slots = 1
	}
	return &TLB{entries: make([]tlbEntry, slots)}
}

func (t *TLB) slot(cr3 PhysAddr, vpage VirtAddr) *tlbEntry {
	h := (uint64(vpage)>>12 ^ uint64(cr3)>>12) % uint64(len(t.entries))
	return &t.entries[h]
}

// Lookup returns a cached translation for the page containing va.
func (t *TLB) Lookup(cr3 PhysAddr, va VirtAddr) (Translation, bool) {
	vpage := va &^ (PageSize4K - 1)
	e := t.slot(cr3, vpage)
	if e.valid && e.cr3 == cr3 && e.vpage == vpage {
		t.hits++
		return e.tr, true
	}
	t.misses++
	return Translation{}, false
}

// Insert caches a translation for the 4 KiB page containing va.
func (t *TLB) Insert(cr3 PhysAddr, va VirtAddr, tr Translation) {
	vpage := va &^ (PageSize4K - 1)
	*t.slot(cr3, vpage) = tlbEntry{valid: true, cr3: cr3, vpage: vpage, tr: tr}
}

// Invalidate drops any entry for the page containing va (invlpg).
func (t *TLB) Invalidate(cr3 PhysAddr, va VirtAddr) {
	vpage := va &^ (PageSize4K - 1)
	e := t.slot(cr3, vpage)
	if e.valid && e.cr3 == cr3 && e.vpage == vpage {
		e.valid = false
	}
}

// Flush drops everything (CR3 reload without PCID).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.flushes++
}

// Stats returns hit, miss, and flush counts.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}
