package hw

// MMU performs 4-level page-table walks against page tables stored in
// simulated physical memory, exactly as the hardware memory management
// unit would. The refinement theorem in §2 states that for each entry in
// the kernel's abstract address-space map, a walk by this MMU resolves to
// the same physical address and permissions; internal/verify checks that
// property against this walker.
type MMU struct {
	mem *PhysMem
}

// NewMMU returns an MMU that walks tables in mem.
func NewMMU(mem *PhysMem) *MMU { return &MMU{mem: mem} }

// Translation is the result of a successful page walk.
type Translation struct {
	Phys     PhysAddr
	Size     PageSize
	Writable bool
	User     bool
	NX       bool
}

// Walk resolves va through the table rooted at cr3. It returns the
// translation and true, or a zero Translation and false if the walk hits a
// non-present entry. Walk has no side effects and charges no cycles — the
// kernel's own software walks charge CostPTWalkLevel through their clock.
func (u *MMU) Walk(cr3 PhysAddr, va VirtAddr) (Translation, bool) {
	l4e := u.mem.ReadU64(cr3 + PhysAddr(L4Index(va)*PtrSize))
	if l4e&PtePresent == 0 {
		return Translation{}, false
	}
	l3 := PhysAddr(l4e & PteAddrMask)
	l3e := u.mem.ReadU64(l3 + PhysAddr(L3Index(va)*PtrSize))
	if l3e&PtePresent == 0 {
		return Translation{}, false
	}
	if l3e&PteHuge != 0 {
		base := l3e & PteAddrMask &^ (PageSize1G - 1)
		return makeTranslation(base+uint64(va)&(PageSize1G-1), Size1G, l4e, l3e), true
	}
	l2 := PhysAddr(l3e & PteAddrMask)
	l2e := u.mem.ReadU64(l2 + PhysAddr(L2Index(va)*PtrSize))
	if l2e&PtePresent == 0 {
		return Translation{}, false
	}
	if l2e&PteHuge != 0 {
		base := l2e & PteAddrMask &^ (PageSize2M - 1)
		return makeTranslation(base+uint64(va)&(PageSize2M-1), Size2M, l4e, l3e, l2e), true
	}
	l1 := PhysAddr(l2e & PteAddrMask)
	l1e := u.mem.ReadU64(l1 + PhysAddr(L1Index(va)*PtrSize))
	if l1e&PtePresent == 0 {
		return Translation{}, false
	}
	base := l1e & PteAddrMask
	return makeTranslation(base+uint64(va)&(PageSize4K-1), Size4K, l4e, l3e, l2e, l1e), true
}

// makeTranslation folds permissions along the walk: a mapping is writable
// or user-accessible only if every level grants it, and no-execute if any
// level sets NX — the AND/OR semantics of the x86-64 MMU.
func makeTranslation(phys uint64, size PageSize, entries ...uint64) Translation {
	t := Translation{Phys: PhysAddr(phys), Size: size, Writable: true, User: true}
	for _, e := range entries {
		if e&PteWritable == 0 {
			t.Writable = false
		}
		if e&PteUser == 0 {
			t.User = false
		}
		if e&PteNX != 0 {
			t.NX = true
		}
	}
	return t
}

// Load reads n bytes at virtual address va through the table at cr3,
// failing if any page of the range is unmapped. Crossing page boundaries
// is supported.
func (u *MMU) Load(cr3 PhysAddr, va VirtAddr, n uint64) ([]byte, bool) {
	out := make([]byte, 0, n)
	for n > 0 {
		t, ok := u.Walk(cr3, va)
		if !ok {
			return nil, false
		}
		sz := t.Size.Bytes()
		off := uint64(t.Phys) & (sz - 1)
		chunk := sz - off
		if chunk > n {
			chunk = n
		}
		out = append(out, u.mem.Read(t.Phys, chunk)...)
		va += VirtAddr(chunk)
		n -= chunk
	}
	return out, true
}

// Store writes src at virtual address va through the table at cr3,
// requiring every page of the range to be mapped writable.
func (u *MMU) Store(cr3 PhysAddr, va VirtAddr, src []byte) bool {
	for len(src) > 0 {
		t, ok := u.Walk(cr3, va)
		if !ok || !t.Writable {
			return false
		}
		sz := t.Size.Bytes()
		off := uint64(t.Phys) & (sz - 1)
		chunk := sz - off
		if chunk > uint64(len(src)) {
			chunk = uint64(len(src))
		}
		u.mem.Write(t.Phys, src[:chunk])
		va += VirtAddr(chunk)
		src = src[chunk:]
	}
	return true
}
