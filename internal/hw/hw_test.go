package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhysMemReadWriteU64(t *testing.T) {
	m := NewPhysMem(4)
	m.WriteU64(0x1000, 0xdeadbeefcafebabe)
	if got := m.ReadU64(0x1000); got != 0xdeadbeefcafebabe {
		t.Fatalf("ReadU64 = %#x", got)
	}
	if got := m.ReadU64(0x1008); got != 0 {
		t.Fatalf("adjacent word clobbered: %#x", got)
	}
}

func TestPhysMemBounds(t *testing.T) {
	m := NewPhysMem(1)
	if !m.Contains(0, PageSize4K) {
		t.Fatal("first frame should be contained")
	}
	if m.Contains(PageSize4K-4, 8) {
		t.Fatal("straddling the end should not be contained")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read should panic")
		}
	}()
	m.ReadU64(PageSize4K - 4)
}

func TestPhysMemZeroPage(t *testing.T) {
	m := NewPhysMem(2)
	m.Write(PageSize4K, []byte{1, 2, 3, 4})
	m.ZeroPage(PageSize4K)
	for i, b := range m.Read(PageSize4K, 8) {
		if b != 0 {
			t.Fatalf("byte %d not zeroed: %d", i, b)
		}
	}
}

func TestPhysMemZeroPageUnaligned(t *testing.T) {
	m := NewPhysMem(2)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned ZeroPage should panic")
		}
	}()
	m.ZeroPage(12)
}

func TestPhysMemSliceAliases(t *testing.T) {
	m := NewPhysMem(1)
	s := m.Slice(16, 8)
	s[0] = 0xab
	if m.Read(16, 1)[0] != 0xab {
		t.Fatal("Slice should alias physical memory")
	}
}

func TestVAIndicesRoundTrip(t *testing.T) {
	f := func(l4, l3, l2, l1 uint16) bool {
		a, b, c, d := int(l4%512), int(l3%512), int(l2%512), int(l1%512)
		va := VAFromIndices(a, b, c, d)
		return L4Index(va) == a && L3Index(va) == b && L2Index(va) == c && L1Index(va) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVACanonical(t *testing.T) {
	va := VAFromIndices(511, 0, 0, 0)
	if uint64(va)>>48 != 0xffff {
		t.Fatalf("high-half address not sign extended: %#x", va)
	}
	va = VAFromIndices(255, 511, 511, 511)
	if uint64(va)>>48 != 0 {
		t.Fatalf("low-half address wrongly extended: %#x", va)
	}
}

func TestPageSizeBytes(t *testing.T) {
	cases := []struct {
		s    PageSize
		want uint64
	}{{Size4K, 4096}, {Size2M, 2 << 20}, {Size1G, 1 << 30}}
	for _, c := range cases {
		if c.s.Bytes() != c.want {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, c.s.Bytes(), c.want)
		}
	}
	if PageSize(99).Bytes() != 0 || PageSize(99).String() != "invalid" {
		t.Error("invalid page size should report 0 / invalid")
	}
}

// buildTestTable hand-writes a tiny page table hierarchy into physical
// memory: frame1=PML4, frame2=PDPT, frame3=PD, frame4=PT.
func buildTestTable(m *PhysMem) PhysAddr {
	cr3 := PhysAddr(1 * PageSize4K)
	pdpt := PhysAddr(2 * PageSize4K)
	pd := PhysAddr(3 * PageSize4K)
	pt := PhysAddr(4 * PageSize4K)
	flags := PtePresent | PteWritable | PteUser
	m.WriteU64(cr3+0*8, uint64(pdpt)|flags)
	m.WriteU64(pdpt+0*8, uint64(pd)|flags)
	m.WriteU64(pd+0*8, uint64(pt)|flags)
	m.WriteU64(pt+5*8, uint64(6*PageSize4K)|flags) // va 0x5000 -> frame 6
	// A read-only 4K page at index 7.
	m.WriteU64(pt+7*8, uint64(7*PageSize4K)|PtePresent|PteUser)
	// A 2 MiB huge page at PD index 1 -> phys 8 MiB.
	m.WriteU64(pd+1*8, uint64(8<<20)|flags|PteHuge)
	// A 1 GiB huge page at PDPT index 1 -> phys 1 GiB... keep within
	// memory by not touching its data.
	m.WriteU64(pdpt+1*8, uint64(1<<30)|flags|PteHuge)
	return cr3
}

func TestMMUWalk4K(t *testing.T) {
	m := NewPhysMem(16)
	cr3 := buildTestTable(m)
	mmu := NewMMU(m)
	tr, ok := mmu.Walk(cr3, 0x5000)
	if !ok {
		t.Fatal("walk failed")
	}
	if tr.Phys != 6*PageSize4K || tr.Size != Size4K || !tr.Writable || !tr.User {
		t.Fatalf("unexpected translation %+v", tr)
	}
	// Offset within page preserved.
	tr, _ = mmu.Walk(cr3, 0x5123)
	if tr.Phys != 6*PageSize4K+0x123 {
		t.Fatalf("offset lost: %#x", tr.Phys)
	}
}

func TestMMUWalkPermissionFold(t *testing.T) {
	m := NewPhysMem(16)
	cr3 := buildTestTable(m)
	mmu := NewMMU(m)
	tr, ok := mmu.Walk(cr3, 0x7000)
	if !ok {
		t.Fatal("walk failed")
	}
	if tr.Writable {
		t.Fatal("read-only leaf must fold to non-writable")
	}
}

func TestMMUWalkHuge(t *testing.T) {
	m := NewPhysMem(16)
	cr3 := buildTestTable(m)
	mmu := NewMMU(m)
	va := VAFromIndices(0, 0, 1, 0) + 0x1234
	tr, ok := mmu.Walk(cr3, va)
	if !ok || tr.Size != Size2M {
		t.Fatalf("2M walk failed: %+v ok=%v", tr, ok)
	}
	if tr.Phys != PhysAddr(8<<20)+0x1234 {
		t.Fatalf("2M phys wrong: %#x", tr.Phys)
	}
	va = VAFromIndices(0, 1, 3, 4) + 7
	tr, ok = mmu.Walk(cr3, va)
	if !ok || tr.Size != Size1G {
		t.Fatalf("1G walk failed: %+v ok=%v", tr, ok)
	}
	wantOff := uint64(3)<<21 | uint64(4)<<12 | 7
	if tr.Phys != PhysAddr(uint64(1<<30)+wantOff) {
		t.Fatalf("1G phys wrong: %#x", tr.Phys)
	}
}

func TestMMUWalkNotPresent(t *testing.T) {
	m := NewPhysMem(16)
	cr3 := buildTestTable(m)
	mmu := NewMMU(m)
	if _, ok := mmu.Walk(cr3, 0x6000); ok {
		t.Fatal("unmapped page should not resolve")
	}
	if _, ok := mmu.Walk(cr3, VAFromIndices(3, 0, 0, 0)); ok {
		t.Fatal("missing PML4 entry should not resolve")
	}
}

func TestMMULoadStore(t *testing.T) {
	m := NewPhysMem(16)
	cr3 := buildTestTable(m)
	mmu := NewMMU(m)
	msg := []byte("hello atmosphere")
	if !mmu.Store(cr3, 0x5100, msg) {
		t.Fatal("store failed")
	}
	got, ok := mmu.Load(cr3, 0x5100, uint64(len(msg)))
	if !ok || string(got) != string(msg) {
		t.Fatalf("load = %q ok=%v", got, ok)
	}
	if mmu.Store(cr3, 0x7000, []byte{1}) {
		t.Fatal("store to read-only page should fail")
	}
	if _, ok := mmu.Load(cr3, 0x5ff0, 64); ok {
		t.Fatal("load crossing into unmapped page should fail")
	}
}

func TestTLBInsertLookupInvalidate(t *testing.T) {
	tlb := NewTLB(64)
	tr := Translation{Phys: 0x9000, Size: Size4K, Writable: true}
	if _, ok := tlb.Lookup(0x1000, 0x5000); ok {
		t.Fatal("empty TLB should miss")
	}
	tlb.Insert(0x1000, 0x5abc, tr)
	got, ok := tlb.Lookup(0x1000, 0x5010)
	if !ok || got.Phys != 0x9000 {
		t.Fatalf("lookup after insert = %+v ok=%v", got, ok)
	}
	if _, ok := tlb.Lookup(0x2000, 0x5010); ok {
		t.Fatal("different cr3 should miss")
	}
	tlb.Invalidate(0x1000, 0x5000)
	if _, ok := tlb.Lookup(0x1000, 0x5000); ok {
		t.Fatal("invalidated entry should miss")
	}
	hits, misses, _ := tlb.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(0, 0, Translation{Phys: 1})
	tlb.Flush()
	if _, ok := tlb.Lookup(0, 0); ok {
		t.Fatal("flush should drop all entries")
	}
	if _, _, flushes := tlb.Stats(); flushes != 1 {
		t.Fatal("flush count not recorded")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Charge(ClockHz) // one second
	if s := c.Seconds(); s != 1.0 {
		t.Fatalf("Seconds = %v", s)
	}
	if r := c.PerSecond(2_200_000); r != 2_200_000 {
		t.Fatalf("PerSecond = %v", r)
	}
	c.Reset()
	if c.Cycles() != 0 || c.PerSecond(5) != 0 {
		t.Fatal("reset clock should be zero")
	}
	c.ChargeBytes(1600)
	if c.Cycles() != 100 {
		t.Fatalf("ChargeBytes(1600) = %d cycles, want 100", c.Cycles())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds should diverge immediately (overwhelmingly likely)")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) did not cover range in 1000 draws: %d values", len(seen))
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestMachine(t *testing.T) {
	m := NewMachine(DefaultConfig())
	if m.NumCores() != 4 {
		t.Fatalf("cores = %d", m.NumCores())
	}
	m.Core(0).Clock.Charge(100)
	m.Core(1).Clock.Charge(250)
	if m.TotalCycles() != 350 || m.MaxCycles() != 250 {
		t.Fatalf("total=%d max=%d", m.TotalCycles(), m.MaxCycles())
	}
}

func TestFrameAddrIndexRoundTrip(t *testing.T) {
	m := NewPhysMem(32)
	for i := 0; i < 32; i++ {
		if m.FrameIndex(m.FrameAddr(i)) != i {
			t.Fatalf("frame round trip failed at %d", i)
		}
	}
}

func TestMachineConfigs(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), C220G5Config()} {
		m := NewMachine(cfg)
		if m.NumCores() != cfg.Cores || m.Mem.Frames() != cfg.Frames {
			t.Fatalf("machine does not honor config %+v", cfg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	NewMachine(Config{Frames: 0, Cores: 1})
}

// TestClockPerSecondZeroCycles is the dedicated regression test for the
// zero-cycle division guard: a rate query on a clock that has charged
// nothing must be exactly 0 — never +Inf (events/0) or NaN (0/0) — for
// both fresh and Reset clocks.
func TestClockPerSecondZeroCycles(t *testing.T) {
	var c Clock
	for _, events := range []uint64{0, 1, 1 << 40} {
		r := c.PerSecond(events)
		if r != 0 {
			t.Fatalf("PerSecond(%d) on a zero clock = %v, want 0", events, r)
		}
		if math.IsInf(r, 0) || math.IsNaN(r) {
			t.Fatalf("PerSecond(%d) on a zero clock = %v (non-finite)", events, r)
		}
	}
	c.Charge(100)
	c.Reset()
	if r := c.PerSecond(7); r != 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("PerSecond after Reset = %v, want 0", r)
	}
}
