package kernel

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// Host-time microbenchmarks of the syscall layer (the simulated-cycle
// results live in internal/bench; these measure the implementation
// itself).

func benchBoot(b *testing.B) (*Kernel, pm.Ptr) {
	b.Helper()
	k, init, err := Boot(hw.Config{Frames: 8192, Cores: 2, TLBSlots: 256})
	if err != nil {
		b.Fatal(err)
	}
	return k, init
}

func BenchmarkSysMmapMunmap(b *testing.B) {
	k, init := benchBoot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := k.SysMmap(0, init, 0x400000, 1, hw.Size4K, pt.RW); r.Errno != OK {
			b.Fatal(r.Errno)
		}
		if r := k.SysMunmap(0, init, 0x400000, 1, hw.Size4K); r.Errno != OK {
			b.Fatal(r.Errno)
		}
	}
}

func BenchmarkSysCallReply(b *testing.B) {
	k, init := benchBoot(b)
	r := k.SysNewThread(0, init, 0)
	server := pm.Ptr(r.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	k.PM.Thrd(server).Endpoints[0] = pm.Ptr(re.Vals[0])
	k.PM.EndpointIncRef(pm.Ptr(re.Vals[0]), 1)
	if r := k.SysRecv(0, server, 0, RecvArgs{EdptSlot: -1}); r.Errno != EWOULDBLOCK {
		b.Fatal(r.Errno)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := k.SysCall(0, init, 0, SendArgs{}); r.Errno != EWOULDBLOCK {
			b.Fatal(r.Errno)
		}
		if r := k.SysReplyRecv(0, server, 0, SendArgs{}, RecvArgs{EdptSlot: -1}); r.Errno != EWOULDBLOCK {
			b.Fatal(r.Errno)
		}
	}
}

func BenchmarkSysYield(b *testing.B) {
	k, init := benchBoot(b)
	k.SysNewThread(0, init, 0)
	cur := init
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := k.SysYield(0, cur); r.Errno != OK {
			b.Fatal(r.Errno)
		}
		cur = k.PM.Sched().Current(0)
	}
}

func BenchmarkContainerLifecycle(b *testing.B) {
	k, init := benchBoot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := k.SysNewContainer(0, init, 20, []int{0})
		if r.Errno != OK {
			b.Fatal(r.Errno)
		}
		if r := k.SysKillContainer(0, init, pm.Ptr(r.Vals[0])); r.Errno != OK {
			b.Fatal(r.Errno)
		}
	}
}

func BenchmarkRaiseIRQPended(b *testing.B) {
	k, init := benchBoot(b)
	k.SysNewEndpoint(0, init, 0)
	k.SysIrqRegister(0, init, 9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RaiseIRQ(0, 9)
	}
}
