package kernel_test

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

// buildVictim creates a container with a process, thread, and a mapped
// page — enough structure that teardown takes several bounded rounds.
func buildVictim(t *testing.T, k *kernel.Kernel, init pm.Ptr) pm.Ptr {
	t.Helper()
	r := k.SysNewContainer(0, init, 64, []int{0})
	if r.Errno != kernel.OK {
		t.Fatalf("container: %v", r.Errno)
	}
	cntr := pm.Ptr(r.Vals[0])
	rp := k.SysNewProcessIn(0, init, cntr)
	if rp.Errno != kernel.OK {
		t.Fatalf("proc: %v", rp.Errno)
	}
	rt := k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0)
	if rt.Errno != kernel.OK {
		t.Fatalf("thread: %v", rt.Errno)
	}
	tid := pm.Ptr(rt.Vals[0])
	if r := k.SysMmap(0, tid, 0x400000000, 2, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatalf("mmap: %v", r.Errno)
	}
	return cntr
}

// TestSupervisorRestartsSilentDriver: a watch whose heartbeat stops is
// torn down through bounded kills (well-formed at every step) and
// respawned; a live watch is left alone.
func TestSupervisorRestartsSilentDriver(t *testing.T) {
	k, init, err := kernel.Boot(hw.Config{Frames: 2048, Cores: 2, TLBSlots: 128})
	if err != nil {
		t.Fatal(err)
	}
	victim := buildVictim(t, k, init)

	sup := kernel.NewSupervisor(k, init, 10_000)
	sup.KillBudget = 1 // force multi-round teardown
	steps := 0
	sup.OnStep = func() error {
		steps++
		return verify.TotalWF(k)
	}
	respawned := 0
	sup.Register("drv", victim, func() (pm.Ptr, error) {
		// The wedged container must be fully reclaimed before the new
		// generation is built (the freed pointer may then be reused).
		if _, alive := k.PM.TryCntr(victim); alive {
			t.Error("respawn called with old container still alive")
		}
		respawned++
		return buildVictim(t, k, init), nil
	})

	// Fresh heartbeat: no action.
	sup.Heartbeat("drv")
	if events, err := sup.Check(0); err != nil || len(events) != 0 {
		t.Fatalf("premature action: %v %v", events, err)
	}

	// Silence past the deadline: recovery fires.
	k.Machine.Core(0).Clock.Charge(20_000)
	events, err := sup.Check(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "drv" || events[0].Restarts != 1 {
		t.Fatalf("events %+v", events)
	}
	if respawned != 1 || sup.Restarts("drv") != 1 {
		t.Fatalf("respawned=%d restarts=%d", respawned, sup.Restarts("drv"))
	}
	if steps == 0 {
		t.Fatal("OnStep never ran")
	}
	if sup.Stats.KillRounds < 2 {
		t.Fatalf("teardown was not iterative: %+v", sup.Stats)
	}

	// The new generation beats: no further action.
	sup.Heartbeat("drv")
	if events, err := sup.Check(0); err != nil || len(events) != 0 {
		t.Fatalf("restarted driver killed again: %v %v", events, err)
	}
	if err := verify.TotalWF(k); err != nil {
		t.Fatal(err)
	}
}
