package kernel

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/shmring"
)

// scratchRings builds a submission/completion ring pair in scratch
// physical memory, charged to core's clock — the same arrangement the
// model checker uses to drive SysBatchRings directly.
func scratchRings(k *Kernel, core int) (*shmring.Ring, *shmring.Ring) {
	mem := hw.NewPhysMem(2)
	clk := &k.Machine.Core(core).Clock
	sq := shmring.New(mem, clk, 0, shmring.SlotsPerPage())
	cq := shmring.New(mem, clk, hw.PageSize4K, shmring.SlotsPerPage())
	return sq, cq
}

func encodeOps(t *testing.T, sq *shmring.Ring, bops [][5]uint64) {
	t.Helper()
	for i, b := range bops {
		if err := shmring.EncodeSQE(sq, uint8(b[0]), 0, uint16(i), b[1], b[2], b[3], b[4]); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
}

func popCQEs(t *testing.T, cq *shmring.Ring, n int) []shmring.CQE {
	t.Helper()
	out := make([]shmring.CQE, 0, n)
	for i := 0; i < n; i++ {
		c, err := shmring.PopCQE(cq)
		if err != nil {
			t.Fatalf("pop cqe %d: %v", i, err)
		}
		out = append(out, c)
	}
	if _, err := shmring.PopCQE(cq); err != shmring.ErrEmpty {
		t.Fatalf("extra completions after %d", n)
	}
	return out
}

// TestBatchDrainsOps drives a whole mixed batch through one doorbell:
// every op completes with its own CQE, state lands as if the syscalls
// had been issued individually, and the entry/exit trampoline is paid
// once (the amortization the bench pins numerically).
func TestBatchDrainsOps(t *testing.T) {
	k, init := boot(t)
	sq, cq := scratchRings(k, 0)
	encodeOps(t, sq, [][5]uint64{
		{BopNop, 0, 0, 0, 0},
		{BopMmap, 0x400000, 3, 0, 0},
		{BopMunmap, 0x401000, 1, 0, 0},
		{BopNop, 0, 0, 0, 0},
	})
	r := k.SysBatchRings(0, init, sq, cq, 0)
	if r.Errno != OK || r.Vals[0] != 4 {
		t.Fatalf("batch: errno=%v drained=%d", r.Errno, r.Vals[0])
	}
	for i, c := range popCQEs(t, cq, 4) {
		if Errno(c.Errno) != OK {
			t.Fatalf("cqe %d: errno %v", i, Errno(c.Errno))
		}
		if int(c.Token) != i {
			t.Fatalf("cqe %d: token %d", i, c.Token)
		}
	}
	pt1, ok := k.PM.Proc(k.PM.Thrd(init).OwningProc).PageTable.Lookup(0x400000)
	if !ok || pt1.Size != hw.Size4K {
		t.Fatal("batched mmap did not land")
	}
	if _, ok := k.PM.Proc(k.PM.Thrd(init).OwningProc).PageTable.Lookup(0x401000); ok {
		t.Fatal("batched munmap did not land")
	}
}

// TestBatchStopsOnBlock checks the drain-stop rule: an op that blocks
// the caller ends the drain; later submissions stay queued for the next
// doorbell and complete then.
func TestBatchStopsOnBlock(t *testing.T) {
	k, init := boot(t)
	mustOK(t, k.SysNewEndpoint(0, init, 0))
	sq, cq := scratchRings(k, 0)
	encodeOps(t, sq, [][5]uint64{
		{BopNop, 0, 0, 0, 0},
		{BopRecv, 0, 0, 0, 0}, // nothing queued: blocks the caller
		{BopNop, 0, 0, 0, 0},  // must NOT run this doorbell
	})
	r := k.SysBatchRings(0, init, sq, cq, 0)
	if r.Errno != OK || r.Vals[0] != 2 {
		t.Fatalf("batch: errno=%v drained=%d, want 2", r.Errno, r.Vals[0])
	}
	cqes := popCQEs(t, cq, 2)
	if Errno(cqes[1].Errno) != EWOULDBLOCK {
		t.Fatalf("blocking recv cqe errno = %v", Errno(cqes[1].Errno))
	}
	if k.PM.Thrd(init).State != pm.ThreadBlockedRecv {
		t.Fatalf("caller state = %v, want blocked recv", k.PM.Thrd(init).State)
	}
	if sq.Len() == 0 {
		t.Fatal("trailing submission was consumed past the block")
	}
	// A second doorbell while still blocked refuses entry outright.
	if r := k.SysBatchRings(0, init, sq, cq, 0); r.Errno != EINVAL {
		t.Fatalf("doorbell while blocked: %v, want EINVAL", r.Errno)
	}
}

// TestBatchMalformedAborts: a malformed header aborts the batch with
// EINVAL after consuming the bad header; prior ops keep their CQEs.
func TestBatchMalformedAborts(t *testing.T) {
	k, init := boot(t)
	sq, cq := scratchRings(k, 0)
	encodeOps(t, sq, [][5]uint64{{BopNop, 0, 0, 0, 0}})
	if err := sq.Push(shmring.Entry{W0: 0xDEAD, W1: 0}); err != nil { // bad magic
		t.Fatal(err)
	}
	encodeOps(t, sq, [][5]uint64{{BopNop, 0, 0, 0, 0}})
	r := k.SysBatchRings(0, init, sq, cq, 0)
	if r.Errno != EINVAL || r.Vals[0] != 1 {
		t.Fatalf("batch: errno=%v drained=%d, want EINVAL/1", r.Errno, r.Vals[0])
	}
	popCQEs(t, cq, 1)
	// The frame after the consumed bad header is intact.
	if r := k.SysBatchRings(0, init, sq, cq, 0); r.Errno != OK || r.Vals[0] != 1 {
		t.Fatalf("re-doorbell: errno=%v drained=%d", r.Errno, r.Vals[0])
	}
}

// TestSysBatchRingPageValidation: the doorbell rejects unmapped,
// misaligned, and aliased ring pages.
func TestSysBatchRingPageValidation(t *testing.T) {
	k, init := boot(t)
	mustOK(t, k.SysMmap(0, init, 0x500000, 2, hw.Size4K, pt.RW))
	for _, tc := range []struct {
		name       string
		sqVA, cqVA hw.VirtAddr
	}{
		{"unmapped", 0x700000, 0x501000},
		{"misaligned", 0x500010, 0x501000},
		{"aliased", 0x500000, 0x500000},
	} {
		if r := k.SysBatch(0, init, tc.sqVA, tc.cqVA, 0); r.Errno != EINVAL {
			t.Errorf("%s: errno %v, want EINVAL", tc.name, r.Errno)
		}
	}
	// And the happy path over real user memory.
	if r := k.SysBatch(0, init, 0x500000, 0x501000, 0); r.Errno != OK || r.Vals[0] != 0 {
		t.Fatalf("valid rings, stale doorbell: errno=%v drained=%d", r.Errno, r.Vals[0])
	}
}

// bootGrantPair boots a ledgered kernel with a second container A whose
// thread tidA has one page mapped at 0x400000 and shares a root-owned
// endpoint in slot 0 (both sides).
func bootGrantPair(t *testing.T) (*Kernel, pm.Ptr, pm.Ptr, *account.Ledger) {
	t.Helper()
	k, init, l := bootLedger(t)
	rA := mustOK(t, k.SysNewContainer(0, init, 60, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	l.NameContainer(a, "A")
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysMmap(0, tidA, 0x400000, 1, hw.Size4K, pt.RW))
	re := mustOK(t, k.SysNewEndpoint(0, init, 0))
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(tidA).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	return k, init, tidA, l
}

// TestGrantTransferMidBatchAudit walks one zero-copy grant through its
// three ownership states — sender, InFlight, receiver — auditing the
// ledger closure at each fault point. The grant rides a batch, so the
// mid-flight state is exactly "the batch returned, nobody received
// yet": sender's mapping revoked and quota credited, the page parked on
// the InFlight pseudo-container.
func TestGrantTransferMidBatchAudit(t *testing.T) {
	k, _, tidA, l := bootGrantPair(t)
	aCntr := k.PM.Proc(k.PM.Thrd(tidA).OwningProc).Owner
	pagesBefore := l.ContainerPages(aCntr)
	usedBefore := k.PM.Cntr(aCntr).UsedPages

	// Fault point 1: grant submitted and buffered, receiver absent.
	sq, cq := scratchRings(k, 0)
	encodeOps(t, sq, [][5]uint64{{BopSendAsync, 0, 7, 9, 0x400000}})
	r := k.SysBatchRings(0, tidA, sq, cq, 0)
	if r.Errno != OK || r.Vals[0] != 1 {
		t.Fatalf("batch: errno=%v drained=%d", r.Errno, r.Vals[0])
	}
	if e := Errno(popCQEs(t, cq, 1)[0].Errno); e != OK {
		t.Fatalf("grant cqe errno = %v", e)
	}
	if _, ok := k.PM.Proc(k.PM.Thrd(tidA).OwningProc).PageTable.Lookup(0x400000); ok {
		t.Fatal("sender kept its mapping after the grant")
	}
	if got := k.PM.Cntr(aCntr).UsedPages; got != usedBefore-1 {
		t.Fatalf("sender used_pages = %d, want %d (credited at send)", got, usedBefore-1)
	}
	if got := l.ContainerPages(account.InFlight); got != 1 {
		t.Fatalf("in-flight pages mid-batch = %d, want 1", got)
	}
	if got := l.ContainerPages(aCntr); got != pagesBefore-1 {
		t.Fatalf("sender ledger pages mid-batch = %d, want %d", got, pagesBefore-1)
	}
	auditOK(t, l)

	// Fault point 2: the receiver drains; InFlight drops to zero and the
	// page lands on root.
	rootBefore := l.ContainerPages(k.PM.RootContainer)
	mustOK(t, k.SysRecv(0, initOf(k), 0, RecvArgs{PageVA: 0x7000, EdptSlot: -1}))
	if got := l.ContainerPages(account.InFlight); got != 0 {
		t.Fatalf("in-flight pages after drain = %d, want 0", got)
	}
	if got := l.ContainerPages(k.PM.RootContainer); got <= rootBefore {
		t.Fatalf("root pages did not grow on delivery: %d -> %d", rootBefore, got)
	}
	if e, ok := k.PM.Proc(k.PM.Thrd(initOf(k)).OwningProc).PageTable.Lookup(0x7000); !ok || e.Size != hw.Size4K {
		t.Fatal("granted page not mapped at the receiver's landing va")
	}
	auditOK(t, l)
}

// initOf recovers the boot thread (core 0's running thread at boot keeps
// the lowest thread pointer, which is stable across these tests).
func initOf(k *Kernel) pm.Ptr {
	var init pm.Ptr
	for p := range k.PM.ThrdPerms {
		if init == 0 || p < init {
			init = p
		}
	}
	return init
}

// TestGrantBufferedDropOnEndpointDeath parks a granted page in an
// endpoint buffer, then drops the endpoint's last descriptor: the
// buffered message dies with the endpoint and the InFlight reference
// drains without leaking.
func TestGrantBufferedDropOnEndpointDeath(t *testing.T) {
	k, init, tidA, l := bootGrantPair(t)
	mustOK(t, k.SysSendAsync(0, tidA, 0, SendArgs{GrantPage: true, PageVA: 0x400000}))
	if got := l.ContainerPages(account.InFlight); got != 1 {
		t.Fatalf("in-flight pages = %d, want 1", got)
	}
	auditOK(t, l)
	// Drop both descriptors; the second close frees the endpoint with
	// the message still buffered.
	mustOK(t, k.SysCloseEndpoint(0, init, 0))
	k.PM.Thrd(tidA).Endpoints[0] = pm.NoEndpoint
	ep := pm.Ptr(0)
	for p := range k.PM.EdptPerms {
		ep = p
	}
	if err := k.PM.EndpointDecRef(ep); err != nil {
		t.Fatalf("final decref: %v", err)
	}
	if got := l.ContainerPages(account.InFlight); got != 0 {
		t.Fatalf("in-flight pages after endpoint death = %d, want 0", got)
	}
	if got := l.Anomalies(); got != 0 {
		t.Fatalf("anomalies = %d, want 0", got)
	}
	auditOK(t, l)
}

// TestGrantDoubleGrantSignature pins the planted double-grant bug's
// shape (SetGrantLeakForTest): the sender keeps its mapping while the
// message also holds a reference — two owners for one page. The mck
// differential oracle must catch this divergence (TestGrantLeakCaught);
// here we pin the concrete signature the oracle keys on.
func TestGrantDoubleGrantSignature(t *testing.T) {
	k, _, tidA, l := bootGrantPair(t)
	usedBefore := k.PM.Cntr(k.PM.Proc(k.PM.Thrd(tidA).OwningProc).Owner).UsedPages
	k.SetGrantLeakForTest(true)
	defer k.SetGrantLeakForTest(false)
	mustOK(t, k.SysSendAsync(0, tidA, 0, SendArgs{GrantPage: true, PageVA: 0x400000}))
	e, ok := k.PM.Proc(k.PM.Thrd(tidA).OwningProc).PageTable.Lookup(0x400000)
	if !ok {
		t.Fatal("leaky grant should keep the sender mapping")
	}
	rc, err := k.Alloc.RefCount(e.Phys)
	if err != nil {
		t.Fatal(err)
	}
	if rc != 2 {
		t.Fatalf("leaked page refcount = %d, want 2 (mapping + in-flight)", rc)
	}
	if got := k.PM.Cntr(k.PM.Proc(k.PM.Thrd(tidA).OwningProc).Owner).UsedPages; got != usedBefore {
		t.Fatalf("leaky grant credited the sender: used %d -> %d", usedBefore, got)
	}
	if got := l.ContainerPages(account.InFlight); got != 1 {
		t.Fatalf("in-flight pages = %d, want 1", got)
	}
}
