package kernel

import (
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
)

// Ledger glue: the accounting ledger (internal/obs/account) mirrors the
// allocator's page lifecycle under an attribution context the kernel
// maintains. callerThread sets the context to the invoking thread's
// container; the handful of syscalls that allocate or free on behalf of
// a *different* container override it via ledgerCtx/ledgerSwap at the
// site. IPC page transfers move a reference through the account.InFlight
// pseudo-container (ledgerMove). Like the tracer, the ledger only reads
// state — attaching it never changes a charged cycle.

// AttachLedger binds a ledger to the kernel's allocator, seeding it with
// the current allocation state attributed to the root container. Pass
// nil to detach. When a metrics registry is attached, the ledger's
// aggregate gauges are registered too.
func (k *Kernel) AttachLedger(l *account.Ledger) {
	k.big.Lock()
	defer k.big.Unlock()
	k.ledger = l
	k.lcntr = 0
	if l == nil {
		k.Alloc.SetObserver(nil)
		return
	}
	l.Bind(k.Alloc, k.PM.RootContainer)
	l.NameContainer(k.PM.RootContainer, "root")
	if k.obs != nil && k.obs.metrics != nil {
		l.RegisterMetrics(k.obs.metrics)
	}
}

// Ledger returns the attached ledger (nil when detached).
func (k *Kernel) Ledger() *account.Ledger { return k.ledger }

// ledgerCtx sets the attribution context for the rest of the syscall.
func (k *Kernel) ledgerCtx(c pm.Ptr) {
	if k.ledger != nil {
		k.ledger.SetContext(c)
	}
}

// ledgerSwap sets the context and returns the previous one, for scoping
// an override around a single operation.
func (k *Kernel) ledgerSwap(c pm.Ptr) pm.Ptr {
	if k.ledger == nil {
		return 0
	}
	return k.ledger.SwapContext(c)
}

// ledgerSend parks a page reference on the InFlight pseudo-container:
// resolveMsg just IncRef'd the page under the sender's context, and the
// new reference belongs to the message, not the sender's mapping.
func (k *Kernel) ledgerSend(p pm.Ptr, sender pm.Ptr) {
	if k.ledger != nil {
		k.ledger.MoveRef(p, sender, account.InFlight)
	}
}

// ledgerRecv lands an in-flight page reference on the receiver's
// container once deliver has mapped it.
func (k *Kernel) ledgerRecv(p pm.Ptr, receiver pm.Ptr) {
	if k.ledger != nil {
		k.ledger.MoveRef(p, account.InFlight, receiver)
	}
}

// ledgerDropInFlight scopes an attribution context of InFlight around
// fn — dropMsg's DecRef releases the message's reference, not one of
// the caller's own mappings.
func (k *Kernel) ledgerDropInFlight(fn func()) {
	if k.ledger == nil {
		fn()
		return
	}
	prev := k.ledger.SwapContext(account.InFlight)
	fn()
	k.ledger.SetContext(prev)
}

// ledgerAttr reassigns an object page's owning container (the child
// container's own object page, allocated under the parent's context).
func (k *Kernel) ledgerAttr(p pm.Ptr, c pm.Ptr) {
	if k.ledger != nil {
		k.ledger.Attribute(p, c)
	}
}
