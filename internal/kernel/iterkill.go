package kernel

import (
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
)

// Iterative container termination. §4.3 notes that Atmosphere's
// long-running kill syscalls hold the big lock for unbounded time and
// names bounded, seL4-style iterative kills as future work; this file
// implements that extension. SysKillContainerBounded performs at most
// `budget` units of teardown per invocation and returns EAGAIN until
// the subtree is gone. Every unit leaves the kernel well-formed — the
// checker validates all invariants between invocations — and the
// freeze set keeps half-dead containers from issuing syscalls in the
// meantime.

// workUnit is one bounded teardown step's cost weight (every unit is
// O(1) kernel work plus at most one page free).
const killUnitCost = hw.CostCacheTouch * 8

// SysKillContainerBounded terminates a strict descendant of the
// caller's container doing at most budget units of work. The first
// invocation freezes the subtree (its threads can no longer enter the
// kernel); subsequent invocations tear it down piecewise. Returns OK
// when the subtree is fully reclaimed, EAGAIN when work remains.
func (k *Kernel) SysKillContainerBounded(core int, tid pm.Ptr, cntr pm.Ptr, budget int) Ret {
	defer k.enter(core)()
	defer k.gcShards() // objects reclaimed this installment lose their shards
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("kill_container_bounded", tid, fail(EINVAL))
	}
	if budget <= 0 {
		return k.post("kill_container_bounded", tid, fail(EINVAL))
	}
	if _, exists := k.PM.TryCntr(cntr); !exists {
		// Either never existed or already fully reclaimed by earlier
		// invocations; only the latter had a freeze entry.
		if k.dying[cntr] {
			delete(k.dying, cntr)
			return k.post("kill_container_bounded", tid, ok())
		}
		return k.post("kill_container_bounded", tid, fail(ENOENT))
	}
	callerCntr := k.PM.Proc(t.OwningProc).Owner
	if !k.PM.IsAncestor(callerCntr, cntr) {
		return k.post("kill_container_bounded", tid, fail(EPERM))
	}
	// Freeze: one O(subtree) registration, after which threads of the
	// dying set cannot issue syscalls.
	if k.dying == nil {
		k.dying = make(map[pm.Ptr]bool)
	}
	if !k.dying[cntr] {
		for c := range k.PM.SubtreeOf(cntr) {
			k.dying[c] = true
		}
	}

	for budget > 0 {
		k.kclock.Charge(killUnitCost)
		did, err := k.killOneUnit(cntr)
		if err != nil {
			return k.post("kill_container_bounded", tid, fail(errnoOf(err)))
		}
		if !did {
			break
		}
		budget--
	}
	if _, alive := k.PM.TryCntr(cntr); alive {
		return k.post("kill_container_bounded", tid, fail(EAGAIN))
	}
	// Fully reclaimed: clear the freeze entries (descendants were
	// removed as their containers died).
	delete(k.dying, cntr)
	return k.post("kill_container_bounded", tid, ok())
}

// killOneUnit performs one well-formedness-preserving teardown step in
// the dying subtree of cntr and reports whether it found work.
// Deterministic: candidates are visited in sorted pointer order,
// deepest containers first.
func (k *Kernel) killOneUnit(cntr pm.Ptr) (bool, error) {
	if _, alive := k.PM.TryCntr(cntr); !alive {
		return false, nil
	}
	subtree := make([]pm.Ptr, 0, 8)
	for c := range k.PM.SubtreeOf(cntr) {
		subtree = append(subtree, c)
	}
	sort.Slice(subtree, func(i, j int) bool {
		di, dj := k.PM.Cntr(subtree[i]).Depth, k.PM.Cntr(subtree[j]).Depth
		if di != dj {
			return di > dj
		}
		return subtree[i] < subtree[j]
	})
	for _, c := range subtree {
		cc := k.PM.Cntr(c)
		// 1. Endpoints owned here (their waiters may be anywhere).
		for _, eptr := range sortedEdpts(k.PM.EdptPerms) {
			e, still := k.PM.TryEdpt(eptr)
			if still && e.OwnerCntr == c {
				k.destroyEndpoint(eptr, k.PM.SubtreeOf(cntr))
				return true, nil
			}
		}
		// 2. Process work, smallest pointer first.
		procs := make([]pm.Ptr, 0, len(cc.Procs))
		for p := range cc.Procs {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		for _, p := range procs {
			proc := k.PM.Proc(p)
			// 2a. One page of address space.
			if space := proc.PageTable.AddressSpace(); len(space) > 0 {
				vas := make([]hw.VirtAddr, 0, len(space))
				for va := range space {
					vas = append(vas, va)
				}
				sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
				va := vas[0]
				e := space[va]
				cr3 := proc.PageTable.CR3()
				k.ledgerCtx(proc.Owner) // the dropped ref is the victim's
				if _, err := proc.PageTable.Unmap(va); err != nil {
					return false, err
				}
				if _, err := k.Alloc.DecRef(e.Phys); err != nil {
					return false, err
				}
				k.PM.CreditPages(proc.Owner, pagesIn4K(e.Size))
				k.shootdown(0, cr3, va, e.Size)
				return true, nil
			}
			// 2b. The IOMMU domain.
			if proc.IOMMUDomain != 0 {
				if err := k.destroyIOMMUDomain(proc); err != nil {
					return false, err
				}
				return true, nil
			}
			// 2c. One thread.
			if len(proc.Threads) > 0 {
				ths := append([]pm.Ptr(nil), proc.Threads...)
				sort.Slice(ths, func(i, j int) bool { return ths[i] < ths[j] })
				if err := k.reapThread(ths[0]); err != nil {
					return false, err
				}
				return true, nil
			}
			// 2d. The process itself, once childless.
			if len(proc.Children) == 0 {
				if err := k.PM.FreeProcess(p); err != nil {
					return false, err
				}
				return true, nil
			}
		}
		// 3. The container itself, once empty.
		if len(cc.Procs) == 0 && len(cc.Children) == 0 && c != cntr {
			if err := k.PM.UnlinkContainer(c); err != nil {
				return false, err
			}
			delete(k.dying, c)
			return true, nil
		}
		if c == cntr && len(cc.Procs) == 0 && len(cc.Children) == 0 {
			if err := k.PM.UnlinkContainer(c); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// frozen reports whether a thread's container is in a dying subtree.
func (k *Kernel) frozen(t *pm.Thread) bool {
	return k.dying != nil && k.dying[t.OwningCntr]
}
