package kernel

import (
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// Memory syscalls: mmap, munmap (Listing 1).

// pagesIn4K converts a mapping granularity to its 4 KiB page count for
// quota accounting.
func pagesIn4K(size hw.PageSize) uint64 { return size.Bytes() / hw.PageSize4K }

// validSize rejects granularities outside the three supported classes —
// a user-controlled value that must never reach the allocator raw.
func validSize(size hw.PageSize) bool {
	return size == hw.Size4K || size == hw.Size2M || size == hw.Size1G
}

// SysMmap allocates count fresh physical pages of the given size and maps
// them at consecutive virtual addresses starting at va in the caller's
// address space. Quota is charged for the user pages and for any
// page-table nodes the mapping materializes. On any failure the partial
// work is rolled back, so the syscall is atomic at the specification
// level (old state preserved on error).
func (k *Kernel) SysMmap(core int, tid pm.Ptr, va hw.VirtAddr, count int, size hw.PageSize, perm pt.Perm) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planMmap(core, tid, count, size) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("mmap", tid, fail(EINVAL))
	}
	if count <= 0 || count > 1<<20 || !validSize(size) {
		return k.post("mmap", tid, fail(EINVAL))
	}
	// A misaligned base is a plain validation error; rejecting it here
	// keeps it off the charge-then-rollback path (where pt.Map would
	// refuse it only after quota was provisionally consumed).
	if va&hw.VirtAddr(size.Bytes()-1) != 0 {
		return k.post("mmap", tid, fail(EINVAL))
	}
	proc := k.PM.Proc(t.OwningProc)
	cntr := proc.Owner
	table := proc.PageTable
	step := hw.VirtAddr(size.Bytes())

	// Pre-validate the whole range so failure needs no page rollback.
	for i := 0; i < count; i++ {
		dst := va + hw.VirtAddr(i)*step
		if _, covered := table.Lookup(dst); covered {
			return k.post("mmap", tid, fail(EALREADY))
		}
	}

	nodesBefore := table.PageClosure().Len()
	type mapped struct {
		va   hw.VirtAddr
		phys hw.PhysAddr
	}
	var done []mapped
	rollback := func() {
		for _, mpd := range done {
			if _, err := table.Unmap(mpd.va); err != nil {
				panic(err)
			}
			if _, err := k.Alloc.DecRef(mpd.phys); err != nil {
				panic(err)
			}
			k.PM.CreditPages(cntr, pagesIn4K(size))
		}
		// Drop any now-empty table nodes this syscall (or earlier
		// history) left behind, then settle the accounting delta.
		table.PruneEmpty()
		nodesNow := table.PageClosure().Len()
		if nodesNow < nodesBefore {
			k.PM.CreditPages(cntr, uint64(nodesBefore-nodesNow))
		} else if nodesNow > nodesBefore {
			panic("kernel: rollback left uncharged page-table nodes")
		}
	}

	for i := 0; i < count; i++ {
		dst := va + hw.VirtAddr(i)*step
		if err := k.PM.ChargePages(cntr, pagesIn4K(size)); err != nil {
			rollback()
			return k.post("mmap", tid, fail(EQUOTA))
		}
		phys, err := k.allocUser(core, size)
		if err != nil {
			k.PM.CreditPages(cntr, pagesIn4K(size))
			rollback()
			return k.post("mmap", tid, fail(ENOMEM))
		}
		if err := table.Map(dst, phys, size, perm); err != nil {
			if _, derr := k.Alloc.DecRef(phys); derr != nil {
				panic(derr)
			}
			k.PM.CreditPages(cntr, pagesIn4K(size))
			rollback()
			return k.post("mmap", tid, fail(EINVAL))
		}
		done = append(done, mapped{dst, phys})
	}
	// Charge the page-table nodes this mapping created.
	nodesAfter := table.PageClosure().Len()
	if nodesAfter > nodesBefore {
		if err := k.PM.ChargePages(cntr, uint64(nodesAfter-nodesBefore)); err != nil {
			rollback()
			return k.post("mmap", tid, fail(EQUOTA))
		}
	}
	return k.post("mmap", tid, ok(uint64(va)))
}

// allocUser hands out a user page of the requested size, merging free
// 4 KiB pages into a superpage on demand (§4.2: the allocator scans the
// page array and unlinks constituents in constant time via the metadata
// back pointers). With per-core caches enabled, the hot 4 KiB path goes
// through the invoking core's cache instead; the hand-out's cycles
// (pop + deferred zero) count as core-local work that does not extend
// the big-lock hold time the contention model reports.
func (k *Kernel) allocUser(core int, size hw.PageSize) (hw.PhysAddr, error) {
	if size == hw.Size4K && k.caches != nil {
		phys, local, err := k.caches.AllocUser4K(core)
		if err != nil {
			return 0, err
		}
		k.local += local
		return phys, nil
	}
	switch size {
	case hw.Size2M:
		if k.Alloc.FreeCount2M() == 0 {
			if _, err := k.Alloc.Merge2M(); err != nil {
				return 0, err
			}
		}
	case hw.Size1G:
		if k.Alloc.FreeCount1G() == 0 {
			if _, err := k.Alloc.Merge1G(); err != nil {
				return 0, err
			}
		}
	}
	return k.Alloc.AllocUserPage(size)
}

// SysMunmap removes count mappings of the given size starting at va and
// releases the underlying pages (the page itself is freed only when its
// last mapping reference drops). Quota for the pages is credited back;
// page-table nodes stay installed (and stay charged), as in most kernels.
func (k *Kernel) SysMunmap(core int, tid pm.Ptr, va hw.VirtAddr, count int, size hw.PageSize) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planMunmap(core, tid, count, size) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("munmap", tid, fail(EINVAL))
	}
	if count <= 0 || !validSize(size) {
		return k.post("munmap", tid, fail(EINVAL))
	}
	// Align down to the granularity: Lookup below tolerates an interior
	// address, but Unmap wants the mapping's exact base — an unaligned va
	// would validate and then panic on the "validated above" invariant.
	va &^= hw.VirtAddr(size.Bytes() - 1)
	proc := k.PM.Proc(t.OwningProc)
	table := proc.PageTable
	step := hw.VirtAddr(size.Bytes())
	// Validate the whole range first: every base must be mapped at
	// exactly this granularity.
	for i := 0; i < count; i++ {
		dst := va + hw.VirtAddr(i)*step
		e, covered := table.Lookup(dst)
		if !covered || e.Size != size {
			return k.post("munmap", tid, fail(ENOENT))
		}
	}
	for i := 0; i < count; i++ {
		dst := va + hw.VirtAddr(i)*step
		e, err := table.Unmap(dst)
		if err != nil {
			panic(err) // validated above; kernel invariant if it fires
		}
		k.freeUser(core, e.Phys, size)
		k.PM.CreditPages(proc.Owner, pagesIn4K(size))
		k.shootdown(core, table.CR3(), dst, size)
	}
	return k.post("munmap", tid, ok())
}

// freeUser releases one mapping reference from an unmap on core. The
// hot case — a 4 KiB page at its last reference, caches enabled — parks
// the frame in the core's page cache (core-local work); everything else
// takes the global DecRef path. Teardown paths (unmapAll, rollback)
// keep plain DecRef: they have no natural core.
func (k *Kernel) freeUser(core int, phys hw.PhysAddr, size hw.PageSize) {
	if k.caches != nil && size == hw.Size4K {
		if rc, err := k.Alloc.RefCount(phys); err == nil && rc == 1 {
			local, err := k.caches.FreeUser4K(core, phys)
			if err != nil {
				panic(err)
			}
			k.local += local
			return
		}
	}
	if _, err := k.Alloc.DecRef(phys); err != nil {
		panic(err)
	}
}

// shootdown performs the TLB maintenance an unmap architecturally
// requires: invalidate the translation on every core (threads of the
// same process may run anywhere, §4.2 "consistency of page table
// updates"), charging the IPI round trip for each remote core. The
// local invlpg itself is charged by pt.Unmap.
func (k *Kernel) shootdown(core int, cr3 hw.PhysAddr, va hw.VirtAddr, size hw.PageSize) {
	pages := int(size.Bytes() / hw.PageSize4K)
	if pages > 16 {
		pages = 16 // superpages flush in bulk; model the capped cost
	}
	for c := 0; c < k.Machine.NumCores(); c++ {
		tlb := k.Machine.Core(c).TLB
		for p := 0; p < pages; p++ {
			tlb.Invalidate(cr3, va+hw.VirtAddr(p*hw.PageSize4K))
		}
		if c != core {
			// IPI send + remote invlpg + ack, charged to the initiator
			// (it spins for the acks under the big lock).
			k.kclock.Charge(hw.CostInterruptDispatch/2 + hw.CostInvlpg)
		}
	}
}

// unmapAll tears down a process's entire address space, releasing page
// references and crediting quota. Used by process and container kill.
// Addresses are processed in sorted order so teardown (and hence the
// free-list order it produces) is deterministic — output consistency
// (§4.3) requires the kernel to be a function of its pre-state.
func (k *Kernel) unmapAll(proc *pm.Process) {
	k.ledgerCtx(proc.Owner) // the torn-down refs are the victim's, not the killer's
	space := proc.PageTable.AddressSpace()
	vas := make([]hw.VirtAddr, 0, len(space))
	for va := range space {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	for _, va := range vas {
		e := space[va]
		if _, err := proc.PageTable.Unmap(va); err != nil {
			panic(err)
		}
		if _, err := k.Alloc.DecRef(e.Phys); err != nil {
			panic(err)
		}
		k.PM.CreditPages(proc.Owner, pagesIn4K(e.Size))
	}
	// Whole-address-space teardown flushes rather than per-page
	// shootdowns: one IPI round per core.
	for c := 0; c < k.Machine.NumCores(); c++ {
		k.Machine.Core(c).TLB.Flush()
		k.kclock.Charge(hw.CostInterruptDispatch / 2)
	}
}
