// Package kernel implements the Atmosphere microkernel proper: the
// big-lock syscall layer over the process manager, page allocator, page
// tables, and IOMMU (§3).
//
// Every syscall follows the same shape as the paper's verified functions:
// validate arguments against the caller's authority, perform the state
// transition, and keep the ghost/abstract state in lock-step with the
// concrete state. internal/spec defines the executable postcondition of
// each syscall; internal/verify checks them, together with the global
// well-formedness invariants, after every transition.
package kernel

import (
	"errors"
	"sync"

	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/mem"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/contend"
	"atmosphere/internal/pm"
)

// Errno is the syscall status delivered to user code.
type Errno int

// Syscall status codes.
const (
	OK Errno = iota
	EINVAL
	ENOMEM
	EQUOTA
	EPERM
	EALREADY
	ENOENT
	EWOULDBLOCK
	EDEADOBJ
	EAGAIN
)

// String implements fmt.Stringer.
func (e Errno) String() string {
	switch e {
	case OK:
		return "OK"
	case EINVAL:
		return "EINVAL"
	case ENOMEM:
		return "ENOMEM"
	case EQUOTA:
		return "EQUOTA"
	case EPERM:
		return "EPERM"
	case EALREADY:
		return "EALREADY"
	case ENOENT:
		return "ENOENT"
	case EWOULDBLOCK:
		return "EWOULDBLOCK"
	case EDEADOBJ:
		return "EDEADOBJ"
	case EAGAIN:
		return "EAGAIN"
	}
	return "E?"
}

// ErrEndpointDead is delivered to threads woken because the endpoint they
// were blocked on was destroyed with its owning container.
var ErrEndpointDead = errors.New("kernel: endpoint destroyed")

// Ret is the SyscallReturnStruct of the paper: status plus up to four
// scalar return values.
type Ret struct {
	Errno Errno
	Vals  [4]uint64
}

func ok(vals ...uint64) Ret {
	var r Ret
	copy(r.Vals[:], vals)
	return r
}

func fail(e Errno) Ret { return Ret{Errno: e} }

// Kernel is one booted Atmosphere instance.
type Kernel struct {
	Machine *hw.Machine
	Alloc   *mem.Allocator
	PM      *pm.ProcessManager
	IOMMU   *iommu.IOMMU

	// big is the Go mutex guarding every kernel data structure: all
	// syscalls and interrupts still serialize their real execution
	// through it (§3). The *virtual* cost model is sharded (shard.go):
	// big no longer stands for "one frontier".
	big sync.Mutex

	// lock is the deterministic contention model of the big lock —
	// since the sharding refactor, only the frontier of *global*
	// operations (lifecycle, IRQ, IOMMU, shared free-list access); each
	// container and endpoint has its own frontier in cntrShards /
	// edptShards. When enabled (EnableContention), each acquisition
	// charges the invoking core the wait implied by concurrent holders'
	// virtual clocks. Disabled (the default), only the uncontended
	// CostBigLock is paid and every plan is free.
	lock hw.LockSim

	// Shard tables (shard.go): lazily created per-container and
	// per-endpoint lock frontiers, the flat list in creation order (for
	// enable/jitter/registration propagation), label sequence counters,
	// the armed jitter parameters new shards inherit, the reusable
	// held-frontier buffer of the funnel, and the test-only plan flip.
	cntrShards map[pm.Ptr]*shard
	edptShards map[pm.Ptr]*shard
	shards     []*shard
	cntrSeq    int
	edptSeq    int
	jitterSeed uint64
	jitterMax  uint64
	held       []frontier
	planFlip   bool

	// local accumulates, per syscall, the cycles spent on work that a
	// real multicore kernel performs outside the big lock — per-core
	// page-cache hand-outs and take-backs (zeroing included). The leave
	// closure subtracts it from the lock hold time it reports to the
	// contention model, so local work overlaps across cores.
	local uint64

	// caches, when non-nil (EnableCoreCaches), are the per-core
	// page-frame caches the hot mmap/munmap 4 KiB path allocates
	// through.
	caches *mem.CoreCaches

	// kclock is the clock substrates charge to; syscall exit moves the
	// delta onto the invoking core's clock.
	kclock *hw.Clock

	// irqs maps bound interrupt lines to their notification endpoints.
	irqs map[int]*irqState

	// dying marks containers frozen by an in-progress iterative kill;
	// their threads cannot enter the kernel (iterkill.go).
	dying map[pm.Ptr]bool

	// obs is the attached observability state (observe.go); nil unless
	// AttachObs wired a tracer/registry in. It only ever reads clocks,
	// so attaching it cannot change a charged cycle.
	obs *kobs

	// ledger is the attached accounting ledger (internal/obs/account);
	// nil unless AttachLedger wired one in. Like obs it only reads
	// state, so attaching it cannot change a charged cycle.
	ledger *account.Ledger

	// cobs is the attached contention observatory (internal/obs/contend);
	// nil unless AttachContention wired one in. bigID is the big lock's
	// frontier registration; cSys/cCntr carry the in-flight entry's
	// attribution (syscall name from post, container from callerThread)
	// until the leave closure bills each held frontier's wait.
	cobs  *contend.Observatory
	bigID contend.LockID
	cSys  string
	cCntr pm.Ptr

	// lcntr is the container the in-flight syscall's cycles are billed
	// to: the caller's owning container, resolved by callerThread.
	lcntr pm.Ptr

	// batchCore marks cores currently draining a syscall batch
	// (syscalls_batch.go). While set, the funnel suppresses the per-op
	// entry/dispatch/exit trampoline: the batch paid entry once and pays
	// exit once; each drained op pays only the SQE decode/dispatch and
	// its own lock plan. Mutated and read only under big — a core is a
	// single execution stream, so its own flag cannot race.
	batchCore []bool

	// grantLeak, when set by SetGrantLeakForTest, makes resolveMsg skip
	// revoking the sender's mapping on a grant transfer — the planted
	// double-grant bug the differential oracle must catch.
	grantLeak bool

	// Hooks let the verifier observe every transition (nil in
	// benchmarks; charged nothing).
	PostSyscall func(name string, caller pm.Ptr, ret Ret)

	// IRQFilter, when set, is consulted on every raised interrupt; a
	// false return drops the edge before dispatch (the fault layer's
	// lost-interrupt injection). Dropping an edge is always safe for
	// kernel invariants — hardware loses edges too — so the filter
	// exercises the paths that must tolerate it.
	IRQFilter func(core, irq int) bool
}

// Boot creates a machine, allocator, IOMMU, process manager with a root
// container holding every non-reserved page, plus an initial process and
// thread on core 0 (the init thread).
func Boot(cfg hw.Config) (*Kernel, pm.Ptr, error) {
	machine := hw.NewMachine(cfg)
	kclock := &hw.Clock{}
	alloc := mem.NewAllocator(machine.Mem, kclock, 1)
	k := &Kernel{
		Machine:    machine,
		Alloc:      alloc,
		kclock:     kclock,
		cntrShards: make(map[pm.Ptr]*shard),
		edptShards: make(map[pm.Ptr]*shard),
		batchCore:  make([]bool, machine.NumCores()),
	}
	iom, err := iommu.New(alloc, kclock)
	if err != nil {
		return nil, 0, err
	}
	k.IOMMU = iom
	// Root quota: everything the allocator can hand out, minus the
	// IOMMU root page already taken.
	// (its own object page is the first page it consumes).
	quota := uint64(alloc.FreeCount4K())
	p, err := pm.New(alloc, kclock, cfg.Cores, quota)
	if err != nil {
		return nil, 0, err
	}
	k.PM = p
	// An endpoint dying with buffered asynchronous messages (last
	// descriptor closed, or dropped by a thread exit) must release the
	// page references those messages hold — the manager frees the
	// object, the kernel settles the allocator and the ledger.
	p.OnEndpointFree = func(e *pm.Endpoint) {
		for i := range e.Buffer {
			k.dropMsg(&e.Buffer[i])
		}
		e.Buffer = nil
	}
	initProc, err := p.NewProcess(p.RootContainer, 0)
	if err != nil {
		return nil, 0, err
	}
	initThread, err := p.NewThread(initProc, 0)
	if err != nil {
		return nil, 0, err
	}
	p.Dispatch(initThread)
	return k, initThread, nil
}

// enter charges syscall entry, the slowpath dispatcher, and the lock;
// with no plan resolver the op is global and takes the big lock alone.
// The returned leave function charges exit and attributes the syscall's
// cycles to core.
func (k *Kernel) enter(core int) (leave func()) {
	return k.enterWith(core, hw.CostSyscallEntry+hw.CostSyscallDispatch+hw.CostBigLock, nil)
}

// enterPlan is the slowpath prologue for sharded ops: resolve runs
// under the Go mutex and names the frontiers this syscall holds.
func (k *Kernel) enterPlan(core int, resolve func() lockPlan) (leave func()) {
	return k.enterWith(core, hw.CostSyscallEntry+hw.CostSyscallDispatch+hw.CostBigLock, resolve)
}

// enterFastPlan is the IPC fastpath prologue: no dispatcher (arguments
// stay in registers end to end, as in seL4's fastpath), sharded plan.
func (k *Kernel) enterFastPlan(core int, resolve func() lockPlan) (leave func()) {
	return k.enterWith(core, hw.CostSyscallEntry+hw.CostBigLock, resolve)
}

// enterWith is the syscall funnel. Under the Go mutex it resolves the
// lock plan, materializes the planned frontiers in DAG order (big,
// containers by address, endpoint; shard.go), and virtually acquires
// them in sequence: each frontier's wait pushes the arrival the next
// one sees, so a core queues behind every planned frontier exactly as a
// real nested acquisition would. The summed wait is charged to the core
// (one lock.wait span); entry cost is charged once, whatever the plan.
// The leave closure releases every held frontier at the same
// heldUntil — syscall end minus the core-local share — and attributes
// each frontier's own wait, so independent containers' syscalls overlap
// in virtual time while every plan containing only the big lock costs
// exactly what the pre-sharding funnel cost.
func (k *Kernel) enterWith(core int, entryCost uint64, resolve func() lockPlan) (leave func()) {
	k.big.Lock()
	cclk := &k.Machine.Core(core).Clock
	exitCost := uint64(hw.CostSyscallExit)
	if core >= 0 && core < len(k.batchCore) && k.batchCore[core] {
		// Inside a batch drain the per-op trampoline is gone: the op
		// pays the SQE decode/dispatch and its lock, nothing else; the
		// batch itself paid entry once and pays exit once
		// (syscalls_batch.go).
		entryCost = hw.CostBatchDispatch + hw.CostBigLock
		exitCost = 0
	}
	plan := planBig()
	if resolve != nil {
		plan = resolve()
	}
	held := k.held[:0]
	if plan.big {
		held = append(held, frontier{sim: &k.lock, id: k.bigID})
	}
	for i := 0; i < plan.ncntr; i++ {
		s := k.cntrShard(plan.cntr[i])
		held = append(held, frontier{sim: &s.sim, id: s.id})
	}
	if plan.edpt != pm.NoEndpoint {
		s := k.edptShard(plan.edpt)
		held = append(held, frontier{sim: &s.sim, id: s.id})
	}
	if k.planFlip {
		for i, j := 0, len(held)-1; i < j; i, j = i+1, j-1 {
			held[i], held[j] = held[j], held[i]
		}
	}
	k.held = held // keep the buffer's capacity for the next entry
	arrival := cclk.Cycles()
	at := arrival
	var wait uint64
	for i := range held {
		w := held[i].sim.Acquire(at)
		held[i].wait = w
		at += w
		wait += w
		if k.cobs != nil {
			k.cobs.Acquired(core, held[i].id, "syscall")
		}
	}
	if wait > 0 {
		cclk.Charge(wait)
		k.lockWait(core, arrival, wait)
	}
	if k.cobs != nil {
		// The syscall name and container are unknown yet, so
		// attribution waits for the leave closure.
		k.cSys, k.cCntr = "", 0
	}
	start := k.kclock.Cycles()
	k.local = 0
	if k.obs != nil {
		k.obs.enter(k, core, start)
	}
	k.kclock.Charge(entryCost)
	return func() {
		k.kclock.Charge(exitCost)
		delta := k.kclock.Cycles() - start
		if k.obs != nil {
			k.obs.leave(delta)
		}
		if k.ledger != nil {
			// Bill the syscall's cycles to the caller's container (0 =
			// unattributed: invalid caller, IRQ dispatch) and drop the
			// attribution context before the lock releases.
			k.ledger.ChargeCycles(k.lcntr, delta)
			k.ledger.SetContext(0)
			k.lcntr = 0
		}
		cclk.Charge(delta)
		// The core-local share (page-cache hand-outs) does not extend
		// the hold time other cores observe. Every held frontier
		// advances to the same release point: the op held them all.
		heldUntil := cclk.Cycles() - k.local
		for i := len(held) - 1; i >= 0; i-- {
			if k.cobs != nil {
				k.cobs.AttributeWait(held[i].id, k.cSys, k.cCntr, core, held[i].wait)
				k.cobs.Released(core, held[i].id)
			}
			held[i].sim.Release(heldUntil)
		}
		k.big.Unlock()
	}
}

// EnableContention turns on the deterministic contention model
// (hw.LockSim) for every frontier: the big lock and all container and
// endpoint shards, existing and future (armShard inherits the setting).
// Meaningful only for workloads that drive cores in lock-step from
// aligned clocks — the multicore scalability series; legacy single-core
// benchmarks keep the uncontended model.
func (k *Kernel) EnableContention() {
	k.big.Lock()
	defer k.big.Unlock()
	k.lock.Enable()
	for _, s := range k.shards {
		s.sim.Enable()
	}
}

// SetLockJitter arms seeded arrival jitter on every frontier
// (hw.LockSim.SetJitter): each acquisition's virtual arrival time is
// shifted by a deterministic pseudo-random delay in [0, max], perturbing
// the hand-off order per seed. Each shard gets a decorrelated seed
// (seed XOR its salt) so frontiers don't jitter in unison; shards
// created later inherit the arming the same way. Schedule exploration
// uses it to cover interleavings the FIFO arbiter alone never produces.
func (k *Kernel) SetLockJitter(seed, max uint64) {
	k.big.Lock()
	defer k.big.Unlock()
	k.jitterSeed, k.jitterMax = seed, max
	k.lock.SetJitter(seed, max)
	for _, s := range k.shards {
		s.sim.SetJitter(seed^s.salt, max)
	}
}

// LockStats reports the contention model's (acquisitions, contended
// acquisitions, total wait cycles) summed over every frontier — the big
// lock plus all container and endpoint shards; zeros while disabled.
func (k *Kernel) LockStats() (acquisitions, contended, waitCycles uint64) {
	acquisitions, contended, waitCycles = k.lock.Stats()
	for _, s := range k.shards {
		a, c, w := s.sim.Stats()
		acquisitions += a
		contended += c
		waitCycles += w
	}
	return acquisitions, contended, waitCycles
}

// EnableCoreCaches routes the hot 4 KiB user-page allocation path
// through per-core page-frame caches refilled batch frames at a time —
// the split that takes zeroing and hand-out off the big lock's critical
// path. Call after Boot, before issuing syscalls.
func (k *Kernel) EnableCoreCaches(batch int) {
	k.big.Lock()
	defer k.big.Unlock()
	k.caches = mem.NewCoreCaches(k.Alloc, k.Machine.NumCores(), batch)
}

// CoreCaches returns the per-core page-frame caches (nil unless
// EnableCoreCaches ran).
func (k *Kernel) CoreCaches() *mem.CoreCaches { return k.caches }

// PageCachePages returns the kernel's own view of the frames parked in
// per-core caches — what verify.MemoryWF compares against the
// allocator's OwnerPCache closure. Empty when caches are disabled.
func (k *Kernel) PageCachePages() mem.PageSet {
	if k.caches == nil {
		return mem.NewPageSet()
	}
	return k.caches.Pages()
}

// callerThread validates the invoking thread pointer. A blocked thread
// cannot be executing user code, so a syscall from one is rejected (it
// would otherwise end up queued on two endpoints at once); so is a
// thread whose container is frozen by an in-progress iterative kill.
func (k *Kernel) callerThread(tid pm.Ptr) (*pm.Thread, bool) {
	t, okk := k.PM.TryThrd(tid)
	if !okk || t.State == pm.ThreadExited ||
		t.State == pm.ThreadBlockedSend || t.State == pm.ThreadBlockedRecv {
		return nil, false
	}
	if k.frozen(t) {
		return nil, false
	}
	if k.ledger != nil {
		// The caller's container is the attribution context for every
		// page transition this syscall performs (overridden at the few
		// sites acting on a different container) and the bill for its
		// cycles at leave.
		k.ledger.SetContext(t.OwningCntr)
		k.lcntr = t.OwningCntr
	}
	if k.cobs != nil {
		// And the container the entry's lock wait is attributed to.
		k.cCntr = t.OwningCntr
	}
	return t, true
}

func (k *Kernel) post(name string, caller pm.Ptr, ret Ret) Ret {
	if k.obs != nil {
		k.obs.post(name, ret.Errno)
	}
	if k.cobs != nil {
		k.cSys = name
	}
	if k.PostSyscall != nil {
		k.PostSyscall(name, caller, ret)
	}
	return ret
}

// errnoOf maps internal errors onto user-visible status codes.
func errnoOf(err error) Errno {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, pm.ErrQuotaExceeded):
		return EQUOTA
	case errors.Is(err, mem.ErrOutOfMemory):
		return ENOMEM
	case errors.Is(err, pm.ErrBadCPU):
		return EINVAL
	case errors.Is(err, ErrEndpointDead):
		return EDEADOBJ
	default:
		return EINVAL
	}
}

// SysYield rotates the caller's core to the next runnable thread. Its
// lock plan is the caller's container frontier alone: a yield touches
// only that container's run state.
func (k *Kernel) SysYield(core int, tid pm.Ptr) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planCaller(tid) })()
	if _, okk := k.callerThread(tid); !okk {
		return k.post("yield", tid, fail(EINVAL))
	}
	k.kclock.Charge(hw.CostContextSwitch)
	k.noteSwitch(false, tid)
	k.PM.PickNext(core)
	return k.post("yield", tid, ok())
}

// SetGrantLeakForTest plants the double-grant bug: resolveMsg skips
// revoking the sender's mapping on a grant transfer, so sender and
// receiver both end up owning the page — exactly the aliasing a
// linear-ownership discipline forbids. The differential oracle must
// catch the diverged address spaces and quota. Test harnesses only.
func (k *Kernel) SetGrantLeakForTest(v bool) {
	k.big.Lock()
	defer k.big.Unlock()
	k.grantLeak = v
}

// unblockForTest force-wakes a blocked thread, unlinking it from its
// endpoint queue and dropping any in-flight message references. Only
// tests use it (the simulation has no timer to time out rendezvous).
func (k *Kernel) unblockForTest(tid pm.Ptr) {
	k.big.Lock()
	defer k.big.Unlock()
	t, okk := k.PM.TryThrd(tid)
	if !okk || (t.State != pm.ThreadBlockedSend && t.State != pm.ThreadBlockedRecv) {
		return
	}
	k.unlinkFromEndpoint(tid, t)
	k.PM.Wake(tid, ErrEndpointDead)
}
