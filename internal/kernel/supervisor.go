package kernel

import (
	"fmt"
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
)

// Driver supervision. Atmosphere's core claim (§1) is that an untrusted
// user-space driver can fail without taking the system down: the kernel
// confines it, and a trusted supervisor process tears down the wedged
// driver container and starts a fresh one. This file is that
// supervisor's kernel-side logic: a heartbeat watchdog over registered
// driver containers, bounded teardown through SysKillContainerBounded
// (so the big lock is never held for unbounded time even during
// recovery), and a respawn callback that rebuilds the driver.
//
// Time is the machine's aggregate cycle count — deterministic, advancing
// exactly when simulated work happens, so a wedged driver (one that has
// stopped charging cycles for completions) is detected identically on
// every run with the same seed.

// SupervisorEvent identifies one recovery action taken by Check.
type SupervisorEvent struct {
	Name     string // registered driver name
	Restarts uint64 // restart count after this event
	AtCycles uint64 // machine total cycles when the timeout fired
}

// SupervisorStats counts watchdog activity.
type SupervisorStats struct {
	Heartbeats uint64 // beats recorded
	Checks     uint64 // watchdog sweeps
	Timeouts   uint64 // heartbeat deadlines missed
	KillRounds uint64 // bounded-kill invocations issued
	Restarts   uint64 // successful respawns
	Failures   uint64 // respawn attempts that errored
}

// watch is one supervised driver container.
type watch struct {
	cntr     pm.Ptr
	lastBeat uint64
	restarts uint64
	respawn  func() (pm.Ptr, error)
}

// Supervisor watches driver heartbeats and restarts wedged drivers. It
// runs in the context of a trusted thread (Tid) that is an ancestor of
// every supervised container — the same authority structure §3 uses for
// container management.
type Supervisor struct {
	K   *Kernel
	Tid pm.Ptr // supervisor thread (root/init), issues the kill syscalls

	// HeartbeatTimeout is the cycle budget between beats before a driver
	// is declared wedged.
	HeartbeatTimeout uint64
	// KillBudget is the work-unit budget per bounded-kill invocation.
	KillBudget int
	// MaxKillRounds bounds the teardown loop of one recovery (a huge
	// container still tears down; a kernel bug cannot spin forever).
	MaxKillRounds int

	watches map[string]*watch
	Stats   SupervisorStats

	// OnStep, when set, runs after every bounded-kill invocation — the
	// verification hook that checks invariants on each intermediate
	// teardown state.
	OnStep func() error
}

// NewSupervisor builds a supervisor with the given watchdog timeout.
// When the kernel has a metrics registry attached, the supervisor's
// counters are published as live gauges under "supervisor.*".
func NewSupervisor(k *Kernel, tid pm.Ptr, timeout uint64) *Supervisor {
	s := &Supervisor{
		K: k, Tid: tid,
		HeartbeatTimeout: timeout,
		KillBudget:       8,
		MaxKillRounds:    100_000,
		watches:          make(map[string]*watch),
	}
	if m := k.Metrics(); m != nil {
		m.Gauge("supervisor.heartbeats", func() uint64 { return s.Stats.Heartbeats })
		m.Gauge("supervisor.checks", func() uint64 { return s.Stats.Checks })
		m.Gauge("supervisor.timeouts", func() uint64 { return s.Stats.Timeouts })
		m.Gauge("supervisor.kill_rounds", func() uint64 { return s.Stats.KillRounds })
		m.Gauge("supervisor.restarts", func() uint64 { return s.Stats.Restarts })
		m.Gauge("supervisor.failures", func() uint64 { return s.Stats.Failures })
	}
	return s
}

// Register begins supervising a driver container. respawn must rebuild
// the driver (new container, process, thread, device setup) and return
// the new container; it runs with the old container fully reclaimed.
func (s *Supervisor) Register(name string, cntr pm.Ptr, respawn func() (pm.Ptr, error)) {
	s.watches[name] = &watch{
		cntr:     cntr,
		lastBeat: s.K.Machine.TotalCycles(),
		respawn:  respawn,
	}
}

// Heartbeat records liveness for a driver. Drivers beat after each
// completed batch; a driver stuck in a poll loop that never completes
// stops beating even though it is burning cycles.
func (s *Supervisor) Heartbeat(name string) {
	if w, ok := s.watches[name]; ok {
		w.lastBeat = s.K.Machine.TotalCycles()
		s.Stats.Heartbeats++
	}
}

// Restarts returns how many times a driver has been restarted.
func (s *Supervisor) Restarts(name string) uint64 {
	if w, ok := s.watches[name]; ok {
		return w.restarts
	}
	return 0
}

// Check sweeps every watch, recovering drivers whose heartbeat deadline
// passed. Names are visited in sorted order so recovery order is
// deterministic. Returns the recovery events performed.
func (s *Supervisor) Check(core int) ([]SupervisorEvent, error) {
	s.Stats.Checks++
	now := s.K.Machine.TotalCycles()
	names := make([]string, 0, len(s.watches))
	for n := range s.watches {
		names = append(names, n)
	}
	sort.Strings(names)
	var events []SupervisorEvent
	for _, name := range names {
		w := s.watches[name]
		if now-w.lastBeat <= s.HeartbeatTimeout {
			continue
		}
		s.Stats.Timeouts++
		s.obsInstant(core, "supervisor.timeout", now-w.lastBeat)
		if err := s.recover(core, name, w); err != nil {
			return events, err
		}
		events = append(events, SupervisorEvent{
			Name: name, Restarts: w.restarts, AtCycles: now,
		})
	}
	return events, nil
}

// recover tears the wedged container down with bounded kill invocations
// and respawns the driver.
func (s *Supervisor) recover(core int, name string, w *watch) error {
	for round := 0; ; round++ {
		if round >= s.MaxKillRounds {
			return fmt.Errorf("kernel: supervisor: %s teardown exceeded %d rounds", name, s.MaxKillRounds)
		}
		s.Stats.KillRounds++
		r := s.K.SysKillContainerBounded(core, s.Tid, w.cntr, s.KillBudget)
		if s.OnStep != nil {
			if err := s.OnStep(); err != nil {
				return fmt.Errorf("kernel: supervisor: invariant violated mid-teardown: %w", err)
			}
		}
		if r.Errno == OK {
			break
		}
		if r.Errno != EAGAIN {
			return fmt.Errorf("kernel: supervisor: kill %s: %v", name, r.Errno)
		}
		// Yield-equivalent pause between invocations: other work runs
		// while the teardown is in progress.
		clk := s.K.Machine.Core(core).Clock
		base := clk.Cycles()
		clk.Charge(hw.CostContextSwitch)
		if l := s.K.Ledger(); l != nil {
			// The pause is supervisor work: bill it to the supervisor
			// thread's own container, not the victim.
			if st, ok := s.K.PM.TryThrd(s.Tid); ok {
				l.ChargeCycles(st.OwningCntr, hw.CostContextSwitch)
			}
		}
		if t := s.K.Tracer(); t != nil {
			tr := t.Track(core, CoreName(core), "supervisor")
			t.Span(tr, t.Name("supervisor.pause"), base, clk.Cycles())
		}
	}
	cntr, err := w.respawn()
	if err != nil {
		s.Stats.Failures++
		return fmt.Errorf("kernel: supervisor: respawn %s: %w", name, err)
	}
	w.cntr = cntr
	w.restarts++
	w.lastBeat = s.K.Machine.TotalCycles()
	s.Stats.Restarts++
	s.obsInstant(core, "supervisor.restart", w.restarts)
	return nil
}

// obsInstant emits a supervisor marker on core's supervisor track (the
// core's own timeline, like every other per-core track).
func (s *Supervisor) obsInstant(core int, name string, arg uint64) {
	t := s.K.Tracer()
	if t == nil {
		return
	}
	tr := t.Track(core, CoreName(core), "supervisor")
	t.Instant(tr, t.Name(name), s.K.Machine.Core(core).Clock.Cycles(), arg)
}
