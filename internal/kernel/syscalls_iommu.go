package kernel

import (
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/pm"
)

// IOMMU syscalls (§3, §5): a process can create one DMA domain, map its
// own pages into it, and attach devices. DMA-mapped pages hold an extra
// reference so a device's view can never dangle, and the domain's
// translation-table pages are charged to the container like any other
// kernel memory.

func iommuDomainID(v uint64) iommu.DomainID { return iommu.DomainID(v) }

// SysIommuCreateDomain creates the caller process's DMA domain.
func (k *Kernel) SysIommuCreateDomain(core int, tid pm.Ptr) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("iommu_create", tid, fail(EINVAL))
	}
	proc := k.PM.Proc(t.OwningProc)
	if proc.IOMMUDomain != 0 {
		return k.post("iommu_create", tid, fail(EALREADY))
	}
	// One page for the domain's translation root.
	if err := k.PM.ChargePages(proc.Owner, 1); err != nil {
		return k.post("iommu_create", tid, fail(EQUOTA))
	}
	d, err := k.IOMMU.CreateDomain()
	if err != nil {
		k.PM.CreditPages(proc.Owner, 1)
		return k.post("iommu_create", tid, fail(errnoOf(err)))
	}
	proc.IOMMUDomain = d.ID
	return k.post("iommu_create", tid, ok(uint64(d.ID)))
}

// SysIommuMap exposes the page backing va in the caller's address space
// to the caller's DMA domain at the same address (identity iova = va),
// pinning the page with an extra reference.
func (k *Kernel) SysIommuMap(core int, tid pm.Ptr, va hw.VirtAddr) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("iommu_map", tid, fail(EINVAL))
	}
	proc := k.PM.Proc(t.OwningProc)
	if proc.IOMMUDomain == 0 {
		return k.post("iommu_map", tid, fail(ENOENT))
	}
	e, covered := proc.PageTable.Lookup(va)
	if !covered || e.Size != hw.Size4K {
		return k.post("iommu_map", tid, fail(ENOENT))
	}
	d, err := k.IOMMU.Domain(proc.IOMMUDomain)
	if err != nil {
		return k.post("iommu_map", tid, fail(errnoOf(err)))
	}
	nodesBefore := d.Table.PageClosure().Len()
	if err := k.Alloc.IncRef(e.Phys); err != nil {
		return k.post("iommu_map", tid, fail(EINVAL))
	}
	if err := k.IOMMU.Map(proc.IOMMUDomain, va, e.Phys); err != nil {
		if _, derr := k.Alloc.DecRef(e.Phys); derr != nil {
			panic(derr)
		}
		return k.post("iommu_map", tid, fail(errnoOf(err)))
	}
	nodesAfter := d.Table.PageClosure().Len()
	if nodesAfter > nodesBefore {
		if err := k.PM.ChargePages(proc.Owner, uint64(nodesAfter-nodesBefore)); err != nil {
			// Roll the mapping back; prune the fresh nodes.
			if uerr := k.IOMMU.Unmap(proc.IOMMUDomain, va); uerr != nil {
				panic(uerr)
			}
			if _, derr := k.Alloc.DecRef(e.Phys); derr != nil {
				panic(derr)
			}
			d.Table.PruneEmpty()
			now := d.Table.PageClosure().Len()
			if now < nodesBefore {
				k.PM.CreditPages(proc.Owner, uint64(nodesBefore-now))
			}
			return k.post("iommu_map", tid, fail(EQUOTA))
		}
	}
	return k.post("iommu_map", tid, ok())
}

// SysIommuUnmap removes a DMA mapping and unpins the page.
func (k *Kernel) SysIommuUnmap(core int, tid pm.Ptr, va hw.VirtAddr) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("iommu_unmap", tid, fail(EINVAL))
	}
	proc := k.PM.Proc(t.OwningProc)
	if proc.IOMMUDomain == 0 {
		return k.post("iommu_unmap", tid, fail(ENOENT))
	}
	d, err := k.IOMMU.Domain(proc.IOMMUDomain)
	if err != nil {
		return k.post("iommu_unmap", tid, fail(errnoOf(err)))
	}
	e, covered := d.Table.Lookup(va)
	if !covered {
		return k.post("iommu_unmap", tid, fail(ENOENT))
	}
	if err := k.IOMMU.Unmap(proc.IOMMUDomain, va); err != nil {
		return k.post("iommu_unmap", tid, fail(errnoOf(err)))
	}
	if _, err := k.Alloc.DecRef(e.Phys); err != nil {
		panic(err)
	}
	return k.post("iommu_unmap", tid, ok())
}

// SysIommuAttach binds a device to the caller process's DMA domain.
func (k *Kernel) SysIommuAttach(core int, tid pm.Ptr, dev iommu.DeviceID) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("iommu_attach", tid, fail(EINVAL))
	}
	proc := k.PM.Proc(t.OwningProc)
	if proc.IOMMUDomain == 0 {
		return k.post("iommu_attach", tid, fail(ENOENT))
	}
	if err := k.IOMMU.AttachDevice(dev, proc.IOMMUDomain); err != nil {
		return k.post("iommu_attach", tid, fail(errnoOf(err)))
	}
	return k.post("iommu_attach", tid, ok())
}

// destroyIOMMUDomain tears down a dying process's DMA domain: detach
// devices, unpin every mapped page, credit the table pages, destroy.
func (k *Kernel) destroyIOMMUDomain(proc *pm.Process) error {
	k.ledgerCtx(proc.Owner) // DMA refs and table pages are the victim's
	d, err := k.IOMMU.Domain(proc.IOMMUDomain)
	if err != nil {
		return err
	}
	devs := make([]iommu.DeviceID, 0, len(d.Devices))
	for dev := range d.Devices {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	for _, dev := range devs {
		if err := k.IOMMU.DetachDevice(dev); err != nil {
			return err
		}
	}
	space := d.Table.AddressSpace()
	vas := make([]hw.VirtAddr, 0, len(space))
	for va := range space {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	for _, va := range vas {
		if _, err := k.Alloc.DecRef(space[va].Phys); err != nil {
			return err
		}
	}
	nodes := d.Table.PageClosure().Len()
	if err := k.IOMMU.DestroyDomain(proc.IOMMUDomain); err != nil {
		return err
	}
	k.PM.CreditPages(proc.Owner, uint64(nodes))
	proc.IOMMUDomain = 0
	return nil
}
