package kernel

import (
	"strings"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// bootLedger boots a kernel with tracer, metrics, and ledger attached.
func bootLedger(t *testing.T) (*Kernel, pm.Ptr, *account.Ledger) {
	t.Helper()
	k, init := boot(t)
	k.AttachObs(obs.NewTracer(1<<12), obs.NewRegistry())
	l := account.NewLedger()
	k.AttachLedger(l)
	return k, init, l
}

func auditOK(t *testing.T, l *account.Ledger) {
	t.Helper()
	if err := l.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestLedgerTracksSyscalls walks the ledger through the container
// lifecycle: creation in a target container, mmap, an IPC page grant
// crossing containers, and revocation — auditing the closure invariant
// at every step.
func TestLedgerTracksSyscalls(t *testing.T) {
	k, init, l := bootLedger(t)
	auditOK(t, l) // boot state seeds clean

	rA := mustOK(t, k.SysNewContainer(0, init, 60, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	l.NameContainer(a, "A")
	if got := l.ContainerPages(a); got != 1 {
		t.Fatalf("A pages after new_container = %d, want 1 (its object page)", got)
	}
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	// container + process + PML4 + thread object pages.
	if got := l.ContainerPages(a); got != 4 {
		t.Fatalf("A pages after proc+thread = %d, want 4", got)
	}
	auditOK(t, l)

	// A maps 4 user pages; 3 page-table nodes materialize.
	mustOK(t, k.SysMmap(0, tidA, 0x400000, 4, hw.Size4K, pt.RW))
	if got := l.ContainerPages(a); got != 4+4+3 {
		t.Fatalf("A pages after mmap = %d, want 11", got)
	}
	if l.ContainerCycles(a) == 0 {
		t.Fatal("A's syscall cycles were not billed to A")
	}
	auditOK(t, l)

	// A grants one page to the root-owned init thread over IPC.
	re := mustOK(t, k.SysNewEndpoint(0, init, 0))
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(tidA).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	rootBefore := l.ContainerPages(k.PM.RootContainer)
	if r := k.SysRecv(0, init, 0, RecvArgs{PageVA: 0x7000, EdptSlot: -1}); r.Errno != EWOULDBLOCK {
		t.Fatalf("recv: %v", r.Errno)
	}
	mustOK(t, k.SysSend(0, tidA, 0, SendArgs{SendPage: true, PageVA: 0x400000}))
	// Root gained the mapping ref (+1 user page +1 PT node for 0x7000's
	// table walk is possible; at minimum the user page arrived).
	if got := l.ContainerPages(k.PM.RootContainer); got <= rootBefore {
		t.Fatalf("root pages did not grow across IPC grant: %d -> %d", rootBefore, got)
	}
	if got := l.ContainerPages(account.InFlight); got != 0 {
		t.Fatalf("in-flight pages after delivery = %d, want 0", got)
	}
	auditOK(t, l)

	// Revoke A wholesale: its closure must drain to zero while the
	// shared page survives under root's ref.
	mustOK(t, k.SysKillContainer(0, init, a))
	if got := l.ContainerPages(a); got != 0 {
		t.Fatalf("A pages after kill = %d, want 0", got)
	}
	auditOK(t, l)
}

// TestLedgerInFlightDropOnKill parks a page reference on the InFlight
// pseudo-container via a blocked sender, then kills the sender's
// container: the reference must drain without leaking.
func TestLedgerInFlightDropOnKill(t *testing.T) {
	k, init, l := bootLedger(t)
	rA := mustOK(t, k.SysNewContainer(0, init, 60, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysMmap(0, tidA, 0x400000, 1, hw.Size4K, pt.RW))
	// Root-owned endpoint shared into A; A blocks sending a page.
	re := mustOK(t, k.SysNewEndpoint(0, init, 2))
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(tidA).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	if r := k.SysSend(0, tidA, 0, SendArgs{SendPage: true, PageVA: 0x400000}); r.Errno != EWOULDBLOCK {
		t.Fatalf("send should block: %v", r.Errno)
	}
	if got := l.ContainerPages(account.InFlight); got != 1 {
		t.Fatalf("in-flight pages while blocked = %d, want 1", got)
	}
	auditOK(t, l)
	mustOK(t, k.SysKillContainer(0, init, a))
	if got := l.ContainerPages(account.InFlight); got != 0 {
		t.Fatalf("in-flight pages after kill = %d, want 0", got)
	}
	if got := l.ContainerPages(a); got != 0 {
		t.Fatalf("A pages after kill = %d, want 0", got)
	}
	if got := l.Anomalies(); got != 0 {
		t.Fatalf("anomalies = %d, want 0", got)
	}
	auditOK(t, l)
}

// TestLedgerMetricsThroughKernel checks the registry surface: ledger
// gauges and the tracer ring gauges land in the metrics dump.
func TestLedgerMetricsThroughKernel(t *testing.T) {
	k, init, l := bootLedger(t)
	mustOK(t, k.SysMmap(0, init, 0x400000, 2, hw.Size4K, pt.RW))
	l.RegisterContainerMetrics(k.Metrics(), "root", k.PM.RootContainer)
	var sb strings.Builder
	if err := k.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"account.pages.live",
		"account.audit_failures 0",
		"account.cntr.root.pages",
		"trace.dropped 0",
		"trace.capacity 4096",
		"trace.events",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
}

// TestLedgerIterativeKill drives the bounded-kill path with a ledger
// attached: every intermediate state must still satisfy the closure
// audit, and the victim's closure must reach zero.
func TestLedgerIterativeKill(t *testing.T) {
	k, init, l := bootLedger(t)
	rA := mustOK(t, k.SysNewContainer(0, init, 80, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysMmap(0, tidA, 0x400000, 8, hw.Size4K, pt.RW))
	auditOK(t, l)
	for rounds := 0; ; rounds++ {
		if rounds > 10000 {
			t.Fatal("bounded kill did not converge")
		}
		r := k.SysKillContainerBounded(0, init, a, 2)
		auditOK(t, l) // closure invariant holds mid-teardown
		if r.Errno == OK {
			break
		}
		if r.Errno != EAGAIN {
			t.Fatalf("bounded kill: %v", r.Errno)
		}
	}
	if got := l.ContainerPages(a); got != 0 {
		t.Fatalf("A pages after iterative kill = %d, want 0", got)
	}
}
