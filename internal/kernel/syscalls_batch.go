package kernel

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/shmring"
)

// Syscall batching (ROADMAP item 3): io_uring-style submission and
// completion rings. A thread encodes N syscalls as SQE frames into a
// submission ring, rings one doorbell (SysBatch), and the kernel pays
// the entry/dispatch/exit trampoline ONCE for the whole batch. Each
// drained op still resolves and acquires its own lock plan (shard.go)
// — batching amortizes the crossing, not the serialization — and posts
// its result as one CQE. While a core drains a batch, its flag in
// Kernel.batchCore makes the funnel price each inner op at
// CostBatchDispatch + CostBigLock with no exit cost.
//
// A drain stops early, leaving the remaining frames queued for the
// next doorbell, when:
//   - the submission ring is empty (a stale doorbell is not an error)
//     or ends in a truncated frame (the producer is mid-encode);
//   - the completion ring is full (backpressure: an op never runs if
//     its completion cannot post);
//   - an op blocked, killed, or froze the caller (a blocked thread
//     cannot execute user code, so it cannot drain its own ring);
//   - max ops were drained.
//
// A malformed header aborts the batch with EINVAL after consuming the
// bad header. In every case Vals[0] reports how many ops completed.

// Batch opcodes (SQE.Op).
const (
	// BopNop dispatches and completes without touching kernel state —
	// the pure measure of amortized per-op crossing cost.
	BopNop = iota
	// BopMmap: args[0]=va, args[1]=count. Maps count fresh 4 KiB RW
	// pages at va (the batched hot path; superpages take the slow path).
	BopMmap
	// BopMunmap: args[0]=va, args[1]=count (4 KiB granularity).
	BopMunmap
	// BopSend: args[0]=slot, args[1..2]=regs 0..1, args[3]=grant va
	// (0 = scalars only; nonzero grants the page mapped there),
	// args[4..5]=regs 2..3 — the full native 4-register payload. May
	// block the caller, stopping the drain.
	BopSend
	// BopSendAsync: same coding as BopSend; never blocks (EAGAIN on a
	// full endpoint buffer).
	BopSendAsync
	// BopCall: same coding as BopSend; requires a parked server and
	// blocks the caller for the reply, stopping the drain.
	BopCall
	// BopRecv: args[0]=slot, args[1]=recv va for an incoming page,
	// args[2]=edpt slot + 1 (0 = first free). Blocks when nothing is
	// buffered or queued, stopping the drain.
	BopRecv
	// BopYield rotates the caller's core.
	BopYield
)

// maxBatch caps one doorbell's drain; the remaining frames stay queued.
const maxBatch = 4096

// SysBatch is the doorbell: sqVA and cqVA name the submission and
// completion ring pages in the caller's address space. The rings are
// ordinary shmring pages, so producer state (head/tail) lives in shared
// memory and partial batches survive across doorbells.
func (k *Kernel) SysBatch(core int, tid pm.Ptr, sqVA, cqVA hw.VirtAddr, max int) Ret {
	cclk := &k.Machine.Core(core).Clock
	sqPhys, sok := k.ringPage(tid, sqVA)
	cqPhys, cok := k.ringPage(tid, cqVA)
	if !sok || !cok || sqPhys == cqPhys {
		cclk.Charge(hw.CostSyscallEntry + hw.CostSyscallDispatch + hw.CostSyscallExit)
		return k.postBatch(tid, fail(EINVAL))
	}
	sq := shmring.New(k.Machine.Mem, cclk, sqPhys, shmring.SlotsPerPage())
	cq := shmring.New(k.Machine.Mem, cclk, cqPhys, shmring.SlotsPerPage())
	return k.SysBatchRings(core, tid, sq, cq, max)
}

// ringPage resolves one ring page: a page-aligned va mapped in the
// caller's address space at 4 KiB granularity.
func (k *Kernel) ringPage(tid pm.Ptr, va hw.VirtAddr) (hw.PhysAddr, bool) {
	k.big.Lock()
	defer k.big.Unlock()
	t, okk := k.PM.TryThrd(tid)
	if !okk || va&hw.VirtAddr(hw.PageSize4K-1) != 0 {
		return 0, false
	}
	e, covered := k.PM.Proc(t.OwningProc).PageTable.Lookup(va)
	if !covered || e.Size != hw.Size4K {
		return 0, false
	}
	return e.Phys, true
}

// SysBatchRings drains up to max submissions from sq, posting one CQE
// per op to cq. It is the kernel-internal entry SysBatch delegates to;
// the model checker drives it directly over scratch rings. Vals[0] is
// the number of ops drained.
func (k *Kernel) SysBatchRings(core int, tid pm.Ptr, sq, cq *shmring.Ring, max int) Ret {
	cclk := &k.Machine.Core(core).Clock
	// The whole batch pays the trampoline once.
	cclk.Charge(hw.CostSyscallEntry + hw.CostSyscallDispatch + hw.CostBigLock)
	if !k.batchBegin(core, tid) {
		cclk.Charge(hw.CostSyscallExit)
		return k.postBatch(tid, fail(EINVAL))
	}
	if max <= 0 || max > maxBatch {
		max = maxBatch
	}
	drained := 0
	status := OK
	for drained < max {
		if !k.batchCallerRunnable(tid) {
			break // the previous op blocked/killed/froze the caller
		}
		if cq.Cap()-cq.Len() < 1 {
			break // completion backpressure
		}
		sqe, derr := shmring.DecodeSQE(sq)
		if derr != nil {
			if derr == shmring.ErrMalformed {
				status = EINVAL
			}
			break // empty, truncated, or malformed: stop draining
		}
		ret := k.batchDispatch(core, tid, sqe)
		cqe := shmring.CQE{Op: sqe.Op, Errno: uint8(ret.Errno), Token: sqe.Token, Val: ret.Vals[0]}
		if err := shmring.PushCQE(cq, cqe); err != nil {
			panic(err) // free space checked above
		}
		drained++
	}
	cclk.Charge(hw.CostSyscallExit)
	return k.batchEnd(core, tid, Ret{Errno: status, Vals: [4]uint64{uint64(drained)}})
}

// batchDispatch decodes one submission into the corresponding syscall.
// Each op goes through the normal funnel (with the trampoline
// suppressed by the batch flag), so lock plans, contention charging,
// observability, and the verifier's PostSyscall hook all see it as an
// ordinary syscall.
func (k *Kernel) batchDispatch(core int, tid pm.Ptr, s shmring.SQE) Ret {
	switch s.Op {
	case BopNop:
		k.Machine.Core(core).Clock.Charge(hw.CostBatchDispatch)
		return ok()
	case BopMmap:
		return k.SysMmap(core, tid, hw.VirtAddr(s.Args[0]), int(s.Args[1]), hw.Size4K, pt.RW)
	case BopMunmap:
		return k.SysMunmap(core, tid, hw.VirtAddr(s.Args[0]), int(s.Args[1]), hw.Size4K)
	case BopSend, BopSendAsync, BopCall:
		args := SendArgs{Regs: [4]uint64{s.Args[1], s.Args[2], s.Args[4], s.Args[5]}}
		if va := hw.VirtAddr(s.Args[3]); va != 0 {
			args.GrantPage = true
			args.PageVA = va
		}
		slot := int(s.Args[0])
		switch s.Op {
		case BopSend:
			return k.SysSend(core, tid, slot, args)
		case BopSendAsync:
			return k.SysSendAsync(core, tid, slot, args)
		default:
			return k.SysCall(core, tid, slot, args)
		}
	case BopRecv:
		return k.SysRecv(core, tid, int(s.Args[0]),
			RecvArgs{PageVA: hw.VirtAddr(s.Args[1]), EdptSlot: int(s.Args[2]) - 1})
	case BopYield:
		return k.SysYield(core, tid)
	default:
		return fail(EINVAL)
	}
}

// batchBegin validates the caller and raises the core's batch flag. It
// mirrors callerThread's checks without touching the ledger context —
// the batch wrapper is not a funnel entry; each drained op sets its own
// attribution.
func (k *Kernel) batchBegin(core int, tid pm.Ptr) bool {
	k.big.Lock()
	defer k.big.Unlock()
	if core < 0 || core >= len(k.batchCore) || k.batchCore[core] {
		return false
	}
	t, okk := k.PM.TryThrd(tid)
	if !okk || t.State == pm.ThreadExited ||
		t.State == pm.ThreadBlockedSend || t.State == pm.ThreadBlockedRecv ||
		k.frozen(t) {
		return false
	}
	k.batchCore[core] = true
	return true
}

// batchCallerRunnable reports whether the caller can still drain its
// ring: alive, not blocked by a previous op, not frozen by a kill.
func (k *Kernel) batchCallerRunnable(tid pm.Ptr) bool {
	k.big.Lock()
	defer k.big.Unlock()
	t, okk := k.PM.TryThrd(tid)
	return okk && (t.State == pm.ThreadRunnable || t.State == pm.ThreadRunning) &&
		!k.frozen(t)
}

// batchEnd lowers the core's batch flag and posts the batch result.
func (k *Kernel) batchEnd(core int, tid pm.Ptr, ret Ret) Ret {
	k.big.Lock()
	defer k.big.Unlock()
	k.batchCore[core] = false
	return k.post("batch", tid, ret)
}

// postBatch posts a batch result without a raised flag (refused entry).
func (k *Kernel) postBatch(tid pm.Ptr, ret Ret) Ret {
	k.big.Lock()
	defer k.big.Unlock()
	return k.post("batch", tid, ret)
}
