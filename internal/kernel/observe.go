package kernel

import (
	"fmt"

	"atmosphere/internal/obs"
	"atmosphere/internal/pm"
)

// Kernel-side observability (internal/obs). Tracepoints ride the
// syscall funnel: enterWith stamps the entry cycle, post captures the
// syscall name and errno, and the leave closure emits one span on the
// invoking core's "kernel" track covering exactly the cycles the
// syscall charged — so summing spans reproduces the per-core clock.
// RaiseIRQ gets its own "irq" track. Everything here only reads clocks;
// attaching observability never changes a charged cycle (the bench
// guard in internal/bench asserts Table 3 is bit-identical with and
// without it).

// kobs is the kernel's per-attach observability state, guarded by the
// big lock like everything else in the kernel.
type kobs struct {
	trace   *obs.Tracer
	metrics *obs.Registry

	ktracks []obs.TrackID // per-core "kernel" span track
	itracks []obs.TrackID // per-core "irq" span track

	nKernel   obs.NameID // fallback span name for unnamed entries
	nIRQ      obs.NameID
	nDirect   obs.NameID // direct-switch instant
	nCtx      obs.NameID // context-switch instant
	nLockWait obs.NameID // big-lock contention span

	cDirect   *obs.Counter
	cCtx      *obs.Counter
	cIRQ      *obs.Counter
	cIRQDrop  *obs.Counter
	cLockWait *obs.Counter
	hLockWait *obs.Histogram

	// Per-syscall counters/histograms, interned on first use.
	sysStats map[string]*sysStat

	// In-flight syscall state: name/errno set by post, start is the
	// kernel clock at entry, base the invoking core's clock at entry
	// (unchanged until leave charges the delta). No nesting: the big
	// lock serializes entries.
	curName  string
	curErrno Errno
	curStart uint64
	curBase  uint64
	curCore  int
}

// sysStat is one syscall's metric block.
type sysStat struct {
	count  *obs.Counter
	errs   *obs.Counter
	cycles *obs.Histogram
}

// CoreName renders the canonical pid name of a core's tracks.
func CoreName(core int) string { return fmt.Sprintf("core%d", core) }

// AttachObs wires a tracer and/or metrics registry into the kernel.
// Either may be nil. Call before issuing syscalls; re-attaching resets
// the kernel-side interning state (the tracer itself keeps its ring).
func (k *Kernel) AttachObs(t *obs.Tracer, m *obs.Registry) {
	k.big.Lock()
	defer k.big.Unlock()
	if t == nil && m == nil {
		k.obs = nil
		return
	}
	o := &kobs{trace: t, metrics: m}
	if t != nil {
		for c := 0; c < k.Machine.NumCores(); c++ {
			name := CoreName(c)
			o.ktracks = append(o.ktracks, t.Track(c, name, "kernel"))
			o.itracks = append(o.itracks, t.Track(c, name, "irq"))
		}
		o.nKernel = t.Name("kernel")
		o.nIRQ = t.Name("irq")
		o.nDirect = t.Name("direct-switch")
		o.nCtx = t.Name("ctx-switch")
		o.nLockWait = t.Name("lock.wait")
	}
	if m != nil {
		o.cDirect = m.Counter("sched.direct_switch")
		o.cCtx = m.Counter("sched.ctx_switch")
		o.cIRQ = m.Counter("irq.raised")
		o.cIRQDrop = m.Counter("irq.dropped")
		o.cLockWait = m.Counter("lock.wait.count")
		o.hLockWait = m.Histogram("lock.wait.cycles", nil)
		m.Gauge("sched.steals", k.PM.Steals)
		o.sysStats = make(map[string]*sysStat)
		if t != nil {
			// Ring health: drop-oldest truncation is silent on the trace
			// itself, so surface it in the metrics dump.
			m.Gauge("trace.dropped", t.Dropped)
			m.Gauge("trace.events", func() uint64 { return uint64(t.Len()) })
			m.Gauge("trace.capacity", func() uint64 { return uint64(t.Cap()) })
		}
	}
	k.obs = o
}

// Tracer returns the attached tracer (nil when detached); subsystems
// living inside the kernel's machine (drivers, supervisor) trace
// through it.
func (k *Kernel) Tracer() *obs.Tracer {
	if k.obs == nil {
		return nil
	}
	return k.obs.trace
}

// Metrics returns the attached metrics registry (nil when detached).
func (k *Kernel) Metrics() *obs.Registry {
	if k.obs == nil {
		return nil
	}
	return k.obs.metrics
}

// obsEnter stamps the in-flight syscall state at entry (big lock held).
func (o *kobs) enter(k *Kernel, core int, kstart uint64) {
	o.curName = ""
	o.curErrno = OK
	o.curStart = kstart
	o.curBase = k.Machine.Core(core).Clock.Cycles()
	o.curCore = core
}

// obsPost captures the syscall identity; post calls it on every return
// path before the deferred leave runs.
func (o *kobs) post(name string, errno Errno) {
	o.curName = name
	o.curErrno = errno
}

// obsLeave emits the syscall's span and metrics; called from the leave
// closure with the cycles the syscall charged, before the big lock
// drops. The span sits on the invoking core's timeline starting at the
// core clock reading the delta is about to be charged onto.
func (o *kobs) leave(delta uint64) {
	name := o.curName
	if o.trace != nil {
		id := o.nKernel
		if name != "" {
			id = o.trace.Name(name)
		}
		o.trace.SpanArg(o.ktracks[o.curCore], id, o.curBase, o.curBase+delta, uint64(o.curErrno))
	}
	if o.metrics != nil && name != "" {
		st, ok := o.sysStats[name]
		if !ok {
			st = &sysStat{
				count:  o.metrics.Counter("syscall." + name + ".count"),
				errs:   o.metrics.Counter("syscall." + name + ".errors"),
				cycles: o.metrics.Histogram("syscall."+name+".cycles", nil),
			}
			o.sysStats[name] = st
		}
		st.count.Inc()
		if o.curErrno != OK && o.curErrno != EWOULDBLOCK {
			st.errs.Inc()
		}
		st.cycles.Observe(delta)
	}
}

// noteSwitch records a scheduler handoff inside the current syscall:
// direct (IPC fastpath handoff to the partner thread) or a full context
// switch. The instant lands mid-span at the core-timeline position
// corresponding to the kernel cycles charged so far.
func (k *Kernel) noteSwitch(direct bool, to pm.Ptr) {
	o := k.obs
	if o == nil {
		return
	}
	if o.trace != nil {
		ts := o.curBase + (k.kclock.Cycles() - o.curStart)
		name := o.nCtx
		if direct {
			name = o.nDirect
		}
		o.trace.Instant(o.ktracks[o.curCore], name, ts, uint64(to))
	}
	if direct {
		o.cDirect.Inc()
	} else {
		o.cCtx.Inc()
	}
}

// lockWait records one contended big-lock acquisition: a "lock.wait"
// span on the core's kernel track covering exactly the spin — [arrival,
// arrival+wait) on the core's own timeline, immediately preceding the
// syscall span the wait delayed — plus count and cycle-distribution
// metrics.
func (k *Kernel) lockWait(core int, arrival, wait uint64) {
	o := k.obs
	if o == nil {
		return
	}
	if o.trace != nil {
		o.trace.SpanArg(o.ktracks[core], o.nLockWait, arrival, arrival+wait, wait)
	}
	o.cLockWait.Inc()
	o.hLockWait.Observe(wait)
}

// noteIRQ records one dispatched interrupt as a span on the target
// core's irq track ([base, base+delta) of the core's timeline, arg =
// line), and counts it.
func (k *Kernel) noteIRQ(core, irq int, base, delta uint64) {
	o := k.obs
	if o == nil || delta == 0 {
		return // delta 0: the edge was filtered before dispatch
	}
	if o.trace != nil {
		o.trace.SpanArg(o.itracks[core], o.nIRQ, base, base+delta, uint64(irq))
	}
	o.cIRQ.Inc()
}

// noteIRQDropped counts an edge the fault filter swallowed.
func (k *Kernel) noteIRQDropped() {
	if k.obs != nil {
		k.obs.cIRQDrop.Inc()
	}
}
