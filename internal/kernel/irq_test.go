package kernel

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// irqSetup boots a kernel with a handler thread holding an endpoint in
// slot 0, bound to IRQ 9.
func irqSetup(t *testing.T) (*Kernel, pm.Ptr) {
	t.Helper()
	k, init := boot(t)
	mustOK(t, k.SysNewEndpoint(0, init, 0))
	mustOK(t, k.SysIrqRegister(0, init, 9, 0))
	return k, init
}

func TestIrqRegisterValidation(t *testing.T) {
	k, init := boot(t)
	if r := k.SysIrqRegister(0, init, 9, 0); r.Errno != EINVAL {
		t.Fatalf("register with empty slot: %v", r.Errno)
	}
	mustOK(t, k.SysNewEndpoint(0, init, 0))
	if r := k.SysIrqRegister(0, init, -1, 0); r.Errno != EINVAL {
		t.Fatalf("negative irq: %v", r.Errno)
	}
	mustOK(t, k.SysIrqRegister(0, init, 9, 0))
	if r := k.SysIrqRegister(0, init, 9, 0); r.Errno != EALREADY {
		t.Fatalf("double bind: %v", r.Errno)
	}
	// Binding holds a reference: closing the descriptor keeps the
	// endpoint alive.
	ep := k.PM.Thrd(init).Endpoints[0]
	mustOK(t, k.SysCloseEndpoint(0, init, 0))
	if _, ok := k.PM.TryEdpt(ep); !ok {
		t.Fatal("bound endpoint died with its last descriptor")
	}
}

func TestIrqWakesBlockedHandler(t *testing.T) {
	k, init := irqSetup(t)
	// A second runnable thread keeps the core busy while init waits.
	mustOK(t, k.SysNewThread(0, init, 0))
	if r := k.SysIrqWait(0, init, 9); r.Errno != EWOULDBLOCK {
		t.Fatalf("irq_wait should block: %v", r.Errno)
	}
	if k.PM.Thrd(init).State != pm.ThreadBlockedRecv {
		t.Fatal("handler not blocked")
	}
	k.RaiseIRQ(0, 9)
	ti := k.PM.Thrd(init)
	if ti.State != pm.ThreadRunnable {
		t.Fatalf("handler state after interrupt: %v", ti.State)
	}
	if ti.IPC.Msg.Regs[0] != 9 || ti.IPC.Msg.Regs[1] != 1 {
		t.Fatalf("interrupt message %v", ti.IPC.Msg.Regs)
	}
}

func TestIrqPendsWhenHandlerBusy(t *testing.T) {
	k, init := irqSetup(t)
	k.RaiseIRQ(0, 9)
	k.RaiseIRQ(0, 9)
	k.RaiseIRQ(0, 9)
	if k.PendingIRQ(9) != 3 {
		t.Fatalf("pending = %d", k.PendingIRQ(9))
	}
	r := mustOK(t, k.SysIrqWait(0, init, 9))
	if r.Vals[0] != 9 || r.Vals[1] != 3 {
		t.Fatalf("consumed %v", r.Vals)
	}
	if k.PendingIRQ(9) != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestIrqWaitRequiresBindingAndDescriptor(t *testing.T) {
	k, init := irqSetup(t)
	if r := k.SysIrqWait(0, init, 10); r.Errno != ENOENT {
		t.Fatalf("wait on unbound irq: %v", r.Errno)
	}
	// A foreign thread without the descriptor is refused.
	rt := mustOK(t, k.SysNewThread(0, init, 0))
	stranger := pm.Ptr(rt.Vals[0])
	if r := k.SysIrqWait(0, stranger, 9); r.Errno != EPERM {
		t.Fatalf("stranger wait: %v", r.Errno)
	}
	if r := k.SysIrqUnregister(0, stranger, 9); r.Errno != EPERM {
		t.Fatalf("stranger unregister: %v", r.Errno)
	}
}

func TestIrqUnregister(t *testing.T) {
	k, init := irqSetup(t)
	ep := k.PM.Thrd(init).Endpoints[0]
	mustOK(t, k.SysIrqUnregister(0, init, 9))
	if r := k.SysIrqUnregister(0, init, 9); r.Errno != ENOENT {
		t.Fatalf("double unregister: %v", r.Errno)
	}
	// The binding's reference is gone; the descriptor's remains.
	if k.PM.Edpt(ep).RefCount != 1 {
		t.Fatalf("refcount = %d", k.PM.Edpt(ep).RefCount)
	}
	// Interrupts on the unbound line are dropped.
	k.RaiseIRQ(0, 9)
	if k.PendingIRQ(9) != 0 {
		t.Fatal("unbound interrupt pended")
	}
}

func TestIrqBindingDiesWithContainer(t *testing.T) {
	k, init := boot(t)
	r := mustOK(t, k.SysNewContainer(0, init, 60, []int{0}))
	cntr := pm.Ptr(r.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, cntr))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	driver := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysNewEndpoint(0, driver, 0))
	mustOK(t, k.SysIrqRegister(0, driver, 5, 0))
	mustOK(t, k.SysKillContainer(0, init, cntr))
	if len(k.IRQBindings()) != 0 {
		t.Fatal("binding survived container kill")
	}
	// Interrupts on the orphaned line are dropped, not crashed on.
	k.RaiseIRQ(0, 5)
}

func TestIrqChargesInterruptDispatch(t *testing.T) {
	k, _ := irqSetup(t)
	before := k.Machine.Core(2).Clock.Cycles()
	k.RaiseIRQ(2, 9)
	if delta := k.Machine.Core(2).Clock.Cycles() - before; delta < hw.CostInterruptDispatch {
		t.Fatalf("interrupt charged %d cycles", delta)
	}
}

func TestMmap2MSuperpage(t *testing.T) {
	// End-to-end 2 MiB mapping through the syscall: the kernel merges
	// free 4 KiB pages on demand.
	k, init, err := Boot(hw.Config{Frames: 3 * hw.Pages4KPer2M, Cores: 1, TLBSlots: 64})
	if err != nil {
		t.Fatal(err)
	}
	usedBefore := k.PM.Cntr(k.PM.RootContainer).UsedPages
	va := hw.VirtAddr(1 << 21)
	r := k.SysMmap(0, init, va, 1, hw.Size2M, ptRW())
	if r.Errno != OK {
		t.Fatalf("2M mmap: %v", r.Errno)
	}
	// Quota charged at 512 4K-pages plus table nodes.
	used := k.PM.Cntr(k.PM.RootContainer).UsedPages
	if used < usedBefore+512 {
		t.Fatalf("2M mapping charged only %d pages", used-usedBefore)
	}
	// The MMU resolves it as one 2M translation.
	proc := k.PM.Proc(k.PM.Thrd(init).OwningProc)
	tr, okW := k.Machine.MMU.Walk(proc.PageTable.CR3(), va+0x123456)
	if !okW || tr.Size != hw.Size2M {
		t.Fatalf("walk = %+v ok=%v", tr, okW)
	}
	// Munmap returns the superpage; quota credited in full.
	if r := k.SysMunmap(0, init, va, 1, hw.Size2M); r.Errno != OK {
		t.Fatalf("2M munmap: %v", r.Errno)
	}
	if k.Alloc.FreeCount2M() != 1 {
		t.Fatal("superpage not returned to the 2M free list")
	}
}

func TestMmap2MFailsWhenFragmented(t *testing.T) {
	// A machine with no alignable free run cannot satisfy a 2M map.
	k, init, err := Boot(hw.Config{Frames: 600, Cores: 1, TLBSlots: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r := k.SysMmap(0, init, 1<<21, 1, hw.Size2M, ptRW()); r.Errno != ENOMEM {
		t.Fatalf("fragmented 2M mmap: %v", r.Errno)
	}
}

// ptRW is the common user read-write mapping permission.
func ptRW() pt.Perm { return pt.RW }
