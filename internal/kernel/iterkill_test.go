package kernel

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
)

// buildVictim creates a container with nested children, processes,
// threads, mappings, and an endpoint — a subtree with every kind of
// teardown work.
func buildVictim(t *testing.T, k *Kernel, init pm.Ptr) (cntr pm.Ptr, victimThread pm.Ptr) {
	t.Helper()
	r := mustOK(t, k.SysNewContainer(0, init, 300, []int{0}))
	cntr = pm.Ptr(r.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, cntr))
	proc := pm.Ptr(rp.Vals[0])
	rt := mustOK(t, k.SysNewThreadIn(0, init, proc, 0))
	victimThread = pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysMmap(0, victimThread, 0x400000, 10, hw.Size4K, ptRW()))
	mustOK(t, k.SysNewEndpoint(0, victimThread, 0))
	mustOK(t, k.SysIommuCreateDomain(0, victimThread))
	mustOK(t, k.SysIommuMap(0, victimThread, 0x400000))
	// A nested child container with its own process.
	rc := mustOK(t, k.SysNewContainer(0, victimThread, 40, []int{0}))
	rcp := mustOK(t, k.SysNewProcessIn(0, victimThread, pm.Ptr(rc.Vals[0])))
	mustOK(t, k.SysNewThreadIn(0, victimThread, pm.Ptr(rcp.Vals[0]), 0))
	return cntr, victimThread
}

func TestIterativeKillCompletes(t *testing.T) {
	k, init := boot(t)
	free := k.Alloc.FreeCount4K()
	rootUsed := k.PM.Cntr(k.PM.RootContainer).UsedPages
	cntr, _ := buildVictim(t, k, init)
	steps := 0
	for {
		r := k.SysKillContainerBounded(0, init, cntr, 3)
		steps++
		if r.Errno == OK {
			break
		}
		if r.Errno != EAGAIN {
			t.Fatalf("bounded kill: %v", r.Errno)
		}
		if steps > 200 {
			t.Fatal("iterative kill does not terminate")
		}
	}
	if steps < 5 {
		t.Fatalf("kill finished in %d steps — budget not bounding", steps)
	}
	if _, alive := k.PM.TryCntr(cntr); alive {
		t.Fatal("container survived")
	}
	if got := k.Alloc.FreeCount4K(); got != free {
		t.Fatalf("pages leaked: %d != %d", got, free)
	}
	if got := k.PM.Cntr(k.PM.RootContainer).UsedPages; got != rootUsed {
		t.Fatalf("quota not harvested: %d != %d", got, rootUsed)
	}
}

func TestIterativeKillFreezesVictims(t *testing.T) {
	k, init := boot(t)
	cntr, victim := buildVictim(t, k, init)
	// One bounded step freezes the subtree.
	if r := k.SysKillContainerBounded(0, init, cntr, 1); r.Errno != EAGAIN {
		t.Fatalf("first step: %v", r.Errno)
	}
	// The frozen thread can no longer issue syscalls.
	if r := k.SysMmap(0, victim, 0x900000, 1, hw.Size4K, ptRW()); r.Errno != EINVAL {
		t.Fatalf("frozen thread syscall: %v", r.Errno)
	}
	if r := k.SysYield(0, victim); r.Errno != EINVAL {
		t.Fatalf("frozen thread yield: %v", r.Errno)
	}
	// Threads outside the subtree are unaffected.
	mustOK(t, k.SysYield(0, init))
}

func TestIterativeKillPermissionChecks(t *testing.T) {
	k, init := boot(t)
	cntr, victim := buildVictim(t, k, init)
	// The victim cannot iteratively kill its own container.
	if r := k.SysKillContainerBounded(0, victim, cntr, 4); r.Errno != EPERM {
		t.Fatalf("self kill: %v", r.Errno)
	}
	if r := k.SysKillContainerBounded(0, init, pm.Ptr(0xabc000), 4); r.Errno != ENOENT {
		t.Fatalf("ghost kill: %v", r.Errno)
	}
	if r := k.SysKillContainerBounded(0, init, cntr, 0); r.Errno != EINVAL {
		t.Fatalf("zero budget: %v", r.Errno)
	}
}

func TestIterativeKillBoundsLockHoldTime(t *testing.T) {
	// The point of the extension (§4.3): per-invocation cycle cost is
	// bounded by the budget, not by the subtree size.
	k, init := boot(t)
	cntrSmall, _ := buildVictim(t, k, init)
	// Measure one bounded step on the small victim.
	before := k.Machine.Core(0).Clock.Cycles()
	if r := k.SysKillContainerBounded(0, init, cntrSmall, 1); r.Errno != EAGAIN {
		t.Fatalf("step: %v", r.Errno)
	}
	stepSmall := k.Machine.Core(0).Clock.Cycles() - before

	// A much larger victim: one bounded step costs the same order.
	r := mustOK(t, k.SysNewContainer(0, init, 900, []int{0}))
	cntrBig := pm.Ptr(r.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, cntrBig))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	big := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysMmap(0, big, 0x400000, 400, hw.Size4K, ptRW()))
	before = k.Machine.Core(0).Clock.Cycles()
	if r := k.SysKillContainerBounded(0, init, cntrBig, 1); r.Errno != EAGAIN {
		t.Fatalf("big step: %v", r.Errno)
	}
	stepBig := k.Machine.Core(0).Clock.Cycles() - before
	if stepBig > stepSmall*20 {
		t.Fatalf("bounded step scaled with subtree: %d vs %d cycles", stepBig, stepSmall)
	}
}

func TestUnboundedKillClearsStaleFreeze(t *testing.T) {
	k, init := boot(t)
	cntr, _ := buildVictim(t, k, init)
	if r := k.SysKillContainerBounded(0, init, cntr, 2); r.Errno != EAGAIN {
		t.Fatalf("step: %v", r.Errno)
	}
	// Finish with the unbounded kill: freeze entries must be cleaned,
	// so later probes see a plain missing container.
	mustOK(t, k.SysKillContainer(0, init, cntr))
	if r := k.SysKillContainerBounded(0, init, cntr, 1); r.Errno != ENOENT {
		t.Fatalf("post-kill probe: %v", r.Errno)
	}
}

// BenchmarkKillLatency compares the big-lock hold time of the unbounded
// kill against one bounded step as the subtree grows — the §4.3 timing
// argument for the iterative design, in simulated cycles.
func BenchmarkKillLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, init, err := Boot(hw.Config{Frames: 8192, Cores: 1, TLBSlots: 64})
		if err != nil {
			b.Fatal(err)
		}
		r := k.SysNewContainer(0, init, 2000, []int{0})
		cntr := pm.Ptr(r.Vals[0])
		rp := k.SysNewProcessIn(0, init, cntr)
		rt := k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0)
		k.SysMmap(0, pm.Ptr(rt.Vals[0]), 0x400000, 1000, hw.Size4K, ptRW())

		before := k.Machine.Core(0).Clock.Cycles()
		k.SysKillContainer(0, init, cntr)
		unbounded := k.Machine.Core(0).Clock.Cycles() - before
		b.ReportMetric(float64(unbounded), "unbounded-kill-cycles")
	}
}
