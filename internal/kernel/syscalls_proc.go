package kernel

import (
	"sort"

	"atmosphere/internal/pm"
)

// Process, thread, and container syscalls (§3: access control and
// revocation).

// SysNewContainer creates a child container of the caller's container,
// carving quota pages and the given CPU subset out of the parent's
// reservation.
func (k *Kernel) SysNewContainer(core int, tid pm.Ptr, quota uint64, cpus []int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("new_container", tid, fail(EINVAL))
	}
	parent := k.PM.Proc(t.OwningProc).Owner
	child, err := k.PM.NewContainer(parent, quota, cpus)
	if err != nil {
		return k.post("new_container", tid, fail(errnoOf(err)))
	}
	// The child's object page (== the child pointer) is its own first
	// quota page, but it was allocated under the parent's context.
	k.ledgerAttr(child, child)
	return k.post("new_container", tid, ok(uint64(child)))
}

// SysNewProcess creates a process in the caller's container as a child of
// the caller's process.
func (k *Kernel) SysNewProcess(core int, tid pm.Ptr) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("new_proc", tid, fail(EINVAL))
	}
	caller := k.PM.Proc(t.OwningProc)
	proc, err := k.PM.NewProcess(caller.Owner, t.OwningProc)
	if err != nil {
		return k.post("new_proc", tid, fail(errnoOf(err)))
	}
	return k.post("new_proc", tid, ok(uint64(proc)))
}

// SysNewProcessIn creates a process inside a *child* container the caller
// created (the parent container populates its children before handing
// them off — how the A/B/V scenario is assembled). The target container
// must be in the caller's container subtree.
func (k *Kernel) SysNewProcessIn(core int, tid pm.Ptr, cntr pm.Ptr) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("new_proc_in", tid, fail(EINVAL))
	}
	caller := k.PM.Proc(t.OwningProc)
	if _, exists := k.PM.TryCntr(cntr); !exists {
		return k.post("new_proc_in", tid, fail(ENOENT))
	}
	if !k.PM.IsAncestor(caller.Owner, cntr) {
		return k.post("new_proc_in", tid, fail(EPERM))
	}
	k.ledgerCtx(cntr) // object pages belong to the target container
	proc, err := k.PM.NewProcess(cntr, 0)
	if err != nil {
		return k.post("new_proc_in", tid, fail(errnoOf(err)))
	}
	return k.post("new_proc_in", tid, ok(uint64(proc)))
}

// SysNewThread creates a thread in the caller's process, affine to core
// onCore (which must be reserved by the container).
func (k *Kernel) SysNewThread(core int, tid pm.Ptr, onCore int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("new_thread", tid, fail(EINVAL))
	}
	th, err := k.PM.NewThread(t.OwningProc, onCore)
	if err != nil {
		return k.post("new_thread", tid, fail(errnoOf(err)))
	}
	return k.post("new_thread", tid, ok(uint64(th)))
}

// SysNewThreadIn creates a thread in a process the caller controls: its
// own process, a descendant process, or any process in a descendant
// container.
func (k *Kernel) SysNewThreadIn(core int, tid pm.Ptr, proc pm.Ptr, onCore int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("new_thread_in", tid, fail(EINVAL))
	}
	target, exists := k.PM.TryProc(proc)
	if !exists {
		return k.post("new_thread_in", tid, fail(ENOENT))
	}
	caller := k.PM.Proc(t.OwningProc)
	if !k.controlsProcess(caller, t.OwningProc, target, proc) {
		return k.post("new_thread_in", tid, fail(EPERM))
	}
	k.ledgerCtx(target.Owner) // the thread page belongs to the target
	th, err := k.PM.NewThread(proc, onCore)
	if err != nil {
		return k.post("new_thread_in", tid, fail(errnoOf(err)))
	}
	return k.post("new_thread_in", tid, ok(uint64(th)))
}

// controlsProcess reports whether the caller process may manage the
// target process: same process, an ancestor in the same container's
// process tree, or the target's container is a strict descendant of the
// caller's container.
func (k *Kernel) controlsProcess(caller *pm.Process, callerPtr pm.Ptr, target *pm.Process, targetPtr pm.Ptr) bool {
	if callerPtr == targetPtr {
		return true
	}
	if k.PM.IsAncestor(caller.Owner, target.Owner) {
		return true
	}
	if caller.Owner == target.Owner {
		// Walk the process-tree parent chain of the target.
		for p := target.Parent; p != 0; {
			if p == callerPtr {
				return true
			}
			pp, okk := k.PM.TryProc(p)
			if !okk {
				break
			}
			p = pp.Parent
		}
	}
	return false
}

// SysExitThread terminates the calling thread, releasing its endpoint
// descriptors and its object page.
func (k *Kernel) SysExitThread(core int, tid pm.Ptr) Ret {
	defer k.enter(core)()
	defer k.gcShards() // endpoints may die with their last descriptor
	if _, okk := k.callerThread(tid); !okk {
		return k.post("exit_thread", tid, fail(EINVAL))
	}
	k.PM.MarkExited(tid)
	if err := k.PM.FreeThread(tid); err != nil {
		return k.post("exit_thread", tid, fail(errnoOf(err)))
	}
	k.PM.PickNext(core)
	return k.post("exit_thread", tid, ok())
}

// SysKillProcess terminates a process the caller controls, together with
// its descendant processes (within the same container), their threads,
// address spaces, and IOMMU domains.
func (k *Kernel) SysKillProcess(core int, tid pm.Ptr, proc pm.Ptr) Ret {
	defer k.enter(core)()
	defer k.gcShards() // endpoints may die with the process's descriptors
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("kill_proc", tid, fail(EINVAL))
	}
	target, exists := k.PM.TryProc(proc)
	if !exists {
		return k.post("kill_proc", tid, fail(ENOENT))
	}
	caller := k.PM.Proc(t.OwningProc)
	if proc == t.OwningProc || !k.controlsProcess(caller, t.OwningProc, target, proc) {
		return k.post("kill_proc", tid, fail(EPERM))
	}
	// Collect the process subtree (the victim and every descendant).
	victims := k.processSubtree(proc)
	if err := k.reapProcesses(victims); err != nil {
		return k.post("kill_proc", tid, fail(errnoOf(err)))
	}
	return k.post("kill_proc", tid, ok())
}

// processSubtree returns proc and all its descendant processes,
// parents before children.
func (k *Kernel) processSubtree(proc pm.Ptr) []pm.Ptr {
	var out []pm.Ptr
	var rec func(p pm.Ptr)
	rec = func(p pm.Ptr) {
		out = append(out, p)
		for _, ch := range k.PM.Proc(p).Children {
			rec(ch)
		}
	}
	rec(proc)
	return out
}

// reapProcesses destroys the given processes (children last in the list,
// so freed in reverse), including threads, address spaces, endpoint
// references, and IOMMU domains.
func (k *Kernel) reapProcesses(victims []pm.Ptr) error {
	for _, p := range victims {
		proc := k.PM.Proc(p)
		for _, th := range append([]pm.Ptr(nil), proc.Threads...) {
			if err := k.reapThread(th); err != nil {
				return err
			}
		}
		k.unmapAll(proc)
		if proc.IOMMUDomain != 0 {
			if err := k.destroyIOMMUDomain(proc); err != nil {
				return err
			}
		}
	}
	for i := len(victims) - 1; i >= 0; i-- {
		if err := k.PM.FreeProcess(victims[i]); err != nil {
			return err
		}
	}
	return nil
}

// reapThread forcibly terminates a thread: if blocked on an endpoint it
// is unlinked from the queue (dropping any page reference its pending
// message holds), then freed.
func (k *Kernel) reapThread(th pm.Ptr) error {
	t := k.PM.Thrd(th)
	if t.State == pm.ThreadBlockedSend || t.State == pm.ThreadBlockedRecv {
		k.unlinkFromEndpoint(th, t)
	}
	k.PM.MarkExited(th)
	return k.PM.FreeThread(th)
}

// SysKillContainer terminates a strict descendant of the caller's
// container: every nested container, process, and thread dies, endpoints
// owned by the dying subtree are destroyed (waiters outside the subtree
// are woken with EDEADOBJ), and the carved quota returns to the parent —
// the paper's terminate-and-harvest revocation model (§3).
func (k *Kernel) SysKillContainer(core int, tid pm.Ptr, cntr pm.Ptr) Ret {
	defer k.enter(core)()
	defer k.gcShards() // the dying subtree's containers and endpoints
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("kill_container", tid, fail(EINVAL))
	}
	if _, exists := k.PM.TryCntr(cntr); !exists {
		return k.post("kill_container", tid, fail(ENOENT))
	}
	callerCntr := k.PM.Proc(t.OwningProc).Owner
	if !k.PM.IsAncestor(callerCntr, cntr) {
		return k.post("kill_container", tid, fail(EPERM))
	}
	killed := k.PM.SubtreeOf(cntr)

	// All iteration below runs in sorted pointer order: teardown must be
	// a deterministic function of the pre-state (output consistency,
	// §4.3), and Go map order is randomized.

	// 1. Destroy endpoints owned by the dying subtree. Outside waiters
	// are woken with an error and their descriptors revoked.
	for _, eptr := range sortedEdpts(k.PM.EdptPerms) {
		e, still := k.PM.TryEdpt(eptr)
		if !still {
			continue
		}
		if _, dying := killed[e.OwnerCntr]; !dying {
			continue
		}
		k.destroyEndpoint(eptr, killed)
	}

	// 2. Reap every process in the subtree.
	for _, p := range sortedPtrSet(k.PM.ProcsOf(cntr)) {
		proc := k.PM.Proc(p)
		for _, th := range append([]pm.Ptr(nil), proc.Threads...) {
			if err := k.reapThread(th); err != nil {
				return k.post("kill_container", tid, fail(errnoOf(err)))
			}
		}
		k.unmapAll(proc)
		if proc.IOMMUDomain != 0 {
			if err := k.destroyIOMMUDomain(proc); err != nil {
				return k.post("kill_container", tid, fail(errnoOf(err)))
			}
		}
	}
	// Free processes children-first within each container.
	for _, p := range sortedPtrSet(k.PM.ProcsOf(cntr)) {
		if err := k.freeProcessTree(p); err != nil {
			return k.post("kill_container", tid, fail(errnoOf(err)))
		}
	}

	// 3. Unlink containers deepest-first so parents empty out.
	var order []pm.Ptr
	for c := range killed {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool {
		return k.PM.Cntr(order[i]).Depth > k.PM.Cntr(order[j]).Depth
	})
	for _, c := range order {
		if err := k.PM.UnlinkContainer(c); err != nil {
			return k.post("kill_container", tid, fail(errnoOf(err)))
		}
		delete(k.dying, c) // clear any stale iterative-kill freeze
	}
	return k.post("kill_container", tid, ok())
}

// sortedPtrSet returns a set's members in ascending pointer order.
func sortedPtrSet(s map[pm.Ptr]struct{}) []pm.Ptr {
	out := make([]pm.Ptr, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedEdpts returns the endpoint map's keys in ascending order.
func sortedEdpts(m map[pm.Ptr]*pm.Endpoint) []pm.Ptr {
	out := make([]pm.Ptr, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// freeProcessTree frees proc if it still exists, recursing into children
// first.
func (k *Kernel) freeProcessTree(proc pm.Ptr) error {
	p, okk := k.PM.TryProc(proc)
	if !okk {
		return nil
	}
	for _, ch := range append([]pm.Ptr(nil), p.Children...) {
		if err := k.freeProcessTree(ch); err != nil {
			return err
		}
	}
	return k.PM.FreeProcess(proc)
}
