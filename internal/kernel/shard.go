package kernel

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs/contend"
	"atmosphere/internal/pm"
)

// Lock sharding (docs/CONCURRENCY.md "The sharded lock model"). The
// kernel's virtual-cost model is no longer one big-lock frontier: each
// container and each endpoint carries its own hw.LockSim frontier, and
// every syscall entry resolves a *lock plan* — the exact set of
// frontiers the operation touches — and acquires them in the declared
// DAG order (contend.KernelOrder: big -> container -> endpoint, with
// containers nested among themselves in ascending address order). The
// big lock remains only for global operations: object lifecycle
// (container/process/thread/endpoint create and destroy), IRQ paths,
// IOMMU management, and any memory operation that can reach the shared
// page-frame free lists (cache refill/drain, superpages, uncached
// boots).
//
// The real data structures are still guarded by the one Go mutex
// (Kernel.big) — sharding changes the *cost model*, not the execution
// model: which cores wait, for how long, on which virtual frontier.
// Disabled LockSims are no-ops, so with contention off every plan costs
// exactly what the big-lock funnel cost, bit for bit; and a workload
// whose syscalls all resolve to one container's frontier reproduces the
// old big-lock serialization exactly (same arrivals, same releases).
// Only genuinely disjoint traffic — different containers, different
// endpoints — overlaps in virtual time.

// lockPlan names the frontiers one syscall holds for its duration, in
// DAG order: the big lock (optional), up to two container frontiers
// (sorted by object address), and one endpoint frontier.
type lockPlan struct {
	big   bool
	cntr  [2]pm.Ptr
	ncntr int
	edpt  pm.Ptr
}

// planBig is the global-operation plan: big lock only, exactly the
// pre-sharding funnel.
func planBig() lockPlan { return lockPlan{big: true} }

// frontier is one acquired entry of a plan: the simulator, its
// observatory registration, and the wait this entry charged (filled at
// acquisition, attributed at leave).
type frontier struct {
	sim  *hw.LockSim
	id   contend.LockID
	wait uint64
}

// shard is one per-object lock frontier.
type shard struct {
	sim  hw.LockSim
	id   contend.LockID // observatory registration; -1 while detached
	salt uint64         // decorrelates the shard's jitter stream
}

// shardMix is the splitmix64 finalizer — derives per-shard jitter seeds
// from the base seed and the object address, so every frontier gets its
// own deterministic stream.
func shardMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// armShard finishes a freshly created shard: it inherits the kernel's
// current contention enablement and jitter arming (with a decorrelated
// seed), registers with the attached observatory, and joins the shard
// list that re-attachment and Enable/SetJitter propagation iterate.
// Creation order is program order (plans resolve under the Go mutex),
// so registration order — and with it every report — is deterministic.
func (k *Kernel) armShard(s *shard, salt uint64) {
	s.id = -1
	s.salt = shardMix(salt)
	if k.lock.Enabled() {
		s.sim.Enable()
	}
	if k.jitterMax > 0 {
		s.sim.SetJitter(k.jitterSeed^s.salt, k.jitterMax)
	}
	if k.cobs != nil {
		s.id = k.cobs.Register(&s.sim)
	}
	k.shards = append(k.shards, s)
}

// cntrShard returns (lazily creating) the container's lock frontier.
// The root container is labeled "root" to match its attribution name;
// children get "c<n>" in creation order.
func (k *Kernel) cntrShard(c pm.Ptr) *shard {
	s, ok := k.cntrShards[c]
	if !ok {
		s = &shard{}
		label := "root"
		if c != k.PM.RootContainer {
			k.cntrSeq++
			label = fmt.Sprintf("c%d", k.cntrSeq)
		}
		s.sim.SetIdentity("container", label)
		k.armShard(s, uint64(c))
		k.cntrShards[c] = s
	}
	return s
}

// edptShard returns (lazily creating) the endpoint's lock frontier,
// labeled "e<n>" in creation order.
func (k *Kernel) edptShard(e pm.Ptr) *shard {
	s, ok := k.edptShards[e]
	if !ok {
		s = &shard{}
		k.edptSeq++
		s.sim.SetIdentity("endpoint", fmt.Sprintf("e%d", k.edptSeq))
		k.armShard(s, ^uint64(e))
		k.edptShards[e] = s
	}
	return s
}

// gcShards drops shard-table entries whose object died, so a reused
// page gets a fresh frontier (and a fresh label) instead of inheriting
// a dead object's. Teardown syscalls defer it. Dead shards stay
// registered with the observatory — their accumulated waits remain in
// the report (which is why -by-class aggregation exists) — and stay on
// the shard list, where re-arming them is harmless.
func (k *Kernel) gcShards() {
	for c := range k.cntrShards {
		if _, ok := k.PM.TryCntr(c); !ok {
			delete(k.cntrShards, c)
		}
	}
	for e := range k.edptShards {
		if _, ok := k.PM.TryEdpt(e); !ok {
			delete(k.edptShards, e)
		}
	}
}

// SetLockPlanFlipForTest reverses the acquisition order of every lock
// plan — endpoint before container before big — planting a cross-shard
// lock-order inversion for the armed checker to catch. Test harnesses
// only; the flip changes which frontier the checker sees first, not a
// single charged cycle's amount.
func (k *Kernel) SetLockPlanFlipForTest(v bool) {
	k.big.Lock()
	defer k.big.Unlock()
	k.planFlip = v
}

// planCaller is the plan of a syscall that touches only the caller's
// own container state (yield, and the mmap/munmap fast paths build on
// it): the caller's container frontier. An unresolvable caller falls
// back to the big lock — error paths serialize globally, which is
// conservative and keeps invalid-argument probes off the shard tables.
func (k *Kernel) planCaller(tid pm.Ptr) lockPlan {
	t, ok := k.PM.TryThrd(tid)
	if !ok {
		return planBig()
	}
	return lockPlan{cntr: [2]pm.Ptr{t.OwningCntr}, ncntr: 1}
}

// planMmap: the caller's container frontier, plus the big lock whenever
// the allocation can reach the shared free lists — no per-core caches,
// a superpage request, or a cache too shallow to cover the count
// (refill). Page-table node frames materialized by the mapping ride the
// container frontier (a documented simplification: at most a few frames
// per region lifetime).
func (k *Kernel) planMmap(core int, tid pm.Ptr, count int, size hw.PageSize) lockPlan {
	p := k.planCaller(tid)
	if p.big {
		return p
	}
	if k.caches == nil || size != hw.Size4K || count <= 0 || k.caches.Len(core) < count {
		p.big = true
	}
	return p
}

// planMunmap: the caller's container frontier, plus the big lock
// whenever a freed frame can reach the shared free lists — no caches, a
// superpage, or a cache within count of its drain threshold. A shared
// page's refcount decrement (no free-list push) stays on the container
// frontier.
func (k *Kernel) planMunmap(core int, tid pm.Ptr, count int, size hw.PageSize) lockPlan {
	p := k.planCaller(tid)
	if p.big {
		return p
	}
	if k.caches == nil || size != hw.Size4K || count <= 0 ||
		k.caches.Len(core)+count > 2*k.caches.Batch() {
		p.big = true
	}
	return p
}

// planIPC is the rendezvous plan: the caller's container, the endpoint,
// and — when the endpoint queue's head belongs to a different container
// — the partner's container too (delivery charges the receiver, direct
// switch touches the callee). The two container frontiers sort by
// object address, the total order the container self-edge in
// KernelOrder licenses.
//
// A page transfer in either direction adds the big lock only when the
// core has no page cache to draw from: the transferred frame itself
// never touches the free lists (ownership moves sender -> in-flight ->
// receiver without an alloc or a free), so only page-table node frames
// the mapping side may materialize can reach the shared pool. With
// per-core caches armed those ride the container frontiers, the same
// documented simplification planMmap makes — which is what lets batched
// grant traffic on disjoint containers scale across cores instead of
// serializing every doorbell on the global frontier. In-flight quota
// accounting rides the container frontiers already in the plan (the
// charge moves between exactly those containers).
func (k *Kernel) planIPC(core int, tid pm.Ptr, slot int, sendPage bool) lockPlan {
	t, ok := k.PM.TryThrd(tid)
	if !ok {
		return planBig()
	}
	pageBig := k.caches == nil || k.caches.Len(core) == 0
	p := lockPlan{cntr: [2]pm.Ptr{t.OwningCntr}, ncntr: 1, big: sendPage && pageBig}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return p
	}
	eptr := t.Endpoints[slot]
	ep, ok := k.PM.TryEdpt(eptr)
	if !ok {
		return p
	}
	p.edpt = eptr
	if len(ep.Buffer) > 0 && ep.Buffer[0].HasPage && pageBig {
		p.big = true // buffered message carries a page a recv would map
	}
	if len(ep.Queue) > 0 {
		if qt, ok := k.PM.TryThrd(ep.Queue[0]); ok {
			if qt.OwningCntr != t.OwningCntr {
				p.cntr[1] = qt.OwningCntr
				p.ncntr = 2
				if p.cntr[1] < p.cntr[0] {
					p.cntr[0], p.cntr[1] = p.cntr[1], p.cntr[0]
				}
			}
			if !ep.QueuedRecv && qt.IPC.Msg.HasPage && pageBig {
				p.big = true // queued sender carries a page for us
			}
		}
	}
	return p
}

// planCloseEndpoint: endpoint lifecycle is a global operation (the
// object may die), so the big lock leads; the endpoint's own frontier
// is held too, so a close serializes against in-flight sends on the
// same endpoint in virtual time.
func (k *Kernel) planCloseEndpoint(tid pm.Ptr, slot int) lockPlan {
	p := planBig()
	t, ok := k.PM.TryThrd(tid)
	if !ok || slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return p
	}
	if _, ok := k.PM.TryEdpt(t.Endpoints[slot]); ok {
		p.edpt = t.Endpoints[slot]
	}
	return p
}
