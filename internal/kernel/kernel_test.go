package kernel

import (
	"fmt"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

func boot(t *testing.T) (*Kernel, pm.Ptr) {
	t.Helper()
	k, init, err := Boot(hw.Config{Frames: 4096, Cores: 4, TLBSlots: 64})
	if err != nil {
		t.Fatal(err)
	}
	return k, init
}

func mustOK(t *testing.T, r Ret) Ret {
	t.Helper()
	if r.Errno != OK {
		t.Fatalf("syscall failed: %v", r.Errno)
	}
	return r
}

func TestBoot(t *testing.T) {
	k, init := boot(t)
	th := k.PM.Thrd(init)
	if th.State != pm.ThreadRunning {
		t.Fatalf("init thread state = %v", th.State)
	}
	root := k.PM.Cntr(k.PM.RootContainer)
	if root.UsedPages > root.QuotaPages {
		t.Fatalf("boot overcommitted: used %d quota %d", root.UsedPages, root.QuotaPages)
	}
}

func TestMmapMunmap(t *testing.T) {
	k, init := boot(t)
	usedBefore := k.PM.Cntr(k.PM.RootContainer).UsedPages
	r := mustOK(t, k.SysMmap(0, init, 0x400000, 8, hw.Size4K, pt.RW))
	if r.Vals[0] != 0x400000 {
		t.Fatalf("mmap returned %#x", r.Vals[0])
	}
	proc := k.PM.Proc(k.PM.Thrd(init).OwningProc)
	if got := len(proc.PageTable.AddressSpace()); got != 8 {
		t.Fatalf("address space has %d mappings", got)
	}
	// Write through the MMU to prove the mappings are real.
	if !k.Machine.MMU.Store(proc.PageTable.CR3(), 0x400000, []byte("hello")) {
		t.Fatal("store through new mapping failed")
	}
	mustOK(t, k.SysMunmap(0, init, 0x400000, 8, hw.Size4K))
	if got := len(proc.PageTable.AddressSpace()); got != 0 {
		t.Fatalf("address space has %d mappings after munmap", got)
	}
	// Quota: the page-table nodes stay charged, user pages credited.
	usedAfter := k.PM.Cntr(k.PM.RootContainer).UsedPages
	if usedAfter != usedBefore+3 { // PDPT+PD+PT nodes created by the map
		t.Fatalf("used after = %d, want %d+3", usedAfter, usedBefore)
	}
}

func TestMmapDoubleMapRejected(t *testing.T) {
	k, init := boot(t)
	mustOK(t, k.SysMmap(0, init, 0x1000, 1, hw.Size4K, pt.RW))
	if r := k.SysMmap(0, init, 0x1000, 1, hw.Size4K, pt.RW); r.Errno != EALREADY {
		t.Fatalf("double mmap: %v", r.Errno)
	}
	// Overlapping range: second page collides.
	if r := k.SysMmap(0, init, 0, 2, hw.Size4K, pt.RW); r.Errno != EALREADY {
		t.Fatalf("overlapping mmap: %v", r.Errno)
	}
}

func TestMmapQuotaRollback(t *testing.T) {
	k, init := boot(t)
	// A child container with a tiny quota.
	r := mustOK(t, k.SysNewContainer(0, init, 12, []int{0}))
	child := pm.Ptr(r.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, child))
	proc := pm.Ptr(rp.Vals[0])
	rt := mustOK(t, k.SysNewThreadIn(0, init, proc, 0))
	tid := pm.Ptr(rt.Vals[0])
	usedBefore := k.PM.Cntr(child).UsedPages
	nodesBefore := k.PM.Proc(proc).PageTable.PageClosure().Len()
	// 12-page quota minus (container 1 + proc 1 + PML4 1 + thread 1) = 8
	// left; 16 user pages plus 3 table nodes cannot fit.
	if r := k.SysMmap(0, tid, 0x400000, 16, hw.Size4K, pt.RW); r.Errno != EQUOTA {
		t.Fatalf("over-quota mmap: %v", r.Errno)
	}
	if got := k.PM.Cntr(child).UsedPages; got != usedBefore {
		t.Fatalf("rollback leaked quota: %d != %d", got, usedBefore)
	}
	if got := k.PM.Proc(proc).PageTable.PageClosure().Len(); got != nodesBefore {
		t.Fatalf("rollback leaked table nodes: %d != %d", got, nodesBefore)
	}
	if got := len(k.PM.Proc(proc).PageTable.AddressSpace()); got != 0 {
		t.Fatalf("rollback left %d mappings", got)
	}
}

func TestMunmapWrongGranularity(t *testing.T) {
	k, init := boot(t)
	mustOK(t, k.SysMmap(0, init, 0x1000, 1, hw.Size4K, pt.RW))
	if r := k.SysMunmap(0, init, 0x1000, 1, hw.Size2M); r.Errno != ENOENT {
		t.Fatalf("wrong-size munmap: %v", r.Errno)
	}
	if r := k.SysMunmap(0, init, 0x8000, 1, hw.Size4K); r.Errno != ENOENT {
		t.Fatalf("unmapped munmap: %v", r.Errno)
	}
}

func TestContainerLifecycleSyscalls(t *testing.T) {
	k, init := boot(t)
	r := mustOK(t, k.SysNewContainer(0, init, 50, []int{0, 1}))
	child := pm.Ptr(r.Vals[0])
	if !k.PM.IsAncestor(k.PM.RootContainer, child) {
		t.Fatal("child not in root subtree")
	}
	rp := mustOK(t, k.SysNewProcessIn(0, init, child))
	proc := pm.Ptr(rp.Vals[0])
	rt := mustOK(t, k.SysNewThreadIn(0, init, proc, 1))
	tid := pm.Ptr(rt.Vals[0])
	// The child's thread maps some memory.
	mustOK(t, k.SysMmap(1, tid, 0x10000, 4, hw.Size4K, pt.RW))
	rootUsed := k.PM.Cntr(k.PM.RootContainer).UsedPages
	free := k.Alloc.FreeCount4K()
	mustOK(t, k.SysKillContainer(0, init, child))
	if _, ok := k.PM.TryCntr(child); ok {
		t.Fatal("killed container survived")
	}
	if _, ok := k.PM.TryThrd(tid); ok {
		t.Fatal("killed thread survived")
	}
	if got := k.PM.Cntr(k.PM.RootContainer).UsedPages; got != rootUsed-50 {
		t.Fatalf("quota not harvested: %d, want %d", got, rootUsed-50)
	}
	// Everything the subtree consumed returns to the free list:
	// container + proc + PML4 + 3 table nodes + thread + 4 user pages.
	if got := k.Alloc.FreeCount4K(); got != free+11 {
		t.Fatalf("pages not harvested: %d, want %d", got, free+11)
	}
}

func TestKillContainerRequiresAncestry(t *testing.T) {
	k, init := boot(t)
	rA := mustOK(t, k.SysNewContainer(0, init, 30, []int{0}))
	rB := mustOK(t, k.SysNewContainer(0, init, 30, []int{0}))
	a, b := pm.Ptr(rA.Vals[0]), pm.Ptr(rB.Vals[0])
	// A thread inside A tries to kill B (a sibling): denied.
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	if r := k.SysKillContainer(0, tidA, b); r.Errno != EPERM {
		t.Fatalf("sibling kill: %v", r.Errno)
	}
	// A container cannot kill itself (not a strict descendant).
	if r := k.SysKillContainer(0, tidA, a); r.Errno != EPERM {
		t.Fatalf("self kill: %v", r.Errno)
	}
	// Killing a nonexistent container reports ENOENT.
	if r := k.SysKillContainer(0, init, pm.Ptr(0xabc000)); r.Errno != ENOENT {
		t.Fatalf("ghost kill: %v", r.Errno)
	}
}

func TestNestedContainerKill(t *testing.T) {
	k, init := boot(t)
	rA := mustOK(t, k.SysNewContainer(0, init, 200, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	// A creates two nested children with processes.
	rB := mustOK(t, k.SysNewContainer(0, tidA, 40, []int{0}))
	b := pm.Ptr(rB.Vals[0])
	rC := mustOK(t, k.SysNewContainer(0, tidA, 40, []int{0}))
	c := pm.Ptr(rC.Vals[0])
	for _, cn := range []pm.Ptr{b, c} {
		rp := mustOK(t, k.SysNewProcessIn(0, tidA, cn))
		mustOK(t, k.SysNewThreadIn(0, tidA, pm.Ptr(rp.Vals[0]), 0))
	}
	mustOK(t, k.SysKillContainer(0, init, a))
	for _, cn := range []pm.Ptr{a, b, c} {
		if _, ok := k.PM.TryCntr(cn); ok {
			t.Fatalf("container %#x survived subtree kill", cn)
		}
	}
	if len(k.PM.CntrPerms) != 1 {
		t.Fatalf("%d containers left, want 1 (root)", len(k.PM.CntrPerms))
	}
}

func TestProcessSyscalls(t *testing.T) {
	k, init := boot(t)
	r := mustOK(t, k.SysNewProcess(0, init))
	child := pm.Ptr(r.Vals[0])
	rt := mustOK(t, k.SysNewThreadIn(0, init, child, 2))
	tid := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysMmap(2, tid, 0x20000, 2, hw.Size4K, pt.RW))
	free := k.Alloc.FreeCount4K()
	mustOK(t, k.SysKillProcess(0, init, child))
	if _, ok := k.PM.TryProc(child); ok {
		t.Fatal("killed process survived")
	}
	if _, ok := k.PM.TryThrd(tid); ok {
		t.Fatal("killed process's thread survived")
	}
	// proc page + PML4 + 3 nodes + thread + 2 user pages = 8
	if got := k.Alloc.FreeCount4K(); got != free+8 {
		t.Fatalf("pages not reclaimed: %d, want %d", got, free+8)
	}
	// A process cannot kill itself via this path.
	if r := k.SysKillProcess(0, init, k.PM.Thrd(init).OwningProc); r.Errno != EPERM {
		t.Fatalf("self kill-process: %v", r.Errno)
	}
}

func TestKillProcessSubtree(t *testing.T) {
	k, init := boot(t)
	r1 := mustOK(t, k.SysNewProcess(0, init))
	p1 := pm.Ptr(r1.Vals[0])
	rt := mustOK(t, k.SysNewThreadIn(0, init, p1, 0))
	t1 := pm.Ptr(rt.Vals[0])
	// p1's thread spawns a grandchild process.
	r2 := mustOK(t, k.SysNewProcess(0, t1))
	p2 := pm.Ptr(r2.Vals[0])
	mustOK(t, k.SysKillProcess(0, init, p1))
	if _, ok := k.PM.TryProc(p2); ok {
		t.Fatal("grandchild process survived subtree kill")
	}
}

func TestExitThread(t *testing.T) {
	k, init := boot(t)
	r := mustOK(t, k.SysNewThread(0, init, 0))
	tid := pm.Ptr(r.Vals[0])
	mustOK(t, k.SysExitThread(0, tid))
	if _, ok := k.PM.TryThrd(tid); ok {
		t.Fatal("exited thread survived")
	}
	// Exiting again is EINVAL (dangling pointer).
	if r := k.SysExitThread(0, tid); r.Errno != EINVAL {
		t.Fatalf("double exit: %v", r.Errno)
	}
}

// ipcPair boots a kernel with two threads sharing an endpoint in slot 0.
func ipcPair(t *testing.T) (k *Kernel, a, b pm.Ptr) {
	t.Helper()
	k, init := boot(t)
	a = init
	r := mustOK(t, k.SysNewThread(0, init, 0))
	b = pm.Ptr(r.Vals[0])
	re := mustOK(t, k.SysNewEndpoint(0, a, 0))
	ep := pm.Ptr(re.Vals[0])
	// Share the endpoint with b by direct descriptor install (the
	// kernel-internal equivalent of inheriting it at thread creation).
	k.PM.Thrd(b).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	return k, a, b
}

func TestIPCSendThenRecv(t *testing.T) {
	k, a, b := ipcPair(t)
	// a sends first: no receiver, so a blocks.
	r := k.SysSend(0, a, 0, SendArgs{Regs: [4]uint64{1, 2, 3, 4}})
	if r.Errno != EWOULDBLOCK {
		t.Fatalf("send should block: %v", r.Errno)
	}
	if k.PM.Thrd(a).State != pm.ThreadBlockedSend {
		t.Fatalf("sender state = %v", k.PM.Thrd(a).State)
	}
	// b receives: rendezvous completes, both runnable/running.
	rr := mustOK(t, k.SysRecv(0, b, 0, RecvArgs{EdptSlot: -1}))
	if rr.Vals != [4]uint64{1, 2, 3, 4} {
		t.Fatalf("recv regs = %v", rr.Vals)
	}
	if k.PM.Thrd(a).State == pm.ThreadBlockedSend {
		t.Fatal("sender still blocked after rendezvous")
	}
	if k.PM.Thrd(a).IPC.Err != nil {
		t.Fatalf("sender completion error: %v", k.PM.Thrd(a).IPC.Err)
	}
}

func TestIPCRecvThenSend(t *testing.T) {
	k, a, b := ipcPair(t)
	r := k.SysRecv(0, b, 0, RecvArgs{EdptSlot: -1})
	if r.Errno != EWOULDBLOCK {
		t.Fatalf("recv should block: %v", r.Errno)
	}
	mustOK(t, k.SysSend(0, a, 0, SendArgs{Regs: [4]uint64{9, 8, 7, 6}}))
	tb := k.PM.Thrd(b)
	if tb.State != pm.ThreadRunnable {
		t.Fatalf("receiver state = %v", tb.State)
	}
	if tb.IPC.Msg.Regs != [4]uint64{9, 8, 7, 6} {
		t.Fatalf("delivered regs = %v", tb.IPC.Msg.Regs)
	}
}

func TestIPCPageTransfer(t *testing.T) {
	k, a, b := ipcPair(t)
	mustOK(t, k.SysMmap(0, a, 0x100000, 1, hw.Size4K, pt.RW))
	procA := k.PM.Proc(k.PM.Thrd(a).OwningProc)
	entry, _ := procA.PageTable.Lookup(0x100000)
	// Write into the page so the receiver can read it.
	k.Machine.MMU.Store(procA.PageTable.CR3(), 0x100000, []byte("shared!"))

	// b waits for a page at its own chosen address. b runs in its own
	// process so the transfer crosses address spaces.
	rp := mustOK(t, k.SysNewProcess(0, a))
	rt := mustOK(t, k.SysNewThreadIn(0, a, pm.Ptr(rp.Vals[0]), 0))
	b2 := pm.Ptr(rt.Vals[0])
	k.PM.Thrd(b2).Endpoints[0] = k.PM.Thrd(b).Endpoints[0]
	k.PM.EndpointIncRef(k.PM.Thrd(b).Endpoints[0], 1)

	if r := k.SysRecv(0, b2, 0, RecvArgs{PageVA: 0x7000, EdptSlot: -1}); r.Errno != EWOULDBLOCK {
		t.Fatalf("recv: %v", r.Errno)
	}
	mustOK(t, k.SysSend(0, a, 0, SendArgs{SendPage: true, PageVA: 0x100000}))

	procB := k.PM.Proc(k.PM.Thrd(b2).OwningProc)
	got, okk := k.Machine.MMU.Load(procB.PageTable.CR3(), 0x7000, 7)
	if !okk || string(got) != "shared!" {
		t.Fatalf("receiver sees %q ok=%v", got, okk)
	}
	// The frame is now referenced twice.
	if rc, _ := k.Alloc.RefCount(entry.Phys); rc != 2 {
		t.Fatalf("refcount = %d, want 2", rc)
	}
	// Sender unmaps; page survives for the receiver.
	mustOK(t, k.SysMunmap(0, a, 0x100000, 1, hw.Size4K))
	if rc, _ := k.Alloc.RefCount(entry.Phys); rc != 1 {
		t.Fatalf("refcount after sender unmap = %d", rc)
	}
}

func TestIPCEndpointTransfer(t *testing.T) {
	k, a, b := ipcPair(t)
	// a creates a second endpoint and sends it to b.
	re := mustOK(t, k.SysNewEndpoint(0, a, 1))
	ep2 := pm.Ptr(re.Vals[0])
	if r := k.SysRecv(0, b, 0, RecvArgs{EdptSlot: 5}); r.Errno != EWOULDBLOCK {
		t.Fatalf("recv: %v", r.Errno)
	}
	mustOK(t, k.SysSend(0, a, 0, SendArgs{SendEdpt: true, EdptSlot: 1}))
	if k.PM.Thrd(b).Endpoints[5] != ep2 {
		t.Fatal("endpoint descriptor not installed")
	}
	if k.PM.Edpt(ep2).RefCount != 2 {
		t.Fatalf("endpoint refcount = %d", k.PM.Edpt(ep2).RefCount)
	}
}

func TestIPCCallReply(t *testing.T) {
	k, a, b := ipcPair(t)
	// Server b waits.
	if r := k.SysRecv(0, b, 0, RecvArgs{EdptSlot: -1}); r.Errno != EWOULDBLOCK {
		t.Fatalf("server recv: %v", r.Errno)
	}
	// Client a calls: server wakes and runs, client blocks for reply.
	if r := k.SysCall(0, a, 0, SendArgs{Regs: [4]uint64{42}}); r.Errno != EWOULDBLOCK {
		t.Fatalf("call: %v", r.Errno)
	}
	if k.PM.Sched().Current(0) != b {
		t.Fatal("direct switch to server did not happen")
	}
	if k.PM.Thrd(b).IPC.Msg.Regs[0] != 42 {
		t.Fatal("server did not get the request")
	}
	if k.PM.Thrd(a).State != pm.ThreadBlockedRecv {
		t.Fatalf("client state = %v", k.PM.Thrd(a).State)
	}
	// Server replies: client wakes with the answer and gets the core.
	mustOK(t, k.SysReply(0, b, 0, SendArgs{Regs: [4]uint64{43}}))
	if k.PM.Sched().Current(0) != a {
		t.Fatal("direct switch back to client did not happen")
	}
	if k.PM.Thrd(a).IPC.Msg.Regs[0] != 43 {
		t.Fatal("client did not get the reply")
	}
	// Call with no waiting server refuses (fastpath-only).
	if r := k.SysCall(0, a, 0, SendArgs{}); r.Errno != EWOULDBLOCK {
		t.Fatalf("call without server: %v", r.Errno)
	}
}

func TestIPCInvalidSlots(t *testing.T) {
	k, a, _ := ipcPair(t)
	if r := k.SysSend(0, a, 7, SendArgs{}); r.Errno != EINVAL {
		t.Fatalf("send on empty slot: %v", r.Errno)
	}
	if r := k.SysSend(0, a, -1, SendArgs{}); r.Errno != EINVAL {
		t.Fatalf("send on negative slot: %v", r.Errno)
	}
	if r := k.SysRecv(0, a, 99, RecvArgs{}); r.Errno != EINVAL {
		t.Fatalf("recv on out-of-range slot: %v", r.Errno)
	}
	if r := k.SysSend(0, a, 0, SendArgs{SendPage: true, PageVA: 0xdead000}); r.Errno != ENOENT {
		t.Fatalf("send of unmapped page: %v", r.Errno)
	}
	if r := k.SysNewEndpoint(0, a, 0); r.Errno != EINVAL {
		t.Fatalf("endpoint into occupied slot: %v", r.Errno)
	}
}

func TestKillContainerWakesOutsideWaiters(t *testing.T) {
	k, init := boot(t)
	// Container A owns an endpoint; the init thread (outside A) blocks
	// on it; killing A must wake init with EDEADOBJ.
	rA := mustOK(t, k.SysNewContainer(0, init, 60, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	re := mustOK(t, k.SysNewEndpoint(0, tidA, 0))
	ep := pm.Ptr(re.Vals[0])
	// Share with init.
	k.PM.Thrd(init).Endpoints[3] = ep
	k.PM.EndpointIncRef(ep, 1)
	// The kill must be issued by a runnable thread, so create the helper
	// before init blocks.
	rh := mustOK(t, k.SysNewThreadIn(0, init, k.PM.Thrd(init).OwningProc, 0))
	helper := pm.Ptr(rh.Vals[0])
	if r := k.SysRecv(0, init, 3, RecvArgs{EdptSlot: -1}); r.Errno != EWOULDBLOCK {
		t.Fatalf("recv: %v", r.Errno)
	}
	mustOK(t, k.SysKillContainer(0, helper, a))
	ti := k.PM.Thrd(init)
	if ti.State != pm.ThreadRunnable {
		t.Fatalf("outside waiter state = %v", ti.State)
	}
	if ti.IPC.Err == nil {
		t.Fatal("outside waiter woke without error")
	}
	if ti.Endpoints[3] != pm.NoEndpoint {
		t.Fatal("dead endpoint descriptor not revoked")
	}
	if _, ok := k.PM.TryEdpt(ep); ok {
		t.Fatal("endpoint survived container kill")
	}
}

func TestKillContainerDropsBlockedSenderPage(t *testing.T) {
	k, init := boot(t)
	rA := mustOK(t, k.SysNewContainer(0, init, 60, []int{0}))
	a := pm.Ptr(rA.Vals[0])
	rp := mustOK(t, k.SysNewProcessIn(0, init, a))
	rt := mustOK(t, k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	// Root-owned endpoint shared into A; A's thread blocks sending a
	// page on it.
	re := mustOK(t, k.SysNewEndpoint(0, init, 2))
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(tidA).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	mustOK(t, k.SysMmap(0, tidA, 0x30000, 1, hw.Size4K, pt.RW))
	free := k.Alloc.FreeCount4K()
	if r := k.SysSend(0, tidA, 0, SendArgs{SendPage: true, PageVA: 0x30000}); r.Errno != EWOULDBLOCK {
		t.Fatalf("send: %v", r.Errno)
	}
	mustOK(t, k.SysKillContainer(0, init, a))
	// The page's two references (mapping + in-flight message) must both
	// be gone; every page A consumed returns.
	if got := k.Alloc.FreeCount4K(); got <= free {
		t.Fatalf("kill did not reclaim pages: %d <= %d", got, free)
	}
	if ep2, ok := k.PM.TryEdpt(ep); !ok {
		t.Fatal("root's endpoint should survive")
	} else if len(ep2.Queue) != 0 {
		t.Fatal("dead sender still queued on root endpoint")
	}
}

func TestIommuSyscalls(t *testing.T) {
	k, init := boot(t)
	if r := k.SysIommuMap(0, init, 0x1000); r.Errno != ENOENT {
		t.Fatalf("map without domain: %v", r.Errno)
	}
	mustOK(t, k.SysIommuCreateDomain(0, init))
	if r := k.SysIommuCreateDomain(0, init); r.Errno != EALREADY {
		t.Fatalf("double create: %v", r.Errno)
	}
	mustOK(t, k.SysIommuAttach(0, init, 7))
	mustOK(t, k.SysMmap(0, init, 0x50000, 1, hw.Size4K, pt.RW))
	mustOK(t, k.SysIommuMap(0, init, 0x50000))
	proc := k.PM.Proc(k.PM.Thrd(init).OwningProc)
	entry, _ := proc.PageTable.Lookup(0x50000)
	if pa, okk := k.IOMMU.Translate(7, 0x50000); !okk || pa != entry.Phys {
		t.Fatalf("device translation = %#x ok=%v", pa, okk)
	}
	// The DMA pin keeps the page alive across munmap.
	mustOK(t, k.SysMunmap(0, init, 0x50000, 1, hw.Size4K))
	if rc, _ := k.Alloc.RefCount(entry.Phys); rc != 1 {
		t.Fatalf("pinned refcount = %d", rc)
	}
	mustOK(t, k.SysIommuUnmap(0, init, 0x50000))
	meta, _ := k.Alloc.Meta(entry.Phys)
	if meta.State.String() != "free" {
		t.Fatalf("page state after unpin = %v", meta.State)
	}
}

func TestKillProcessDestroysIommuDomain(t *testing.T) {
	k, init := boot(t)
	r := mustOK(t, k.SysNewProcess(0, init))
	proc := pm.Ptr(r.Vals[0])
	rt := mustOK(t, k.SysNewThreadIn(0, init, proc, 0))
	tid := pm.Ptr(rt.Vals[0])
	mustOK(t, k.SysIommuCreateDomain(0, tid))
	mustOK(t, k.SysIommuAttach(0, tid, 9))
	mustOK(t, k.SysMmap(0, tid, 0x60000, 1, hw.Size4K, pt.RW))
	mustOK(t, k.SysIommuMap(0, tid, 0x60000))
	mustOK(t, k.SysKillProcess(0, init, proc))
	if _, okk := k.IOMMU.Translate(9, 0x60000); okk {
		t.Fatal("device translation survived process kill")
	}
	if err := k.IOMMU.CheckWF(); err != nil {
		t.Fatal(err)
	}
}

func TestYield(t *testing.T) {
	k, init := boot(t)
	r := mustOK(t, k.SysNewThread(0, init, 0))
	other := pm.Ptr(r.Vals[0])
	mustOK(t, k.SysYield(0, init))
	if k.PM.Sched().Current(0) != other {
		t.Fatal("yield did not rotate to the other thread")
	}
	mustOK(t, k.SysYield(0, other))
	if k.PM.Sched().Current(0) != init {
		t.Fatal("yield did not rotate back")
	}
}

func TestSyscallsChargeCycles(t *testing.T) {
	k, init := boot(t)
	before := k.Machine.Core(0).Clock.Cycles()
	mustOK(t, k.SysMmap(0, init, 0x1000, 1, hw.Size4K, pt.RW))
	if k.Machine.Core(0).Clock.Cycles() <= before {
		t.Fatal("mmap charged nothing to the invoking core")
	}
	// Core 1 unaffected.
	if k.Machine.Core(1).Clock.Cycles() != 0 {
		t.Fatal("mmap charged the wrong core")
	}
}

// TestBigLockConcurrency exercises the §3 multiprocessor model: syscalls
// arrive concurrently from four cores and serialize under the big lock;
// all invariant-relevant state must come out consistent.
func TestBigLockConcurrency(t *testing.T) {
	k, init := boot(t)
	var tids [4]pm.Ptr
	tids[0] = init
	for core := 1; core < 4; core++ {
		r := mustOK(t, k.SysNewThread(0, init, core))
		tids[core] = pm.Ptr(r.Vals[0])
	}
	done := make(chan error, 4)
	for core := 0; core < 4; core++ {
		go func(core int) {
			tid := tids[core]
			base := hw.VirtAddr(0x10000000 * (core + 1))
			for i := 0; i < 100; i++ {
				va := base + hw.VirtAddr(i*hw.PageSize4K)
				if r := k.SysMmap(core, tid, va, 1, hw.Size4K, pt.RW); r.Errno != OK {
					done <- fmt.Errorf("core %d mmap: %v", core, r.Errno)
					return
				}
				if i%3 == 0 {
					if r := k.SysMunmap(core, tid, va, 1, hw.Size4K); r.Errno != OK {
						done <- fmt.Errorf("core %d munmap: %v", core, r.Errno)
						return
					}
				}
				if i%7 == 0 {
					k.SysYield(core, tid)
				}
			}
			done <- nil
		}(core)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Every core's clock advanced; totals are consistent.
	for core := 0; core < 4; core++ {
		if k.Machine.Core(core).Clock.Cycles() == 0 {
			t.Fatalf("core %d charged nothing", core)
		}
	}
	// The address spaces hold exactly what each loop left mapped.
	proc := k.PM.Proc(k.PM.Thrd(init).OwningProc)
	want := 4 * (100 - 34) // 34 of 100 unmapped per core (i%3==0)
	if got := len(proc.PageTable.AddressSpace()); got != want {
		t.Fatalf("address space has %d mappings, want %d", got, want)
	}
}

// TestSyscallsNeverPanicOnJunk throws structured garbage at every
// syscall: whatever the arguments, the kernel must refuse cleanly, never
// panic (the executable analogue of "user input cannot violate kernel
// safety").
func TestSyscallsNeverPanicOnJunk(t *testing.T) {
	k, init := boot(t)
	r := hw.NewRand(31337)
	junkPtr := func() pm.Ptr {
		switch r.Intn(3) {
		case 0:
			return init
		case 1:
			return pm.Ptr(r.Uint64n(1<<24) &^ 0xfff)
		default:
			return pm.Ptr(r.Uint64())
		}
	}
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("kernel panicked on junk input: %v", p)
		}
	}()
	for i := 0; i < 3000; i++ {
		core := r.Intn(4)
		tid := junkPtr()
		switch r.Intn(12) {
		case 0:
			k.SysMmap(core, tid, hw.VirtAddr(r.Uint64()), int(r.Uint64n(8))-2,
				hw.PageSize(r.Intn(4)), pt.Perm{Write: r.Bool(), User: r.Bool()})
		case 1:
			k.SysMunmap(core, tid, hw.VirtAddr(r.Uint64()), int(r.Uint64n(8))-2, hw.Size4K)
		case 2:
			k.SysNewContainer(core, tid, r.Uint64n(1<<30), []int{int(r.Uint64n(8)) - 2})
		case 3:
			k.SysNewThreadIn(core, tid, junkPtr(), int(r.Uint64n(8))-2)
		case 4:
			k.SysNewEndpoint(core, tid, int(r.Uint64n(40))-4)
		case 5:
			k.SysSend(core, tid, int(r.Uint64n(40))-4, SendArgs{
				SendPage: r.Bool(), PageVA: hw.VirtAddr(r.Uint64()),
				SendEdpt: r.Bool(), EdptSlot: int(r.Uint64n(40)) - 4,
			})
		case 6:
			k.SysRecv(core, tid, int(r.Uint64n(40))-4, RecvArgs{
				PageVA: hw.VirtAddr(r.Uint64()), EdptSlot: int(r.Uint64n(40)) - 4,
			})
		case 7:
			k.SysKillContainer(core, tid, junkPtr())
		case 8:
			k.SysKillContainerBounded(core, tid, junkPtr(), int(r.Uint64n(10))-2)
		case 9:
			k.SysIrqRegister(core, tid, int(r.Uint64n(600))-20, int(r.Uint64n(40))-4)
		case 10:
			k.SysIommuMap(core, tid, hw.VirtAddr(r.Uint64()))
		case 11:
			k.SysCloseEndpoint(core, tid, int(r.Uint64n(40))-4)
		}
		// The init thread may have blocked on a junk-but-valid recv;
		// unblock the trace by waking it through a partner when needed.
		if th := k.PM.Thrd(init); th.State == pm.ThreadBlockedSend || th.State == pm.ThreadBlockedRecv {
			k.unblockForTest(init)
		}
	}
	// The kernel survived; the root container is still sane.
	root := k.PM.Cntr(k.PM.RootContainer)
	if root.UsedPages > root.QuotaPages {
		t.Fatal("junk trace corrupted quota accounting")
	}
}

// TestMunmapShootsDownAllTLBs: the §4.2 consistency requirement — after
// an unmap completes, no core's TLB may still translate the address.
func TestMunmapShootsDownAllTLBs(t *testing.T) {
	k, init := boot(t)
	mustOK(t, k.SysMmap(0, init, 0x400000, 1, hw.Size4K, pt.RW))
	proc := k.PM.Proc(k.PM.Thrd(init).OwningProc)
	cr3 := proc.PageTable.CR3()
	// Warm every core's TLB with the translation, as concurrent threads
	// of the process would.
	tr, okW := k.Machine.MMU.Walk(cr3, 0x400000)
	if !okW {
		t.Fatal("walk failed")
	}
	for c := 0; c < k.Machine.NumCores(); c++ {
		k.Machine.Core(c).TLB.Insert(cr3, 0x400000, tr)
		if _, hit := k.Machine.Core(c).TLB.Lookup(cr3, 0x400000); !hit {
			t.Fatalf("core %d TLB warmup failed", c)
		}
	}
	cyclesBefore := k.Machine.Core(0).Clock.Cycles()
	mustOK(t, k.SysMunmap(0, init, 0x400000, 1, hw.Size4K))
	for c := 0; c < k.Machine.NumCores(); c++ {
		if _, hit := k.Machine.Core(c).TLB.Lookup(cr3, 0x400000); hit {
			t.Fatalf("core %d TLB still translates after munmap", c)
		}
	}
	// The shootdown IPIs were charged to the initiating core.
	if k.Machine.Core(0).Clock.Cycles()-cyclesBefore < hw.CostInvlpg*uint64(k.Machine.NumCores()-1) {
		t.Fatal("remote shootdowns not charged")
	}
}
