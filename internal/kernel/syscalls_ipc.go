package kernel

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
)

// IPC syscalls (§3): endpoints carry scalar registers plus optional
// capabilities — a memory page reference, an endpoint reference, and an
// IOMMU domain identifier. A send with no waiting receiver blocks the
// sender; a receive with no waiting sender blocks the receiver; call and
// reply are the rendezvous fastpaths measured in Table 3.

// SendArgs are the user-visible arguments of send/call.
type SendArgs struct {
	Regs [4]uint64
	// SendPage shares the page mapped at PageVA in the sender's address
	// space (the receiver gains a mapping; the sender keeps its own).
	SendPage bool
	PageVA   hw.VirtAddr
	// GrantPage moves the page mapped at PageVA out of the sender's
	// address space entirely: the sender's mapping is revoked and its
	// quota credited at send, the reference rides the ledger's InFlight
	// container, and the receiver becomes the page's sole owner at
	// delivery — zero-copy bulk transfer by linear ownership instead of
	// scalar copy.
	GrantPage bool
	// SendEdpt shares the endpoint in the sender's descriptor slot
	// EdptSlot.
	SendEdpt bool
	EdptSlot int
	// IOMMUDomain passes a DMA domain identifier as a scalar capability.
	IOMMUDomain uint64
}

// RecvArgs are the user-visible arguments of recv.
type RecvArgs struct {
	// PageVA is where an incoming page gets mapped in the receiver's
	// address space.
	PageVA hw.VirtAddr
	// EdptSlot is where an incoming endpoint descriptor is installed
	// (-1: first free slot).
	EdptSlot int
}

// SysNewEndpoint creates an endpoint charged to the caller's container
// and installs it in the caller's descriptor slot.
func (k *Kernel) SysNewEndpoint(core int, tid pm.Ptr, slot int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("new_endpoint", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] != pm.NoEndpoint {
		return k.post("new_endpoint", tid, fail(EINVAL))
	}
	cntr := k.PM.Proc(t.OwningProc).Owner
	e, err := k.PM.NewEndpoint(cntr, 1)
	if err != nil {
		return k.post("new_endpoint", tid, fail(errnoOf(err)))
	}
	t.Endpoints[slot] = e
	return k.post("new_endpoint", tid, ok(uint64(e)))
}

// SysCloseEndpoint drops the caller's descriptor in slot, releasing its
// reference (the endpoint dies with its last descriptor). A thread
// blocked on the endpoint cannot be the caller (blocked threads cannot
// issue syscalls), so the queue invariants are preserved.
func (k *Kernel) SysCloseEndpoint(core int, tid pm.Ptr, slot int) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planCloseEndpoint(tid, slot) })()
	defer k.gcShards() // runs before leave: drop the shard if the endpoint died
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("close_endpoint", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("close_endpoint", tid, fail(EINVAL))
	}
	ep := t.Endpoints[slot]
	t.Endpoints[slot] = pm.NoEndpoint
	if err := k.PM.EndpointDecRef(ep); err != nil {
		return k.post("close_endpoint", tid, fail(errnoOf(err)))
	}
	return k.post("close_endpoint", tid, ok())
}

// resolveMsg validates and resolves SendArgs into a pm.Msg, taking a
// reference on any transferred page so it survives until delivery. A
// grant additionally revokes the sender's own mapping: the message's
// reference — parked on the ledger's InFlight container — becomes the
// page's only tie to a container until delivery lands it on the
// receiver.
func (k *Kernel) resolveMsg(core int, t *pm.Thread, args SendArgs) (pm.Msg, Errno) {
	msg := pm.Msg{Regs: args.Regs}
	if args.SendPage || args.GrantPage {
		proc := k.PM.Proc(t.OwningProc)
		e, covered := proc.PageTable.Lookup(args.PageVA)
		if !covered {
			return msg, ENOENT
		}
		if err := k.Alloc.IncRef(e.Phys); err != nil {
			return msg, EINVAL
		}
		k.ledgerSend(e.Phys, proc.Owner)
		msg.HasPage = true
		msg.Page = e.Phys
		msg.PageSize = e.Size
		msg.PagePerm = e.Perm
		if args.GrantPage && !k.grantLeak {
			// Ownership moves with the message. The refcount cannot hit
			// zero here: the message's reference was just taken above.
			base := args.PageVA &^ hw.VirtAddr(e.Size.Bytes()-1)
			if _, err := proc.PageTable.Unmap(base); err != nil {
				panic(err) // looked up above; kernel invariant if it fires
			}
			if _, err := k.Alloc.DecRef(e.Phys); err != nil {
				panic(err)
			}
			k.PM.CreditPages(proc.Owner, pagesIn4K(e.Size))
			k.shootdown(core, proc.PageTable.CR3(), base, e.Size)
		}
	}
	if args.SendEdpt {
		if args.EdptSlot < 0 || args.EdptSlot >= pm.MaxEndpoints {
			k.dropMsg(&msg)
			return msg, EINVAL
		}
		ep := t.Endpoints[args.EdptSlot]
		if ep == pm.NoEndpoint {
			k.dropMsg(&msg)
			return msg, ENOENT
		}
		msg.HasEndpoint = true
		msg.Endpoint = ep
	}
	// IOMMU identifiers travel as scalars; validation happens when the
	// receiver binds the domain.
	if args.IOMMUDomain != 0 {
		msg.IOMMUDomain = iommuDomainID(args.IOMMUDomain)
	}
	return msg, OK
}

// dropMsg releases the references a resolved-but-undeliverable message
// holds.
func (k *Kernel) dropMsg(msg *pm.Msg) {
	if msg.HasPage {
		k.ledgerDropInFlight(func() {
			if _, err := k.Alloc.DecRef(msg.Page); err != nil {
				panic(err)
			}
		})
		msg.HasPage = false
	}
}

// deliver hands msg to receiver rt: maps the page at the receiver's
// requested address (charging the receiver's container), installs the
// endpoint descriptor, and stores the scalars. On failure the message's
// references are dropped and the error is reported to the receiver.
func (k *Kernel) deliver(rt *pm.Thread, msg pm.Msg) error {
	if msg.HasPage {
		proc := k.PM.Proc(rt.OwningProc)
		// Page-table nodes this mapping materializes belong to the
		// receiver's container, whichever side drove the rendezvous.
		k.ledgerCtx(proc.Owner)
		if err := k.PM.ChargePages(proc.Owner, pagesIn4K(msg.PageSize)); err != nil {
			k.dropMsg(&msg)
			return err
		}
		nodesBefore := proc.PageTable.PageClosure().Len()
		if err := proc.PageTable.Map(rt.IPC.RecvVA, msg.Page, msg.PageSize, msg.PagePerm); err != nil {
			k.PM.CreditPages(proc.Owner, pagesIn4K(msg.PageSize))
			k.dropMsg(&msg)
			return err
		}
		// Charge any page-table nodes the mapping materialized; if the
		// receiver's quota cannot carry them, the transfer is undone.
		nodesAfter := proc.PageTable.PageClosure().Len()
		if nodesAfter > nodesBefore {
			if err := k.PM.ChargePages(proc.Owner, uint64(nodesAfter-nodesBefore)); err != nil {
				if _, uerr := proc.PageTable.Unmap(rt.IPC.RecvVA); uerr != nil {
					panic(uerr)
				}
				proc.PageTable.PruneEmpty()
				now := proc.PageTable.PageClosure().Len()
				if now < nodesBefore {
					k.PM.CreditPages(proc.Owner, uint64(nodesBefore-now))
				}
				k.PM.CreditPages(proc.Owner, pagesIn4K(msg.PageSize))
				k.dropMsg(&msg)
				return err
			}
		}
		k.ledgerRecv(msg.Page, proc.Owner)
	}
	if msg.HasEndpoint {
		// The transferred endpoint may have been destroyed while the
		// sender sat queued (container kill revokes and frees it); a
		// dangling install would corrupt the refcount invariant.
		if _, alive := k.PM.TryEdpt(msg.Endpoint); !alive {
			return ErrEndpointDead
		}
		slot := rt.IPC.RecvEdptSlot
		if slot < 0 {
			slot = firstFreeSlot(rt)
		}
		if slot < 0 || slot >= pm.MaxEndpoints || rt.Endpoints[slot] != pm.NoEndpoint {
			// No room: the page mapping above stands (the receiver
			// asked for it); only the endpoint transfer fails.
			return ErrEndpointDead
		}
		rt.Endpoints[slot] = msg.Endpoint
		k.PM.EndpointIncRef(msg.Endpoint, 1)
	}
	rt.IPC.Msg = msg
	return nil
}

func firstFreeSlot(t *pm.Thread) int {
	for i, e := range t.Endpoints {
		if e == pm.NoEndpoint {
			return i
		}
	}
	return -1
}

// SysSend sends on the endpoint in the caller's descriptor slot. If a
// receiver is waiting it completes immediately; otherwise the caller
// blocks (EWOULDBLOCK reports "blocked", completion arrives at wake).
func (k *Kernel) SysSend(core int, tid pm.Ptr, slot int, args SendArgs) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planIPC(core, tid, slot, args.SendPage || args.GrantPage) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("send", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("send", tid, fail(EINVAL))
	}
	ep := k.PM.Edpt(t.Endpoints[slot])
	msg, errno := k.resolveMsg(core, t, args)
	if errno != OK {
		return k.post("send", tid, fail(errno))
	}
	k.kclock.Charge(hw.CostEndpointOp)
	if ep.QueuedRecv && len(ep.Queue) > 0 {
		// Rendezvous: pop the receiver, deliver, wake it.
		rptr := ep.Queue[0]
		ep.Queue = ep.Queue[1:]
		rt := k.PM.Thrd(rptr)
		err := k.deliver(rt, msg)
		rt.IPC.WaitingOn = 0
		k.PM.Wake(rptr, err)
		return k.post("send", tid, ok())
	}
	// Block the sender with the resolved message.
	t.IPC.Msg = msg
	t.IPC.WaitingOn = t.Endpoints[slot]
	k.PM.BlockCurrent(tid, pm.ThreadBlockedSend)
	ep.QueuedRecv = false
	ep.Queue = append(ep.Queue, tid)
	k.PM.PickNext(core)
	return k.post("send", tid, fail(EWOULDBLOCK))
}

// SysSendAsync is the non-blocking send a batch drain relies on (a
// blocking op would stall the rest of the ring). If a receiver is
// parked the message is delivered as an ordinary rendezvous; otherwise
// it is appended to the endpoint's bounded buffer and the caller keeps
// running — EAGAIN when the buffer is full, refused *before* the
// message resolves so even a grant leaves the sender untouched.
// Endpoint transfers are rejected: a descriptor sitting in a buffer
// would hold an unaccounted reference across the buffer's lifetime.
func (k *Kernel) SysSendAsync(core int, tid pm.Ptr, slot int, args SendArgs) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planIPC(core, tid, slot, args.SendPage || args.GrantPage) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("send_async", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("send_async", tid, fail(EINVAL))
	}
	if args.SendEdpt {
		return k.post("send_async", tid, fail(EINVAL))
	}
	ep := k.PM.Edpt(t.Endpoints[slot])
	rendezvous := ep.QueuedRecv && len(ep.Queue) > 0
	if !rendezvous && len(ep.Buffer) >= pm.MaxEndpointBuffer {
		return k.post("send_async", tid, fail(EAGAIN))
	}
	msg, errno := k.resolveMsg(core, t, args)
	if errno != OK {
		return k.post("send_async", tid, fail(errno))
	}
	if rendezvous {
		k.kclock.Charge(hw.CostEndpointOp)
		rptr := ep.Queue[0]
		ep.Queue = ep.Queue[1:]
		rt := k.PM.Thrd(rptr)
		err := k.deliver(rt, msg)
		rt.IPC.WaitingOn = 0
		k.PM.Wake(rptr, err)
		return k.post("send_async", tid, ok())
	}
	k.kclock.Charge(hw.CostEndpointBuffer)
	ep.Buffer = append(ep.Buffer, msg)
	return k.post("send_async", tid, ok())
}

// SysRecv receives on the endpoint in the caller's descriptor slot. If a
// sender is waiting its message is delivered immediately; otherwise the
// caller blocks and the message is delivered at wake via the thread's
// IPC state.
func (k *Kernel) SysRecv(core int, tid pm.Ptr, slot int, args RecvArgs) Ret {
	defer k.enterPlan(core, func() lockPlan { return k.planIPC(core, tid, slot, false) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("recv", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("recv", tid, fail(EINVAL))
	}
	ep := k.PM.Edpt(t.Endpoints[slot])
	t.IPC.RecvVA = args.PageVA
	t.IPC.RecvEdptSlot = args.EdptSlot
	k.kclock.Charge(hw.CostEndpointOp)
	if len(ep.Buffer) > 0 {
		// Asynchronously buffered messages drain ahead of any blocked
		// senders: no partner to wake, just the buffer pop.
		msg := ep.Buffer[0]
		ep.Buffer = ep.Buffer[1:]
		k.kclock.Charge(hw.CostEndpointBuffer)
		if err := k.deliver(t, msg); err != nil {
			return k.post("recv", tid, fail(errnoOf(err)))
		}
		return k.post("recv", tid, ok(msg.Regs[0], msg.Regs[1], msg.Regs[2], msg.Regs[3]))
	}
	if !ep.QueuedRecv && len(ep.Queue) > 0 {
		// Rendezvous: pop the sender, take its message, wake it.
		sptr := ep.Queue[0]
		ep.Queue = ep.Queue[1:]
		st := k.PM.Thrd(sptr)
		msg := st.IPC.Msg
		st.IPC.Msg = pm.Msg{}
		st.IPC.WaitingOn = 0
		err := k.deliver(t, msg)
		k.PM.Wake(sptr, nil)
		if err != nil {
			return k.post("recv", tid, fail(errnoOf(err)))
		}
		return k.post("recv", tid, ok(msg.Regs[0], msg.Regs[1], msg.Regs[2], msg.Regs[3]))
	}
	// Block the receiver.
	t.IPC.WaitingOn = t.Endpoints[slot]
	k.PM.BlockCurrent(tid, pm.ThreadBlockedRecv)
	ep.QueuedRecv = true
	ep.Queue = append(ep.Queue, tid)
	k.PM.PickNext(core)
	return k.post("recv", tid, fail(EWOULDBLOCK))
}

// SysCall is the call fastpath (Table 3): it requires a server already
// blocked receiving on the endpoint, delivers the message, blocks the
// caller waiting for the reply, and switches directly to the server —
// one syscall, one direct handoff, no scheduler pass.
func (k *Kernel) SysCall(core int, tid pm.Ptr, slot int, args SendArgs) Ret {
	defer k.enterFastPlan(core, func() lockPlan { return k.planIPC(core, tid, slot, args.SendPage || args.GrantPage) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("call", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("call", tid, fail(EINVAL))
	}
	ep := k.PM.Edpt(t.Endpoints[slot])
	if !ep.QueuedRecv || len(ep.Queue) == 0 {
		return k.post("call", tid, fail(EWOULDBLOCK))
	}
	msg, errno := k.resolveMsg(core, t, args)
	if errno != OK {
		return k.post("call", tid, fail(errno))
	}
	k.kclock.Charge(hw.CostEndpointOp)
	server := ep.Queue[0]
	ep.Queue = ep.Queue[1:]
	st := k.PM.Thrd(server)
	err := k.deliver(st, msg)
	st.IPC.WaitingOn = 0
	k.PM.Wake(server, err)
	// Caller blocks awaiting the reply on the same endpoint.
	t.IPC.RecvVA = 0
	t.IPC.RecvEdptSlot = -1
	t.IPC.WaitingOn = t.Endpoints[slot]
	k.PM.BlockCurrent(tid, pm.ThreadBlockedRecv)
	ep.QueuedRecv = true
	ep.Queue = append(ep.Queue, tid)
	// Direct handoff to the server if it shares the caller's core.
	if st.Core == core {
		k.noteSwitch(true, server)
		k.PM.DirectSwitch(server)
	}
	return k.post("call", tid, fail(EWOULDBLOCK))
}

// SysReply is the reply fastpath: it delivers to a client blocked
// receiving on the endpoint and switches directly back to it.
func (k *Kernel) SysReply(core int, tid pm.Ptr, slot int, args SendArgs) Ret {
	defer k.enterFastPlan(core, func() lockPlan { return k.planIPC(core, tid, slot, args.SendPage || args.GrantPage) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("reply", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("reply", tid, fail(EINVAL))
	}
	ep := k.PM.Edpt(t.Endpoints[slot])
	if !ep.QueuedRecv || len(ep.Queue) == 0 {
		return k.post("reply", tid, fail(EWOULDBLOCK))
	}
	msg, errno := k.resolveMsg(core, t, args)
	if errno != OK {
		return k.post("reply", tid, fail(errno))
	}
	k.kclock.Charge(hw.CostEndpointOp)
	client := ep.Queue[0]
	ep.Queue = ep.Queue[1:]
	ct := k.PM.Thrd(client)
	err := k.deliver(ct, msg)
	ct.IPC.WaitingOn = 0
	k.PM.Wake(client, err)
	if ct.Core == core {
		k.noteSwitch(true, client)
		k.PM.DirectSwitch(client)
	}
	return k.post("reply", tid, ok())
}

// SysReplyRecv is the server fastpath combining reply and the next
// receive in one kernel crossing (the shape seL4's seL4_ReplyRecv has):
// deliver the reply to the waiting client, switch to it if co-located,
// and leave the server blocked receiving on the same endpoint.
func (k *Kernel) SysReplyRecv(core int, tid pm.Ptr, slot int, args SendArgs, recv RecvArgs) Ret {
	defer k.enterFastPlan(core, func() lockPlan { return k.planIPC(core, tid, slot, args.SendPage || args.GrantPage) })()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("reply_recv", tid, fail(EINVAL))
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("reply_recv", tid, fail(EINVAL))
	}
	ep := k.PM.Edpt(t.Endpoints[slot])
	// Reply half.
	if ep.QueuedRecv && len(ep.Queue) > 0 {
		msg, errno := k.resolveMsg(core, t, args)
		if errno != OK {
			return k.post("reply_recv", tid, fail(errno))
		}
		k.kclock.Charge(hw.CostEndpointOp)
		client := ep.Queue[0]
		ep.Queue = ep.Queue[1:]
		ct := k.PM.Thrd(client)
		err := k.deliver(ct, msg)
		ct.IPC.WaitingOn = 0
		k.PM.Wake(client, err)
		defer func() {
			if ct.Core == core && ct.State == pm.ThreadRunnable {
				k.noteSwitch(true, client)
				k.PM.DirectSwitch(client)
			}
		}()
	}
	// Receive half.
	t.IPC.RecvVA = recv.PageVA
	t.IPC.RecvEdptSlot = recv.EdptSlot
	if len(ep.Buffer) > 0 {
		// Buffered messages drain first, exactly as in SysRecv.
		msg := ep.Buffer[0]
		ep.Buffer = ep.Buffer[1:]
		k.kclock.Charge(hw.CostEndpointBuffer)
		if err := k.deliver(t, msg); err != nil {
			return k.post("reply_recv", tid, fail(errnoOf(err)))
		}
		return k.post("reply_recv", tid, ok(msg.Regs[0], msg.Regs[1], msg.Regs[2], msg.Regs[3]))
	}
	if !ep.QueuedRecv && len(ep.Queue) > 0 {
		// A sender is already queued: rendezvous inline.
		sptr := ep.Queue[0]
		ep.Queue = ep.Queue[1:]
		st := k.PM.Thrd(sptr)
		msg := st.IPC.Msg
		st.IPC.Msg = pm.Msg{}
		st.IPC.WaitingOn = 0
		err := k.deliver(t, msg)
		k.PM.Wake(sptr, nil)
		if err != nil {
			return k.post("reply_recv", tid, fail(errnoOf(err)))
		}
		return k.post("reply_recv", tid, ok(msg.Regs[0], msg.Regs[1], msg.Regs[2], msg.Regs[3]))
	}
	// Block waiting for the next request.
	t.IPC.WaitingOn = t.Endpoints[slot]
	k.PM.BlockCurrent(tid, pm.ThreadBlockedRecv)
	ep.QueuedRecv = true
	ep.Queue = append(ep.Queue, tid)
	return k.post("reply_recv", tid, fail(EWOULDBLOCK))
}

// unlinkFromEndpoint removes a blocked thread from the endpoint queue it
// waits on and drops any page reference its pending message holds.
func (k *Kernel) unlinkFromEndpoint(thrd pm.Ptr, t *pm.Thread) {
	if t.IPC.WaitingOn == 0 {
		return
	}
	if ep, okk := k.PM.TryEdpt(t.IPC.WaitingOn); okk {
		for i, q := range ep.Queue {
			if q == thrd {
				ep.Queue = append(ep.Queue[:i], ep.Queue[i+1:]...)
				break
			}
		}
	}
	if t.State == pm.ThreadBlockedSend {
		k.dropMsg(&t.IPC.Msg)
	}
	t.IPC.WaitingOn = 0
}

// destroyEndpoint tears down an endpoint whose owning container is dying:
// queued waiters outside the dying set are woken with EDEADOBJ, every
// descriptor pointing at the endpoint is revoked, and the endpoint page
// returns to the (dying) owner's quota so accounting stays exact through
// the teardown.
func (k *Kernel) destroyEndpoint(eptr pm.Ptr, dying map[pm.Ptr]struct{}) {
	e := k.PM.Edpt(eptr)
	for _, q := range append([]pm.Ptr(nil), e.Queue...) {
		qt := k.PM.Thrd(q)
		if qt.State == pm.ThreadBlockedSend {
			k.dropMsg(&qt.IPC.Msg)
		}
		qt.IPC.WaitingOn = 0
		if _, isDying := dying[qt.OwningCntr]; !isDying {
			k.PM.Wake(q, ErrEndpointDead)
		}
		// Threads inside the dying set stay blocked; the reaper frees
		// them momentarily.
	}
	e.Queue = nil
	// Buffered asynchronous messages die with the endpoint: drop their
	// page references (a granted page frees here — its sender mapping
	// and quota were already settled at send). Buffered messages never
	// carry endpoint descriptors (SysSendAsync refuses SendEdpt), so no
	// buffer scrub is needed when *other* endpoints die.
	for i := range e.Buffer {
		k.dropMsg(&e.Buffer[i])
	}
	e.Buffer = nil
	// Revoke every descriptor referencing the endpoint, and any IRQ
	// bindings holding it (their lines go silent with the driver).
	for _, t := range k.PM.ThrdPerms {
		for i, d := range t.Endpoints {
			if d == eptr {
				t.Endpoints[i] = pm.NoEndpoint
				e.RefCount--
			}
		}
	}
	e.RefCount -= k.dropIRQBindingsFor(eptr)
	if e.RefCount != 0 {
		panic("kernel: endpoint refcount does not match descriptors")
	}
	// Scrub pending messages that transfer the dying endpoint: a sender
	// blocked on some *surviving* endpoint may still carry it in its
	// message, and a later rendezvous would deliver a dangling pointer.
	for _, t := range k.PM.ThrdPerms {
		if t.IPC.Msg.HasEndpoint && t.IPC.Msg.Endpoint == eptr {
			t.IPC.Msg.HasEndpoint = false
			t.IPC.Msg.Endpoint = pm.NoEndpoint
		}
	}
	// Force destruction regardless of the counted refs already dropped.
	k.PM.EndpointIncRef(eptr, 1)
	if err := k.PM.EndpointDecRef(eptr); err != nil {
		panic(err)
	}
}
