package kernel

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
)

// Interrupt dispatch (§3). Atmosphere runs drivers in user space, so an
// interrupt's only kernel-side job is to reach the right process: a
// driver binds an IRQ line to one of its endpoints, and the kernel
// converts each interrupt into an endpoint notification — waking the
// handler thread if it is blocked waiting, or pending the interrupt (as
// a count, with edges coalesced) until the handler next waits. This is
// the vectoring work of the paper's trusted IDT/APIC setup code (§5,
// items 8-9), with the dispatch itself in the verified-role kernel.

// irqState tracks one bound line.
type irqState struct {
	endpoint pm.Ptr
	pending  uint64
}

// SysIrqRegister binds IRQ line irq to the endpoint in the caller's
// descriptor slot. The binding holds a reference on the endpoint (it
// dies only when unregistered or when the endpoint's container dies).
func (k *Kernel) SysIrqRegister(core int, tid pm.Ptr, irq int, slot int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("irq_register", tid, fail(EINVAL))
	}
	if irq < 0 || irq >= 256 || slot < 0 || slot >= pm.MaxEndpoints ||
		t.Endpoints[slot] == pm.NoEndpoint {
		return k.post("irq_register", tid, fail(EINVAL))
	}
	if k.irqs == nil {
		k.irqs = make(map[int]*irqState)
	}
	if _, bound := k.irqs[irq]; bound {
		return k.post("irq_register", tid, fail(EALREADY))
	}
	ep := t.Endpoints[slot]
	k.PM.EndpointIncRef(ep, 1)
	k.irqs[irq] = &irqState{endpoint: ep}
	k.kclock.Charge(hw.CostMMIOWrite) // unmask at the interrupt controller
	return k.post("irq_register", tid, ok())
}

// SysIrqUnregister releases an IRQ binding owned by the caller (the
// caller must hold a descriptor to the bound endpoint).
func (k *Kernel) SysIrqUnregister(core int, tid pm.Ptr, irq int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("irq_unregister", tid, fail(EINVAL))
	}
	st, bound := k.irqs[irq]
	if !bound {
		return k.post("irq_unregister", tid, fail(ENOENT))
	}
	holds := false
	for _, e := range t.Endpoints {
		if e == st.endpoint {
			holds = true
		}
	}
	if !holds {
		return k.post("irq_unregister", tid, fail(EPERM))
	}
	delete(k.irqs, irq)
	if err := k.PM.EndpointDecRef(st.endpoint); err != nil {
		return k.post("irq_unregister", tid, fail(errnoOf(err)))
	}
	k.kclock.Charge(hw.CostMMIOWrite) // mask the line
	return k.post("irq_unregister", tid, ok())
}

// SysIrqWait is the handler's wait: if interrupts are pending on the
// line, they are consumed immediately (the count returned in Vals[1]);
// otherwise the caller blocks receiving on the bound endpoint and is
// woken by the next interrupt.
func (k *Kernel) SysIrqWait(core int, tid pm.Ptr, irq int) Ret {
	defer k.enter(core)()
	t, okk := k.callerThread(tid)
	if !okk {
		return k.post("irq_wait", tid, fail(EINVAL))
	}
	st, bound := k.irqs[irq]
	if !bound {
		return k.post("irq_wait", tid, fail(ENOENT))
	}
	holds := false
	for _, e := range t.Endpoints {
		if e == st.endpoint {
			holds = true
		}
	}
	if !holds {
		return k.post("irq_wait", tid, fail(EPERM))
	}
	if st.pending > 0 {
		n := st.pending
		st.pending = 0
		k.kclock.Charge(hw.CostCacheTouch * 2)
		return k.post("irq_wait", tid, ok(uint64(irq), n))
	}
	ep := k.PM.Edpt(st.endpoint)
	t.IPC.RecvVA = 0
	t.IPC.RecvEdptSlot = -1
	t.IPC.WaitingOn = st.endpoint
	k.kclock.Charge(hw.CostEndpointOp)
	k.PM.BlockCurrent(tid, pm.ThreadBlockedRecv)
	ep.QueuedRecv = true
	ep.Queue = append(ep.Queue, tid)
	k.PM.PickNext(core)
	return k.post("irq_wait", tid, fail(EWOULDBLOCK))
}

// RaiseIRQ is the device-side entry: vector through the IDT, then
// either wake a blocked handler with the interrupt message or pend the
// edge. Devices call it with the core the interrupt targets.
func (k *Kernel) RaiseIRQ(core int, irq int) {
	k.big.Lock()
	cclk := &k.Machine.Core(core).Clock
	// Interrupt dispatch contends for the big lock like a syscall does
	// (§3: interrupts serialize too); all of its work is lock-held.
	arrival := cclk.Cycles()
	wait := k.lock.Acquire(arrival)
	if wait > 0 {
		cclk.Charge(wait)
		k.lockWait(core, arrival, wait)
	}
	if k.cobs != nil {
		k.cobs.Acquired(core, k.bigID, "irq")
	}
	start := k.kclock.Cycles()
	base := cclk.Cycles()
	defer func() {
		k.noteIRQ(core, irq, base, k.kclock.Cycles()-start)
		cclk.Charge(k.kclock.Cycles() - start)
		if k.cobs != nil {
			// Interrupt dispatch has no calling container: attribute the
			// wait to the "irq" pseudo-syscall, unowned.
			k.cobs.AttributeWait(k.bigID, "irq", 0, core, wait)
			k.cobs.Released(core, k.bigID)
		}
		k.lock.Release(cclk.Cycles())
		k.big.Unlock()
	}()
	if k.IRQFilter != nil && !k.IRQFilter(core, irq) {
		k.noteIRQDropped()
		return // injected lost edge: never reaches the IDT
	}
	k.kclock.Charge(hw.CostInterruptDispatch)
	st, bound := k.irqs[irq]
	if !bound {
		return // spurious/unbound interrupt: dropped, as hardware masks it
	}
	ep, okk := k.PM.TryEdpt(st.endpoint)
	if !okk {
		return
	}
	if ep.QueuedRecv && len(ep.Queue) > 0 {
		handler := ep.Queue[0]
		ep.Queue = ep.Queue[1:]
		ht := k.PM.Thrd(handler)
		ht.IPC.Msg = pm.Msg{Regs: [4]uint64{uint64(irq), st.pending + 1}}
		ht.IPC.WaitingOn = 0
		st.pending = 0
		k.PM.Wake(handler, nil)
		return
	}
	st.pending++
}

// IRQBindings exposes the binding table to the verifier (endpoint
// reference counting must account for IRQ-held references).
func (k *Kernel) IRQBindings() map[int]pm.Ptr {
	out := make(map[int]pm.Ptr, len(k.irqs))
	for irq, st := range k.irqs {
		out[irq] = st.endpoint
	}
	return out
}

// PendingIRQ reports the pended count on a line (tests).
func (k *Kernel) PendingIRQ(irq int) uint64 {
	if st, okk := k.irqs[irq]; okk {
		return st.pending
	}
	return 0
}

// dropIRQBindingsFor removes bindings whose endpoint is being destroyed
// with its container; the binding's reference is surrendered without a
// decref (the endpoint's teardown zeroes the count itself).
func (k *Kernel) dropIRQBindingsFor(ep pm.Ptr) int {
	dropped := 0
	for irq, st := range k.irqs {
		if st.endpoint == ep {
			delete(k.irqs, irq)
			dropped++
		}
	}
	return dropped
}
