package kernel

import (
	"atmosphere/internal/obs/contend"
)

// Contention-observatory glue (internal/obs/contend). The big lock
// registers as the frontier "big/kernel"; container and endpoint shards
// register as "container/<name>" and "endpoint/<name>" frontiers as
// their plans first touch them (shard.go). enterWith reports every
// acquisition into the observatory (and, when the lock-order checker is
// armed, validates it against the declared ordering), and the leave
// closure attributes each held frontier's wait cycles to the (syscall,
// container, core) the funnel resolved meanwhile. RaiseIRQ attributes
// under the pseudo-syscall "irq". Like the tracer and the ledger, the
// observatory only reads state — attaching it never changes a charged
// cycle.

// AttachContention wires a contention observatory into the kernel: the
// big lock is named (class "big", instance "kernel", unless an identity
// was already set) and registered as a frontier, every existing shard
// registers in creation order (new shards register as they are
// created), the root container gets its display name, the scheduler's
// run-queue delay stream is attached, and — when AttachObs already
// wired a tracer or metrics registry — the observatory's counter tracks
// and gauges register there too. Pass nil to detach.
func (k *Kernel) AttachContention(o *contend.Observatory) {
	k.big.Lock()
	defer k.big.Unlock()
	k.cobs = o
	k.cSys, k.cCntr = "", 0
	if o == nil {
		k.lock.SetObserver(nil)
		for _, s := range k.shards {
			s.sim.SetObserver(nil)
			s.id = -1
		}
		k.PM.SetSchedObserver(nil)
		return
	}
	if k.lock.Class() == "" {
		k.lock.SetIdentity("big", "kernel")
	}
	if k.obs != nil {
		o.AttachTrace(k.obs.trace)
	}
	k.bigID = o.Register(&k.lock)
	for _, s := range k.shards {
		s.id = o.Register(&s.sim)
	}
	o.NameContainer(k.PM.RootContainer, "root")
	if k.obs != nil && k.obs.metrics != nil {
		o.RegisterMetrics(k.obs.metrics)
	}
	k.PM.SetSchedObserver(o)
}

// Contention returns the attached observatory (nil when detached).
func (k *Kernel) Contention() *contend.Observatory { return k.cobs }

// ArmLockOrder arms the attached observatory's runtime lock-order
// checker with the kernel's declared ordering (contend.KernelOrder) for
// this machine's core count. No-op without an observatory; the checker
// stays off by default — tests and schedule exploration arm it.
func (k *Kernel) ArmLockOrder() {
	k.big.Lock()
	defer k.big.Unlock()
	if k.cobs != nil {
		k.cobs.ArmOrder(contend.KernelOrder(), k.Machine.NumCores())
	}
}
