package verify

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// Recursive formulations of the structural invariants — the shape the
// paper argues against (§4.1, §6.2). They compute the same properties as
// the flat checks in invariants.go but by recursive descent through the
// object graph, re-deriving ghost state instead of validating it in one
// pass. The ablation benchmark (bench/ablation) compares their running
// time against the flat versions, reproducing the §6.2 argument that
// flat storage makes the obligations cheaper to discharge.

// ContainerTreeWFRecursive checks the same properties as the flat
// ContainerTreeWF, but the way a recursive specification forces: each
// node's path is re-derived by recursing through its parents
// (child_resolve_path_wf unrolled, §4.1), and each node's subtree is
// re-derived by full recursive descent through its children. Without
// the flat global view these per-node derivations cannot be shared, so
// the total work is O(n · depth) for paths and O(Σ subtree sizes) for
// subtrees — the blowup that makes recursive obligations expensive to
// discharge (§6.2).
func ContainerTreeWFRecursive(k *kernel.Kernel) error {
	cm := k.PM.CntrPerms
	// Reachability and acyclicity by one recursive descent.
	visited := make(map[pm.Ptr]bool, len(cm))
	var reach func(ptr pm.Ptr) error
	reach = func(ptr pm.Ptr) error {
		if visited[ptr] {
			return fmt.Errorf("container %#x reachable twice (cycle or sharing)", ptr)
		}
		visited[ptr] = true
		c, ok := cm[ptr]
		if !ok {
			return fmt.Errorf("reachable container %#x has no permission", ptr)
		}
		for _, ch := range c.Children {
			if err := reach(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := reach(k.PM.RootContainer); err != nil {
		return err
	}
	if len(visited) != len(cm) {
		return fmt.Errorf("%d containers unreachable from root", len(cm)-len(visited))
	}
	// Per-node recursive re-derivation (no sharing between nodes).
	for ptr, c := range cm {
		path := k.PM.ResolvePathRecursive(ptr)
		if len(path) != len(c.Path) || len(path) != c.Depth {
			return fmt.Errorf("container %#x ghost path length %d, derived %d (depth %d)",
				ptr, len(c.Path), len(path), c.Depth)
		}
		for i := range path {
			if path[i] != c.Path[i] {
				return fmt.Errorf("container %#x ghost path diverges at %d", ptr, i)
			}
		}
		subtree := k.PM.SubtreeRecursive(ptr)
		if len(subtree) != len(c.Subtree) {
			return fmt.Errorf("container %#x ghost subtree %d, derived %d",
				ptr, len(c.Subtree), len(subtree))
		}
		for s := range subtree {
			if _, ok := c.Subtree[s]; !ok {
				return fmt.Errorf("container %#x ghost subtree missing %#x", ptr, s)
			}
		}
	}
	return nil
}

// DomainThreadsRecursive computes T_A — all threads of a container
// subtree — the recursive way the paper describes (§4.3): walk the
// container tree level by level, then each container's processes, then
// each process's threads. Contrast pm.ThreadsOf, which reads the flat
// ghost sets directly.
func DomainThreadsRecursive(k *kernel.Kernel, cntr pm.Ptr) map[pm.Ptr]struct{} {
	out := make(map[pm.Ptr]struct{})
	var walk func(c pm.Ptr)
	walk = func(c pm.Ptr) {
		cc := k.PM.Cntr(c)
		for p := range cc.Procs {
			for _, th := range k.PM.Proc(p).Threads {
				out[th] = struct{}{}
			}
		}
		for _, ch := range cc.Children {
			walk(ch)
		}
	}
	walk(cntr)
	return out
}

// PTRefinementRecursive checks the page-table refinement the way a
// recursive, hierarchically-owned specification forces (the NrOS shape
// the paper contrasts with flat storage, §6.2): the address space is
// reconstructed by recursive descent, merging each subtree's mapping
// set level by level, and at every level of the merge the accumulated
// mappings are re-validated against a hardware walk — the unrolling of
// the recursive spec through the PML levels. Work is O(entries × depth)
// in walks plus O(entries × depth) in map merging, against the flat
// variant's single pass (pt.CheckRefinement).
func PTRefinementRecursive(table *pt.PageTable, mmu *hw.MMU) error {
	abstract := table.AddressSpace()
	merged, err := recurseLevel(table, mmu, table.CR3(), 4, 0)
	if err != nil {
		return err
	}
	if len(merged) != len(abstract) {
		return fmt.Errorf("recursive refinement: %d derived vs %d abstract", len(merged), len(abstract))
	}
	for va, e := range merged {
		ae, ok := abstract[va]
		if !ok || ae != e {
			return fmt.Errorf("recursive refinement: %#x derived %+v abstract %+v ok=%v", va, e, ae, ok)
		}
	}
	return nil
}

// recurseLevel rebuilds the mapping set of the subtree rooted at one
// table node and re-validates every mapping it returns against the MMU
// — at each level, so an entry at depth d is re-checked d times, as the
// unrolled recursive proof re-establishes subtree properties per level.
func recurseLevel(table *pt.PageTable, mmu *hw.MMU, node hw.PhysAddr, level int, vaBase uint64) (map[hw.VirtAddr]pt.MapEntry, error) {
	out := make(map[hw.VirtAddr]pt.MapEntry)
	m := table.Mem()
	shift := uint(12 + 9*(level-1))
	for i := 0; i < hw.EntriesPerTable; i++ {
		e := m.ReadU64(node + hw.PhysAddr(i*hw.PtrSize))
		if e&hw.PtePresent == 0 {
			continue
		}
		va := vaBase | uint64(i)<<shift
		if level == 1 || e&hw.PteHuge != 0 {
			cva := canonical(va)
			entry, ok := table.Lookup(cva)
			if !ok {
				return nil, fmt.Errorf("recursive refinement: concrete leaf %#x missing from ghost", cva)
			}
			out[cva] = entry
			continue
		}
		sub, err := recurseLevel(table, mmu, hw.PhysAddr(e&hw.PteAddrMask), level-1, va)
		if err != nil {
			return nil, err
		}
		// Merge the child's set and re-validate it at this level (the
		// per-level re-derivation flat storage avoids).
		for sva, se := range sub {
			tr, ok := mmu.Walk(table.CR3(), sva)
			if !ok || tr.Phys != se.Phys {
				return nil, fmt.Errorf("recursive refinement: MMU disagrees at %#x (level %d)", sva, level)
			}
			out[sva] = se
		}
	}
	return out, nil
}

func canonical(va uint64) hw.VirtAddr {
	if va&(1<<47) != 0 {
		va |= 0xffff_0000_0000_0000
	}
	return hw.VirtAddr(va)
}
