package verify

import (
	"fmt"

	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/pm"
)

// StepWatcher checks the full well-formedness suite after every kernel
// transition by riding the kernel's PostSyscall hook. Where Checker
// wraps each syscall explicitly (spec + WF per call site), the watcher
// covers transitions the harness does not issue itself — the syscalls a
// driver environment makes internally, the bounded-kill rounds of a
// supervisor recovery — which is exactly what a faulty trace exercises:
// every step of the trace, including mid-recovery states, must satisfy
// TotalWF (page-closure leak freedom included, via MemoryWF/QuotaWF).
type StepWatcher struct {
	K *kernel.Kernel
	// Every checks only each Nth transition when > 1 (full-suite scans
	// are O(state); chaos workloads run tens of thousands of steps).
	Every uint64

	Steps      uint64 // transitions observed
	Checked    uint64 // transitions checked
	Violations []error

	prev func(name string, caller pm.Ptr, ret kernel.Ret)
}

// Watch installs a step watcher on the kernel, chaining any existing
// PostSyscall hook. every selects the checking stride (0 and 1 both
// mean every transition). When the kernel carries a metrics registry,
// the watcher's counters are published as "verify.*" gauges and the
// cycle gap between checked transitions as a histogram.
func Watch(k *kernel.Kernel, every uint64) *StepWatcher {
	if every == 0 {
		every = 1
	}
	w := &StepWatcher{K: k, Every: every, prev: k.PostSyscall}
	var gap *obs.Histogram
	var lastChecked uint64
	if m := k.Metrics(); m != nil {
		m.Gauge("verify.steps", func() uint64 { return w.Steps })
		m.Gauge("verify.checked", func() uint64 { return w.Checked })
		m.Gauge("verify.violations", func() uint64 { return uint64(len(w.Violations)) })
		gap = m.Histogram("verify.step.cycles", nil)
		lastChecked = k.Machine.TotalCycles()
	}
	k.PostSyscall = func(name string, caller pm.Ptr, ret kernel.Ret) {
		if w.prev != nil {
			w.prev(name, caller, ret)
		}
		w.Steps++
		if w.Steps%w.Every != 0 {
			return
		}
		w.Checked++
		if gap != nil {
			now := k.Machine.TotalCycles()
			gap.Observe(now - lastChecked)
			lastChecked = now
		}
		if err := TotalWF(k); err != nil {
			w.Violations = append(w.Violations,
				fmt.Errorf("step %d after %s: %w", w.Steps, name, err))
		}
	}
	return w
}

// Detach restores the kernel's previous PostSyscall hook.
func (w *StepWatcher) Detach() { w.K.PostSyscall = w.prev }

// Err returns the first violation, or nil.
func (w *StepWatcher) Err() error {
	if len(w.Violations) == 0 {
		return nil
	}
	return w.Violations[0]
}
