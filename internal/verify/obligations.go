package verify

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// An Obligation is the executable stand-in for one verified function's
// proof obligations: it builds the scenario the function's specification
// quantifies over and discharges the checks. The runner times each
// obligation individually (Figure 2) and the whole suite with 1 and N
// workers (Table 2).
type Obligation struct {
	// Name matches the paper's function naming (syscall_mmap,
	// new_container, page_table::map_4k_page, ...).
	Name string
	// Module groups obligations the way Table 2 groups systems.
	Module string
	// Run builds a fresh scenario and discharges the obligation.
	Run func() error
}

// Timing is one obligation's measured verification time.
type Timing struct {
	Name    string
	Module  string
	Elapsed time.Duration
}

// obligationCfg is a mid-sized machine: large enough that the O(state)
// invariant scans dominate (as SMT search dominates in Verus), small
// enough to keep the suite interactive.
func obligationCfg() hw.Config { return hw.Config{Frames: 4096, Cores: 4, TLBSlots: 256} }

// preparedKernel builds a standard scenario: a container tree three deep
// with processes, threads, mappings, and endpoints — the state each
// obligation's checks quantify over.
func preparedKernel() (*Checker, pm.Ptr, error) {
	c, init, err := NewChecker(obligationCfg())
	if err != nil {
		return nil, 0, err
	}
	c.SkipWF = true // obligations discharge their own targeted checks
	tid := init
	for i := 0; i < 3; i++ {
		// Nested quotas shrink so each child fits in its parent.
		r, err := c.NewContainer(0, tid, uint64(300-i*120), []int{0, 1})
		if err != nil || r.Errno != kernel.OK {
			return nil, 0, fmt.Errorf("prepare container: %v %v", r.Errno, err)
		}
		cn := pm.Ptr(r.Vals[0])
		rp, err := c.NewProcessIn(0, tid, cn)
		if err != nil || rp.Errno != kernel.OK {
			return nil, 0, fmt.Errorf("prepare proc: %v %v", rp.Errno, err)
		}
		rt, err := c.NewThreadIn(0, tid, pm.Ptr(rp.Vals[0]), 0)
		if err != nil || rt.Errno != kernel.OK {
			return nil, 0, fmt.Errorf("prepare thread: %v %v", rt.Errno, err)
		}
		tid = pm.Ptr(rt.Vals[0])
		if _, err := c.Mmap(0, tid, hw.VirtAddr(0x10000000+i*0x1000000), 16, hw.Size4K, pt.RW); err != nil {
			return nil, 0, err
		}
		if _, err := c.NewEndpoint(0, tid, 0); err != nil {
			return nil, 0, err
		}
	}
	return c, init, nil
}

// syscallObligation produces an obligation that replays a checked
// syscall loop `iters` times on a fresh prepared kernel.
func syscallObligation(name, module string, iters int,
	body func(c *Checker, init pm.Ptr, i int) error) Obligation {
	return Obligation{Name: name, Module: module, Run: func() error {
		c, init, err := preparedKernel()
		if err != nil {
			return err
		}
		c.SkipWF = false
		for i := 0; i < iters; i++ {
			if err := body(c, init, i); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}}
}

func expectOK(r kernel.Ret, err error) error {
	if err != nil {
		return err
	}
	if r.Errno != kernel.OK && r.Errno != kernel.EWOULDBLOCK {
		return fmt.Errorf("unexpected errno %v", r.Errno)
	}
	return nil
}

// Obligations is the registry of per-function verification obligations —
// the rows of Figure 2.
func Obligations() []Obligation {
	var obls []Obligation

	// --- memory subsystem (page allocator + mmap paths) ------------------
	obls = append(obls,
		syscallObligation("syscall_mmap", "memory", 12, func(c *Checker, init pm.Ptr, i int) error {
			return expectOK(c.Mmap(0, init, hw.VirtAddr(0x20000000+i*0x100000), 8, hw.Size4K, pt.RW))
		}),
		syscallObligation("syscall_munmap", "memory", 12, func(c *Checker, init pm.Ptr, i int) error {
			va := hw.VirtAddr(0x20000000 + i*0x100000)
			if err := expectOK(c.Mmap(0, init, va, 8, hw.Size4K, pt.RW)); err != nil {
				return err
			}
			return expectOK(c.Munmap(0, init, va, 8, hw.Size4K))
		}),
		syscallObligation("syscall_mmap_quota_fail", "memory", 8, func(c *Checker, init pm.Ptr, i int) error {
			r, err := c.Mmap(0, init, hw.VirtAddr(0x30000000), 1<<19, hw.Size4K, pt.RW)
			if err != nil {
				return err
			}
			if r.Errno == kernel.OK {
				return fmt.Errorf("expected quota failure")
			}
			return nil
		}),
		Obligation{Name: "alloc_page_4k_post", Module: "memory", Run: func() error {
			c, _, err := preparedKernel()
			if err != nil {
				return err
			}
			for i := 0; i < 400; i++ {
				before := c.K.Alloc.Snapshot()
				p, err := c.K.Alloc.AllocPage4K(0)
				if err != nil {
					return err
				}
				after := c.K.Alloc.Snapshot()
				if !before.Free4K.Contains(p) || after.Free4K.Contains(p) {
					return fmt.Errorf("alloc postcondition violated")
				}
				if err := c.K.Alloc.FreePage(p); err != nil {
					return err
				}
			}
			return nil
		}},
		Obligation{Name: "page_state_partition", Module: "memory", Run: func() error {
			c, _, err := preparedKernel()
			if err != nil {
				return err
			}
			for i := 0; i < 40; i++ {
				if err := MemoryWF(c.K); err != nil {
					return err
				}
			}
			return nil
		}},
	)

	// --- page table subsystem --------------------------------------------
	obls = append(obls,
		Obligation{Name: "page_table::map_4k_page", Module: "page_table", Run: func() error {
			return ptObligation(60, hw.Size4K, false)
		}},
		Obligation{Name: "page_table::map_2m_page", Module: "page_table", Run: func() error {
			return ptObligation(8, hw.Size2M, false)
		}},
		Obligation{Name: "page_table::unmap_page", Module: "page_table", Run: func() error {
			return ptObligation(60, hw.Size4K, true)
		}},
		Obligation{Name: "page_table::refinement", Module: "page_table", Run: func() error {
			c, init, err := preparedKernel()
			if err != nil {
				return err
			}
			if _, err := c.Mmap(0, init, 0x40000000, 64, hw.Size4K, pt.RW); err != nil {
				return err
			}
			proc := c.K.PM.Proc(c.K.PM.Thrd(init).OwningProc)
			for i := 0; i < 25; i++ {
				if err := proc.PageTable.CheckRefinement(c.K.Machine.MMU); err != nil {
					return err
				}
			}
			return nil
		}},
		Obligation{Name: "page_table::structure", Module: "page_table", Run: func() error {
			c, init, err := preparedKernel()
			if err != nil {
				return err
			}
			if _, err := c.Mmap(0, init, 0x40000000, 64, hw.Size4K, pt.RW); err != nil {
				return err
			}
			proc := c.K.PM.Proc(c.K.PM.Thrd(init).OwningProc)
			for i := 0; i < 50; i++ {
				if err := proc.PageTable.CheckStructure(); err != nil {
					return err
				}
			}
			return nil
		}},
	)

	// --- process manager ---------------------------------------------------
	obls = append(obls,
		syscallObligation("new_container", "process_manager", 10, func(c *Checker, init pm.Ptr, i int) error {
			return expectOK(c.NewContainer(0, init, 5, []int{0}))
		}),
		syscallObligation("new_proc", "process_manager", 10, func(c *Checker, init pm.Ptr, i int) error {
			return expectOK(c.NewProcess(0, init))
		}),
		syscallObligation("new_thread", "process_manager", 10, func(c *Checker, init pm.Ptr, i int) error {
			return expectOK(c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0))
		}),
		syscallObligation("new_endpoint", "process_manager", 10, func(c *Checker, init pm.Ptr, i int) error {
			th := c.K.PM.Thrd(init)
			for s, e := range th.Endpoints {
				if e == pm.NoEndpoint {
					return expectOK(c.NewEndpoint(0, init, s))
				}
				if s == pm.MaxEndpoints-1 {
					th.Endpoints = [pm.MaxEndpoints]pm.Ptr{th.Endpoints[0]}
				}
			}
			return nil
		}),
		syscallObligation("exit_thread", "process_manager", 8, func(c *Checker, init pm.Ptr, i int) error {
			r, err := c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0)
			if err != nil {
				return err
			}
			return expectOK(c.ExitThread(0, pm.Ptr(r.Vals[0])))
		}),
		syscallObligation("kill_container", "process_manager", 6, func(c *Checker, init pm.Ptr, i int) error {
			r, err := c.NewContainer(0, init, 20, []int{0})
			if err != nil {
				return err
			}
			rp, err := c.NewProcessIn(0, init, pm.Ptr(r.Vals[0]))
			if err != nil {
				return err
			}
			if _, err := c.NewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0); err != nil {
				return err
			}
			return expectOK(c.KillContainer(0, init, pm.Ptr(r.Vals[0])))
		}),
		syscallObligation("kill_proc", "process_manager", 8, func(c *Checker, init pm.Ptr, i int) error {
			r, err := c.NewProcess(0, init)
			if err != nil {
				return err
			}
			return expectOK(c.KillProcess(0, init, pm.Ptr(r.Vals[0])))
		}),
		syscallObligation("container_tree_wf", "process_manager", 60, func(c *Checker, init pm.Ptr, i int) error {
			return ContainerTreeWF(c.K)
		}),
		syscallObligation("threads_wf", "process_manager", 80, func(c *Checker, init pm.Ptr, i int) error {
			return ThreadsWF(c.K)
		}),
		syscallObligation("quota_wf", "process_manager", 60, func(c *Checker, init pm.Ptr, i int) error {
			return QuotaWF(c.K)
		}),
	)

	// --- IPC -----------------------------------------------------------------
	obls = append(obls,
		Obligation{Name: "endpoint_send_recv", Module: "ipc", Run: ipcObligation(false, 12)},
		Obligation{Name: "endpoint_call_reply", Module: "ipc", Run: ipcObligation(true, 12)},
		syscallObligation("endpoints_wf", "ipc", 80, func(c *Checker, init pm.Ptr, i int) error {
			return EndpointsWF(c.K)
		}),
		syscallObligation("scheduler_wf", "ipc", 80, func(c *Checker, init pm.Ptr, i int) error {
			return SchedulerWF(c.K)
		}),
		syscallObligation("syscall_yield", "ipc", 20, func(c *Checker, init pm.Ptr, i int) error {
			return expectOK(c.Yield(0, init))
		}),
	)

	// --- IOMMU -----------------------------------------------------------------
	obls = append(obls,
		syscallObligation("iommu_map_unmap", "iommu", 8, func(c *Checker, init pm.Ptr, i int) error {
			if i == 0 {
				if err := expectOK(c.IommuCreateDomain(0, init)); err != nil {
					return err
				}
			}
			va := hw.VirtAddr(0x50000000 + i*hw.PageSize4K)
			if err := expectOK(c.Mmap(0, init, va, 1, hw.Size4K, pt.RW)); err != nil {
				return err
			}
			if err := expectOK(c.IommuMap(0, init, va)); err != nil {
				return err
			}
			return expectOK(c.IommuUnmap(0, init, va))
		}),
	)

	// --- interrupts & revocation extensions --------------------------------
	obls = append(obls,
		syscallObligation("irq_register_wait", "ipc", 8, func(c *Checker, init pm.Ptr, i int) error {
			if i == 0 {
				th := c.K.PM.Thrd(init)
				slot := -1
				for s, e := range th.Endpoints {
					if e == pm.NoEndpoint {
						slot = s
						break
					}
				}
				if err := expectOK(c.NewEndpoint(0, init, slot)); err != nil {
					return err
				}
				if err := expectOK(c.IrqRegister(0, init, 40, slot)); err != nil {
					return err
				}
			}
			c.K.RaiseIRQ(0, 40)
			return expectOK(c.IrqWait(0, init, 40))
		}),
		syscallObligation("kill_container_bounded", "process_manager", 3, func(c *Checker, init pm.Ptr, i int) error {
			r, err := c.NewContainer(0, init, 25, []int{0})
			if err != nil {
				return err
			}
			rp, err := c.NewProcessIn(0, init, pm.Ptr(r.Vals[0]))
			if err != nil {
				return err
			}
			rt, err := c.NewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0)
			if err != nil {
				return err
			}
			if _, err := c.Mmap(0, pm.Ptr(rt.Vals[0]), 0x700000, 4, hw.Size4K, pt.RW); err != nil {
				return err
			}
			for {
				kr, err := c.KillContainerBounded(0, init, pm.Ptr(r.Vals[0]), 2)
				if err != nil {
					return err
				}
				if kr.Errno == kernel.OK {
					return nil
				}
				if kr.Errno != kernel.EAGAIN {
					return fmt.Errorf("bounded kill: %v", kr.Errno)
				}
			}
		}),
		syscallObligation("close_endpoint", "ipc", 10, func(c *Checker, init pm.Ptr, i int) error {
			th := c.K.PM.Thrd(init)
			slot := -1
			for s, e := range th.Endpoints {
				if e == pm.NoEndpoint {
					slot = s
					break
				}
			}
			if err := expectOK(c.NewEndpoint(0, init, slot)); err != nil {
				return err
			}
			return expectOK(c.CloseEndpoint(0, init, slot))
		}),
	)
	return obls
}

// ptObligation maps and optionally unmaps pages on a dedicated table,
// with per-step structure and refinement checks.
func ptObligation(n int, size hw.PageSize, unmap bool) error {
	c, init, err := preparedKernel()
	if err != nil {
		return err
	}
	c.SkipWF = true
	step := size.Bytes()
	for i := 0; i < n; i++ {
		va := hw.VirtAddr(0x80000000 + uint64(i)*step)
		if size == hw.Size2M {
			if _, err := c.K.Alloc.Merge2M(); err != nil {
				break // fragmented: fine, the obligation covered the merges that fit
			}
		}
		r, err := c.Mmap(0, init, va, 1, size, pt.RW)
		if err != nil {
			return err
		}
		if r.Errno != kernel.OK {
			break
		}
		if unmap {
			if _, err := c.Munmap(0, init, va, 1, size); err != nil {
				return err
			}
		}
	}
	proc := c.K.PM.Proc(c.K.PM.Thrd(init).OwningProc)
	if err := proc.PageTable.CheckStructure(); err != nil {
		return err
	}
	return proc.PageTable.CheckRefinement(c.K.Machine.MMU)
}

// ipcObligation builds a client/server pair and replays checked
// rendezvous.
func ipcObligation(callReply bool, iters int) func() error {
	return func() error {
		c, init, err := preparedKernel()
		if err != nil {
			return err
		}
		c.SkipWF = false
		r, err := c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0)
		if err != nil {
			return err
		}
		server := pm.Ptr(r.Vals[0])
		re, err := c.NewEndpoint(0, init, 1)
		if err != nil {
			return err
		}
		ep := pm.Ptr(re.Vals[0])
		c.K.PM.Thrd(server).Endpoints[1] = ep
		c.K.PM.EndpointIncRef(ep, 1)
		if callReply {
			// The Table 3 server loop: one initial receive, then the
			// checked call/reply_recv fastpath per round.
			if err := expectOK(c.Recv(0, server, 1, kernel.RecvArgs{EdptSlot: -1})); err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				if err := expectOK(c.Call(0, init, 1, kernel.SendArgs{Regs: [4]uint64{uint64(i)}})); err != nil {
					return err
				}
				if err := expectOK(c.ReplyRecv(0, server, 1, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1})); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < iters; i++ {
			if err := expectOK(c.Recv(0, server, 1, kernel.RecvArgs{EdptSlot: -1})); err != nil {
				return err
			}
			if err := expectOK(c.Send(0, init, 1, kernel.SendArgs{Regs: [4]uint64{uint64(i)}})); err != nil {
				return err
			}
		}
		return nil
	}
}

// AblationObligations pairs each structural obligation's flat and
// recursive forms for the §6.2 comparison.
func AblationObligations() (flat, recursive []Obligation) {
	// Scenarios are built once, outside the timed obligations, so the
	// measured region is exactly the obligation discharge; the checks
	// are read-only, so flat and recursive share the fixtures.
	mkTree := func() (*kernel.Kernel, error) {
		k, init, err := kernel.Boot(hw.Config{Frames: 16384, Cores: 2, TLBSlots: 64})
		if err != nil {
			return nil, err
		}
		// Breadth-first 3-ary tree; each child inherits a third of the
		// parent quota (minus local overhead) so the tree genuinely
		// reaches hundreds of containers.
		type node struct {
			ptr   pm.Ptr
			quota uint64
		}
		r := k.SysNewContainer(0, init, 12000, []int{0})
		if r.Errno != kernel.OK {
			return nil, fmt.Errorf("ablation: root child: %v", r.Errno)
		}
		frontier := []node{{pm.Ptr(r.Vals[0]), 12000}}
		for len(k.PM.CntrPerms) < 400 && len(frontier) > 0 {
			parent := frontier[0]
			frontier = frontier[1:]
			rp := k.SysNewProcessIn(0, init, parent.ptr)
			if rp.Errno != kernel.OK {
				continue
			}
			rt := k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0)
			if rt.Errno != kernel.OK {
				continue
			}
			child := pm.Ptr(rt.Vals[0])
			childQuota := (parent.quota - 8) / 3
			if childQuota < 4 {
				continue
			}
			for i := 0; i < 3; i++ {
				rc := k.SysNewContainer(0, child, childQuota, []int{0})
				if rc.Errno == kernel.OK {
					frontier = append(frontier, node{pm.Ptr(rc.Vals[0]), childQuota})
				}
			}
		}
		if len(k.PM.CntrPerms) < 100 {
			return nil, fmt.Errorf("ablation: tree only reached %d containers", len(k.PM.CntrPerms))
		}
		return k, nil
	}
	mkPT := func() (*kernel.Kernel, *pt.PageTable, error) {
		k, init, err := kernel.Boot(hw.Config{Frames: 16384, Cores: 2, TLBSlots: 64})
		if err != nil {
			return nil, nil, err
		}
		// A dense region, as the NrOS map_frame comparison uses: the
		// check cost is then dominated by per-entry reasoning, where
		// the recursive style pays once per PML level.
		if r := k.SysMmap(0, init, 0x40000000, 4096, hw.Size4K, pt.RW); r.Errno != kernel.OK {
			return nil, nil, fmt.Errorf("ablation: mmap: %v", r.Errno)
		}
		return k, k.PM.Proc(k.PM.Thrd(init).OwningProc).PageTable, nil
	}
	// Fixtures are built eagerly, before any obligation is timed, and
	// shared read-only between the flat and recursive variants.
	treeK, buildErr := mkTree()
	var ptK *kernel.Kernel
	var ptTable *pt.PageTable
	if buildErr == nil {
		ptK, ptTable, buildErr = mkPT()
	}
	runtime.GC() // settle fixture allocations before anything is timed
	guard := func(f func() error) func() error {
		return func() error {
			if buildErr != nil {
				return buildErr
			}
			return f()
		}
	}
	flat = []Obligation{
		{Name: "container_tree_wf(flat)", Module: "ablation", Run: guard(func() error {
			for i := 0; i < 100; i++ {
				if err := ContainerTreeWF(treeK); err != nil {
					return err
				}
			}
			return nil
		})},
		{Name: "pt_refinement(flat)", Module: "ablation", Run: guard(func() error {
			for i := 0; i < 40; i++ {
				if err := ptTable.CheckRefinement(ptK.Machine.MMU); err != nil {
					return err
				}
			}
			return nil
		})},
	}
	recursive = []Obligation{
		{Name: "container_tree_wf(recursive)", Module: "ablation", Run: guard(func() error {
			for i := 0; i < 100; i++ {
				if err := ContainerTreeWFRecursive(treeK); err != nil {
					return err
				}
			}
			return nil
		})},
		{Name: "pt_refinement(recursive)", Module: "ablation", Run: guard(func() error {
			for i := 0; i < 40; i++ {
				if err := PTRefinementRecursive(ptTable, ptK.Machine.MMU); err != nil {
					return err
				}
			}
			return nil
		})},
	}
	return flat, recursive
}

// RunObligations discharges every obligation with the given worker count
// and returns per-obligation timings plus the wall-clock total — the
// Figure 2 series (workers=1 per function) and the Table 2 totals
// (workers 1 and 8).
func RunObligations(obls []Obligation, workers int) ([]Timing, time.Duration, error) {
	if workers < 1 {
		workers = 1
	}
	timings := make([]Timing, len(obls))
	errs := make([]error, len(obls))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	start := time.Now()
	for i := range obls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			errs[i] = obls[i].Run()
			timings[i] = Timing{Name: obls[i].Name, Module: obls[i].Module, Elapsed: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	total := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return timings, total, fmt.Errorf("obligation %s: %w", obls[i].Name, err)
		}
	}
	sort.Slice(timings, func(i, j int) bool { return timings[i].Elapsed > timings[j].Elapsed })
	return timings, total, nil
}
