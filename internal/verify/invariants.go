// Package verify is the repository's substitute for Verus: the executable
// checker for Atmosphere's two theorems (§4) — refinement (every syscall
// satisfies its specification, internal/spec) and well-formedness (the
// global invariants hold after every transition).
//
// The invariants are written in the paper's flat, non-recursive style:
// single passes over the flat permission maps (§4.1). Recursive variants
// of the structural invariants live in recursive.go, used only by the
// flat-vs-recursive ablation (§6.2).
package verify

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/mem"
	"atmosphere/internal/pm"
)

// ContainerTreeWF is the flat structural invariant of the container tree
// (container_tree_wf, §4.1): parent/child symmetry, depth and path
// coherence, the path-prefix property, and subtree ghost exactness —
// all expressed as direct loops over the flat container map.
func ContainerTreeWF(k *kernel.Kernel) error {
	cm := k.PM.CntrPerms
	root, ok := cm[k.PM.RootContainer]
	if !ok {
		return fmt.Errorf("root container has no permission entry")
	}
	if root.Parent != 0 || root.Depth != 0 || len(root.Path) != 0 {
		return fmt.Errorf("root container malformed")
	}
	for ptr, c := range cm {
		if ptr == k.PM.RootContainer {
			continue
		}
		p, ok := cm[c.Parent]
		if !ok {
			return fmt.Errorf("container %#x has dead parent %#x", ptr, c.Parent)
		}
		found := 0
		for _, ch := range p.Children {
			if ch == ptr {
				found++
			}
		}
		if found != 1 {
			return fmt.Errorf("container %#x appears %d times in parent's children", ptr, found)
		}
		if c.Depth != p.Depth+1 {
			return fmt.Errorf("container %#x depth %d, parent depth %d", ptr, c.Depth, p.Depth)
		}
		if len(c.Path) != c.Depth {
			return fmt.Errorf("container %#x path length %d != depth %d", ptr, len(c.Path), c.Depth)
		}
		if len(c.Path) == 0 || c.Path[len(c.Path)-1] != c.Parent {
			return fmt.Errorf("container %#x path does not end at parent", ptr)
		}
	}
	// resolve_path_wf (§4.1): for any node n at depth d on c's path,
	// c's subpath [0,d) equals n's path — checked flatly for all pairs.
	for ptr, c := range cm {
		for d, n := range c.Path {
			nc, ok := cm[n]
			if !ok {
				return fmt.Errorf("container %#x path names dead container %#x", ptr, n)
			}
			if len(nc.Path) != d {
				return fmt.Errorf("container %#x path[%d] has depth %d", ptr, d, len(nc.Path))
			}
			for i := 0; i < d; i++ {
				if nc.Path[i] != c.Path[i] {
					return fmt.Errorf("container %#x path prefix mismatch at %d", ptr, i)
				}
			}
		}
	}
	// Children lists reference live containers whose parent is this one,
	// and no container is the child of two parents.
	childOf := make(map[pm.Ptr]pm.Ptr, len(cm))
	for ptr, c := range cm {
		for _, ch := range c.Children {
			cc, ok := cm[ch]
			if !ok {
				return fmt.Errorf("container %#x lists dead child %#x", ptr, ch)
			}
			if cc.Parent != ptr {
				return fmt.Errorf("child %#x parent pointer disagrees", ch)
			}
			if prev, dup := childOf[ch]; dup {
				return fmt.Errorf("container %#x child of both %#x and %#x", ch, prev, ptr)
			}
			childOf[ch] = ptr
		}
	}
	// Subtree ghost exactness, the flat way (§4.1): no per-node set
	// reconstruction. Two facts pin the ghost down exactly:
	//
	//  1. containment: every node appears in the subtree of each of its
	//     path ancestors (direct membership probes into the flat maps);
	//  2. counting: Σ|c.Subtree| over all containers equals Σ depth(n)
	//     over all nodes — each node belongs to exactly its depth(n)
	//     ancestors' subtrees, so (1) plus this total rules out any
	//     extra member anywhere.
	//
	// Together with the path coherence above, this is equivalent to the
	// recursive union definition without ever materializing a set.
	totalGhost := 0
	totalDepth := 0
	for ptr, c := range cm {
		totalGhost += len(c.Subtree)
		totalDepth += c.Depth
		for _, anc := range c.Path {
			if _, ok := cm[anc].Subtree[ptr]; !ok {
				return fmt.Errorf("ancestor %#x subtree missing descendant %#x", anc, ptr)
			}
		}
		// Members of a subtree must at least be live containers.
		for s := range c.Subtree {
			if _, ok := cm[s]; !ok {
				return fmt.Errorf("container %#x subtree holds dead container %#x", ptr, s)
			}
		}
	}
	if totalGhost != totalDepth {
		return fmt.Errorf("subtree ghosts hold %d memberships, path depths say %d",
			totalGhost, totalDepth)
	}
	return nil
}

// ProcessesWF checks the process objects and the per-container process
// trees: ownership symmetry, parent/child symmetry within one container,
// and the owned_thrds ghost exactness.
func ProcessesWF(k *kernel.Kernel) error {
	pmgr := k.PM
	for ptr, p := range pmgr.ProcPerms {
		c, ok := pmgr.CntrPerms[p.Owner]
		if !ok {
			return fmt.Errorf("process %#x has dead owner %#x", ptr, p.Owner)
		}
		if _, ok := c.Procs[ptr]; !ok {
			return fmt.Errorf("container %#x does not list process %#x", p.Owner, ptr)
		}
		if p.Parent != 0 {
			pp, ok := pmgr.ProcPerms[p.Parent]
			if !ok {
				return fmt.Errorf("process %#x has dead parent %#x", ptr, p.Parent)
			}
			if pp.Owner != p.Owner {
				return fmt.Errorf("process %#x parent in different container", ptr)
			}
			found := 0
			for _, ch := range pp.Children {
				if ch == ptr {
					found++
				}
			}
			if found != 1 {
				return fmt.Errorf("process %#x appears %d times in parent children", ptr, found)
			}
		}
		for _, ch := range p.Children {
			cp, ok := pmgr.ProcPerms[ch]
			if !ok || cp.Parent != ptr {
				return fmt.Errorf("process %#x child link to %#x broken", ptr, ch)
			}
		}
		for _, th := range p.Threads {
			t, ok := pmgr.ThrdPerms[th]
			if !ok || t.OwningProc != ptr {
				return fmt.Errorf("process %#x thread link to %#x broken", ptr, th)
			}
		}
	}
	// Container.Procs lists only live processes owned by it.
	for cptr, c := range pmgr.CntrPerms {
		for pp := range c.Procs {
			proc, ok := pmgr.ProcPerms[pp]
			if !ok || proc.Owner != cptr {
				return fmt.Errorf("container %#x lists foreign/dead process %#x", cptr, pp)
			}
		}
		// owned_thrds ghost == union of the threads of its processes.
		want := make(map[pm.Ptr]struct{})
		for pp := range c.Procs {
			for _, th := range pmgr.ProcPerms[pp].Threads {
				want[th] = struct{}{}
			}
		}
		if len(want) != len(c.OwnedThreads) {
			return fmt.Errorf("container %#x owned_thrds has %d, want %d",
				cptr, len(c.OwnedThreads), len(want))
		}
		for th := range want {
			if _, ok := c.OwnedThreads[th]; !ok {
				return fmt.Errorf("container %#x owned_thrds missing %#x", cptr, th)
			}
		}
	}
	return nil
}

// ThreadsWF is the paper's threads_wf: every thread is well-formed —
// live ownership links, a core within the container's reservation, and
// blocking state consistent with exactly one endpoint queue.
func ThreadsWF(k *kernel.Kernel) error {
	pmgr := k.PM
	queued := make(map[pm.Ptr]pm.Ptr) // thread -> endpoint that queues it
	for eptr, e := range pmgr.EdptPerms {
		for _, th := range e.Queue {
			if prev, dup := queued[th]; dup {
				return fmt.Errorf("thread %#x queued on both %#x and %#x", th, prev, eptr)
			}
			queued[th] = eptr
		}
	}
	for ptr, t := range pmgr.ThrdPerms {
		p, ok := pmgr.ProcPerms[t.OwningProc]
		if !ok {
			return fmt.Errorf("thread %#x has dead process %#x", ptr, t.OwningProc)
		}
		if t.OwningCntr != p.Owner {
			return fmt.Errorf("thread %#x owning_cntr ghost stale", ptr)
		}
		c := pmgr.CntrPerms[p.Owner]
		coreOK := false
		for _, cpu := range c.CPUs {
			if cpu == t.Core {
				coreOK = true
			}
		}
		if !coreOK {
			return fmt.Errorf("thread %#x on unreserved core %d", ptr, t.Core)
		}
		for i, e := range t.Endpoints {
			if e == pm.NoEndpoint {
				continue
			}
			if _, ok := pmgr.EdptPerms[e]; !ok {
				return fmt.Errorf("thread %#x slot %d references dead endpoint %#x", ptr, i, e)
			}
		}
		switch t.State {
		case pm.ThreadBlockedSend, pm.ThreadBlockedRecv:
			ep, ok := pmgr.EdptPerms[t.IPC.WaitingOn]
			if !ok {
				return fmt.Errorf("blocked thread %#x waits on dead endpoint", ptr)
			}
			if q, isQ := queued[ptr]; !isQ || q != t.IPC.WaitingOn {
				return fmt.Errorf("blocked thread %#x not queued on its endpoint", ptr)
			}
			wantRecv := t.State == pm.ThreadBlockedRecv
			if ep.QueuedRecv != wantRecv {
				return fmt.Errorf("thread %#x direction disagrees with endpoint queue", ptr)
			}
		case pm.ThreadExited:
			return fmt.Errorf("exited thread %#x still has a permission entry", ptr)
		default:
			if _, isQ := queued[ptr]; isQ {
				return fmt.Errorf("non-blocked thread %#x sits in an endpoint queue", ptr)
			}
			if t.IPC.WaitingOn != 0 {
				return fmt.Errorf("non-blocked thread %#x has WaitingOn set", ptr)
			}
		}
	}
	return nil
}

// EndpointsWF: refcounts equal the number of descriptor slots referencing
// the endpoint, owners are live, queues are homogeneous and reference
// blocked threads.
func EndpointsWF(k *kernel.Kernel) error {
	pmgr := k.PM
	refs := make(map[pm.Ptr]int, len(pmgr.EdptPerms))
	for _, t := range pmgr.ThrdPerms {
		for _, e := range t.Endpoints {
			if e != pm.NoEndpoint {
				refs[e]++
			}
		}
	}
	// IRQ bindings hold endpoint references too (§3: interrupt
	// dispatch delivers to user-level drivers through endpoints).
	for irq, e := range k.IRQBindings() {
		if _, ok := pmgr.EdptPerms[e]; !ok {
			return fmt.Errorf("irq %d bound to dead endpoint %#x", irq, e)
		}
		refs[e]++
	}
	for eptr, e := range pmgr.EdptPerms {
		if _, ok := pmgr.CntrPerms[e.OwnerCntr]; !ok {
			return fmt.Errorf("endpoint %#x owned by dead container", eptr)
		}
		if refs[eptr] != e.RefCount {
			return fmt.Errorf("endpoint %#x refcount %d, descriptors %d",
				eptr, e.RefCount, refs[eptr])
		}
		if e.RefCount <= 0 {
			return fmt.Errorf("endpoint %#x alive with refcount %d", eptr, e.RefCount)
		}
		seen := make(map[pm.Ptr]bool, len(e.Queue))
		for _, th := range e.Queue {
			if seen[th] {
				return fmt.Errorf("endpoint %#x queues thread %#x twice", eptr, th)
			}
			seen[th] = true
			t, ok := pmgr.ThrdPerms[th]
			if !ok {
				return fmt.Errorf("endpoint %#x queues dead thread %#x", eptr, th)
			}
			want := pm.ThreadBlockedSend
			if e.QueuedRecv {
				want = pm.ThreadBlockedRecv
			}
			if t.State != want {
				return fmt.Errorf("endpoint %#x queues %v thread %#x", eptr, t.State, th)
			}
		}
	}
	return nil
}

// SchedulerWF: run queues hold exactly the runnable threads of their
// core, currents are running, and no thread appears twice.
func SchedulerWF(k *kernel.Kernel) error {
	s := k.PM.Sched()
	placed := make(map[pm.Ptr]string)
	for core := 0; core < s.Cores(); core++ {
		for _, th := range s.Queue(core) {
			t, ok := k.PM.TryThrd(th)
			if !ok {
				return fmt.Errorf("core %d queues dead thread %#x", core, th)
			}
			if t.State != pm.ThreadRunnable {
				return fmt.Errorf("core %d queues %v thread %#x", core, t.State, th)
			}
			if t.Core != core {
				return fmt.Errorf("thread %#x on core %d queue but affine to %d", th, core, t.Core)
			}
			if where, dup := placed[th]; dup {
				return fmt.Errorf("thread %#x placed twice (%s)", th, where)
			}
			placed[th] = fmt.Sprintf("queue %d", core)
		}
		if cur := s.Current(core); cur != 0 {
			t, ok := k.PM.TryThrd(cur)
			if !ok {
				return fmt.Errorf("core %d runs dead thread %#x", core, cur)
			}
			if t.State != pm.ThreadRunning || t.Core != core {
				return fmt.Errorf("core %d current %#x is %v/core %d", core, cur, t.State, t.Core)
			}
			if where, dup := placed[cur]; dup {
				return fmt.Errorf("thread %#x placed twice (%s)", cur, where)
			}
			placed[cur] = fmt.Sprintf("current %d", core)
		}
	}
	// Every runnable/running thread is placed exactly once.
	for ptr, t := range k.PM.ThrdPerms {
		switch t.State {
		case pm.ThreadRunnable, pm.ThreadRunning:
			if _, ok := placed[ptr]; !ok {
				return fmt.Errorf("%v thread %#x lost by the scheduler", t.State, ptr)
			}
		}
	}
	return nil
}

// MemoryWF is the §4.2 safety and leak-freedom theorem, executably:
// the page-state partition, per-subsystem closure exactness and pairwise
// disjointness, mapping reference-count exactness, and per-table radix
// structure and refinement.
func MemoryWF(k *kernel.Kernel) error {
	snap := k.Alloc.Snapshot()
	total := snap.Free4K.Len() + snap.Free2M.Len() + snap.Free1G.Len() +
		snap.Allocated.Len() + snap.Mapped.Len() + snap.Merged.Len() + snap.Boot.Len()
	if total != k.Alloc.Frames() {
		return fmt.Errorf("page states cover %d of %d frames", total, k.Alloc.Frames())
	}
	// Free lists agree with the metadata.
	if !mem.NewPageSet(k.Alloc.WalkFreeList(mem.Size4K)...).Equal(snap.Free4K) {
		return fmt.Errorf("4K free list disagrees with page states")
	}
	if !mem.NewPageSet(k.Alloc.WalkFreeList(mem.Size2M)...).Equal(snap.Free2M) {
		return fmt.Errorf("2M free list disagrees with page states")
	}
	// Process-manager closure: exactly the object pages.
	objPages := mem.NewPageSet()
	for p := range k.PM.CntrPerms {
		objPages.Insert(p)
	}
	for p := range k.PM.ProcPerms {
		objPages.Insert(p)
	}
	for p := range k.PM.ThrdPerms {
		objPages.Insert(p)
	}
	for p := range k.PM.EdptPerms {
		objPages.Insert(p)
	}
	pmOwned := k.Alloc.AllocatedTo(mem.OwnerProcessMgr)
	if !objPages.Equal(pmOwned) {
		return fmt.Errorf("process-manager closure %d pages, allocator says %d",
			objPages.Len(), pmOwned.Len())
	}
	// Virtual-memory closure: union of per-process table closures,
	// pairwise disjoint.
	ptPages := mem.NewPageSet()
	for ptr, proc := range k.PM.ProcPerms {
		cl := proc.PageTable.PageClosure()
		if !cl.Disjoint(ptPages) {
			return fmt.Errorf("page-table closure of %#x overlaps another", ptr)
		}
		ptPages.Union(cl)
	}
	ptOwned := k.Alloc.AllocatedTo(mem.OwnerPageTable)
	if !ptPages.Equal(ptOwned) {
		return fmt.Errorf("page-table closure %d pages, allocator says %d",
			ptPages.Len(), ptOwned.Len())
	}
	// IOMMU closure.
	iommuOwned := k.Alloc.AllocatedTo(mem.OwnerIOMMU)
	if !k.IOMMU.PageClosure().Equal(iommuOwned) {
		return fmt.Errorf("iommu closure disagrees with allocator")
	}
	// Page-cache closure: the frames the kernel believes are parked in
	// per-core caches are exactly the allocator's OwnerPCache pages
	// (both empty while caches are disabled).
	pcacheOwned := k.Alloc.AllocatedTo(mem.OwnerPCache)
	pcacheKernel := k.PageCachePages()
	if !pcacheKernel.Equal(pcacheOwned) {
		return fmt.Errorf("page-cache closure %d pages, allocator says %d",
			pcacheKernel.Len(), pcacheOwned.Len())
	}
	// Closures are pairwise disjoint (owners distinct by construction;
	// verify anyway) and cover the allocated set.
	if !objPages.Disjoint(ptPages) || !objPages.Disjoint(iommuOwned) || !ptPages.Disjoint(iommuOwned) {
		return fmt.Errorf("subsystem closures overlap")
	}
	if !pcacheOwned.Disjoint(objPages) || !pcacheOwned.Disjoint(ptPages) || !pcacheOwned.Disjoint(iommuOwned) {
		return fmt.Errorf("page-cache closure overlaps another subsystem")
	}
	union := objPages.Clone().Union(ptPages).Union(iommuOwned).Union(pcacheOwned)
	if !union.Equal(snap.Allocated) {
		return fmt.Errorf("closures cover %d pages, allocated set has %d",
			union.Len(), snap.Allocated.Len())
	}
	// Mapping reference counts: every mapped page's refcount equals the
	// number of address-space mappings + DMA mappings + in-flight IPC
	// messages holding it.
	refs := make(map[hw.PhysAddr]uint32)
	for _, proc := range k.PM.ProcPerms {
		for _, e := range proc.PageTable.AddressSpace() {
			refs[e.Phys]++
		}
	}
	for _, d := range k.IOMMU.Domains() {
		for _, e := range d.Table.AddressSpace() {
			refs[e.Phys]++
		}
	}
	for _, t := range k.PM.ThrdPerms {
		if t.State == pm.ThreadBlockedSend && t.IPC.Msg.HasPage {
			refs[t.IPC.Msg.Page]++
		}
	}
	for _, e := range k.PM.EdptPerms {
		for _, m := range e.Buffer {
			if m.HasPage {
				refs[m.Page]++
			}
		}
	}
	for p := range snap.Mapped {
		rc, err := k.Alloc.RefCount(p)
		if err != nil {
			return err
		}
		if rc != refs[p] {
			return fmt.Errorf("mapped page %#x refcount %d, references %d", p, rc, refs[p])
		}
		delete(refs, p)
	}
	if len(refs) != 0 {
		return fmt.Errorf("%d referenced pages not in mapped state", len(refs))
	}
	// Per-table structure and refinement against the hardware MMU.
	for ptr, proc := range k.PM.ProcPerms {
		if err := proc.PageTable.CheckStructure(); err != nil {
			return fmt.Errorf("process %#x: %w", ptr, err)
		}
		if err := proc.PageTable.CheckRefinement(k.Machine.MMU); err != nil {
			return fmt.Errorf("process %#x: %w", ptr, err)
		}
	}
	return k.IOMMU.CheckWF()
}

// QuotaWF: every container's UsedPages is at most its quota and equals
// the recomputed charge: its own page, its objects, its user mappings
// (weighted by page size), its table nodes, and its children's quotas.
func QuotaWF(k *kernel.Kernel) error {
	pmgr := k.PM
	for cptr, c := range pmgr.CntrPerms {
		if c.UsedPages > c.QuotaPages {
			return fmt.Errorf("container %#x used %d > quota %d", cptr, c.UsedPages, c.QuotaPages)
		}
		want := uint64(1) // its own object page
		for pp := range c.Procs {
			proc := pmgr.ProcPerms[pp]
			want += 1 // process object
			want += uint64(proc.PageTable.PageClosure().Len())
			for _, e := range proc.PageTable.AddressSpace() {
				want += e.Size.Bytes() / hw.PageSize4K
			}
			if proc.IOMMUDomain != 0 {
				d, err := k.IOMMU.Domain(proc.IOMMUDomain)
				if err != nil {
					return err
				}
				want += uint64(d.Table.PageClosure().Len())
			}
		}
		want += uint64(len(c.OwnedThreads))
		for _, e := range pmgr.EdptPerms {
			if e.OwnerCntr == cptr {
				want++
			}
		}
		for _, ch := range c.Children {
			want += pmgr.CntrPerms[ch].QuotaPages
		}
		if c.UsedPages != want {
			return fmt.Errorf("container %#x used %d, recomputed %d", cptr, c.UsedPages, want)
		}
	}
	return nil
}

// CPUReservationWF: every container's CPU set is a subset of its
// parent's, every thread runs on a core its container reserves, and no
// container reserves a core outside the machine. (This repo models CPU
// reservations as hierarchical capabilities — a child can use what its
// parent can use — rather than exclusive partitions; mixed-criticality
// configurations like A/B/V get exclusivity by construction, assigning
// disjoint sets.)
func CPUReservationWF(k *kernel.Kernel) error {
	cores := k.Machine.NumCores()
	for ptr, c := range k.PM.CntrPerms {
		for _, cpu := range c.CPUs {
			if cpu < 0 || cpu >= cores {
				return fmt.Errorf("container %#x reserves nonexistent core %d", ptr, cpu)
			}
		}
		if c.Parent == 0 {
			continue
		}
		parent := k.PM.CntrPerms[c.Parent]
		for _, cpu := range c.CPUs {
			held := false
			for _, pc := range parent.CPUs {
				if pc == cpu {
					held = true
				}
			}
			if !held {
				return fmt.Errorf("container %#x reserves core %d its parent does not hold", ptr, cpu)
			}
		}
	}
	return nil
}

// NamedCheck pairs an invariant with a stable name for the obligation
// registry and failure reports.
type NamedCheck struct {
	Name  string
	Check func(*kernel.Kernel) error
}

// WFChecks is the full well-formedness suite, the total_wf() of Listing 1.
func WFChecks() []NamedCheck {
	return []NamedCheck{
		{"container_tree_wf", ContainerTreeWF},
		{"processes_wf", ProcessesWF},
		{"threads_wf", ThreadsWF},
		{"endpoints_wf", EndpointsWF},
		{"scheduler_wf", SchedulerWF},
		{"cpu_reservation_wf", CPUReservationWF},
		{"memory_wf", MemoryWF},
		{"quota_wf", QuotaWF},
	}
}

// TotalWF runs the full suite and returns the first violation.
func TotalWF(k *kernel.Kernel) error {
	for _, c := range WFChecks() {
		if err := c.Check(k); err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
	}
	return nil
}
