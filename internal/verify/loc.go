package verify

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
)

// LoC accounting (Table 1, Table 2). In the paper, "proof" counts Verus
// specification and proof lines while "exec" counts executable Rust. In
// this reproduction, the specification-and-checking layer (internal/spec,
// internal/verify, internal/ni, plus the ghost/refinement files inside
// pt) plays the proof role, and the kernel implementation packages play
// the executable role. CountLoC measures both from the source tree.

// LoCStats summarizes measured line counts.
type LoCStats struct {
	Proof int
	Exec  int
}

// Ratio returns the proof-to-code ratio.
func (s LoCStats) Ratio() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.Proof) / float64(s.Exec)
}

// proofDirs and execDirs classify packages; paths are relative to the
// module root.
var proofDirs = []string{
	"internal/spec",
	"internal/verify",
	"internal/ni",
}

var execDirs = []string{
	"internal/hw",
	"internal/mem",
	"internal/pt",
	"internal/iommu",
	"internal/pm",
	"internal/kernel",
}

// proofFiles are ghost/proof files living inside executable packages.
var proofFiles = map[string]bool{
	"internal/pt/refine.go": true,
}

// CountLoC walks the module rooted at root and counts non-blank,
// non-comment-only lines of non-test Go source, classified proof/exec.
// Test files are excluded from both (the paper counts neither tests nor
// benchmarks in its ratio).
func CountLoC(root string) (LoCStats, error) {
	var stats LoCStats
	count := func(rel string) (int, error) {
		f, err := os.Open(filepath.Join(root, rel))
		if err != nil {
			return 0, err
		}
		defer f.Close()
		n := 0
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			n++
		}
		return n, sc.Err()
	}
	walk := func(dirs []string, isProofDir bool) error {
		for _, dir := range dirs {
			entries, err := os.ReadDir(filepath.Join(root, dir))
			if os.IsNotExist(err) {
				continue // package not present in this build
			}
			if err != nil {
				return err
			}
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				rel := filepath.Join(dir, name)
				n, err := count(rel)
				if err != nil {
					return err
				}
				if isProofDir || proofFiles[filepath.ToSlash(rel)] {
					stats.Proof += n
				} else {
					stats.Exec += n
				}
			}
		}
		return nil
	}
	if err := walk(proofDirs, true); err != nil {
		return stats, err
	}
	if err := walk(execDirs, false); err != nil {
		return stats, err
	}
	return stats, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, bool) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}
