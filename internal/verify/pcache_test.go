package verify

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// With the contention model and per-core page caches enabled, every
// invariant — the page-cache closure included — must hold through a
// cached mmap/munmap churn and through container teardown while frames
// are still parked in the caches. Each checked syscall re-runs the full
// well-formedness suite, so this exercises MemoryWF's OwnerPCache
// closure at every intermediate state.
func TestCheckedWithCoreCaches(t *testing.T) {
	c, init := newChecker(t)
	c.K.EnableContention()
	c.K.EnableCoreCaches(8)

	r := musts(t)(c.NewContainer(0, init, 200, []int{0, 1, 2, 3}))
	a := pm.Ptr(r.Vals[0])
	r = musts(t)(c.NewProcessIn(0, init, a))
	proc := pm.Ptr(r.Vals[0])
	r = musts(t)(c.NewThreadIn(0, init, proc, 1))
	tid := pm.Ptr(r.Vals[0])

	// Churn enough 4 KiB pages through core 1 to force refills, cache
	// hits on remap, and an overflow drain on the way down.
	musts(t)(c.Mmap(1, tid, 0x400000, 12, hw.Size4K, pt.RW))
	musts(t)(c.Munmap(1, tid, 0x400000, 12, hw.Size4K))
	musts(t)(c.Mmap(1, tid, 0x800000, 4, hw.Size4K, pt.RW))
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
	hits, misses, refills, _ := c.K.CoreCaches().Stats()
	if misses == 0 || refills == 0 {
		t.Fatalf("cache never refilled (hits %d, misses %d, refills %d)", hits, misses, refills)
	}
	if hits == 0 {
		t.Fatalf("cache never hit (misses %d, refills %d)", misses, refills)
	}

	// Kill the container with live mappings and cached frames: teardown
	// takes the global DecRef path and must leave the cache closure
	// intact.
	cachedBefore := c.K.PageCachePages().Len()
	musts(t)(c.KillContainer(0, init, a))
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
	if got := c.K.PageCachePages().Len(); got != cachedBefore {
		t.Fatalf("teardown disturbed the page cache: %d -> %d frames", cachedBefore, got)
	}
}
