package verify

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

func cfg() hw.Config { return hw.Config{Frames: 4096, Cores: 4, TLBSlots: 64} }

func newChecker(t *testing.T) (*Checker, pm.Ptr) {
	t.Helper()
	c, init, err := NewChecker(cfg())
	if err != nil {
		t.Fatal(err)
	}
	return c, init
}

// musts returns a closure that fails the test on checker errors or
// unexpected errnos and passes the Ret through (curried so checked
// syscalls' multi-value returns can feed it directly).
func musts(t *testing.T) func(kernel.Ret, error) kernel.Ret {
	return func(r kernel.Ret, err error) kernel.Ret {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if r.Errno != kernel.OK && r.Errno != kernel.EWOULDBLOCK {
			t.Fatalf("syscall failed: %v", r.Errno)
		}
		return r
	}
}

func TestBootIsWellFormed(t *testing.T) {
	c, _ := newChecker(t)
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
	if err := ContainerTreeWFRecursive(c.K); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedLifecycleTrace(t *testing.T) {
	c, init := newChecker(t)
	// Containers.
	r := musts(t)(c.NewContainer(0, init, 120, []int{0, 1}))
	a := pm.Ptr(r.Vals[0])
	// Processes and threads.
	r = musts(t)(c.NewProcessIn(0, init, a))
	procA := pm.Ptr(r.Vals[0])
	r = musts(t)(c.NewThreadIn(0, init, procA, 1))
	tidA := pm.Ptr(r.Vals[0])
	// Memory.
	musts(t)(c.Mmap(1, tidA, 0x400000, 6, hw.Size4K, pt.RW))
	musts(t)(c.Munmap(1, tidA, 0x400000, 2, hw.Size4K))
	// Endpoints and IPC.
	musts(t)(c.NewEndpoint(1, tidA, 0))
	// A second thread in the same process to talk to.
	r = musts(t)(c.NewThreadIn(0, init, procA, 0))
	tidB := pm.Ptr(r.Vals[0])
	c.K.PM.Thrd(tidB).Endpoints[0] = c.K.PM.Thrd(tidA).Endpoints[0]
	c.K.PM.EndpointIncRef(c.K.PM.Thrd(tidA).Endpoints[0], 1)
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
	r = musts(t)(c.Recv(0, tidB, 0, kernel.RecvArgs{PageVA: 0x9000, EdptSlot: -1}))
	if r.Errno != kernel.EWOULDBLOCK {
		t.Fatalf("recv should block: %v", r.Errno)
	}
	musts(t)(c.Send(1, tidA, 0, kernel.SendArgs{Regs: [4]uint64{1, 2, 3, 4}, SendPage: true, PageVA: 0x402000}))
	// IOMMU.
	musts(t)(c.IommuCreateDomain(1, tidA))
	musts(t)(c.IommuAttach(1, tidA, 3))
	musts(t)(c.IommuMap(1, tidA, 0x403000))
	musts(t)(c.IommuUnmap(1, tidA, 0x403000))
	// Yield and exit.
	musts(t)(c.Yield(0, init))
	musts(t)(c.ExitThread(0, tidB))
	// Kill the container; everything is harvested.
	musts(t)(c.KillContainer(0, init, a))
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
	if c.Transitions < 14 {
		t.Fatalf("checked only %d transitions", c.Transitions)
	}
}

func TestCheckedCallReply(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0))
	server := pm.Ptr(r.Vals[0])
	musts(t)(c.NewEndpoint(0, init, 0))
	ep := c.K.PM.Thrd(init).Endpoints[0]
	c.K.PM.Thrd(server).Endpoints[0] = ep
	c.K.PM.EndpointIncRef(ep, 1)
	musts(t)(c.Recv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}))
	musts(t)(c.Call(0, init, 0, kernel.SendArgs{Regs: [4]uint64{7}}))
	musts(t)(c.Reply(0, server, 0, kernel.SendArgs{Regs: [4]uint64{8}}))
	if c.K.PM.Thrd(init).IPC.Msg.Regs[0] != 8 {
		t.Fatal("reply not delivered")
	}
}

// TestCheckedRandomTrace drives hundreds of random syscalls through the
// checker — the executable analogue of the ∀-quantified refinement
// theorem. Any spec or invariant violation fails the test.
func TestCheckedRandomTrace(t *testing.T) {
	c, init := newChecker(t)
	r := hw.NewRand(2024)
	type actor struct {
		tid  pm.Ptr
		core int
	}
	actors := []actor{{init, 0}}
	var containers []pm.Ptr
	nextVA := uint64(0x1000000)

	for step := 0; step < 600; step++ {
		a := actors[r.Intn(len(actors))]
		if th, alive := c.K.PM.TryThrd(a.tid); !alive {
			// Replace dead actors to keep the trace going.
			actors = []actor{{init, 0}}
			continue
		} else if th.State == pm.ThreadBlockedSend || th.State == pm.ThreadBlockedRecv {
			// Blocked threads cannot issue syscalls; skip them.
			continue
		}
		switch r.Intn(12) {
		case 0: // mmap
			count := 1 + r.Intn(4)
			va := hw.VirtAddr(nextVA)
			nextVA += uint64(count+1) * hw.PageSize4K
			musts(t)(c.Mmap(a.core, a.tid, va, count, hw.Size4K, pt.RW))
		case 1: // munmap whatever is mapped at a random spot (often fails)
			if _, err := c.Munmap(a.core, a.tid, hw.VirtAddr(0x1000000+uint64(r.Intn(64))*hw.PageSize4K), 1, hw.Size4K); err != nil {
				t.Fatal(err)
			}
		case 2: // new container
			if _, err := c.NewContainer(a.core, a.tid, uint64(5+r.Intn(30)), []int{a.core}); err != nil {
				t.Fatal(err)
			} else if ret, _ := c.K.PM.TryThrd(a.tid); ret != nil {
				// remember last created container via syscall return:
				// re-issue to capture value
			}
		case 3: // new process + thread in own container
			ret, err := c.NewProcess(a.core, a.tid)
			if err != nil {
				t.Fatal(err)
			}
			if ret.Errno == kernel.OK {
				tr, err := c.NewThreadIn(a.core, a.tid, pm.Ptr(ret.Vals[0]), a.core)
				if err != nil {
					t.Fatal(err)
				}
				if tr.Errno == kernel.OK {
					actors = append(actors, actor{pm.Ptr(tr.Vals[0]), a.core})
				}
			}
		case 4: // new endpoint in a free slot
			th := c.K.PM.Thrd(a.tid)
			slot := -1
			for i, e := range th.Endpoints {
				if e == pm.NoEndpoint {
					slot = i
					break
				}
			}
			if slot >= 0 {
				if _, err := c.NewEndpoint(a.core, a.tid, slot); err != nil {
					t.Fatal(err)
				}
			}
		case 5: // send on a random slot
			if _, err := c.Send(a.core, a.tid, r.Intn(pm.MaxEndpoints),
				kernel.SendArgs{Regs: [4]uint64{r.Uint64()}}); err != nil {
				t.Fatal(err)
			}
		case 6: // recv on a random slot
			if _, err := c.Recv(a.core, a.tid, r.Intn(pm.MaxEndpoints),
				kernel.RecvArgs{EdptSlot: -1}); err != nil {
				t.Fatal(err)
			}
		case 7: // yield
			if _, err := c.Yield(a.core, a.tid); err != nil {
				t.Fatal(err)
			}
		case 8: // iommu ops
			if _, err := c.IommuCreateDomain(a.core, a.tid); err != nil {
				t.Fatal(err)
			}
		case 9: // track containers for later kill
			ret, err := c.NewContainer(a.core, a.tid, uint64(10+r.Intn(20)), []int{a.core})
			if err != nil {
				t.Fatal(err)
			}
			if ret.Errno == kernel.OK {
				containers = append(containers, pm.Ptr(ret.Vals[0]))
			}
		case 10: // kill a tracked container
			if len(containers) > 0 {
				i := r.Intn(len(containers))
				if _, err := c.KillContainer(0, init, containers[i]); err != nil {
					t.Fatal(err)
				}
				containers = append(containers[:i], containers[i+1:]...)
			}
		case 11: // exit a non-init actor
			if len(actors) > 1 {
				i := 1 + r.Intn(len(actors)-1)
				victim := actors[i]
				if th, alive := c.K.PM.TryThrd(victim.tid); alive &&
					(th.State == pm.ThreadRunnable || th.State == pm.ThreadRunning) {
					if _, err := c.ExitThread(victim.core, victim.tid); err != nil {
						t.Fatal(err)
					}
					actors = append(actors[:i], actors[i+1:]...)
				}
			}
		}
	}
	if c.Transitions < 300 {
		t.Fatalf("trace too short: %d transitions", c.Transitions)
	}
}

func TestRecursiveAgreesWithFlat(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewContainer(0, init, 100, []int{0}))
	a := pm.Ptr(r.Vals[0])
	rp := musts(t)(c.NewProcessIn(0, init, a))
	rt := musts(t)(c.NewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	tidA := pm.Ptr(rt.Vals[0])
	rb := musts(t)(c.NewContainer(0, tidA, 30, []int{0}))
	b := pm.Ptr(rb.Vals[0])
	rp2 := musts(t)(c.NewProcessIn(0, tidA, b))
	musts(t)(c.NewThreadIn(0, tidA, pm.Ptr(rp2.Vals[0]), 0))

	if err := ContainerTreeWF(c.K); err != nil {
		t.Fatal(err)
	}
	if err := ContainerTreeWFRecursive(c.K); err != nil {
		t.Fatal(err)
	}
	flat := c.K.PM.ThreadsOf(a)
	rec := DomainThreadsRecursive(c.K, a)
	if len(flat) != len(rec) {
		t.Fatalf("flat %d threads, recursive %d", len(flat), len(rec))
	}
	for th := range flat {
		if _, ok := rec[th]; !ok {
			t.Fatalf("recursive domain missing %#x", th)
		}
	}
	// PT refinement both ways.
	musts(t)(c.Mmap(0, tidA, 0x500000, 4, hw.Size4K, pt.RW))
	proc := c.K.PM.Proc(c.K.PM.Thrd(tidA).OwningProc)
	if err := proc.PageTable.CheckRefinement(c.K.Machine.MMU); err != nil {
		t.Fatal(err)
	}
	if err := PTRefinementRecursive(proc.PageTable, c.K.Machine.MMU); err != nil {
		t.Fatal(err)
	}
}

// Mutation tests: corrupt the kernel state directly and confirm the
// invariant suite catches it (the checks are not vacuous).

func TestMutationSubtreeGhostCaught(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewContainer(0, init, 20, []int{0}))
	a := pm.Ptr(r.Vals[0])
	delete(c.K.PM.Cntr(c.K.PM.RootContainer).Subtree, a)
	if err := ContainerTreeWF(c.K); err == nil {
		t.Fatal("corrupted subtree ghost not caught by flat check")
	}
	if err := ContainerTreeWFRecursive(c.K); err == nil {
		t.Fatal("corrupted subtree ghost not caught by recursive check")
	}
}

func TestMutationPathGhostCaught(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewContainer(0, init, 20, []int{0}))
	a := pm.Ptr(r.Vals[0])
	rb := musts(t)(c.NewContainer(0, init, 20, []int{0}))
	b := pm.Ptr(rb.Vals[0])
	c.K.PM.Cntr(a).Path = []pm.Ptr{b} // wrong parent on path
	if err := ContainerTreeWF(c.K); err == nil {
		t.Fatal("corrupted path not caught")
	}
}

func TestMutationEndpointRefCountCaught(t *testing.T) {
	c, init := newChecker(t)
	musts(t)(c.NewEndpoint(0, init, 0))
	ep := c.K.PM.Thrd(init).Endpoints[0]
	c.K.PM.Edpt(ep).RefCount = 5
	if err := EndpointsWF(c.K); err == nil {
		t.Fatal("corrupted refcount not caught")
	}
}

func TestMutationQuotaCaught(t *testing.T) {
	c, _ := newChecker(t)
	c.K.PM.Cntr(c.K.PM.RootContainer).UsedPages += 3
	if err := QuotaWF(c.K); err == nil {
		t.Fatal("corrupted quota not caught")
	}
}

func TestMutationDanglingThreadCaught(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0))
	tid := pm.Ptr(r.Vals[0])
	// Remove the permission but leave the process's thread list intact.
	delete(c.K.PM.ThrdPerms, tid)
	if err := ProcessesWF(c.K); err == nil {
		t.Fatal("dangling thread pointer not caught")
	}
}

func TestMutationPageTableCaught(t *testing.T) {
	c, init := newChecker(t)
	musts(t)(c.Mmap(0, init, 0x600000, 1, hw.Size4K, pt.RW))
	proc := c.K.PM.Proc(c.K.PM.Thrd(init).OwningProc)
	// Flip a bit in the leaf entry behind the ghost state's back: the
	// MMU now resolves differently than the abstract map.
	e, _ := proc.PageTable.Lookup(0x600000)
	tr, _ := c.K.Machine.MMU.Walk(proc.PageTable.CR3(), 0x600000)
	_ = e
	// Locate the leaf slot by walking manually and corrupt it.
	cr3 := proc.PageTable.CR3()
	m := c.K.Machine.Mem
	l4e := m.ReadU64(cr3 + hw.PhysAddr(hw.L4Index(0x600000)*8))
	l3 := hw.PhysAddr(l4e & hw.PteAddrMask)
	l3e := m.ReadU64(l3 + hw.PhysAddr(hw.L3Index(0x600000)*8))
	l2 := hw.PhysAddr(l3e & hw.PteAddrMask)
	l2e := m.ReadU64(l2 + hw.PhysAddr(hw.L2Index(0x600000)*8))
	l1 := hw.PhysAddr(l2e & hw.PteAddrMask)
	slot := l1 + hw.PhysAddr(hw.L1Index(0x600000)*8)
	m.WriteU64(slot, m.ReadU64(slot)^(1<<13)) // flip an address bit
	_ = tr
	if err := MemoryWF(c.K); err == nil {
		t.Fatal("page-table corruption not caught by refinement check")
	}
}

func TestCollectMode(t *testing.T) {
	c, init := newChecker(t)
	c.Collect = true
	// Corrupt quota, then run a yield: the WF failure is collected, not
	// returned.
	c.K.PM.Cntr(c.K.PM.RootContainer).UsedPages++
	if _, err := c.Yield(0, init); err != nil {
		t.Fatalf("collect mode returned error: %v", err)
	}
	if len(c.Violations) == 0 {
		t.Fatal("collect mode recorded no violations")
	}
}

func TestCheckedIterativeKill(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewContainer(0, init, 200, []int{0}))
	cntr := pm.Ptr(r.Vals[0])
	rp := musts(t)(c.NewProcessIn(0, init, cntr))
	rt := musts(t)(c.NewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0))
	victim := pm.Ptr(rt.Vals[0])
	musts(t)(c.Mmap(0, victim, 0x400000, 12, hw.Size4K, pt.RW))
	musts(t)(c.NewEndpoint(0, victim, 0))
	// Every bounded invocation is checked: WF must hold at every
	// intermediate teardown state.
	steps := 0
	for {
		r, err := c.KillContainerBounded(0, init, cntr, 2)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if r.Errno == kernel.OK {
			break
		}
		if r.Errno != kernel.EAGAIN {
			t.Fatalf("bounded kill: %v", r.Errno)
		}
		if steps > 100 {
			t.Fatal("no termination")
		}
	}
	if steps < 5 {
		t.Fatalf("finished in %d steps; budget not binding", steps)
	}
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedIrqFlow(t *testing.T) {
	c, init := newChecker(t)
	musts(t)(c.NewEndpoint(0, init, 0))
	musts(t)(c.IrqRegister(0, init, 11, 0))
	// Pend interrupts while the handler is busy, then consume.
	c.K.RaiseIRQ(0, 11)
	c.K.RaiseIRQ(0, 11)
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
	r := musts(t)(c.IrqWait(0, init, 11))
	if r.Errno != kernel.OK || r.Vals[1] != 2 {
		t.Fatalf("irq_wait = %v %v", r.Errno, r.Vals)
	}
	// Close the descriptor: the binding keeps the endpoint alive and
	// the invariants keep holding.
	musts(t)(c.CloseEndpoint(0, init, 0))
	if err := TotalWF(c.K); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedReplyRecvLoop(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0))
	server := pm.Ptr(r.Vals[0])
	musts(t)(c.NewEndpoint(0, init, 0))
	ep := c.K.PM.Thrd(init).Endpoints[0]
	c.K.PM.Thrd(server).Endpoints[0] = ep
	c.K.PM.EndpointIncRef(ep, 1)
	musts(t)(c.Recv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}))
	for i := 0; i < 5; i++ {
		musts(t)(c.Call(0, init, 0, kernel.SendArgs{Regs: [4]uint64{uint64(i)}}))
		musts(t)(c.ReplyRecv(0, server, 0, kernel.SendArgs{Regs: [4]uint64{uint64(i) + 100}}, kernel.RecvArgs{EdptSlot: -1}))
		if c.K.PM.Thrd(init).IPC.Msg.Regs[0] != uint64(i)+100 {
			t.Fatalf("round %d reply lost", i)
		}
	}
}

func TestMutationCPUReservationCaught(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewContainer(0, init, 20, []int{0}))
	// Corrupt: the child suddenly claims a core its parent never held.
	c.K.PM.Cntr(pm.Ptr(r.Vals[0])).CPUs = []int{99}
	if err := CPUReservationWF(c.K); err == nil {
		t.Fatal("bogus CPU reservation not caught")
	}
}

func TestMutationQueueDirectionCaught(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0))
	other := pm.Ptr(r.Vals[0])
	musts(t)(c.NewEndpoint(0, init, 0))
	ep := c.K.PM.Thrd(init).Endpoints[0]
	c.K.PM.Thrd(other).Endpoints[0] = ep
	c.K.PM.EndpointIncRef(ep, 1)
	musts(t)(c.Recv(0, other, 0, kernel.RecvArgs{EdptSlot: -1}))
	// Corrupt: flip the queue direction behind the kernel's back.
	c.K.PM.Edpt(ep).QueuedRecv = false
	err1 := ThreadsWF(c.K)
	err2 := EndpointsWF(c.K)
	if err1 == nil && err2 == nil {
		t.Fatal("queue direction corruption not caught")
	}
}

func TestMutationSchedulerLostThreadCaught(t *testing.T) {
	c, init := newChecker(t)
	r := musts(t)(c.NewThreadIn(0, init, c.K.PM.Thrd(init).OwningProc, 0))
	tid := pm.Ptr(r.Vals[0])
	// Corrupt: mark runnable without a queue entry by reaching into the
	// thread after removing it from the scheduler.
	th := c.K.PM.Thrd(tid)
	c.K.PM.BlockCurrent(tid, pm.ThreadBlockedRecv) // removes from queue
	th.State = pm.ThreadRunnable                   // but never re-enqueued
	th.IPC.WaitingOn = 0
	if err := SchedulerWF(c.K); err == nil {
		t.Fatal("lost runnable thread not caught")
	}
}
