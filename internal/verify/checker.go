package verify

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/spec"
)

// Checker wraps a kernel so that every syscall is checked against its
// executable specification and the full well-formedness suite — the
// dynamic counterpart of "the implementation refines the specification"
// (§4). Each method snapshots the abstract state Ψ, performs the
// syscall, snapshots Ψ', and evaluates the spec predicate plus TotalWF.
type Checker struct {
	K *kernel.Kernel
	// Violations collects every spec/invariant failure when Collect is
	// true; otherwise the first failure is returned as a panic-free
	// error from Err.
	Collect    bool
	Violations []error
	// Transitions counts checked syscalls.
	Transitions int
	// SkipWF disables the invariant suite (spec-only checking) for
	// workloads where O(state) scans per step are too slow.
	SkipWF bool
}

// NewChecker boots a kernel under checking and validates the boot state.
func NewChecker(cfg hw.Config) (*Checker, pm.Ptr, error) {
	k, init, err := kernel.Boot(cfg)
	if err != nil {
		return nil, 0, err
	}
	c := &Checker{K: k}
	if err := TotalWF(k); err != nil {
		return nil, 0, fmt.Errorf("boot state ill-formed: %w", err)
	}
	return c, init, nil
}

func (c *Checker) abstract() spec.State {
	return spec.Abstract(c.K.PM, c.K.Alloc, c.K.IOMMU)
}

func (c *Checker) report(name string, err error) error {
	if err == nil {
		return nil
	}
	err = fmt.Errorf("%s: %w", name, err)
	if c.Collect {
		c.Violations = append(c.Violations, err)
		return nil
	}
	return err
}

// step runs one syscall between snapshots and applies the spec predicate.
func (c *Checker) step(name string, do func() kernel.Ret,
	post func(old, new spec.State, ret kernel.Ret) error) (kernel.Ret, error) {
	old := c.abstract()
	ret := do()
	new := c.abstract()
	c.Transitions++
	if err := c.report(name+" spec", post(old, new, ret)); err != nil {
		return ret, err
	}
	if !c.SkipWF {
		if err := c.report(name+" wf", TotalWF(c.K)); err != nil {
			return ret, err
		}
	}
	return ret, nil
}

// Mmap is the checked SysMmap.
func (c *Checker) Mmap(core int, tid pm.Ptr, va hw.VirtAddr, count int, size hw.PageSize, perm pt.Perm) (kernel.Ret, error) {
	return c.step("mmap",
		func() kernel.Ret { return c.K.SysMmap(core, tid, va, count, size, perm) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.MmapSpec(old, new, tid, va, count, size, perm, ret)
		})
}

// Munmap is the checked SysMunmap.
func (c *Checker) Munmap(core int, tid pm.Ptr, va hw.VirtAddr, count int, size hw.PageSize) (kernel.Ret, error) {
	return c.step("munmap",
		func() kernel.Ret { return c.K.SysMunmap(core, tid, va, count, size) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.MunmapSpec(old, new, tid, va, count, size, ret)
		})
}

// NewContainer is the checked SysNewContainer.
func (c *Checker) NewContainer(core int, tid pm.Ptr, quota uint64, cpus []int) (kernel.Ret, error) {
	return c.step("new_container",
		func() kernel.Ret { return c.K.SysNewContainer(core, tid, quota, cpus) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.NewContainerSpec(old, new, tid, quota, cpus, ret)
		})
}

// NewProcess is the checked SysNewProcess.
func (c *Checker) NewProcess(core int, tid pm.Ptr) (kernel.Ret, error) {
	var cntr, parent pm.Ptr
	if t, ok := c.K.PM.TryThrd(tid); ok {
		parent = t.OwningProc
		cntr = c.K.PM.Proc(t.OwningProc).Owner
	}
	return c.step("new_proc",
		func() kernel.Ret { return c.K.SysNewProcess(core, tid) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.NewProcSpec(old, new, tid, cntr, parent, ret)
		})
}

// NewProcessIn is the checked SysNewProcessIn.
func (c *Checker) NewProcessIn(core int, tid pm.Ptr, cntr pm.Ptr) (kernel.Ret, error) {
	return c.step("new_proc_in",
		func() kernel.Ret { return c.K.SysNewProcessIn(core, tid, cntr) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.NewProcSpec(old, new, tid, cntr, 0, ret)
		})
}

// NewThreadIn is the checked SysNewThreadIn.
func (c *Checker) NewThreadIn(core int, tid pm.Ptr, proc pm.Ptr, onCore int) (kernel.Ret, error) {
	return c.step("new_thread",
		func() kernel.Ret { return c.K.SysNewThreadIn(core, tid, proc, onCore) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.NewThreadSpec(old, new, tid, proc, onCore, ret)
		})
}

// NewEndpoint is the checked SysNewEndpoint.
func (c *Checker) NewEndpoint(core int, tid pm.Ptr, slot int) (kernel.Ret, error) {
	return c.step("new_endpoint",
		func() kernel.Ret { return c.K.SysNewEndpoint(core, tid, slot) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.NewEndpointSpec(old, new, tid, slot, ret)
		})
}

// Send is the checked SysSend.
func (c *Checker) Send(core int, tid pm.Ptr, slot int, args kernel.SendArgs) (kernel.Ret, error) {
	return c.step("send",
		func() kernel.Ret { return c.K.SysSend(core, tid, slot, args) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.SendSpec(old, new, tid, slot, args, ret)
		})
}

// SendAsync is the checked SysSendAsync.
func (c *Checker) SendAsync(core int, tid pm.Ptr, slot int, args kernel.SendArgs) (kernel.Ret, error) {
	return c.step("send_async",
		func() kernel.Ret { return c.K.SysSendAsync(core, tid, slot, args) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.SendAsyncSpec(old, new, tid, slot, args, ret)
		})
}

// Recv is the checked SysRecv.
func (c *Checker) Recv(core int, tid pm.Ptr, slot int, args kernel.RecvArgs) (kernel.Ret, error) {
	return c.step("recv",
		func() kernel.Ret { return c.K.SysRecv(core, tid, slot, args) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.RecvSpec(old, new, tid, slot, args, ret)
		})
}

// Call is the checked SysCall.
func (c *Checker) Call(core int, tid pm.Ptr, slot int, args kernel.SendArgs) (kernel.Ret, error) {
	return c.step("call",
		func() kernel.Ret { return c.K.SysCall(core, tid, slot, args) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.CallReplySpec(old, new, tid, slot, args.GrantPage, ret)
		})
}

// Reply is the checked SysReply.
func (c *Checker) Reply(core int, tid pm.Ptr, slot int, args kernel.SendArgs) (kernel.Ret, error) {
	return c.step("reply",
		func() kernel.Ret { return c.K.SysReply(core, tid, slot, args) },
		func(old, new spec.State, ret kernel.Ret) error {
			if ret.Errno != kernel.OK {
				return nil
			}
			return nil // reply delivery is covered by RecvSpec-side state + WF
		})
}

// ReplyRecv is the checked SysReplyRecv.
func (c *Checker) ReplyRecv(core int, tid pm.Ptr, slot int, args kernel.SendArgs, recv kernel.RecvArgs) (kernel.Ret, error) {
	return c.step("reply_recv",
		func() kernel.Ret { return c.K.SysReplyRecv(core, tid, slot, args, recv) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.ReplyRecvSpec(old, new, tid, slot, ret)
		})
}

// ExitThread is the checked SysExitThread.
func (c *Checker) ExitThread(core int, tid pm.Ptr) (kernel.Ret, error) {
	return c.step("exit_thread",
		func() kernel.Ret { return c.K.SysExitThread(core, tid) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.ExitThreadSpec(old, new, tid, ret)
		})
}

// KillProcess is the checked SysKillProcess.
func (c *Checker) KillProcess(core int, tid pm.Ptr, proc pm.Ptr) (kernel.Ret, error) {
	return c.step("kill_proc",
		func() kernel.Ret { return c.K.SysKillProcess(core, tid, proc) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.KillProcessSpec(old, new, tid, proc, ret)
		})
}

// KillContainer is the checked SysKillContainer.
func (c *Checker) KillContainer(core int, tid pm.Ptr, cntr pm.Ptr) (kernel.Ret, error) {
	return c.step("kill_container",
		func() kernel.Ret { return c.K.SysKillContainer(core, tid, cntr) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.KillContainerSpec(old, new, tid, cntr, ret)
		})
}

// KillContainerBounded is the checked SysKillContainerBounded: every
// bounded invocation must leave the kernel well-formed (the extension's
// whole point is that intermediate states are sound).
func (c *Checker) KillContainerBounded(core int, tid pm.Ptr, cntr pm.Ptr, budget int) (kernel.Ret, error) {
	return c.step("kill_container_bounded",
		func() kernel.Ret { return c.K.SysKillContainerBounded(core, tid, cntr, budget) },
		func(old, new spec.State, ret kernel.Ret) error {
			if ret.Errno != kernel.OK {
				return nil // progress states are covered by WF
			}
			return spec.KillContainerSpec(old, new, tid, cntr, kernel.Ret{Errno: kernel.OK})
		})
}

// IrqRegister is the checked SysIrqRegister (WF-only).
func (c *Checker) IrqRegister(core int, tid pm.Ptr, irq, slot int) (kernel.Ret, error) {
	return c.step("irq_register",
		func() kernel.Ret { return c.K.SysIrqRegister(core, tid, irq, slot) },
		func(old, new spec.State, ret kernel.Ret) error { return nil })
}

// IrqWait is the checked SysIrqWait (WF-only).
func (c *Checker) IrqWait(core int, tid pm.Ptr, irq int) (kernel.Ret, error) {
	return c.step("irq_wait",
		func() kernel.Ret { return c.K.SysIrqWait(core, tid, irq) },
		func(old, new spec.State, ret kernel.Ret) error { return nil })
}

// CloseEndpoint is the checked SysCloseEndpoint.
func (c *Checker) CloseEndpoint(core int, tid pm.Ptr, slot int) (kernel.Ret, error) {
	return c.step("close_endpoint",
		func() kernel.Ret { return c.K.SysCloseEndpoint(core, tid, slot) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.CloseEndpointSpec(old, new, tid, slot, ret)
		})
}

// Yield is the checked SysYield.
func (c *Checker) Yield(core int, tid pm.Ptr) (kernel.Ret, error) {
	return c.step("yield",
		func() kernel.Ret { return c.K.SysYield(core, tid) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.YieldSpec(old, new, tid, ret)
		})
}

// IommuCreateDomain is the checked SysIommuCreateDomain.
func (c *Checker) IommuCreateDomain(core int, tid pm.Ptr) (kernel.Ret, error) {
	return c.step("iommu_create",
		func() kernel.Ret { return c.K.SysIommuCreateDomain(core, tid) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.IommuCreateSpec(old, new, tid, ret)
		})
}

// IommuMap is the checked SysIommuMap.
func (c *Checker) IommuMap(core int, tid pm.Ptr, va hw.VirtAddr) (kernel.Ret, error) {
	return c.step("iommu_map",
		func() kernel.Ret { return c.K.SysIommuMap(core, tid, va) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.IommuMapSpec(old, new, tid, va, ret)
		})
}

// IommuUnmap is the checked SysIommuUnmap.
func (c *Checker) IommuUnmap(core int, tid pm.Ptr, va hw.VirtAddr) (kernel.Ret, error) {
	return c.step("iommu_unmap",
		func() kernel.Ret { return c.K.SysIommuUnmap(core, tid, va) },
		func(old, new spec.State, ret kernel.Ret) error {
			return spec.IommuUnmapSpec(old, new, tid, va, ret)
		})
}

// IommuAttach is the checked SysIommuAttach (WF-only).
func (c *Checker) IommuAttach(core int, tid pm.Ptr, dev iommu.DeviceID) (kernel.Ret, error) {
	return c.step("iommu_attach",
		func() kernel.Ret { return c.K.SysIommuAttach(core, tid, dev) },
		func(old, new spec.State, ret kernel.Ret) error { return nil })
}
