package verify

import (
	"os"
	"testing"
)

func TestObligationsAllDischarge(t *testing.T) {
	if testing.Short() {
		t.Skip("obligation suite in -short mode")
	}
	obls := Obligations()
	if len(obls) < 20 {
		t.Fatalf("only %d obligations registered", len(obls))
	}
	timings, total, err := RunObligations(obls, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != len(obls) {
		t.Fatalf("%d timings for %d obligations", len(timings), len(obls))
	}
	if total <= 0 {
		t.Fatal("zero total time")
	}
	// Timings are sorted descending.
	for i := 1; i < len(timings); i++ {
		if timings[i].Elapsed > timings[i-1].Elapsed {
			t.Fatal("timings not sorted descending")
		}
	}
}

func TestObligationsParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("obligation suite in -short mode")
	}
	obls := Obligations()
	_, seq, err := RunObligations(obls, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := RunObligations(obls, 8)
	if err != nil {
		t.Fatal(err)
	}
	// On a multi-core host the 8-worker run is much faster; on a
	// single-core host it only pays goroutine overhead. Assert it
	// completes within a generous factor either way.
	if par > seq*5 {
		t.Fatalf("8-worker run (%v) pathologically slower than sequential (%v)", par, seq)
	}
}

func TestAblationObligationsDischarge(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	flat, rec := AblationObligations()
	if _, _, err := RunObligations(flat, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunObligations(rec, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCountLoC(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, ok := FindModuleRoot(wd)
	if !ok {
		t.Fatal("module root not found")
	}
	stats, err := CountLoC(root)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Proof == 0 || stats.Exec == 0 {
		t.Fatalf("degenerate counts: %+v", stats)
	}
	if stats.Ratio() <= 0 {
		t.Fatal("ratio not positive")
	}
}
