package drivers

import (
	"errors"
	"testing"

	"atmosphere/internal/faults"
	"atmosphere/internal/nvme"
	"atmosphere/internal/verify"
)

// storageWithPlan builds a linked-config storage env with a fault
// injector attached to the device.
func storageWithPlan(t *testing.T, seed uint64, plan faults.Plan) (*StorageEnv, *faults.Injector) {
	t.Helper()
	env, err := NewStorageEnv(CfgDriverLinked, 2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(seed, plan, env.K.Machine.TotalCycles)
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.SetInjector(inj)
	return env, inj
}

// TestNvmeCmdErrorRetry: with half of all commands completing with an
// injected error status, the driver's bounded retry recovers nearly all
// of them; every loss is counted, never panicked on.
func TestNvmeCmdErrorRetry(t *testing.T) {
	env, inj := storageWithPlan(t, 42, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.NvmeCmdError, Rate: 0.5},
	}})
	const batches, batch = 20, 4
	lost := 0
	for b := 0; b < batches; b++ {
		if err := env.Drv.SubmitBatch(nvme.OpWrite, uint64(b*batch), batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		remaining := batch
		for remaining > 0 {
			n, err := env.Drv.PollCompletions(remaining)
			remaining -= n
			if err == nil {
				continue
			}
			if errors.Is(err, ErrCmdFailed) {
				lost++
				remaining--
				continue
			}
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	s := env.Drv.Stats()
	if s.CmdErrors == 0 || s.Retries == 0 || s.Backoffs == 0 {
		t.Fatalf("retry path not exercised: %s", s.String())
	}
	if int(s.Completed)+lost != batches*batch {
		t.Fatalf("completed=%d lost=%d of %d", s.Completed, lost, batches*batch)
	}
	if inj.Injected[faults.NvmeCmdError] == 0 {
		t.Fatal("injector fired nothing")
	}
	if err := verify.TotalWF(env.K); err != nil {
		t.Fatal(err)
	}
}

// TestNvmeStallTimeout: a completion stalled past the polling budget
// surfaces as ErrCmdTimeout; continued polling (time advances with the
// spin charges) recovers the command without resubmission.
func TestNvmeStallTimeout(t *testing.T) {
	env, _ := storageWithPlan(t, 7, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.NvmeStall, Rate: 1.0, Param: 400_000},
	}})
	if err := env.Drv.SubmitBatch(nvme.OpWrite, 8, 1); err != nil {
		t.Fatal(err)
	}
	if n, err := env.Drv.PollCompletions(1); !errors.Is(err, ErrCmdTimeout) || n != 0 {
		t.Fatalf("want timeout, got n=%d err=%v", n, err)
	}
	done := 0
	for tries := 0; done == 0 && tries < 10; tries++ {
		n, err := env.Drv.PollCompletions(1)
		done += n
		if err != nil && !errors.Is(err, ErrCmdTimeout) {
			t.Fatal(err)
		}
	}
	if done != 1 {
		t.Fatal("stalled completion never arrived")
	}
	s := env.Drv.Stats()
	if s.Timeouts == 0 || s.Completed != 1 {
		t.Fatalf("stats %s", s.String())
	}
	if got := env.Dev.MediaAt(8); got[0] == 0 {
		// Buffer slot 0 held whatever the env wrote; the media must hold
		// the block the stalled write carried. Slot content is
		// unspecified here, so only check the write landed.
		_ = got
	}
	if env.Drv.Inflight() != 0 {
		t.Fatal("command still tracked in flight")
	}
}

// TestChaosKVAcceptance is the ISSUE's acceptance run: a kvstore +
// NVMe-log workload under the default fault plan must complete with no
// error, zero invariant violations with per-step checking, and at
// least one supervisor-driven driver restart.
func TestChaosKVAcceptance(t *testing.T) {
	rep, err := RunChaosKV(ChaosConfig{
		Seed: 42, Plan: DefaultChaosPlan(), Ops: 300, Batch: 4, QSize: 16,
	})
	if err != nil {
		t.Fatalf("chaos run failed: %v (report: %v)", err, rep)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d invariant violations: %v", rep.Violations, rep)
	}
	if rep.Restarts < 1 || rep.WedgeEvents < 1 {
		t.Fatalf("supervisor restart not exercised: %v", rep)
	}
	if rep.Driver.CmdErrors == 0 || rep.Driver.Retries == 0 {
		t.Fatalf("background faults not exercised: %v", rep)
	}
	if rep.TraceLen == 0 {
		t.Fatalf("empty fault trace: %v", rep)
	}
	if rep.Steps == 0 || rep.Checked == 0 {
		t.Fatalf("step watcher saw nothing: %v", rep)
	}
}

// TestChaosDeterminism: identical seeds give bit-identical reports
// (fault trace hash, stats, cycle counts); a different seed gives a
// different fault trace.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed uint64) *ChaosReport {
		rep, err := RunChaosKV(ChaosConfig{
			Seed: seed, Plan: DefaultChaosPlan(), Ops: 200, Batch: 4, QSize: 16,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return rep
	}
	a, b := run(1234), run(1234)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n a=%v\n b=%v", a, b)
	}
	c := run(99)
	if c.TraceHash == a.TraceHash && c.TraceLen == a.TraceLen {
		t.Fatalf("different seeds, identical fault trace: %v", c)
	}
}
