package drivers

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/profile"
)

// ledgeredChaos runs the chaos workload with tracer, registry, and
// page-ownership ledger all attached.
func ledgeredChaos(t *testing.T, seed uint64, ops int) (*ChaosReport, ChaosConfig) {
	t.Helper()
	cfg := ChaosConfig{
		Seed: seed, Ops: ops, Plan: DefaultChaosPlan(), Batch: 4, QSize: 16,
		Trace:   obs.NewTracer(0),
		Metrics: obs.NewRegistry(),
		Ledger:  account.NewLedger(),
	}
	rep, err := RunChaosKV(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v (report: %v)", err, rep)
	}
	return rep, cfg
}

// rowsByName indexes ledger rows by container name.
func rowsByName(l *account.Ledger) map[string]account.ContainerRow {
	m := make(map[string]account.ContainerRow)
	for _, r := range l.Rows() {
		m[r.Name] = r
	}
	return m
}

// TestAccountingAcrossRespawn is the cross-respawn accounting check:
// the supervisor kills and respawns the NVMe driver container at least
// once, and the ledger must show every dead generation's closure
// drained to zero pages (cycles stay — they were genuinely spent)
// while the surviving generation still owns its rings and buffers.
// Every periodic closure audit along the way counts into Violations,
// so zero violations means the invariant held across every teardown
// intermediate state too.
func TestAccountingAcrossRespawn(t *testing.T) {
	rep, cfg := ledgeredChaos(t, 42, 300)
	if rep.Violations != 0 {
		t.Fatalf("%d invariant/audit violations: %v", rep.Violations, rep)
	}
	if rep.Restarts < 1 {
		t.Fatalf("supervisor respawn not exercised: %v", rep)
	}
	// Driver stats survive the respawn: the counter block is shared
	// across generations, so completions from before and after the kill
	// accumulate in one place.
	if rep.Driver.Completed == 0 || rep.Driver.Submitted < rep.Driver.Completed {
		t.Fatalf("driver stats inconsistent across respawn: %s", rep.Driver.String())
	}

	rows := rowsByName(cfg.Ledger)
	gens := 0
	for name, row := range rows {
		if !strings.HasPrefix(name, "nvme.gen") {
			continue
		}
		gens++
		last := name == fmt.Sprintf("nvme.gen%d", rep.Restarts)
		if last {
			if row.Pages() == 0 {
				t.Errorf("live generation %s owns no pages", name)
			}
		} else if row.Pages() != 0 {
			t.Errorf("dead generation %s still owns %d pages (leak)", name, row.Pages())
		}
		if row.Cycles == 0 {
			t.Errorf("generation %s was billed no cycles", name)
		}
	}
	if want := int(rep.Restarts) + 1; gens != want {
		t.Fatalf("ledger saw %d driver generations, want %d (restarts=%d)", gens, want, rep.Restarts)
	}
	if got := cfg.Ledger.ContainerPages(account.InFlight); got != 0 {
		t.Fatalf("in-flight pages at end of run = %d, want 0", got)
	}
	if err := cfg.Ledger.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}

	// The fixed-name container gauges track the *current* generation.
	var sb strings.Builder
	if err := cfg.Metrics.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"account.cntr.nvme.pages", "account.cntr.nvme.cycles", "account.pages.live"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestAccountingUnchangedByLedger pins the zero-cost contract for the
// ledger the same way trace_test does for the tracer: attaching the
// ledger must not move a single simulated cycle or fault decision.
func TestAccountingUnchangedByLedger(t *testing.T) {
	plain, err := RunChaosKV(ChaosConfig{
		Seed: 9, Ops: 150, Plan: DefaultChaosPlan(), Batch: 4, QSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ledgered, err := RunChaosKV(ChaosConfig{
		Seed: 9, Ops: 150, Plan: DefaultChaosPlan(), Batch: 4, QSize: 16,
		Ledger: account.NewLedger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != ledgered.String() {
		t.Errorf("attaching the ledger changed the report:\n%s\n%s", plain, ledgered)
	}
}

// TestAccountingDeterminism: two same-seed runs must agree byte for
// byte on the folded profile and the accounting rows — the attribution
// pipeline is as deterministic as the simulation under it.
func TestAccountingDeterminism(t *testing.T) {
	_, cfg1 := ledgeredChaos(t, 1234, 200)
	_, cfg2 := ledgeredChaos(t, 1234, 200)
	f1 := profile.Fold(cfg1.Trace).FoldedString()
	f2 := profile.Fold(cfg2.Trace).FoldedString()
	if f1 != f2 {
		t.Error("same-seed folded profiles are not byte-identical")
	}
	if f1 == "" {
		t.Error("folded profile is empty")
	}
	var r1, r2 bytes.Buffer
	for _, row := range cfg1.Ledger.Rows() {
		fmt.Fprintf(&r1, "%s %d %d %d\n", row.Name, row.ObjPages, row.UserPages, row.Cycles)
	}
	for _, row := range cfg2.Ledger.Rows() {
		fmt.Fprintf(&r2, "%s %d %d %d\n", row.Name, row.ObjPages, row.UserPages, row.Cycles)
	}
	if r1.String() != r2.String() {
		t.Errorf("same-seed ledger rows diverge:\n%s\nvs\n%s", r1.String(), r2.String())
	}
}
