package drivers

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/nic"
	"atmosphere/internal/nvme"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/shmring"
)

// NetConfig enumerates the deployment configurations of §6.5: the
// benchmark application statically linked with the driver
// (atmo-driver), the application on a separate core communicating over
// a shared-memory ring (atmo-c2), and the application co-located with
// the driver on one core, invoking it through an IPC endpoint per batch
// (atmo-c1-bN).
type NetConfig int

// Deployment configurations.
const (
	CfgDriverLinked NetConfig = iota
	CfgC2
	CfgC1
)

// String implements fmt.Stringer.
func (c NetConfig) String() string {
	switch c {
	case CfgDriverLinked:
		return "atmo-driver"
	case CfgC2:
		return "atmo-c2"
	case CfgC1:
		return "atmo-c1"
	}
	return "?"
}

// NetEnv is a booted kernel with a driver process, an application
// process, and (for c1/c2) kernel-established shared rings between them.
type NetEnv struct {
	K   *kernel.Kernel
	Dev *nic.Device
	Gen *nic.Generator
	Drv *IxgbeDriver
	Cfg NetConfig

	DrvTid, AppTid   pm.Ptr
	DrvCore, AppCore int

	// Rings, one per direction, each with a per-side view so costs land
	// on the right core's clock.
	d2aDrv, d2aApp *shmring.Ring
	a2dDrv, a2dApp *shmring.Ring

	// ipcSlot is the endpoint both sides use in the c1 configuration.
	ipcSlot int

	txPending [][]byte
}

// drvClock and appClock return the two sides' cycle accumulators.
func (e *NetEnv) drvClock() *hw.Clock { return &e.K.Machine.Core(e.DrvCore).Clock }
func (e *NetEnv) appClock() *hw.Clock { return &e.K.Machine.Core(e.AppCore).Clock }

// NewNetEnv boots a kernel and assembles the configuration. The device
// sits behind the IOMMU in every configuration (drivers are untrusted
// user processes, §3).
func NewNetEnv(cfg NetConfig, gen *nic.Generator) (*NetEnv, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 8192, Cores: 4, TLBSlots: 512})
	if err != nil {
		return nil, err
	}
	e := &NetEnv{K: k, Cfg: cfg, Gen: gen}
	e.Dev = nic.New(k.Machine.Mem, k.IOMMU, 1)
	e.Dev.AttachGenerator(gen)

	switch cfg {
	case CfgDriverLinked:
		e.DrvTid, e.AppTid = init, init
		e.DrvCore, e.AppCore = 0, 0
	case CfgC2, CfgC1:
		e.DrvCore = 1
		if cfg == CfgC2 {
			e.AppCore = 2
		} else {
			e.AppCore = 1
		}
		mk := func(core int) (pm.Ptr, error) {
			r := k.SysNewProcess(0, init)
			if r.Errno != kernel.OK {
				return 0, fmt.Errorf("drivers: new_proc: %v", r.Errno)
			}
			rt := k.SysNewThreadIn(0, init, pm.Ptr(r.Vals[0]), core)
			if rt.Errno != kernel.OK {
				return 0, fmt.Errorf("drivers: new_thread: %v", rt.Errno)
			}
			return pm.Ptr(rt.Vals[0]), nil
		}
		if e.DrvTid, err = mk(e.DrvCore); err != nil {
			return nil, err
		}
		if e.AppTid, err = mk(e.AppCore); err != nil {
			return nil, err
		}
	}

	e.Drv, err = SetupIxgbe(k, e.DrvTid, e.DrvCore, e.Dev, 256, true)
	if err != nil {
		return nil, err
	}
	if cfg == CfgC2 || cfg == CfgC1 {
		if err := e.setupRings(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// setupRings establishes the two shared ring pages between the driver
// and application processes using the kernel's page-transfer IPC — the
// exact mechanism §3 describes for building shared-memory channels.
func (e *NetEnv) setupRings() error {
	k := e.K
	// Endpoint shared by both threads (slot 0), installed by the
	// trusted parent at setup time.
	r := k.SysNewEndpoint(e.DrvCore, e.DrvTid, 0)
	if r.Errno != kernel.OK {
		return fmt.Errorf("drivers: endpoint: %v", r.Errno)
	}
	ep := pm.Ptr(r.Vals[0])
	k.PM.Thrd(e.AppTid).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	e.ipcSlot = 0

	const drvRingVA = hw.VirtAddr(0x500000000)
	const appRingVA = hw.VirtAddr(0x600000000)
	var phys [2]hw.PhysAddr
	for i := 0; i < 2; i++ {
		dva := drvRingVA + hw.VirtAddr(i*hw.PageSize4K)
		ava := appRingVA + hw.VirtAddr(i*hw.PageSize4K)
		if r := k.SysMmap(e.DrvCore, e.DrvTid, dva, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
			return fmt.Errorf("drivers: ring mmap: %v", r.Errno)
		}
		// App blocks receiving the page, driver sends it.
		if r := k.SysRecv(e.AppCore, e.AppTid, 0, kernel.RecvArgs{PageVA: ava, EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return fmt.Errorf("drivers: ring recv: %v", r.Errno)
		}
		if r := k.SysSend(e.DrvCore, e.DrvTid, 0, kernel.SendArgs{SendPage: true, PageVA: dva}); r.Errno != kernel.OK {
			return fmt.Errorf("drivers: ring send: %v", r.Errno)
		}
		proc := k.PM.Proc(k.PM.Thrd(e.DrvTid).OwningProc)
		entry, ok := proc.PageTable.Lookup(dva)
		if !ok {
			return fmt.Errorf("drivers: ring page vanished")
		}
		phys[i] = entry.Phys
	}
	mem := k.Machine.Mem
	e.d2aDrv = shmring.New(mem, e.drvClock(), phys[0], 0)
	e.d2aApp = shmring.New(mem, e.appClock(), phys[0], 0)
	e.a2dDrv = shmring.New(mem, e.drvClock(), phys[1], 0)
	e.a2dApp = shmring.New(mem, e.appClock(), phys[1], 0)
	return nil
}

// AppWork processes one received frame on the application side and
// reports whether the frame should be transmitted back out (forwarding
// apps) — it must charge its own cost to clk.
type AppWork func(clk *hw.Clock, frame []byte) (tx bool)

// NetRates is the outcome of a network run.
type NetRates struct {
	Packets   uint64
	DrvCycles uint64
	AppCycles uint64
	// Mpps is the sustained packet rate implied by the bottleneck core,
	// capped at the 10 GbE line rate.
	Mpps float64
}

// rate converts per-core cycle totals into the sustained rate.
func rate(packets, drvCycles, appCycles uint64, sameCore bool) float64 {
	var bottleneck uint64
	if sameCore {
		bottleneck = drvCycles // one clock carries both sides
	} else {
		bottleneck = drvCycles
		if appCycles > bottleneck {
			bottleneck = appCycles
		}
	}
	if bottleneck == 0 {
		return 0
	}
	pps := float64(packets) * hw.ClockHz / float64(bottleneck)
	if pps > nic.LineRatePps {
		pps = nic.LineRatePps
	}
	return pps / 1e6
}

// RunRx drives totalPackets through the receive path in batches,
// applying work per frame on the application side, and returns the
// sustained rate.
func (e *NetEnv) RunRx(totalPackets, batch int, work AppWork) (NetRates, error) {
	if batch < 1 || batch > 128 {
		return NetRates{}, fmt.Errorf("drivers: bad batch %d", batch)
	}
	drv0, app0 := e.drvClock().Cycles(), e.appClock().Cycles()
	done := 0
	switch e.Cfg {
	case CfgDriverLinked:
		for done < totalPackets {
			if _, err := e.Dev.DeliverRX(batch); err != nil {
				return NetRates{}, err
			}
			n := e.Drv.RxBurst(batch)
			var txFrames [][]byte
			for _, f := range e.Drv.Frames[:n] {
				if work(e.appClock(), f) {
					txFrames = append(txFrames, f)
				}
			}
			if len(txFrames) > 0 {
				if err := e.Drv.TxBurst(txFrames); err != nil {
					return NetRates{}, err
				}
			}
			done += n
		}
	case CfgC2:
		if err := e.runPipelined(totalPackets, batch, work, &done, nil); err != nil {
			return NetRates{}, err
		}
	case CfgC1:
		if err := e.runC1(totalPackets, batch, work, &done); err != nil {
			return NetRates{}, err
		}
	}
	drvC := e.drvClock().Cycles() - drv0
	appC := e.appClock().Cycles() - app0
	return NetRates{
		Packets:   uint64(done),
		DrvCycles: drvC,
		AppCycles: appC,
		Mpps:      rate(uint64(done), drvC, appC, e.DrvCore == e.AppCore),
	}, nil
}

// runPipelined is the c2 data path: the driver core receives frames and
// publishes descriptors on the shared ring; the application core
// consumes them and optionally publishes TX descriptors back.
func (e *NetEnv) runPipelined(totalPackets, batch int, work AppWork, done *int, _ any) error {
	mem := e.K.Machine.Mem
	entries := make([]shmring.Entry, batch)
	for *done < totalPackets {
		if _, err := e.Dev.DeliverRX(batch); err != nil {
			return err
		}
		n := e.Drv.RxBurst(batch)
		for i := 0; i < n; i++ {
			f := e.Drv.Frames[i]
			// Publish (phys,len) to the app. Finding the buffer's
			// physical base is free here: the slice aliases it.
			e.d2aDrv.Push(shmring.PackBufferDesc(e.Drv.bufPhys[(e.Drv.rxNext-n+i+e.Drv.ringSize)%e.Drv.ringSize], uint16(len(f)), 0))
		}
		m := e.d2aApp.PopBatch(entries[:n])
		var txFrames [][]byte
		for i := 0; i < m; i++ {
			addr, length, _ := shmring.UnpackBufferDesc(entries[i])
			frame := mem.Slice(addr, uint64(length))
			if work(e.appClock(), frame) {
				e.a2dApp.Push(entries[i])
			}
		}
		// Driver side drains the TX ring.
		t := e.a2dDrv.PopBatch(entries[:batch])
		for i := 0; i < t; i++ {
			addr, length, _ := shmring.UnpackBufferDesc(entries[i])
			txFrames = append(txFrames, mem.Slice(addr, uint64(length)))
		}
		if len(txFrames) > 0 {
			if err := e.Drv.TxBurst(txFrames); err != nil {
				return err
			}
		}
		*done += m
	}
	return nil
}

// runC1 is the same-core path: per batch the application invokes the
// driver through the IPC endpoint (SysCall), the driver fills the ring
// and bounces back with SysReplyRecv — real kernel crossings, charged
// to the shared core.
func (e *NetEnv) runC1(totalPackets, batch int, work AppWork, done *int) error {
	k := e.K
	mem := k.Machine.Mem
	// Driver parks in receive.
	if r := k.SysRecv(e.DrvCore, e.DrvTid, e.ipcSlot, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return fmt.Errorf("drivers: park recv: %v", r.Errno)
	}
	entries := make([]shmring.Entry, batch)
	for *done < totalPackets {
		// App invokes the driver (direct switch to driver).
		if r := k.SysCall(e.AppCore, e.AppTid, e.ipcSlot, kernel.SendArgs{Regs: [4]uint64{uint64(batch)}}); r.Errno != kernel.EWOULDBLOCK {
			return fmt.Errorf("drivers: call: %v", r.Errno)
		}
		// Driver side: receive from the NIC, publish to the ring.
		if _, err := e.Dev.DeliverRX(batch); err != nil {
			return err
		}
		n := e.Drv.RxBurst(batch)
		for i := 0; i < n; i++ {
			f := e.Drv.Frames[i]
			e.d2aDrv.Push(shmring.PackBufferDesc(e.Drv.bufPhys[(e.Drv.rxNext-n+i+e.Drv.ringSize)%e.Drv.ringSize], uint16(len(f)), 0))
		}
		// Driver replies and re-parks (direct switch back to app).
		if r := k.SysReplyRecv(e.DrvCore, e.DrvTid, e.ipcSlot, kernel.SendArgs{Regs: [4]uint64{uint64(n)}}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return fmt.Errorf("drivers: reply_recv: %v", r.Errno)
		}
		// App consumes.
		m := e.d2aApp.PopBatch(entries[:n])
		for i := 0; i < m; i++ {
			addr, length, _ := shmring.UnpackBufferDesc(entries[i])
			frame := mem.Slice(addr, uint64(length))
			work(e.appClock(), frame)
		}
		*done += m
	}
	return nil
}

// --- NVMe configurations -----------------------------------------------------

// StorageEnv is the NVMe counterpart of NetEnv.
type StorageEnv struct {
	K   *kernel.Kernel
	Dev *nvme.Device
	Drv *NvmeDriver
	Cfg NetConfig

	DrvTid, AppTid   pm.Ptr
	DrvCore, AppCore int
	ipcSlot          int
}

// NewStorageEnv boots a kernel with an NVMe device and driver in the
// given configuration.
func NewStorageEnv(cfg NetConfig, capacityBlocks, qSize int) (*StorageEnv, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 8192, Cores: 4, TLBSlots: 512})
	if err != nil {
		return nil, err
	}
	e := &StorageEnv{K: k, Cfg: cfg}
	e.Dev = nvme.New(k.Machine.Mem, k.IOMMU, 2, capacityBlocks)
	switch cfg {
	case CfgDriverLinked:
		e.DrvTid, e.AppTid = init, init
	case CfgC2, CfgC1:
		e.DrvCore = 1
		if cfg == CfgC2 {
			e.AppCore = 2
		} else {
			e.AppCore = 1
		}
		mk := func(core int) (pm.Ptr, error) {
			r := k.SysNewProcess(0, init)
			if r.Errno != kernel.OK {
				return 0, fmt.Errorf("drivers: new_proc: %v", r.Errno)
			}
			rt := k.SysNewThreadIn(0, init, pm.Ptr(r.Vals[0]), core)
			if rt.Errno != kernel.OK {
				return 0, fmt.Errorf("drivers: new_thread: %v", rt.Errno)
			}
			return pm.Ptr(rt.Vals[0]), nil
		}
		if e.DrvTid, err = mk(e.DrvCore); err != nil {
			return nil, err
		}
		if e.AppTid, err = mk(e.AppCore); err != nil {
			return nil, err
		}
		r := k.SysNewEndpoint(e.DrvCore, e.DrvTid, 0)
		if r.Errno != kernel.OK {
			return nil, fmt.Errorf("drivers: endpoint: %v", r.Errno)
		}
		ep := pm.Ptr(r.Vals[0])
		k.PM.Thrd(e.AppTid).Endpoints[0] = ep
		k.PM.EndpointIncRef(ep, 1)
	}
	e.Drv, err = SetupNvme(k, e.DrvTid, e.DrvCore, e.Dev, qSize, true)
	if err != nil {
		return nil, err
	}
	return e, nil
}

func (e *StorageEnv) drvClock() *hw.Clock { return &e.K.Machine.Core(e.DrvCore).Clock }
func (e *StorageEnv) appClock() *hw.Clock { return &e.K.Machine.Core(e.AppCore).Clock }

// StorageRates is the outcome of a storage run.
type StorageRates struct {
	IOs         uint64
	CoreCycles  uint64
	CyclesPerIO float64
	// IOPS folds the CPU rate with the device's latency and throughput
	// envelope (§6.5.2).
	IOPS float64
}

// AtmoWriteEfficiency models the 10% device-level write overhead the
// paper measures for the Atmosphere driver on all configurations
// (232K of 256K IOPS, §6.5.2).
const AtmoWriteEfficiency = 0.906

// RunSequential performs totalIOs sequential 4 KiB operations in
// batches and returns the rate.
func (e *StorageEnv) RunSequential(op byte, totalIOs, batch int) (StorageRates, error) {
	drv0, app0 := e.drvClock().Cycles(), e.appClock().Cycles()
	if e.Cfg == CfgC1 {
		if r := e.K.SysRecv(e.DrvCore, e.DrvTid, e.ipcSlot, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return StorageRates{}, fmt.Errorf("drivers: park recv: %v", r.Errno)
		}
	}
	lba := uint64(0)
	done := 0
	for done < totalIOs {
		if e.Cfg == CfgC1 {
			if r := e.K.SysCall(e.AppCore, e.AppTid, e.ipcSlot, kernel.SendArgs{Regs: [4]uint64{uint64(batch)}}); r.Errno != kernel.EWOULDBLOCK {
				return StorageRates{}, fmt.Errorf("drivers: call: %v", r.Errno)
			}
		}
		if err := e.Drv.SubmitBatch(op, lba, batch); err != nil {
			return StorageRates{}, err
		}
		if got, err := e.Drv.PollCompletions(batch); err != nil {
			return StorageRates{}, fmt.Errorf("drivers: %d of %d completions: %w", got, batch, err)
		} else if got != batch {
			return StorageRates{}, fmt.Errorf("drivers: %d of %d completions", got, batch)
		}
		if e.Cfg == CfgC1 {
			if r := e.K.SysReplyRecv(e.DrvCore, e.DrvTid, e.ipcSlot, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
				return StorageRates{}, fmt.Errorf("drivers: reply_recv: %v", r.Errno)
			}
		}
		lba = (lba + uint64(batch)) % 1024
		done += batch
	}
	drvC := e.drvClock().Cycles() - drv0
	appC := e.appClock().Cycles() - app0
	core := drvC
	if e.DrvCore != e.AppCore && appC > core {
		core = appC
	}
	perIO := float64(core) / float64(done)
	coreRate := hw.ClockHz / perIO

	// Device envelope.
	var latency float64
	var devMax float64
	if op == nvme.OpRead {
		latency = nvme.ReadLatencyCycles
		devMax = nvme.ReadMaxIOPS
	} else {
		latency = nvme.WriteLatencyCycles
		devMax = nvme.WriteMaxIOPS * AtmoWriteEfficiency
	}
	latencyBound := float64(batch) * hw.ClockHz / latency
	iops := coreRate
	if latencyBound < iops {
		iops = latencyBound
	}
	if devMax < iops {
		iops = devMax
	}
	return StorageRates{
		IOs: uint64(done), CoreCycles: core,
		CyclesPerIO: perIO, IOPS: iops,
	}, nil
}
