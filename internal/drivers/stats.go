package drivers

import (
	"errors"
	"fmt"
	"strings"

	"atmosphere/internal/obs"
)

// Driver fault-handling errors. Every condition that used to panic a
// driver process now surfaces as one of these, counted in DriverStats.
var (
	// ErrCmdTimeout: a command did not complete within the polling
	// cycle budget (injected stall or wedged device).
	ErrCmdTimeout = errors.New("drivers: command timed out")
	// ErrCmdFailed: a command kept completing with an error status
	// after exhausting its retry budget.
	ErrCmdFailed = errors.New("drivers: command failed after retries")
	// ErrUnmapped: a driver buffer had no page-table mapping (setup
	// bug or revoked mapping); formerly a panic.
	ErrUnmapped = errors.New("drivers: unmapped driver buffer")
)

// Retry/backoff policy shared by both drivers. Backoff is charged to
// the driver core's clock (the driver really waits), growing
// exponentially per attempt.
const (
	// MaxRetries bounds resubmissions of one command and doorbell
	// retries of one batch.
	MaxRetries = 5
	// BackoffBaseCycles is the first retry's wait; attempt i waits
	// BackoffBaseCycles << i.
	BackoffBaseCycles = 2_000
	// DefaultPollBudget is the per-poll-call cycle budget after which a
	// missing completion is declared timed out (≈90 µs at 2.2 GHz —
	// comfortably above the device's 76 µs read latency).
	DefaultPollBudget = 200_000
	// pollSpinBase and pollSpinMax bound the adaptive spin-wait charge
	// per empty completion poll.
	pollSpinBase = 64
	pollSpinMax  = 16_384
)

// DriverStats is the fault/retry/recovery counter block both drivers
// expose; cmd/atmo-sim prints it and the chaos harness folds it into
// its deterministic report.
type DriverStats struct {
	Submitted uint64 // commands / frames handed to the device
	Completed uint64 // successful completions / received frames

	CmdErrors uint64 // error-status completions observed
	Retries   uint64 // bounded resubmissions and doorbell retries
	Backoffs  uint64 // backoff waits charged
	Timeouts  uint64 // poll-budget exhaustions
	DMAFaults uint64 // DMA faults surfaced by the device
	BadDesc   uint64 // corrupted descriptors dropped
	Failed    uint64 // commands abandoned after the retry budget
	Wedged    uint64 // times the driver declared itself wedged
}

// statSet is the live counter block behind DriverStats. Each field is
// an obs counter: standalone when no metrics registry is attached
// (bit-identical behavior to plain uint64 fields), or registered under
// "driver.<name>.<field>" when one is — in which case a respawned
// driver resolves the same names and its counts continue the
// predecessor's totals instead of restarting from zero.
type statSet struct {
	submitted *obs.Counter
	completed *obs.Counter
	cmdErrors *obs.Counter
	retries   *obs.Counter
	backoffs  *obs.Counter
	timeouts  *obs.Counter
	dmaFaults *obs.Counter
	badDesc   *obs.Counter
	failed    *obs.Counter
	wedged    *obs.Counter
}

// newStatSet builds the counter block, registering under name when a
// registry is supplied.
func newStatSet(r *obs.Registry, name string) *statSet {
	c := func(field string) *obs.Counter {
		if r == nil {
			return obs.NewCounter()
		}
		return r.Counter("driver." + name + "." + field)
	}
	return &statSet{
		submitted: c("submitted"),
		completed: c("completed"),
		cmdErrors: c("cmd_errors"),
		retries:   c("retries"),
		backoffs:  c("backoffs"),
		timeouts:  c("timeouts"),
		dmaFaults: c("dma_faults"),
		badDesc:   c("bad_desc"),
		failed:    c("failed"),
		wedged:    c("wedged"),
	}
}

// view snapshots the counters into the stable DriverStats shape.
func (s *statSet) view() DriverStats {
	return DriverStats{
		Submitted: s.submitted.Value(),
		Completed: s.completed.Value(),
		CmdErrors: s.cmdErrors.Value(),
		Retries:   s.retries.Value(),
		Backoffs:  s.backoffs.Value(),
		Timeouts:  s.timeouts.Value(),
		DMAFaults: s.dmaFaults.Value(),
		BadDesc:   s.badDesc.Value(),
		Failed:    s.failed.Value(),
		Wedged:    s.wedged.Value(),
	}
}

// Add folds another counter block into this one (used when a restarted
// driver's fresh counters continue a predecessor's totals).
func (s *DriverStats) Add(o DriverStats) {
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.CmdErrors += o.CmdErrors
	s.Retries += o.Retries
	s.Backoffs += o.Backoffs
	s.Timeouts += o.Timeouts
	s.DMAFaults += o.DMAFaults
	s.BadDesc += o.BadDesc
	s.Failed += o.Failed
	s.Wedged += o.Wedged
}

// String renders the nonzero counters in declaration order.
func (s DriverStats) String() string {
	var b strings.Builder
	add := func(name string, v uint64) {
		if v == 0 && name != "submitted" && name != "completed" {
			return
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	add("submitted", s.Submitted)
	add("completed", s.Completed)
	add("cmd-errors", s.CmdErrors)
	add("retries", s.Retries)
	add("backoffs", s.Backoffs)
	add("timeouts", s.Timeouts)
	add("dma-faults", s.DMAFaults)
	add("bad-desc", s.BadDesc)
	add("failed", s.Failed)
	add("wedged", s.Wedged)
	return b.String()
}
