package drivers

import (
	"encoding/binary"
	"errors"
	"fmt"

	"atmosphere/internal/apps"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/nvme"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/contend"
	"atmosphere/internal/pm"
	"atmosphere/internal/verify"
)

// Chaos harness: a kvstore-with-write-ahead-log workload driven under a
// fault plan, supervised end to end. This is the acceptance scenario of
// the robustness work — with faults injected into the NVMe device, the
// allocator, and the interrupt path, the workload must complete with
// zero panics and zero invariant violations, and a deliberately wedged
// driver must come back through the supervisor's bounded teardown and
// respawn. Everything is deterministic: one seed fixes the fault trace
// (hash-attested) and the final report bit for bit.

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	Seed  uint64
	Plan  faults.Plan
	Ops   int // KV operations to perform
	Batch int // log records per NVMe flush
	QSize int // driver queue depth

	// VerifyEveryOps runs the full invariant suite every Nth operation
	// on top of the per-syscall step watcher (0 = every 16).
	VerifyEveryOps int
	// HeartbeatTimeout overrides the supervisor deadline (cycles).
	HeartbeatTimeout uint64

	// Trace/Metrics, when set, are attached to the booted kernel and
	// threaded through the injector, supervisor, driver, and workload.
	// Observability never charges cycles, so the report is identical
	// with or without them (driver counters aside: a registry makes
	// them cumulative across respawned generations, which the report
	// already was).
	Trace   *obs.Tracer
	Metrics *obs.Registry

	// Ledger, when set, is attached to the kernel and audited at every
	// verify point (plus once at the end); an audit failure counts as an
	// invariant violation in the report. Driver container generations
	// are named "nvme.gen<N>" in the ledger.
	Ledger *account.Ledger

	// Contend, when set, is attached to the kernel: the big lock
	// registers as a frontier and the scheduler's run-queue delays feed
	// it. Like the other sinks it never charges a cycle.
	Contend *contend.Observatory
}

// ChaosReport is the deterministic outcome of a chaos run: two runs
// with equal ChaosConfig must produce equal reports (String-compare).
type ChaosReport struct {
	Ops            int
	Flushes        uint64
	LostWrites     uint64 // log records abandoned after the retry budget
	WedgeEvents    uint64 // times the harness declared the driver wedged
	Restarts       uint64 // successful supervisor respawns
	KVSets, KVGets uint64
	KVHits         uint64

	Driver    DriverStats // cumulative across driver generations
	Injector  string      // per-kind injection counters
	TraceHash uint64      // fault-trace attestation
	TraceLen  uint64

	Steps      uint64 // kernel transitions observed by the step watcher
	Checked    uint64 // transitions + ops on which TotalWF ran
	Violations int

	TotalCycles uint64
}

// String renders every field; equality of strings is the bit-for-bit
// determinism check.
func (r *ChaosReport) String() string {
	return fmt.Sprintf(
		"ops=%d flushes=%d lost=%d wedges=%d restarts=%d "+
			"kv[sets=%d gets=%d hits=%d] drv[%s] inj[%s] "+
			"trace=%016x/%d steps=%d checked=%d violations=%d cycles=%d",
		r.Ops, r.Flushes, r.LostWrites, r.WedgeEvents, r.Restarts,
		r.KVSets, r.KVGets, r.KVHits, r.Driver.String(), r.Injector,
		r.TraceHash, r.TraceLen, r.Steps, r.Checked, r.Violations,
		r.TotalCycles)
}

// DefaultChaosPlan is the standing fault mix of the acceptance run:
// background command errors, recoverable completion stalls, allocator
// pressure, interrupt noise — plus one window of guaranteed long stalls
// that wedges the driver and forces a supervisor restart.
func DefaultChaosPlan() faults.Plan {
	return faults.Plan{Rules: []faults.Rule{
		// The wedge window: every completion in it stalls for 50M cycles,
		// far past the retry budget, so the first flush wedges the driver
		// and exercises the supervisor. Listed first so it shadows the
		// general stall rule inside the window; recovery itself burns
		// past the window (the heartbeat deadline is 2M cycles), so the
		// resubmitted batch and the rest of the run see only background
		// rates.
		{Kind: faults.NvmeStall, Rate: 1.0, From: 0, Until: 900_000, Param: 50_000_000},
		{Kind: faults.NvmeStall, Rate: 0.02, Param: 150_000},
		{Kind: faults.NvmeCmdError, Rate: 0.05},
		{Kind: faults.AllocExhaust, Rate: 0.01},
		{Kind: faults.IRQDrop, Rate: 0.10},
		{Kind: faults.IRQSpurious, Rate: 0.01},
	}}
}

// Chaos-harness tuning.
const (
	chaosDriverQuota = 300 // pages per driver container generation
	chaosDriverCore  = 1   // driver thread's core
	wedgeThreshold   = 3   // consecutive poll timeouts before declaring a wedge
	maxWedgeEvents   = 32  // recoveries before the run gives up
	spuriousIRQLine  = 77  // unbound line raised by IRQSpurious
	recordSize       = 64  // log record bytes
	defaultHeartbeat = 2_000_000
)

type chaosHarness struct {
	cfg  ChaosConfig
	k    *kernel.Kernel
	init pm.Ptr
	dev  *nvme.Device
	inj  *faults.Injector
	sup  *kernel.Supervisor
	drv  *NvmeDriver

	// Tracing state (zero when cfg.Trace is nil).
	tr                     *obs.Tracer
	appTrack, harnessTrack obs.TrackID
	nSet, nGet, nWait      obs.NameID

	gen int // driver generations spawned (ledger naming)

	accum  DriverStats // stats of dead driver generations (no-registry runs)
	report ChaosReport
}

// RunChaosKV executes the workload under cfg's fault plan and returns
// the deterministic report. An error means the run could not complete
// (recovery permanently failed) — distinct from faults that were
// injected and survived, which only show up as report counters.
func RunChaosKV(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 200
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 4
	}
	if cfg.QSize <= 0 {
		cfg.QSize = 16
	}
	if cfg.VerifyEveryOps <= 0 {
		cfg.VerifyEveryOps = 16
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = defaultHeartbeat
	}
	if cfg.Batch >= cfg.QSize {
		return nil, fmt.Errorf("drivers: chaos batch %d must be < qsize %d", cfg.Batch, cfg.QSize)
	}

	k, init, err := kernel.Boot(hw.Config{Frames: 8192, Cores: 4, TLBSlots: 512})
	if err != nil {
		return nil, err
	}
	k.AttachObs(cfg.Trace, cfg.Metrics)
	if cfg.Ledger != nil {
		k.AttachLedger(cfg.Ledger)
	}
	if cfg.Contend != nil {
		k.AttachContention(cfg.Contend)
	}
	h := &chaosHarness{cfg: cfg, k: k, init: init}
	h.report.Ops = cfg.Ops
	if t := cfg.Trace; t != nil {
		h.tr = t
		h.appTrack = t.Track(0, kernel.CoreName(0), "app")
		h.harnessTrack = t.Track(0, kernel.CoreName(0), "harness")
		h.nSet = t.Name("kv.set")
		h.nGet = t.Name("kv.get")
		h.nWait = t.Name("chaos.wedge_wait")
	}

	watcher := verify.Watch(k, 1)

	h.inj, err = faults.NewInjector(cfg.Seed, cfg.Plan, k.Machine.TotalCycles)
	if err != nil {
		return nil, err
	}
	h.inj.SetTracer(cfg.Trace)
	h.inj.RegisterMetrics(cfg.Metrics)
	h.dev = nvme.New(k.Machine.Mem, k.IOMMU, 2, 4096)
	h.dev.SetInjector(h.inj)
	k.IRQFilter = func(core, irq int) bool { return !h.inj.Hit(faults.IRQDrop) }

	// The supervisor runs as the init thread; every bounded-kill step is
	// invariant-checked.
	h.sup = kernel.NewSupervisor(k, init, cfg.HeartbeatTimeout)
	h.sup.OnStep = func() error { return verify.TotalWF(k) }

	// First driver generation comes up fault-free (the plan arms only
	// after setup); respawns run under the active plan and must survive
	// injected allocator failures.
	cntr, drv, err := h.spawnDriver()
	if err != nil {
		return nil, fmt.Errorf("drivers: chaos initial setup: %w", err)
	}
	h.drv = drv
	h.sup.Register("nvme", cntr, h.respawn)

	// Allocator faults arm only now: boot and first setup are trusted.
	k.Alloc.SetFaultHook(func() bool { return h.inj.Hit(faults.AllocExhaust) })

	kv, err := apps.NewKVStore(4096, 8, 16)
	if err != nil {
		return nil, err
	}
	appClk := &k.Machine.Core(0).Clock

	records := make([][]byte, 0, cfg.Batch)
	lba := uint64(0)
	var key [8]byte
	var val [16]byte
	for op := 0; op < cfg.Ops; op++ {
		binary.LittleEndian.PutUint64(key[:], uint64(op)%997)
		binary.LittleEndian.PutUint64(val[:], uint64(op))
		binary.LittleEndian.PutUint64(val[8:], cfg.Seed)
		setStart := appClk.Cycles()
		okSet := kv.Set(appClk, key[:], val[:])
		h.appSpan(h.nSet, setStart, uint64(op))
		if !okSet {
			return nil, fmt.Errorf("drivers: kv table full at op %d", op)
		}
		h.report.KVSets++
		// Read-after-write of an earlier key keeps the GET path hot.
		if op%3 == 0 {
			binary.LittleEndian.PutUint64(key[:], uint64(op/2)%997)
			getStart := appClk.Cycles()
			_, hit := kv.Get(appClk, key[:])
			h.appSpan(h.nGet, getStart, uint64(op))
			if hit {
				h.report.KVHits++
			}
			h.report.KVGets++
		}
		// Append the op to the write-ahead log.
		rec := make([]byte, recordSize)
		binary.LittleEndian.PutUint64(rec, uint64(op))
		copy(rec[8:], key[:])
		copy(rec[16:], val[:])
		records = append(records, rec)
		if len(records) == cfg.Batch {
			if err := h.flush(records, lba); err != nil {
				return &h.report, err
			}
			lba = (lba + uint64(cfg.Batch)) % 1024
			records = records[:0]
		}
		// Interrupt noise: spurious edges on an unbound line must be
		// absorbed by dispatch.
		if h.inj.Hit(faults.IRQSpurious) {
			k.RaiseIRQ(0, spuriousIRQLine)
		}
		if op%cfg.VerifyEveryOps == 0 {
			h.report.Checked++
			if err := verify.TotalWF(k); err != nil {
				h.report.Violations++
			}
			// The closure audit rides the same cadence: a page leaked
			// across a wedge/respawn shows up as a violation here.
			if err := cfg.Ledger.Audit(); err != nil {
				h.report.Violations++
			}
		}
	}
	if len(records) > 0 {
		if err := h.flush(records, lba); err != nil {
			return &h.report, err
		}
	}

	h.report.Driver = h.accum
	h.report.Driver.Add(h.drv.Stats())
	h.report.Restarts = h.sup.Restarts("nvme")
	h.report.Injector = h.inj.Counts()
	h.report.TraceHash = h.inj.TraceHash()
	h.report.TraceLen = h.inj.TraceLen()
	h.report.Steps = watcher.Steps
	h.report.Checked += watcher.Checked
	h.report.Violations += len(watcher.Violations)
	h.report.TotalCycles = k.Machine.TotalCycles()
	if err := cfg.Ledger.Audit(); err != nil {
		h.report.Violations++
		return &h.report, fmt.Errorf("drivers: final ledger audit: %w", err)
	}
	if err := verify.TotalWF(k); err != nil {
		h.report.Violations++
		return &h.report, fmt.Errorf("drivers: final state ill-formed: %w", err)
	}
	return &h.report, nil
}

// flush writes the batch's records through the driver, riding out
// command errors (driver-level retry), stalls (poll again), failed
// commands (count as lost), and wedges (supervisor restart, resubmit).
func (h *chaosHarness) flush(records [][]byte, lba uint64) error {
	mem := h.k.Machine.Mem
	for {
		if h.report.WedgeEvents > maxWedgeEvents {
			return fmt.Errorf("drivers: chaos: %d wedges, giving up", h.report.WedgeEvents)
		}
		for j, rec := range records {
			mem.Write(h.drv.BufPhys(h.drv.SQTail()+j), rec)
		}
		if err := h.drv.SubmitBatch(nvme.OpWrite, lba, len(records)); err != nil {
			if rerr := h.recoverWedge(); rerr != nil {
				return rerr
			}
			continue // resubmit through the fresh driver
		}
		remaining := len(records)
		timeouts := 0
		wedged := false
		for remaining > 0 {
			n, err := h.drv.PollCompletions(remaining)
			remaining -= n
			if err == nil {
				continue
			}
			switch {
			case errors.Is(err, ErrCmdFailed):
				// The command was abandoned; its log record is lost.
				h.report.LostWrites++
				remaining--
			case errors.Is(err, ErrCmdTimeout):
				timeouts++
				if timeouts >= wedgeThreshold {
					wedged = true
				}
			default:
				wedged = true
			}
			if wedged {
				break
			}
		}
		if wedged {
			if rerr := h.recoverWedge(); rerr != nil {
				return rerr
			}
			continue // media writes are idempotent: redo the whole batch
		}
		h.report.Flushes++
		h.sup.Heartbeat("nvme")
		// A routine watchdog sweep per flush (normally a no-op).
		if _, err := h.sup.Check(0); err != nil {
			return err
		}
		return nil
	}
}

// recoverWedge folds the dead generation's counters, waits out the
// heartbeat deadline, and lets the supervisor kill + respawn the driver.
func (h *chaosHarness) recoverWedge() error {
	h.report.WedgeEvents++
	h.drv.NoteWedged()
	if h.cfg.Metrics == nil {
		// Standalone counters die with the generation: fold them now.
		// (Registry-backed counters are shared with the successor, so the
		// last generation's Stats() is already the cumulative total.)
		h.accum.Add(h.drv.Stats())
	}
	before := h.sup.Restarts("nvme")
	// Burn supervisor-core cycles until the deadline passes and the
	// watchdog acts (bounded: the deadline is a fixed cycle count away).
	for spin := 0; spin < 64; spin++ {
		events, err := h.sup.Check(0)
		if err != nil {
			return err
		}
		if len(events) > 0 || h.sup.Restarts("nvme") > before {
			return nil
		}
		clk := &h.k.Machine.Core(0).Clock
		waitStart := clk.Cycles()
		clk.Charge(h.cfg.HeartbeatTimeout / 8)
		if h.tr != nil {
			h.tr.Span(h.harnessTrack, h.nWait, waitStart, clk.Cycles())
		}
	}
	return fmt.Errorf("drivers: chaos: supervisor never restarted the driver")
}

// appSpan traces one kvstore operation on core 0's app track.
func (h *chaosHarness) appSpan(name obs.NameID, start uint64, arg uint64) {
	if h.tr != nil {
		h.tr.SpanArg(h.appTrack, name, start, h.k.Machine.Core(0).Clock.Cycles(), arg)
	}
}

// spawnDriver builds one driver generation: container, process, thread,
// device setup. On setup failure the partial container is reclaimed so
// quota cannot leak.
func (h *chaosHarness) spawnDriver() (pm.Ptr, *NvmeDriver, error) {
	k := h.k
	r := k.SysNewContainer(0, h.init, chaosDriverQuota, []int{chaosDriverCore})
	if r.Errno != kernel.OK {
		return 0, nil, fmt.Errorf("drivers: chaos container: %v", r.Errno)
	}
	cntr := pm.Ptr(r.Vals[0])
	fail := func(err error) (pm.Ptr, *NvmeDriver, error) {
		for {
			kr := k.SysKillContainerBounded(0, h.init, cntr, 64)
			if kr.Errno != kernel.EAGAIN {
				break
			}
		}
		return 0, nil, err
	}
	rp := k.SysNewProcessIn(0, h.init, cntr)
	if rp.Errno != kernel.OK {
		return fail(fmt.Errorf("drivers: chaos proc: %v", rp.Errno))
	}
	rt := k.SysNewThreadIn(0, h.init, pm.Ptr(rp.Vals[0]), chaosDriverCore)
	if rt.Errno != kernel.OK {
		return fail(fmt.Errorf("drivers: chaos thread: %v", rt.Errno))
	}
	drv, err := SetupNvme(k, pm.Ptr(rt.Vals[0]), chaosDriverCore, h.dev, h.cfg.QSize, true)
	if err != nil {
		return fail(fmt.Errorf("drivers: chaos setup: %w", err))
	}
	if l := h.cfg.Ledger; l != nil {
		l.NameContainer(cntr, fmt.Sprintf("nvme.gen%d", h.gen))
		// Fixed gauge name: re-registration repoints the live gauges at
		// the new generation's container, like the shared stat counters.
		l.RegisterContainerMetrics(k.Metrics(), "nvme", cntr)
	}
	h.gen++
	return cntr, drv, nil
}

// respawn is the supervisor's rebuild callback: retried with backoff so
// injected allocator failures during recovery do not end the run.
func (h *chaosHarness) respawn() (pm.Ptr, error) {
	var lastErr error
	for attempt := 0; attempt <= MaxRetries; attempt++ {
		cntr, drv, err := h.spawnDriver()
		if err == nil {
			h.drv = drv
			return cntr, nil
		}
		lastErr = err
		h.k.Machine.Core(0).Clock.Charge(uint64(BackoffBaseCycles) << uint(attempt))
	}
	return 0, lastErr
}
