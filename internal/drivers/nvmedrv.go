package drivers

import (
	"encoding/binary"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/nvme"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// NvmeDriver is the poll-mode NVMe driver (§6.5.2): one I/O queue pair
// plus data buffers mapped by the driver process, SQ doorbell per
// batch, and completion polling — the SPDK-style submission model.
//
// The driver survives device faults instead of panicking: every command
// is tracked in flight, error-status completions are resubmitted with
// exponential backoff up to MaxRetries, missing completions time out
// against a cycle budget, and every fault increments a DriverStats
// counter the supervisor and harnesses read.
type NvmeDriver struct {
	K    *kernel.Kernel
	Tid  pm.Ptr
	Core int
	Dev  *nvme.Device

	qSize          int
	sqPhys, cqPhys hw.PhysAddr
	bufPhys        []hw.PhysAddr
	bufDMA         []hw.PhysAddr
	sqDMA, cqDMA   hw.PhysAddr

	sqTail, cqHead int
	phase          byte
	nextCID        uint16
	inflight       int

	// inflightCmds tracks every submitted command by CID so an
	// error-status completion can be retried with the original opcode,
	// LBA, and data buffer.
	inflightCmds map[uint16]*nvmeCmd

	// PollBudget is the cycle budget of one PollCompletions call
	// (DefaultPollBudget when zero).
	PollBudget uint64

	stats *statSet

	// Accounting (nil/zero when no ledger is attached to the kernel):
	// data-path cycles are billed to the driver's container.
	ledger *account.Ledger
	cntr   pm.Ptr

	// Tracing (nil/zero when no tracer is attached to the kernel).
	tr                       *obs.Tracer
	track                    obs.TrackID
	nSubmit, nPoll, nBackoff obs.NameID

	// Submitted and Completed remain exported for the benchmarks.
	Submitted, Completed uint64
}

// nvmeCmd is one in-flight command's retry state.
type nvmeCmd struct {
	op       byte
	lba      uint64
	prp      hw.PhysAddr
	attempts int
}

// SetupNvme initializes the driver: queue pages, data buffers, IOMMU
// exposure, and device queue programming.
func SetupNvme(k *kernel.Kernel, tid pm.Ptr, core int, dev *nvme.Device, qSize int, useIOMMU bool) (*NvmeDriver, error) {
	d := &NvmeDriver{
		K: k, Tid: tid, Core: core, Dev: dev, qSize: qSize, phase: 1,
		inflightCmds: make(map[uint16]*nvmeCmd),
	}
	d.stats = newStatSet(k.Metrics(), "nvme")
	if t := k.Tracer(); t != nil {
		d.tr = t
		d.track = t.Track(core, kernel.CoreName(core), "nvme-driver")
		d.nSubmit = t.Name("nvme.submit_batch")
		d.nPoll = t.Name("nvme.poll")
		d.nBackoff = t.Name("nvme.backoff")
	}
	proc := k.PM.Proc(k.PM.Thrd(tid).OwningProc)
	d.ledger = k.Ledger()
	d.cntr = proc.Owner
	vaBase := hw.VirtAddr(0x300000000)
	mapRange := func(pages int) (hw.VirtAddr, error) {
		va := vaBase
		vaBase += hw.VirtAddr((pages + 1) * hw.PageSize4K)
		if r := k.SysMmap(core, tid, va, pages, hw.Size4K, pt.RW); r.Errno != kernel.OK {
			return 0, fmt.Errorf("drivers: mmap: %v", r.Errno)
		}
		if useIOMMU {
			for i := 0; i < pages; i++ {
				if r := k.SysIommuMap(core, tid, va+hw.VirtAddr(i*hw.PageSize4K)); r.Errno != kernel.OK {
					return 0, fmt.Errorf("drivers: iommu_map: %v", r.Errno)
				}
			}
		}
		return va, nil
	}
	physOf := func(va hw.VirtAddr) (hw.PhysAddr, error) {
		e, ok := proc.PageTable.Lookup(va)
		if !ok {
			return 0, fmt.Errorf("%w: nvme va %#x", ErrUnmapped, va)
		}
		return e.Phys + hw.PhysAddr(uint64(va)&(hw.PageSize4K-1)), nil
	}
	dmaOf := func(va hw.VirtAddr) (hw.PhysAddr, error) {
		if useIOMMU {
			return hw.PhysAddr(va), nil
		}
		return physOf(va)
	}
	if useIOMMU {
		if r := k.SysIommuCreateDomain(core, tid); r.Errno != kernel.OK && r.Errno != kernel.EALREADY {
			return nil, fmt.Errorf("drivers: iommu domain: %v", r.Errno)
		}
		if r := k.SysIommuAttach(core, tid, dev.DeviceID()); r.Errno != kernel.OK {
			return nil, fmt.Errorf("drivers: iommu attach: %v", r.Errno)
		}
	}
	sqPages := (qSize*nvme.SQESize + hw.PageSize4K - 1) / hw.PageSize4K
	cqPages := (qSize*nvme.CQESize + hw.PageSize4K - 1) / hw.PageSize4K
	sqVA, err := mapRange(sqPages)
	if err != nil {
		return nil, err
	}
	cqVA, err := mapRange(cqPages)
	if err != nil {
		return nil, err
	}
	if d.sqPhys, err = physOf(sqVA); err != nil {
		return nil, err
	}
	if d.sqDMA, err = dmaOf(sqVA); err != nil {
		return nil, err
	}
	if d.cqPhys, err = physOf(cqVA); err != nil {
		return nil, err
	}
	if d.cqDMA, err = dmaOf(cqVA); err != nil {
		return nil, err
	}
	for i := 0; i < qSize; i++ {
		bva, err := mapRange(1)
		if err != nil {
			return nil, err
		}
		bp, err := physOf(bva)
		if err != nil {
			return nil, err
		}
		bd, err := dmaOf(bva)
		if err != nil {
			return nil, err
		}
		d.bufPhys = append(d.bufPhys, bp)
		d.bufDMA = append(d.bufDMA, bd)
	}
	dev.CreateQueues(d.sqDMA, d.cqDMA, qSize)
	d.clock().Charge(4 * hw.CostMMIOWrite) // admin: queue registers
	return d, nil
}

func (d *NvmeDriver) clock() *hw.Clock { return &d.K.Machine.Core(d.Core).Clock }

// chargeLedger bills user-space driver cycles since start (direct MMIO
// and polling, no kernel crossing so no syscall attribution) to the
// driver's container.
func (d *NvmeDriver) chargeLedger(start uint64) {
	if d.ledger != nil {
		d.ledger.ChargeCycles(d.cntr, d.clock().Cycles()-start)
	}
}

// Stats returns the driver's fault/retry counter block — a snapshot of
// the obs counters behind it. With a metrics registry attached the
// counters are shared across respawned generations, so the snapshot is
// cumulative; without one it covers this generation only (the exported
// Submitted/Completed fields always stay per-generation).
func (d *NvmeDriver) Stats() DriverStats { return d.stats.view() }

// NoteWedged counts a wedge declaration (the supervisor or harness
// observed the driver stuck and is about to recover it).
func (d *NvmeDriver) NoteWedged() { d.stats.wedged.Inc() }

// Inflight returns the number of commands awaiting completion.
func (d *NvmeDriver) Inflight() int { return d.inflight }

// SQTail returns the next submission slot; the buffer for the j-th
// command of the next batch is BufPhys(SQTail()+j).
func (d *NvmeDriver) SQTail() int { return d.sqTail }

// BufPhys returns the physical address of buffer slot i (for test
// verification and app data access).
func (d *NvmeDriver) BufPhys(i int) hw.PhysAddr { return d.bufPhys[i%d.qSize] }

// backoff charges one exponential-backoff wait to the driver core.
func (d *NvmeDriver) backoff(attempt int) {
	wait := uint64(BackoffBaseCycles)
	if attempt > 0 {
		wait <<= uint(attempt)
	}
	d.clock().Charge(wait)
	d.stats.backoffs.Inc()
	if d.tr != nil {
		d.tr.Instant(d.track, d.nBackoff, d.clock().Cycles(), uint64(attempt))
	}
}

// pushSQE writes one submission queue entry at the current tail and
// advances it. The caller rings the doorbell.
func (d *NvmeDriver) pushSQE(op byte, lba uint64, cid uint16, prp hw.PhysAddr) {
	mem := d.K.Machine.Mem
	sqe := d.sqPhys + hw.PhysAddr(d.sqTail*nvme.SQESize)
	var raw [nvme.SQESize]byte
	raw[0] = op
	binary.LittleEndian.PutUint16(raw[2:4], cid)
	binary.LittleEndian.PutUint64(raw[24:32], uint64(prp))
	binary.LittleEndian.PutUint64(raw[40:48], lba)
	mem.Write(sqe, raw[:])
	d.clock().Charge(hw.CostCacheTouch * 4) // build the 64-byte SQE
	d.sqTail = (d.sqTail + 1) % d.qSize
	d.inflight++
}

// ringDoorbell publishes the SQ tail, retrying with backoff when the
// device faults mid-batch (a persistent fault — e.g. an unmapped queue
// page — exhausts the retry budget and surfaces as an error).
func (d *NvmeDriver) ringDoorbell() error {
	var err error
	for attempt := 0; attempt <= MaxRetries; attempt++ {
		d.clock().Charge(hw.CostMMIOWrite)
		if err = d.Dev.WriteSQDoorbell(d.sqTail); err == nil {
			return nil
		}
		d.stats.dmaFaults.Inc()
		if attempt < MaxRetries {
			d.stats.retries.Inc()
			d.backoff(attempt)
		}
	}
	d.stats.failed.Inc()
	return fmt.Errorf("drivers: doorbell: %w", err)
}

// SubmitBatch enqueues n commands (read or write) at sequential LBAs
// starting at slba, one buffer slot per command, then rings the SQ
// doorbell once.
func (d *NvmeDriver) SubmitBatch(op byte, slba uint64, n int) error {
	if n <= 0 || n >= d.qSize {
		return fmt.Errorf("drivers: bad batch size %d", n)
	}
	spanStart := d.clock().Cycles()
	defer func() {
		d.chargeLedger(spanStart)
		if d.tr != nil {
			d.tr.SpanArg(d.track, d.nSubmit, spanStart, d.clock().Cycles(), uint64(n))
		}
	}()
	for i := 0; i < n; i++ {
		cid := d.nextCID
		prp := d.bufDMA[d.sqTail]
		d.pushSQE(op, slba+uint64(i), cid, prp)
		d.inflightCmds[cid] = &nvmeCmd{op: op, lba: slba + uint64(i), prp: prp}
		d.nextCID++
	}
	if err := d.ringDoorbell(); err != nil {
		return err
	}
	d.Submitted += uint64(n)
	d.stats.submitted.Add(uint64(n))
	return nil
}

// PollCompletions reaps up to max completions from the CQ, spinning
// within the driver's cycle budget when completions are late. It
// retries error-status completions (bounded, with backoff) and returns
// the number of successful completions reaped. The error is
// ErrCmdTimeout when the budget expires with commands still in flight,
// or ErrCmdFailed when a command exhausts its retry budget.
func (d *NvmeDriver) PollCompletions(max int) (int, error) {
	clk := d.clock()
	mem := d.K.Machine.Mem
	budget := d.PollBudget
	if budget == 0 {
		budget = DefaultPollBudget
	}
	start := clk.Cycles()
	defer func() {
		d.chargeLedger(start)
		if d.tr != nil {
			d.tr.Span(d.track, d.nPoll, start, clk.Cycles())
		}
	}()
	spin := uint64(pollSpinBase)
	n := 0
	for n < max && d.inflight > 0 {
		// Release any stalled completions whose time has come.
		if err := d.Dev.Poke(); err != nil {
			d.stats.dmaFaults.Inc()
			return n, fmt.Errorf("drivers: poke: %w", err)
		}
		cqe := d.cqPhys + hw.PhysAddr(d.cqHead*nvme.CQESize)
		clk.Charge(hw.CostCacheTouch)
		sp := binary.LittleEndian.Uint16(mem.Read(cqe+14, 2))
		if byte(sp&1) != d.phase {
			// Nothing ready: spin-wait with adaptive pacing, bounded by
			// the cycle budget.
			if clk.Cycles()-start > budget {
				d.stats.timeouts.Inc()
				return n, fmt.Errorf("%w: %d in flight after %d cycles",
					ErrCmdTimeout, d.inflight, budget)
			}
			clk.Charge(spin)
			if spin < pollSpinMax {
				spin *= 2
			}
			continue
		}
		spin = pollSpinBase
		cid := binary.LittleEndian.Uint16(mem.Read(cqe+12, 2))
		status := sp >> 1
		d.cqHead++
		if d.cqHead == d.qSize {
			d.cqHead = 0
			d.phase ^= 1
		}
		d.inflight--
		if status != 0 {
			d.stats.cmdErrors.Inc()
			cmd := d.inflightCmds[cid]
			if cmd == nil {
				// Completion for a command we no longer track (dropped
				// after its retry budget): consume and move on.
				continue
			}
			if cmd.attempts >= MaxRetries {
				delete(d.inflightCmds, cid)
				d.stats.failed.Inc()
				return n, fmt.Errorf("%w: cid %d op %d lba %d status %#x",
					ErrCmdFailed, cid, cmd.op, cmd.lba, status)
			}
			cmd.attempts++
			d.stats.retries.Inc()
			d.backoff(cmd.attempts)
			d.pushSQE(cmd.op, cmd.lba, cid, cmd.prp)
			if err := d.ringDoorbell(); err != nil {
				return n, err
			}
			continue
		}
		delete(d.inflightCmds, cid)
		d.Completed++
		d.stats.completed.Inc()
		n++
	}
	return n, nil
}
