package drivers

import (
	"encoding/binary"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/nvme"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// NvmeDriver is the poll-mode NVMe driver (§6.5.2): one I/O queue pair
// plus data buffers mapped by the driver process, SQ doorbell per
// batch, and completion polling — the SPDK-style submission model.
type NvmeDriver struct {
	K    *kernel.Kernel
	Tid  pm.Ptr
	Core int
	Dev  *nvme.Device

	qSize          int
	sqPhys, cqPhys hw.PhysAddr
	bufPhys        []hw.PhysAddr
	bufDMA         []hw.PhysAddr
	sqDMA, cqDMA   hw.PhysAddr

	sqTail, cqHead int
	phase          byte
	nextCID        uint16
	inflight       int

	Submitted, Completed uint64
}

// SetupNvme initializes the driver: queue pages, data buffers, IOMMU
// exposure, and device queue programming.
func SetupNvme(k *kernel.Kernel, tid pm.Ptr, core int, dev *nvme.Device, qSize int, useIOMMU bool) (*NvmeDriver, error) {
	d := &NvmeDriver{K: k, Tid: tid, Core: core, Dev: dev, qSize: qSize, phase: 1}
	proc := k.PM.Proc(k.PM.Thrd(tid).OwningProc)
	vaBase := hw.VirtAddr(0x300000000)
	mapRange := func(pages int) (hw.VirtAddr, error) {
		va := vaBase
		vaBase += hw.VirtAddr((pages + 1) * hw.PageSize4K)
		if r := k.SysMmap(core, tid, va, pages, hw.Size4K, pt.RW); r.Errno != kernel.OK {
			return 0, fmt.Errorf("drivers: mmap: %v", r.Errno)
		}
		if useIOMMU {
			for i := 0; i < pages; i++ {
				if r := k.SysIommuMap(core, tid, va+hw.VirtAddr(i*hw.PageSize4K)); r.Errno != kernel.OK {
					return 0, fmt.Errorf("drivers: iommu_map: %v", r.Errno)
				}
			}
		}
		return va, nil
	}
	physOf := func(va hw.VirtAddr) hw.PhysAddr {
		e, ok := proc.PageTable.Lookup(va)
		if !ok {
			panic("drivers: unmapped nvme buffer")
		}
		return e.Phys + hw.PhysAddr(uint64(va)&(hw.PageSize4K-1))
	}
	dmaOf := func(va hw.VirtAddr) hw.PhysAddr {
		if useIOMMU {
			return hw.PhysAddr(va)
		}
		return physOf(va)
	}
	if useIOMMU {
		if r := k.SysIommuCreateDomain(core, tid); r.Errno != kernel.OK && r.Errno != kernel.EALREADY {
			return nil, fmt.Errorf("drivers: iommu domain: %v", r.Errno)
		}
		if r := k.SysIommuAttach(core, tid, dev.DeviceID()); r.Errno != kernel.OK {
			return nil, fmt.Errorf("drivers: iommu attach: %v", r.Errno)
		}
	}
	sqPages := (qSize*nvme.SQESize + hw.PageSize4K - 1) / hw.PageSize4K
	cqPages := (qSize*nvme.CQESize + hw.PageSize4K - 1) / hw.PageSize4K
	sqVA, err := mapRange(sqPages)
	if err != nil {
		return nil, err
	}
	cqVA, err := mapRange(cqPages)
	if err != nil {
		return nil, err
	}
	d.sqPhys, d.sqDMA = physOf(sqVA), dmaOf(sqVA)
	d.cqPhys, d.cqDMA = physOf(cqVA), dmaOf(cqVA)
	for i := 0; i < qSize; i++ {
		bva, err := mapRange(1)
		if err != nil {
			return nil, err
		}
		d.bufPhys = append(d.bufPhys, physOf(bva))
		d.bufDMA = append(d.bufDMA, dmaOf(bva))
	}
	dev.CreateQueues(d.sqDMA, d.cqDMA, qSize)
	d.clock().Charge(4 * hw.CostMMIOWrite) // admin: queue registers
	return d, nil
}

func (d *NvmeDriver) clock() *hw.Clock { return &d.K.Machine.Core(d.Core).Clock }

// BufPhys returns the physical address of buffer slot i (for test
// verification and app data access).
func (d *NvmeDriver) BufPhys(i int) hw.PhysAddr { return d.bufPhys[i%d.qSize] }

// SubmitBatch enqueues n commands (read or write) at sequential LBAs
// starting at slba, one buffer slot per command, then rings the SQ
// doorbell once.
func (d *NvmeDriver) SubmitBatch(op byte, slba uint64, n int) error {
	if n <= 0 || n >= d.qSize {
		return fmt.Errorf("drivers: bad batch size %d", n)
	}
	clk := d.clock()
	mem := d.K.Machine.Mem
	for i := 0; i < n; i++ {
		idx := d.sqTail
		sqe := d.sqPhys + hw.PhysAddr(idx*nvme.SQESize)
		var raw [nvme.SQESize]byte
		raw[0] = op
		binary.LittleEndian.PutUint16(raw[2:4], d.nextCID)
		binary.LittleEndian.PutUint64(raw[24:32], uint64(d.bufDMA[idx]))
		binary.LittleEndian.PutUint64(raw[40:48], slba+uint64(i))
		mem.Write(sqe, raw[:])
		clk.Charge(hw.CostCacheTouch * 4) // build the 64-byte SQE
		d.nextCID++
		d.sqTail = (d.sqTail + 1) % d.qSize
		d.inflight++
	}
	clk.Charge(hw.CostMMIOWrite)
	if err := d.Dev.WriteSQDoorbell(d.sqTail); err != nil {
		return err
	}
	d.Submitted += uint64(n)
	return nil
}

// PollCompletions reaps up to max completions from the CQ.
func (d *NvmeDriver) PollCompletions(max int) int {
	clk := d.clock()
	mem := d.K.Machine.Mem
	n := 0
	for n < max && d.inflight > 0 {
		cqe := d.cqPhys + hw.PhysAddr(d.cqHead*nvme.CQESize)
		clk.Charge(hw.CostCacheTouch)
		sp := binary.LittleEndian.Uint16(mem.Read(cqe+14, 2))
		if byte(sp&1) != d.phase {
			break
		}
		if sp>>1 != 0 {
			// Command error surfaced to the caller via status; the
			// driver still consumes the entry.
			_ = sp
		}
		d.cqHead++
		if d.cqHead == d.qSize {
			d.cqHead = 0
			d.phase ^= 1
		}
		d.inflight--
		d.Completed++
		n++
	}
	return n
}
