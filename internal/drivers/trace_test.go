package drivers

import (
	"bytes"
	"testing"

	"atmosphere/internal/obs"
)

// tracedChaos runs the chaos workload with full observability attached
// and returns the tracer, registry dump, and report.
func tracedChaos(t *testing.T, seed uint64, plan bool) (*obs.Tracer, string, *ChaosReport) {
	t.Helper()
	cfg := ChaosConfig{Seed: seed, Ops: 150, Trace: obs.NewTracer(0), Metrics: obs.NewRegistry()}
	if plan {
		cfg.Plan = DefaultChaosPlan()
	}
	report, err := RunChaosKV(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	var m bytes.Buffer
	if err := cfg.Metrics.WriteText(&m); err != nil {
		t.Fatal(err)
	}
	return cfg.Trace, m.String(), report
}

// TestTraceDeterminism is the reproducibility acceptance check: two
// chaos runs with the same seed must produce identical trace hashes,
// byte-identical Perfetto exports, and byte-identical metrics dumps.
func TestTraceDeterminism(t *testing.T) {
	tr1, m1, r1 := tracedChaos(t, 42, true)
	tr2, m2, r2 := tracedChaos(t, 42, true)
	if tr1.Hash() != tr2.Hash() {
		t.Errorf("same-seed trace hashes differ: %016x vs %016x", tr1.Hash(), tr2.Hash())
	}
	var b1, b2 bytes.Buffer
	if err := obs.WriteTrace(&b1, tr1); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTrace(&b2, tr2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same-seed Perfetto exports are not byte-identical")
	}
	if m1 != m2 {
		t.Error("same-seed metrics dumps are not byte-identical")
	}
	if r1.String() != r2.String() {
		t.Errorf("same-seed reports diverge:\n%s\n%s", r1, r2)
	}
	// A different seed must move the trace (the hash is not a constant).
	tr3, _, _ := tracedChaos(t, 43, true)
	if tr3.Hash() == tr1.Hash() {
		t.Error("different seeds produced the same trace hash")
	}
}

// TestTraceCoverage asserts the spans account for >= 95% of all charged
// cycles on the fault-free kvstore workload — the tracer sees (almost)
// everything the cycle model charges; only the driver's 4 admin-register
// MMIO writes at setup fall outside every span.
func TestTraceCoverage(t *testing.T) {
	tr, _, report := tracedChaos(t, 1, false)
	if report.TotalCycles == 0 {
		t.Fatal("no cycles charged")
	}
	cov := 100 * float64(tr.SpanTotal()) / float64(report.TotalCycles)
	if cov < 95 {
		t.Errorf("span coverage %.1f%% of %d cycles, want >= 95%%", cov, report.TotalCycles)
	}
	if cov > 100 {
		t.Errorf("span coverage %.1f%% > 100%%: spans overlap or double-count", cov)
	}
	if tr.Dropped() != 0 {
		t.Errorf("ring dropped %d events on a short run", tr.Dropped())
	}
}

// TestChaosReportUnchangedByObservability pins the free-when-attached
// contract end to end: a chaos run with tracer+registry attached must
// produce the identical deterministic report as one without.
func TestChaosReportUnchangedByObservability(t *testing.T) {
	plain, err := RunChaosKV(ChaosConfig{Seed: 9, Ops: 150, Plan: DefaultChaosPlan()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, observed := tracedChaos(t, 9, true)
	if plain.String() != observed.String() {
		t.Errorf("attaching observability changed the report:\n%s\n%s", plain, observed)
	}
}
