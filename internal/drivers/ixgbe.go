// Package drivers implements Atmosphere's user-level device drivers
// (§6.5): an ixgbe poll-mode network driver and an NVMe driver, each
// running as a regular process in a booted kernel — buffers come from
// mmap, DMA visibility from the IOMMU syscalls, and every driver action
// charges the cycle model on the core the driver occupies.
//
// The four deployment configurations of the evaluation are built on
// top (configs.go): statically linked (atmo-driver), separate core with
// a shared ring (atmo-c2), and same core with per-batch kernel
// crossings (atmo-c1-b1 / atmo-c1-b32).
package drivers

import (
	"encoding/binary"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/nic"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// IxgbeDriver is the poll-mode ixgbe driver state.
type IxgbeDriver struct {
	K    *kernel.Kernel
	Tid  pm.Ptr
	Core int
	Dev  *nic.Device

	ringSize int
	// Physical addresses are what the driver touches through its own
	// mapping; DMA addresses are what it programs into the device —
	// equal to physical in pass-through mode, and to the driver's
	// virtual addresses (iovas) when the device sits behind the IOMMU.
	ringPhys hw.PhysAddr
	ringDMA  hw.PhysAddr
	bufPhys  []hw.PhysAddr
	bufDMA   []hw.PhysAddr
	rxNext   int

	// TX ring counterparts.
	txRingPhys hw.PhysAddr
	txRingDMA  hw.PhysAddr
	txBufPhys  []hw.PhysAddr
	txBufDMA   []hw.PhysAddr
	txNext     int

	// Frames received in the last burst (views into physical memory).
	Frames [][]byte

	RxCount, TxCount uint64

	stats *statSet

	// Accounting (nil/zero when no ledger is attached to the kernel):
	// data-path cycles are billed to the driver's container.
	ledger *account.Ledger
	cntr   pm.Ptr

	// Tracing (nil/zero when no tracer is attached to the kernel).
	tr       *obs.Tracer
	track    obs.TrackID
	nRx, nTx obs.NameID
}

// Stats returns the driver's fault/drop counter block — a snapshot of
// the obs counters behind it (Submitted = frames transmitted,
// Completed = frames received).
func (d *IxgbeDriver) Stats() DriverStats { return d.stats.view() }

// ringBytes returns pages needed for n descriptors.
func ringPages(n int) int {
	return (n*nic.DescSize + hw.PageSize4K - 1) / hw.PageSize4K
}

// SetupIxgbe initializes the driver inside the process of tid: maps the
// descriptor rings and packet buffers, optionally exposes them through
// the process's IOMMU domain, and programs the device.
func SetupIxgbe(k *kernel.Kernel, tid pm.Ptr, core int, dev *nic.Device, ringSize int, useIOMMU bool) (*IxgbeDriver, error) {
	d := &IxgbeDriver{K: k, Tid: tid, Core: core, Dev: dev, ringSize: ringSize}
	d.stats = newStatSet(k.Metrics(), "ixgbe")
	if t := k.Tracer(); t != nil {
		d.tr = t
		d.track = t.Track(core, kernel.CoreName(core), "ixgbe-driver")
		d.nRx = t.Name("ixgbe.rx_burst")
		d.nTx = t.Name("ixgbe.tx_burst")
	}
	proc := k.PM.Proc(k.PM.Thrd(tid).OwningProc)
	d.ledger = k.Ledger()
	d.cntr = proc.Owner

	vaBase := hw.VirtAddr(0x200000000)
	mapRange := func(pages int) (hw.VirtAddr, error) {
		va := vaBase
		vaBase += hw.VirtAddr((pages + 1) * hw.PageSize4K)
		if r := k.SysMmap(core, tid, va, pages, hw.Size4K, pt.RW); r.Errno != kernel.OK {
			return 0, fmt.Errorf("drivers: mmap: %v", r.Errno)
		}
		if useIOMMU {
			for i := 0; i < pages; i++ {
				if r := k.SysIommuMap(core, tid, va+hw.VirtAddr(i*hw.PageSize4K)); r.Errno != kernel.OK {
					return 0, fmt.Errorf("drivers: iommu_map: %v", r.Errno)
				}
			}
		}
		return va, nil
	}
	physOf := func(va hw.VirtAddr) (hw.PhysAddr, error) {
		e, ok := proc.PageTable.Lookup(va)
		if !ok {
			return 0, fmt.Errorf("%w: ixgbe va %#x", ErrUnmapped, va)
		}
		return e.Phys + hw.PhysAddr(uint64(va)&(hw.PageSize4K-1)), nil
	}

	if useIOMMU {
		if r := k.SysIommuCreateDomain(core, tid); r.Errno != kernel.OK && r.Errno != kernel.EALREADY {
			return nil, fmt.Errorf("drivers: iommu domain: %v", r.Errno)
		}
		if r := k.SysIommuAttach(core, tid, dev.DeviceID()); r.Errno != kernel.OK {
			return nil, fmt.Errorf("drivers: iommu attach: %v", r.Errno)
		}
	}
	dmaOf := func(va hw.VirtAddr) (hw.PhysAddr, error) {
		if useIOMMU {
			return hw.PhysAddr(va), nil // iova = driver virtual address
		}
		return physOf(va)
	}
	// mapBuf maps one buffer page and records its phys/DMA addresses.
	mapBuf := func(phys, dma *[]hw.PhysAddr) error {
		bva, err := mapRange(1)
		if err != nil {
			return err
		}
		bp, err := physOf(bva)
		if err != nil {
			return err
		}
		bd, err := dmaOf(bva)
		if err != nil {
			return err
		}
		*phys = append(*phys, bp)
		*dma = append(*dma, bd)
		return nil
	}
	// RX ring + buffers.
	rxVA, err := mapRange(ringPages(ringSize))
	if err != nil {
		return nil, err
	}
	if d.ringPhys, err = physOf(rxVA); err != nil {
		return nil, err
	}
	if d.ringDMA, err = dmaOf(rxVA); err != nil {
		return nil, err
	}
	for i := 0; i < ringSize; i++ {
		if err := mapBuf(&d.bufPhys, &d.bufDMA); err != nil {
			return nil, err
		}
	}
	// TX ring + buffers.
	txVA, err := mapRange(ringPages(ringSize))
	if err != nil {
		return nil, err
	}
	if d.txRingPhys, err = physOf(txVA); err != nil {
		return nil, err
	}
	if d.txRingDMA, err = dmaOf(txVA); err != nil {
		return nil, err
	}
	for i := 0; i < ringSize; i++ {
		if err := mapBuf(&d.txBufPhys, &d.txBufDMA); err != nil {
			return nil, err
		}
	}

	mem := k.Machine.Mem
	// Publish every RX descriptor.
	for i := 0; i < ringSize; i++ {
		da := d.ringPhys + hw.PhysAddr(i*nic.DescSize)
		mem.WriteU64(da, uint64(d.bufDMA[i]))
		mem.Write(da+10, []byte{0})
	}
	dev.ConfigureRX(d.ringDMA, ringSize)
	dev.ConfigureTX(d.txRingDMA, ringSize)
	dev.WriteRDT(ringSize - 1) // all but one descriptor available
	d.clock().Charge(3 * hw.CostMMIOWrite)
	return d, nil
}

func (d *IxgbeDriver) clock() *hw.Clock { return &d.K.Machine.Core(d.Core).Clock }

// chargeLedger bills user-space driver cycles since start (direct MMIO
// and polling, no kernel crossing so no syscall attribution) to the
// driver's container.
func (d *IxgbeDriver) chargeLedger(start uint64) {
	if d.ledger != nil {
		d.ledger.ChargeCycles(d.cntr, d.clock().Cycles()-start)
	}
}

// RxBurst polls up to max completed RX descriptors, collects frame
// views into d.Frames, recycles the descriptors, and bumps the tail
// doorbell once per burst. Returns the number of frames received.
func (d *IxgbeDriver) RxBurst(max int) int {
	clk := d.clock()
	mem := d.K.Machine.Mem
	spanStart := clk.Cycles()
	n, scanned := 0, 0
	defer func() {
		d.chargeLedger(spanStart)
		if d.tr != nil {
			d.tr.SpanArg(d.track, d.nRx, spanStart, clk.Cycles(), uint64(n))
		}
	}()
	for n < max {
		i := d.rxNext
		da := d.ringPhys + hw.PhysAddr(i*nic.DescSize)
		clk.Charge(hw.CostDMADescriptor)
		if mem.Read(da+10, 1)[0]&nic.StatusDD == 0 {
			break
		}
		length := binary.LittleEndian.Uint16(mem.Read(da+8, 2))
		if length == 0 || int(length) > hw.PageSize4K {
			// Corrupted descriptor (injected or device fault): drop it,
			// recycle the slot, and keep going — a bad length must never
			// become a bad frame view.
			d.stats.badDesc.Inc()
			mem.Write(da+8, []byte{0, 0})
			mem.Write(da+10, []byte{0})
			clk.Charge(hw.CostCacheTouch * 2)
			d.rxNext = (d.rxNext + 1) % d.ringSize
			scanned++
			continue
		}
		if n >= len(d.Frames) {
			d.Frames = append(d.Frames, nil)
		}
		d.Frames[n] = mem.Slice(d.bufPhys[i], uint64(length))
		// Touch the headers (one cache-line load of packet data).
		clk.Charge(hw.CostCacheTouch * 2)
		// Recycle: clear DD, republish the buffer (a cached store — the
		// line is already resident from the DD poll).
		mem.Write(da+10, []byte{0})
		clk.Charge(hw.CostCacheTouch * 2)
		d.rxNext = (d.rxNext + 1) % d.ringSize
		scanned++
		n++
	}
	if scanned > 0 {
		// Republish every recycled slot (dropped descriptors included —
		// the device must get those buffers back).
		d.Dev.WriteRDT((d.rxNext + d.ringSize - 1) % d.ringSize)
		clk.Charge(hw.CostMMIOWrite)
		d.RxCount += uint64(n)
		d.stats.completed.Add(uint64(n))
	}
	d.Frames = d.Frames[:n]
	return n
}

// TxBurst transmits the given frames: copy into TX buffers, fill
// descriptors, one doorbell per burst.
func (d *IxgbeDriver) TxBurst(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	clk := d.clock()
	mem := d.K.Machine.Mem
	spanStart := clk.Cycles()
	defer func() {
		d.chargeLedger(spanStart)
		if d.tr != nil {
			d.tr.SpanArg(d.track, d.nTx, spanStart, clk.Cycles(), uint64(len(frames)))
		}
	}()
	for _, f := range frames {
		i := d.txNext
		mem.Write(d.txBufPhys[i], f)
		clk.ChargeBytes(len(f))
		da := d.txRingPhys + hw.PhysAddr(i*nic.DescSize)
		mem.WriteU64(da, uint64(d.txBufDMA[i]))
		var lenb [2]byte
		binary.LittleEndian.PutUint16(lenb[:], uint16(len(f)))
		mem.Write(da+8, lenb[:])
		mem.Write(da+10, []byte{0})
		clk.Charge(hw.CostDMADescriptor)
		d.txNext = (d.txNext + 1) % d.ringSize
	}
	clk.Charge(hw.CostMMIOWrite)
	if err := d.Dev.WriteTDT(d.txNext); err != nil {
		d.stats.dmaFaults.Inc()
		return err
	}
	d.TxCount += uint64(len(frames))
	d.stats.submitted.Add(uint64(len(frames)))
	return nil
}
