package drivers

import (
	"testing"

	"atmosphere/internal/hw"

	"atmosphere/internal/kernel"
	"atmosphere/internal/netproto"
	"atmosphere/internal/nic"
	"atmosphere/internal/nvme"
	"atmosphere/internal/pm"
	"atmosphere/internal/verify"
)

func TestIxgbeLinkedRx(t *testing.T) {
	gen := nic.NewGenerator(1, 16, 60)
	env, err := NewNetEnv(CfgDriverLinked, gen)
	if err != nil {
		t.Fatal(err)
	}
	parsed := 0
	rates, err := env.RunRx(1024, 32, func(clk *hw.Clock, frame []byte) bool {
		if _, err := netproto.ParseUDP(frame); err == nil {
			parsed++
		}
		clk.Charge(50)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rates.Packets != 1024 || parsed != 1024 {
		t.Fatalf("packets=%d parsed=%d", rates.Packets, parsed)
	}
	if rates.Mpps <= 0 {
		t.Fatal("no rate computed")
	}
	if env.Dev.Faults != 0 {
		t.Fatalf("%d DMA faults", env.Dev.Faults)
	}
	// The kernel is still well-formed after driver setup and traffic.
	if err := verify.TotalWF(env.K); err != nil {
		t.Fatal(err)
	}
}

func TestIxgbeC2Pipelined(t *testing.T) {
	gen := nic.NewGenerator(2, 16, 60)
	env, err := NewNetEnv(CfgC2, gen)
	if err != nil {
		t.Fatal(err)
	}
	parsed := 0
	rates, err := env.RunRx(512, 32, func(clk *hw.Clock, frame []byte) bool {
		if _, err := netproto.ParseUDP(frame); err == nil {
			parsed++
		}
		clk.Charge(50)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rates.Packets != 512 || parsed != 512 {
		t.Fatalf("packets=%d parsed=%d", rates.Packets, parsed)
	}
	if rates.DrvCycles == 0 || rates.AppCycles == 0 {
		t.Fatal("one pipeline stage charged nothing")
	}
	if err := verify.TotalWF(env.K); err != nil {
		t.Fatal(err)
	}
}

func TestIxgbeC1KernelCrossings(t *testing.T) {
	gen := nic.NewGenerator(3, 16, 60)
	env, err := NewNetEnv(CfgC1, gen)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := env.RunRx(256, 1, func(clk *hw.Clock, frame []byte) bool {
		clk.Charge(50)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rates.Packets != 256 {
		t.Fatalf("packets=%d", rates.Packets)
	}
	// Batch-1 pays kernel crossings per packet: its per-packet cost is
	// much larger than the linked configuration's.
	linked, err := NewNetEnv(CfgDriverLinked, nic.NewGenerator(3, 16, 60))
	if err != nil {
		t.Fatal(err)
	}
	lr, err := linked.RunRx(256, 1, func(clk *hw.Clock, frame []byte) bool {
		clk.Charge(50)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rates.Mpps >= lr.Mpps {
		t.Fatalf("c1-b1 (%.2f) should be slower than linked (%.2f)", rates.Mpps, lr.Mpps)
	}
	if err := verify.TotalWF(env.K); err != nil {
		t.Fatal(err)
	}
}

func TestIxgbeBatchingHelps(t *testing.T) {
	run := func(batch int) float64 {
		env, err := NewNetEnv(CfgC1, nic.NewGenerator(4, 16, 60))
		if err != nil {
			t.Fatal(err)
		}
		rates, err := env.RunRx(512, batch, func(clk *hw.Clock, frame []byte) bool {
			clk.Charge(50)
			return false
		})
		if err != nil {
			t.Fatal(err)
		}
		return rates.Mpps
	}
	b1, b32 := run(1), run(32)
	if b32 <= b1*2 {
		t.Fatalf("batching ineffective: b1=%.2f b32=%.2f", b1, b32)
	}
}

func TestIxgbeForwarding(t *testing.T) {
	gen := nic.NewGenerator(5, 16, 60)
	env, err := NewNetEnv(CfgDriverLinked, gen)
	if err != nil {
		t.Fatal(err)
	}
	var sent int
	env.Dev.TxSink = func(frame []byte) { sent++ }
	_, err = env.RunRx(128, 16, func(clk *hw.Clock, frame []byte) bool {
		clk.Charge(100)
		return true // forward everything
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != 128 {
		t.Fatalf("forwarded %d of 128", sent)
	}
}

func TestNvmeLinkedReadWrite(t *testing.T) {
	env, err := NewStorageEnv(CfgDriverLinked, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := env.RunSequential(nvme.OpRead, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rates.IOs != 512 || rates.IOPS <= 0 {
		t.Fatalf("rates %+v", rates)
	}
	w, err := env.RunSequential(nvme.OpWrite, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Writes cap at the device's derated ceiling.
	if w.IOPS > nvme.WriteMaxIOPS {
		t.Fatalf("write IOPS %f beyond device max", w.IOPS)
	}
	if env.Dev.Faults != 0 {
		t.Fatalf("%d DMA faults", env.Dev.Faults)
	}
	if err := verify.TotalWF(env.K); err != nil {
		t.Fatal(err)
	}
}

func TestNvmeBatch1IsLatencyBound(t *testing.T) {
	env, err := NewStorageEnv(CfgDriverLinked, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := env.RunSequential(nvme.OpRead, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// QD1 reads bound near 13K IOPS (the paper's fio number).
	if r1.IOPS < 10_000 || r1.IOPS > 16_000 {
		t.Fatalf("QD1 read IOPS = %.0f, want ~13K", r1.IOPS)
	}
	r32, err := env.RunSequential(nvme.OpRead, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r32.IOPS < r1.IOPS*10 {
		t.Fatalf("batched reads did not scale: %.0f vs %.0f", r32.IOPS, r1.IOPS)
	}
}

func TestNvmeC1AndC2Configs(t *testing.T) {
	for _, cfg := range []NetConfig{CfgC2, CfgC1} {
		env, err := NewStorageEnv(cfg, 2048, 64)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		rates, err := env.RunSequential(nvme.OpRead, 256, 32)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if rates.IOs != 256 || rates.IOPS <= 0 {
			t.Fatalf("%v rates %+v", cfg, rates)
		}
		if err := verify.TotalWF(env.K); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
	}
}

func TestNvmeDataIntegrityThroughDriver(t *testing.T) {
	env, err := NewStorageEnv(CfgDriverLinked, 2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Write a pattern through the driver, then read it back.
	mem := env.K.Machine.Mem
	mem.Write(env.Drv.BufPhys(0), []byte("block-zero"))
	if err := env.Drv.SubmitBatch(nvme.OpWrite, 40, 1); err != nil {
		t.Fatal(err)
	}
	if n, err := env.Drv.PollCompletions(1); err != nil || n != 1 {
		t.Fatalf("write completion missing (n=%d err=%v)", n, err)
	}
	// Clear the next buffer slot and read back into it.
	if err := env.Drv.SubmitBatch(nvme.OpRead, 40, 1); err != nil {
		t.Fatal(err)
	}
	if n, err := env.Drv.PollCompletions(1); err != nil || n != 1 {
		t.Fatalf("read completion missing (n=%d err=%v)", n, err)
	}
	got := mem.Read(env.Drv.BufPhys(1), 10)
	if string(got) != "block-zero" {
		t.Fatalf("read back %q", got)
	}
}

func TestInterruptDrivenRx(t *testing.T) {
	// The interrupt-mode data path (§3's interrupt dispatch): the
	// driver binds the NIC's IRQ to an endpoint and sleeps in irq_wait;
	// each delivered batch raises the line and wakes it.
	gen := nic.NewGenerator(6, 8, 60)
	env, err := NewNetEnv(CfgDriverLinked, gen)
	if err != nil {
		t.Fatal(err)
	}
	k := env.K
	const nicIRQ = 32
	if r := k.SysNewEndpoint(0, env.DrvTid, 5); r.Errno != kernel.OK {
		t.Fatalf("endpoint: %v", r.Errno)
	}
	if r := k.SysIrqRegister(0, env.DrvTid, nicIRQ, 5); r.Errno != kernel.OK {
		t.Fatalf("irq_register: %v", r.Errno)
	}
	env.Dev.OnRxInterrupt = func() { k.RaiseIRQ(0, nicIRQ) }

	received := 0
	for round := 0; round < 4; round++ {
		// Driver sleeps; keep a sibling runnable so the core never
		// empties.
		if round == 0 {
			if r := k.SysNewThread(0, env.DrvTid, 0); r.Errno != kernel.OK {
				t.Fatalf("sibling: %v", r.Errno)
			}
		}
		r := k.SysIrqWait(0, env.DrvTid, nicIRQ)
		if r.Errno == kernel.EWOULDBLOCK {
			// Asleep: traffic arrives, the interrupt wakes the driver.
			if _, err := env.Dev.DeliverRX(8); err != nil {
				t.Fatal(err)
			}
			if k.PM.Thrd(env.DrvTid).State == pm.ThreadBlockedRecv {
				t.Fatal("interrupt did not wake the driver")
			}
		}
		received += env.Drv.RxBurst(8)
	}
	if received == 0 {
		t.Fatal("interrupt-driven path received nothing")
	}
	if err := verify.TotalWF(k); err != nil {
		t.Fatal(err)
	}
}

func TestIxgbeC2ForwardingPath(t *testing.T) {
	// The c2 TX path: the app publishes forwarded frames on the
	// app->driver ring; the driver drains it and transmits.
	gen := nic.NewGenerator(9, 16, 60)
	env, err := NewNetEnv(CfgC2, gen)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	env.Dev.TxSink = func(frame []byte) {
		if _, err := netproto.ParseUDP(frame); err != nil {
			t.Fatalf("unparsable forwarded frame: %v", err)
		}
		sent++
	}
	_, err = env.RunRx(256, 16, func(clk *hw.Clock, frame []byte) bool {
		clk.Charge(60)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != 256 {
		t.Fatalf("forwarded %d of 256", sent)
	}
	if env.Dev.TxSent != 256 {
		t.Fatalf("device TxSent = %d", env.Dev.TxSent)
	}
}
