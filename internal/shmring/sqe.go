package shmring

import (
	"errors"

	"atmosphere/internal/hw"
)

// Submission/completion framing for syscall batching (io_uring-style,
// ROADMAP item 3). A submission queue entry (SQE) occupies one header
// ring entry plus zero or more continuation entries carrying extra
// arguments; a completion queue entry (CQE) is always a single ring
// entry. Both queues are ordinary Rings over shared pages, so the
// framing inherits the ring's wraparound, fullness, and cycle-charging
// behaviour.
//
// Header entry layout (W0, most significant byte first):
//
//	bits 56..63  magic (0xA7)
//	bits 48..55  opcode
//	bits 40..47  nextra: continuation entries following the header
//	bits 32..39  flags
//	bits 16..31  token (echoed in the CQE so callers match results)
//	bits  0..15  reserved, must be zero
//
// W1 carries the first argument; each continuation entry carries two
// further arguments (W0 then W1). A CQE reuses the header layout with
// the errno in place of nextra/flags and W1 carrying the result value.
const (
	// FrameMagic marks a well-formed SQE header or CQE.
	FrameMagic = 0xA7
	// MaxExtra bounds the continuation entries per SQE.
	MaxExtra = 3
	// MaxSQEArgs is the argument capacity of one framed submission:
	// one in the header plus two per continuation entry.
	MaxSQEArgs = 1 + 2*MaxExtra
)

// Framing errors.
var (
	// ErrMalformed reports a header entry with a bad magic byte, an
	// over-limit continuation count, or nonzero reserved bits. The bad
	// header is consumed so the producer's next frame can be reached.
	ErrMalformed = errors.New("shmring: malformed SQE header")
	// ErrTruncated reports a header whose continuation entries have not
	// all been queued yet. Nothing is consumed: the frame stays intact
	// for a later doorbell.
	ErrTruncated = errors.New("shmring: truncated SQE frame")
)

// SQE is one decoded submission.
type SQE struct {
	Op    uint8
	Flags uint8
	Token uint16
	Args  [MaxSQEArgs]uint64
	NArgs int
}

// CQE is one completion: the submission's opcode and token, the
// kernel's errno for the op, and the primary result value.
type CQE struct {
	Op    uint8
	Errno uint8
	Token uint16
	Val   uint64
}

// EntriesFor returns how many ring entries a submission with nargs
// arguments occupies (header + continuations).
func EntriesFor(nargs int) int {
	if nargs <= 1 {
		return 1
	}
	return 1 + (nargs-1+1)/2
}

// EncodeSQE frames one submission onto the ring, all-or-nothing: if the
// header and every continuation entry do not all fit, nothing is pushed
// and ErrFull is returned. Arguments beyond MaxSQEArgs are rejected as
// ErrMalformed without touching the ring.
func EncodeSQE(r *Ring, op, flags uint8, token uint16, args ...uint64) error {
	if len(args) > MaxSQEArgs {
		return ErrMalformed
	}
	need := EntriesFor(len(args))
	if r.Cap()-r.Len() < need {
		return ErrFull
	}
	nextra := need - 1
	var a0 uint64
	if len(args) > 0 {
		a0 = args[0]
	}
	hdr := Entry{
		W0: uint64(FrameMagic)<<56 | uint64(op)<<48 | uint64(nextra)<<40 |
			uint64(flags)<<32 | uint64(token)<<16,
		W1: a0,
	}
	if err := r.Push(hdr); err != nil {
		return err
	}
	for i := 0; i < nextra; i++ {
		var e Entry
		e.W0 = args[1+2*i]
		if 2+2*i < len(args) {
			e.W1 = args[2+2*i]
		}
		if err := r.Push(e); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSQE consumes one framed submission from the ring. ErrEmpty
// means no header is queued (a stale doorbell). ErrMalformed consumes
// exactly the offending header entry. ErrTruncated consumes nothing.
func DecodeSQE(r *Ring) (SQE, error) {
	if r.Len() == 0 {
		return SQE{}, ErrEmpty
	}
	hdr := r.peekAt(0)
	if hdr.W0>>56 != FrameMagic || hdr.W0&0xffff != 0 {
		r.advance(1)
		return SQE{}, ErrMalformed
	}
	nextra := int(hdr.W0 >> 40 & 0xff)
	if nextra > MaxExtra {
		r.advance(1)
		return SQE{}, ErrMalformed
	}
	if r.Len() < 1+nextra {
		return SQE{}, ErrTruncated
	}
	s := SQE{
		Op:    uint8(hdr.W0 >> 48),
		Flags: uint8(hdr.W0 >> 32),
		Token: uint16(hdr.W0 >> 16),
		NArgs: 1 + 2*nextra,
	}
	s.Args[0] = hdr.W1
	for i := 0; i < nextra; i++ {
		e := r.peekAt(1 + i)
		s.Args[1+2*i] = e.W0
		s.Args[2+2*i] = e.W1
	}
	r.advance(1 + nextra)
	return s, nil
}

// EncodeCQE packs one completion into a single ring entry.
func EncodeCQE(c CQE) Entry {
	return Entry{
		W0: uint64(FrameMagic)<<56 | uint64(c.Op)<<48 | uint64(c.Errno)<<40 |
			uint64(c.Token)<<16,
		W1: c.Val,
	}
}

// PushCQE posts one completion (kernel side).
func PushCQE(r *Ring, c CQE) error { return r.Push(EncodeCQE(c)) }

// PopCQE consumes one completion (application side). A non-CQE entry
// is consumed and reported as ErrMalformed.
func PopCQE(r *Ring) (CQE, error) {
	e, err := r.Pop()
	if err != nil {
		return CQE{}, err
	}
	if e.W0>>56 != FrameMagic {
		return CQE{}, ErrMalformed
	}
	return CQE{
		Op:    uint8(e.W0 >> 48),
		Errno: uint8(e.W0 >> 40),
		Token: uint16(e.W0 >> 16),
		Val:   e.W1,
	}, nil
}

// peekAt reads the i-th queued entry without consuming it, charging
// the same cache traffic as a pop would for that entry.
func (r *Ring) peekAt(i int) Entry {
	head := r.head()
	slot := r.base + hw.PhysAddr(slotsOff+int((head+uint64(i))%uint64(r.slots))*slotSize)
	e := Entry{W0: r.mem.ReadU64(slot), W1: r.mem.ReadU64(slot + 8)}
	r.clock.Charge(2 * hw.CostCacheTouch)
	return e
}

// advance consumes n queued entries without reading them again.
func (r *Ring) advance(n int) {
	r.mem.WriteU64(r.base+headOff, r.head()+uint64(n))
	r.clock.Charge(2 * hw.CostCacheTouch)
}
