// Package shmring is the single-producer single-consumer shared-memory
// descriptor ring Atmosphere processes use for asynchronous
// communication (§3, §6.5): the atmo-c2 and atmo-c1 configurations put
// one between the application and the driver process. The ring lives in
// a shared page of simulated physical memory, so it exercises exactly
// the cross-address-space sharing the kernel's page-transfer IPC
// establishes.
package shmring

import (
	"encoding/binary"
	"errors"

	"atmosphere/internal/hw"
)

// Layout inside the shared page: 8-byte head, 8-byte tail, then slots of
// 16 bytes (two 8-byte words per entry).
const (
	headOff  = 0
	tailOff  = 8
	slotsOff = 16
	slotSize = 16
)

// Errors.
var (
	ErrFull  = errors.New("shmring: full")
	ErrEmpty = errors.New("shmring: empty")
)

// Entry is one ring descriptor: an opaque pair of words (typically a
// buffer address and a length/opcode).
type Entry struct {
	W0, W1 uint64
}

// Ring is one endpoint's view of the shared ring. Producer and consumer
// construct their own Ring over the same physical page (each side maps
// it into its address space; the physical address is what both views
// share).
type Ring struct {
	mem   *hw.PhysMem
	clock *hw.Clock
	base  hw.PhysAddr
	slots int
}

// Slots returns the capacity for a ring within one 4 KiB page.
func SlotsPerPage() int { return (hw.PageSize4K - slotsOff) / slotSize }

// New constructs a view over the shared page at base, charging ring
// operations to clock.
func New(mem *hw.PhysMem, clock *hw.Clock, base hw.PhysAddr, slots int) *Ring {
	if slots <= 0 || slots > SlotsPerPage() {
		slots = SlotsPerPage()
	}
	return &Ring{mem: mem, clock: clock, base: base, slots: slots}
}

func (r *Ring) head() uint64 { return r.mem.ReadU64(r.base + headOff) }
func (r *Ring) tail() uint64 { return r.mem.ReadU64(r.base + tailOff) }

// Len returns the number of queued entries.
func (r *Ring) Len() int { return int(r.tail() - r.head()) }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return r.slots }

// Push enqueues one entry (producer side).
func (r *Ring) Push(e Entry) error {
	head, tail := r.head(), r.tail()
	if tail-head >= uint64(r.slots) {
		return ErrFull
	}
	slot := r.base + hw.PhysAddr(slotsOff+int(tail%uint64(r.slots))*slotSize)
	r.mem.WriteU64(slot, e.W0)
	r.mem.WriteU64(slot+8, e.W1)
	r.mem.WriteU64(r.base+tailOff, tail+1)
	// Two cache lines: the slot and the tail (the consumer's next load
	// of each misses).
	r.clock.Charge(2 * hw.CostCacheTouch)
	return nil
}

// Pop dequeues one entry (consumer side).
func (r *Ring) Pop() (Entry, error) {
	head, tail := r.head(), r.tail()
	if head == tail {
		return Entry{}, ErrEmpty
	}
	slot := r.base + hw.PhysAddr(slotsOff+int(head%uint64(r.slots))*slotSize)
	e := Entry{W0: r.mem.ReadU64(slot), W1: r.mem.ReadU64(slot + 8)}
	r.mem.WriteU64(r.base+headOff, head+1)
	r.clock.Charge(2 * hw.CostCacheTouch)
	return e, nil
}

// PushBatch enqueues up to len(es) entries, returning how many fit.
func (r *Ring) PushBatch(es []Entry) int {
	n := 0
	for _, e := range es {
		if r.Push(e) != nil {
			break
		}
		n++
	}
	return n
}

// PopBatch dequeues up to max entries.
func (r *Ring) PopBatch(dst []Entry) int {
	n := 0
	for n < len(dst) {
		e, err := r.Pop()
		if err != nil {
			break
		}
		dst[n] = e
		n++
	}
	return n
}

// Marshal helpers for buffer descriptors.

// PackBufferDesc packs a DMA address and length into an entry.
func PackBufferDesc(addr hw.PhysAddr, length uint16, op uint8) Entry {
	var w1 [8]byte
	binary.LittleEndian.PutUint16(w1[0:2], length)
	w1[2] = op
	return Entry{W0: uint64(addr), W1: binary.LittleEndian.Uint64(w1[:])}
}

// UnpackBufferDesc reverses PackBufferDesc.
func UnpackBufferDesc(e Entry) (addr hw.PhysAddr, length uint16, op uint8) {
	var w1 [8]byte
	binary.LittleEndian.PutUint64(w1[:], e.W1)
	return hw.PhysAddr(e.W0), binary.LittleEndian.Uint16(w1[0:2]), w1[2]
}
