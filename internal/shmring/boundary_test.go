package shmring

import "testing"

// TestWrapAroundSoak drives the ring through many full revolutions with
// an interleaved producer/consumer so every slot index is exercised in
// every head/tail phase, checking strict FIFO throughout.
func TestWrapAroundSoak(t *testing.T) {
	const slots = 7 // coprime with the push/pop pattern below
	p, c, _, _ := newRing(slots)
	next, expect := uint64(0), uint64(0)
	for round := 0; round < 200; round++ {
		// Push a burst of 1..slots entries, then drain part of it.
		burst := 1 + round%slots
		for i := 0; i < burst; i++ {
			if err := p.Push(Entry{W0: next, W1: ^next}); err != nil {
				if err != ErrFull {
					t.Fatalf("round %d: %v", round, err)
				}
				break
			}
			next++
		}
		drain := 1 + (round/2)%slots
		for i := 0; i < drain; i++ {
			e, err := c.Pop()
			if err != nil {
				if err != ErrEmpty {
					t.Fatalf("round %d: %v", round, err)
				}
				break
			}
			if e.W0 != expect || e.W1 != ^expect {
				t.Fatalf("round %d: popped %d (w1 %#x), want %d", round, e.W0, e.W1, expect)
			}
			expect++
		}
	}
	// Drain the remainder: the tail of the sequence must come out intact.
	for {
		e, err := c.Pop()
		if err != nil {
			break
		}
		if e.W0 != expect {
			t.Fatalf("final drain: popped %d, want %d", e.W0, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("consumed %d of %d produced entries", expect, next)
	}
}

// TestFullEmptyBoundary walks the exact transitions at both capacity
// edges: full -> one pop -> exactly one push fits; empty -> one push ->
// exactly one pop succeeds.
func TestFullEmptyBoundary(t *testing.T) {
	p, c, _, _ := newRing(4)
	for i := uint64(0); i < 4; i++ {
		if err := p.Push(Entry{W0: i}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := p.Push(Entry{W0: 99}); err != ErrFull {
		t.Fatalf("push into full ring: %v", err)
	}
	if p.Len() != 4 || p.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", p.Len(), p.Cap())
	}
	if _, err := c.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(Entry{W0: 4}); err != nil {
		t.Fatalf("push after freeing one slot: %v", err)
	}
	if err := p.Push(Entry{W0: 5}); err != ErrFull {
		t.Fatalf("second push must hit full again: %v", err)
	}
	// Drain to empty; the boundary pop fails, a single push revives it.
	for i := 0; i < 4; i++ {
		if _, err := c.Pop(); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if _, err := c.Pop(); err != ErrEmpty {
		t.Fatalf("pop from empty ring: %v", err)
	}
	if err := p.Push(Entry{W0: 7}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Pop()
	if err != nil || e.W0 != 7 {
		t.Fatalf("pop after revive: %+v %v", e, err)
	}
}

// TestBatchAcrossWrap: a batch larger than the remaining slots stops at
// capacity, and a pop batch crossing the physical end of the slot array
// preserves order.
func TestBatchAcrossWrap(t *testing.T) {
	p, c, _, _ := newRing(6)
	// Advance head/tail so the next pushes straddle the array end.
	for i := uint64(0); i < 4; i++ {
		if err := p.Push(Entry{W0: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	var buf [8]Entry
	if n := c.PopBatch(buf[:4]); n != 4 {
		t.Fatalf("warmup drain: %d", n)
	}
	es := make([]Entry, 8)
	for i := range es {
		es[i] = Entry{W0: uint64(i)}
	}
	if n := p.PushBatch(es); n != 6 {
		t.Fatalf("pushed %d into 6-slot ring, want 6", n)
	}
	if n := c.PopBatch(buf[:]); n != 6 {
		t.Fatalf("popped %d, want 6", n)
	}
	for i := 0; i < 6; i++ {
		if buf[i].W0 != uint64(i) {
			t.Fatalf("batch order: slot %d = %d", i, buf[i].W0)
		}
	}
}

// TestSingleSlotRing: the degenerate capacity-1 ring alternates
// strictly between full and empty.
func TestSingleSlotRing(t *testing.T) {
	p, c, _, _ := newRing(1)
	for i := uint64(0); i < 10; i++ {
		if err := p.Push(Entry{W0: i}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if err := p.Push(Entry{W0: 999}); err != ErrFull {
			t.Fatalf("double push %d: %v", i, err)
		}
		e, err := c.Pop()
		if err != nil || e.W0 != i {
			t.Fatalf("pop %d: %+v %v", i, e, err)
		}
		if _, err := c.Pop(); err != ErrEmpty {
			t.Fatalf("double pop %d: %v", i, err)
		}
	}
}
