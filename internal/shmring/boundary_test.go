package shmring

import (
	"testing"

	"atmosphere/internal/hw"
)

// TestWrapAroundSoak drives the ring through many full revolutions with
// an interleaved producer/consumer so every slot index is exercised in
// every head/tail phase, checking strict FIFO throughout.
func TestWrapAroundSoak(t *testing.T) {
	const slots = 7 // coprime with the push/pop pattern below
	p, c, _, _ := newRing(slots)
	next, expect := uint64(0), uint64(0)
	for round := 0; round < 200; round++ {
		// Push a burst of 1..slots entries, then drain part of it.
		burst := 1 + round%slots
		for i := 0; i < burst; i++ {
			if err := p.Push(Entry{W0: next, W1: ^next}); err != nil {
				if err != ErrFull {
					t.Fatalf("round %d: %v", round, err)
				}
				break
			}
			next++
		}
		drain := 1 + (round/2)%slots
		for i := 0; i < drain; i++ {
			e, err := c.Pop()
			if err != nil {
				if err != ErrEmpty {
					t.Fatalf("round %d: %v", round, err)
				}
				break
			}
			if e.W0 != expect || e.W1 != ^expect {
				t.Fatalf("round %d: popped %d (w1 %#x), want %d", round, e.W0, e.W1, expect)
			}
			expect++
		}
	}
	// Drain the remainder: the tail of the sequence must come out intact.
	for {
		e, err := c.Pop()
		if err != nil {
			break
		}
		if e.W0 != expect {
			t.Fatalf("final drain: popped %d, want %d", e.W0, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("consumed %d of %d produced entries", expect, next)
	}
}

// TestFullEmptyBoundary walks the exact transitions at both capacity
// edges: full -> one pop -> exactly one push fits; empty -> one push ->
// exactly one pop succeeds.
func TestFullEmptyBoundary(t *testing.T) {
	p, c, _, _ := newRing(4)
	for i := uint64(0); i < 4; i++ {
		if err := p.Push(Entry{W0: i}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := p.Push(Entry{W0: 99}); err != ErrFull {
		t.Fatalf("push into full ring: %v", err)
	}
	if p.Len() != 4 || p.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", p.Len(), p.Cap())
	}
	if _, err := c.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(Entry{W0: 4}); err != nil {
		t.Fatalf("push after freeing one slot: %v", err)
	}
	if err := p.Push(Entry{W0: 5}); err != ErrFull {
		t.Fatalf("second push must hit full again: %v", err)
	}
	// Drain to empty; the boundary pop fails, a single push revives it.
	for i := 0; i < 4; i++ {
		if _, err := c.Pop(); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if _, err := c.Pop(); err != ErrEmpty {
		t.Fatalf("pop from empty ring: %v", err)
	}
	if err := p.Push(Entry{W0: 7}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Pop()
	if err != nil || e.W0 != 7 {
		t.Fatalf("pop after revive: %+v %v", e, err)
	}
}

// TestBatchAcrossWrap: a batch larger than the remaining slots stops at
// capacity, and a pop batch crossing the physical end of the slot array
// preserves order.
func TestBatchAcrossWrap(t *testing.T) {
	p, c, _, _ := newRing(6)
	// Advance head/tail so the next pushes straddle the array end.
	for i := uint64(0); i < 4; i++ {
		if err := p.Push(Entry{W0: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	var buf [8]Entry
	if n := c.PopBatch(buf[:4]); n != 4 {
		t.Fatalf("warmup drain: %d", n)
	}
	es := make([]Entry, 8)
	for i := range es {
		es[i] = Entry{W0: uint64(i)}
	}
	if n := p.PushBatch(es); n != 6 {
		t.Fatalf("pushed %d into 6-slot ring, want 6", n)
	}
	if n := c.PopBatch(buf[:]); n != 6 {
		t.Fatalf("popped %d, want 6", n)
	}
	for i := 0; i < 6; i++ {
		if buf[i].W0 != uint64(i) {
			t.Fatalf("batch order: slot %d = %d", i, buf[i].W0)
		}
	}
}

// TestSingleSlotRing: the degenerate capacity-1 ring alternates
// strictly between full and empty.
func TestSingleSlotRing(t *testing.T) {
	p, c, _, _ := newRing(1)
	for i := uint64(0); i < 10; i++ {
		if err := p.Push(Entry{W0: i}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if err := p.Push(Entry{W0: 999}); err != ErrFull {
			t.Fatalf("double push %d: %v", i, err)
		}
		e, err := c.Pop()
		if err != nil || e.W0 != i {
			t.Fatalf("pop %d: %+v %v", i, e, err)
		}
		if _, err := c.Pop(); err != ErrEmpty {
			t.Fatalf("double pop %d: %v", i, err)
		}
	}
}

// --- SQE framing hardening ------------------------------------------
//
// The tests below attack the submission framing the way a buggy or
// hostile producer would: bad headers, frames rung in before they are
// complete, doorbells with nothing behind them, and a producer that
// scribbles the tail pointer past capacity. The consumer (the kernel)
// must stay deterministic and never trust ring contents.

// TestDecodeMalformedHeader: each malformed header variant — wrong
// magic, nonzero reserved bits, over-limit continuation count — costs
// exactly one consumed entry, and the next well-formed frame decodes
// intact afterwards.
func TestDecodeMalformedHeader(t *testing.T) {
	bad := []struct {
		name string
		hdr  Entry
	}{
		{"wrong magic", Entry{W0: 0x00<<56 | 7<<48, W1: 1}},
		{"reserved bits set", Entry{W0: uint64(FrameMagic)<<56 | 7<<48 | 0xBEEF, W1: 1}},
		{"nextra over limit", Entry{W0: uint64(FrameMagic)<<56 | 7<<48 | uint64(MaxExtra+1)<<40, W1: 1}},
	}
	for _, tc := range bad {
		p, c, _, _ := newRing(8)
		if err := p.Push(tc.hdr); err != nil {
			t.Fatalf("%s: push: %v", tc.name, err)
		}
		if err := EncodeSQE(p, 9, 0, 42, 11, 22, 33); err != nil {
			t.Fatalf("%s: encode follower: %v", tc.name, err)
		}
		if _, err := DecodeSQE(c); err != ErrMalformed {
			t.Fatalf("%s: decode = %v, want ErrMalformed", tc.name, err)
		}
		s, err := DecodeSQE(c)
		if err != nil || s.Op != 9 || s.Token != 42 || s.Args[0] != 11 || s.Args[2] != 33 {
			t.Fatalf("%s: follower after malformed: %+v %v", tc.name, s, err)
		}
		if c.Len() != 0 {
			t.Fatalf("%s: %d entries left over", tc.name, c.Len())
		}
	}
}

// TestDecodeTruncatedFrame: a header promising continuation entries
// that have not been queued yet decodes as ErrTruncated with nothing
// consumed — the frame stays intact for the next doorbell, which sees
// it whole once the producer finishes.
func TestDecodeTruncatedFrame(t *testing.T) {
	p, c, _, _ := newRing(8)
	hdr := Entry{W0: uint64(FrameMagic)<<56 | 5<<48 | 2<<40 | uint64(77)<<16, W1: 100}
	if err := p.Push(hdr); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(Entry{W0: 101, W1: 102}); err != nil { // 1 of 2 continuations
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ { // truncation is stable, not consuming
		if _, err := DecodeSQE(c); err != ErrTruncated {
			t.Fatalf("round %d: decode = %v, want ErrTruncated", round, err)
		}
		if c.Len() != 2 {
			t.Fatalf("round %d: truncated decode consumed entries (len %d)", round, c.Len())
		}
	}
	if err := p.Push(Entry{W0: 103, W1: 104}); err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSQE(c)
	if err != nil || s.Op != 5 || s.Token != 77 || s.NArgs != 5 {
		t.Fatalf("completed frame: %+v %v", s, err)
	}
	for i, want := range []uint64{100, 101, 102, 103, 104} {
		if s.Args[i] != want {
			t.Fatalf("arg %d = %d, want %d", i, s.Args[i], want)
		}
	}
}

// TestStaleDoorbell: a doorbell with an empty submission queue is a
// no-op — ErrEmpty, nothing consumed, and the ring still works for the
// next real submission. Rung twice for the pure-stale case, then once
// more after a frame lands.
func TestStaleDoorbell(t *testing.T) {
	p, c, _, _ := newRing(4)
	for i := 0; i < 2; i++ {
		if _, err := DecodeSQE(c); err != ErrEmpty {
			t.Fatalf("stale doorbell %d: %v, want ErrEmpty", i, err)
		}
	}
	if err := EncodeSQE(p, 1, 0, 5, 9); err != nil {
		t.Fatal(err)
	}
	if s, err := DecodeSQE(c); err != nil || s.Op != 1 || s.Args[0] != 9 {
		t.Fatalf("frame after stale doorbells: %+v %v", s, err)
	}
}

// TestProducerOverrun: a misbehaving producer scribbles the shared tail
// pointer far past capacity. The consumer must not panic, must not
// fabricate well-formed submissions out of stale slot bytes, and must
// reach a drained state in bounded steps (every bogus entry costs at
// most one consume).
func TestProducerOverrun(t *testing.T) {
	const slots = 6
	mem := hw.NewPhysMem(2)
	var pclk, cclk hw.Clock
	base := hw.PhysAddr(hw.PageSize4K)
	p := New(mem, &pclk, base, slots)
	c := New(mem, &cclk, base, slots)
	_ = p
	// Overrun: tail jumps 2*slots+3 entries ahead of head with no data
	// ever written to the slots.
	mem.WriteU64(base+8, uint64(2*slots+3)) // tailOff
	if got := c.Len(); got != 2*slots+3 {
		t.Fatalf("overrun len = %d", got)
	}
	steps := 0
	for c.Len() > 0 {
		_, err := DecodeSQE(c)
		if err == nil {
			t.Fatal("decoded a well-formed SQE from an overrun ring")
		}
		if err != ErrMalformed {
			t.Fatalf("overrun decode: %v", err)
		}
		if steps++; steps > 3*slots+3 {
			t.Fatal("overrun drain did not terminate in bounded steps")
		}
	}
	// The ring is usable again once head has caught the bogus tail.
	if err := EncodeSQE(c, 3, 0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if s, err := DecodeSQE(c); err != nil || s.Op != 3 || s.Args[0] != 7 {
		t.Fatalf("post-overrun frame: %+v %v", s, err)
	}
}

// TestWraparoundPartialBatch: multi-entry frames that straddle the
// physical end of the slot array, including one rung in while split —
// header before the wrap, continuations after — must decode with
// arguments in order once complete.
func TestWraparoundPartialBatch(t *testing.T) {
	const slots = 8
	p, c, _, _ := newRing(slots)
	// Phase the ring so the next frame starts 2 slots before the end.
	for i := 0; i < slots-2; i++ {
		if err := p.Push(Entry{W0: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf [slots]Entry
	if n := c.PopBatch(buf[:slots-2]); n != slots-2 {
		t.Fatalf("phasing drain: %d", n)
	}
	// A 3-entry frame (header + 2 continuations) now wraps. Push the
	// header and first continuation only, ring the doorbell mid-frame.
	hdr := Entry{W0: uint64(FrameMagic)<<56 | 8<<48 | 2<<40 | uint64(9)<<16, W1: 1}
	if err := p.Push(hdr); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(Entry{W0: 2, W1: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSQE(c); err != ErrTruncated {
		t.Fatalf("mid-frame doorbell across wrap: %v, want ErrTruncated", err)
	}
	if err := p.Push(Entry{W0: 4, W1: 5}); err != nil { // lands past the wrap
		t.Fatal(err)
	}
	s, err := DecodeSQE(c)
	if err != nil || s.Op != 8 || s.Token != 9 || s.NArgs != 5 {
		t.Fatalf("wrapped frame: %+v %v", s, err)
	}
	for i, want := range []uint64{1, 2, 3, 4, 5} {
		if s.Args[i] != want {
			t.Fatalf("wrapped arg %d = %d, want %d", i, s.Args[i], want)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("%d entries left after wrapped frame", c.Len())
	}
}

// TestFramingDeterminismSoak: the framing layer is part of the
// simulator's deterministic surface — same seed, same interleaving of
// encodes, doorbells, and completions must yield bit-identical decode
// streams AND identical cycle charges on both sides. Two independent
// runs per seed are compared field by field.
func TestFramingDeterminismSoak(t *testing.T) {
	type event struct {
		op, errno uint8
		token     uint16
		arg0      uint64
		err       string
	}
	run := func(seed uint64) ([]event, uint64, uint64) {
		r := hw.NewRand(seed)
		p, c, pclk, cclk := newRing(11)
		cqp, cqc, _, _ := newRing(5)
		var events []event
		next := uint16(0)
		for step := 0; step < 4000; step++ {
			switch r.Intn(4) {
			case 0, 1: // submit a frame with 0..6 args
				nargs := r.Intn(MaxSQEArgs)
				args := make([]uint64, nargs)
				for i := range args {
					args[i] = r.Uint64()
				}
				err := EncodeSQE(p, uint8(r.Intn(16)), 0, next, args...)
				if err == nil {
					next++
				}
			case 2: // doorbell: drain one frame
				s, err := DecodeSQE(c)
				ev := event{op: s.Op, token: s.Token, arg0: s.Args[0]}
				if err != nil {
					ev.err = err.Error()
				}
				events = append(events, ev)
			case 3: // completion round-trip on the dedicated CQ ring
				cq := CQE{Op: uint8(r.Intn(16)), Errno: uint8(r.Intn(8)), Token: next, Val: r.Uint64()}
				if PushCQE(cqp, cq) == nil {
					got, err := PopCQE(cqc)
					if err != nil || got != cq {
						t.Fatalf("seed %d step %d: CQE round-trip %+v -> %+v %v", seed, step, cq, got, err)
					}
					events = append(events, event{op: got.Op, errno: got.Errno, token: got.Token, arg0: got.Val})
				}
			}
		}
		return events, pclk.Cycles(), cclk.Cycles()
	}
	for seed := uint64(1); seed <= 4; seed++ {
		e1, p1, c1 := run(seed)
		e2, p2, c2 := run(seed)
		if len(e1) != len(e2) {
			t.Fatalf("seed %d: %d vs %d events", seed, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("seed %d: event %d diverged: %+v vs %+v", seed, i, e1[i], e2[i])
			}
		}
		if p1 != p2 || c1 != c2 {
			t.Fatalf("seed %d: cycle divergence producer %d/%d consumer %d/%d", seed, p1, p2, c1, c2)
		}
	}
}
