package shmring

import (
	"testing"
	"testing/quick"

	"atmosphere/internal/hw"
)

func newRing(slots int) (*Ring, *Ring, *hw.Clock, *hw.Clock) {
	mem := hw.NewPhysMem(2)
	var pclk, cclk hw.Clock
	base := hw.PhysAddr(hw.PageSize4K)
	return New(mem, &pclk, base, slots), New(mem, &cclk, base, slots), &pclk, &cclk
}

func TestPushPopFIFO(t *testing.T) {
	p, c, _, _ := newRing(8)
	for i := uint64(0); i < 5; i++ {
		if err := p.Push(Entry{W0: i, W1: i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	for i := uint64(0); i < 5; i++ {
		e, err := c.Pop()
		if err != nil || e.W0 != i || e.W1 != i*10 {
			t.Fatalf("pop %d = %+v err %v", i, e, err)
		}
	}
	if _, err := c.Pop(); err != ErrEmpty {
		t.Fatal("empty pop succeeded")
	}
}

func TestFull(t *testing.T) {
	p, _, _, _ := newRing(4)
	for i := 0; i < 4; i++ {
		if err := p.Push(Entry{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Push(Entry{}); err != ErrFull {
		t.Fatal("overfull push succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	p, c, _, _ := newRing(4)
	for round := uint64(0); round < 40; round++ {
		if err := p.Push(Entry{W0: round}); err != nil {
			t.Fatal(err)
		}
		e, err := c.Pop()
		if err != nil || e.W0 != round {
			t.Fatalf("round %d: %+v %v", round, e, err)
		}
	}
}

func TestBatches(t *testing.T) {
	p, c, _, _ := newRing(8)
	in := make([]Entry, 12)
	for i := range in {
		in[i] = Entry{W0: uint64(i)}
	}
	if n := p.PushBatch(in); n != 8 {
		t.Fatalf("pushed %d", n)
	}
	out := make([]Entry, 12)
	if n := c.PopBatch(out); n != 8 {
		t.Fatalf("popped %d", n)
	}
	for i := 0; i < 8; i++ {
		if out[i].W0 != uint64(i) {
			t.Fatal("batch order wrong")
		}
	}
}

func TestClockCharging(t *testing.T) {
	p, c, pclk, cclk := newRing(8)
	p.Push(Entry{})
	c.Pop()
	if pclk.Cycles() == 0 || cclk.Cycles() == 0 {
		t.Fatal("ring ops charged nothing")
	}
}

func TestSharedMemoryVisibility(t *testing.T) {
	// Two views over the same physical page observe each other without
	// any Go-level channel: the data travels through PhysMem only.
	mem := hw.NewPhysMem(2)
	var clkA, clkB hw.Clock
	base := hw.PhysAddr(hw.PageSize4K)
	producer := New(mem, &clkA, base, 16)
	consumer := New(mem, &clkB, base, 16)
	producer.Push(Entry{W0: 0xdead})
	e, err := consumer.Pop()
	if err != nil || e.W0 != 0xdead {
		t.Fatal("cross-view visibility failed")
	}
}

func TestBufferDescRoundTrip(t *testing.T) {
	f := func(addr uint32, length uint16, op uint8) bool {
		e := PackBufferDesc(hw.PhysAddr(addr), length, op)
		a, l, o := UnpackBufferDesc(e)
		return a == hw.PhysAddr(addr) && l == length && o == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotsPerPage(t *testing.T) {
	if SlotsPerPage() != (hw.PageSize4K-16)/16 {
		t.Fatal("slots per page wrong")
	}
	// Oversized request clamps.
	mem := hw.NewPhysMem(2)
	var clk hw.Clock
	r := New(mem, &clk, hw.PageSize4K, 1<<20)
	if r.Cap() != SlotsPerPage() {
		t.Fatal("cap not clamped")
	}
}
