// Package spec defines the abstract state of the Atmosphere kernel — the
// paper's Ψ — and the executable specification of every system call.
//
// In the paper, the abstract state is ghost data maintained by Verus and
// the syscall specifications are spec functions discharged statically by
// the SMT solver. Here the abstract state is a plain value produced by an
// abstraction function over the concrete kernel, and each specification
// is an executable predicate over (Ψ, Ψ', args, ret). internal/verify
// evaluates these predicates after every transition of a checked trace —
// the dynamic analogue of the refinement theorem (§4).
//
// The specifications are deliberately written in the paper's "flat" style:
// they quantify over the flat object maps directly (all threads, all
// containers) instead of navigating the object hierarchy (§4.3).
package spec

import (
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/mem"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// Ptr re-exports the kernel object pointer type.
type Ptr = pm.Ptr

// Container is the abstract view of one container.
type Container struct {
	Parent       Ptr
	Children     []Ptr
	Depth        int
	Path         []Ptr
	Subtree      map[Ptr]bool
	QuotaPages   uint64
	UsedPages    uint64
	CPUs         []int
	Procs        map[Ptr]bool
	OwnedThreads map[Ptr]bool
}

// Proc is the abstract view of one process.
type Proc struct {
	Owner       Ptr
	Parent      Ptr
	Children    []Ptr
	Threads     []Ptr
	IOMMUDomain iommu.DomainID
}

// Thread is the abstract view of one thread.
type Thread struct {
	OwningProc Ptr
	OwningCntr Ptr
	State      pm.ThreadState
	Core       int
	Endpoints  [pm.MaxEndpoints]Ptr
	WaitingOn  Ptr
}

// BufMsg is the abstract image of one buffered (or in-flight) message's
// capability payload. Scalar registers are below the abstraction line —
// Ψ tracks what authority a message carries, not its data.
type BufMsg struct {
	HasPage bool
	Size    hw.PageSize
	Perm    pt.Perm
}

// Endpoint is the abstract view of one endpoint.
type Endpoint struct {
	Queue      []Ptr
	QueuedRecv bool
	RefCount   int
	OwnerCntr  Ptr
	// Buffered mirrors the endpoint's asynchronous message buffer
	// (send_async appends, receives pop FIFO ahead of the sender queue).
	Buffered []BufMsg
}

// State is the abstract kernel state Ψ.
type State struct {
	RootContainer Ptr
	Containers    map[Ptr]Container
	Procs         map[Ptr]Proc
	Threads       map[Ptr]Thread
	Endpoints     map[Ptr]Endpoint

	// AddressSpaces maps each process to its abstract address space —
	// the Ψ.get_address_space(proc) of Listing 1.
	AddressSpaces map[Ptr]map[hw.VirtAddr]pt.MapEntry

	// DMASpaces maps each IOMMU domain to its translation map.
	DMASpaces map[iommu.DomainID]map[hw.VirtAddr]pt.MapEntry

	// Mem is the allocator's abstract state (free/allocated/mapped/
	// merged page sets).
	Mem mem.Snapshot
}

// Abstract is the abstraction function: it builds Ψ from the concrete
// kernel components. It performs deep copies so a retained State is a
// true snapshot.
func Abstract(p *pm.ProcessManager, alloc *mem.Allocator, iom *iommu.IOMMU) State {
	st := State{
		RootContainer: p.RootContainer,
		Containers:    make(map[Ptr]Container, len(p.CntrPerms)),
		Procs:         make(map[Ptr]Proc, len(p.ProcPerms)),
		Threads:       make(map[Ptr]Thread, len(p.ThrdPerms)),
		Endpoints:     make(map[Ptr]Endpoint, len(p.EdptPerms)),
		AddressSpaces: make(map[Ptr]map[hw.VirtAddr]pt.MapEntry, len(p.ProcPerms)),
		DMASpaces:     make(map[iommu.DomainID]map[hw.VirtAddr]pt.MapEntry),
		Mem:           alloc.Snapshot(),
	}
	for ptr, c := range p.CntrPerms {
		ac := Container{
			Parent:       c.Parent,
			Children:     append([]Ptr(nil), c.Children...),
			Depth:        c.Depth,
			Path:         append([]Ptr(nil), c.Path...),
			Subtree:      make(map[Ptr]bool, len(c.Subtree)),
			QuotaPages:   c.QuotaPages,
			UsedPages:    c.UsedPages,
			CPUs:         append([]int(nil), c.CPUs...),
			Procs:        make(map[Ptr]bool, len(c.Procs)),
			OwnedThreads: make(map[Ptr]bool, len(c.OwnedThreads)),
		}
		for s := range c.Subtree {
			ac.Subtree[s] = true
		}
		for s := range c.Procs {
			ac.Procs[s] = true
		}
		for s := range c.OwnedThreads {
			ac.OwnedThreads[s] = true
		}
		st.Containers[ptr] = ac
	}
	for ptr, pr := range p.ProcPerms {
		st.Procs[ptr] = Proc{
			Owner:       pr.Owner,
			Parent:      pr.Parent,
			Children:    append([]Ptr(nil), pr.Children...),
			Threads:     append([]Ptr(nil), pr.Threads...),
			IOMMUDomain: pr.IOMMUDomain,
		}
		st.AddressSpaces[ptr] = pr.PageTable.AddressSpace()
	}
	for ptr, t := range p.ThrdPerms {
		st.Threads[ptr] = Thread{
			OwningProc: t.OwningProc,
			OwningCntr: t.OwningCntr,
			State:      t.State,
			Core:       t.Core,
			Endpoints:  t.Endpoints,
			WaitingOn:  t.IPC.WaitingOn,
		}
	}
	for ptr, e := range p.EdptPerms {
		var buf []BufMsg
		for _, m := range e.Buffer {
			buf = append(buf, BufMsg{HasPage: m.HasPage, Size: m.PageSize, Perm: m.PagePerm})
		}
		st.Endpoints[ptr] = Endpoint{
			Queue:      append([]Ptr(nil), e.Queue...),
			QueuedRecv: e.QueuedRecv,
			RefCount:   e.RefCount,
			OwnerCntr:  e.OwnerCntr,
			Buffered:   buf,
		}
	}
	if iom != nil {
		for id, d := range iom.Domains() {
			st.DMASpaces[id] = d.Table.AddressSpace()
		}
	}
	return st
}

// --- equality helpers (the frame conditions of every specification) ---------

func ptrsEqual(a, b []Ptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func setsEqual(a, b map[Ptr]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ContainerEqual reports full equality of two abstract containers.
func ContainerEqual(a, b Container) bool {
	return a.Parent == b.Parent && a.Depth == b.Depth &&
		a.QuotaPages == b.QuotaPages && a.UsedPages == b.UsedPages &&
		ptrsEqual(a.Children, b.Children) && ptrsEqual(a.Path, b.Path) &&
		setsEqual(a.Subtree, b.Subtree) && intsEqual(a.CPUs, b.CPUs) &&
		setsEqual(a.Procs, b.Procs) && setsEqual(a.OwnedThreads, b.OwnedThreads)
}

// ProcEqual reports full equality of two abstract processes.
func ProcEqual(a, b Proc) bool {
	return a.Owner == b.Owner && a.Parent == b.Parent &&
		a.IOMMUDomain == b.IOMMUDomain &&
		ptrsEqual(a.Children, b.Children) && ptrsEqual(a.Threads, b.Threads)
}

// ThreadEqual reports full equality of two abstract threads.
func ThreadEqual(a, b Thread) bool {
	return a == b
}

func bufsEqual(a, b []BufMsg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EndpointEqual reports full equality of two abstract endpoints.
func EndpointEqual(a, b Endpoint) bool {
	return a.QueuedRecv == b.QueuedRecv && a.RefCount == b.RefCount &&
		a.OwnerCntr == b.OwnerCntr && ptrsEqual(a.Queue, b.Queue) &&
		bufsEqual(a.Buffered, b.Buffered)
}

// SpaceEqual reports equality of two abstract address spaces.
func SpaceEqual(a, b map[hw.VirtAddr]pt.MapEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for va, e := range a {
		if be, ok := b[va]; !ok || be != e {
			return false
		}
	}
	return true
}

// ContainersUnchangedExcept checks the container frame condition: every
// container not listed in except is present in both states and equal.
func ContainersUnchangedExcept(old, new State, except ...Ptr) bool {
	ex := make(map[Ptr]bool, len(except))
	for _, p := range except {
		ex[p] = true
	}
	for ptr, oc := range old.Containers {
		if ex[ptr] {
			continue
		}
		nc, ok := new.Containers[ptr]
		if !ok || !ContainerEqual(oc, nc) {
			return false
		}
	}
	for ptr := range new.Containers {
		if !ex[ptr] {
			if _, ok := old.Containers[ptr]; !ok {
				return false
			}
		}
	}
	return true
}

// ProcsUnchangedExcept checks the process frame condition.
func ProcsUnchangedExcept(old, new State, except ...Ptr) bool {
	ex := make(map[Ptr]bool, len(except))
	for _, p := range except {
		ex[p] = true
	}
	for ptr, op := range old.Procs {
		if ex[ptr] {
			continue
		}
		np, ok := new.Procs[ptr]
		if !ok || !ProcEqual(op, np) {
			return false
		}
	}
	for ptr := range new.Procs {
		if !ex[ptr] {
			if _, ok := old.Procs[ptr]; !ok {
				return false
			}
		}
	}
	return true
}

// ThreadsUnchangedExcept checks the Listing 1 thread frame condition:
// thread_dom() is preserved (modulo except) and every unexcepted thread
// is unchanged.
func ThreadsUnchangedExcept(old, new State, except ...Ptr) bool {
	ex := make(map[Ptr]bool, len(except))
	for _, p := range except {
		ex[p] = true
	}
	for ptr, ot := range old.Threads {
		if ex[ptr] {
			continue
		}
		nt, ok := new.Threads[ptr]
		if !ok || !ThreadEqual(ot, nt) {
			return false
		}
	}
	for ptr := range new.Threads {
		if !ex[ptr] {
			if _, ok := old.Threads[ptr]; !ok {
				return false
			}
		}
	}
	return true
}

// EndpointsUnchangedExcept checks the endpoint frame condition.
func EndpointsUnchangedExcept(old, new State, except ...Ptr) bool {
	ex := make(map[Ptr]bool, len(except))
	for _, p := range except {
		ex[p] = true
	}
	for ptr, oe := range old.Endpoints {
		if ex[ptr] {
			continue
		}
		ne, ok := new.Endpoints[ptr]
		if !ok || !EndpointEqual(oe, ne) {
			return false
		}
	}
	for ptr := range new.Endpoints {
		if !ex[ptr] {
			if _, ok := old.Endpoints[ptr]; !ok {
				return false
			}
		}
	}
	return true
}

// SpacesUnchangedExcept checks the address-space frame condition.
func SpacesUnchangedExcept(old, new State, except ...Ptr) bool {
	ex := make(map[Ptr]bool, len(except))
	for _, p := range except {
		ex[p] = true
	}
	for ptr, os := range old.AddressSpaces {
		if ex[ptr] {
			continue
		}
		ns, ok := new.AddressSpaces[ptr]
		if !ok || !SpaceEqual(os, ns) {
			return false
		}
	}
	return true
}

// Unchanged reports that old and new are observationally identical:
// every object map, address space, and the memory snapshot agree.
func Unchanged(old, new State) bool {
	return ContainersUnchangedExcept(old, new) &&
		ProcsUnchangedExcept(old, new) &&
		ThreadsUnchangedExcept(old, new) &&
		EndpointsUnchangedExcept(old, new) &&
		SpacesUnchangedExcept(old, new) &&
		MemEqual(old.Mem, new.Mem)
}

// MemEqual compares two allocator snapshots.
func MemEqual(a, b mem.Snapshot) bool {
	return a.Free4K.Equal(b.Free4K) && a.Free2M.Equal(b.Free2M) &&
		a.Free1G.Equal(b.Free1G) && a.Allocated.Equal(b.Allocated) &&
		a.Mapped.Equal(b.Mapped) && a.Merged.Equal(b.Merged) &&
		a.Boot.Equal(b.Boot) && a.PCache.Equal(b.PCache)
}

// SortedPtrs returns the keys of a pointer set in ascending order.
func SortedPtrs(s map[Ptr]bool) []Ptr {
	out := make([]Ptr, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
