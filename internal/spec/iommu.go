package spec

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
)

// Specifications of the IOMMU syscalls (§3, §5).

// IommuCreateSpec: on success the caller's process gains a DMA domain
// with an empty translation map; the container is charged one page for
// the domain's translation root; everything else is unchanged.
func IommuCreateSpec(old, new State, tid Ptr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "iommu_create-fail changed state")
	}
	t, okCaller := old.Threads[tid]
	if !okCaller {
		return fmt.Errorf("iommu_create succeeded for unknown thread")
	}
	proc := t.OwningProc
	op, np := old.Procs[proc], new.Procs[proc]
	cntr := op.Owner
	oc, nc := old.Containers[cntr], new.Containers[cntr]
	dom := np.IOMMUDomain
	if err := firstErr(
		check(op.IOMMUDomain == 0, "process already had a domain"),
		check(dom != 0 && uint64(dom) == ret.Vals[0], "domain id not returned"),
		check(len(new.DMASpaces[dom]) == 0, "fresh domain has mappings"),
		check(nc.UsedPages == oc.UsedPages+1, "container charged %d, want 1",
			nc.UsedPages-oc.UsedPages),
	); err != nil {
		return err
	}
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new, proc), "iommu_create changed another process"),
		check(EndpointsUnchangedExcept(old, new), "iommu_create changed an endpoint"),
		check(SpacesUnchangedExcept(old, new), "iommu_create changed an address space"),
		check(ContainersUnchangedExcept(old, new, cntr), "iommu_create changed another container"),
	)
}

// IommuMapSpec: on success the caller's domain gains exactly the
// mapping iova=va -> the frame backing va in the caller's address
// space; the frame's reference count rises by one (the DMA pin);
// the container pays for any new translation-table nodes.
func IommuMapSpec(old, new State, tid Ptr, va hw.VirtAddr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return nil // failure paths validated by WF + fail frames elsewhere
	}
	t := old.Threads[tid]
	proc := t.OwningProc
	dom := old.Procs[proc].IOMMUDomain
	if dom == 0 {
		return fmt.Errorf("iommu_map succeeded without a domain")
	}
	oldD, newD := old.DMASpaces[dom], new.DMASpaces[dom]
	if len(newD) != len(oldD)+1 {
		return fmt.Errorf("iommu_map grew domain by %d", len(newD)-len(oldD))
	}
	e, ok := newD[va]
	if !ok {
		return fmt.Errorf("iommu_map did not map %#x", va)
	}
	ase, ok := old.AddressSpaces[proc][va]
	if !ok || ase.Phys != e.Phys {
		return fmt.Errorf("iommu_map mapped %#x, address space says %#x", e.Phys, ase.Phys)
	}
	for ova, oe := range oldD {
		ne, still := newD[ova]
		if !still || ne != oe {
			return fmt.Errorf("iommu_map changed existing DMA mapping %#x", ova)
		}
	}
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "iommu_map changed a process"),
		check(EndpointsUnchangedExcept(old, new), "iommu_map changed an endpoint"),
		check(SpacesUnchangedExcept(old, new), "iommu_map changed an address space"),
	)
}

// IommuUnmapSpec: on success exactly the mapping at va disappears from
// the caller's domain and the pin is released.
func IommuUnmapSpec(old, new State, tid Ptr, va hw.VirtAddr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return nil
	}
	t := old.Threads[tid]
	dom := old.Procs[t.OwningProc].IOMMUDomain
	oldD, newD := old.DMASpaces[dom], new.DMASpaces[dom]
	if _, was := oldD[va]; !was {
		return fmt.Errorf("iommu_unmap succeeded on unmapped %#x", va)
	}
	if _, still := newD[va]; still {
		return fmt.Errorf("iommu_unmap left %#x mapped", va)
	}
	if len(newD) != len(oldD)-1 {
		return fmt.Errorf("iommu_unmap changed domain size by %d", len(oldD)-len(newD))
	}
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "iommu_unmap changed a process"),
		check(SpacesUnchangedExcept(old, new), "iommu_unmap changed an address space"),
	)
}
