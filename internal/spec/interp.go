package spec

// The pure spec interpreter: it evolves Ψ by applying each syscall's
// specification directly, with no concrete kernel underneath. The
// differential oracle (internal/mck) runs a generated program in lockstep
// on a booted kernel and on an Interp seeded from the boot-time
// Abstract(), then compares Abstract(kernel) against the independently
// evolved Ψ′ after every step — the dynamic analogue of the refinement
// theorem run in both directions at once: the kernel must land exactly
// where the specification says it lands.
//
// Nondeterminism is handled with witnesses: the kernel's returned object
// pointers (fresh pages) and IOMMU domain identifiers are taken from Ret
// and validated for freshness, and ENOMEM is trusted whenever argument
// validation has already passed (allocator exhaustion is below Ψ's
// abstraction line — the failed syscall must still leave Ψ unchanged, or
// roll back to the specified prune transition for mmap).
//
// Scope: the interpreter covers the op set the program generator emits.
// Page grants over IPC (SendArgs.GrantPage, 4 KiB) are modeled — the
// page leaves the sender's space at send and lands in the receiver's at
// delivery. Shared page transfers (SendArgs.SendPage) and IOMMU
// map/unmap are not — the generator never produces them.

import (
	"fmt"
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/kernel"
	"atmosphere/internal/mem"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// Interp holds the independently evolved abstract state Ψ′ plus the ghost
// state the specification needs that Ψ deliberately abstracts away.
type Interp struct {
	St State

	// keys tracks, per process, the non-root page-table node pages that
	// have been materialized (and charged) — encoded as level<<58 | va
	// prefix. Nodes outlive their mappings (munmap leaves them charged),
	// so this is ghost state: it cannot be recomputed from AddressSpaces.
	keys map[Ptr]map[uint64]bool

	// recvSlot records, for a thread blocked receiving, the descriptor
	// slot it asked an incoming endpoint to be installed in (-1: first
	// free) — the abstract image of Thread.IPC.RecvEdptSlot.
	recvSlot map[Ptr]int

	// sendEdpt records, for a thread blocked sending, the endpoint its
	// pending message transfers (0: scalars only) — the abstract image of
	// Thread.IPC.Msg.Endpoint.
	sendEdpt map[Ptr]Ptr

	// sendPage records, for a thread blocked sending, the granted page
	// riding its pending message — the abstract image of
	// Thread.IPC.Msg's page half (grants only; shares are unmodeled).
	sendPage map[Ptr]BufMsg

	// recvVA records, for a thread blocked receiving, where it asked an
	// incoming page to be mapped — the abstract image of
	// Thread.IPC.RecvVA.
	recvVA map[Ptr]hw.VirtAddr
}

// NewInterp builds an interpreter from a boot-time abstract state: no
// thread may be blocked yet (the IPC ghost state starts empty). Physical
// addresses and the allocator snapshot are erased — they are witnesses
// below the specification's abstraction line.
func NewInterp(st State) *Interp {
	ip := &Interp{
		St:       st,
		keys:     make(map[Ptr]map[uint64]bool, len(st.Procs)),
		recvSlot: make(map[Ptr]int),
		sendEdpt: make(map[Ptr]Ptr),
		sendPage: make(map[Ptr]BufMsg),
		recvVA:   make(map[Ptr]hw.VirtAddr),
	}
	ip.St.Mem = mem.Snapshot{}
	for proc, as := range st.AddressSpaces {
		ip.St.AddressSpaces[proc] = erasePhys(as)
		ip.keys[proc] = closureKeys(as)
	}
	for id, as := range st.DMASpaces {
		ip.St.DMASpaces[id] = erasePhys(as)
	}
	return ip
}

func erasePhys(as map[hw.VirtAddr]pt.MapEntry) map[hw.VirtAddr]pt.MapEntry {
	out := make(map[hw.VirtAddr]pt.MapEntry, len(as))
	for va, e := range as {
		e.Phys = 0
		out[va] = e
	}
	return out
}

// nodeKeys returns the ghost keys of the table nodes a mapping of the
// given granularity at va requires: its L3 table always, plus L2 and L1
// tables for the finer granularities.
func nodeKeys(va hw.VirtAddr, size hw.PageSize) []uint64 {
	ks := []uint64{3<<58 | uint64(va)>>39}
	if size == hw.Size1G {
		return ks
	}
	ks = append(ks, 2<<58|uint64(va)>>30)
	if size == hw.Size2M {
		return ks
	}
	return append(ks, 1<<58|uint64(va)>>21)
}

// closureKeys computes the exact node set a standing address space needs —
// what the concrete table holds right after a PruneEmpty.
func closureKeys(as map[hw.VirtAddr]pt.MapEntry) map[uint64]bool {
	out := make(map[uint64]bool)
	for va, e := range as {
		for _, k := range nodeKeys(va, e.Size) {
			out[k] = true
		}
	}
	return out
}

// --- small state helpers ----------------------------------------------------

// caller mirrors kernel.callerThread: the invoking thread must exist and
// be schedulable (not exited, not blocked on an endpoint).
func (ip *Interp) caller(tid Ptr) (Thread, bool) {
	t, ok := ip.St.Threads[tid]
	if !ok {
		return t, false
	}
	if t.State != pm.ThreadRunnable && t.State != pm.ThreadRunning {
		return t, false
	}
	return t, true
}

// fresh reports whether a returned object-pointer witness is usable: it
// must be nonzero and must not collide with any live object.
func (ip *Interp) fresh(p Ptr) bool {
	if p == 0 {
		return false
	}
	if _, ok := ip.St.Containers[p]; ok {
		return false
	}
	if _, ok := ip.St.Procs[p]; ok {
		return false
	}
	if _, ok := ip.St.Threads[p]; ok {
		return false
	}
	if _, ok := ip.St.Endpoints[p]; ok {
		return false
	}
	return true
}

func (ip *Interp) chargeFits(cntr Ptr, n uint64) bool {
	c := ip.St.Containers[cntr]
	return c.UsedPages+n <= c.QuotaPages
}

func (ip *Interp) charge(cntr Ptr, n uint64) {
	c := ip.St.Containers[cntr]
	c.UsedPages += n
	ip.St.Containers[cntr] = c
}

func (ip *Interp) credit(cntr Ptr, n uint64) {
	c, ok := ip.St.Containers[cntr]
	if !ok {
		return
	}
	if c.UsedPages < n {
		// Mirrors the CreditPages underflow panic — surfaced as a
		// divergence by the next Diff instead of crashing the harness.
		c.UsedPages = 0
	} else {
		c.UsedPages -= n
	}
	ip.St.Containers[cntr] = c
}

// decref mirrors pm.EndpointDecRef: the endpoint dies (and its page is
// credited to its owner) when the last reference drops and no thread is
// queued.
func (ip *Interp) decref(ep Ptr) {
	e, ok := ip.St.Endpoints[ep]
	if !ok {
		return
	}
	e.RefCount--
	if e.RefCount > 0 || len(e.Queue) > 0 {
		ip.St.Endpoints[ep] = e
		return
	}
	delete(ip.St.Endpoints, ep)
	ip.credit(e.OwnerCntr, 1)
}

func (ip *Interp) isAncestor(anc, cntr Ptr) bool {
	a, ok := ip.St.Containers[anc]
	return ok && a.Subtree[cntr]
}

// controls mirrors kernel.controlsProcess.
func (ip *Interp) controls(callerProc, targetProc Ptr) bool {
	if callerProc == targetProc {
		return true
	}
	cp := ip.St.Procs[callerProc]
	tp := ip.St.Procs[targetProc]
	if ip.isAncestor(cp.Owner, tp.Owner) {
		return true
	}
	if cp.Owner == tp.Owner {
		for p := tp.Parent; p != 0; {
			if p == callerProc {
				return true
			}
			pp, ok := ip.St.Procs[p]
			if !ok {
				break
			}
			p = pp.Parent
		}
	}
	return false
}

func expect(op string, want kernel.Errno, ret kernel.Ret) error {
	if ret.Errno != want {
		return fmt.Errorf("%s: spec predicts %v, kernel returned %v", op, want, ret.Errno)
	}
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removePtrOnce(s []Ptr, p Ptr) []Ptr {
	for i, v := range s {
		if v == p {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// --- memory -----------------------------------------------------------------

// Mmap applies the mmap specification for count 4 KiB RW pages at va.
func (ip *Interp) Mmap(tid Ptr, va hw.VirtAddr, count int, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("mmap", kernel.EINVAL, ret)
	}
	if count <= 0 || count > 1<<20 {
		return expect("mmap", kernel.EINVAL, ret)
	}
	if va&(hw.PageSize4K-1) != 0 {
		return expect("mmap", kernel.EINVAL, ret)
	}
	proc := t.OwningProc
	owner := ip.St.Procs[proc].Owner
	as := ip.St.AddressSpaces[proc]
	for i := 0; i < count; i++ {
		if spaceCovers(as, va+hw.VirtAddr(i)*hw.PageSize4K) {
			return expect("mmap", kernel.EALREADY, ret)
		}
	}
	// Node pages the mapping would materialize beyond the ghost set.
	kset := ip.keys[proc]
	need := make(map[uint64]bool)
	for i := 0; i < count; i++ {
		for _, k := range nodeKeys(va+hw.VirtAddr(i)*hw.PageSize4K, hw.Size4K) {
			if !kset[k] {
				need[k] = true
			}
		}
	}
	delta := uint64(len(need))
	if ret.Errno == kernel.ENOMEM {
		// Allocator exhaustion after validation: trusted; the rollback
		// ran and pruned every empty node.
		ip.mmapPrune(proc, owner)
		return nil
	}
	if !ip.chargeFits(owner, uint64(count)+delta) {
		if err := expect("mmap", kernel.EQUOTA, ret); err != nil {
			return err
		}
		ip.mmapPrune(proc, owner)
		return nil
	}
	if err := expect("mmap", kernel.OK, ret); err != nil {
		return err
	}
	if ret.Vals[0] != uint64(va) {
		return fmt.Errorf("mmap: returned va %#x, want %#x", ret.Vals[0], uint64(va))
	}
	if as == nil {
		as = make(map[hw.VirtAddr]pt.MapEntry)
		ip.St.AddressSpaces[proc] = as
	}
	for i := 0; i < count; i++ {
		as[va+hw.VirtAddr(i)*hw.PageSize4K] = pt.MapEntry{Size: hw.Size4K, Perm: pt.RW}
	}
	for k := range need {
		kset[k] = true
	}
	ip.charge(owner, uint64(count)+delta)
	return nil
}

// spaceCovers reports whether dst falls inside any standing mapping.
func spaceCovers(as map[hw.VirtAddr]pt.MapEntry, dst hw.VirtAddr) bool {
	if e, ok := as[dst&^(hw.PageSize4K-1)]; ok && e.Size == hw.Size4K {
		return true
	}
	if e, ok := as[dst&^(hw.PageSize2M-1)]; ok && e.Size == hw.Size2M {
		return true
	}
	if e, ok := as[dst&^(hw.PageSize1G-1)]; ok && e.Size == hw.Size1G {
		return true
	}
	return false
}

// mmapPrune applies the failed-mmap rollback transition: the address
// space is untouched, but the rollback's PruneEmpty dropped every node no
// standing mapping needs (including stale ones older munmaps left
// behind), crediting them back to the owner.
func (ip *Interp) mmapPrune(proc, owner Ptr) {
	old := ip.keys[proc]
	now := closureKeys(ip.St.AddressSpaces[proc])
	if len(now) < len(old) {
		ip.credit(owner, uint64(len(old)-len(now)))
	}
	ip.keys[proc] = now
}

// Munmap applies the munmap specification for count 4 KiB pages at va
// (aligned down, as the kernel does).
func (ip *Interp) Munmap(tid Ptr, va hw.VirtAddr, count int, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("munmap", kernel.EINVAL, ret)
	}
	if count <= 0 {
		return expect("munmap", kernel.EINVAL, ret)
	}
	va &^= hw.PageSize4K - 1
	proc := t.OwningProc
	as := ip.St.AddressSpaces[proc]
	for i := 0; i < count; i++ {
		e, ok := as[va+hw.VirtAddr(i)*hw.PageSize4K]
		if !ok || e.Size != hw.Size4K {
			return expect("munmap", kernel.ENOENT, ret)
		}
	}
	if err := expect("munmap", kernel.OK, ret); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		delete(as, va+hw.VirtAddr(i)*hw.PageSize4K)
	}
	// Table nodes stay installed and stay charged.
	ip.credit(ip.St.Procs[proc].Owner, uint64(count))
	return nil
}

// --- containers, processes, threads ----------------------------------------

// NewContainer applies the new_container specification.
func (ip *Interp) NewContainer(tid Ptr, quota uint64, cpus []int, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("new_container", kernel.EINVAL, ret)
	}
	parent := ip.St.Procs[t.OwningProc].Owner
	pc := ip.St.Containers[parent]
	if quota < 1 {
		return expect("new_container", kernel.EQUOTA, ret)
	}
	for _, cpu := range cpus {
		if !containsInt(pc.CPUs, cpu) {
			return expect("new_container", kernel.EINVAL, ret)
		}
	}
	if !ip.chargeFits(parent, quota) {
		return expect("new_container", kernel.EQUOTA, ret)
	}
	if ret.Errno == kernel.ENOMEM {
		return nil
	}
	if err := expect("new_container", kernel.OK, ret); err != nil {
		return err
	}
	child := Ptr(ret.Vals[0])
	if !ip.fresh(child) {
		return fmt.Errorf("new_container: stale witness %#x", child)
	}
	ip.charge(parent, quota)
	pc = ip.St.Containers[parent]
	pc.Children = append(pc.Children, child)
	ip.St.Containers[parent] = pc
	cc := Container{
		Parent:       parent,
		Depth:        pc.Depth + 1,
		Path:         append(append([]Ptr(nil), pc.Path...), parent),
		Subtree:      make(map[Ptr]bool),
		QuotaPages:   quota,
		UsedPages:    1,
		CPUs:         append([]int(nil), cpus...),
		Procs:        make(map[Ptr]bool),
		OwnedThreads: make(map[Ptr]bool),
	}
	for _, anc := range cc.Path {
		ac := ip.St.Containers[anc]
		ac.Subtree[child] = true
		ip.St.Containers[anc] = ac
	}
	ip.St.Containers[child] = cc
	return nil
}

// newProcessIn is the shared new_proc / new_proc_in creation transition.
func (ip *Interp) newProcessIn(op string, cntr, parentProc Ptr, ret kernel.Ret) error {
	if !ip.chargeFits(cntr, 2) {
		return expect(op, kernel.EQUOTA, ret)
	}
	if ret.Errno == kernel.ENOMEM {
		return nil
	}
	if err := expect(op, kernel.OK, ret); err != nil {
		return err
	}
	proc := Ptr(ret.Vals[0])
	if !ip.fresh(proc) {
		return fmt.Errorf("%s: stale witness %#x", op, proc)
	}
	ip.charge(cntr, 2)
	ip.St.Procs[proc] = Proc{Owner: cntr, Parent: parentProc}
	c := ip.St.Containers[cntr]
	c.Procs[proc] = true
	ip.St.Containers[cntr] = c
	if parentProc != 0 {
		pp := ip.St.Procs[parentProc]
		pp.Children = append(pp.Children, proc)
		ip.St.Procs[parentProc] = pp
	}
	ip.St.AddressSpaces[proc] = make(map[hw.VirtAddr]pt.MapEntry)
	ip.keys[proc] = make(map[uint64]bool)
	return nil
}

// NewProcess applies the new_proc specification (child of the caller's
// process, in the caller's container).
func (ip *Interp) NewProcess(tid Ptr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("new_proc", kernel.EINVAL, ret)
	}
	return ip.newProcessIn("new_proc", ip.St.Procs[t.OwningProc].Owner, t.OwningProc, ret)
}

// NewProcessIn applies the new_proc_in specification (first process of a
// descendant container; no process parent).
func (ip *Interp) NewProcessIn(tid Ptr, cntr Ptr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("new_proc_in", kernel.EINVAL, ret)
	}
	if _, ok := ip.St.Containers[cntr]; !ok {
		return expect("new_proc_in", kernel.ENOENT, ret)
	}
	if !ip.isAncestor(ip.St.Procs[t.OwningProc].Owner, cntr) {
		return expect("new_proc_in", kernel.EPERM, ret)
	}
	return ip.newProcessIn("new_proc_in", cntr, 0, ret)
}

// NewThreadIn applies the new_thread_in specification.
func (ip *Interp) NewThreadIn(tid Ptr, proc Ptr, onCore int, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("new_thread_in", kernel.EINVAL, ret)
	}
	target, ok := ip.St.Procs[proc]
	if !ok {
		return expect("new_thread_in", kernel.ENOENT, ret)
	}
	if !ip.controls(t.OwningProc, proc) {
		return expect("new_thread_in", kernel.EPERM, ret)
	}
	cn := ip.St.Containers[target.Owner]
	if !containsInt(cn.CPUs, onCore) {
		return expect("new_thread_in", kernel.EINVAL, ret)
	}
	if !ip.chargeFits(target.Owner, 1) {
		return expect("new_thread_in", kernel.EQUOTA, ret)
	}
	if ret.Errno == kernel.ENOMEM {
		return nil
	}
	if err := expect("new_thread_in", kernel.OK, ret); err != nil {
		return err
	}
	th := Ptr(ret.Vals[0])
	if !ip.fresh(th) {
		return fmt.Errorf("new_thread_in: stale witness %#x", th)
	}
	ip.charge(target.Owner, 1)
	ip.St.Threads[th] = Thread{
		OwningProc: proc,
		OwningCntr: target.Owner,
		State:      pm.ThreadRunnable,
		Core:       onCore,
	}
	target = ip.St.Procs[proc]
	target.Threads = append(target.Threads, th)
	ip.St.Procs[proc] = target
	cn = ip.St.Containers[target.Owner]
	cn.OwnedThreads[th] = true
	ip.St.Containers[target.Owner] = cn
	return nil
}

// ExitThread applies the exit_thread specification.
func (ip *Interp) ExitThread(tid Ptr, ret kernel.Ret) error {
	if _, okc := ip.caller(tid); !okc {
		return expect("exit_thread", kernel.EINVAL, ret)
	}
	if err := expect("exit_thread", kernel.OK, ret); err != nil {
		return err
	}
	ip.freeThread(tid)
	return nil
}

// freeThread mirrors pm.FreeThread: descriptor references drop in slot
// order (endpoints may die, crediting their owners), then the thread
// leaves its process and container and its page is credited back.
func (ip *Interp) freeThread(th Ptr) {
	t, ok := ip.St.Threads[th]
	if !ok {
		return
	}
	for i := 0; i < pm.MaxEndpoints; i++ {
		ep := t.Endpoints[i]
		if ep == 0 {
			continue
		}
		t.Endpoints[i] = 0
		ip.St.Threads[th] = t
		ip.decref(ep)
	}
	p := ip.St.Procs[t.OwningProc]
	p.Threads = removePtrOnce(p.Threads, th)
	ip.St.Procs[t.OwningProc] = p
	c := ip.St.Containers[t.OwningCntr]
	delete(c.OwnedThreads, th)
	ip.St.Containers[t.OwningCntr] = c
	delete(ip.St.Threads, th)
	ip.credit(t.OwningCntr, 1)
	delete(ip.recvSlot, th)
	delete(ip.sendEdpt, th)
	delete(ip.sendPage, th)
	delete(ip.recvVA, th)
}

// --- endpoints and IPC ------------------------------------------------------

// NewEndpoint applies the new_endpoint specification.
func (ip *Interp) NewEndpoint(tid Ptr, slot int, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("new_endpoint", kernel.EINVAL, ret)
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] != 0 {
		return expect("new_endpoint", kernel.EINVAL, ret)
	}
	cntr := ip.St.Procs[t.OwningProc].Owner
	if !ip.chargeFits(cntr, 1) {
		return expect("new_endpoint", kernel.EQUOTA, ret)
	}
	if ret.Errno == kernel.ENOMEM {
		return nil
	}
	if err := expect("new_endpoint", kernel.OK, ret); err != nil {
		return err
	}
	ep := Ptr(ret.Vals[0])
	if !ip.fresh(ep) {
		return fmt.Errorf("new_endpoint: stale witness %#x", ep)
	}
	ip.charge(cntr, 1)
	ip.St.Endpoints[ep] = Endpoint{RefCount: 1, OwnerCntr: cntr}
	t.Endpoints[slot] = ep
	ip.St.Threads[tid] = t
	return nil
}

// Adopt mirrors the harness's boot-style channel setup: a freshly
// created thread receives a descriptor to the shared rendezvous
// endpoint in slot 0, taking a reference. Not a syscall — the
// differential runner applies the same installation to both sides so
// generated programs can actually rendezvous.
func (ip *Interp) Adopt(tid, ep Ptr) {
	e, alive := ip.St.Endpoints[ep]
	if !alive {
		return
	}
	t, ok := ip.St.Threads[tid]
	if !ok || t.Endpoints[0] != 0 {
		return
	}
	t.Endpoints[0] = ep
	ip.St.Threads[tid] = t
	e.RefCount++
	ip.St.Endpoints[ep] = e
}

// CloseEndpoint applies the close_endpoint specification.
func (ip *Interp) CloseEndpoint(tid Ptr, slot int, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("close_endpoint", kernel.EINVAL, ret)
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == 0 {
		return expect("close_endpoint", kernel.EINVAL, ret)
	}
	if err := expect("close_endpoint", kernel.OK, ret); err != nil {
		return err
	}
	ep := t.Endpoints[slot]
	t.Endpoints[slot] = 0
	ip.St.Threads[tid] = t
	ip.decref(ep)
	return nil
}

// resolveGrant mirrors the grant half of kernel.resolveMsg for the
// 4 KiB mappings generated programs grant: the page leaves the sender's
// address space and its quota at send time; the reference riding the
// ledger's InFlight container is below the abstraction line.
func (ip *Interp) resolveGrant(op string, proc Ptr, va hw.VirtAddr, ret kernel.Ret) (BufMsg, error, bool) {
	as := ip.St.AddressSpaces[proc]
	base := va &^ (hw.PageSize4K - 1)
	e, ok := as[base]
	if !ok || e.Size != hw.Size4K {
		return BufMsg{}, expect(op, kernel.ENOENT, ret), false
	}
	delete(as, base)
	ip.credit(ip.St.Procs[proc].Owner, 1)
	return BufMsg{HasPage: true, Size: hw.Size4K, Perm: e.Perm}, nil, true
}

// deliverPage mirrors the page half of kernel.deliver, with the
// kernel's exact failure order: the page count is charged first
// (EQUOTA), then the mapping is validated (EINVAL), then any
// materialized table nodes are charged (EQUOTA, rolled back with the
// same prune the failed-mmap transition runs). A failed delivery drops
// the message's page reference below the abstraction line.
func (ip *Interp) deliverPage(proc Ptr, va hw.VirtAddr, m BufMsg) kernel.Errno {
	owner := ip.St.Procs[proc].Owner
	pages := m.Size.Bytes() / hw.PageSize4K
	if !ip.chargeFits(owner, pages) {
		return kernel.EQUOTA
	}
	as := ip.St.AddressSpaces[proc]
	if va&hw.VirtAddr(m.Size.Bytes()-1) != 0 || spaceCovers(as, va) {
		return kernel.EINVAL
	}
	kset := ip.keys[proc]
	need := make(map[uint64]bool)
	for _, k := range nodeKeys(va, m.Size) {
		if !kset[k] {
			need[k] = true
		}
	}
	if !ip.chargeFits(owner, pages+uint64(len(need))) {
		ip.mmapPrune(proc, owner)
		return kernel.EQUOTA
	}
	if as == nil {
		as = make(map[hw.VirtAddr]pt.MapEntry)
		ip.St.AddressSpaces[proc] = as
	}
	as[va] = pt.MapEntry{Size: m.Size, Perm: m.Perm}
	for k := range need {
		kset[k] = true
	}
	ip.charge(owner, pages+uint64(len(need)))
	return kernel.OK
}

// deliverTo mirrors kernel.deliver for a woken receiver: the page lands
// first (its failure voids the endpoint install — the kernel returns
// early), then the endpoint descriptor. The woken receiver's errno is
// below the abstraction line (it surfaces through its own syscall's
// return, which the harness does not observe for a wake).
func (ip *Interp) deliverTo(rptr Ptr, msg BufMsg, xfer Ptr) {
	if msg.HasPage {
		rt := ip.St.Threads[rptr]
		if ip.deliverPage(rt.OwningProc, ip.recvVA[rptr], msg) != kernel.OK {
			return
		}
	}
	ip.installEdpt(rptr, ip.recvSlot[rptr], xfer)
}

// resolveXfer mirrors the endpoint half of kernel.resolveMsg: validates
// the transfer slot and reads the endpoint it names (0 when no transfer
// was requested).
func (ip *Interp) resolveXfer(op string, t Thread, sendEdpt bool, xferSlot int, ret kernel.Ret) (Ptr, error, bool) {
	if !sendEdpt {
		return 0, nil, true
	}
	if xferSlot < 0 || xferSlot >= pm.MaxEndpoints {
		return 0, expect(op, kernel.EINVAL, ret), false
	}
	xfer := t.Endpoints[xferSlot]
	if xfer == 0 {
		return 0, expect(op, kernel.ENOENT, ret), false
	}
	return xfer, nil, true
}

// installEdpt mirrors the endpoint half of kernel.deliver: the incoming
// descriptor lands in the receiver's requested slot (-1: first free),
// taking a reference. A zero xfer is a scalar-only message (trivially
// delivered). Returns false when no usable slot exists — the kernel
// reports ErrEndpointDead to whichever side observes the delivery.
func (ip *Interp) installEdpt(rptr Ptr, reqSlot int, xfer Ptr) bool {
	if xfer == 0 {
		return true
	}
	rt := ip.St.Threads[rptr]
	slot := reqSlot
	if slot < 0 {
		for i := 0; i < pm.MaxEndpoints; i++ {
			if rt.Endpoints[i] == 0 {
				slot = i
				break
			}
		}
	}
	if slot < 0 || slot >= pm.MaxEndpoints || rt.Endpoints[slot] != 0 {
		return false
	}
	rt.Endpoints[slot] = xfer
	ip.St.Threads[rptr] = rt
	e := ip.St.Endpoints[xfer]
	e.RefCount++
	ip.St.Endpoints[xfer] = e
	return true
}

// wake mirrors pm.Wake: the thread becomes runnable.
func (ip *Interp) wake(th Ptr) {
	t := ip.St.Threads[th]
	t.State = pm.ThreadRunnable
	ip.St.Threads[th] = t
}

// Send applies the send specification: scalar registers plus an optional
// endpoint transfer from the caller's xferSlot and an optional page
// grant of the 4 KiB mapping at grantVA (0: no grant).
func (ip *Interp) Send(tid Ptr, slot int, sendEdpt bool, xferSlot int, grantVA hw.VirtAddr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("send", kernel.EINVAL, ret)
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == 0 {
		return expect("send", kernel.EINVAL, ret)
	}
	ep := t.Endpoints[slot]
	var msg BufMsg
	if grantVA != 0 {
		m, err, okg := ip.resolveGrant("send", t.OwningProc, grantVA, ret)
		if !okg {
			return err
		}
		msg = m
	}
	xfer, err, okx := ip.resolveXfer("send", t, sendEdpt, xferSlot, ret)
	if !okx {
		// The grant stands: the kernel resolves the page half first, and
		// a failed endpoint half drops the in-flight message — the
		// granted page is simply gone.
		return err
	}
	e := ip.St.Endpoints[ep]
	if e.QueuedRecv && len(e.Queue) > 0 {
		// Rendezvous: the head receiver is woken; a failed page or
		// endpoint delivery is reported to the receiver, not the sender.
		if err := expect("send", kernel.OK, ret); err != nil {
			return err
		}
		rptr := e.Queue[0]
		e.Queue = e.Queue[1:]
		ip.St.Endpoints[ep] = e
		ip.deliverTo(rptr, msg, xfer)
		rt := ip.St.Threads[rptr]
		rt.WaitingOn = 0
		ip.St.Threads[rptr] = rt
		ip.wake(rptr)
		delete(ip.recvSlot, rptr)
		delete(ip.recvVA, rptr)
		return nil
	}
	if err := expect("send", kernel.EWOULDBLOCK, ret); err != nil {
		return err
	}
	t.State = pm.ThreadBlockedSend
	t.WaitingOn = ep
	ip.St.Threads[tid] = t
	e.QueuedRecv = false
	e.Queue = append(e.Queue, tid)
	ip.St.Endpoints[ep] = e
	if xfer != 0 {
		ip.sendEdpt[tid] = xfer
	}
	if msg.HasPage {
		ip.sendPage[tid] = msg
	}
	return nil
}

// SendAsync applies the send_async specification: never blocks — a
// parked receiver gets an ordinary rendezvous delivery, otherwise the
// message joins the endpoint's bounded buffer (EAGAIN when full,
// refused before the grant resolves). Endpoint transfers are not part
// of send_async's surface (the kernel rejects them with EINVAL).
func (ip *Interp) SendAsync(tid Ptr, slot int, grantVA hw.VirtAddr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("send_async", kernel.EINVAL, ret)
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == 0 {
		return expect("send_async", kernel.EINVAL, ret)
	}
	ep := t.Endpoints[slot]
	e := ip.St.Endpoints[ep]
	rendezvous := e.QueuedRecv && len(e.Queue) > 0
	if !rendezvous && len(e.Buffered) >= pm.MaxEndpointBuffer {
		return expect("send_async", kernel.EAGAIN, ret)
	}
	var msg BufMsg
	if grantVA != 0 {
		m, err, okg := ip.resolveGrant("send_async", t.OwningProc, grantVA, ret)
		if !okg {
			return err
		}
		msg = m
	}
	if err := expect("send_async", kernel.OK, ret); err != nil {
		return err
	}
	if rendezvous {
		rptr := e.Queue[0]
		e.Queue = e.Queue[1:]
		ip.St.Endpoints[ep] = e
		ip.deliverTo(rptr, msg, 0)
		rt := ip.St.Threads[rptr]
		rt.WaitingOn = 0
		ip.St.Threads[rptr] = rt
		ip.wake(rptr)
		delete(ip.recvSlot, rptr)
		delete(ip.recvVA, rptr)
		return nil
	}
	e.Buffered = append(e.Buffered, msg)
	ip.St.Endpoints[ep] = e
	return nil
}

// Recv applies the recv specification; reqSlot is where an incoming
// endpoint descriptor should land (-1: first free) and recvVA is where
// an incoming page should be mapped.
func (ip *Interp) Recv(tid Ptr, slot int, reqSlot int, recvVA hw.VirtAddr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("recv", kernel.EINVAL, ret)
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == 0 {
		return expect("recv", kernel.EINVAL, ret)
	}
	ep := t.Endpoints[slot]
	e := ip.St.Endpoints[ep]
	if len(e.Buffered) > 0 {
		// Asynchronously buffered messages drain ahead of any blocked
		// senders: no partner to wake, just the buffer pop. A granted
		// page lands in the caller's space; its delivery failure is the
		// caller's errno.
		m := e.Buffered[0]
		e.Buffered = e.Buffered[1:]
		ip.St.Endpoints[ep] = e
		if m.HasPage {
			if errno := ip.deliverPage(t.OwningProc, recvVA, m); errno != kernel.OK {
				return expect("recv", errno, ret)
			}
		}
		return expect("recv", kernel.OK, ret)
	}
	if !e.QueuedRecv && len(e.Queue) > 0 {
		// Rendezvous: take the head sender's pending message; the sender
		// is woken cleanly either way, a failed page delivery or install
		// surfaces as the receiver's errno. The page lands before the
		// endpoint descriptor, and its failure voids the install.
		sptr := e.Queue[0]
		e.Queue = e.Queue[1:]
		ip.St.Endpoints[ep] = e
		xfer := ip.sendEdpt[sptr]
		delete(ip.sendEdpt, sptr)
		page, hadPage := ip.sendPage[sptr]
		delete(ip.sendPage, sptr)
		st := ip.St.Threads[sptr]
		st.WaitingOn = 0
		ip.St.Threads[sptr] = st
		ip.wake(sptr)
		if hadPage {
			if errno := ip.deliverPage(t.OwningProc, recvVA, page); errno != kernel.OK {
				return expect("recv", errno, ret)
			}
		}
		installed := ip.installEdpt(tid, reqSlot, xfer)
		if !installed {
			return expect("recv", kernel.EDEADOBJ, ret)
		}
		return expect("recv", kernel.OK, ret)
	}
	if err := expect("recv", kernel.EWOULDBLOCK, ret); err != nil {
		return err
	}
	t.State = pm.ThreadBlockedRecv
	t.WaitingOn = ep
	ip.St.Threads[tid] = t
	e.QueuedRecv = true
	e.Queue = append(e.Queue, tid)
	ip.St.Endpoints[ep] = e
	ip.recvSlot[tid] = reqSlot
	ip.recvVA[tid] = recvVA
	return nil
}

// Call applies the call specification: it requires a server already
// blocked receiving, delivers (including an optional page grant), and
// leaves the caller blocked awaiting the reply on the same endpoint.
func (ip *Interp) Call(tid Ptr, slot int, sendEdpt bool, xferSlot int, grantVA hw.VirtAddr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("call", kernel.EINVAL, ret)
	}
	if slot < 0 || slot >= pm.MaxEndpoints || t.Endpoints[slot] == 0 {
		return expect("call", kernel.EINVAL, ret)
	}
	ep := t.Endpoints[slot]
	e := ip.St.Endpoints[ep]
	if !e.QueuedRecv || len(e.Queue) == 0 {
		return expect("call", kernel.EWOULDBLOCK, ret)
	}
	var msg BufMsg
	if grantVA != 0 {
		m, err, okg := ip.resolveGrant("call", t.OwningProc, grantVA, ret)
		if !okg {
			return err
		}
		msg = m
	}
	xfer, err, okx := ip.resolveXfer("call", t, sendEdpt, xferSlot, ret)
	if !okx {
		return err // the grant stands, as in Send
	}
	// The fastpath's "blocked awaiting reply" is reported EWOULDBLOCK.
	if err := expect("call", kernel.EWOULDBLOCK, ret); err != nil {
		return err
	}
	server := e.Queue[0]
	e.Queue = e.Queue[1:]
	// Write the pop back before deliverTo: when the transferred endpoint
	// is ep itself, installEdpt bumps ip.St.Endpoints[ep] and a stale
	// local copy written afterwards would lose that reference.
	ip.St.Endpoints[ep] = e
	ip.deliverTo(server, msg, xfer)
	sst := ip.St.Threads[server]
	sst.WaitingOn = 0
	ip.St.Threads[server] = sst
	ip.wake(server)
	delete(ip.recvSlot, server)
	delete(ip.recvVA, server)
	t = ip.St.Threads[tid]
	t.State = pm.ThreadBlockedRecv
	t.WaitingOn = ep
	ip.St.Threads[tid] = t
	e = ip.St.Endpoints[ep]
	e.QueuedRecv = true
	e.Queue = append(e.Queue, tid)
	ip.St.Endpoints[ep] = e
	ip.recvSlot[tid] = -1
	delete(ip.recvVA, tid)
	return nil
}

// Yield applies the yield specification: scheduling only, Ψ unchanged.
func (ip *Interp) Yield(tid Ptr, ret kernel.Ret) error {
	if _, okc := ip.caller(tid); !okc {
		return expect("yield", kernel.EINVAL, ret)
	}
	return expect("yield", kernel.OK, ret)
}

// --- revocation -------------------------------------------------------------

// unlink mirrors kernel.unlinkFromEndpoint for a blocked thread being
// reaped: it leaves the queue it waits on and its pending message dies
// with it.
func (ip *Interp) unlink(th Ptr) {
	t := ip.St.Threads[th]
	if t.WaitingOn != 0 {
		if e, ok := ip.St.Endpoints[t.WaitingOn]; ok {
			e.Queue = removePtrOnce(e.Queue, th)
			ip.St.Endpoints[t.WaitingOn] = e
		}
		t.WaitingOn = 0
		ip.St.Threads[th] = t
	}
	delete(ip.sendEdpt, th)
	delete(ip.recvSlot, th)
	// A blocked sender's granted page dies with the message
	// (kernel.unlinkFromEndpoint drops the pending Msg).
	delete(ip.sendPage, th)
	delete(ip.recvVA, th)
}

// reapThread mirrors kernel.reapThread.
func (ip *Interp) reapThread(th Ptr) {
	t := ip.St.Threads[th]
	if t.State == pm.ThreadBlockedSend || t.State == pm.ThreadBlockedRecv {
		ip.unlink(th)
	}
	ip.freeThread(th)
}

// unmapAllProc mirrors kernel.unmapAll: every mapping is released and its
// pages credited; table nodes stay charged until the process dies.
func (ip *Interp) unmapAllProc(v Ptr) {
	as := ip.St.AddressSpaces[v]
	var total uint64
	for _, e := range as {
		total += e.Size.Bytes() / hw.PageSize4K
	}
	ip.St.AddressSpaces[v] = make(map[hw.VirtAddr]pt.MapEntry)
	ip.credit(ip.St.Procs[v].Owner, total)
}

// destroyDomainProc mirrors kernel.destroyIOMMUDomain for the only shape
// the generator produces: an empty domain whose table is a bare root.
func (ip *Interp) destroyDomainProc(v Ptr) {
	p := ip.St.Procs[v]
	if p.IOMMUDomain == 0 {
		return
	}
	delete(ip.St.DMASpaces, p.IOMMUDomain)
	ip.credit(p.Owner, 1)
	p.IOMMUDomain = 0
	ip.St.Procs[v] = p
}

// freeProcess mirrors pm.FreeProcess: table nodes (ghost keys plus the
// root) and the object page are credited, the process leaves its parent
// and container.
func (ip *Interp) freeProcess(v Ptr) {
	p, ok := ip.St.Procs[v]
	if !ok {
		return
	}
	ip.credit(p.Owner, uint64(len(ip.keys[v]))+1)
	if p.Parent != 0 {
		if pp, okp := ip.St.Procs[p.Parent]; okp {
			pp.Children = removePtrOnce(pp.Children, v)
			ip.St.Procs[p.Parent] = pp
		}
	}
	c := ip.St.Containers[p.Owner]
	delete(c.Procs, v)
	ip.St.Containers[p.Owner] = c
	delete(ip.St.Procs, v)
	delete(ip.St.AddressSpaces, v)
	delete(ip.keys, v)
	ip.credit(p.Owner, 1)
}

// procSubtree mirrors kernel.processSubtree (preorder).
func (ip *Interp) procSubtree(proc Ptr) []Ptr {
	var out []Ptr
	var rec func(p Ptr)
	rec = func(p Ptr) {
		out = append(out, p)
		for _, ch := range ip.St.Procs[p].Children {
			rec(ch)
		}
	}
	rec(proc)
	return out
}

// KillProcess applies the kill_proc specification.
func (ip *Interp) KillProcess(tid Ptr, proc Ptr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("kill_proc", kernel.EINVAL, ret)
	}
	if _, ok := ip.St.Procs[proc]; !ok {
		return expect("kill_proc", kernel.ENOENT, ret)
	}
	if proc == t.OwningProc || !ip.controls(t.OwningProc, proc) {
		return expect("kill_proc", kernel.EPERM, ret)
	}
	if err := expect("kill_proc", kernel.OK, ret); err != nil {
		return err
	}
	victims := ip.procSubtree(proc)
	for _, v := range victims {
		for _, th := range append([]Ptr(nil), ip.St.Procs[v].Threads...) {
			ip.reapThread(th)
		}
		ip.unmapAllProc(v)
		ip.destroyDomainProc(v)
	}
	for i := len(victims) - 1; i >= 0; i-- {
		ip.freeProcess(victims[i])
	}
	return nil
}

// destroyEndpointDying mirrors kernel.destroyEndpoint for an endpoint
// owned by a dying container: outside waiters wake with EDEADOBJ, dying
// waiters stay blocked for the reaper, every descriptor naming the
// endpoint is revoked (in any thread, dying or not), pending send
// transfers of it are scrubbed, and the endpoint's page returns to its
// (dying) owner.
func (ip *Interp) destroyEndpointDying(eptr Ptr, killed map[Ptr]bool) {
	e := ip.St.Endpoints[eptr]
	for _, q := range e.Queue {
		qt := ip.St.Threads[q]
		qt.WaitingOn = 0
		if !killed[qt.OwningCntr] {
			qt.State = pm.ThreadRunnable
		}
		ip.St.Threads[q] = qt
		delete(ip.sendEdpt, q)
		delete(ip.recvSlot, q)
		delete(ip.sendPage, q)
		delete(ip.recvVA, q)
	}
	for _, th := range sortedPtrKeys(ip.St.Threads) {
		tt := ip.St.Threads[th]
		changed := false
		for i := 0; i < pm.MaxEndpoints; i++ {
			if tt.Endpoints[i] == eptr {
				tt.Endpoints[i] = 0
				changed = true
			}
		}
		if changed {
			ip.St.Threads[th] = tt
		}
	}
	for th, x := range ip.sendEdpt {
		if x == eptr {
			delete(ip.sendEdpt, th)
		}
	}
	delete(ip.St.Endpoints, eptr)
	ip.credit(e.OwnerCntr, 1)
}

// freeProcessTree mirrors kernel.freeProcessTree (children first).
func (ip *Interp) freeProcessTree(v Ptr) {
	p, ok := ip.St.Procs[v]
	if !ok {
		return
	}
	for _, ch := range append([]Ptr(nil), p.Children...) {
		ip.freeProcessTree(ch)
	}
	ip.freeProcess(v)
}

// KillContainer applies the kill_container specification: the paper's
// terminate-and-harvest revocation (§3).
func (ip *Interp) KillContainer(tid Ptr, cntr Ptr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("kill_container", kernel.EINVAL, ret)
	}
	c, ok := ip.St.Containers[cntr]
	if !ok {
		return expect("kill_container", kernel.ENOENT, ret)
	}
	if !ip.isAncestor(ip.St.Procs[t.OwningProc].Owner, cntr) {
		return expect("kill_container", kernel.EPERM, ret)
	}
	if err := expect("kill_container", kernel.OK, ret); err != nil {
		return err
	}
	killed := map[Ptr]bool{cntr: true}
	for s := range c.Subtree {
		killed[s] = true
	}
	// 1. Destroy endpoints owned by the dying subtree, in pointer order.
	for _, eptr := range sortedPtrKeys(ip.St.Endpoints) {
		e, still := ip.St.Endpoints[eptr]
		if !still || !killed[e.OwnerCntr] {
			continue
		}
		ip.destroyEndpointDying(eptr, killed)
	}
	// 2. Reap every process of the subtree, then free them children-first.
	var procs []Ptr
	for v, p := range ip.St.Procs {
		if killed[p.Owner] {
			procs = append(procs, v)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, v := range procs {
		for _, th := range append([]Ptr(nil), ip.St.Procs[v].Threads...) {
			ip.reapThread(th)
		}
		ip.unmapAllProc(v)
		ip.destroyDomainProc(v)
	}
	for _, v := range procs {
		ip.freeProcessTree(v)
	}
	// 3. Unlink the containers deepest-first so parents empty out.
	var order []Ptr
	for kc := range killed {
		order = append(order, kc)
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := ip.St.Containers[order[i]], ip.St.Containers[order[j]]
		if ci.Depth != cj.Depth {
			return ci.Depth > cj.Depth
		}
		return order[i] < order[j]
	})
	for _, kc := range order {
		kcc := ip.St.Containers[kc]
		if pc, okp := ip.St.Containers[kcc.Parent]; okp {
			pc.Children = removePtrOnce(pc.Children, kc)
			ip.St.Containers[kcc.Parent] = pc
		}
		for _, anc := range kcc.Path {
			if ac, oka := ip.St.Containers[anc]; oka {
				delete(ac.Subtree, kc)
				ip.St.Containers[anc] = ac
			}
		}
		delete(ip.St.Containers, kc)
		ip.credit(kcc.Parent, kcc.QuotaPages)
	}
	return nil
}

// IommuCreate applies the iommu_create specification.
func (ip *Interp) IommuCreate(tid Ptr, ret kernel.Ret) error {
	t, okc := ip.caller(tid)
	if !okc {
		return expect("iommu_create", kernel.EINVAL, ret)
	}
	p := ip.St.Procs[t.OwningProc]
	if p.IOMMUDomain != 0 {
		return expect("iommu_create", kernel.EALREADY, ret)
	}
	if !ip.chargeFits(p.Owner, 1) {
		return expect("iommu_create", kernel.EQUOTA, ret)
	}
	if ret.Errno == kernel.ENOMEM {
		return nil
	}
	if err := expect("iommu_create", kernel.OK, ret); err != nil {
		return err
	}
	id := iommu.DomainID(ret.Vals[0])
	if id == 0 {
		return fmt.Errorf("iommu_create: zero domain witness")
	}
	if _, exists := ip.St.DMASpaces[id]; exists {
		return fmt.Errorf("iommu_create: stale domain witness %d", id)
	}
	ip.charge(p.Owner, 1)
	p.IOMMUDomain = id
	ip.St.Procs[t.OwningProc] = p
	ip.St.DMASpaces[id] = make(map[hw.VirtAddr]pt.MapEntry)
	return nil
}

// --- the differential oracle ------------------------------------------------

// normState folds the scheduler's Runnable/Running distinction, which is
// below the specification's abstraction line (PickNext is not specified).
func normState(s pm.ThreadState) pm.ThreadState {
	if s == pm.ThreadRunning {
		return pm.ThreadRunnable
	}
	return s
}

func sortedPtrKeys[V any](m map[Ptr]V) []Ptr {
	out := make([]Ptr, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diff compares the abstract state of the concrete kernel against the
// interpreter's Ψ′ and reports the first field-level divergence in a
// deterministic (sorted) order. Physical addresses, the allocator
// snapshot, and the Runnable/Running distinction are outside the
// comparison — they are witnesses below the specification.
func (ip *Interp) Diff(k State) error {
	s := &ip.St
	if k.RootContainer != s.RootContainer {
		return fmt.Errorf("root container: kernel %#x, spec %#x", k.RootContainer, s.RootContainer)
	}
	for _, p := range sortedPtrKeys(s.Containers) {
		sc := s.Containers[p]
		kc, ok := k.Containers[p]
		if !ok {
			return fmt.Errorf("container %#x: missing in kernel", p)
		}
		switch {
		case kc.Parent != sc.Parent:
			return fmt.Errorf("container %#x: parent kernel=%#x spec=%#x", p, kc.Parent, sc.Parent)
		case kc.Depth != sc.Depth:
			return fmt.Errorf("container %#x: depth kernel=%d spec=%d", p, kc.Depth, sc.Depth)
		case kc.QuotaPages != sc.QuotaPages:
			return fmt.Errorf("container %#x: quota_pages kernel=%d spec=%d", p, kc.QuotaPages, sc.QuotaPages)
		case kc.UsedPages != sc.UsedPages:
			return fmt.Errorf("container %#x: used_pages kernel=%d spec=%d", p, kc.UsedPages, sc.UsedPages)
		case !ptrsEqual(kc.Children, sc.Children):
			return fmt.Errorf("container %#x: children kernel=%v spec=%v", p, kc.Children, sc.Children)
		case !ptrsEqual(kc.Path, sc.Path):
			return fmt.Errorf("container %#x: path kernel=%v spec=%v", p, kc.Path, sc.Path)
		case !setsEqual(kc.Subtree, sc.Subtree):
			return fmt.Errorf("container %#x: subtree kernel=%v spec=%v", p, SortedPtrs(kc.Subtree), SortedPtrs(sc.Subtree))
		case !intsEqual(kc.CPUs, sc.CPUs):
			return fmt.Errorf("container %#x: cpus kernel=%v spec=%v", p, kc.CPUs, sc.CPUs)
		case !setsEqual(kc.Procs, sc.Procs):
			return fmt.Errorf("container %#x: procs kernel=%v spec=%v", p, SortedPtrs(kc.Procs), SortedPtrs(sc.Procs))
		case !setsEqual(kc.OwnedThreads, sc.OwnedThreads):
			return fmt.Errorf("container %#x: owned_threads kernel=%v spec=%v", p, SortedPtrs(kc.OwnedThreads), SortedPtrs(sc.OwnedThreads))
		}
	}
	for _, p := range sortedPtrKeys(k.Containers) {
		if _, ok := s.Containers[p]; !ok {
			return fmt.Errorf("container %#x: present in kernel, absent in spec", p)
		}
	}
	for _, p := range sortedPtrKeys(s.Procs) {
		sp := s.Procs[p]
		kp, ok := k.Procs[p]
		if !ok {
			return fmt.Errorf("proc %#x: missing in kernel", p)
		}
		switch {
		case kp.Owner != sp.Owner:
			return fmt.Errorf("proc %#x: owner kernel=%#x spec=%#x", p, kp.Owner, sp.Owner)
		case kp.Parent != sp.Parent:
			return fmt.Errorf("proc %#x: parent kernel=%#x spec=%#x", p, kp.Parent, sp.Parent)
		case !ptrsEqual(kp.Children, sp.Children):
			return fmt.Errorf("proc %#x: children kernel=%v spec=%v", p, kp.Children, sp.Children)
		case !ptrsEqual(kp.Threads, sp.Threads):
			return fmt.Errorf("proc %#x: threads kernel=%v spec=%v", p, kp.Threads, sp.Threads)
		case kp.IOMMUDomain != sp.IOMMUDomain:
			return fmt.Errorf("proc %#x: iommu_domain kernel=%d spec=%d", p, kp.IOMMUDomain, sp.IOMMUDomain)
		}
	}
	for _, p := range sortedPtrKeys(k.Procs) {
		if _, ok := s.Procs[p]; !ok {
			return fmt.Errorf("proc %#x: present in kernel, absent in spec", p)
		}
	}
	for _, p := range sortedPtrKeys(s.Threads) {
		st := s.Threads[p]
		kt, ok := k.Threads[p]
		if !ok {
			return fmt.Errorf("thread %#x: missing in kernel", p)
		}
		switch {
		case kt.OwningProc != st.OwningProc:
			return fmt.Errorf("thread %#x: owning_proc kernel=%#x spec=%#x", p, kt.OwningProc, st.OwningProc)
		case kt.OwningCntr != st.OwningCntr:
			return fmt.Errorf("thread %#x: owning_cntr kernel=%#x spec=%#x", p, kt.OwningCntr, st.OwningCntr)
		case normState(kt.State) != normState(st.State):
			return fmt.Errorf("thread %#x: state kernel=%v spec=%v", p, kt.State, st.State)
		case kt.Core != st.Core:
			return fmt.Errorf("thread %#x: core kernel=%d spec=%d", p, kt.Core, st.Core)
		case kt.Endpoints != st.Endpoints:
			return fmt.Errorf("thread %#x: endpoints kernel=%v spec=%v", p, kt.Endpoints, st.Endpoints)
		case kt.WaitingOn != st.WaitingOn:
			return fmt.Errorf("thread %#x: waiting_on kernel=%#x spec=%#x", p, kt.WaitingOn, st.WaitingOn)
		}
	}
	for _, p := range sortedPtrKeys(k.Threads) {
		if _, ok := s.Threads[p]; !ok {
			return fmt.Errorf("thread %#x: present in kernel, absent in spec", p)
		}
	}
	for _, p := range sortedPtrKeys(s.Endpoints) {
		se := s.Endpoints[p]
		ke, ok := k.Endpoints[p]
		if !ok {
			return fmt.Errorf("endpoint %#x: missing in kernel", p)
		}
		switch {
		case !ptrsEqual(ke.Queue, se.Queue):
			return fmt.Errorf("endpoint %#x: queue kernel=%v spec=%v", p, ke.Queue, se.Queue)
		case ke.QueuedRecv != se.QueuedRecv:
			return fmt.Errorf("endpoint %#x: queued_recv kernel=%v spec=%v", p, ke.QueuedRecv, se.QueuedRecv)
		case ke.RefCount != se.RefCount:
			return fmt.Errorf("endpoint %#x: refcount kernel=%d spec=%d", p, ke.RefCount, se.RefCount)
		case ke.OwnerCntr != se.OwnerCntr:
			return fmt.Errorf("endpoint %#x: owner_cntr kernel=%#x spec=%#x", p, ke.OwnerCntr, se.OwnerCntr)
		case !bufsEqual(ke.Buffered, se.Buffered):
			return fmt.Errorf("endpoint %#x: buffered kernel=%v spec=%v", p, ke.Buffered, se.Buffered)
		}
	}
	for _, p := range sortedPtrKeys(k.Endpoints) {
		if _, ok := s.Endpoints[p]; !ok {
			return fmt.Errorf("endpoint %#x: present in kernel, absent in spec", p)
		}
	}
	for _, p := range sortedPtrKeys(s.AddressSpaces) {
		sas := s.AddressSpaces[p]
		kas, ok := k.AddressSpaces[p]
		if !ok {
			return fmt.Errorf("address space %#x: missing in kernel", p)
		}
		if err := diffSpace(fmt.Sprintf("address space %#x", p), kas, sas); err != nil {
			return err
		}
	}
	for p := range k.AddressSpaces {
		if _, ok := s.AddressSpaces[p]; !ok {
			return fmt.Errorf("address space %#x: present in kernel, absent in spec", p)
		}
	}
	for id, sd := range s.DMASpaces {
		kd, ok := k.DMASpaces[id]
		if !ok {
			return fmt.Errorf("dma space %d: missing in kernel", id)
		}
		if err := diffSpace(fmt.Sprintf("dma space %d", id), kd, sd); err != nil {
			return err
		}
	}
	for id := range k.DMASpaces {
		if _, ok := s.DMASpaces[id]; !ok {
			return fmt.Errorf("dma space %d: present in kernel, absent in spec", id)
		}
	}
	return nil
}

// diffSpace compares two address spaces modulo physical addresses.
func diffSpace(what string, kas, sas map[hw.VirtAddr]pt.MapEntry) error {
	vas := make([]hw.VirtAddr, 0, len(sas))
	for va := range sas {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	for _, va := range vas {
		se := sas[va]
		ke, ok := kas[va]
		if !ok {
			return fmt.Errorf("%s: va %#x mapped in spec, not in kernel", what, uint64(va))
		}
		if ke.Size != se.Size || ke.Perm != se.Perm {
			return fmt.Errorf("%s: va %#x kernel=(%v,%v) spec=(%v,%v)",
				what, uint64(va), ke.Size, ke.Perm, se.Size, se.Perm)
		}
	}
	for va := range kas {
		if _, ok := sas[va]; !ok {
			return fmt.Errorf("%s: va %#x mapped in kernel, not in spec", what, uint64(va))
		}
	}
	return nil
}
