package spec

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

func boot(t *testing.T) (*kernel.Kernel, pm.Ptr) {
	t.Helper()
	k, init, err := kernel.Boot(hw.Config{Frames: 2048, Cores: 2, TLBSlots: 64})
	if err != nil {
		t.Fatal(err)
	}
	return k, init
}

func abs(k *kernel.Kernel) State { return Abstract(k.PM, k.Alloc, k.IOMMU) }

func TestAbstractionIsDeepCopy(t *testing.T) {
	k, init := boot(t)
	st := abs(k)
	// Mutating the kernel afterwards must not change the snapshot.
	before := st.Containers[k.PM.RootContainer].UsedPages
	if r := k.SysMmap(0, init, 0x1000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	if st.Containers[k.PM.RootContainer].UsedPages != before {
		t.Fatal("snapshot aliases live state")
	}
	if len(st.AddressSpaces[k.PM.Thrd(init).OwningProc]) != 0 {
		t.Fatal("snapshot address space grew")
	}
}

func TestAbstractionCoversAllObjects(t *testing.T) {
	k, init := boot(t)
	r := k.SysNewContainer(0, init, 50, []int{0})
	if r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	k.SysNewEndpoint(0, init, 3)
	st := abs(k)
	if len(st.Containers) != len(k.PM.CntrPerms) ||
		len(st.Threads) != len(k.PM.ThrdPerms) ||
		len(st.Endpoints) != len(k.PM.EdptPerms) ||
		len(st.Procs) != len(k.PM.ProcPerms) {
		t.Fatal("abstraction dropped objects")
	}
	if st.RootContainer != k.PM.RootContainer {
		t.Fatal("root pointer wrong")
	}
	// Memory snapshot partitions all frames.
	total := st.Mem.Free4K.Len() + st.Mem.Free2M.Len() + st.Mem.Free1G.Len() +
		st.Mem.Allocated.Len() + st.Mem.Mapped.Len() + st.Mem.Merged.Len() + st.Mem.Boot.Len()
	if total != k.Alloc.Frames() {
		t.Fatalf("snapshot covers %d of %d frames", total, k.Alloc.Frames())
	}
}

func TestUnchangedDetectsYield(t *testing.T) {
	k, init := boot(t)
	old := abs(k)
	if r := k.SysYield(0, init); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	if !Unchanged(old, abs(k)) {
		t.Fatal("yield should be abstractly invisible")
	}
	if r := k.SysMmap(0, init, 0x1000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	if Unchanged(old, abs(k)) {
		t.Fatal("mmap should be abstractly visible")
	}
}

func TestMmapSpecAcceptsAndRejects(t *testing.T) {
	k, init := boot(t)
	old := abs(k)
	ret := k.SysMmap(0, init, 0x400000, 3, hw.Size4K, pt.RW)
	new1 := abs(k)
	if err := MmapSpec(old, new1, init, 0x400000, 3, hw.Size4K, pt.RW, ret); err != nil {
		t.Fatalf("valid transition rejected: %v", err)
	}
	// Same transition claimed for the wrong count must be rejected.
	if err := MmapSpec(old, new1, init, 0x400000, 2, hw.Size4K, pt.RW, ret); err == nil {
		t.Fatal("wrong count accepted")
	}
	// Claiming the old state as the new state must be rejected.
	if err := MmapSpec(old, old, init, 0x400000, 3, hw.Size4K, pt.RW, ret); err == nil {
		t.Fatal("no-op accepted as successful mmap")
	}
	// Tampered post-state: stolen quota.
	tampered := abs(k)
	c := tampered.Containers[k.PM.RootContainer]
	c.UsedPages--
	tampered.Containers[k.PM.RootContainer] = c
	if err := MmapSpec(old, tampered, init, 0x400000, 3, hw.Size4K, pt.RW, ret); err == nil {
		t.Fatal("quota tampering accepted")
	}
}

func TestMunmapSpecFrameCondition(t *testing.T) {
	k, init := boot(t)
	if r := k.SysMmap(0, init, 0x400000, 4, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	old := abs(k)
	ret := k.SysMunmap(0, init, 0x400000, 2, hw.Size4K)
	new1 := abs(k)
	if err := MunmapSpec(old, new1, init, 0x400000, 2, hw.Size4K, ret); err != nil {
		t.Fatalf("valid munmap rejected: %v", err)
	}
	// A post-state where a surviving mapping changed is rejected.
	proc := k.PM.Thrd(init).OwningProc
	tampered := abs(k)
	space := tampered.AddressSpaces[proc]
	e := space[0x402000]
	e.Phys += hw.PageSize4K
	space[0x402000] = e
	if err := MunmapSpec(old, tampered, init, 0x400000, 2, hw.Size4K, ret); err == nil {
		t.Fatal("surviving-mapping tampering accepted")
	}
}

func TestNewContainerSpecSubtreeExactness(t *testing.T) {
	k, init := boot(t)
	old := abs(k)
	ret := k.SysNewContainer(0, init, 30, []int{0})
	new1 := abs(k)
	if err := NewContainerSpec(old, new1, init, 30, []int{0}, ret); err != nil {
		t.Fatalf("valid new_container rejected: %v", err)
	}
	// Tamper: the root's subtree gained an extra phantom member.
	tampered := abs(k)
	c := tampered.Containers[k.PM.RootContainer]
	c.Subtree[Ptr(0xdead000)] = true
	tampered.Containers[k.PM.RootContainer] = c
	if err := NewContainerSpec(old, tampered, init, 30, []int{0}, ret); err == nil {
		t.Fatal("phantom subtree member accepted")
	}
}

func TestSendRecvSpecs(t *testing.T) {
	k, init := boot(t)
	r := k.SysNewThread(0, init, 0)
	other := pm.Ptr(r.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(other).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)

	// Blocking recv.
	old := abs(k)
	ret := k.SysRecv(0, other, 0, kernel.RecvArgs{EdptSlot: -1})
	mid := abs(k)
	if err := RecvSpec(old, mid, other, 0, kernel.RecvArgs{EdptSlot: -1}, ret); err != nil {
		t.Fatalf("blocking recv rejected: %v", err)
	}
	// Completing send.
	ret = k.SysSend(0, init, 0, kernel.SendArgs{Regs: [4]uint64{5}})
	fin := abs(k)
	if err := SendSpec(mid, fin, init, 0, kernel.SendArgs{Regs: [4]uint64{5}}, ret); err != nil {
		t.Fatalf("completing send rejected: %v", err)
	}
	// Tampered: receiver left in the queue.
	tampered := abs(k)
	e := tampered.Endpoints[ep]
	e.Queue = append(e.Queue, other)
	tampered.Endpoints[ep] = e
	if err := SendSpec(mid, tampered, init, 0, kernel.SendArgs{Regs: [4]uint64{5}}, ret); err == nil {
		t.Fatal("stale queue accepted")
	}
}

func TestExitThreadSpec(t *testing.T) {
	k, init := boot(t)
	r := k.SysNewThread(0, init, 0)
	tid := pm.Ptr(r.Vals[0])
	old := abs(k)
	ret := k.SysExitThread(0, tid)
	new1 := abs(k)
	if err := ExitThreadSpec(old, new1, tid, ret); err != nil {
		t.Fatalf("valid exit rejected: %v", err)
	}
	// Claiming the pre-state as post-state (thread still alive) fails.
	if err := ExitThreadSpec(old, old, tid, ret); err == nil {
		t.Fatal("live thread accepted as exited")
	}
}

func TestKillContainerSpec(t *testing.T) {
	k, init := boot(t)
	r := k.SysNewContainer(0, init, 60, []int{0})
	cntr := pm.Ptr(r.Vals[0])
	rp := k.SysNewProcessIn(0, init, cntr)
	k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), 0)
	old := abs(k)
	ret := k.SysKillContainer(0, init, cntr)
	new1 := abs(k)
	if err := KillContainerSpec(old, new1, init, cntr, ret); err != nil {
		t.Fatalf("valid kill rejected: %v", err)
	}
	if err := KillContainerSpec(old, old, init, cntr, ret); err == nil {
		t.Fatal("survivor accepted as killed")
	}
}

func TestFrameConditionHelpers(t *testing.T) {
	k, init := boot(t)
	a := abs(k)
	b := abs(k)
	if !ContainersUnchangedExcept(a, b) || !ThreadsUnchangedExcept(a, b) ||
		!ProcsUnchangedExcept(a, b) || !EndpointsUnchangedExcept(a, b) ||
		!SpacesUnchangedExcept(a, b) {
		t.Fatal("identical states reported different")
	}
	// A thread state change is caught unless excepted.
	th := b.Threads[init]
	th.Core = 1
	b.Threads[init] = th
	if ThreadsUnchangedExcept(a, b) {
		t.Fatal("thread change missed")
	}
	if !ThreadsUnchangedExcept(a, b, init) {
		t.Fatal("excepted thread change still reported")
	}
}

func TestSortedPtrs(t *testing.T) {
	s := map[Ptr]bool{3: true, 1: true, 2: true}
	out := SortedPtrs(s)
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("sorted = %v", out)
	}
}

func TestIommuSpecs(t *testing.T) {
	k, init := boot(t)
	old := abs(k)
	ret := k.SysIommuCreateDomain(0, init)
	mid := abs(k)
	if err := IommuCreateSpec(old, mid, init, ret); err != nil {
		t.Fatalf("valid iommu_create rejected: %v", err)
	}
	// Tampered: domain map pre-populated.
	tampered := abs(k)
	dom := tampered.Procs[k.PM.Thrd(init).OwningProc].IOMMUDomain
	tampered.DMASpaces[dom][0x1000] = pt.MapEntry{Phys: 0x2000}
	if err := IommuCreateSpec(old, tampered, init, ret); err == nil {
		t.Fatal("pre-populated domain accepted")
	}

	if r := k.SysMmap(0, init, 0x70000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	old = abs(k)
	ret = k.SysIommuMap(0, init, 0x70000)
	mid = abs(k)
	if err := IommuMapSpec(old, mid, init, 0x70000, ret); err != nil {
		t.Fatalf("valid iommu_map rejected: %v", err)
	}
	// Tampered: DMA mapping points at the wrong frame.
	tampered = abs(k)
	e := tampered.DMASpaces[dom][0x70000]
	e.Phys += hw.PageSize4K
	tampered.DMASpaces[dom][0x70000] = e
	if err := IommuMapSpec(old, tampered, init, 0x70000, ret); err == nil {
		t.Fatal("wrong DMA frame accepted")
	}

	old = abs(k)
	ret = k.SysIommuUnmap(0, init, 0x70000)
	fin := abs(k)
	if err := IommuUnmapSpec(old, fin, init, 0x70000, ret); err != nil {
		t.Fatalf("valid iommu_unmap rejected: %v", err)
	}
	// Claiming the pre-state as post-state (still mapped) fails.
	if err := IommuUnmapSpec(old, old, init, 0x70000, ret); err == nil {
		t.Fatal("retained DMA mapping accepted")
	}
}
