package spec

import (
	"fmt"

	"atmosphere/internal/kernel"
)

// CloseEndpointSpec: the caller's descriptor in slot is dropped and the
// endpoint loses one reference; the endpoint dies (and its owner is
// credited one page) exactly when that was the last reference. A blocked
// thread cannot be the caller, so every queued thread still holds its own
// descriptor and the queue outlives any single close.
func CloseEndpointSpec(old, new State, tid Ptr, slot int, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "close_endpoint-fail changed state")
	}
	ot, ok := old.Threads[tid]
	if !ok {
		return fmt.Errorf("close_endpoint succeeded for unknown thread %#x", tid)
	}
	if slot < 0 || slot >= len(ot.Endpoints) || ot.Endpoints[slot] == 0 {
		return fmt.Errorf("close_endpoint succeeded on empty slot %d", slot)
	}
	ep := ot.Endpoints[slot]
	oe := old.Endpoints[ep]
	nt := new.Threads[tid]
	wantEndpoints := ot.Endpoints
	wantEndpoints[slot] = 0
	if nt.Endpoints != wantEndpoints {
		return fmt.Errorf("descriptor slot %d not cleared", slot)
	}
	if ne, still := new.Endpoints[ep]; still {
		if err := firstErr(
			check(ne.RefCount == oe.RefCount-1, "endpoint %#x refcount %d -> %d, want -1",
				ep, oe.RefCount, ne.RefCount),
			check(ptrsEqual(ne.Queue, oe.Queue) && ne.OwnerCntr == oe.OwnerCntr,
				"close_endpoint disturbed endpoint %#x", ep),
			check(ContainersUnchangedExcept(old, new), "close_endpoint changed a container"),
		); err != nil {
			return err
		}
	} else {
		owner := oe.OwnerCntr
		oc, nc := old.Containers[owner], new.Containers[owner]
		if err := firstErr(
			check(oe.RefCount == 1, "endpoint %#x died with %d refs", ep, oe.RefCount),
			check(len(oe.Queue) == 0, "endpoint %#x died with a non-empty queue", ep),
			check(nc.UsedPages == oc.UsedPages-1, "owner credited %d, want 1",
				oc.UsedPages-nc.UsedPages),
			check(ContainersUnchangedExcept(old, new, owner),
				"close_endpoint changed another container"),
		); err != nil {
			return err
		}
	}
	return firstErr(
		threadsUnchangedModSched(old, new, tid),
		check(ProcsUnchangedExcept(old, new), "close_endpoint changed a process"),
		check(EndpointsUnchangedExcept(old, new, ep), "close_endpoint changed another endpoint"),
		check(SpacesUnchangedExcept(old, new), "close_endpoint changed an address space"),
	)
}
