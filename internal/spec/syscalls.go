package spec

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/mem"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// Executable syscall specifications. Each function is the analogue of a
// paper spec function like syscall_mmap_spec (Listing 1): a predicate
// over the abstract pre-state Ψ, post-state Ψ', the syscall arguments,
// and the return value. Each returns nil when the transition satisfies
// the specification and a descriptive error otherwise.
//
// Scheduler-only state transitions (runnable <-> running) are permitted
// by the frame conditions — the scheduler's own correctness is a global
// well-formedness invariant checked separately — so the specifications
// here correspond to the paper's specs, which do not mention which
// thread currently holds a core.

// threadEqualModSched compares threads allowing runnable<->running moves.
func threadEqualModSched(a, b Thread) bool {
	if a.State != b.State {
		schedOnly := func(s pm.ThreadState) bool {
			return s == pm.ThreadRunnable || s == pm.ThreadRunning
		}
		if !schedOnly(a.State) || !schedOnly(b.State) {
			return false
		}
		a.State = b.State
	}
	return a == b
}

// threadsUnchangedModSched is the Listing 1 thread frame condition with
// scheduler transitions allowed.
func threadsUnchangedModSched(old, new State, except ...Ptr) error {
	ex := make(map[Ptr]bool, len(except))
	for _, p := range except {
		ex[p] = true
	}
	for ptr, ot := range old.Threads {
		if ex[ptr] {
			continue
		}
		nt, ok := new.Threads[ptr]
		if !ok {
			return fmt.Errorf("thread %#x disappeared", ptr)
		}
		if !threadEqualModSched(ot, nt) {
			return fmt.Errorf("thread %#x changed: %+v -> %+v", ptr, ot, nt)
		}
	}
	for ptr := range new.Threads {
		if !ex[ptr] {
			if _, ok := old.Threads[ptr]; !ok {
				return fmt.Errorf("thread %#x appeared", ptr)
			}
		}
	}
	return nil
}

func check(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// callerCntr resolves the caller's container in a state.
func callerCntr(st State, tid Ptr) (Ptr, error) {
	t, ok := st.Threads[tid]
	if !ok {
		return 0, fmt.Errorf("caller thread %#x not in pre-state", tid)
	}
	p, ok := st.Procs[t.OwningProc]
	if !ok {
		return 0, fmt.Errorf("caller process %#x not in pre-state", t.OwningProc)
	}
	return p.Owner, nil
}

// MmapSpec is syscall_mmap_spec (Listing 1): on success, each virtual
// address in the range maps a fresh, unique, previously free physical
// page; addresses outside the range are unchanged; all other kernel
// objects are unchanged; the container is charged for the user pages and
// any new page-table nodes. On failure the address spaces and object
// maps are untouched (quota and the allocated set may only shrink, from
// empty-table cleanup).
func MmapSpec(old, new State, tid Ptr, va hw.VirtAddr, count int, size hw.PageSize, perm pt.Perm, ret kernel.Ret) error {
	t, okCaller := old.Threads[tid]
	if ret.Errno != kernel.OK {
		return firstErr(
			check(ContainersUnchangedExcept(old, new, allCntrs(old)...), "mmap-fail touched container structure"),
			mmapFailFrame(old, new, tid),
		)
	}
	if !okCaller {
		return fmt.Errorf("mmap succeeded for unknown thread %#x", tid)
	}
	proc := t.OwningProc
	cntr, err := callerCntr(old, tid)
	if err != nil {
		return err
	}
	oldAS, newAS := old.AddressSpaces[proc], new.AddressSpaces[proc]
	step := hw.VirtAddr(size.Bytes())

	// Expected new domain.
	want := make(map[hw.VirtAddr]bool, count)
	for i := 0; i < count; i++ {
		want[va+hw.VirtAddr(i)*step] = true
	}
	if err := check(len(newAS) == len(oldAS)+count, "mmap: domain grew by %d, want %d",
		len(newAS)-len(oldAS), count); err != nil {
		return err
	}
	// Virtual addresses outside va_range are not changed (Listing 1,
	// lines 13-18).
	for a, e := range oldAS {
		ne, ok := newAS[a]
		if !ok || ne != e {
			return fmt.Errorf("mmap: pre-existing mapping %#x changed", a)
		}
	}
	// Each address in the range gets a unique, previously free page
	// (lines 19-26).
	seen := make(map[hw.PhysAddr]bool, count)
	for a := range want {
		e, ok := newAS[a]
		if !ok {
			return fmt.Errorf("mmap: %#x not mapped", a)
		}
		if e.Size != size || e.Perm != perm {
			return fmt.Errorf("mmap: %#x mapped with %v/%+v", a, e.Size, e.Perm)
		}
		if seen[e.Phys] {
			return fmt.Errorf("mmap: physical page %#x mapped twice", e.Phys)
		}
		seen[e.Phys] = true
		if !pageWasFree(old, e.Phys, size) {
			return fmt.Errorf("mmap: page %#x was not free before", e.Phys)
		}
		if !new.Mem.Mapped.Contains(e.Phys) {
			return fmt.Errorf("mmap: page %#x not in mapped set after", e.Phys)
		}
	}
	// Frame conditions: every other object unchanged.
	if err := firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "mmap changed a process"),
		check(EndpointsUnchangedExcept(old, new), "mmap changed an endpoint"),
		check(SpacesUnchangedExcept(old, new, proc), "mmap changed another address space"),
		check(ContainersUnchangedExcept(old, new, cntr), "mmap changed another container"),
	); err != nil {
		return err
	}
	// Quota: used grows by the user pages plus new table nodes. Frames
	// that moved into (or out of) the per-core page caches during the
	// syscall are allocated but belong to no container, so the cached
	// subset is excluded from the node delta.
	nodeDelta := (new.Mem.Allocated.Len() - new.Mem.PCache.Len()) -
		(old.Mem.Allocated.Len() - old.Mem.PCache.Len())
	oc, nc := old.Containers[cntr], new.Containers[cntr]
	wantDelta := uint64(count)*(size.Bytes()/hw.PageSize4K) + uint64(nodeDelta)
	if err := check(nc.UsedPages == oc.UsedPages+wantDelta,
		"mmap: used %d -> %d, want +%d", oc.UsedPages, nc.UsedPages, wantDelta); err != nil {
		return err
	}
	if err := check(containerEqualExceptUsed(oc, nc), "mmap changed caller container beyond quota"); err != nil {
		return err
	}
	return nil
}

func allCntrs(st State) []Ptr {
	out := make([]Ptr, 0, len(st.Containers))
	for p := range st.Containers {
		out = append(out, p)
	}
	return out
}

// mmapFailFrame: failure leaves every object and address space untouched;
// quota and the allocated set may shrink by empty-table cleanup, with the
// freed pages landing on the 4K free list.
func mmapFailFrame(old, new State, tid Ptr) error {
	if err := firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "mmap-fail changed a process"),
		check(EndpointsUnchangedExcept(old, new), "mmap-fail changed an endpoint"),
		check(SpacesUnchangedExcept(old, new), "mmap-fail changed an address space"),
		check(old.Mem.Mapped.Equal(new.Mem.Mapped), "mmap-fail changed mapped pages"),
		// A failed attempt may still have refilled a per-core cache
		// before running out of memory or quota, so only the
		// container-owned part of the allocated set must not grow.
		check(allocatedSansCache(new).Subset(old.Mem.Allocated), "mmap-fail grew allocated set"),
	); err != nil {
		return err
	}
	// Containers: only the caller's quota may shrink.
	cntr, err := callerCntr(old, tid)
	if err != nil {
		return nil // unknown caller: EINVAL path, nothing else to check
	}
	for p, oc := range old.Containers {
		nc, ok := new.Containers[p]
		if !ok {
			return fmt.Errorf("mmap-fail removed container %#x", p)
		}
		if p == cntr {
			if nc.UsedPages > oc.UsedPages || !containerEqualExceptUsed(oc, nc) {
				return fmt.Errorf("mmap-fail grew caller quota or structure")
			}
			continue
		}
		if !ContainerEqual(oc, nc) {
			return fmt.Errorf("mmap-fail changed container %#x", p)
		}
	}
	return nil
}

// allocatedSansCache returns the allocated pages that belong to kernel
// subsystems — the allocated set minus the per-core page-cache frames.
func allocatedSansCache(st State) mem.PageSet {
	s := st.Mem.Allocated.Clone()
	for p := range st.Mem.PCache {
		s.Remove(p)
	}
	return s
}

func containerEqualExceptUsed(a, b Container) bool {
	a.UsedPages = b.UsedPages
	return ContainerEqual(a, b)
}

func pageWasFree(old State, phys hw.PhysAddr, size hw.PageSize) bool {
	switch size {
	case hw.Size4K:
		// A frame parked in a per-core page cache is free at the
		// abstract level: not mapped anywhere, owned by no container,
		// merely staged inside the allocator for the next hand-out.
		return old.Mem.Free4K.Contains(phys) || old.Mem.PCache.Contains(phys)
	case hw.Size2M:
		return old.Mem.Free2M.Contains(phys)
	case hw.Size1G:
		return old.Mem.Free1G.Contains(phys)
	}
	return false
}

// MunmapSpec: on success exactly the range disappears from the caller's
// address space, each page's mapping reference is released, quota is
// credited, and nothing else changes.
func MunmapSpec(old, new State, tid Ptr, va hw.VirtAddr, count int, size hw.PageSize, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "munmap-fail changed state")
	}
	t := old.Threads[tid]
	proc := t.OwningProc
	cntr, err := callerCntr(old, tid)
	if err != nil {
		return err
	}
	// The kernel truncates a misaligned address to its page, like the
	// hardware walker; the specification ranges over the same base.
	va &^= hw.VirtAddr(size.Bytes() - 1)
	oldAS, newAS := old.AddressSpaces[proc], new.AddressSpaces[proc]
	step := hw.VirtAddr(size.Bytes())
	if err := check(len(newAS) == len(oldAS)-count, "munmap: domain shrank by %d, want %d",
		len(oldAS)-len(newAS), count); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		a := va + hw.VirtAddr(i)*step
		if _, ok := newAS[a]; ok {
			return fmt.Errorf("munmap: %#x still mapped", a)
		}
		if _, ok := oldAS[a]; !ok {
			return fmt.Errorf("munmap succeeded on unmapped %#x", a)
		}
	}
	for a, e := range newAS {
		oe, ok := oldAS[a]
		if !ok || oe != e {
			return fmt.Errorf("munmap changed surviving mapping %#x", a)
		}
	}
	oc, nc := old.Containers[cntr], new.Containers[cntr]
	wantDelta := uint64(count) * (size.Bytes() / hw.PageSize4K)
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "munmap changed a process"),
		check(EndpointsUnchangedExcept(old, new), "munmap changed an endpoint"),
		check(SpacesUnchangedExcept(old, new, proc), "munmap changed another address space"),
		check(ContainersUnchangedExcept(old, new, cntr), "munmap changed another container"),
		check(oc.UsedPages == nc.UsedPages+wantDelta, "munmap: used %d -> %d, want -%d",
			oc.UsedPages, nc.UsedPages, wantDelta),
		check(containerEqualExceptUsed(oc, nc), "munmap changed container structure"),
	)
}

// NewContainerSpec mirrors new_container_ensures (Listing 3): on success
// a fresh container appears as a child of the caller's container; the
// subtree ghost of every direct and indirect parent is extended by
// exactly the child; the parent is charged the carved quota; every other
// container is unchanged.
func NewContainerSpec(old, new State, tid Ptr, quota uint64, cpus []int, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "new_container-fail changed state")
	}
	parent, err := callerCntr(old, tid)
	if err != nil {
		return err
	}
	child := Ptr(ret.Vals[0])
	if _, existed := old.Containers[child]; existed {
		return fmt.Errorf("new_container returned an existing pointer %#x", child)
	}
	nc, ok := new.Containers[child]
	if !ok {
		return fmt.Errorf("new container %#x not in post-state", child)
	}
	op, np := old.Containers[parent], new.Containers[parent]
	if err := firstErr(
		check(nc.Parent == parent, "child parent = %#x", nc.Parent),
		check(nc.Depth == op.Depth+1, "child depth = %d", nc.Depth),
		check(len(nc.Path) == len(op.Path)+1 && nc.Path[len(nc.Path)-1] == parent,
			"child path wrong"),
		check(nc.QuotaPages == quota && nc.UsedPages == 1, "child accounting wrong: %+v", nc),
		check(len(nc.Subtree) == 0 && len(nc.Procs) == 0 && len(nc.OwnedThreads) == 0,
			"child not empty"),
		check(intsEqual(nc.CPUs, cpus), "child cpus = %v", nc.CPUs),
		check(np.UsedPages == op.UsedPages+quota, "parent not charged the carved quota"),
		check(len(np.Children) == len(op.Children)+1 &&
			np.Children[len(np.Children)-1] == child, "parent children not extended"),
	); err != nil {
		return err
	}
	// Every ancestor's subtree extended by exactly the child; containers
	// off the path unchanged (Listing 3 lines 14-21).
	ancestors := append([]Ptr(nil), nc.Path...)
	anc := make(map[Ptr]bool, len(ancestors))
	for _, a := range ancestors {
		anc[a] = true
	}
	for p, oc := range old.Containers {
		ncur := new.Containers[p]
		if anc[p] {
			wantSub := make(map[Ptr]bool, len(oc.Subtree)+1)
			for s := range oc.Subtree {
				wantSub[s] = true
			}
			wantSub[child] = true
			if !setsEqual(ncur.Subtree, wantSub) {
				return fmt.Errorf("ancestor %#x subtree not extended by exactly the child", p)
			}
			if p != parent && !ContainerEqual(oc, withSubtree(ncur, oc.Subtree)) {
				return fmt.Errorf("ancestor %#x changed beyond its subtree", p)
			}
		} else if p != parent {
			if !ContainerEqual(oc, ncur) {
				return fmt.Errorf("unrelated container %#x changed", p)
			}
		}
	}
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "new_container changed a process"),
		check(EndpointsUnchangedExcept(old, new), "new_container changed an endpoint"),
		check(SpacesUnchangedExcept(old, new), "new_container changed an address space"),
		check(old.Mem.Free4K.Contains(child), "child page was not free"),
	)
}

// withSubtree returns c with its subtree replaced (for comparing all
// other fields).
func withSubtree(c Container, sub map[Ptr]bool) Container {
	c.Subtree = sub
	return c
}

// NewProcSpec: on success a fresh empty process appears in the target
// container with an empty address space; the container is charged two
// pages (object + root table); nothing else changes.
func NewProcSpec(old, new State, tid Ptr, cntr Ptr, parentProc Ptr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "new_proc-fail changed state")
	}
	proc := Ptr(ret.Vals[0])
	np, ok := new.Procs[proc]
	if !ok {
		return fmt.Errorf("new process %#x not in post-state", proc)
	}
	if _, existed := old.Procs[proc]; existed {
		return fmt.Errorf("new_proc returned existing pointer")
	}
	oc, nc := old.Containers[cntr], new.Containers[cntr]
	if err := firstErr(
		check(np.Owner == cntr, "proc owner = %#x", np.Owner),
		check(np.Parent == parentProc, "proc parent = %#x", np.Parent),
		check(len(np.Threads) == 0 && len(np.Children) == 0, "proc not empty"),
		check(len(new.AddressSpaces[proc]) == 0, "new proc has mappings"),
		check(nc.Procs[proc], "container missing new proc"),
		check(nc.UsedPages == oc.UsedPages+2, "container charged %d, want 2",
			nc.UsedPages-oc.UsedPages),
	); err != nil {
		return err
	}
	exceptProcs := []Ptr{proc}
	if parentProc != 0 {
		exceptProcs = append(exceptProcs, parentProc)
		opp, npp := old.Procs[parentProc], new.Procs[parentProc]
		if len(npp.Children) != len(opp.Children)+1 ||
			npp.Children[len(npp.Children)-1] != proc {
			return fmt.Errorf("parent process children not extended")
		}
	}
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new, exceptProcs...), "new_proc changed another process"),
		check(EndpointsUnchangedExcept(old, new), "new_proc changed an endpoint"),
		check(SpacesUnchangedExcept(old, new, proc), "new_proc changed an address space"),
		check(ContainersUnchangedExcept(old, new, cntr), "new_proc changed another container"),
	)
}

// NewThreadSpec: a fresh runnable thread appears in the target process,
// registered in the container's owned_thrds ghost, charged one page.
func NewThreadSpec(old, new State, tid Ptr, proc Ptr, onCore int, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "new_thread-fail changed state")
	}
	th := Ptr(ret.Vals[0])
	nt, ok := new.Threads[th]
	if !ok {
		return fmt.Errorf("new thread %#x not in post-state", th)
	}
	cntr := old.Procs[proc].Owner
	oc, nc := old.Containers[cntr], new.Containers[cntr]
	op, np := old.Procs[proc], new.Procs[proc]
	return firstErr(
		check(nt.OwningProc == proc && nt.OwningCntr == cntr, "thread ownership wrong"),
		check(nt.Core == onCore, "thread core = %d", nt.Core),
		check(len(np.Threads) == len(op.Threads)+1 &&
			np.Threads[len(np.Threads)-1] == th, "process threads not extended"),
		check(nc.OwnedThreads[th], "owned_thrds ghost missing thread"),
		check(nc.UsedPages == oc.UsedPages+1, "container charged %d, want 1",
			nc.UsedPages-oc.UsedPages),
		threadsUnchangedModSched(old, new, th),
		check(ProcsUnchangedExcept(old, new, proc), "new_thread changed another process"),
		check(EndpointsUnchangedExcept(old, new), "new_thread changed an endpoint"),
		check(SpacesUnchangedExcept(old, new), "new_thread changed an address space"),
		check(ContainersUnchangedExcept(old, new, cntr), "new_thread changed another container"),
	)
}

// NewEndpointSpec: a fresh endpoint with refcount 1 appears, installed in
// the caller's requested slot, charged one page to the caller's container.
func NewEndpointSpec(old, new State, tid Ptr, slot int, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "new_endpoint-fail changed state")
	}
	ep := Ptr(ret.Vals[0])
	ne, ok := new.Endpoints[ep]
	if !ok {
		return fmt.Errorf("new endpoint %#x not in post-state", ep)
	}
	cntr, err := callerCntr(old, tid)
	if err != nil {
		return err
	}
	oc, nc := old.Containers[cntr], new.Containers[cntr]
	ot, nt := old.Threads[tid], new.Threads[tid]
	wantEndpoints := ot.Endpoints
	wantEndpoints[slot] = ep
	return firstErr(
		check(ne.RefCount == 1 && len(ne.Queue) == 0 && ne.OwnerCntr == cntr,
			"endpoint shape wrong: %+v", ne),
		check(nt.Endpoints == wantEndpoints, "descriptor not installed"),
		check(nc.UsedPages == oc.UsedPages+1, "container charged %d, want 1",
			nc.UsedPages-oc.UsedPages),
		threadsUnchangedModSched(old, new, tid),
		check(ProcsUnchangedExcept(old, new), "new_endpoint changed a process"),
		check(EndpointsUnchangedExcept(old, new, ep), "new_endpoint changed another endpoint"),
		check(SpacesUnchangedExcept(old, new), "new_endpoint changed an address space"),
		check(ContainersUnchangedExcept(old, new, cntr), "new_endpoint changed another container"),
	)
}

// YieldSpec: yields change nothing but scheduler state.
func YieldSpec(old, new State, tid Ptr, ret kernel.Ret) error {
	return firstErr(
		threadsUnchangedModSched(old, new),
		check(ProcsUnchangedExcept(old, new), "yield changed a process"),
		check(EndpointsUnchangedExcept(old, new), "yield changed an endpoint"),
		check(SpacesUnchangedExcept(old, new), "yield changed an address space"),
		check(ContainersUnchangedExcept(old, new), "yield changed a container"),
		check(MemEqual(old.Mem, new.Mem), "yield changed memory"),
	)
}

// ExitThreadSpec: the caller disappears from every structure; its
// endpoint descriptors are released (endpoints may die when their last
// reference drops); the container is credited.
func ExitThreadSpec(old, new State, tid Ptr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return check(Unchanged(old, new), "exit-fail changed state")
	}
	ot, ok := old.Threads[tid]
	if !ok {
		return fmt.Errorf("exit succeeded for unknown thread")
	}
	if _, still := new.Threads[tid]; still {
		return fmt.Errorf("exited thread still present")
	}
	proc, cntr := ot.OwningProc, ot.OwningCntr
	np := new.Procs[proc]
	for _, th := range np.Threads {
		if th == tid {
			return fmt.Errorf("process still lists exited thread")
		}
	}
	if new.Containers[cntr].OwnedThreads[tid] {
		return fmt.Errorf("owned_thrds still lists exited thread")
	}
	// Endpoints referenced by the dead thread lose one reference each.
	refs := make(map[Ptr]int)
	for _, e := range ot.Endpoints {
		if e != 0 {
			refs[e]++
		}
	}
	var touched []Ptr
	for e, n := range refs {
		touched = append(touched, e)
		oe := old.Endpoints[e]
		if ne, still := new.Endpoints[e]; still {
			if ne.RefCount != oe.RefCount-n {
				return fmt.Errorf("endpoint %#x refcount %d -> %d, want -%d",
					e, oe.RefCount, ne.RefCount, n)
			}
		} else if oe.RefCount != n {
			return fmt.Errorf("endpoint %#x died with %d refs, thread held %d",
				e, oe.RefCount, n)
		}
	}
	return firstErr(
		threadsUnchangedModSched(old, new, tid),
		check(ProcsUnchangedExcept(old, new, proc), "exit changed another process"),
		check(EndpointsUnchangedExcept(old, new, touched...), "exit changed unrelated endpoint"),
		check(SpacesUnchangedExcept(old, new), "exit changed an address space"),
	)
}
