package spec

import (
	"fmt"

	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
)

// Specifications of the IPC and destruction syscalls.

// SendSpec: a blocking send (EWOULDBLOCK) queues the caller on the
// endpoint with direction "senders"; a completing send wakes exactly one
// previously blocked receiver, delivering the scalar registers and any
// page/endpoint capabilities; everything else is unchanged.
func SendSpec(old, new State, tid Ptr, slot int, args kernel.SendArgs, ret kernel.Ret) error {
	ot, okCaller := old.Threads[tid]
	if !okCaller || slot < 0 || slot >= pm.MaxEndpoints || ot.Endpoints[slot] == 0 {
		return check(ret.Errno != kernel.OK && ret.Errno != kernel.EWOULDBLOCK,
			"send on invalid slot did not fail")
	}
	ep := ot.Endpoints[slot]
	switch ret.Errno {
	case kernel.EWOULDBLOCK:
		nt := new.Threads[tid]
		oe, ne := old.Endpoints[ep], new.Endpoints[ep]
		// A granted page leaves the sender's space (and credits its
		// container) before the sender blocks.
		var exceptSpaces, exceptCntrs []Ptr
		if args.GrantPage {
			exceptSpaces = append(exceptSpaces, ot.OwningProc)
			exceptCntrs = append(exceptCntrs, ot.OwningCntr)
		}
		if err := firstErr(
			check(nt.State == pm.ThreadBlockedSend, "blocked sender state = %v", nt.State),
			check(nt.WaitingOn == ep, "blocked sender waits on %#x", nt.WaitingOn),
			check(len(ne.Queue) == len(oe.Queue)+1 &&
				ne.Queue[len(ne.Queue)-1] == tid, "sender not queued"),
			check(!ne.QueuedRecv, "queue direction wrong after blocking send"),
			threadsUnchangedModSched(old, new, tid),
			check(EndpointsUnchangedExcept(old, new, ep), "blocking send changed another endpoint"),
			check(ProcsUnchangedExcept(old, new), "blocking send changed a process"),
			check(ContainersUnchangedExcept(old, new, exceptCntrs...), "blocking send changed a container"),
			check(SpacesUnchangedExcept(old, new, exceptSpaces...), "blocking send changed an address space"),
		); err != nil {
			return err
		}
		return nil
	case kernel.OK:
		return rendezvousDeliverSpec(old, new, tid, ep, args.Regs,
			args.SendPage || args.GrantPage, args.SendEdpt, args.GrantPage)
	default:
		return nil // validation failures are covered by WF + fail frames elsewhere
	}
}

// rendezvousDeliverSpec checks a completed sender->receiver handoff: the
// receiver at the head of the endpoint queue is woken with the message.
// granted marks a zero-copy grant, which additionally moves the page
// OUT of the sender's space (crediting the sender's container).
func rendezvousDeliverSpec(old, new State, sender, ep Ptr, regs [4]uint64, hasPage, hasEdpt, granted bool) error {
	oe, ne := old.Endpoints[ep], new.Endpoints[ep]
	if err := check(oe.QueuedRecv && len(oe.Queue) > 0,
		"send completed with no waiting receiver"); err != nil {
		return err
	}
	recv := oe.Queue[0]
	nrt := new.Threads[recv]
	if err := firstErr(
		check(ptrsEqual(ne.Queue, oe.Queue[1:]), "receiver not dequeued"),
		check(nrt.State == pm.ThreadRunnable || nrt.State == pm.ThreadRunning,
			"woken receiver state = %v", nrt.State),
		check(nrt.WaitingOn == 0, "woken receiver still waiting"),
	); err != nil {
		return err
	}
	// The receiver's address space gains at most the transferred page;
	// the scalars land in its IPC state (checked concretely by kernel
	// tests; the abstract view tracks structure).
	exceptSpaces := []Ptr{}
	if hasPage {
		exceptSpaces = append(exceptSpaces, new.Threads[recv].OwningProc)
		oAS := old.AddressSpaces[old.Threads[recv].OwningProc]
		nAS := new.AddressSpaces[new.Threads[recv].OwningProc]
		if len(nAS) > len(oAS)+1 {
			return fmt.Errorf("page transfer grew receiver space by %d", len(nAS)-len(oAS))
		}
	}
	exceptCntrs := []Ptr{}
	if hasPage {
		exceptCntrs = append(exceptCntrs, new.Threads[recv].OwningCntr)
	}
	if granted {
		exceptSpaces = append(exceptSpaces, old.Threads[sender].OwningProc)
		exceptCntrs = append(exceptCntrs, old.Threads[sender].OwningCntr)
	}
	exceptThreads := []Ptr{sender, recv}
	return firstErr(
		threadsUnchangedModSched(old, new, exceptThreads...),
		check(ProcsUnchangedExcept(old, new), "delivery changed a process"),
		check(SpacesUnchangedExcept(old, new, exceptSpaces...), "delivery changed an unrelated space"),
		check(ContainersUnchangedExcept(old, new, exceptCntrs...), "delivery changed an unrelated container"),
		endpointsUnchangedModRefs(old, new, ep, hasEdpt),
	)
}

// endpointsUnchangedModRefs allows exactly the rendezvous endpoint's
// queue change, plus one refcount increment on a transferred endpoint.
func endpointsUnchangedModRefs(old, new State, ep Ptr, hasEdpt bool) error {
	bumped := 0
	for p, oe := range old.Endpoints {
		nep, ok := new.Endpoints[p]
		if !ok {
			return fmt.Errorf("endpoint %#x disappeared during IPC", p)
		}
		if p == ep {
			continue
		}
		if EndpointEqual(oe, nep) {
			continue
		}
		if hasEdpt && nep.RefCount == oe.RefCount+1 &&
			EndpointEqual(oe, Endpoint{Queue: nep.Queue, QueuedRecv: nep.QueuedRecv,
				RefCount: oe.RefCount, OwnerCntr: nep.OwnerCntr, Buffered: nep.Buffered}) {
			bumped++
			continue
		}
		return fmt.Errorf("IPC changed unrelated endpoint %#x", p)
	}
	if hasEdpt && bumped > 1 {
		return fmt.Errorf("IPC bumped %d endpoints", bumped)
	}
	return nil
}

// RecvSpec: a blocking recv queues the caller with direction
// "receivers"; a completing recv dequeues exactly one blocked sender,
// wakes it, and delivers its message to the caller.
func RecvSpec(old, new State, tid Ptr, slot int, args kernel.RecvArgs, ret kernel.Ret) error {
	ot, okCaller := old.Threads[tid]
	if !okCaller || slot < 0 || slot >= pm.MaxEndpoints || ot.Endpoints[slot] == 0 {
		return check(ret.Errno != kernel.OK && ret.Errno != kernel.EWOULDBLOCK,
			"recv on invalid slot did not fail")
	}
	ep := ot.Endpoints[slot]
	switch ret.Errno {
	case kernel.EWOULDBLOCK:
		nt := new.Threads[tid]
		oe, ne := old.Endpoints[ep], new.Endpoints[ep]
		return firstErr(
			check(nt.State == pm.ThreadBlockedRecv, "blocked receiver state = %v", nt.State),
			check(nt.WaitingOn == ep, "blocked receiver waits on %#x", nt.WaitingOn),
			check(len(ne.Queue) == len(oe.Queue)+1 &&
				ne.Queue[len(ne.Queue)-1] == tid, "receiver not queued"),
			check(ne.QueuedRecv, "queue direction wrong after blocking recv"),
			threadsUnchangedModSched(old, new, tid),
			check(EndpointsUnchangedExcept(old, new, ep), "blocking recv changed another endpoint"),
			check(ProcsUnchangedExcept(old, new), "blocking recv changed a process"),
			check(ContainersUnchangedExcept(old, new), "blocking recv changed a container"),
			check(SpacesUnchangedExcept(old, new), "blocking recv changed an address space"),
		)
	case kernel.OK:
		oe := old.Endpoints[ep]
		if len(oe.Buffered) > 0 {
			// Asynchronously buffered messages drain ahead of any
			// blocked sender; nothing is dequeued or woken.
			ne := new.Endpoints[ep]
			return firstErr(
				check(bufsEqual(ne.Buffered, oe.Buffered[1:]), "buffer not popped in order"),
				check(ptrsEqual(ne.Queue, oe.Queue), "buffered pop touched the queue"),
				threadsUnchangedModSched(old, new, tid),
				check(ProcsUnchangedExcept(old, new), "recv changed a process"),
				check(SpacesUnchangedExcept(old, new, ot.OwningProc), "recv changed an unrelated space"),
				check(ContainersUnchangedExcept(old, new, ot.OwningCntr), "recv changed an unrelated container"),
			)
		}
		if err := check(!oe.QueuedRecv && len(oe.Queue) > 0,
			"recv completed with no waiting sender"); err != nil {
			return err
		}
		sender := oe.Queue[0]
		nst := new.Threads[sender]
		exceptSpaces := []Ptr{ot.OwningProc}
		exceptCntrs := []Ptr{ot.OwningCntr}
		return firstErr(
			check(nst.State == pm.ThreadRunnable || nst.State == pm.ThreadRunning,
				"woken sender state = %v", nst.State),
			check(nst.WaitingOn == 0, "woken sender still waiting"),
			check(ptrsEqual(new.Endpoints[ep].Queue, oe.Queue[1:]), "sender not dequeued"),
			threadsUnchangedModSched(old, new, tid, sender),
			check(ProcsUnchangedExcept(old, new), "recv changed a process"),
			check(SpacesUnchangedExcept(old, new, exceptSpaces...), "recv changed an unrelated space"),
			check(ContainersUnchangedExcept(old, new, exceptCntrs...), "recv changed an unrelated container"),
		)
	default:
		return nil
	}
}

// CallReplySpec checks the call fastpath: the server (head of the
// receiver queue) is woken with the request and the caller ends blocked
// receiving on the same endpoint. granted marks a zero-copy page grant
// riding the request (caller's space shrinks, server's may grow).
func CallReplySpec(old, new State, tid Ptr, slot int, granted bool, ret kernel.Ret) error {
	ot, okCaller := old.Threads[tid]
	if !okCaller || slot < 0 || slot >= pm.MaxEndpoints || ot.Endpoints[slot] == 0 {
		return nil
	}
	ep := ot.Endpoints[slot]
	oe := old.Endpoints[ep]
	if ret.Errno != kernel.EWOULDBLOCK {
		return nil
	}
	if !oe.QueuedRecv || len(oe.Queue) == 0 {
		// Refused fastpath: nothing changed (the refusal precedes any
		// grant resolution).
		return check(Unchanged(old, new), "refused call changed state")
	}
	server := oe.Queue[0]
	nt := new.Threads[tid]
	nst := new.Threads[server]
	ne := new.Endpoints[ep]
	var exceptSpaces, exceptCntrs []Ptr
	if granted {
		exceptSpaces = append(exceptSpaces, ot.OwningProc, old.Threads[server].OwningProc)
		exceptCntrs = append(exceptCntrs, ot.OwningCntr, old.Threads[server].OwningCntr)
	}
	return firstErr(
		check(nt.State == pm.ThreadBlockedRecv && nt.WaitingOn == ep,
			"caller not blocked for reply"),
		check(nst.State == pm.ThreadRunnable || nst.State == pm.ThreadRunning,
			"server not woken"),
		check(len(ne.Queue) == len(oe.Queue) && ne.Queue[len(ne.Queue)-1] == tid,
			"caller not queued for reply"),
		threadsUnchangedModSched(old, new, tid, server),
		check(ProcsUnchangedExcept(old, new), "call changed a process"),
		check(ContainersUnchangedExcept(old, new, exceptCntrs...), "call changed a container"),
		check(SpacesUnchangedExcept(old, new, exceptSpaces...), "call changed an address space"),
	)
}

// SendAsyncSpec: an asynchronous send never blocks the caller. With a
// parked receiver it behaves as a completed rendezvous send; otherwise
// the message lands at the tail of the endpoint's buffer. A full buffer
// refuses with EAGAIN before any grant resolution, leaving state
// unchanged.
func SendAsyncSpec(old, new State, tid Ptr, slot int, args kernel.SendArgs, ret kernel.Ret) error {
	ot, okCaller := old.Threads[tid]
	if !okCaller || slot < 0 || slot >= pm.MaxEndpoints || ot.Endpoints[slot] == 0 {
		return check(ret.Errno != kernel.OK, "send_async on invalid slot did not fail")
	}
	if args.SendEdpt {
		return check(ret.Errno == kernel.EINVAL, "send_async with endpoint transfer not refused")
	}
	ep := ot.Endpoints[slot]
	oe := old.Endpoints[ep]
	if nt, ok := new.Threads[tid]; ok &&
		ot.State != pm.ThreadBlockedSend && ot.State != pm.ThreadBlockedRecv {
		if err := check(nt.State != pm.ThreadBlockedSend && nt.State != pm.ThreadBlockedRecv,
			"send_async blocked the caller"); err != nil {
			return err
		}
	}
	switch ret.Errno {
	case kernel.EAGAIN:
		return check(Unchanged(old, new), "refused send_async changed state")
	case kernel.OK:
		if oe.QueuedRecv && len(oe.Queue) > 0 {
			return rendezvousDeliverSpec(old, new, tid, ep, args.Regs,
				args.SendPage || args.GrantPage, false, args.GrantPage)
		}
		ne := new.Endpoints[ep]
		var exceptSpaces, exceptCntrs []Ptr
		if args.GrantPage {
			exceptSpaces = append(exceptSpaces, ot.OwningProc)
			exceptCntrs = append(exceptCntrs, ot.OwningCntr)
		}
		return firstErr(
			check(len(ne.Buffered) == len(oe.Buffered)+1 &&
				len(ne.Buffered) <= pm.MaxEndpointBuffer, "message not buffered"),
			check(bufsEqual(ne.Buffered[:len(oe.Buffered)], oe.Buffered), "buffer tail-append violated"),
			check(ne.Buffered[len(ne.Buffered)-1].HasPage == args.GrantPage, "buffered page flag wrong"),
			check(ptrsEqual(ne.Queue, oe.Queue), "buffered send_async touched the queue"),
			threadsUnchangedModSched(old, new, tid),
			check(EndpointsUnchangedExcept(old, new, ep), "buffered send_async changed another endpoint"),
			check(ProcsUnchangedExcept(old, new), "send_async changed a process"),
			check(SpacesUnchangedExcept(old, new, exceptSpaces...), "send_async changed an unrelated space"),
			check(ContainersUnchangedExcept(old, new, exceptCntrs...), "send_async changed an unrelated container"),
		)
	default:
		return nil
	}
}

// ReplyRecvSpec checks the combined reply+receive fastpath: the waiting
// client (head of the receiver queue) is woken with the reply, and the
// caller ends the transition blocked receiving on the same endpoint
// (or completes inline against an already-queued sender).
func ReplyRecvSpec(old, new State, tid Ptr, slot int, ret kernel.Ret) error {
	ot, okCaller := old.Threads[tid]
	if !okCaller || slot < 0 || slot >= pm.MaxEndpoints || ot.Endpoints[slot] == 0 {
		return check(ret.Errno != kernel.OK && ret.Errno != kernel.EWOULDBLOCK,
			"reply_recv on invalid slot did not fail")
	}
	ep := ot.Endpoints[slot]
	oe := old.Endpoints[ep]
	switch ret.Errno {
	case kernel.EWOULDBLOCK:
		nt := new.Threads[tid]
		ne := new.Endpoints[ep]
		if err := firstErr(
			check(nt.State == pm.ThreadBlockedRecv, "server not blocked: %v", nt.State),
			check(nt.WaitingOn == ep, "server waits on %#x", nt.WaitingOn),
			check(len(ne.Queue) > 0 && ne.Queue[len(ne.Queue)-1] == tid,
				"server not queued for the next request"),
			check(ne.QueuedRecv, "queue direction wrong"),
		); err != nil {
			return err
		}
		// If a client was waiting, it must have been woken.
		if oe.QueuedRecv && len(oe.Queue) > 0 {
			client := oe.Queue[0]
			nct := new.Threads[client]
			if err := firstErr(
				check(nct.State == pm.ThreadRunnable || nct.State == pm.ThreadRunning,
					"client not woken: %v", nct.State),
				check(nct.WaitingOn == 0, "client still waiting"),
				threadsUnchangedModSched(old, new, tid, client),
			); err != nil {
				return err
			}
		} else if err := threadsUnchangedModSched(old, new, tid); err != nil {
			return err
		}
		return firstErr(
			check(ProcsUnchangedExcept(old, new), "reply_recv changed a process"),
			check(ContainersUnchangedExcept(old, new), "reply_recv changed a container"),
			check(SpacesUnchangedExcept(old, new), "reply_recv changed an address space"),
		)
	case kernel.OK:
		// Inline completion against a queued sender.
		return check(!oe.QueuedRecv && len(oe.Queue) > 0,
			"reply_recv completed inline with no queued sender")
	default:
		return nil
	}
}

// KillContainerSpec: on success the whole subtree of the target vanishes
// (containers, processes, threads, their endpoints, address spaces); the
// parent's quota reflects the harvest; containers outside the subtree
// and off the ancestor path are unchanged except endpoint-descriptor
// revocations and waiter wakeups caused by dying endpoints.
func KillContainerSpec(old, new State, tid Ptr, target Ptr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return nil // denial paths leave state unchanged modulo nothing; WF covers the rest
	}
	oc, existed := old.Containers[target]
	if !existed {
		return fmt.Errorf("kill succeeded on unknown container")
	}
	dead := map[Ptr]bool{target: true}
	for s := range oc.Subtree {
		dead[s] = true
	}
	// Every dead container, its processes, and its threads are gone.
	for c := range dead {
		if _, still := new.Containers[c]; still {
			return fmt.Errorf("container %#x survived subtree kill", c)
		}
	}
	for p, op := range old.Procs {
		if dead[op.Owner] {
			if _, still := new.Procs[p]; still {
				return fmt.Errorf("process %#x survived container kill", p)
			}
			if _, still := new.AddressSpaces[p]; still {
				return fmt.Errorf("address space of %#x survived", p)
			}
		}
	}
	for th, oth := range old.Threads {
		if dead[oth.OwningCntr] {
			if _, still := new.Threads[th]; still {
				return fmt.Errorf("thread %#x survived container kill", th)
			}
		}
	}
	for e, oep := range old.Endpoints {
		if dead[oep.OwnerCntr] {
			if _, still := new.Endpoints[e]; still {
				return fmt.Errorf("endpoint %#x survived container kill", e)
			}
		}
	}
	// The parent is credited the carved quota.
	parent := oc.Parent
	opc, npc := old.Containers[parent], new.Containers[parent]
	if npc.UsedPages != opc.UsedPages-oc.QuotaPages {
		return fmt.Errorf("parent quota %d -> %d, want -%d",
			opc.UsedPages, npc.UsedPages, oc.QuotaPages)
	}
	// Surviving containers keep their quota accounting; surviving
	// address spaces are untouched.
	for p, os := range old.AddressSpaces {
		if dead[old.Procs[p].Owner] {
			continue
		}
		if !SpaceEqual(os, new.AddressSpaces[p]) {
			return fmt.Errorf("surviving address space %#x changed", p)
		}
	}
	for c, occ := range old.Containers {
		if dead[c] || c == parent {
			continue
		}
		ncc, ok := new.Containers[c]
		if !ok {
			return fmt.Errorf("container %#x outside subtree disappeared", c)
		}
		if occ.QuotaPages != ncc.QuotaPages || occ.UsedPages != ncc.UsedPages {
			return fmt.Errorf("container %#x accounting changed", c)
		}
	}
	// No dangling references: surviving threads' descriptors and
	// surviving endpoint queues never name dead objects.
	for th, nth := range new.Threads {
		for _, e := range nth.Endpoints {
			if e == 0 {
				continue
			}
			if _, ok := new.Endpoints[e]; !ok {
				return fmt.Errorf("thread %#x holds dangling endpoint %#x", th, e)
			}
		}
	}
	for e, nep := range new.Endpoints {
		for _, q := range nep.Queue {
			if _, ok := new.Threads[q]; !ok {
				return fmt.Errorf("endpoint %#x queues dead thread %#x", e, q)
			}
		}
	}
	return nil
}

// KillProcessSpec: the target process subtree vanishes; the container is
// credited for every reclaimed page; other processes are unchanged.
func KillProcessSpec(old, new State, tid Ptr, target Ptr, ret kernel.Ret) error {
	if ret.Errno != kernel.OK {
		return nil
	}
	op, existed := old.Procs[target]
	if !existed {
		return fmt.Errorf("kill_proc succeeded on unknown process")
	}
	// Collect the abstract process subtree.
	dead := map[Ptr]bool{}
	var mark func(p Ptr)
	mark = func(p Ptr) {
		dead[p] = true
		for _, ch := range old.Procs[p].Children {
			mark(ch)
		}
	}
	mark(target)
	for p := range dead {
		if _, still := new.Procs[p]; still {
			return fmt.Errorf("process %#x survived kill", p)
		}
	}
	for th, oth := range old.Threads {
		if dead[oth.OwningProc] {
			if _, still := new.Threads[th]; still {
				return fmt.Errorf("thread %#x survived process kill", th)
			}
		}
	}
	cntr := op.Owner
	occ, ncc := old.Containers[cntr], new.Containers[cntr]
	if ncc.UsedPages >= occ.UsedPages {
		return fmt.Errorf("kill_proc did not credit the container")
	}
	exceptProcs := make([]Ptr, 0, len(dead)+1)
	for p := range dead {
		exceptProcs = append(exceptProcs, p)
	}
	if op.Parent != 0 {
		exceptProcs = append(exceptProcs, op.Parent)
	}
	return check(ProcsUnchangedExcept(old, new, exceptProcs...),
		"kill_proc changed unrelated process")
}
