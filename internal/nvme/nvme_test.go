package nvme

import (
	"encoding/binary"
	"testing"

	"atmosphere/internal/hw"
)

// setup builds a device with pass-through DMA: SQ at frame 1, CQ at
// frame 2, data buffer at frame 3.
func setup(t *testing.T, blocks int) (*hw.PhysMem, *Device, hw.PhysAddr, hw.PhysAddr, hw.PhysAddr) {
	t.Helper()
	mem := hw.NewPhysMem(8)
	d := New(mem, nil, 0, blocks)
	sq := hw.PhysAddr(1 * hw.PageSize4K)
	cq := hw.PhysAddr(2 * hw.PageSize4K)
	buf := hw.PhysAddr(3 * hw.PageSize4K)
	d.CreateQueues(sq, cq, 16)
	return mem, d, sq, cq, buf
}

func submit(mem *hw.PhysMem, sq hw.PhysAddr, idx int, op byte, cid uint16, prp hw.PhysAddr, slba uint64) {
	var raw [SQESize]byte
	raw[0] = op
	binary.LittleEndian.PutUint16(raw[2:4], cid)
	binary.LittleEndian.PutUint64(raw[24:32], uint64(prp))
	binary.LittleEndian.PutUint64(raw[40:48], slba)
	mem.Write(sq+hw.PhysAddr(idx*SQESize), raw[:])
}

func TestWriteThenRead(t *testing.T) {
	mem, d, sq, cq, buf := setup(t, 64)
	payload := []byte("atmosphere block data")
	mem.Write(buf, payload)
	submit(mem, sq, 0, OpWrite, 7, buf, 5)
	if err := d.WriteSQDoorbell(1); err != nil {
		t.Fatal(err)
	}
	if d.Writes != 1 {
		t.Fatalf("writes = %d", d.Writes)
	}
	// Completion posted with matching CID and phase 1.
	cqe := mem.Read(cq, CQESize)
	if binary.LittleEndian.Uint16(cqe[12:14]) != 7 {
		t.Fatal("completion CID wrong")
	}
	sp := binary.LittleEndian.Uint16(cqe[14:16])
	if sp&1 != 1 || sp>>1 != 0 {
		t.Fatalf("status+phase = %#x", sp)
	}
	// Read it back into a clean buffer.
	mem.Write(buf, make([]byte, len(payload)))
	submit(mem, sq, 1, OpRead, 8, buf, 5)
	if err := d.WriteSQDoorbell(2); err != nil {
		t.Fatal(err)
	}
	if got := mem.Read(buf, uint64(len(payload))); string(got) != string(payload) {
		t.Fatalf("read back %q", got)
	}
}

func TestLBAOutOfRange(t *testing.T) {
	mem, d, sq, cq, buf := setup(t, 4)
	submit(mem, sq, 0, OpRead, 1, buf, 99)
	if err := d.WriteSQDoorbell(1); err != nil {
		t.Fatal(err)
	}
	sp := binary.LittleEndian.Uint16(mem.Read(cq+14, 2))
	if sp>>1 == 0 {
		t.Fatal("out-of-range LBA succeeded")
	}
}

func TestBadOpcode(t *testing.T) {
	mem, d, sq, cq, buf := setup(t, 4)
	submit(mem, sq, 0, 0x7f, 1, buf, 0)
	if err := d.WriteSQDoorbell(1); err != nil {
		t.Fatal(err)
	}
	sp := binary.LittleEndian.Uint16(mem.Read(cq+14, 2))
	if sp>>1 == 0 {
		t.Fatal("bad opcode succeeded")
	}
}

func TestPhaseFlipsOnWrap(t *testing.T) {
	mem, d, sq, cq, buf := setup(t, 64)
	// Issue 20 commands through a 16-deep queue: the CQ wraps and the
	// phase bit flips.
	tail := 0
	for i := 0; i < 20; i++ {
		submit(mem, sq, tail, OpRead, uint16(i), buf, 0)
		tail = (tail + 1) % 16
		if err := d.WriteSQDoorbell(tail); err != nil {
			t.Fatal(err)
		}
	}
	// Entry 16 wrapped to CQ slot 0 with phase 0.
	sp := binary.LittleEndian.Uint16(mem.Read(cq+14, 2))
	if sp&1 != 0 {
		t.Fatal("phase did not flip on wrap")
	}
	// Entry at slot 3 (command 19) also phase 0.
	sp = binary.LittleEndian.Uint16(mem.Read(cq+hw.PhysAddr(3*CQESize)+14, 2))
	if sp&1 != 0 {
		t.Fatal("later wrapped entry has wrong phase")
	}
}

func TestFlushCompletes(t *testing.T) {
	mem, d, sq, cq, buf := setup(t, 4)
	submit(mem, sq, 0, OpFlush, 3, buf, 0)
	if err := d.WriteSQDoorbell(1); err != nil {
		t.Fatal(err)
	}
	sp := binary.LittleEndian.Uint16(mem.Read(cq+14, 2))
	if sp>>1 != 0 {
		t.Fatal("flush failed")
	}
}

func TestMediaAt(t *testing.T) {
	mem, d, sq, _, buf := setup(t, 8)
	mem.Write(buf, []byte{1, 2, 3})
	submit(mem, sq, 0, OpWrite, 1, buf, 2)
	if err := d.WriteSQDoorbell(1); err != nil {
		t.Fatal(err)
	}
	if got := d.MediaAt(2); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatal("media content wrong")
	}
	if got := d.MediaAt(1); got[0] != 0 {
		t.Fatal("adjacent block clobbered")
	}
}
