package nvme

import (
	"encoding/binary"
	"testing"

	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/mem"
)

// submit writes one SQE into the queue and rings the doorbell.
func submitOne(t *testing.T, m *hw.PhysMem, d *Device, sq hw.PhysAddr, slot int, op byte, cid uint16, prp hw.PhysAddr, lba uint64) error {
	t.Helper()
	var raw [SQESize]byte
	raw[0] = op
	binary.LittleEndian.PutUint16(raw[2:4], cid)
	binary.LittleEndian.PutUint64(raw[24:32], uint64(prp))
	binary.LittleEndian.PutUint64(raw[40:48], lba)
	m.Write(sq+hw.PhysAddr(slot*SQESize), raw[:])
	return d.WriteSQDoorbell(slot + 1)
}

// cqeAt reads back the completion at index i.
func cqeAt(m *hw.PhysMem, cq hw.PhysAddr, i int) (cid uint16, status uint16, phase byte) {
	raw := m.Read(cq+hw.PhysAddr(i*CQESize), CQESize)
	cid = binary.LittleEndian.Uint16(raw[12:14])
	sp := binary.LittleEndian.Uint16(raw[14:16])
	return cid, sp >> 1, byte(sp & 1)
}

// TestDMAFaultWithoutMapping mirrors the nic test of the same name:
// a device behind an IOMMU with no domain faults on every access, and
// the fault is surfaced as an error plus a counter — never a panic.
func TestDMAFaultWithoutMapping(t *testing.T) {
	physmem := hw.NewPhysMem(16)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(physmem, clk, 1)
	iom, err := iommu.New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	d := New(physmem, iom, 9, 8)
	d.CreateQueues(hw.PageSize4K, 2*hw.PageSize4K, 4)
	if err := d.WriteSQDoorbell(1); err != ErrDMAFault {
		t.Fatalf("expected DMA fault, got %v", err)
	}
	if d.Faults == 0 {
		t.Fatal("fault not counted")
	}
}

// TestInjectedCmdError: an injected command error completes with
// StatusInternal and leaves the media untouched.
func TestInjectedCmdError(t *testing.T) {
	m, d, sq, cq, buf := setup(t, 8)
	cycles := uint64(0)
	inj, err := faults.NewInjector(7, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.NvmeCmdError, Rate: 1.0},
	}}, func() uint64 { return cycles })
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(inj)
	m.Write(buf, []byte("payload"))
	if err := submitOne(t, m, d, sq, 0, OpWrite, 11, buf, 3); err != nil {
		t.Fatal(err)
	}
	cid, status, phase := cqeAt(m, cq, 0)
	if cid != 11 || status != StatusInternal || phase != 1 {
		t.Fatalf("cqe cid=%d status=%#x phase=%d", cid, status, phase)
	}
	if d.InjectedErrors != 1 || d.Writes != 0 {
		t.Fatalf("errors=%d writes=%d", d.InjectedErrors, d.Writes)
	}
	if got := d.MediaAt(3); got[0] != 0 {
		t.Fatal("injected error wrote the media")
	}
}

// TestInjectedStallAndPoke: a stalled completion is invisible until its
// release cycle passes, then Poke posts it; a queue reset drops it.
func TestInjectedStallAndPoke(t *testing.T) {
	m, d, sq, cq, buf := setup(t, 8)
	cycles := uint64(0)
	inj, err := faults.NewInjector(7, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.NvmeStall, Rate: 1.0, Param: 500},
	}}, func() uint64 { return cycles })
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(inj)
	if err := submitOne(t, m, d, sq, 0, OpWrite, 5, buf, 1); err != nil {
		t.Fatal(err)
	}
	if d.StalledCompletions() != 1 || d.InjectedStalls != 1 {
		t.Fatalf("stalled=%d injected=%d", d.StalledCompletions(), d.InjectedStalls)
	}
	if _, _, phase := cqeAt(m, cq, 0); phase != 0 {
		t.Fatal("completion posted during stall")
	}
	// Not yet due.
	cycles = 100
	if err := d.Poke(); err != nil {
		t.Fatal(err)
	}
	if d.StalledCompletions() != 1 {
		t.Fatal("released early")
	}
	// Due now.
	cycles = 600
	if err := d.Poke(); err != nil {
		t.Fatal(err)
	}
	if d.StalledCompletions() != 0 {
		t.Fatal("not released")
	}
	if cid, status, phase := cqeAt(m, cq, 0); cid != 5 || status != StatusOK || phase != 1 {
		t.Fatalf("cqe cid=%d status=%#x phase=%d", cid, status, phase)
	}
	if d.Writes != 1 {
		t.Fatal("stall must not drop the write itself")
	}

	// A second stalled completion is dropped by a queue reset.
	if err := submitOne(t, m, d, sq, 1, OpWrite, 6, buf, 2); err != nil {
		t.Fatal(err)
	}
	if d.StalledCompletions() != 1 {
		t.Fatal("second stall missing")
	}
	d.CreateQueues(hw.PageSize4K, 2*hw.PageSize4K, 16)
	if d.StalledCompletions() != 0 {
		t.Fatal("reset must drop stalled completions")
	}
}
