// Package nvme models the PCIe-attached Intel P3700 SSD of §6.5.2: an
// admin-less NVMe subset with one I/O submission/completion queue pair
// living in simulated physical memory, doorbell registers, and a device
// performance envelope (per-command latency and sustained IOPS ceilings
// for 4 KiB sequential reads and writes) that the benchmarks combine
// with measured driver cycles to produce Figure 5.
package nvme

import (
	"encoding/binary"
	"errors"

	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
)

// Command opcodes (NVMe I/O command set).
const (
	OpFlush = 0x00
	OpWrite = 0x01
	OpRead  = 0x02
)

// Queue entry sizes per the NVMe spec.
const (
	SQESize = 64
	CQESize = 16
)

// BlockSize is the logical block size.
const BlockSize = 4096

// Device performance envelope, calibrated to the paper's P3700 numbers:
// 4 KiB sequential reads peak around 460K IOPS and writes around 256K
// IOPS; queue-depth-1 read latency bounds fio's unbatched run to ~13K
// IOPS (§6.5.2).
const (
	ReadMaxIOPS  = 460_000
	WriteMaxIOPS = 256_000
	// ReadLatencyCycles is the per-command read latency (≈76 µs at
	// 2.2 GHz, matching 13K IOPS at queue depth 1).
	ReadLatencyCycles = 168_000
	// WriteLatencyCycles is the per-command write latency (≈20 µs,
	// buffered writes).
	WriteLatencyCycles = 44_000
)

// Errors.
var (
	ErrQueueEmpty = errors.New("nvme: submission queue empty")
	ErrDMAFault   = errors.New("nvme: DMA fault")
	ErrBadLBA     = errors.New("nvme: LBA out of range")
	ErrBadOpcode  = errors.New("nvme: unsupported opcode")
)

// Completion status codes the device posts (status field, before the
// phase-bit shift).
const (
	StatusOK     = 0x0000
	StatusBadLBA = 0x0281
	StatusBadOp  = 0x0001
	// StatusInternal is the generic internal device error an injected
	// command fault completes with (recoverable by retry).
	StatusInternal = 0x0286
)

// Device is one simulated NVMe controller with a single I/O queue pair
// and an in-memory flash array (sized in blocks).
type Device struct {
	mem *hw.PhysMem
	iom *iommu.IOMMU
	dev iommu.DeviceID

	// Backing store: blocks of 4 KiB.
	media []byte
	nlb   uint64

	sqBase, cqBase hw.PhysAddr
	qSize          int
	sqHead, sqTail int
	cqTail         int
	phase          byte

	// inj, when set, may turn command executions into injected errors
	// or withhold completions (stalls) until their release cycle.
	inj     *faults.Injector
	stalled []stalledCQE

	// Stats.
	Reads, Writes, Faults uint64
	// InjectedErrors and InjectedStalls count faults the injector fired
	// in this device.
	InjectedErrors, InjectedStalls uint64
}

// stalledCQE is a completion withheld by an injected stall.
type stalledCQE struct {
	cid       uint16
	status    uint16
	releaseAt uint64
}

// New creates a device with capacity blocks of media, DMAing through
// the IOMMU (nil for pass-through).
func New(mem *hw.PhysMem, iom *iommu.IOMMU, dev iommu.DeviceID, capacityBlocks int) *Device {
	return &Device{
		mem: mem, iom: iom, dev: dev,
		media: make([]byte, capacityBlocks*BlockSize),
		nlb:   uint64(capacityBlocks),
		phase: 1,
	}
}

func (d *Device) translate(addr hw.PhysAddr) (hw.PhysAddr, bool) {
	if d.iom == nil {
		return addr, d.mem.Contains(addr, 1)
	}
	pa, ok := d.iom.Translate(d.dev, hw.VirtAddr(addr))
	return pa, ok
}

// SetInjector attaches the fault injector (nil disables injection).
func (d *Device) SetInjector(in *faults.Injector) { d.inj = in }

// CreateQueues programs the queue pair (driver's admin step). A queue
// reset drops any stalled completions — they belonged to the previous
// queue generation (controller reset semantics).
func (d *Device) CreateQueues(sq, cq hw.PhysAddr, size int) {
	d.sqBase, d.cqBase, d.qSize = sq, cq, size
	d.sqHead, d.sqTail, d.cqTail = 0, 0, 0
	d.phase = 1
	d.stalled = nil
}

// QueueSize returns the programmed queue depth.
func (d *Device) QueueSize() int { return d.qSize }

// DeviceID returns the PCIe function identity the device DMAs as.
func (d *Device) DeviceID() iommu.DeviceID { return d.dev }

// WriteSQDoorbell publishes submissions up to tail and processes them
// synchronously (wire/flash time is applied analytically via the
// latency/IOPS envelope by the benchmark layer).
func (d *Device) WriteSQDoorbell(tail int) error {
	d.sqTail = tail % d.qSize
	for d.sqHead != d.sqTail {
		if err := d.execute(d.sqHead); err != nil {
			return err
		}
		d.sqHead = (d.sqHead + 1) % d.qSize
	}
	return nil
}

// execute performs one submission queue entry: 64 bytes with opcode at
// 0, CID at 2, PRP at 24, SLBA at 40, NLB at 48.
func (d *Device) execute(idx int) error {
	sqe, ok := d.translate(d.sqBase + hw.PhysAddr(idx*SQESize))
	if !ok {
		d.Faults++
		return ErrDMAFault
	}
	raw := d.mem.Read(sqe, SQESize)
	opcode := raw[0]
	cid := binary.LittleEndian.Uint16(raw[2:4])
	prp := hw.PhysAddr(binary.LittleEndian.Uint64(raw[24:32]))
	slba := binary.LittleEndian.Uint64(raw[40:48])
	status := uint16(0)

	if d.inj.Hit(faults.NvmeCmdError) {
		// Injected internal error: the media is untouched and the
		// command completes with a retryable status.
		d.InjectedErrors++
		return d.complete(cid, StatusInternal)
	}

	switch opcode {
	case OpRead, OpWrite:
		if slba >= d.nlb {
			status = StatusBadLBA
			break
		}
		buf, ok := d.translate(prp)
		if !ok || !d.mem.Contains(buf, BlockSize) {
			d.Faults++
			return ErrDMAFault
		}
		off := slba * BlockSize
		if opcode == OpRead {
			d.mem.Write(buf, d.media[off:off+BlockSize])
			d.Reads++
		} else {
			copy(d.media[off:off+BlockSize], d.mem.Slice(buf, BlockSize))
			d.Writes++
		}
	case OpFlush:
		// Media is always durable in the model.
	default:
		status = StatusBadOp
	}
	return d.complete(cid, status)
}

// complete posts a completion queue entry, unless an injected stall
// withholds it until its release cycle (Poke posts it then).
func (d *Device) complete(cid uint16, status uint16) error {
	if hit, stallCycles := d.inj.Should(faults.NvmeStall); hit {
		d.InjectedStalls++
		d.stalled = append(d.stalled, stalledCQE{
			cid: cid, status: status, releaseAt: d.inj.Now() + stallCycles,
		})
		return nil
	}
	return d.postCQE(cid, status)
}

// postCQE writes one completion queue entry: CID at 12, status+phase at 14.
func (d *Device) postCQE(cid uint16, status uint16) error {
	cqe, ok := d.translate(d.cqBase + hw.PhysAddr(d.cqTail*CQESize))
	if !ok {
		d.Faults++
		return ErrDMAFault
	}
	var raw [CQESize]byte
	binary.LittleEndian.PutUint16(raw[12:14], cid)
	binary.LittleEndian.PutUint16(raw[14:16], status<<1|uint16(d.phase))
	d.mem.Write(cqe, raw[:])
	d.cqTail++
	if d.cqTail == d.qSize {
		d.cqTail = 0
		d.phase ^= 1
	}
	return nil
}

// Poke releases stalled completions whose release cycle has passed
// (drivers call it from their polling loops; time advances as the
// polling core charges cycles). Completions release in stall order.
func (d *Device) Poke() error {
	if len(d.stalled) == 0 {
		return nil
	}
	now := d.inj.Now()
	var kept []stalledCQE
	for i, s := range d.stalled {
		if s.releaseAt <= now {
			if err := d.postCQE(s.cid, s.status); err != nil {
				// Re-queue this entry and the remainder before
				// surfacing the fault.
				d.stalled = append(kept, d.stalled[i:]...)
				return err
			}
			continue
		}
		kept = append(kept, s)
	}
	d.stalled = kept
	return nil
}

// StalledCompletions reports how many completions an injected stall is
// currently withholding (tests and the supervisor's diagnostics).
func (d *Device) StalledCompletions() int { return len(d.stalled) }

// MediaAt returns the media contents for verification in tests.
func (d *Device) MediaAt(lba uint64) []byte {
	off := lba * BlockSize
	out := make([]byte, BlockSize)
	copy(out, d.media[off:off+BlockSize])
	return out
}
