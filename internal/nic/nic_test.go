package nic

import (
	"encoding/binary"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/mem"
	"atmosphere/internal/netproto"
)

// rawSetup builds a device over plain physical addressing with a ring at
// frame 1 and buffers at frames 2..n.
func rawSetup(t *testing.T, ringSize int) (*hw.PhysMem, *Device, []hw.PhysAddr) {
	t.Helper()
	mem := hw.NewPhysMem(4 + ringSize)
	d := New(mem, nil, 0)
	ring := hw.PhysAddr(hw.PageSize4K)
	var bufs []hw.PhysAddr
	for i := 0; i < ringSize; i++ {
		buf := hw.PhysAddr((2 + i) * hw.PageSize4K)
		bufs = append(bufs, buf)
		da := ring + hw.PhysAddr(i*DescSize)
		mem.WriteU64(da, uint64(buf))
		mem.Write(da+descStatus, []byte{0})
	}
	d.ConfigureRX(ring, ringSize)
	d.ConfigureTX(ring, ringSize) // same layout is fine for TX tests
	return mem, d, bufs
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(1, 16, 60)
	b := NewGenerator(1, 16, 60)
	for i := 0; i < 100; i++ {
		fa := append([]byte(nil), a.Next()...)
		fb := b.Next()
		if string(fa) != string(fb) {
			t.Fatalf("frame %d diverged", i)
		}
	}
}

func TestGeneratorFramesParse(t *testing.T) {
	g := NewGenerator(7, 8, 60)
	seen := map[netproto.IPv4]bool{}
	for i := 0; i < 64; i++ {
		f := g.Next()
		if len(f) < netproto.MinFrameLen {
			t.Fatalf("frame %d too short: %d", i, len(f))
		}
		p, err := netproto.ParseUDP(f)
		if err != nil {
			t.Fatal(err)
		}
		seen[p.SrcIP] = true
	}
	if len(seen) != 8 {
		t.Fatalf("flow diversity %d, want 8", len(seen))
	}
}

func TestDeliverRXAndStatus(t *testing.T) {
	mem, d, bufs := rawSetup(t, 8)
	d.AttachGenerator(NewGenerator(1, 4, 60))
	d.WriteRDT(7) // publish 7 descriptors
	n, err := d.DeliverRX(3)
	if err != nil || n != 3 {
		t.Fatalf("delivered %d err %v", n, err)
	}
	ring := hw.PhysAddr(hw.PageSize4K)
	for i := 0; i < 3; i++ {
		da := ring + hw.PhysAddr(i*DescSize)
		if mem.Read(da+descStatus, 1)[0]&StatusDD == 0 {
			t.Fatalf("descriptor %d not done", i)
		}
		length := binary.LittleEndian.Uint16(mem.Read(da+descLen, 2))
		if _, err := netproto.ParseUDP(mem.Read(bufs[i], uint64(length))); err != nil {
			t.Fatalf("frame %d unparsable: %v", i, err)
		}
	}
	if mem.Read(ring+3*DescSize+descStatus, 1)[0]&StatusDD != 0 {
		t.Fatal("descriptor 3 spuriously done")
	}
}

func TestDeliverRXDropsWhenRingFull(t *testing.T) {
	_, d, _ := rawSetup(t, 4)
	d.AttachGenerator(NewGenerator(1, 1, 60))
	d.WriteRDT(2) // only 2 free descriptors
	n, err := d.DeliverRX(5)
	if err != nil || n != 2 {
		t.Fatalf("delivered %d err %v", n, err)
	}
	if d.RxDropped != 3 {
		t.Fatalf("dropped %d, want 3", d.RxDropped)
	}
}

func TestTxTransmitsViaSink(t *testing.T) {
	mem, d, bufs := rawSetup(t, 8)
	var got [][]byte
	d.TxSink = func(f []byte) { got = append(got, append([]byte(nil), f...)) }
	// Fill two TX descriptors.
	frame := make([]byte, 128)
	n, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{1, 1, 1, 1}, netproto.IPv4{2, 2, 2, 2}, 5, 6, []byte("x"))
	mem.Write(bufs[0], frame[:n])
	ring := hw.PhysAddr(hw.PageSize4K)
	var lenb [2]byte
	binary.LittleEndian.PutUint16(lenb[:], uint16(n))
	mem.Write(ring+descLen, lenb[:])
	if err := d.WriteTDT(1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || d.TxSent != 1 {
		t.Fatalf("tx sink got %d frames", len(got))
	}
	if _, err := netproto.ParseUDP(got[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDMAFaultWithoutMapping(t *testing.T) {
	// Device behind an IOMMU with no domain: every access faults.
	physmem := hw.NewPhysMem(16)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(physmem, clk, 1)
	iom, err := iommu.New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	d := New(physmem, iom, 9)
	d.ConfigureRX(hw.PageSize4K, 4)
	d.AttachGenerator(NewGenerator(1, 1, 60))
	d.WriteRDT(3)
	if _, err := d.DeliverRX(1); err != ErrDMAFault {
		t.Fatalf("expected DMA fault, got %v", err)
	}
	if d.Faults == 0 {
		t.Fatal("fault not counted")
	}
}
