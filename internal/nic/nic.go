// Package nic models the Intel 82599 10 GbE controller (ixgbe) of
// §6.5.1: RX/TX descriptor rings living in simulated physical memory,
// DMA through the IOMMU, MMIO doorbells, and the 10 GbE line-rate
// ceiling. A deterministic packet generator stands in for the Pktgen
// load generator the paper drives the receive tests with.
package nic

import (
	"encoding/binary"
	"errors"
	"fmt"

	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
)

// Descriptor layout (simplified 82599 advanced descriptor): 16 bytes —
// 8-byte buffer address, 2-byte length, 1-byte status, 5 reserved.
const (
	DescSize   = 16
	descAddr   = 0
	descLen    = 8
	descStatus = 10

	// StatusDD is the descriptor-done bit the hardware sets on
	// completion.
	StatusDD = 1
)

// LineRatePps is the measured 64-byte packet rate of the paper's 10 GbE
// testbed (14.2 Mpps; theoretical maximum 14.88).
const LineRatePps = 14_200_000

// Errors.
var (
	ErrRingFull  = errors.New("nic: ring full")
	ErrRingEmpty = errors.New("nic: ring empty")
	ErrDMAFault  = errors.New("nic: DMA fault (IOMMU)")
	ErrGenerator = errors.New("nic: frame source failed to build a frame")
)

// Ring is one descriptor ring: the device's view of driver-provided
// descriptors at a physical (DMA) address.
type Ring struct {
	base hw.PhysAddr // descriptor array base (device-translated)
	size int
	// head is the device's consumer index; tail is the driver's
	// producer index (written via MMIO).
	head, tail int
}

// FrameSource produces the frames the wire delivers (the Pktgen
// substitute and stateful load generators like the wrk client).
type FrameSource interface {
	// Next returns the next frame; the slice may be reused across
	// calls (the device copies it into the DMA buffer immediately).
	Next() []byte
}

// Device is one simulated ixgbe function.
type Device struct {
	mem *hw.PhysMem
	iom *iommu.IOMMU
	dev iommu.DeviceID

	rx, tx Ring

	// gen feeds the RX path.
	gen FrameSource

	// TxSink, when set, receives a copy of each transmitted frame
	// (tests and the Maglev forwarding pipeline).
	TxSink TxSinkFunc

	// OnRxInterrupt, when set, fires once per DeliverRX call that
	// placed at least one frame (the device's coalesced RX interrupt;
	// polling drivers leave it nil, §6.5).
	OnRxInterrupt func()

	// inj, when set, may corrupt RX descriptors or fault DMA accesses.
	inj *faults.Injector

	// Stats.
	RxDelivered uint64
	TxSent      uint64
	RxDropped   uint64
	Faults      uint64
	// RxCorrupt counts injected descriptor corruptions; GenErrors
	// counts frames the source failed to produce; InjectedFaults
	// counts injected (as opposed to organic) DMA faults.
	RxCorrupt      uint64
	GenErrors      uint64
	InjectedFaults uint64
}

// TxSinkFunc receives transmitted frames.
type TxSinkFunc func(frame []byte)

// New creates a device that DMAs through the given IOMMU as device id
// dev (pass a nil IOMMU for pass-through/physical addressing, the
// atmo-driver static configuration).
func New(mem *hw.PhysMem, iom *iommu.IOMMU, dev iommu.DeviceID) *Device {
	return &Device{mem: mem, iom: iom, dev: dev}
}

// AttachGenerator connects the packet source for RX tests.
func (d *Device) AttachGenerator(g *Generator) { d.gen = g }

// AttachSource connects an arbitrary frame source (stateful load
// generators).
func (d *Device) AttachSource(s FrameSource) { d.gen = s }

// SetInjector attaches the fault injector (nil disables injection).
func (d *Device) SetInjector(in *faults.Injector) { d.inj = in }

// DeviceID returns the PCIe function identity the device DMAs as.
func (d *Device) DeviceID() iommu.DeviceID { return d.dev }

// translate resolves a driver-provided DMA address.
func (d *Device) translate(addr hw.PhysAddr) (hw.PhysAddr, bool) {
	if d.iom == nil {
		return addr, d.mem.Contains(addr, 1)
	}
	pa, ok := d.iom.Translate(d.dev, hw.VirtAddr(addr))
	return pa, ok
}

// ConfigureRX programs the RX ring (driver writes the base/size
// registers). base is a DMA address.
func (d *Device) ConfigureRX(base hw.PhysAddr, size int) {
	d.rx = Ring{base: base, size: size}
}

// ConfigureTX programs the TX ring.
func (d *Device) ConfigureTX(base hw.PhysAddr, size int) {
	d.tx = Ring{base: base, size: size}
}

// WriteRDT is the RX tail doorbell: the driver publishes descriptors up
// to (but excluding) tail.
func (d *Device) WriteRDT(tail int) { d.rx.tail = tail % d.rx.size }

// WriteTDT is the TX tail doorbell; the device transmits every
// descriptor between its head and the new tail synchronously (the
// wire-time pacing is applied analytically by the benchmarks via
// LineRatePps).
func (d *Device) WriteTDT(tail int) error {
	d.tx.tail = tail % d.tx.size
	for d.tx.head != d.tx.tail {
		if err := d.txOne(d.tx.head); err != nil {
			return err
		}
		d.tx.head = (d.tx.head + 1) % d.tx.size
	}
	return nil
}

func (d *Device) descAt(r *Ring, i int) (hw.PhysAddr, bool) {
	return d.translate(r.base + hw.PhysAddr(i*DescSize))
}

func (d *Device) txOne(i int) error {
	da, ok := d.descAt(&d.tx, i)
	if !ok {
		d.Faults++
		return ErrDMAFault
	}
	bufDMA := hw.PhysAddr(d.mem.ReadU64(da + descAddr))
	length := binary.LittleEndian.Uint16(d.mem.Read(da+descLen, 2))
	buf, ok := d.translate(bufDMA)
	if !ok || !d.mem.Contains(buf, uint64(length)) {
		d.Faults++
		return ErrDMAFault
	}
	// "Transmit": consume the frame (a real device would serialize it;
	// tests can capture via TxSink).
	if d.TxSink != nil {
		d.TxSink(d.mem.Read(buf, uint64(length)))
	}
	d.mem.Write(da+descStatus, []byte{StatusDD})
	d.TxSent++
	return nil
}

// DeliverRX makes the device fill up to n RX descriptors from the
// generator: DMA the frame into the driver's buffer and set DD. Returns
// packets delivered (0 when the ring has no free descriptors — packet
// drop, as on real hardware).
func (d *Device) DeliverRX(n int) (int, error) {
	if d.gen == nil {
		return 0, fmt.Errorf("nic: no generator attached")
	}
	delivered := 0
	for i := 0; i < n; i++ {
		if d.rx.head == d.rx.tail {
			// No free descriptors: the wire keeps going, the NIC drops.
			d.RxDropped += uint64(n - i)
			break
		}
		da, ok := d.descAt(&d.rx, d.rx.head)
		if !ok {
			d.Faults++
			return delivered, ErrDMAFault
		}
		if d.inj.Hit(faults.NicDMAFault) {
			// Injected translation failure: the access faults exactly
			// as if the IOMMU had rejected it.
			d.Faults++
			d.InjectedFaults++
			return delivered, ErrDMAFault
		}
		if d.inj.Hit(faults.NicDescCorrupt) {
			// Injected ring corruption: the descriptor completes with a
			// garbage (zero) length and no frame payload; a robust
			// driver must drop it without dereferencing the length.
			d.RxCorrupt++
			d.mem.Write(da+descLen, []byte{0, 0})
			d.mem.Write(da+descStatus, []byte{StatusDD})
			d.rx.head = (d.rx.head + 1) % d.rx.size
			continue
		}
		bufDMA := hw.PhysAddr(d.mem.ReadU64(da + descAddr))
		buf, ok := d.translate(bufDMA)
		if !ok {
			d.Faults++
			return delivered, ErrDMAFault
		}
		frame := d.gen.Next()
		if frame == nil {
			// The source failed to build a frame; surface it as a
			// device-level error rather than panicking.
			d.GenErrors++
			return delivered, ErrGenerator
		}
		if !d.mem.Contains(buf, uint64(len(frame))) {
			d.Faults++
			return delivered, ErrDMAFault
		}
		d.mem.Write(buf, frame)
		var lenb [2]byte
		binary.LittleEndian.PutUint16(lenb[:], uint16(len(frame)))
		d.mem.Write(da+descLen, lenb[:])
		d.mem.Write(da+descStatus, []byte{StatusDD})
		d.rx.head = (d.rx.head + 1) % d.rx.size
		d.RxDelivered++
		delivered++
	}
	if delivered > 0 && d.OnRxInterrupt != nil {
		d.OnRxInterrupt()
	}
	return delivered, nil
}

// RXDescDone reports whether descriptor i has completed (driver-side
// poll; the driver charges its own cycles).
func (d *Device) RXDescDone(i int) bool {
	da, ok := d.descAt(&d.rx, i)
	if !ok {
		return false
	}
	return d.mem.Read(da+descStatus, 1)[0]&StatusDD != 0
}
