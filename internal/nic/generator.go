package nic

import (
	"encoding/binary"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// Generator is the Pktgen substitute (§6.5.1): a deterministic source of
// 64-byte UDP frames at line rate, with configurable flow diversity so
// Maglev and the kv-store see realistic five-tuple distributions.
type Generator struct {
	rand  *hw.Rand
	flows int
	size  int
	// payload, when set, overrides the zero payload (kv-store requests).
	payloadFn func(i uint64, buf []byte) int

	count uint64
	frame []byte

	// errs counts frames that failed to build; lastErr keeps the most
	// recent failure for diagnostics. Both surface through the NIC's
	// device stats instead of panicking the driver process.
	errs    uint64
	lastErr error
}

// NewGenerator builds a generator with the given flow count and frame
// size (64 for the §6.5.1 tests; sizes below the minimum are padded).
func NewGenerator(seed uint64, flows, size int) *Generator {
	if flows < 1 {
		flows = 1
	}
	if size < netproto.MinFrameLen {
		size = netproto.MinFrameLen
	}
	return &Generator{rand: hw.NewRand(seed), flows: flows, size: size, frame: make([]byte, 2048)}
}

// SetPayload installs a payload builder invoked per packet.
func (g *Generator) SetPayload(fn func(i uint64, buf []byte) int) { g.payloadFn = fn }

// Count returns the number of frames generated.
func (g *Generator) Count() uint64 { return g.count }

// Errors returns the number of frames that failed to build.
func (g *Generator) Errors() uint64 { return g.errs }

// Err returns the most recent build failure, if any.
func (g *Generator) Err() error { return g.lastErr }

// Next produces the next frame. The returned slice is reused across
// calls; the device model copies it into the DMA buffer immediately.
func (g *Generator) Next() []byte {
	flow := uint32(g.count % uint64(g.flows))
	g.count++
	srcIP := netproto.IPv4{10, 0, byte(flow >> 8), byte(flow)}
	dstIP := netproto.IPv4{192, 168, 1, 1}
	var payload []byte
	if g.payloadFn != nil {
		n := g.payloadFn(g.count-1, g.frame[128:])
		payload = g.frame[128 : 128+n]
	} else {
		payload = g.frame[128:138]
		binary.LittleEndian.PutUint64(payload, g.count-1)
	}
	n, err := netproto.BuildUDP(g.frame[:128],
		netproto.MAC{2, 0, 0, 0, 0, 1}, netproto.MAC{2, 0, 0, 0, 0, 2},
		srcIP, dstIP, uint16(9000+flow%64), 53, payload)
	if err != nil {
		// A malformed frame must not take the driver process down: nil
		// tells the device to stop the burst and count the error.
		g.errs++
		g.lastErr = err
		return nil
	}
	if n < g.size {
		n = g.size // pad to the configured frame size
	}
	return g.frame[:n]
}
