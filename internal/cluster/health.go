package cluster

import "fmt"

// health is the front tier's backend prober: a UDP ping per backend
// every ProbeEvery ticks, DeadAfter consecutive misses evicts the
// backend from the Maglev table, LiveAfter consecutive replies after a
// respawn reinstates it. Everything is slice-indexed by backend — no
// maps anywhere near the deterministic path.
type health struct {
	inTable     []bool // mirrors maglev membership
	outstanding []bool
	sentAt      []uint64
	misses      []int
	oks         []int
	seq         uint64

	// Reconvergence bookkeeping (first chaos event of each kind).
	killAt    uint64 // tick the first backend kill fired
	removedAt uint64 // tick the health checker evicted it
	respawnAt uint64 // tick the supervisor brought it back
	addedAt   uint64 // tick the health checker reinstated it
}

func newHealth(backends int) *health {
	h := &health{
		inTable:     make([]bool, backends),
		outstanding: make([]bool, backends),
		sentAt:      make([]uint64, backends),
		misses:      make([]int, backends),
		oks:         make([]int, backends),
	}
	for i := range h.inTable {
		h.inTable[i] = true
	}
	return h
}

func (h *health) noteKill(b int, tick uint64) {
	if h.killAt == 0 {
		h.killAt = tick
	}
}

func (h *health) noteRespawn(b int, tick uint64) {
	if h.respawnAt == 0 {
		h.respawnAt = tick
	}
}

// step times out overdue probes and launches the next round. Probe
// replies arrive through the LB inbox (reply, below) before step runs,
// so a reply and its timeout can never both count in one tick.
func (h *health) step(c *Cluster, tick uint64) {
	if !c.machines[0].alive {
		return
	}
	for b := range h.inTable {
		if h.outstanding[b] && tick-h.sentAt[b] >= c.cfg.ProbeTimeout {
			h.outstanding[b] = false
			h.oks[b] = 0
			h.misses[b]++
			c.mix(evProbeMiss, uint64(b), tick)
			if h.inTable[b] && h.misses[b] >= c.cfg.DeadAfter {
				h.evict(c, b, tick)
			}
		}
		if tick%c.cfg.ProbeEvery == 0 && !h.outstanding[b] {
			h.outstanding[b] = true
			h.sentAt[b] = tick
			h.seq++
			c.probe(b, h.seq)
		}
	}
}

// reply consumes one probe echo routed up from the LB inbox.
func (h *health) reply(c *Cluster, b int, tick uint64) {
	if b < 0 || b >= len(h.inTable) || !h.outstanding[b] {
		return
	}
	h.outstanding[b] = false
	h.misses[b] = 0
	h.oks[b]++
	if !h.inTable[b] && h.oks[b] >= c.cfg.LiveAfter {
		h.reinstate(c, b, tick)
	}
}

func (h *health) evict(c *Cluster, b int, tick uint64) {
	if err := c.maglev.RemoveBackend(fmt.Sprintf("backend-%d", b)); err != nil {
		return
	}
	h.inTable[b] = false
	c.rep.RemoveEvents++
	c.mix(evRemove, uint64(b), tick)
	c.instant(c.nameRemove, uint64(b))
	if h.removedAt == 0 && h.killAt != 0 {
		h.removedAt = tick
	}
}

func (h *health) reinstate(c *Cluster, b int, tick uint64) {
	if err := c.maglev.AddBackend(fmt.Sprintf("backend-%d", b), backendIP(b)); err != nil {
		return
	}
	h.inTable[b] = true
	c.rep.AddEvents++
	c.mix(evAdd, uint64(b), tick)
	c.instant(c.nameAdd, uint64(b))
	if h.addedAt == 0 && h.respawnAt != 0 {
		h.addedAt = tick
	}
}
