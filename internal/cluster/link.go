package cluster

// link is one point-to-point wire of the topology. Frames take one
// tick per hop (plus any injected delay); a partitioned link drops
// everything, including what was already in flight — a yanked cable,
// not a paused one.
type link struct {
	id    int // 1-based fault target
	queue []inflight

	partitionedUntil uint64
	delayExtra       uint64 // one-shot, next frame only
	corruptNext      bool
}

type inflight struct {
	at       uint64 // delivery tick
	data     []byte
	toClient bool
	toLB     bool
}

// due removes and returns the frames whose delivery tick has arrived,
// preserving send order.
func (l *link) due(tick uint64) []inflight {
	var out []inflight
	keep := l.queue[:0]
	for _, f := range l.queue {
		if f.at <= tick {
			out = append(out, f)
		} else {
			keep = append(keep, f)
		}
	}
	l.queue = keep
	return out
}

// flush drops everything in flight and reports how many frames died.
func (l *link) flush() uint64 {
	n := uint64(len(l.queue))
	l.queue = l.queue[:0]
	return n
}
