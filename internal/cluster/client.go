package cluster

import (
	"encoding/binary"

	"atmosphere/internal/apps"
	"atmosphere/internal/netproto"
	"atmosphere/internal/obs"
)

// Flow states mirror the wrk client's: a flow owns one request at a
// time and walks deadline → backoff → retransmit until the budget runs
// out, at which point the request is counted lost and the flow freed.
const (
	flowIdle uint8 = iota
	flowWaiting
	flowBackoff
)

type flow struct {
	state     uint8
	op        byte
	needsSet  bool // read-repair: last GET missed, next request re-SETs
	firstAt   uint64
	sentAt    uint64
	nextTryAt uint64
	attempts  int
}

// client is the open-loop load generator: Rate new requests per tick
// regardless of completions (arrivals shed only when every flow is
// busy), each flow keyed by its index so a respawned backend's empty
// store shows up as misses the client repairs.
type client struct {
	c      *Cluster
	ip     netproto.IPv4
	mac    netproto.MAC
	flows  []flow
	cursor int

	latency *obs.Histogram
	frame   [256]byte
	key     [8]byte
	val     [8]byte
}

// clusterLatencyBuckets spans the 4-tick baseline RTT (80k cycles)
// through multi-retry tails.
var clusterLatencyBuckets = []uint64{
	80_000, 100_000, 120_000, 160_000, 200_000,
	300_000, 400_000, 600_000, 1_000_000, 2_000_000,
}

func newClient(c *Cluster) *client {
	cl := &client{
		c:   c,
		ip:  netproto.IPv4{10, 0, 0, 9},
		mac: netproto.MAC{2, 0, 0, 0, 0, 9},
	}
	cl.flows = make([]flow, c.cfg.Flows)
	for i := range cl.flows {
		cl.flows[i].needsSet = true // first request seeds the key
	}
	if c.cfg.Metrics != nil {
		name := c.cfg.Name
		if name == "" {
			name = "cluster"
		}
		cl.latency = c.cfg.Metrics.Histogram(name+".latency", clusterLatencyBuckets)
	} else {
		cl.latency = obs.NewHistogram(clusterLatencyBuckets)
	}
	return cl
}

func flowPort(i int) uint16 { return uint16(40000 + i) }

// step is the per-tick client work: admit Rate new requests, then run
// the retry state machine over in-flight flows in index order.
func (cl *client) step(tick uint64) {
	c := cl.c
	for n := 0; n < c.cfg.Rate; n++ {
		i, ok := cl.nextIdle()
		if !ok {
			c.rep.Shed++
			continue
		}
		f := &cl.flows[i]
		f.op = apps.KVGet
		if f.needsSet || c.rand.Float64() < c.cfg.SetFraction {
			f.op = apps.KVSet
		}
		f.state = flowWaiting
		f.firstAt = tick
		f.sentAt = tick
		f.attempts = 0
		cl.transmit(i, c.dist.BeginRequest(i, tick))
		c.rep.Sent++
	}
	for i := range cl.flows {
		f := &cl.flows[i]
		switch f.state {
		case flowWaiting:
			if tick-f.sentAt < c.cfg.DeadlineTicks {
				continue
			}
			c.rep.Timeouts++
			c.mix(evTimeout, uint64(i), tick)
			if f.attempts >= c.cfg.RetryBudget {
				c.rep.GaveUp++
				c.mix(evGaveUp, uint64(i), tick)
				c.dist.Abandon(i, tick)
				f.state = flowIdle
				continue
			}
			f.attempts++
			backoff := c.cfg.BackoffTicks << (f.attempts - 1)
			if backoff > c.cfg.BackoffCapTicks {
				backoff = c.cfg.BackoffCapTicks
			}
			f.nextTryAt = tick + backoff
			f.state = flowBackoff
			c.dist.Timeout(i, tick)
		case flowBackoff:
			if tick < f.nextTryAt {
				continue
			}
			f.state = flowWaiting
			f.sentAt = tick
			cl.transmit(i, c.dist.Retry(i, tick))
			c.rep.Retries++
			c.mix(evRetry, uint64(i), tick)
		}
	}
}

// nextIdle scans round-robin from the cursor for a free flow.
func (cl *client) nextIdle() (int, bool) {
	for scan := 0; scan < len(cl.flows); scan++ {
		i := cl.cursor
		cl.cursor = (cl.cursor + 1) % len(cl.flows)
		if cl.flows[i].state == flowIdle {
			return i, true
		}
	}
	return 0, false
}

// transmit builds and queues flow i's current request toward the VIP.
// With tracing on the attempt's trace header travels ahead of the kv
// request (hop 0, no parent — the client is the root).
func (cl *client) transmit(i int, traceID uint64) {
	f := &cl.flows[i]
	binary.LittleEndian.PutUint64(cl.key[:], uint64(i))
	var payload [64]byte
	var off int
	if cl.c.dist != nil {
		var err error
		off, err = netproto.EncodeTraceHeader(payload[:], netproto.TraceHeader{TraceID: traceID})
		if err != nil {
			panic(err)
		}
	}
	var n int
	var err error
	if f.op == apps.KVSet {
		binary.LittleEndian.PutUint64(cl.val[:], uint64(i)^0xa5a5)
		n, err = apps.BuildKVRequest(payload[off:], apps.KVSet, cl.key[:], cl.val[:])
	} else {
		n, err = apps.BuildKVRequest(payload[off:], apps.KVGet, cl.key[:], nil)
	}
	if err != nil {
		panic(err)
	}
	fn, err := netproto.BuildUDP(cl.frame[:], cl.mac, lbMAC, cl.ip, lbIP,
		flowPort(i), 80, payload[:off+n])
	if err != nil {
		panic(err)
	}
	cl.c.send(cl.c.links[0], cl.frame[:fn], false, false)
}

// consume handles one server→client frame off the client link.
func (cl *client) consume(data []byte, tick uint64) {
	c := cl.c
	p, err := netproto.ParseUDP(data)
	if err != nil || len(p.Payload) == 0 {
		c.rep.DroppedMalformed++
		return
	}
	body := p.Payload
	var traceID uint64
	if c.dist != nil {
		// Traced replies echo the request's header ahead of the kv
		// status. A header that fails to decode (corruption) is
		// counted and the frame dropped — it must never join, let
		// alone complete, someone else's trace.
		hdr, rest, err := netproto.DecodeTraceHeader(p.Payload)
		if err != nil || len(rest) == 0 {
			c.dist.RejectHeader()
			c.rep.DroppedMalformed++
			return
		}
		body = rest
		traceID = hdr.TraceID
	}
	i := int(p.DstPort) - 40000
	if i < 0 || i >= len(cl.flows) {
		c.rep.DroppedMalformed++
		return
	}
	f := &cl.flows[i]
	if f.state == flowIdle {
		// A straggler for a request we already gave up on (or a
		// duplicate from a retransmit racing the original).
		c.rep.Stragglers++
		return
	}
	// Join the completion to its trace. A false return (a stale
	// attempt's reply arriving while a newer request occupies the
	// flow) is counted by the collector; the flow itself behaves
	// identically either way, keeping traced and untraced runs in
	// cycle lockstep.
	c.dist.Complete(traceID, i, tick)
	cl.latency.Observe((tick - f.firstAt) * TickCycles)
	c.rep.Responses++
	c.mix(evResponse, uint64(i), tick)
	if f.op == apps.KVGet && body[0] == 0 {
		c.rep.Misses++
		f.needsSet = true
	} else {
		if f.needsSet && f.op == apps.KVSet {
			c.rep.SetRepairs++
		}
		f.needsSet = false
	}
	f.state = flowIdle
}

// inFlight counts flows with a request outstanding (the denominator of
// the <5%-lost SLO at kill time).
func (cl *client) inFlight() uint64 {
	var n uint64
	for i := range cl.flows {
		if cl.flows[i].state != flowIdle {
			n++
		}
	}
	return n
}
