package cluster

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
	"atmosphere/internal/obs/dist"
)

// Distributed-tracing hooks. With Config.DistTracing off, c.dist is
// nil and every hook is a no-op: no header goes on the wire and the
// run is byte-identical to an untraced build (the cluster analog of
// TestTracingIsFree, pinned by TestTracingIsFreeCluster). With it on,
// the client stamps a netproto trace header ahead of each kv request,
// the LB and backends record per-hop spans on their own tracers and
// forward the header with an updated hop count and parent span ref,
// and the reply carries the header back so the client can join the
// completion to the exact attempt that served it.
//
// Participant slots in the collector line up with machine node ids:
// slot 0 is the client (dist.ClientSlot), slot 1 the LB (lbNode), and
// slot 2+i backend i (firstBackend+i) — so machine.id doubles as the
// collector slot.

// Dist returns the run's trace collector (nil when DistTracing is
// off).
func (c *Cluster) Dist() *dist.Collector { return c.dist }

// distArrive notes a machine-bound frame's delivery into the machine's
// inbox. Probes and untraced frames decode to no header and are
// skipped; stale trace IDs are ignored inside the collector.
func (c *Cluster) distArrive(data []byte, machine int) {
	if c.dist == nil {
		return
	}
	p, err := netproto.ParseUDP(data)
	if err != nil {
		return
	}
	if hdr, _, err := netproto.DecodeTraceHeader(p.Payload); err == nil {
		c.dist.Arrive(hdr.TraceID, machine, c.tick)
	}
}

// distSpan records machine's handling of a traced frame — the span
// covers [before, now) on the machine's clock, placed on the shared
// timeline at tick*TickCycles plus the within-tick offset from base
// (the clock reading when the tick's batch started) — and rewrites the
// header in place with the new hop count and this span's ref, so the
// next machine links back to it. Must run before the frame (or the
// reply built from its payload) is queued: send copies the bytes.
func (c *Cluster) distSpan(payload []byte, machine int, kind dist.HopKind, hop uint8, base, before uint64, clk *hw.Clock) {
	if c.dist == nil {
		return
	}
	hdr, _, err := netproto.DecodeTraceHeader(payload)
	if err != nil {
		return
	}
	start := c.tick*TickCycles + (before - base)
	end := c.tick*TickCycles + (clk.Cycles() - base)
	if ref, ok := c.dist.Process(hdr.TraceID, machine, kind, c.tick, start, end, hdr.Parent); ok {
		// Cannot fail: the header just decoded from this buffer.
		if err := netproto.UpdateTraceHeader(payload, hop, ref); err != nil {
			panic(err)
		}
	}
}
