package cluster

import (
	"atmosphere/internal/apps"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/netproto"
	"atmosphere/internal/pm"
)

// lbMAC is the front machine's NIC address; backend MACs derive from
// their node id.
var lbMAC = netproto.MAC{2, 0, 0, 0, 0, 1}

// machineConfig is the per-node kernel shape: single core, small
// memory — the cluster charges app and syscall costs, not capacity.
func machineConfig() hw.Config {
	return hw.Config{Frames: 512, Cores: 1, TLBSlots: 64}
}

// machine is one node of the tier: a booted kernel plus the app it
// runs (kvstore for backends, nothing extra for the LB — Maglev state
// lives in the Cluster so it survives an LB respawn rebuild).
type machine struct {
	id   int // 1-based node id (fault target)
	name string

	k        *kernel.Kernel
	tid      pm.Ptr
	mac      netproto.MAC
	store    *apps.KVStore // nil on the LB
	storeCap uint64

	inbox        [][]byte
	alive        bool
	stalledUntil uint64
	diedAt       uint64
	gen          int

	// Cumulative across respawns, like the driver supervisors' stats.
	served, forwarded uint64
	kernelCrossings   uint64
	retiredCycles     uint64 // cycles from generations that died
	Kills, Stalls     uint64
}

func newMachine(id int, name string, storeCap uint64) (*machine, error) {
	m := &machine{
		id: id, name: name, storeCap: storeCap,
		mac: netproto.MAC{2, 0, 0, 0, 0, byte(id)},
	}
	if err := m.boot(); err != nil {
		return nil, err
	}
	return m, nil
}

// boot starts a fresh generation: new kernel, new (empty) store.
func (m *machine) boot() error {
	k, tid, err := kernel.Boot(machineConfig())
	if err != nil {
		return err
	}
	m.k = k
	m.tid = tid
	if m.storeCap > 0 {
		s, err := apps.NewKVStore(m.storeCap, 8, 8)
		if err != nil {
			return err
		}
		m.store = s
	}
	m.alive = true
	m.stalledUntil = 0
	m.inbox = m.inbox[:0]
	return nil
}

// respawn replaces the dead generation. Store state is NOT carried
// over: a machine's memory dies with it, which is exactly what the
// client's read-repair path exists to absorb.
func (m *machine) respawn() error {
	m.retiredCycles += m.k.Machine.TotalCycles()
	m.gen++
	return m.boot()
}

// ready reports whether the machine processes its inbox this tick
// (alive and not mid-stall; a stalled machine keeps its inbox queued).
func (m *machine) ready(tick uint64) bool {
	return m.alive && tick >= m.stalledUntil
}

func (m *machine) clock() *hw.Clock { return &m.k.Machine.Core(0).Clock }

// crossKernel charges one user→kernel→user round trip for the tick's
// batch, the same SysYield the drivers use as their crossing.
func (m *machine) crossKernel() {
	m.k.SysYield(0, m.tid)
	m.kernelCrossings++
}

// TotalCycles sums the machine's burned cycles across all generations.
func (m *machine) TotalCycles() uint64 {
	return m.retiredCycles + m.k.Machine.TotalCycles()
}

// Generation returns how many times the machine has respawned.
func (m *machine) Generation() int { return m.gen }

// Alive reports liveness (test hook).
func (m *machine) Alive() bool { return m.alive }

// Served returns the cumulative request count (test hook).
func (m *machine) Served() uint64 { return m.served }
