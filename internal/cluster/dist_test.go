package cluster

import (
	"bytes"
	"strings"
	"testing"

	"atmosphere/internal/faults"
	"atmosphere/internal/netproto"
	"atmosphere/internal/obs/dist"
)

// distChaosConfig is a shortened chaos run with tracing on: backend 1
// (node 3) killed at tick 400, respawned at 700, run ends at 1200 —
// kills, retries, give-ups, and reinstatement all inside the window.
func distChaosConfig() Config {
	cfg := DefaultConfig()
	cfg.Ticks = 1200
	cfg.DistTracing = true
	cfg.Plan = faults.Plan{Rules: []faults.Rule{{
		Kind:   faults.MachineKill,
		Period: 400 * TickCycles,
		Until:  401 * TickCycles,
		Target: 3,
	}}}
	return cfg
}

// TestDistDecompositionExact is the acceptance property: over a chaos
// run with a machine kill, every completed request's five latency
// components sum exactly to its measured end-to-end latency, no trace
// is irregular, and the collector's joins reconcile with the client's
// response counter.
func TestDistDecompositionExact(t *testing.T) {
	c, err := New(distChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()
	if rep.Kills < 1 {
		t.Fatalf("chaos run killed nothing (kills=%d)", rep.Kills)
	}
	col := c.Dist()
	recs := col.Completed()
	if uint64(len(recs)) != rep.DistCompleted || len(recs) == 0 {
		t.Fatalf("completed: %d recs vs DistCompleted=%d", len(recs), rep.DistCompleted)
	}
	var retried int
	var sumLatency uint64
	for k, rec := range recs {
		if rec.Irregular {
			t.Fatalf("rec %d irregular: %+v", k, rec)
		}
		if want := (rec.EndTick - rec.FirstTick) * TickCycles; rec.Latency != want {
			t.Fatalf("rec %d latency %d, ticks say %d", k, rec.Latency, want)
		}
		if got := rec.Comp.Total(); got != rec.Latency {
			t.Fatalf("rec %d components sum %d != latency %d (%+v)", k, got, rec.Latency, rec.Comp)
		}
		if rec.Attempts == 1 {
			if rec.Comp.Backoff != 0 || rec.Comp.ClientQueue != 0 || rec.TraceID != rec.Root {
				t.Fatalf("rec %d first-attempt completion carries retry components: %+v", k, rec)
			}
		} else {
			retried++
		}
		// The critical path is client → LB → backend → LB.
		if rec.Hops[0].Machine != lbNode || rec.Hops[2].Machine != lbNode || rec.Hops[1].Machine < firstBackend {
			t.Fatalf("rec %d hop machines: %+v", k, rec.Hops)
		}
		sumLatency += rec.Latency
	}
	if rep.DistIrregular != 0 || rep.DistHeaderRejects != 0 {
		t.Fatalf("irregular=%d rejects=%d, want 0/0", rep.DistIrregular, rep.DistHeaderRejects)
	}
	// Every client-side response either completed a trace or was a
	// stale attempt of a retired request; give-ups map to abandons.
	if rep.DistCompleted+rep.DistStale != rep.Responses {
		t.Fatalf("completed %d + stale %d != responses %d", rep.DistCompleted, rep.DistStale, rep.Responses)
	}
	if rep.DistAbandoned != rep.GaveUp {
		t.Fatalf("abandoned %d != gave-up %d", rep.DistAbandoned, rep.GaveUp)
	}
	if retried == 0 {
		t.Error("no completed request was retried — the chaos window proved nothing about backoff attribution")
	}
	// The attribution's totals are the per-record sums.
	a := col.Attribution(4)
	if a.TotalLatency != sumLatency || a.Comp.Total() != sumLatency {
		t.Fatalf("attribution totals %d/%d, want %d", a.TotalLatency, a.Comp.Total(), sumLatency)
	}
	if len(a.TopK) != 4 || a.TopK[0].Latency < a.Rows[2].Rec.Latency {
		t.Fatalf("topK/p999 inconsistent: top=%d p999=%d", a.TopK[0].Latency, a.Rows[2].Rec.Latency)
	}
	// Per-machine service histograms merged: one observation per hop.
	if got := col.ServiceHistogram().Count(); got == 0 {
		t.Error("merged service histogram empty")
	}
}

// TestDistTraceIDMatchesWireFormat pins the collector's trace-ID
// derivation to netproto.TraceID — the two are implemented separately
// (obs must not depend on the wire layer) and must never drift.
func TestDistTraceIDMatchesWireFormat(t *testing.T) {
	col := dist.New(dist.Config{TickCycles: TickCycles, Seed: 99}, []string{"client", "lb"}, 8)
	if got, want := col.BeginRequest(3, 1), netproto.TraceID(99, 3, 0, 0); got != want {
		t.Fatalf("first request: collector %#x, wire %#x", got, want)
	}
	col.Timeout(3, 17)
	if got, want := col.Retry(3, 25), netproto.TraceID(99, 3, 0, 1); got != want {
		t.Fatalf("retry attempt: collector %#x, wire %#x", got, want)
	}
	col.Abandon(3, 40)
	if got, want := col.BeginRequest(3, 50), netproto.TraceID(99, 3, 1, 0); got != want {
		t.Fatalf("second request: collector %#x, wire %#x", got, want)
	}
}

// TestDistMergedExportDeterministic runs the same traced chaos seed
// twice and requires byte-identical merged exports and attribution
// text — the cluster-level determinism anchor behind the CI check.
func TestDistMergedExportDeterministic(t *testing.T) {
	render := func() (string, string) {
		c, err := New(distChaosConfig())
		if err != nil {
			t.Fatal(err)
		}
		c.Run()
		var merged bytes.Buffer
		if err := dist.WriteMerged(&merged, c.Dist()); err != nil {
			t.Fatal(err)
		}
		var report strings.Builder
		if err := c.Dist().Attribution(8).WriteText(&report); err != nil {
			t.Fatal(err)
		}
		return merged.String(), report.String()
	}
	m1, r1 := render()
	m2, r2 := render()
	if m1 != m2 {
		t.Errorf("merged exports differ across same-seed runs (%d vs %d bytes)", len(m1), len(m2))
	}
	if r1 != r2 {
		t.Errorf("attribution reports differ:\n%s\nvs\n%s", r1, r2)
	}
	for _, want := range []string{"\"process_name\"", "\"client\"", "\"lb\"", "\"backend-0\"",
		"\"req.client\"", "\"req.lb\"", "\"req.backend\"", "\"ph\":\"s\"", "\"ph\":\"f\",", "\"bp\":\"e\""} {
		if !strings.Contains(m1, want) {
			t.Errorf("merged export missing %s", want)
		}
	}
}

// TestDistRejectsCorruptReplyHeader delivers hand-corrupted reply
// frames straight to the client: a damaged or truncated trace header
// must be counted and dropped — never joined — and must not panic.
func TestDistRejectsCorruptReplyHeader(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistTracing = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.tick = 1
	c.client.step(1) // puts real requests in flight so a mis-join would have a victim
	build := func(payload []byte) []byte {
		var frame [256]byte
		n, err := netproto.BuildUDP(frame[:], lbMAC, c.client.mac, lbIP, c.client.ip,
			80, flowPort(0), payload)
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), frame[:n]...)
	}
	// No magic at all, then a real header with a flipped trace-ID byte,
	// then one truncated mid-header.
	// Nonzero hop/parent so a truncation stays visible even after short
	// frames are zero-padded back to the Ethernet minimum.
	garbage := bytes.Repeat([]byte{0x55}, 24)
	var hdr [netproto.TraceHeaderLen]byte
	if _, err := netproto.EncodeTraceHeader(hdr[:], netproto.TraceHeader{TraceID: 0xabcdef, Hop: 2, Parent: 0xfeedface}); err != nil {
		t.Fatal(err)
	}
	flipped := append(append([]byte(nil), hdr[:]...), 1)
	flipped[7] ^= 0x80
	truncated := append([]byte(nil), hdr[:netproto.TraceHeaderLen-4]...)

	before := c.rep.DroppedMalformed
	for _, payload := range [][]byte{garbage, flipped, truncated} {
		c.client.consume(build(payload), 2)
	}
	rep := c.Report()
	if rep.DistHeaderRejects != 3 {
		t.Fatalf("header rejects = %d, want 3", rep.DistHeaderRejects)
	}
	if rep.DroppedMalformed != before+3 {
		t.Fatalf("dropped malformed = %d, want %d", rep.DroppedMalformed, before+3)
	}
	if rep.Responses != 0 || rep.DistCompleted != 0 {
		t.Fatalf("a corrupt reply completed a request: %+v", rep)
	}
}
