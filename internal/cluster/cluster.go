// Package cluster scales the evaluation from one kernel to a serving
// tier: N kernel.Kernel instances ("machines") joined by simulated NIC
// links speaking internal/netproto, a Maglev front machine consistent-
// hashing flows onto kvstore backend shards, and an open-loop wrk-style
// client driving the topology — all on one deterministic clock, so
// chaos runs (machine kills, link partitions) replay byte-identically
// from a seed. This is ROADMAP item 2: the separation-kernel discipline
// one level up — a dead machine must not take down the tier, and the
// run measures how long the tier takes to reconverge.
package cluster

import (
	"fmt"

	"atmosphere/internal/apps"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/dist"
)

// TickCycles is the simulation quantum: every tick advances the shared
// cluster clock by this many cycles, and every link hop takes one tick.
// At 2.2 GHz a tick is ~9 µs, so the 4-hop client→LB→backend→LB→client
// round trip lands at ~36 µs — datacenter-RTT scale.
const TickCycles = 20_000

// ProbePort is the UDP port the front tier health-checks backends on.
const ProbePort = 9

// Config shapes a cluster run. Durations are in ticks (multiply by
// TickCycles for cycles); the fault plan stays in cycles like every
// other injector user.
type Config struct {
	Name         string // metric-name prefix ("cluster" when empty)
	Backends     int    // backend machine count
	Flows        int    // concurrent client flows (one request in flight each)
	Rate         int    // open-loop arrivals per tick
	Ticks        uint64 // run length
	Seed         uint64
	TableSize    uint64 // Maglev table size (prime)
	StoreEntries uint64 // per-backend kvstore capacity
	SetFraction  float64

	// Client retry policy, in ticks.
	DeadlineTicks   uint64
	BackoffTicks    uint64
	BackoffCapTicks uint64
	RetryBudget     int

	// Front-tier health checking, in ticks.
	ProbeEvery   uint64
	ProbeTimeout uint64
	DeadAfter    int // consecutive probe misses before removal
	LiveAfter    int // consecutive probe replies before reinstatement

	// Supervisor respawn delay, in ticks.
	RespawnDelayTicks uint64

	// Distributed tracing (internal/obs/dist): when on, every request
	// carries a 16-byte trace header, each machine records per-hop
	// spans on its own tracer, and the run can export a merged
	// multi-machine Perfetto trace with critical-path attribution.
	// Cycle-free: the traced run charges exactly the cycles of an
	// untraced one (only the wire bytes and the TraceHash differ).
	DistTracing  bool
	DistEventCap int // per-participant ring capacity (obs default when 0)

	Plan    faults.Plan
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// DefaultConfig is the bench topology: 4 backends, 1024 flows, 8
// arrivals/tick.
func DefaultConfig() Config {
	return Config{
		Backends:     4,
		Flows:        1024,
		Rate:         8,
		Ticks:        2000,
		Seed:         1107,
		TableSize:    4093,
		StoreEntries: 1 << 13,
		SetFraction:  0.1,

		DeadlineTicks:   16,
		BackoffTicks:    8,
		BackoffCapTicks: 64,
		RetryBudget:     3,

		ProbeEvery:   5,
		ProbeTimeout: 4,
		DeadAfter:    2,
		LiveAfter:    2,

		RespawnDelayTicks: 300,
	}
}

// Node ids (1-based, for fault targeting): 1 is the load-balancer
// machine, 2..Backends+1 the backend machines. The client is not a
// machine — it models the outside world. Link ids: 1 is client↔LB,
// 2..Backends+1 is LB↔backend(id-2).
const (
	lbNode        = 1
	firstBackend  = 2
	clientLink    = 1
	firstBackLink = 2
)

// Cluster is one multi-machine serving tier.
type Cluster struct {
	cfg    Config
	tick   uint64
	rand   *hw.Rand
	inj    *faults.Injector
	maglev *apps.Maglev

	machines []*machine // [0] = LB, [1..B] = backends
	links    []*link    // [0] = client link, [1..B] = backend links
	client   *client
	health   *health
	dist     *dist.Collector // nil unless cfg.DistTracing

	tracer *obs.Tracer
	track  obs.TrackID
	nameKill, nameRespawn, nameRemove, nameAdd,
	nameStall, namePartition obs.NameID

	frame [2048]byte // scratch for reply/probe construction
	rep   Report
	hash  uint64
}

// lbIP is the virtual IP clients address; backendIP(i) derives backend
// i's address arithmetically so IP→index needs no map.
var lbIP = netproto.IPv4{192, 168, 1, 1}

func backendIP(i int) netproto.IPv4 { return netproto.IPv4{172, 16, 0, byte(i + 1)} }

func backendIndex(ip netproto.IPv4) int {
	if ip[0] != 172 || ip[1] != 16 || ip[2] != 0 || ip[3] == 0 {
		return -1
	}
	return int(ip[3]) - 1
}

// New assembles the tier: boots every machine, populates the Maglev
// table over all backends, and arms the fault injector against the
// shared clock.
func New(cfg Config) (*Cluster, error) {
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("cluster: need at least one backend")
	}
	if cfg.Flows < 1 || cfg.Rate < 1 || cfg.Ticks == 0 {
		return nil, fmt.Errorf("cluster: flows, rate, and ticks must be positive")
	}
	c := &Cluster{cfg: cfg, rand: hw.NewRand(cfg.Seed), hash: fnvOffset}
	inj, err := faults.NewInjector(cfg.Seed+1, cfg.Plan, func() uint64 { return c.tick * TickCycles })
	if err != nil {
		return nil, err
	}
	c.inj = inj
	if cfg.Tracer != nil {
		c.tracer = cfg.Tracer
		c.track = c.tracer.Track(100, "cluster", "events")
		c.nameKill = c.tracer.Name("machine-kill")
		c.nameRespawn = c.tracer.Name("machine-respawn")
		c.nameRemove = c.tracer.Name("backend-remove")
		c.nameAdd = c.tracer.Name("backend-add")
		c.nameStall = c.tracer.Name("machine-stall")
		c.namePartition = c.tracer.Name("link-partition")
		inj.SetTracer(c.tracer)
	}

	names := make([]string, cfg.Backends)
	addrs := make([]netproto.IPv4, cfg.Backends)
	for i := 0; i < cfg.Backends; i++ {
		names[i] = fmt.Sprintf("backend-%d", i)
		addrs[i] = backendIP(i)
	}
	c.maglev, err = apps.NewMaglev(names, addrs, cfg.TableSize)
	if err != nil {
		return nil, err
	}

	lb, err := newMachine(lbNode, "lb", 0)
	if err != nil {
		return nil, err
	}
	c.machines = append(c.machines, lb)
	for i := 0; i < cfg.Backends; i++ {
		m, err := newMachine(firstBackend+i, names[i], cfg.StoreEntries)
		if err != nil {
			return nil, err
		}
		c.machines = append(c.machines, m)
	}
	for i := 0; i <= cfg.Backends; i++ {
		c.links = append(c.links, &link{id: clientLink + i})
	}
	c.client = newClient(c)
	c.health = newHealth(cfg.Backends)
	if cfg.DistTracing {
		participants := append([]string{"client", "lb"}, names...)
		c.dist = dist.New(
			dist.Config{EventCap: cfg.DistEventCap, TickCycles: TickCycles, Seed: cfg.Seed},
			participants, cfg.Flows)
	}
	return c, nil
}

// Run executes the configured number of ticks and returns the report.
func (c *Cluster) Run() Report {
	for c.tick < c.cfg.Ticks {
		c.Step()
	}
	return c.Report()
}

// Step advances the cluster one tick. The sub-step order is fixed —
// faults, supervisor, client arrivals, link delivery, LB, backends,
// health — so a seed fully determines the event sequence.
func (c *Cluster) Step() {
	c.tick++
	c.injectFaults()
	c.supervise()
	c.client.step(c.tick)
	c.deliver()
	c.lbStep()
	c.backendsStep()
	c.health.step(c, c.tick)
}

// injectFaults consults the injector for every machine and link, in id
// order, once per tick.
func (c *Cluster) injectFaults() {
	for _, m := range c.machines {
		if hit, _ := c.inj.ShouldFor(faults.MachineKill, uint64(m.id)); hit && m.alive {
			c.killMachine(m)
		}
		if hit, param := c.inj.ShouldFor(faults.MachineStall, uint64(m.id)); hit && m.alive {
			m.stalledUntil = c.tick + ticksFromCycles(param)
			m.Stalls++
			c.mix(evStall, uint64(m.id), c.tick)
			c.instant(c.nameStall, uint64(m.id))
		}
	}
	for _, l := range c.links {
		if hit, param := c.inj.ShouldFor(faults.LinkPartition, uint64(l.id)); hit {
			l.partitionedUntil = c.tick + ticksFromCycles(param)
			dropped := l.flush()
			c.rep.DroppedLink += dropped
			c.mix(evPartition, uint64(l.id), dropped)
			c.instant(c.namePartition, uint64(l.id))
		}
		if hit, param := c.inj.ShouldFor(faults.LinkDelay, uint64(l.id)); hit {
			l.delayExtra = ticksFromCycles(param)
		}
		if hit, _ := c.inj.ShouldFor(faults.LinkCorrupt, uint64(l.id)); hit {
			l.corruptNext = true
		}
	}
}

// ticksFromCycles converts a fault Param given in cycles to ticks,
// never rounding to zero (a fired fault always bites for one tick).
func ticksFromCycles(cycles uint64) uint64 {
	t := cycles / TickCycles
	if t == 0 {
		t = 1
	}
	return t
}

func (c *Cluster) killMachine(m *machine) {
	m.alive = false
	m.diedAt = c.tick
	m.stalledUntil = 0
	c.rep.DroppedDead += uint64(len(m.inbox))
	m.inbox = m.inbox[:0]
	m.Kills++
	c.rep.Kills++
	c.mix(evKill, uint64(m.id), c.tick)
	c.instant(c.nameKill, uint64(m.id))
	if m.id >= firstBackend {
		b := m.id - firstBackend
		c.health.noteKill(b, c.tick)
		if c.rep.FirstKillTick == 0 {
			c.rep.FirstKillTick = c.tick
			c.rep.InFlightAtKill = c.client.inFlight()
		}
	}
}

// supervise respawns dead machines after the respawn delay: a fresh
// kernel boot and an empty store (state died with the machine — the
// client's read-repair refills it), with stats cumulative across
// generations like the driver supervisors.
func (c *Cluster) supervise() {
	for _, m := range c.machines {
		if m.alive || c.tick < m.diedAt+c.cfg.RespawnDelayTicks {
			continue
		}
		if err := m.respawn(); err != nil {
			// Respawn cannot fail with a valid config; surface loudly.
			panic(fmt.Sprintf("cluster: respawn %s: %v", m.name, err))
		}
		c.rep.Respawns++
		c.mix(evRespawn, uint64(m.id), c.tick)
		c.instant(c.nameRespawn, uint64(m.id))
		if m.id >= firstBackend {
			c.health.noteRespawn(m.id-firstBackend, c.tick)
		}
	}
}

// deliver moves due frames: the client link's LB-bound frames into the
// LB inbox and client-bound frames into the client; backend links
// likewise by direction.
func (c *Cluster) deliver() {
	for _, l := range c.links {
		for _, f := range l.due(c.tick) {
			c.rep.Delivered++
			c.mix(evDeliver, uint64(l.id), uint64(len(f.data)))
			if f.toClient {
				c.client.consume(f.data, c.tick)
			} else {
				m := c.machineFor(l, f)
				if m == nil || !m.alive {
					c.rep.DroppedDead++
					continue
				}
				c.distArrive(f.data, m.id)
				m.inbox = append(m.inbox, f.data)
			}
		}
	}
}

// machineFor routes a non-client-bound frame: on the client link it is
// LB-bound; on a backend link direction distinguishes LB from backend.
func (c *Cluster) machineFor(l *link, f inflight) *machine {
	if l.id == clientLink {
		return c.machines[0]
	}
	if f.toLB {
		return c.machines[0]
	}
	return c.machines[l.id-firstBackLink+1]
}

// lbStep runs the front tier: route probe replies to the health
// checker, responses back to the client, and requests through Maglev to
// a backend link. Each frame charges Maglev's forwarding cost to the LB
// machine's clock; a nonempty tick costs one kernel crossing.
func (c *Cluster) lbStep() {
	lb := c.machines[0]
	if !lb.ready(c.tick) {
		return
	}
	clk := lb.clock()
	base := clk.Cycles()
	for _, data := range lb.inbox {
		before := clk.Cycles()
		clk.Charge(apps.ProcessCycles)
		p, err := netproto.ParseUDP(data)
		if err != nil {
			c.rep.DroppedMalformed++
			continue
		}
		switch {
		case p.DstIP == lbIP && p.DstPort == ProbePort:
			c.health.reply(c, backendIndex(p.SrcIP), c.tick)
		case p.DstIP == c.client.ip:
			// A backend reply passing through on its way out: hop 3.
			c.distSpan(p.Payload, lbNode, dist.HopLBReturn, 3, base, before, clk)
			c.send(c.links[0], data, true, false)
		default:
			idx := c.maglev.Lookup(p.Tuple())
			if idx < 0 {
				c.rep.DroppedNoBackend++
				continue
			}
			if err := netproto.RewriteDstIP(data, backendIP(idx)); err != nil {
				c.rep.DroppedMalformed++
				continue
			}
			if !c.machines[1+idx].alive {
				c.rep.Misrouted++
				c.mix(evMisroute, uint64(idx), c.tick)
			}
			c.distSpan(p.Payload, lbNode, dist.HopLBForward, 1, base, before, clk)
			lb.forwarded++
			c.send(c.links[1+idx], data, false, false)
		}
	}
	if len(lb.inbox) > 0 {
		lb.crossKernel()
	}
	lb.inbox = lb.inbox[:0]
}

// backendsStep serves every live backend's inbox: health probes are
// echoed, kvstore requests served in place and the reply addressed back
// to the requester. Stalled machines hold their inboxes (frames are
// delayed, not lost); dead machines had them dropped at delivery.
func (c *Cluster) backendsStep() {
	for i := 1; i < len(c.machines); i++ {
		m := c.machines[i]
		if !m.alive || !m.ready(c.tick) {
			continue
		}
		clk := m.clock()
		base := clk.Cycles()
		for _, data := range m.inbox {
			p, err := netproto.ParseUDP(data)
			if err != nil {
				c.rep.DroppedMalformed++
				continue
			}
			if p.DstPort == ProbePort {
				n, err := netproto.BuildUDP(c.frame[:], m.mac, lbMAC, backendIP(i-1), lbIP,
					ProbePort, ProbePort, p.Payload)
				if err == nil {
					c.send(c.links[i], c.frame[:n], false, true)
				}
				continue
			}
			before := clk.Cycles()
			// A traced request is served past its header (the reply
			// overwrites the kv body in place, leaving the header
			// intact); an untraced one is served whole. Both charge
			// the same ServeCycles.
			traced := false
			served := false
			if c.dist != nil {
				if _, rest, err := netproto.DecodeTraceHeader(p.Payload); err == nil {
					traced = true
					served = m.store.ServePayload(clk, rest)
				}
			}
			if !traced {
				served = m.store.Serve(clk, data)
			}
			if !served {
				c.rep.DroppedMalformed++
				continue
			}
			if traced {
				c.distSpan(p.Payload, m.id, dist.HopBackend, 2, base, before, clk)
			}
			m.served++
			// The payload now holds the reply in place; re-address it
			// to the requester.
			n, err := netproto.BuildUDP(c.frame[:], m.mac, lbMAC, backendIP(i-1), p.SrcIP,
				p.DstPort, p.SrcPort, p.Payload)
			if err != nil {
				c.rep.DroppedMalformed++
				continue
			}
			c.send(c.links[i], c.frame[:n], false, true)
		}
		if len(m.inbox) > 0 {
			m.crossKernel()
		}
		m.inbox = m.inbox[:0]
	}
}

// send queues a frame on a link, applying the link's fault state.
func (c *Cluster) send(l *link, data []byte, toClient, toLB bool) {
	if c.tick < l.partitionedUntil {
		c.rep.DroppedLink++
		c.mix(evLinkDrop, uint64(l.id), c.tick)
		return
	}
	buf := append([]byte(nil), data...)
	delay := uint64(1) + l.delayExtra
	l.delayExtra = 0
	if l.corruptNext {
		l.corruptNext = false
		// Flip the EtherType: the receiver's parser rejects the frame.
		if len(buf) > 12 {
			buf[12] ^= 0xff
		}
		c.rep.Corrupted++
		c.mix(evCorrupt, uint64(l.id), c.tick)
	}
	l.queue = append(l.queue, inflight{at: c.tick + delay, data: buf, toClient: toClient, toLB: toLB})
	c.mix(evSend, uint64(l.id), uint64(len(buf)))
}

func (c *Cluster) probe(b int, seq uint64) {
	lb := c.machines[0]
	if !lb.alive {
		return
	}
	var payload [8]byte
	for i := range payload {
		payload[i] = byte(seq >> (8 * i))
	}
	n, err := netproto.BuildUDP(c.frame[:], lbMAC, c.machines[1+b].mac, lbIP, backendIP(b),
		ProbePort, ProbePort, payload[:])
	if err != nil {
		return
	}
	c.send(c.links[1+b], c.frame[:n], false, false)
	c.mix(evProbe, uint64(b), seq)
}

func (c *Cluster) instant(name obs.NameID, arg uint64) {
	if c.tracer != nil {
		c.tracer.Instant(c.track, name, c.tick*TickCycles, arg)
	}
}

// Tick returns the current tick (test hook).
func (c *Cluster) Tick() uint64 { return c.tick }

// Maglev exposes the front tier's table (test hook).
func (c *Cluster) Maglev() *apps.Maglev { return c.maglev }

// Machine returns machine m (0 = LB, 1.. = backends; test hook).
func (c *Cluster) Machine(i int) *machine { return c.machines[i] }
