package cluster

import (
	"testing"

	"atmosphere/internal/faults"
)

func steadyConfig() Config {
	cfg := DefaultConfig()
	cfg.Ticks = 600
	return cfg
}

// killPlan arms a single backend kill at the given tick. Until closes
// the window after one boundary so the rule fires exactly once.
func killPlan(backend int, tick uint64) faults.Plan {
	return faults.Plan{Rules: []faults.Rule{{
		Kind:   faults.MachineKill,
		Period: tick * TickCycles,
		Until:  (tick + 1) * TickCycles,
		Target: uint64(firstBackend + backend),
	}}}
}

func TestSteadyStateServes(t *testing.T) {
	c, err := New(steadyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run()
	if r.Responses == 0 {
		t.Fatal("no responses in a fault-free run")
	}
	if r.GaveUp != 0 || r.Timeouts != 0 || r.Misrouted != 0 {
		t.Fatalf("fault-free run lost work: gaveup=%d timeouts=%d misrouted=%d",
			r.GaveUp, r.Timeouts, r.Misrouted)
	}
	// Baseline RTT is exactly 4 hops.
	if r.P50 != 4*TickCycles {
		t.Fatalf("p50 = %d cycles, want the 4-hop RTT %d", r.P50, 4*TickCycles)
	}
	// Every flow's first request is a seeding SET; after that GETs hit.
	if r.Misses != 0 {
		t.Fatalf("%d misses in a run with no data loss", r.Misses)
	}
	// Load spreads across all backends.
	for i := 1; i <= c.cfg.Backends; i++ {
		if c.machines[i].served == 0 {
			t.Fatalf("backend %d served nothing", i-1)
		}
	}
	if r.KernelCycles == 0 {
		t.Fatal("no cycles charged to machine kernels")
	}
}

func TestSteadyStateDeterminism(t *testing.T) {
	run := func(seed uint64) Report {
		cfg := steadyConfig()
		cfg.Seed = seed
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run()
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if other := run(2); other.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical trace hashes")
	}
}

func TestChaosKillReconverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Plan = killPlan(1, 800)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run()

	if r.Kills != 1 || r.Respawns != 1 {
		t.Fatalf("kills=%d respawns=%d, want 1/1", r.Kills, r.Respawns)
	}
	if r.RemoveEvents == 0 || r.AddEvents == 0 {
		t.Fatalf("maglev never saw the death/return: remove=%d add=%d",
			r.RemoveEvents, r.AddEvents)
	}
	// Reconvergence SLO: the health checker must evict the dead backend
	// within a bounded cycle budget (2 probe rounds + timeouts, with
	// margin: 30 ticks).
	if r.ReconvergeKillCycles == 0 || r.ReconvergeKillCycles > 30*TickCycles {
		t.Fatalf("kill reconvergence took %d cycles (budget %d)",
			r.ReconvergeKillCycles, 30*TickCycles)
	}
	if r.ReconvergeReturnCycles == 0 || r.ReconvergeReturnCycles > 30*TickCycles {
		t.Fatalf("return reconvergence took %d cycles (budget %d)",
			r.ReconvergeReturnCycles, 30*TickCycles)
	}
	// <5% of the requests in flight at the kill may be lost outright;
	// the retry budget outlasts reconvergence, so flows re-route.
	if r.InFlightAtKill == 0 {
		t.Fatal("no requests in flight at the kill — load too thin to test the SLO")
	}
	if 20*r.GaveUp > r.InFlightAtKill {
		t.Fatalf("lost %d of %d in-flight requests (>5%%)", r.GaveUp, r.InFlightAtKill)
	}
	// The dead backend's flows needed timeouts and retries to re-route.
	if r.Timeouts == 0 || r.Retries == 0 {
		t.Fatalf("kill caused no timeouts/retries (%d/%d)", r.Timeouts, r.Retries)
	}
	// The respawned machine came back empty: misses and read-repair.
	if r.Misses == 0 || r.SetRepairs == 0 {
		t.Fatalf("respawn should cost misses and repairs, got %d/%d", r.Misses, r.SetRepairs)
	}
	// And it rejoined the table and serves again.
	if c.Maglev().ActiveBackends() != cfg.Backends {
		t.Fatalf("table has %d active backends, want %d",
			c.Maglev().ActiveBackends(), cfg.Backends)
	}
	m := c.Machine(2) // backend 1
	if !m.Alive() || m.Generation() != 1 {
		t.Fatalf("backend 1 alive=%v gen=%d, want alive gen 1", m.Alive(), m.Generation())
	}
}

// TestChaosDeterminism is the acceptance criterion: a same-seed re-run
// including the kill and respawn is byte-identical, and the hash is
// sensitive to both the seed and the plan.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed uint64, plan faults.Plan) Report {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Plan = plan
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run()
	}
	plan := killPlan(1, 800)
	a, b := run(1107, plan), run(1107, plan)
	if a != b {
		t.Fatalf("same seed chaos run diverged:\n%+v\n%+v", a, b)
	}
	if a.Kills != 1 || a.Respawns != 1 {
		t.Fatalf("chaos run had kills=%d respawns=%d", a.Kills, a.Respawns)
	}
	if other := run(1108, plan); other.TraceHash == a.TraceHash {
		t.Fatal("different seed produced an identical chaos trace hash")
	}
	if calm := run(1107, faults.Plan{}); calm.TraceHash == a.TraceHash {
		t.Fatal("fault plan left no mark on the trace hash")
	}
}

func TestLinkFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ticks = 1200
	cfg.Plan = faults.Plan{Rules: []faults.Rule{
		// Partition the client link for 40 ticks at tick 300.
		{Kind: faults.LinkPartition, Period: 300 * TickCycles, Until: 301 * TickCycles,
			Target: clientLink, Param: 40 * TickCycles},
		// Periodically delay and corrupt frames on backend 0's link.
		{Kind: faults.LinkDelay, Period: 100 * TickCycles, Target: firstBackLink, Param: 5 * TickCycles},
		{Kind: faults.LinkCorrupt, Period: 250 * TickCycles, Target: firstBackLink},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run()
	if r.DroppedLink == 0 {
		t.Fatal("partition dropped nothing")
	}
	if r.Corrupted == 0 {
		t.Fatal("corruption never fired")
	}
	// Corrupted frames must be rejected somewhere, not served.
	if r.DroppedMalformed == 0 {
		t.Fatal("corrupted frames were never rejected")
	}
	// The partition outlasts the deadline, so some requests timed out;
	// the retry budget outlasts the partition, so the tier recovered.
	if r.Timeouts == 0 {
		t.Fatal("40-tick partition caused no timeouts")
	}
	if r.Responses == 0 {
		t.Fatal("no responses despite recovery window")
	}
	tail := float64(r.GaveUp) / float64(r.Sent)
	if tail > 0.05 {
		t.Fatalf("lost %.1f%% of all requests to a transient partition", 100*tail)
	}
}

func TestMachineStallRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ticks = 1000
	// Stall backend 0 for 6 ticks at tick 400: frames queue, nothing is
	// lost, and the stall shows up in the latency tail, not in GaveUp.
	cfg.Plan = faults.Plan{Rules: []faults.Rule{{
		Kind: faults.MachineStall, Period: 400 * TickCycles, Until: 401 * TickCycles,
		Target: firstBackend, Param: 6 * TickCycles,
	}}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run()
	if c.Machine(1).Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", c.Machine(1).Stalls)
	}
	if r.GaveUp != 0 {
		t.Fatalf("a 6-tick stall lost %d requests", r.GaveUp)
	}
	if r.Kills != 0 || r.RemoveEvents != 0 {
		t.Fatalf("a short stall must not trip the health checker (kills=%d removes=%d)",
			r.Kills, r.RemoveEvents)
	}
	if r.P999 <= r.P50 {
		t.Fatalf("stall left no latency tail: p50=%d p999=%d", r.P50, r.P999)
	}
}

func TestLBKillAndRespawn(t *testing.T) {
	cfg := DefaultConfig()
	// The outage (150 ticks) outlasts the full retry window (~120
	// ticks), so requests caught in it exhaust their budgets.
	cfg.RespawnDelayTicks = 150
	cfg.Plan = faults.Plan{Rules: []faults.Rule{{
		Kind: faults.MachineKill, Period: 600 * TickCycles, Until: 601 * TickCycles,
		Target: lbNode,
	}}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run()
	if r.Kills != 1 || r.Respawns != 1 {
		t.Fatalf("kills=%d respawns=%d, want 1/1", r.Kills, r.Respawns)
	}
	if !c.Machine(0).Alive() {
		t.Fatal("LB did not come back")
	}
	// Traffic resumed after the LB respawn: responses well beyond what
	// had completed by the kill tick.
	if r.Responses == 0 || r.GaveUp == 0 {
		t.Fatalf("LB outage should lose some requests and then recover: responses=%d gaveup=%d",
			r.Responses, r.GaveUp)
	}
}
