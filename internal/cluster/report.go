package cluster

// FNV-1a, matching the fault injector's trace hash so the two compose
// into one replayability check.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Event codes mixed into the trace hash. Order and values are part of
// the determinism contract: renumbering them changes every reference
// hash.
const (
	evSend uint64 = iota + 1
	evDeliver
	evResponse
	evTimeout
	evRetry
	evGaveUp
	evKill
	evRespawn
	evStall
	evPartition
	evLinkDrop
	evCorrupt
	evMisroute
	evRemove
	evAdd
	evProbe
	evProbeMiss
)

// mix folds one event into the run's trace hash.
func (c *Cluster) mix(code, a, b uint64) {
	for _, w := range [3]uint64{code, a, b} {
		for i := 0; i < 8; i++ {
			c.hash ^= (w >> (8 * i)) & 0xff
			c.hash *= fnvPrime
		}
	}
}

// Report is a run's complete accounting. Everything is cumulative
// across machine respawns.
type Report struct {
	Ticks uint64

	// Client side.
	Sent, Responses, Retries, Timeouts uint64
	GaveUp, Shed, Stragglers           uint64
	Misses, SetRepairs                 uint64

	// Tier side.
	Delivered, Misrouted          uint64
	DroppedNoBackend, DroppedDead uint64
	DroppedMalformed, DroppedLink uint64
	Corrupted                     uint64
	Kills, Respawns               uint64
	RemoveEvents, AddEvents       uint64

	// Reconvergence SLOs (0 when the run had no such event).
	FirstKillTick          uint64
	InFlightAtKill         uint64
	ReconvergeKillCycles   uint64 // first kill → Maglev eviction
	ReconvergeReturnCycles uint64 // first respawn → Maglev reinstatement

	// Latency quantiles over completed requests, in cycles.
	P50, P99, P999 uint64

	// Burned CPU across all machines and generations.
	KernelCycles uint64

	// Distributed tracing (all zero when DistTracing is off).
	// DistCompleted counts requests with a fully joined trace;
	// DistStale replies whose attempt belonged to a retired request;
	// DistIrregular completed traces whose hop log was not the clean
	// 3-hop chain (an invariant violation — tests pin it to zero).
	// DistTraceEvents / DistTraceDropped sum ring occupancy and
	// evictions across every participant tracer (per-machine detail
	// via Dist().Pressure()).
	DistCompleted, DistAbandoned, DistOrphaned  uint64
	DistStale, DistHeaderRejects, DistIrregular uint64
	DistTraceEvents, DistTraceDropped           uint64

	// TraceHash folds every cluster event with the injector's own
	// hash: equal seeds must reproduce it bit for bit.
	TraceHash uint64
}

// Report finalizes the run's accounting.
func (c *Cluster) Report() Report {
	r := c.rep
	r.Ticks = c.tick
	h := c.health
	if h.removedAt != 0 {
		r.ReconvergeKillCycles = (h.removedAt - h.killAt) * TickCycles
	}
	if h.addedAt != 0 {
		r.ReconvergeReturnCycles = (h.addedAt - h.respawnAt) * TickCycles
	}
	r.P50 = c.client.latency.Quantile(0.50)
	r.P99 = c.client.latency.Quantile(0.99)
	r.P999 = c.client.latency.Quantile(0.999)
	for _, m := range c.machines {
		r.KernelCycles += m.TotalCycles()
	}
	if c.dist != nil {
		r.DistCompleted, r.DistAbandoned, r.DistOrphaned, r.DistStale, r.DistHeaderRejects = c.dist.Counts()
		r.DistIrregular = c.dist.IrregularCount()
		r.DistTraceEvents = c.dist.TraceEvents()
		r.DistTraceDropped = c.dist.TraceDropped()
	}
	r.TraceHash = c.hash ^ c.inj.TraceHash()
	return r
}

// FaultCounts surfaces the injector's per-kind tally for logs.
func (c *Cluster) FaultCounts() string { return c.inj.Counts() }
