package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenTracer builds the small fixed trace behind testdata/golden.json:
// two domains on core 0 plus the machine-wide fault track.
func goldenTracer() *Tracer {
	tr := NewTracer(16)
	kernelTrack := tr.Track(0, "core0", "kernel")
	driverTrack := tr.Track(0, "core0", "nvme-driver")
	faultTrack := tr.Track(MachinePID, "machine", "faults")
	tr.SpanArg(kernelTrack, tr.Name("mmap"), 2200, 4400, 0)
	tr.Span(driverTrack, tr.Name("nvme.submit_batch"), 4400, 11000)
	tr.Instant(faultTrack, tr.Name("fault.nvme-stall"), 6600, 150000)
	tr.SpanArg(kernelTrack, tr.Name("call"), 11000, 13200, 7)
	return tr
}

func TestWriteTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTrace(&b, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("missing golden file (regenerate by writing the buffer): %v", err)
	}
	if !bytes.Equal(b.Bytes(), golden) {
		t.Errorf("trace output diverged from testdata/golden.json:\n%s", b.String())
	}
}

// traceEvent mirrors the trace_event fields the viewer requires.
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	PID  *int            `json:"pid"`
	TID  *int            `json:"tid"`
	TS   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

func TestWriteTraceIsValidTraceEventJSON(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTrace(&b, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	spans, instants, metas := 0, 0, 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.PID == nil || e.TID == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			metas++
			if e.Args == nil {
				t.Errorf("metadata event %d has no args", i)
			}
		case "X":
			spans++
			if e.TS == nil || e.Dur == nil {
				t.Errorf("span %d missing ts/dur", i)
			}
		case "i":
			instants++
			if e.TS == nil || e.S != "t" {
				t.Errorf("instant %d missing ts or scope: %+v", i, e)
			}
		default:
			t.Errorf("event %d has unknown ph %q", i, e.Ph)
		}
	}
	// 3 tracks over 2 distinct pids: 2 process_name + 3 thread_name.
	if metas != 5 || spans != 3 || instants != 1 {
		t.Errorf("meta/span/instant = %d/%d/%d, want 5/3/1", metas, spans, instants)
	}
	// Spot-check the µs conversion: 2200 cycles at 2.2 GHz is 1 µs.
	if ts := doc.TraceEvents[5].TS; ts == nil || *ts != 1.0 {
		t.Errorf("first span ts = %v µs, want 1.0", ts)
	}
}
