package dist

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Critical-path attribution: every completed request's end-to-end
// latency decomposes into five components that sum exactly — no
// residual bucket, no rounding. The decomposition telescopes over the
// completing attempt's hop log: with send tick s, hop arrivals a1..a3,
// hop processings p1..p3 and reply receipt r,
//
//	link    = (a1-s) + (a2-p1) + (a3-p2) + (r-p3)
//	lb      = (p1-a1) + (p3-a3)
//	backend = (p2-a2)
//
// so link+lb+backend = r-s, and with backoff (the attempt's completed
// retry-backoff ticks) plus client-queue (everything else between the
// request's first send f and s: deadline waits on lost attempts),
//
//	queue = (s-f) - backoff
//
// the five sum to r-f, the measured latency, exactly. The property is
// pinned per-request by a cluster chaos test.

// Components is one request's latency split, in cycles.
type Components struct {
	ClientQueue uint64 // deadline waits on attempts that never returned
	Link        uint64 // frames in flight on the wire
	LB          uint64 // queued or in service at the load balancer (both directions)
	Backend     uint64 // queued or in service at the backend
	Backoff     uint64 // client retry backoff
}

// Total sums the components.
func (c Components) Total() uint64 {
	return c.ClientQueue + c.Link + c.LB + c.Backend + c.Backoff
}

func (c Components) add(o Components) Components {
	return Components{
		ClientQueue: c.ClientQueue + o.ClientQueue,
		Link:        c.Link + o.Link,
		LB:          c.LB + o.LB,
		Backend:     c.Backend + o.Backend,
		Backoff:     c.Backoff + o.Backoff,
	}
}

// HopRec is one hop of a completed request's critical path, for the
// merged export's flow arrows.
type HopRec struct {
	Machine int
	Kind    HopKind
	SpanTS  uint64 // cycles
	SpanDur uint64 // cycles
	SpanRef uint32
}

// TraceRec is one completed request.
type TraceRec struct {
	TraceID  uint64 // completing attempt's trace ID
	Root     uint64 // first attempt's trace ID (the request's identity)
	Flow     int
	Attempts int
	// Ticks: first send, completing attempt's send, reply receipt.
	FirstTick, SentTick, EndTick uint64
	Latency                      uint64 // (EndTick-FirstTick) * TickCycles
	Comp                         Components
	// Irregular marks a hop log that was not a clean 3-hop chain (a
	// cluster invariant violation — tests pin it to zero); the latency
	// is then attributed wholesale to Link so the sum still holds.
	Irregular bool
	Hops      [hopsPerChain]HopRec
}

// decompose builds the completing attempt's record.
func (c *Collector) decompose(a *attempt, endTick uint64) TraceRec {
	r := a.req
	tc := c.cfg.TickCycles
	rec := TraceRec{
		TraceID:   a.traceID,
		Root:      r.rootID,
		Flow:      r.flow,
		Attempts:  len(r.attempts),
		FirstTick: r.firstTick,
		SentTick:  a.sentTick,
		EndTick:   endTick,
		Latency:   (endTick - r.firstTick) * tc,
	}
	if !chainOK(a, endTick) || a.backoffBefore > a.sentTick-r.firstTick {
		rec.Irregular = true
		rec.Comp = Components{Link: rec.Latency}
		return rec
	}
	h1, h2, h3 := &a.hops[0], &a.hops[1], &a.hops[2]
	rec.Comp = Components{
		ClientQueue: (a.sentTick - r.firstTick - a.backoffBefore) * tc,
		Link:        ((h1.Arrive - a.sentTick) + (h2.Arrive - h1.Process) + (h3.Arrive - h2.Process) + (endTick - h3.Process)) * tc,
		LB:          ((h1.Process - h1.Arrive) + (h3.Process - h3.Arrive)) * tc,
		Backend:     (h2.Process - h2.Arrive) * tc,
		Backoff:     a.backoffBefore * tc,
	}
	for i, h := range a.hops {
		rec.Hops[i] = HopRec{Machine: h.Machine, Kind: h.Kind, SpanTS: h.SpanTS, SpanDur: h.SpanDur, SpanRef: h.SpanRef}
	}
	return rec
}

// chainOK verifies the attempt's hop log is the clean forward/return
// chain with monotonic ticks.
func chainOK(a *attempt, endTick uint64) bool {
	if len(a.hops) != hopsPerChain {
		return false
	}
	want := [hopsPerChain]HopKind{HopLBForward, HopBackend, HopLBReturn}
	prev := a.sentTick
	for i := range a.hops {
		h := &a.hops[i]
		if !h.done || h.Kind != want[i] || h.Arrive < prev || h.Process < h.Arrive {
			return false
		}
		prev = h.Process
	}
	return endTick >= prev
}

// QuantileRow is the request sitting at one latency quantile, with its
// full component breakdown — "what does the p999 spend its time on".
type QuantileRow struct {
	Q     float64
	Label string
	Rec   TraceRec
}

// Attribution is the cluster-wide critical-path summary.
type Attribution struct {
	Completed     uint64
	Abandoned     uint64
	Orphaned      uint64
	Stale         uint64
	HeaderRejects uint64
	Irregular     uint64
	TotalLatency  uint64     // cycles, across completed requests
	Comp          Components // cycles, summed across completed requests
	Rows          []QuantileRow
	TopK          []TraceRec // slowest first
}

// quantiles are the report's latency ranks.
var quantiles = []struct {
	q     float64
	label string
}{{0.50, "p50"}, {0.99, "p99"}, {0.999, "p999"}}

// Attribution summarizes every completed request: exact quantile rows
// (ceil-rank over the total order latency/end-tick/trace-ID) and the
// k slowest traces.
func (c *Collector) Attribution(k int) Attribution {
	if c == nil {
		return Attribution{}
	}
	a := Attribution{
		Completed:     uint64(len(c.completed)),
		Abandoned:     c.abandoned,
		Orphaned:      c.orphaned,
		Stale:         c.staleReplies,
		HeaderRejects: c.headerRejects,
		Irregular:     c.irregular,
	}
	if len(c.completed) == 0 {
		return a
	}
	byLat := append([]TraceRec(nil), c.completed...)
	sort.Slice(byLat, func(i, j int) bool {
		if byLat[i].Latency != byLat[j].Latency {
			return byLat[i].Latency < byLat[j].Latency
		}
		if byLat[i].EndTick != byLat[j].EndTick {
			return byLat[i].EndTick < byLat[j].EndTick
		}
		return byLat[i].TraceID < byLat[j].TraceID
	})
	for _, rec := range byLat {
		a.TotalLatency += rec.Latency
		a.Comp = a.Comp.add(rec.Comp)
	}
	n := len(byLat)
	for _, q := range quantiles {
		rank := int(math.Ceil(q.q * float64(n)))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		a.Rows = append(a.Rows, QuantileRow{Q: q.q, Label: q.label, Rec: byLat[rank-1]})
	}
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		a.TopK = append(a.TopK, byLat[n-1-i])
	}
	return a
}

// PressureNotes renders one report line per participant tracer, with
// a WARN prefix when the ring evicted events (the merged export is
// then missing the oldest spans).
func (c *Collector) PressureNotes() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.tracers))
	for _, p := range c.Pressure() {
		line := fmt.Sprintf("tracer %s: %d/%d events, %d dropped", p.Name, p.Events, p.Cap, p.Dropped)
		if p.Dropped > 0 {
			line = "WARN " + line + " — merged export lost the oldest spans; raise DistEventCap"
		}
		out = append(out, line)
	}
	return out
}

// pct renders share as a deterministic fixed-point percentage.
func pct(part, total uint64) string {
	if total == 0 {
		return "0.0%"
	}
	milli := part * 1000 / total
	return fmt.Sprintf("%d.%d%%", milli/10, milli%10)
}

// WriteText renders the attribution as a plain-text report.
func (a Attribution) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "distributed trace attribution: %d completed, %d abandoned, %d orphaned, %d stale, %d header-rejects, %d irregular\n",
		a.Completed, a.Abandoned, a.Orphaned, a.Stale, a.HeaderRejects, a.Irregular); err != nil {
		return err
	}
	if a.Completed == 0 {
		return nil
	}
	get := func(c Components) [5]uint64 {
		return [5]uint64{c.ClientQueue, c.Link, c.LB, c.Backend, c.Backoff}
	}
	labels := [5]string{"client-queue", "link", "lb", "backend", "backoff"}
	if _, err := fmt.Fprintf(w, "%-14s %8s", "component", "share"); err != nil {
		return err
	}
	for _, row := range a.Rows {
		if _, err := fmt.Fprintf(w, " %12s", row.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	total := get(a.Comp)
	for i, label := range labels {
		if _, err := fmt.Fprintf(w, "%-14s %8s", label, pct(total[i], a.TotalLatency)); err != nil {
			return err
		}
		for _, row := range a.Rows {
			if _, err := fmt.Fprintf(w, " %12d", get(row.Rec.Comp)[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-14s %8s", "total", "100.0%"); err != nil {
		return err
	}
	for _, row := range a.Rows {
		if _, err := fmt.Fprintf(w, " %12d", row.Rec.Latency); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, rec := range a.TopK {
		if _, err := fmt.Fprintf(w, "slow[%d] trace=%#016x flow=%d attempts=%d latency=%d queue=%d link=%d lb=%d backend=%d backoff=%d\n",
			i, rec.TraceID, rec.Flow, rec.Attempts, rec.Latency,
			rec.Comp.ClientQueue, rec.Comp.Link, rec.Comp.LB, rec.Comp.Backend, rec.Comp.Backoff); err != nil {
			return err
		}
	}
	return nil
}
