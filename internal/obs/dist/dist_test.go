package dist

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testTC is a readable tick-to-cycle factor for the hand-driven tests.
const testTC = 100

func newTestCollector() *Collector {
	return New(
		Config{EventCap: 256, TickCycles: testTC, Seed: 7},
		[]string{"client", "lb", "backend-0", "backend-1"},
		4,
	)
}

// drive runs one clean request through the chain: sent at sent, one
// tick per hop, processed the tick it arrives, completed at sent+4.
func drive(t *testing.T, c *Collector, flow int, sent uint64, backend int) TraceRec {
	t.Helper()
	id := c.BeginRequest(flow, sent)
	c.Arrive(id, 1, sent+1)
	ref, ok := c.Process(id, 1, HopLBForward, sent+1, (sent+1)*testTC, (sent+1)*testTC+30, 0)
	if !ok {
		t.Fatal("lb-forward process rejected")
	}
	c.Arrive(id, backend, sent+2)
	ref2, ok := c.Process(id, backend, HopBackend, sent+2, (sent+2)*testTC, (sent+2)*testTC+60, ref)
	if !ok {
		t.Fatal("backend process rejected")
	}
	c.Arrive(id, 1, sent+3)
	if _, ok := c.Process(id, 1, HopLBReturn, sent+3, (sent+3)*testTC, (sent+3)*testTC+20, ref2); !ok {
		t.Fatal("lb-return process rejected")
	}
	if !c.Complete(id, flow, sent+4) {
		t.Fatal("complete rejected")
	}
	recs := c.Completed()
	return recs[len(recs)-1]
}

func TestDecomposeCleanRequest(t *testing.T) {
	c := newTestCollector()
	rec := drive(t, c, 0, 10, 2)
	if rec.Irregular {
		t.Fatal("clean chain marked irregular")
	}
	if rec.Latency != 4*testTC {
		t.Fatalf("latency = %d", rec.Latency)
	}
	want := Components{Link: 4 * testTC}
	if rec.Comp != want {
		t.Fatalf("components = %+v, want %+v", rec.Comp, want)
	}
	if rec.Comp.Total() != rec.Latency {
		t.Fatalf("components sum %d != latency %d", rec.Comp.Total(), rec.Latency)
	}
	if rec.Attempts != 1 || rec.Root != rec.TraceID {
		t.Fatalf("attempt bookkeeping: %+v", rec)
	}
}

// TestDecomposeRetryAndQueueing exercises every component at once: the
// first attempt is lost, the flow backs off, and the retry queues one
// tick at the backend.
func TestDecomposeRetryAndQueueing(t *testing.T) {
	c := newTestCollector()
	id0 := c.BeginRequest(1, 1)
	// First attempt vanishes on the wire. Deadline at tick 17, retry
	// fires after 8 ticks of backoff.
	c.Timeout(1, 17)
	id1 := c.Retry(1, 25)
	if id1 == id0 || id1 == 0 {
		t.Fatalf("retry attempt ids: %#x vs %#x", id1, id0)
	}
	c.Arrive(id1, 1, 26)
	ref, _ := c.Process(id1, 1, HopLBForward, 26, 2600, 2630, 0)
	c.Arrive(id1, 2, 27)
	// The backend was stalled: processed one tick after delivery.
	ref2, _ := c.Process(id1, 2, HopBackend, 28, 2800, 2860, ref)
	c.Arrive(id1, 1, 29)
	c.Process(id1, 1, HopLBReturn, 29, 2900, 2920, ref2)
	if !c.Complete(id1, 1, 30) {
		t.Fatal("complete rejected")
	}
	rec := c.Completed()[0]
	want := Components{
		ClientQueue: 16 * testTC, // 24 ticks before the retry, minus 8 backing off
		Backoff:     8 * testTC,
		Link:        4 * testTC,
		Backend:     1 * testTC,
	}
	if rec.Comp != want {
		t.Fatalf("components = %+v, want %+v", rec.Comp, want)
	}
	if got := rec.Latency; got != 29*testTC || rec.Comp.Total() != got {
		t.Fatalf("latency %d, sum %d", got, rec.Comp.Total())
	}
	if rec.Attempts != 2 || rec.Root != id0 || rec.TraceID != id1 {
		t.Fatalf("attempt bookkeeping: %+v", rec)
	}
}

func TestCompleteRejectsWrongFlowAndStale(t *testing.T) {
	c := newTestCollector()
	id := c.BeginRequest(0, 1)
	if c.Complete(id, 3, 2) {
		t.Fatal("completed on the wrong flow")
	}
	if !c.Complete(id, 0, 2) {
		t.Fatal("rightful completion rejected")
	}
	// The request is retired: its reply cannot complete anything again.
	if c.Complete(id, 0, 3) {
		t.Fatal("stale reply re-completed a retired request")
	}
	_, _, _, stale, _ := c.Counts()
	if stale != 2 {
		t.Fatalf("stale = %d, want 2", stale)
	}
}

func TestAbandonAndOrphanBookkeeping(t *testing.T) {
	c := newTestCollector()
	c.BeginRequest(0, 1)
	c.Abandon(0, 50)
	c.BeginRequest(1, 1)
	c.BeginRequest(1, 60) // previous request never completed: orphaned
	_, abandoned, orphaned, _, _ := c.Counts()
	if abandoned != 1 || orphaned != 1 {
		t.Fatalf("abandoned=%d orphaned=%d", abandoned, orphaned)
	}
	// Arrivals for retired attempts are ignored, not mis-joined.
	c.Arrive(1234, 1, 2)
	if _, ok := c.Process(1234, 1, HopLBForward, 2, 200, 230, 0); ok {
		t.Fatal("process joined an unknown trace id")
	}
}

func TestServiceHistogramMergesMachines(t *testing.T) {
	c := newTestCollector()
	drive(t, c, 0, 10, 2)
	drive(t, c, 1, 20, 3)
	h := c.ServiceHistogram()
	// 3 hops per request, service cycles 30+60+20 each.
	if h.Count() != 6 || h.Sum() != 2*(30+60+20) {
		t.Fatalf("service histogram count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestAttributionQuantilesAndTopK(t *testing.T) {
	c := newTestCollector()
	for i := 0; i < 10; i++ {
		drive(t, c, i%4, uint64(10+20*i), 2+i%2)
	}
	a := c.Attribution(3)
	if a.Completed != 10 || a.Irregular != 0 {
		t.Fatalf("attribution counts: %+v", a)
	}
	if a.TotalLatency != 10*4*testTC || a.Comp.Total() != a.TotalLatency {
		t.Fatalf("total latency %d, components %d", a.TotalLatency, a.Comp.Total())
	}
	if len(a.Rows) != 3 || a.Rows[0].Label != "p50" || a.Rows[2].Label != "p999" {
		t.Fatalf("rows: %+v", a.Rows)
	}
	if len(a.TopK) != 3 || a.TopK[0].Latency < a.TopK[2].Latency {
		t.Fatalf("topK not slowest-first: %+v", a.TopK)
	}
	var b strings.Builder
	if err := a.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"10 completed", "client-queue", "backend", "p999", "slow[0]"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, b.String())
		}
	}
}

func TestPressureReportsEveryParticipant(t *testing.T) {
	c := newTestCollector()
	drive(t, c, 0, 10, 2)
	p := c.Pressure()
	if len(p) != 4 || p[0].Name != "client" || p[3].Name != "backend-1" {
		t.Fatalf("pressure = %+v", p)
	}
	// One req.client span; lb recorded two hops; backend-0 one; backend-1 none.
	if p[0].Events != 1 || p[1].Events != 2 || p[2].Events != 1 || p[3].Events != 0 {
		t.Fatalf("pressure events = %+v", p)
	}
	if c.TraceEvents() != 4 || c.TraceDropped() != 0 {
		t.Fatalf("events=%d dropped=%d", c.TraceEvents(), c.TraceDropped())
	}
	for _, pp := range p {
		if pp.Cap != 256 {
			t.Fatalf("cap = %d", pp.Cap)
		}
	}
}

func TestPressureNotesWarnOnDrops(t *testing.T) {
	c := New(Config{EventCap: 2, TickCycles: testTC, Seed: 7},
		[]string{"client", "lb", "backend-0", "backend-1"}, 4)
	for i := 0; i < 4; i++ {
		drive(t, c, i, uint64(10+10*i), 2)
	}
	notes := c.PressureNotes()
	if len(notes) != 4 {
		t.Fatalf("notes = %v", notes)
	}
	// The LB records two spans per request into a 2-slot ring: it must
	// have dropped, and its line must warn.
	if !strings.HasPrefix(notes[1], "WARN tracer lb:") {
		t.Fatalf("lb note missing WARN: %q", notes[1])
	}
	if strings.HasPrefix(notes[3], "WARN") {
		t.Fatalf("idle backend warned: %q", notes[3])
	}
	if c.TraceDropped() == 0 {
		t.Fatal("drop counter did not aggregate")
	}
}

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if id := c.BeginRequest(0, 1); id != 0 {
		t.Fatal("nil collector minted a trace id")
	}
	c.Timeout(0, 1)
	if c.Retry(0, 2) != 0 {
		t.Fatal("nil retry")
	}
	c.Abandon(0, 3)
	c.Arrive(1, 1, 1)
	if _, ok := c.Process(1, 1, HopBackend, 1, 0, 10, 0); ok {
		t.Fatal("nil process")
	}
	if c.Complete(1, 0, 2) {
		t.Fatal("nil complete")
	}
	c.RejectHeader()
	if c.Participants() != 0 || c.Tracer(0) != nil || c.Pressure() != nil {
		t.Fatal("nil collector leaked state")
	}
	if c.ServiceHistogram() != nil || c.Completed() != nil {
		t.Fatal("nil collector leaked aggregates")
	}
	if a := c.Attribution(5); a.Completed != 0 || a.Rows != nil || a.TopK != nil {
		t.Fatal("nil attribution")
	}
	var buf bytes.Buffer
	if err := WriteMerged(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatal("nil merge wrote no document")
	}
}

// TestWriteMergedGolden pins the merged export bytes for a fixed
// hand-driven scenario — the unit-level byte-determinism anchor (the
// cluster test covers the full run; regenerate with -update).
func TestWriteMergedGolden(t *testing.T) {
	c := newTestCollector()
	drive(t, c, 0, 10, 2)
	// A retried request, so the golden carries a req.retry span.
	id0 := c.BeginRequest(1, 12)
	c.Timeout(1, 28)
	id1 := c.Retry(1, 36)
	_ = id0
	c.Arrive(id1, 1, 37)
	ref, _ := c.Process(id1, 1, HopLBForward, 37, 3700, 3730, 0)
	c.Arrive(id1, 3, 38)
	ref2, _ := c.Process(id1, 3, HopBackend, 38, 3800, 3860, ref)
	c.Arrive(id1, 1, 39)
	c.Process(id1, 1, HopLBReturn, 39, 3900, 3920, ref2)
	c.Complete(id1, 1, 40)
	c.Abandon(2, 44) // and a req.gaveup instant

	var got bytes.Buffer
	if err := WriteMerged(&got, c); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "merged_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged export diverged from %s:\n%s", path, got.String())
	}

	// And a second identical drive produces identical bytes.
	c2 := newTestCollector()
	drive(t, c2, 0, 10, 2)
	id0b := c2.BeginRequest(1, 12)
	c2.Timeout(1, 28)
	id1b := c2.Retry(1, 36)
	_ = id0b
	c2.Arrive(id1b, 1, 37)
	refb, _ := c2.Process(id1b, 1, HopLBForward, 37, 3700, 3730, 0)
	c2.Arrive(id1b, 3, 38)
	ref2b, _ := c2.Process(id1b, 3, HopBackend, 38, 3800, 3860, refb)
	c2.Arrive(id1b, 1, 39)
	c2.Process(id1b, 1, HopLBReturn, 39, 3900, 3920, ref2b)
	c2.Complete(id1b, 1, 40)
	c2.Abandon(2, 44)
	var again bytes.Buffer
	if err := WriteMerged(&again, c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Error("two identical drives exported different bytes")
	}
}
