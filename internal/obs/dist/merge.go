package dist

import (
	"bufio"
	"io"
	"strconv"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
)

// Merged Chrome/Perfetto trace_event export: every participant's tracer
// becomes one process track (pid = participant index + 1, process_name
// = the participant's name), and each completed request's completing
// attempt is drawn as a flow — the classic "s"/"t"/"f" arrow chain
// binding to the enclosing req.* slices: client send → lb-forward →
// backend → lb-return → client receipt. Open at ui.perfetto.dev.
//
// Like obs.WriteTrace the writer is hand-rolled: the byte stream is a
// pure function of the collector's contents, so two same-seed runs
// export byte-identical files (pinned by a golden test and a run-twice
// cmp in CI). Flow ids are written as hex strings, not JSON numbers —
// 64-bit trace IDs would lose precision in readers that parse numbers
// as float64.

// mergedCyclesPerMicro mirrors the obs exporter's timestamp unit.
const mergedCyclesPerMicro = float64(hw.ClockHz) / 1e6

func mergedTS(b *bufio.Writer, cycles uint64) {
	b.WriteString(strconv.FormatFloat(float64(cycles)/mergedCyclesPerMicro, 'f', 4, 64))
}

func mergedStr(b *bufio.Writer, s string) {
	b.WriteString(strconv.Quote(s))
}

// WriteMerged writes the cluster-wide merged trace.
func WriteMerged(w io.Writer, c *Collector) error {
	b := bufio.NewWriter(w)
	b.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
		first = false
	}
	if c != nil {
		// Track metadata: one process per participant, threads per track.
		for i, tr := range c.tracers {
			pid := i + 1
			sep()
			b.WriteString("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":")
			b.WriteString(strconv.Itoa(pid))
			b.WriteString(",\"tid\":0,\"args\":{\"name\":")
			mergedStr(b, c.names[i])
			b.WriteString("}}")
			for _, track := range tr.Tracks() {
				sep()
				b.WriteString("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":")
				b.WriteString(strconv.Itoa(pid))
				b.WriteString(",\"tid\":")
				b.WriteString(strconv.Itoa(track.TID))
				b.WriteString(",\"args\":{\"name\":")
				mergedStr(b, track.TIDName)
				b.WriteString("}}")
			}
		}
		// Per-participant events, client first, oldest first.
		for i, tr := range c.tracers {
			pid := i + 1
			tracks := tr.Tracks()
			for _, e := range tr.Events() {
				if int(e.Track) >= len(tracks) {
					continue
				}
				sep()
				b.WriteString("{\"name\":")
				mergedStr(b, tr.NameOf(e.Name))
				switch e.Kind {
				case obs.KindSpan:
					b.WriteString(",\"ph\":\"X\"")
				case obs.KindInstant:
					b.WriteString(",\"ph\":\"i\",\"s\":\"t\"")
				}
				b.WriteString(",\"pid\":")
				b.WriteString(strconv.Itoa(pid))
				b.WriteString(",\"tid\":")
				b.WriteString(strconv.Itoa(tracks[e.Track].TID))
				b.WriteString(",\"ts\":")
				mergedTS(b, e.TS)
				if e.Kind == obs.KindSpan {
					b.WriteString(",\"dur\":")
					mergedTS(b, e.Dur)
				}
				if e.Arg != 0 {
					b.WriteString(",\"args\":{\"arg\":")
					b.WriteString(strconv.FormatUint(e.Arg, 10))
					b.WriteString("}")
				}
				b.WriteString("}")
			}
		}
		// Flow arrows, in completion order. Irregular chains (none in a
		// healthy run) have no hop spans to bind to and are skipped.
		clientPID := ClientSlot + 1
		for _, rec := range c.completed {
			if rec.Irregular {
				continue
			}
			writeFlow(b, sep, "s", clientPID, rec.cycles(c, rec.SentTick), rec.TraceID)
			for _, h := range rec.Hops {
				writeFlow(b, sep, "t", h.Machine+1, h.SpanTS, rec.TraceID)
			}
			writeFlow(b, sep, "f", clientPID, rec.cycles(c, rec.EndTick), rec.TraceID)
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return b.Flush()
}

// cycles converts one of the record's ticks via the owning collector.
func (rec TraceRec) cycles(c *Collector, tick uint64) uint64 {
	return tick * c.cfg.TickCycles
}

// writeFlow emits one flow-arrow event. All participants share tid 1
// (each tracer registers exactly the "requests" track).
func writeFlow(b *bufio.Writer, sep func(), ph string, pid int, ts uint64, id uint64) {
	sep()
	b.WriteString("{\"name\":\"req.flow\",\"cat\":\"req\",\"ph\":\"")
	b.WriteString(ph)
	b.WriteString("\",\"id\":\"0x")
	b.WriteString(strconv.FormatUint(id, 16))
	b.WriteString("\",\"pid\":")
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(",\"tid\":1,\"ts\":")
	mergedTS(b, ts)
	if ph == "f" {
		b.WriteString(",\"bp\":\"e\"")
	}
	b.WriteString("}")
}
