// Package dist is the distributed-request tracer for the multi-machine
// cluster: it joins per-machine obs.Tracers into one causally-linked
// view. Each participant (the client, the load balancer, every
// backend) records its req.* spans on its own tracer on the shared
// tick timeline; the collector additionally keeps an exact per-request
// hop log — which machine saw which attempt of which request at which
// tick — so a merged Perfetto export can draw flow arrows across
// machine tracks and a critical-path analyzer can decompose every
// completed request's end-to-end latency into client-queue / link /
// LB / backend-service / retry-backoff components that sum exactly to
// the measured latency.
//
// Everything follows the observability contract of internal/obs: the
// collector never charges a cycle clock, every recording method is
// nil-safe, and with the collector absent the instrumented system is
// byte-identical to an uninstrumented build (the trace header is
// simply never put on the wire). Determinism: records append in the
// cluster's fixed sub-step order, maps are used only for lookups
// (never iterated into output), and exports sort with total orders —
// same seed, same bytes.
package dist

import (
	"atmosphere/internal/obs"
)

// ClientSlot is the participant index reserved for the client; the
// tier's machines occupy 1..N in the order the caller names them.
const ClientSlot = 0

// HopKind labels one hop of a request's forward/return path.
type HopKind uint8

// Hop kinds, in path order.
const (
	HopLBForward HopKind = iota // LB routed the request toward a backend
	HopBackend                  // backend served it
	HopLBReturn                 // LB routed the reply back to the client
)

// hopsPerChain is the complete forward/return chain length.
const hopsPerChain = 3

func (k HopKind) String() string {
	switch k {
	case HopLBForward:
		return "lb-forward"
	case HopBackend:
		return "backend"
	case HopLBReturn:
		return "lb-return"
	}
	return "?"
}

// Config shapes a collector.
type Config struct {
	// EventCap is the per-participant tracer ring capacity
	// (obs.DefaultEventCapacity when <= 0).
	EventCap int
	// TickCycles converts the caller's tick clock to cycles; all span
	// timestamps and latency components are ticks times this.
	TickCycles uint64
	// Seed feeds trace-ID derivation (netproto.TraceID).
	Seed uint64
}

// Hop is one machine's handling of one attempt: delivered into the
// machine's inbox at Arrive, processed at Process (later than Arrive
// only when the machine was stalled or backlogged), with the service
// span [SpanTS, SpanTS+SpanDur) on the shared timeline and the
// machine-local span sequence number SpanRef — the value forwarded in
// the trace header as the next hop's parent.
type Hop struct {
	Machine int
	Kind    HopKind
	Arrive  uint64 // tick
	Process uint64 // tick
	SpanTS  uint64 // cycles
	SpanDur uint64 // cycles
	SpanRef uint32
	Parent  uint32 // span ref carried in the header when the frame arrived
	done    bool
}

// attempt is one transmission of a request.
type attempt struct {
	req           *request
	traceID       uint64
	index         int
	sentTick      uint64
	backoffBefore uint64 // request backoff ticks completed before this send
	hops          []Hop
}

// request is one client request: up to 1+budget attempts.
type request struct {
	flow         int
	seq          uint64
	firstTick    uint64
	rootID       uint64
	backoffStart uint64 // nonzero while the flow is backing off
	backoffTicks uint64 // completed backoff, cumulative
	attempts     []*attempt
}

// Collector owns the per-participant tracers and the request table.
// Participant 0 is the client; the remaining indices are the caller's
// machines in naming order.
type Collector struct {
	cfg   Config
	names []string

	tracers []*obs.Tracer
	tracks  []obs.TrackID
	svc     []*obs.Histogram // per-participant service cycles
	spanSeq []uint32

	// Interned span names, per participant tracer.
	nameReq    []obs.NameID // req.client / req.lb / req.backend
	nameRetry  obs.NameID   // client only
	nameGaveUp obs.NameID   // client only

	reqs    []*request // by flow
	seqs    []uint64   // per-flow request sequence
	byTrace map[uint64]*attempt

	completed []TraceRec

	abandoned     uint64
	orphaned      uint64
	staleReplies  uint64
	headerRejects uint64
	irregular     uint64
}

// svcBuckets bucket per-hop service cycles (tens to thousands of
// cycles of app work per frame).
var svcBuckets = []uint64{50, 100, 150, 250, 500, 1_000, 2_000, 4_000, 8_000, 16_000}

// New builds a collector for the given participants. names[0] must be
// the client; flows is the client's flow count (requests are keyed by
// flow). TickCycles must be positive.
func New(cfg Config, names []string, flows int) *Collector {
	if cfg.TickCycles == 0 {
		cfg.TickCycles = 1
	}
	c := &Collector{
		cfg:     cfg,
		names:   append([]string(nil), names...),
		reqs:    make([]*request, flows),
		seqs:    make([]uint64, flows),
		byTrace: make(map[uint64]*attempt),
	}
	for i, name := range c.names {
		tr := obs.NewTracer(cfg.EventCap)
		c.tracers = append(c.tracers, tr)
		c.tracks = append(c.tracks, tr.Track(i, name, "requests"))
		c.svc = append(c.svc, obs.NewHistogram(svcBuckets))
		switch {
		case i == ClientSlot:
			c.nameReq = append(c.nameReq, tr.Name("req.client"))
			c.nameRetry = tr.Name("req.retry")
			c.nameGaveUp = tr.Name("req.gaveup")
		case i == ClientSlot+1:
			c.nameReq = append(c.nameReq, tr.Name("req.lb"))
		default:
			c.nameReq = append(c.nameReq, tr.Name("req.backend"))
		}
	}
	c.spanSeq = make([]uint32, len(c.names))
	return c
}

// Participants returns the participant count (client included).
func (c *Collector) Participants() int {
	if c == nil {
		return 0
	}
	return len(c.names)
}

// ParticipantName returns participant i's name.
func (c *Collector) ParticipantName(i int) string {
	if c == nil || i < 0 || i >= len(c.names) {
		return "?"
	}
	return c.names[i]
}

// Tracer returns participant i's tracer (nil-safe; nil off-range).
func (c *Collector) Tracer(i int) *obs.Tracer {
	if c == nil || i < 0 || i >= len(c.tracers) {
		return nil
	}
	return c.tracers[i]
}

// cycles converts a tick to shared-timeline cycles.
func (c *Collector) cycles(tick uint64) uint64 { return tick * c.cfg.TickCycles }

// BeginRequest opens flow's next request at tick and returns the first
// attempt's trace ID. An uncompleted previous request on the flow (its
// reply was consumed by the straggler path, so Complete never fired)
// is retired as orphaned.
func (c *Collector) BeginRequest(flow int, tick uint64) uint64 {
	if c == nil {
		return 0
	}
	c.dropRequest(flow, true)
	seq := c.seqs[flow]
	c.seqs[flow]++
	r := &request{flow: flow, seq: seq, firstTick: tick}
	c.reqs[flow] = r
	id := c.newAttempt(r, tick)
	r.rootID = id
	return id
}

// newAttempt registers the request's next transmission.
func (c *Collector) newAttempt(r *request, tick uint64) uint64 {
	a := &attempt{
		req:           r,
		index:         len(r.attempts),
		sentTick:      tick,
		backoffBefore: r.backoffTicks,
	}
	a.traceID = traceID(c.cfg.Seed, r.flow, r.seq, a.index)
	r.attempts = append(r.attempts, a)
	c.byTrace[a.traceID] = a
	return a.traceID
}

// Timeout marks flow's active request as entering backoff at tick.
func (c *Collector) Timeout(flow int, tick uint64) {
	if c == nil || c.reqs[flow] == nil {
		return
	}
	c.reqs[flow].backoffStart = tick
}

// Retry closes the flow's backoff window at tick, records the
// req.retry span, and returns the new attempt's trace ID.
func (c *Collector) Retry(flow int, tick uint64) uint64 {
	if c == nil || c.reqs[flow] == nil {
		return 0
	}
	r := c.reqs[flow]
	if r.backoffStart != 0 {
		r.backoffTicks += tick - r.backoffStart
		c.tracers[ClientSlot].SpanArg(c.tracks[ClientSlot], c.nameRetry,
			c.cycles(r.backoffStart), c.cycles(tick), r.rootID)
		r.backoffStart = 0
	}
	return c.newAttempt(r, tick)
}

// Abandon retires flow's request after its retry budget ran out.
func (c *Collector) Abandon(flow int, tick uint64) {
	if c == nil || c.reqs[flow] == nil {
		return
	}
	c.tracers[ClientSlot].Instant(c.tracks[ClientSlot], c.nameGaveUp,
		c.cycles(tick), c.reqs[flow].rootID)
	c.abandoned++
	c.dropRequest(flow, false)
}

// dropRequest forgets flow's active request and all its attempts.
func (c *Collector) dropRequest(flow int, orphan bool) {
	r := c.reqs[flow]
	if r == nil {
		return
	}
	for _, a := range r.attempts {
		delete(c.byTrace, a.traceID)
	}
	c.reqs[flow] = nil
	if orphan {
		c.orphaned++
	}
}

// Arrive records that the attempt's frame was delivered into machine's
// inbox at tick. Unknown trace IDs (stale attempts of completed
// requests) are ignored — they can never re-join a live trace.
func (c *Collector) Arrive(id uint64, machine int, tick uint64) {
	if c == nil {
		return
	}
	a, ok := c.byTrace[id]
	if !ok {
		return
	}
	a.hops = append(a.hops, Hop{Machine: machine, Arrive: tick})
}

// Process records that machine handled the attempt's frame at tick,
// with the service span [spanStart, spanEnd) on the shared timeline
// and the parent span ref the frame carried in. It returns the hop's
// own span ref — what the caller writes into the forwarded header —
// and false for unknown trace IDs.
func (c *Collector) Process(id uint64, machine int, kind HopKind, tick uint64, spanStart, spanEnd uint64, parent uint32) (uint32, bool) {
	if c == nil {
		return 0, false
	}
	a, ok := c.byTrace[id]
	if !ok {
		return 0, false
	}
	// Pair with the oldest unprocessed hop on this machine; a frame
	// processed without a recorded delivery (the first tick boots with
	// pre-armed inboxes only in tests) charges zero queue time.
	var h *Hop
	for i := range a.hops {
		if !a.hops[i].done && a.hops[i].Machine == machine {
			h = &a.hops[i]
			break
		}
	}
	if h == nil {
		a.hops = append(a.hops, Hop{Machine: machine, Arrive: tick})
		h = &a.hops[len(a.hops)-1]
	}
	c.spanSeq[machine]++
	ref := c.spanSeq[machine]
	h.Kind = kind
	h.Process = tick
	h.SpanTS = spanStart
	if spanEnd > spanStart {
		h.SpanDur = spanEnd - spanStart
	}
	h.SpanRef = ref
	h.Parent = parent
	h.done = true
	if machine >= 0 && machine < len(c.tracers) {
		c.tracers[machine].SpanArg(c.tracks[machine], c.nameReq[machine], spanStart, spanEnd, id)
		c.svc[machine].Observe(h.SpanDur)
	}
	return ref, true
}

// Complete closes the request that attempt id belongs to: the reply
// reached the client at tick on the given flow. It records the
// req.client span, decomposes the end-to-end latency into components
// (critpath.go), and retires the request. It returns false — and
// records nothing — when the id is unknown or belongs to another flow:
// a stale or corrupted reply must never complete someone else's trace.
func (c *Collector) Complete(id uint64, flow int, tick uint64) bool {
	if c == nil {
		return false
	}
	a, ok := c.byTrace[id]
	if !ok || a.req.flow != flow {
		c.staleReplies++
		return false
	}
	r := a.req
	c.tracers[ClientSlot].SpanArg(c.tracks[ClientSlot], c.nameReq[ClientSlot],
		c.cycles(r.firstTick), c.cycles(tick), r.rootID)
	rec := c.decompose(a, tick)
	c.completed = append(c.completed, rec)
	if rec.Irregular {
		c.irregular++
	}
	c.dropRequest(flow, false)
	return true
}

// RejectHeader counts a reply whose trace header failed to decode
// (corruption): the frame is still served by the caller exactly as an
// untraced frame would be, but it joins no trace.
func (c *Collector) RejectHeader() {
	if c != nil {
		c.headerRejects++
	}
}

// Completed returns every completed request's record, in completion
// order.
func (c *Collector) Completed() []TraceRec {
	if c == nil {
		return nil
	}
	return c.completed
}

// IrregularCount returns how many completed requests had a hop log
// that was not the clean 3-hop forward/return chain.
func (c *Collector) IrregularCount() uint64 {
	if c == nil {
		return 0
	}
	return c.irregular
}

// Counts returns the collector's bookkeeping tallies: completed,
// abandoned (budget exhausted), orphaned (reply lost to the straggler
// path), stale replies rejected, and corrupt headers rejected.
func (c *Collector) Counts() (completed, abandoned, orphaned, stale, rejects uint64) {
	if c == nil {
		return
	}
	return uint64(len(c.completed)), c.abandoned, c.orphaned, c.staleReplies, c.headerRejects
}

// Pressure is one participant's tracer ring occupancy. Dropped > 0
// means the ring evicted events: the merged export is then missing the
// oldest spans (the hop log behind the attribution is unaffected), so
// reports warn on it.
type Pressure struct {
	Name    string
	Events  int
	Cap     int
	Dropped uint64
}

// Pressure reports every participant's ring occupancy, client first.
func (c *Collector) Pressure() []Pressure {
	if c == nil {
		return nil
	}
	out := make([]Pressure, len(c.tracers))
	for i, tr := range c.tracers {
		out[i] = Pressure{Name: c.names[i], Events: tr.Len(), Cap: tr.Cap(), Dropped: tr.Dropped()}
	}
	return out
}

// TraceEvents sums live events across all participant rings.
func (c *Collector) TraceEvents() uint64 {
	var n uint64
	if c == nil {
		return 0
	}
	for _, tr := range c.tracers {
		n += uint64(tr.Len())
	}
	return n
}

// TraceDropped sums ring evictions across all participant rings.
func (c *Collector) TraceDropped() uint64 {
	var n uint64
	if c == nil {
		return 0
	}
	for _, tr := range c.tracers {
		n += tr.Dropped()
	}
	return n
}

// ServiceHistogram merges every machine's per-hop service-cycle
// histogram (obs.Histogram.Merge) into one cluster-wide view.
func (c *Collector) ServiceHistogram() *obs.Histogram {
	if c == nil {
		return nil
	}
	merged := obs.NewHistogram(svcBuckets)
	for _, h := range c.svc {
		// Bounds are identical by construction; Merge cannot fail.
		if err := merged.Merge(h); err != nil {
			panic(err)
		}
	}
	return merged
}

// traceID mirrors netproto.TraceID (FNV-1a over seed/flow/seq/attempt)
// without importing netproto — obs stays dependency-free below the
// wire-format layer; the equality is pinned by a cluster test.
func traceID(seed uint64, flow int, seq uint64, attempt int) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range [4]uint64{seed, uint64(flow), seq, uint64(attempt)} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}
