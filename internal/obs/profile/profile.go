// Package profile folds the tracer's span stream into cycle-attribution
// profiles: per-(core, domain, span-name) exclusive/inclusive totals, a
// folded-stacks file (Brendan Gregg's flamegraph.pl / speedscope input
// format), and a gzip'd pprof profile.proto (go tool pprof). The encoder
// is hand-rolled — no protobuf dependency — and every export is a pure
// function of the trace, so same-seed runs produce byte-identical output
// (golden-file tested).
//
// Span nesting is recovered by interval containment on each track's
// timeline: a span whose [TS, TS+Dur) lies inside an earlier span's
// interval is its child. The kernel's big lock means kernel-track spans
// never nest, but driver and machine tracks may. Exclusive cycles are a
// span's duration minus its direct children's; summing exclusive cycles
// over a track reproduces the track's top-level span time (each nested
// cycle counted exactly once).
package profile

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"

	"atmosphere/internal/obs"
)

// Total is one (core, domain, span-name) aggregate.
type Total struct {
	PIDName   string // core / machine timeline the spans ran on
	TIDName   string // domain within it ("kernel", "irq", a driver)
	Name      string // span name
	Count     uint64
	Exclusive uint64 // cycles in this span minus direct children
	Inclusive uint64 // cycles in this span including children
}

// Profile is a folded trace. Build one with Fold.
type Profile struct {
	stacks map[string]uint64 // "pid;tid;frame;...;frame" -> exclusive cycles
	totals map[totalKey]*Total
}

type totalKey struct{ pid, tid, name string }

// open is one not-yet-closed span during the containment sweep.
type open struct {
	end      uint64
	path     string
	childDur uint64
	key      totalKey
	dur      uint64
}

// Fold builds a profile from the tracer's live span events. Nil tracers
// and instants fold to an empty profile; dropped events are gone (the
// tracer's Dropped counter says how many).
func Fold(t *obs.Tracer) *Profile {
	p := &Profile{
		stacks: make(map[string]uint64),
		totals: make(map[totalKey]*Total),
	}
	if t == nil {
		return p
	}
	tracks := t.Tracks()
	byTrack := make([][]obs.Event, len(tracks))
	for _, e := range t.Events() {
		if e.Kind != obs.KindSpan || int(e.Track) >= len(tracks) {
			continue
		}
		byTrack[e.Track] = append(byTrack[e.Track], e)
	}
	for id, evs := range byTrack {
		if len(evs) == 0 {
			continue
		}
		tk := tracks[id]
		p.foldTrack(t, tk, evs)
	}
	return p
}

// foldTrack sweeps one track's spans in timeline order, recovering
// nesting by containment: sort by start ascending (longer span first on
// ties, so parents precede children), keep a stack of open spans, pop
// every span that ended before the next one starts.
func (p *Profile) foldTrack(t *obs.Tracer, tk obs.Track, evs []obs.Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Dur > evs[j].Dur
	})
	prefix := tk.PIDName + ";" + tk.TIDName
	var stack []open
	pop := func() {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		excl := uint64(0)
		if o.dur > o.childDur {
			excl = o.dur - o.childDur
		}
		p.stacks[o.path] += excl
		tot, ok := p.totals[o.key]
		if !ok {
			tot = &Total{PIDName: o.key.pid, TIDName: o.key.tid, Name: o.key.name}
			p.totals[o.key] = tot
		}
		tot.Count++
		tot.Exclusive += excl
		tot.Inclusive += o.dur
	}
	for _, e := range evs {
		end := e.TS + e.Dur
		// Close finished spans; an overlapping-but-not-containing span is
		// treated as a sibling (pop it too).
		for len(stack) > 0 && (stack[len(stack)-1].end <= e.TS || stack[len(stack)-1].end < end) {
			pop()
		}
		parent := prefix
		if len(stack) > 0 {
			top := &stack[len(stack)-1]
			parent = top.path
			top.childDur += e.Dur
		}
		name := t.NameOf(e.Name)
		stack = append(stack, open{
			end:  end,
			path: parent + ";" + name,
			key:  totalKey{tk.PIDName, tk.TIDName, name},
			dur:  e.Dur,
		})
	}
	for len(stack) > 0 {
		pop()
	}
}

// Totals returns the per-(core, domain, name) aggregates, sorted.
func (p *Profile) Totals() []Total {
	if p == nil {
		return nil
	}
	out := make([]Total, 0, len(p.totals))
	for _, t := range p.totals {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PIDName != b.PIDName {
			return a.PIDName < b.PIDName
		}
		if a.TIDName != b.TIDName {
			return a.TIDName < b.TIDName
		}
		return a.Name < b.Name
	})
	return out
}

// TotalCycles sums exclusive cycles over the whole profile — equal to
// the tracer's SpanTotal for the folded events.
func (p *Profile) TotalCycles() uint64 {
	if p == nil {
		return 0
	}
	var sum uint64
	for _, v := range p.stacks {
		sum += v
	}
	return sum
}

// sortedStacks returns the folded stack keys in lexical order.
func (p *Profile) sortedStacks() []string {
	keys := make([]string, 0, len(p.stacks))
	for k := range p.stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteFolded writes the profile in folded-stacks format, one
// "frame;frame;frame <cycles>" line per stack, sorted. Feed it to
// flamegraph.pl or drop it into speedscope.
func (p *Profile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	for _, k := range p.sortedStacks() {
		if p.stacks[k] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, p.stacks[k]); err != nil {
			return err
		}
	}
	return nil
}

// FoldedString renders WriteFolded to a string.
func (p *Profile) FoldedString() string {
	var sb strings.Builder
	_ = p.WriteFolded(&sb)
	return sb.String()
}

// WritePprofRaw writes the uncompressed pprof profile.proto encoding:
// one sample per folded stack, value = exclusive cycles, locations
// leaf-first. The golden tests pin these bytes.
func (p *Profile) WritePprofRaw(w io.Writer) error {
	if p == nil {
		return nil
	}
	_, err := w.Write(p.pprofBytes())
	return err
}

// WritePprof writes the gzip'd profile.proto, the framing `go tool
// pprof` expects on disk.
func (p *Profile) WritePprof(w io.Writer) error {
	if p == nil {
		return nil
	}
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.pprofBytes()); err != nil {
		return err
	}
	return gz.Close()
}

// --- hand-rolled profile.proto encoding ---
//
// Only the fields pprof requires (numbers from
// github.com/google/pprof/proto/profile.proto):
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table (string)
//	ValueType: 1 type (string idx), 2 unit (string idx)
//	Sample:    1 location_id (packed uint64, leaf first), 2 value (packed int64)
//	Location:  1 id, 4 line (Line)
//	Line:      1 function_id
//	Function:  1 id, 2 name (string idx)
//
// All indices are interned in sorted-stack order, so the byte stream is
// deterministic.

type protoBuf struct{ b []byte }

func (pb *protoBuf) uvarint(v uint64) {
	for v >= 0x80 {
		pb.b = append(pb.b, byte(v)|0x80)
		v >>= 7
	}
	pb.b = append(pb.b, byte(v))
}

// key writes a field tag: number<<3 | wire (0 = varint, 2 = bytes).
func (pb *protoBuf) key(field, wire int) { pb.uvarint(uint64(field<<3 | wire)) }

func (pb *protoBuf) varintField(field int, v uint64) {
	pb.key(field, 0)
	pb.uvarint(v)
}

func (pb *protoBuf) bytesField(field int, payload []byte) {
	pb.key(field, 2)
	pb.uvarint(uint64(len(payload)))
	pb.b = append(pb.b, payload...)
}

func (pb *protoBuf) stringField(field int, s string) {
	pb.bytesField(field, []byte(s))
}

func (pb *protoBuf) packedField(field int, vals []uint64) {
	var inner protoBuf
	for _, v := range vals {
		inner.uvarint(v)
	}
	pb.bytesField(field, inner.b)
}

func (p *Profile) pprofBytes() []byte {
	strTab := []string{""}
	strIx := map[string]int{"": 0}
	intern := func(s string) uint64 {
		if i, ok := strIx[s]; ok {
			return uint64(i)
		}
		i := len(strTab)
		strTab = append(strTab, s)
		strIx[s] = i
		return uint64(i)
	}
	cycles := intern("cycles")

	stacks := p.sortedStacks()
	funcIx := make(map[string]uint64) // frame name -> 1-based function/location id
	var funcNames []string
	funcOf := func(frame string) uint64 {
		if id, ok := funcIx[frame]; ok {
			return id
		}
		id := uint64(len(funcNames) + 1)
		funcNames = append(funcNames, frame)
		funcIx[frame] = id
		return id
	}

	var samples protoBuf
	for _, k := range stacks {
		v := p.stacks[k]
		if v == 0 {
			continue
		}
		frames := strings.Split(k, ";")
		locs := make([]uint64, 0, len(frames))
		for i := len(frames) - 1; i >= 0; i-- { // leaf first
			locs = append(locs, funcOf(frames[i]))
		}
		var s protoBuf
		s.packedField(1, locs)
		s.packedField(2, []uint64{v})
		samples.bytesField(2, s.b)
	}

	var out protoBuf
	var vt protoBuf
	vt.varintField(1, cycles)
	vt.varintField(2, cycles)
	out.bytesField(1, vt.b) // sample_type
	out.b = append(out.b, samples.b...)
	for i := range funcNames {
		id := uint64(i + 1)
		var line protoBuf
		line.varintField(1, id) // function_id
		var loc protoBuf
		loc.varintField(1, id)
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b)
	}
	for i, name := range funcNames {
		id := uint64(i + 1)
		var fn protoBuf
		fn.varintField(1, id)
		fn.varintField(2, intern(name))
		out.bytesField(5, fn.b)
	}
	for _, s := range strTab {
		out.stringField(6, s)
	}
	return out.b
}
