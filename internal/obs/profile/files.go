package profile

import (
	"fmt"
	"os"

	"atmosphere/internal/obs"
)

// WriteFiles folds t's span stream and writes both export formats next
// to each other: <prefix>.folded (flamegraph.pl / speedscope folded
// stacks) and <prefix>.pb.gz (gzip'd pprof profile.proto, for `go tool
// pprof`). Returns the folded profile so callers can print totals.
func WriteFiles(prefix string, t *obs.Tracer) (*Profile, error) {
	p := Fold(t)
	f, err := os.Create(prefix + ".folded")
	if err != nil {
		return nil, err
	}
	if err := p.WriteFolded(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	g, err := os.Create(prefix + ".pb.gz")
	if err != nil {
		return nil, err
	}
	if err := p.WritePprof(g); err != nil {
		g.Close()
		return nil, err
	}
	if err := g.Close(); err != nil {
		return nil, err
	}
	return p, nil
}

// Describe renders a one-line summary for CLI output.
func (p *Profile) Describe(prefix string) string {
	return fmt.Sprintf("wrote profile (%d cycles across %d frames) to %s.folded and %s.pb.gz",
		p.TotalCycles(), len(p.Totals()), prefix, prefix)
}
