package profile

import (
	"bytes"
	"compress/gzip"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"atmosphere/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testTrace builds a small synthetic trace with nesting, siblings, two
// domains on one core, and a second core — enough shape to exercise the
// containment sweep and keep the goldens readable.
func testTrace() *obs.Tracer {
	tr := obs.NewTracer(64)
	k0 := tr.Track(0, "core0", "kernel")
	d0 := tr.Track(0, "core0", "nvme-driver")
	k1 := tr.Track(1, "core1", "kernel")
	nCall := tr.Name("call")
	nMap := tr.Name("map_page")
	nWalk := tr.Name("pt_walk")
	nSubmit := tr.Name("submit")
	nPoll := tr.Name("poll")

	// core0 kernel: call [0,100) containing pt_walk [10,30) and
	// pt_walk [40,55); then map_page [200,260) containing pt_walk [210,240).
	tr.Span(k0, nCall, 0, 100)
	tr.Span(k0, nWalk, 10, 30)
	tr.Span(k0, nWalk, 40, 55)
	tr.Span(k0, nMap, 200, 260)
	tr.Span(k0, nWalk, 210, 240)
	// core0 driver: submit [0,40), poll [50,80).
	tr.Span(d0, nSubmit, 0, 40)
	tr.Span(d0, nPoll, 50, 80)
	// core1 kernel: call [5,25).
	tr.Span(k1, nCall, 5, 25)
	// An instant must not contribute cycles.
	tr.Instant(k0, nCall, 300, 7)
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden (%d vs %d bytes); rerun with -update if intended\ngot:\n%s",
			name, len(got), len(want), got)
	}
}

func TestFoldExclusiveInclusive(t *testing.T) {
	p := Fold(testTrace())
	totals := p.Totals()
	find := func(pid, tid, name string) Total {
		for _, tot := range totals {
			if tot.PIDName == pid && tot.TIDName == tid && tot.Name == name {
				return tot
			}
		}
		t.Fatalf("total %s;%s;%s missing", pid, tid, name)
		return Total{}
	}
	call := find("core0", "kernel", "call")
	if call.Inclusive != 100 || call.Exclusive != 100-20-15 || call.Count != 1 {
		t.Fatalf("call total = %+v", call)
	}
	walk := find("core0", "kernel", "pt_walk")
	if walk.Inclusive != 20+15+30 || walk.Exclusive != walk.Inclusive || walk.Count != 3 {
		t.Fatalf("pt_walk total = %+v", walk)
	}
	mp := find("core0", "kernel", "map_page")
	if mp.Exclusive != 30 {
		t.Fatalf("map_page exclusive = %d, want 30", mp.Exclusive)
	}
	// Exclusive cycles across the profile reproduce the top-level span
	// time: 100 + 60 on core0 kernel, 40 + 30 on the driver, 20 on
	// core1 (nested children count once, instants not at all).
	if got := p.TotalCycles(); got != 250 {
		t.Fatalf("TotalCycles = %d, want 250", got)
	}
}

func TestFoldedGolden(t *testing.T) {
	p := Fold(testTrace())
	checkGolden(t, "fold.golden", []byte(p.FoldedString()))
}

func TestPprofGolden(t *testing.T) {
	p := Fold(testTrace())
	var raw bytes.Buffer
	if err := p.WritePprofRaw(&raw); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "profile_raw.pb.golden", raw.Bytes())
}

func TestPprofGzipRoundTrip(t *testing.T) {
	p := Fold(testTrace())
	var raw, gz bytes.Buffer
	if err := p.WritePprofRaw(&raw); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(&gz); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	unz, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unz, raw.Bytes()) {
		t.Fatal("gzip'd pprof does not decompress to the raw encoding")
	}
	// Same profile exported twice is byte-identical, gzip included.
	var gz2 bytes.Buffer
	if err := p.WritePprof(&gz2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gz.Bytes(), gz2.Bytes()) {
		t.Fatal("repeated gzip export differs")
	}
}

func TestFoldDeterministic(t *testing.T) {
	a := Fold(testTrace()).FoldedString()
	b := Fold(testTrace()).FoldedString()
	if a != b {
		t.Fatal("same trace folds to different output")
	}
	var pa, pb bytes.Buffer
	if err := Fold(testTrace()).WritePprofRaw(&pa); err != nil {
		t.Fatal(err)
	}
	if err := Fold(testTrace()).WritePprofRaw(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatal("same trace encodes to different pprof bytes")
	}
}

func TestFoldNilAndEmpty(t *testing.T) {
	if got := Fold(nil).FoldedString(); got != "" {
		t.Fatalf("nil fold = %q", got)
	}
	if tot := Fold(nil).Totals(); len(tot) != 0 {
		t.Fatalf("nil totals = %v", tot)
	}
	var sink bytes.Buffer
	if err := Fold(obs.NewTracer(8)).WritePprof(&sink); err != nil {
		t.Fatal(err)
	}
	var nilP *Profile
	if nilP.TotalCycles() != 0 || nilP.Totals() != nil {
		t.Fatal("nil profile returned state")
	}
	if err := nilP.WriteFolded(&sink); err != nil {
		t.Fatal(err)
	}
	if err := nilP.WritePprof(&sink); err != nil {
		t.Fatal(err)
	}
}

// TestPprofParsableShape decodes the raw encoding enough to verify the
// structural invariants a pprof reader relies on: string table starts
// with "", every sample references valid locations, every location a
// valid function, every function a valid name index.
func TestPprofParsableShape(t *testing.T) {
	p := Fold(testTrace())
	var raw bytes.Buffer
	if err := p.WritePprofRaw(&raw); err != nil {
		t.Fatal(err)
	}
	var (
		strs     []string
		nSamples int
		locIDs   = map[uint64]bool{}
		funIDs   = map[uint64]bool{}
	)
	b := raw.Bytes()
	for len(b) > 0 {
		key, n := uvarint(t, b)
		b = b[n:]
		field, wire := key>>3, key&7
		if wire != 2 {
			t.Fatalf("top-level wire type %d", wire)
		}
		ln, n := uvarint(t, b)
		b = b[n:]
		payload := b[:ln]
		b = b[ln:]
		switch field {
		case 2:
			nSamples++
		case 4:
			id, n := fieldVarint(t, payload, 1)
			if n == 0 {
				t.Fatal("location without id")
			}
			locIDs[id] = true
		case 5:
			id, n := fieldVarint(t, payload, 1)
			if n == 0 {
				t.Fatal("function without id")
			}
			funIDs[id] = true
		case 6:
			strs = append(strs, string(payload))
		}
	}
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string table must start with empty string: %q", strs)
	}
	if nSamples == 0 {
		t.Fatal("no samples encoded")
	}
	if len(locIDs) != len(funIDs) {
		t.Fatalf("locations %d vs functions %d", len(locIDs), len(funIDs))
	}
}

func uvarint(t *testing.T, b []byte) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	t.Fatal("truncated varint")
	return 0, 0
}

// fieldVarint scans a message payload for the first varint field with
// the given number; returns (value, bytes consumed for it) or (0, 0).
func fieldVarint(t *testing.T, b []byte, want uint64) (uint64, int) {
	t.Helper()
	for len(b) > 0 {
		key, n := uvarint(t, b)
		b = b[n:]
		field, wire := key>>3, key&7
		switch wire {
		case 0:
			v, n := uvarint(t, b)
			b = b[n:]
			if field == want {
				return v, n
			}
		case 2:
			ln, n := uvarint(t, b)
			b = b[n:]
			b = b[ln:]
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
	return 0, 0
}
