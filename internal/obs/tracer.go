// Package obs is the observability layer: a fixed-capacity ring-buffer
// event tracer and a metrics registry, both driven by the deterministic
// cycle clocks (hw.Clock). Traces are a pure function of the cycles the
// simulation charges, so two runs with the same seed produce bit-for-bit
// identical traces — the same reproducibility contract the fault
// injector's trace hash gives (internal/faults).
//
// Observability must be free when off: nothing in this package ever
// charges a cycle clock, and every recording method is safe to call on a
// nil *Tracer / nil *Counter / nil *Histogram (it is a no-op), so
// instrumented hot paths need no branches. The hot path allocates
// nothing once tracks and names are interned: events are fixed-size
// values stored inline in a preallocated ring.
//
// Exporters: WriteTrace renders Chrome/Perfetto trace_event JSON (one
// pid per core, one tid per kernel domain or driver; open the file at
// ui.perfetto.dev), and Registry.WriteText renders a plain-text metrics
// dump.
package obs

// DefaultEventCapacity is the ring size NewTracer uses for capacity <= 0
// (64 Ki events * 40 bytes ≈ 2.5 MiB).
const DefaultEventCapacity = 1 << 16

// MachinePID is the Perfetto pid of machine-wide tracks (fault
// injection, aggregate counters) whose timestamps run on the machine's
// total cycle count rather than one core's clock.
const MachinePID = 1 << 20

// TrackID identifies one timeline — a (pid, tid) pair in the Perfetto
// export. ID 0 is always valid (the first registered track, or a
// throwaway on a nil tracer).
type TrackID int32

// NameID is an interned event name.
type NameID int32

// EventKind discriminates ring entries.
type EventKind uint8

// Event kinds.
const (
	// KindSpan is a closed [TS, TS+Dur) interval on a track.
	KindSpan EventKind = iota
	// KindInstant is a point event at TS.
	KindInstant
	// KindCounter is a counter sample at TS: Arg carries the value. The
	// Perfetto export renders it as a "C" event, which the UI draws as a
	// step-function counter track keyed by (pid, name).
	KindCounter
)

// Event is one recorded trace event: a fixed-size value so the ring
// never allocates. TS and Dur are in cycles on the owning track's
// timeline (the core's clock for per-core tracks, the machine total for
// MachinePID tracks). Arg is an event-specific scalar (errno of a
// syscall span, IRQ line of an interrupt, stall cycles of a fault).
type Event struct {
	Kind  EventKind
	Track TrackID
	Name  NameID
	TS    uint64
	Dur   uint64
	Arg   uint64
}

// Track describes one timeline for the exporter.
type Track struct {
	PID     int    // Perfetto pid (the core number, or MachinePID)
	PIDName string // process_name metadata ("core0", "machine")
	TID     int    // Perfetto tid, assigned per pid in registration order
	TIDName string // thread_name metadata ("kernel", "nvme-driver", ...)
}

// Tracer records events into a fixed-capacity ring, dropping the oldest
// event (and counting the drop) when full. All methods are nil-safe.
type Tracer struct {
	ring    []Event
	head    int // index of the oldest live event
	n       int // live events
	dropped uint64

	tracks  []Track
	trackIx map[trackKey]TrackID
	nextTID map[int]int

	names  []string
	nameIx map[string]NameID
}

type trackKey struct {
	pid     int
	tidName string
}

// NewTracer builds a tracer with the given ring capacity (<= 0 means
// DefaultEventCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Tracer{
		ring:    make([]Event, capacity),
		trackIx: make(map[trackKey]TrackID),
		nextTID: make(map[int]int),
		nameIx:  make(map[string]NameID),
	}
}

// Track interns a (pid, tidName) timeline and returns its ID; repeated
// registrations of the same pair return the same ID. Tids are assigned
// per pid in first-registration order, starting at 1. Call at setup
// time, not on the hot path (the first registration allocates).
func (t *Tracer) Track(pid int, pidName, tidName string) TrackID {
	if t == nil {
		return 0
	}
	key := trackKey{pid, tidName}
	if id, ok := t.trackIx[key]; ok {
		return id
	}
	t.nextTID[pid]++
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, Track{PID: pid, PIDName: pidName, TID: t.nextTID[pid], TIDName: tidName})
	t.trackIx[key] = id
	return id
}

// Name interns an event name. Repeated calls with the same string are
// allocation-free map lookups.
func (t *Tracer) Name(s string) NameID {
	if t == nil {
		return 0
	}
	if id, ok := t.nameIx[s]; ok {
		return id
	}
	id := NameID(len(t.names))
	t.names = append(t.names, s)
	t.nameIx[s] = id
	return id
}

// NameOf returns the string of an interned name.
func (t *Tracer) NameOf(id NameID) string {
	if t == nil || int(id) < 0 || int(id) >= len(t.names) {
		return "?"
	}
	return t.names[id]
}

// Tracks returns the registered track table (index = TrackID).
func (t *Tracer) Tracks() []Track {
	if t == nil {
		return nil
	}
	return t.tracks
}

func (t *Tracer) push(e Event) {
	if t.n == len(t.ring) {
		t.head = (t.head + 1) % len(t.ring)
		t.n--
		t.dropped++
	}
	t.ring[(t.head+t.n)%len(t.ring)] = e
	t.n++
}

// Span records a closed [start, end) interval. Empty spans (end <=
// start: no cycles charged) are not recorded.
func (t *Tracer) Span(track TrackID, name NameID, start, end uint64) {
	t.SpanArg(track, name, start, end, 0)
}

// SpanArg is Span with an event argument.
func (t *Tracer) SpanArg(track TrackID, name NameID, start, end, arg uint64) {
	if t == nil || end <= start {
		return
	}
	t.push(Event{Kind: KindSpan, Track: track, Name: name, TS: start, Dur: end - start, Arg: arg})
}

// Instant records a point event.
func (t *Tracer) Instant(track TrackID, name NameID, ts, arg uint64) {
	if t == nil {
		return
	}
	t.push(Event{Kind: KindInstant, Track: track, Name: name, TS: ts, Arg: arg})
}

// Counter records a counter sample: the named series holds value from
// ts onward. Perfetto draws one counter track per (pid, name), so
// series names should be fully qualified ("lock.big.kernel.queue").
func (t *Tracer) Counter(track TrackID, name NameID, ts, value uint64) {
	if t == nil {
		return
	}
	t.push(Event{Kind: KindCounter, Track: track, Name: name, TS: ts, Arg: value})
}

// Span is also available as a begin/end pair for call sites that prefer
// lexical scoping; SpanHandle is a value (no allocation).
type SpanHandle struct {
	t     *Tracer
	track TrackID
	name  NameID
	start uint64
}

// Begin opens a span at the given clock reading.
func (t *Tracer) Begin(track TrackID, name NameID, now uint64) SpanHandle {
	return SpanHandle{t: t, track: track, name: name, start: now}
}

// End closes the span at the given clock reading.
func (s SpanHandle) End(now uint64) { s.t.SpanArg(s.track, s.name, s.start, now, 0) }

// EndArg closes the span with an argument.
func (s SpanHandle) EndArg(now, arg uint64) { s.t.SpanArg(s.track, s.name, s.start, now, arg) }

// Len returns the number of live events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dropped returns how many events the ring evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the live events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.head+i)%len(t.ring)])
	}
	return out
}

// SpanTotal sums the durations of all live span events — the cycles the
// trace accounts for. Instants contribute nothing; dropped events no
// longer count.
func (t *Tracer) SpanTotal() uint64 {
	if t == nil {
		return 0
	}
	var sum uint64
	for i := 0; i < t.n; i++ {
		e := &t.ring[(t.head+i)%len(t.ring)]
		if e.Kind == KindSpan {
			sum += e.Dur
		}
	}
	return sum
}

// Hash returns an FNV-1a hash over the live events plus the drop count:
// two traces agree iff their hashes agree (modulo astronomically
// unlikely collisions). The determinism tests compare hashes of
// same-seed runs.
func (t *Tracer) Hash() uint64 {
	if t == nil {
		return 0
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(w uint64) {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= 1099511628211 // FNV-1a prime
		}
	}
	mix(t.dropped)
	for i := 0; i < t.n; i++ {
		e := &t.ring[(t.head+i)%len(t.ring)]
		mix(uint64(e.Kind))
		mix(uint64(e.Track))
		mix(uint64(e.Name))
		mix(e.TS)
		mix(e.Dur)
		mix(e.Arg)
	}
	return h
}
