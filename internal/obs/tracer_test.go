package obs

import "testing"

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	track := tr.Track(0, "core0", "kernel")
	outer := tr.Name("outer")
	inner := tr.Name("inner")

	// Complete-span model: the inner span closes (and records) first,
	// but nesting in the export comes from ts/dur containment, not
	// record order.
	o := tr.Begin(track, outer, 100)
	i := tr.Begin(track, inner, 200)
	i.End(300)
	o.EndArg(500, 7)

	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Name != inner || ev[0].TS != 200 || ev[0].Dur != 100 {
		t.Errorf("inner span = %+v, want ts=200 dur=100", ev[0])
	}
	if ev[1].Name != outer || ev[1].TS != 100 || ev[1].Dur != 400 || ev[1].Arg != 7 {
		t.Errorf("outer span = %+v, want ts=100 dur=400 arg=7", ev[1])
	}
	if ev[0].TS < ev[1].TS || ev[0].TS+ev[0].Dur > ev[1].TS+ev[1].Dur {
		t.Errorf("inner span %+v not contained in outer %+v", ev[0], ev[1])
	}
	if got := tr.SpanTotal(); got != 500 {
		t.Errorf("SpanTotal = %d, want 500", got)
	}
}

func TestEmptySpansSkipped(t *testing.T) {
	tr := NewTracer(16)
	track := tr.Track(0, "core0", "kernel")
	n := tr.Name("noop")
	tr.Span(track, n, 100, 100) // zero cycles
	tr.Span(track, n, 100, 90)  // clock went nowhere sensible
	if tr.Len() != 0 {
		t.Errorf("empty spans recorded: Len = %d, want 0", tr.Len())
	}
}

func TestRingWraparoundDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	track := tr.Track(0, "core0", "kernel")
	n := tr.Name("tick")
	for ts := uint64(1); ts <= 6; ts++ {
		tr.Instant(track, n, ts, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	ev := tr.Events()
	for i, want := range []uint64{3, 4, 5, 6} {
		if ev[i].TS != want {
			t.Errorf("event %d ts = %d, want %d (oldest must go first)", i, ev[i].TS, want)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	build := func(extra bool) *Tracer {
		tr := NewTracer(8)
		track := tr.Track(0, "core0", "kernel")
		n := tr.Name("op")
		tr.Span(track, n, 10, 20)
		tr.Instant(track, n, 15, 3)
		if extra {
			tr.Instant(track, n, 16, 3)
		}
		return tr
	}
	a, b := build(false), build(false)
	if a.Hash() != b.Hash() {
		t.Errorf("identical traces hash differently: %x vs %x", a.Hash(), b.Hash())
	}
	if c := build(true); c.Hash() == a.Hash() {
		t.Errorf("diverging traces share hash %x", a.Hash())
	}
}

func TestTrackAndNameInterning(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Track(0, "core0", "kernel")
	b := tr.Track(0, "core0", "kernel")
	if a != b {
		t.Errorf("re-registering a track returned a new ID: %d vs %d", a, b)
	}
	c := tr.Track(0, "core0", "irq")
	if c == a {
		t.Error("distinct tidName reused the track ID")
	}
	tks := tr.Tracks()
	if tks[a].TID == tks[c].TID {
		t.Error("tracks of one pid share a tid")
	}
	if n1, n2 := tr.Name("x"), tr.Name("x"); n1 != n2 {
		t.Errorf("name interning broken: %d vs %d", n1, n2)
	}
	if got := tr.NameOf(tr.Name("x")); got != "x" {
		t.Errorf("NameOf = %q, want x", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	track := tr.Track(0, "core0", "kernel")
	n := tr.Name("x")
	tr.Span(track, n, 0, 10)
	tr.SpanArg(track, n, 0, 10, 1)
	tr.Instant(track, n, 5, 0)
	tr.Begin(track, n, 0).End(10)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.SpanTotal() != 0 || tr.Hash() != 0 {
		t.Error("nil tracer reported nonzero state")
	}
	if tr.Events() != nil || tr.Tracks() != nil {
		t.Error("nil tracer returned non-nil slices")
	}
}
