package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(3)
	if nilC.Value() != 0 {
		t.Error("nil counter counted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Errorf("count=%d sum=%d, want 5/5126", h.Count(), h.Sum())
	}
	// Bounds are inclusive: 10 -> le10, 100 -> le100, 5000 -> overflow.
	if h.counts[0] != 2 || h.counts[1] != 2 || h.counts[2] != 1 {
		t.Errorf("bucket counts = %v, want [2 2 1]", h.counts)
	}
	if got := h.Mean(); got != 5126.0/5 {
		t.Errorf("Mean = %v", got)
	}
	if NewHistogram(nil).Mean() != 0 {
		t.Error("empty histogram mean not zero-guarded")
	}
	var nilH *Histogram
	nilH.Observe(3)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Mean() != 0 {
		t.Error("nil histogram recorded")
	}
}

func TestRegistrySharesCountersByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("driver.nvme.retries")
	a.Add(3)
	// A respawned driver generation resolves the same name and keeps
	// accumulating into the same counter.
	b := r.Counter("driver.nvme.retries")
	b.Inc()
	if a != b || a.Value() != 4 {
		t.Errorf("counters not shared: a=%p b=%p value=%d", a, b, a.Value())
	}

	var nilR *Registry
	if nilR.Counter("x") != nil || nilR.Histogram("x", nil) != nil {
		t.Error("nil registry handed out live metrics")
	}
	nilR.Gauge("x", func() uint64 { return 1 })
	if err := nilR.WriteText(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestGaugeReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.Gauge("supervisor.restarts", func() uint64 { return 1 })
	r.Gauge("supervisor.restarts", func() uint64 { return 2 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "gauge supervisor.restarts 2\n"; got != want {
		t.Errorf("dump = %q, want %q", got, want)
	}
}

func TestWriteTextDeterministicDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Inc()
	r.Gauge("g", func() uint64 { return 9 })
	h := r.Histogram("lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	want := "counter a.count 1\n" +
		"counter b.count 2\n" +
		"gauge g 9\n" +
		"hist lat count=3 sum=555 mean=185.0 le10=1 le100=1 +inf=1\n"
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("dump:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 40, 80})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 samples: 50 in le10, 40 in le20, 9 in le40, 1 overflow.
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(15)
	}
	for i := 0; i < 9; i++ {
		h.Observe(30)
	}
	h.Observe(1000)
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.25, 10}, {0.5, 10}, {0.9, 20}, {0.99, 40},
		{0.999, 160}, // overflow saturates to 2x last bound
		{1.0, 160},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	var nilH *Histogram
	if nilH.Quantile(0.99) != 0 {
		t.Fatal("nil histogram quantile should be 0")
	}
}

// TestHistogramQuantileEdgeCases pins the corners the SLO math leans
// on: q <= 0 and NaN clamp to the first sample, q > 1 to the last,
// an all-overflow histogram saturates, and empty bounds fall back to
// CycleBuckets instead of producing a boundless (panicking) histogram.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]uint64{10, 20})
	h.Observe(5)
	h.Observe(15)
	for _, q := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if got := h.Quantile(q); got != 10 {
			t.Errorf("Quantile(%v) = %d, want first-sample bound 10", q, got)
		}
	}
	for _, q := range []float64{1, 1.5, math.Inf(1)} {
		if got := h.Quantile(q); got != 20 {
			t.Errorf("Quantile(%v) = %d, want last-sample bound 20", q, got)
		}
	}

	over := NewHistogram([]uint64{10, 20})
	over.Observe(999)
	over.Observe(12345)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := over.Quantile(q); got != 40 {
			t.Errorf("all-overflow Quantile(%v) = %d, want 2x last bound 40", q, got)
		}
	}

	empty := NewHistogram([]uint64{})
	empty.Observe(1)
	if got := empty.Quantile(1); got != CycleBuckets[0] {
		t.Errorf("empty-bounds histogram Quantile(1) = %d, want CycleBuckets fallback %d", got, CycleBuckets[0])
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []uint64{10, 20, 40}
	a, b := NewHistogram(bounds), NewHistogram(bounds)
	for i := 0; i < 10; i++ {
		a.Observe(5)
	}
	for i := 0; i < 10; i++ {
		b.Observe(30)
	}
	b.Observe(1000) // overflow

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 21 || a.Sum() != 10*5+10*30+1000 {
		t.Fatalf("merged count=%d sum=%d", a.Count(), a.Sum())
	}
	if got := a.Quantile(0.5); got != 40 {
		t.Fatalf("merged p50 = %d, want 40", got)
	}
	if got := a.Quantile(1); got != 80 {
		t.Fatalf("merged max = %d, want overflow saturation 80", got)
	}
	// b is untouched by the merge.
	if b.Count() != 11 {
		t.Fatalf("merge mutated the source: count=%d", b.Count())
	}

	// A second merge keeps accumulating (N machines fold in one by one).
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 32 {
		t.Fatalf("double merge count=%d", a.Count())
	}
}

func TestHistogramMergeGuards(t *testing.T) {
	a := NewHistogram([]uint64{10, 20})
	a.Observe(5)

	badBounds := NewHistogram([]uint64{10, 30})
	badBounds.Observe(25)
	if err := a.Merge(badBounds); err == nil {
		t.Fatal("merge accepted mismatched bounds")
	}
	badLen := NewHistogram([]uint64{10, 20, 40})
	badLen.Observe(25)
	if err := a.Merge(badLen); err == nil {
		t.Fatal("merge accepted mismatched bucket counts")
	}
	if a.Count() != 1 || a.Sum() != 5 {
		t.Fatalf("failed merge mutated the target: count=%d sum=%d", a.Count(), a.Sum())
	}

	// Nil-safety on both sides, and empty sources with different bounds
	// are a no-op rather than an error (nothing to merge).
	var nilH *Histogram
	if err := nilH.Merge(a); err != nil {
		t.Fatalf("merge into nil: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge of nil: %v", err)
	}
	if err := a.Merge(NewHistogram([]uint64{1})); err != nil {
		t.Fatalf("merge of empty mismatched source: %v", err)
	}
	if a.Count() != 1 {
		t.Fatalf("no-op merges changed the target: count=%d", a.Count())
	}
}
