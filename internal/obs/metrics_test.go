package obs

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(3)
	if nilC.Value() != 0 {
		t.Error("nil counter counted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Errorf("count=%d sum=%d, want 5/5126", h.Count(), h.Sum())
	}
	// Bounds are inclusive: 10 -> le10, 100 -> le100, 5000 -> overflow.
	if h.counts[0] != 2 || h.counts[1] != 2 || h.counts[2] != 1 {
		t.Errorf("bucket counts = %v, want [2 2 1]", h.counts)
	}
	if got := h.Mean(); got != 5126.0/5 {
		t.Errorf("Mean = %v", got)
	}
	if NewHistogram(nil).Mean() != 0 {
		t.Error("empty histogram mean not zero-guarded")
	}
	var nilH *Histogram
	nilH.Observe(3)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Mean() != 0 {
		t.Error("nil histogram recorded")
	}
}

func TestRegistrySharesCountersByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("driver.nvme.retries")
	a.Add(3)
	// A respawned driver generation resolves the same name and keeps
	// accumulating into the same counter.
	b := r.Counter("driver.nvme.retries")
	b.Inc()
	if a != b || a.Value() != 4 {
		t.Errorf("counters not shared: a=%p b=%p value=%d", a, b, a.Value())
	}

	var nilR *Registry
	if nilR.Counter("x") != nil || nilR.Histogram("x", nil) != nil {
		t.Error("nil registry handed out live metrics")
	}
	nilR.Gauge("x", func() uint64 { return 1 })
	if err := nilR.WriteText(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestGaugeReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.Gauge("supervisor.restarts", func() uint64 { return 1 })
	r.Gauge("supervisor.restarts", func() uint64 { return 2 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "gauge supervisor.restarts 2\n"; got != want {
		t.Errorf("dump = %q, want %q", got, want)
	}
}

func TestWriteTextDeterministicDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Inc()
	r.Gauge("g", func() uint64 { return 9 })
	h := r.Histogram("lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	want := "counter a.count 1\n" +
		"counter b.count 2\n" +
		"gauge g 9\n" +
		"hist lat count=3 sum=555 mean=185.0 le10=1 le100=1 +inf=1\n"
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("dump:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 40, 80})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 samples: 50 in le10, 40 in le20, 9 in le40, 1 overflow.
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(15)
	}
	for i := 0; i < 9; i++ {
		h.Observe(30)
	}
	h.Observe(1000)
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.25, 10}, {0.5, 10}, {0.9, 20}, {0.99, 40},
		{0.999, 160}, // overflow saturates to 2x last bound
		{1.0, 160},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	var nilH *Histogram
	if nilH.Quantile(0.99) != 0 {
		t.Fatal("nil histogram quantile should be 0")
	}
}
