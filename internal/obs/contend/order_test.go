package contend

import (
	"strings"
	"testing"

	"atmosphere/internal/hw"
)

func TestOrderTransitivity(t *testing.T) {
	d := NewOrder()
	d.Declare("a", "b")
	d.Declare("b", "c")
	if !d.Allows("a", "b") || !d.Allows("b", "c") {
		t.Fatal("declared edges not allowed")
	}
	if !d.Allows("a", "c") {
		t.Error("transitive a -> c not allowed")
	}
	if d.Allows("c", "a") || d.Allows("b", "a") {
		t.Error("reverse edges allowed")
	}
	if d.Allows("a", "a") {
		t.Error("undeclared self-nesting allowed")
	}
	// Declaring after existing predecessors still closes transitively.
	d.Declare("c", "d")
	if !d.Allows("a", "d") || !d.Allows("b", "d") {
		t.Error("late edge not closed against predecessors")
	}
}

func TestOrderCyclePanics(t *testing.T) {
	d := NewOrder()
	d.Declare("a", "b")
	d.Declare("b", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("declaring a cycle did not panic")
		}
	}()
	d.Declare("c", "a")
}

func TestKernelOrder(t *testing.T) {
	d := KernelOrder()
	if !d.Allows("big", "container") || !d.Allows("container", "endpoint") || !d.Allows("big", "endpoint") {
		t.Fatal("kernel ordering incomplete")
	}
	if d.Allows("endpoint", "big") || d.Allows("container", "big") {
		t.Fatal("kernel ordering reversed")
	}
}

// plantInversion builds an observatory with two locks and acquires them
// against the declared order on core 1.
func plantInversion() *Observatory {
	o := New()
	la := &hw.LockSim{}
	la.SetIdentity("big", "kernel")
	la.Enable()
	lb := &hw.LockSim{}
	lb.SetIdentity("endpoint", "e7")
	lb.Enable()
	ida := o.Register(la)
	idb := o.Register(lb)
	o.ArmOrder(KernelOrder(), 2)

	// Correct order first (big then endpoint): no inversion.
	o.Acquired(0, ida, "syscall")
	o.Acquired(0, idb, "ipc_send")
	o.Released(0, idb)
	o.Released(0, ida)

	// Inverted on core 1: endpoint held, then big taken.
	o.Acquired(1, idb, "edpt_poll")
	o.Acquired(1, ida, "syscall")
	o.Released(1, ida)
	o.Released(1, idb)
	return o
}

// TestPlantedInversion is the checker's self-test: a seeded lock-order
// inversion must be caught, and the report must name both acquisition
// sites and both lock classes, deterministically.
func TestPlantedInversion(t *testing.T) {
	o := plantInversion()
	if got := o.InversionCount(); got != 1 {
		t.Fatalf("InversionCount = %d, want 1", got)
	}
	v := o.FirstInversion()
	if v == nil {
		t.Fatal("no inversion captured")
	}
	if v.Core != 1 {
		t.Errorf("Core = %d, want 1", v.Core)
	}
	if v.HeldClass != "endpoint" || v.HeldSite != "edpt_poll" {
		t.Errorf("held = %s@%s, want endpoint@edpt_poll", v.HeldClass, v.HeldSite)
	}
	if v.AcqClass != "big" || v.AcqSite != "syscall" {
		t.Errorf("acq = %s@%s, want big@syscall", v.AcqClass, v.AcqSite)
	}

	// The rendered report is byte-deterministic across fresh runs.
	want := `lock-order inversion on core 1: acquiring big/kernel at "syscall" while holding endpoint/e7 acquired at "edpt_poll" (no endpoint -> big edge declared)`
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := plantInversion().FirstInversion().String(); got != want {
		t.Errorf("second run rendered %q", got)
	}
}

func TestOrderDisarmedIsSilent(t *testing.T) {
	o := New()
	l := &hw.LockSim{}
	l.SetIdentity("endpoint", "e0")
	l.Enable()
	id := o.Register(l)
	o.Acquired(0, id, "x") // disarmed: no stacks, no checks
	if o.InversionCount() != 0 || o.FirstInversion() != nil {
		t.Fatal("disarmed checker recorded state")
	}
	var sb strings.Builder
	if err := o.WriteOrder(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "order disarmed") {
		t.Errorf("order section = %q", sb.String())
	}
}

func TestReleasedOutOfOrder(t *testing.T) {
	o := New()
	mk := func(class string) LockID {
		l := &hw.LockSim{}
		l.SetIdentity(class, "0")
		l.Enable()
		return o.Register(l)
	}
	d := NewOrder()
	d.Declare("a", "b")
	ida, idb := mk("a"), mk("b")
	o.ArmOrder(d, 1)
	// Non-LIFO release: a released while b still held must unwind the
	// right entry, and re-acquiring a while b is held must trip.
	o.Acquired(0, ida, "s1")
	o.Acquired(0, idb, "s2")
	o.Released(0, ida)
	o.Acquired(0, ida, "s3")
	if o.InversionCount() != 1 {
		t.Fatalf("InversionCount = %d, want 1 (b held, a acquired)", o.InversionCount())
	}
	v := o.FirstInversion()
	if v.HeldSite != "s2" || v.AcqSite != "s3" {
		t.Errorf("inversion sites = %s/%s, want s2/s3", v.HeldSite, v.AcqSite)
	}
}
