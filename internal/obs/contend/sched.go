package contend

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
)

// The scheduler delay stream. Observatory implements pm.SchedObserver
// structurally (pm.Ptr is an alias of hw.PhysAddr, so the signatures
// match without importing pm): ready→running run-queue delays feed
// per-core and per-container histograms, steals record their
// thief←victim provenance, and blocked-on edges accumulate per
// (container, endpoint). With a tracer attached, steals and blocks also
// land as instants on a machine-wide "sched" track.

// stealPair keys steal provenance: thief took work from victim.
type stealPair struct {
	thief, victim int
}

// blockEdge keys blocked-on edges: a thread of container cntr blocked
// on endpoint on.
type blockEdge struct {
	cntr, on hw.PhysAddr
}

type schedState struct {
	allDelay  *obs.Histogram
	coreDelay []*obs.Histogram
	cntrDelay map[hw.PhysAddr]*obs.Histogram

	steals     uint64
	stealProv  map[stealPair]uint64
	blocked    uint64
	blockEdges map[blockEdge]uint64

	track    obs.TrackID
	nSteal   obs.NameID
	nBlocked obs.NameID
}

func newSchedState() schedState {
	return schedState{
		allDelay:   obs.NewHistogram(nil),
		cntrDelay:  make(map[hw.PhysAddr]*obs.Histogram),
		stealProv:  make(map[stealPair]uint64),
		blockEdges: make(map[blockEdge]uint64),
	}
}

// RunqDelay implements pm.SchedObserver: one ready→running transition
// of a thread of container cntr on core, after delay cycles queued.
func (o *Observatory) RunqDelay(core int, cntr hw.PhysAddr, delay, now uint64) {
	if o == nil {
		return
	}
	s := &o.sched
	s.allDelay.Observe(delay)
	o.mrunq.Observe(delay) // nil-safe when no registry
	for core >= len(s.coreDelay) {
		s.coreDelay = append(s.coreDelay, nil)
	}
	if s.coreDelay[core] == nil {
		s.coreDelay[core] = obs.NewHistogram(nil)
	}
	s.coreDelay[core].Observe(delay)
	h, ok := s.cntrDelay[cntr]
	if !ok {
		h = obs.NewHistogram(nil)
		s.cntrDelay[cntr] = h
	}
	h.Observe(delay)
}

// Steal implements pm.SchedObserver: thief migrated thrd (of container
// cntr) off victim's queue. The provenance instant's argument packs
// thief and victim so the trace shows who raided whom.
func (o *Observatory) Steal(thief, victim int, thrd, cntr hw.PhysAddr, now uint64) {
	if o == nil {
		return
	}
	s := &o.sched
	s.steals++
	s.stealProv[stealPair{thief, victim}]++
	if o.trace != nil {
		o.trace.Instant(s.track, s.nSteal, now, uint64(thief)<<32|uint64(victim))
	}
}

// Blocked implements pm.SchedObserver: a thread of container cntr
// blocked on endpoint on (an IPC rendezvous edge).
func (o *Observatory) Blocked(thrd, cntr, on hw.PhysAddr, now uint64) {
	if o == nil {
		return
	}
	s := &o.sched
	s.blocked++
	s.blockEdges[blockEdge{cntr: cntr, on: on}]++
	if o.trace != nil {
		o.trace.Instant(s.track, s.nBlocked, now, uint64(on))
	}
}

// Steals returns the observed steal count.
func (o *Observatory) Steals() uint64 {
	if o == nil {
		return 0
	}
	return o.sched.steals
}

// RunqDelays returns the merged ready→running delay histogram.
func (o *Observatory) RunqDelays() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.sched.allDelay
}
