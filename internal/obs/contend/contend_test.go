package contend

import (
	"strings"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
)

// lock builds an enabled, identified LockSim.
func lock(class, inst string) *hw.LockSim {
	l := &hw.LockSim{}
	l.SetIdentity(class, inst)
	l.Enable()
	return l
}

func TestRegisterIdentities(t *testing.T) {
	o := New()
	a := lock("big", "kernel")
	b := lock("endpoint", "e0")
	anon := &hw.LockSim{}
	anon.Enable()

	ida := o.Register(a)
	idb := o.Register(b)
	idanon := o.Register(anon)
	if ida == idb || ida == idanon {
		t.Fatalf("ids not distinct: %d %d %d", ida, idb, idanon)
	}
	if got := o.Register(a); got != ida {
		t.Fatalf("re-register returned %d, want %d", got, ida)
	}
	locks := o.Locks()
	want := []string{"big/kernel", "endpoint/e0", "lock/2"}
	if len(locks) != len(want) {
		t.Fatalf("Locks() = %v", locks)
	}
	for i := range want {
		if locks[i] != want[i] {
			t.Errorf("lock %d = %q, want %q", i, locks[i], want[i])
		}
	}

	// A second lock with the same identity gets a distinguishing suffix.
	a2 := lock("big", "kernel")
	o.Register(a2)
	if got := o.Locks()[3]; got != "big/kernel#1" {
		t.Errorf("duplicate identity registered as %q, want big/kernel#1", got)
	}
}

func TestWaitAttributionAndQueueDepth(t *testing.T) {
	o := New()
	l := lock("big", "kernel")
	id := o.Register(l)

	// Three cores arrive at t=0; FIFO service, 100 cycles each.
	for core := 0; core < 3; core++ {
		wait := l.Acquire(0)
		o.AttributeWait(id, "call", 7, core, wait)
		l.Release(wait + 100)
	}
	a, c, w := l.Stats()
	if a != 3 || c != 2 || w != 100+200 {
		t.Fatalf("Stats = %d/%d/%d, want 3/2/300", a, c, w)
	}
	st := o.locks[id]
	if st.maxDepth != 2 {
		t.Errorf("maxDepth = %d, want 2 (two arrivals queued ahead of the third)", st.maxDepth)
	}
	if st.waitHist.Count() != 2 || st.waitHist.Sum() != 300 {
		t.Errorf("waitHist = %d/%d, want 2 samples summing 300", st.waitHist.Count(), st.waitHist.Sum())
	}

	var sb strings.Builder
	if err := o.WriteAttribution(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, wantLine := range []string{
		"wait big/kernel sys=call cntr=cntr-7 core=2 count=1 contended=1 waitcycles=200",
		"wait big/kernel sys=call cntr=cntr-7 core=1 count=1 contended=1 waitcycles=100",
		"wait big/kernel sys=call cntr=cntr-7 core=0 count=1 contended=0 waitcycles=0",
	} {
		if !strings.Contains(got, wantLine) {
			t.Errorf("attribution missing %q in:\n%s", wantLine, got)
		}
	}
	// Most wait first.
	if strings.Index(got, "core=2") > strings.Index(got, "core=1") {
		t.Errorf("attribution not sorted by wait desc:\n%s", got)
	}
}

func TestQueueDepthPruning(t *testing.T) {
	o := New()
	l := lock("big", "kernel")
	id := o.Register(l)
	// Serial uncontended acquisitions: queue must stay empty.
	now := uint64(0)
	for i := 0; i < 10; i++ {
		w := l.Acquire(now)
		if w != 0 {
			t.Fatalf("unexpected wait %d", w)
		}
		now += 100
		l.Release(now)
		now += 100 // idle gap: next arrival is after the frontier
	}
	if st := o.locks[id]; st.maxDepth != 0 {
		t.Errorf("maxDepth = %d for serial acquisitions, want 0", st.maxDepth)
	}
	if st := o.locks[id]; len(st.pending) > 1 {
		t.Errorf("pending grew to %d entries, want pruned", len(st.pending))
	}
}

func TestCounterTracks(t *testing.T) {
	o := New()
	tr := obs.NewTracer(1024)
	o.AttachTrace(tr)
	l := lock("big", "kernel")
	o.Register(l)

	l.Acquire(0)
	l.Release(100)
	l.Acquire(0) // contended: wait 100
	l.Release(200)

	var counters int
	var lastWait uint64
	for _, e := range tr.Events() {
		if e.Kind != obs.KindCounter {
			continue
		}
		counters++
		if tr.NameOf(e.Name) == "lock.big.kernel.waitcycles" {
			lastWait = e.Arg
		}
	}
	if counters == 0 {
		t.Fatal("no counter events recorded")
	}
	if lastWait != 100 {
		t.Errorf("cumulative wait counter = %d, want 100", lastWait)
	}
	// Counter events must be on a MachinePID track so per-core trace
	// hashes stay comparable with and without the observatory.
	for _, e := range tr.Events() {
		if e.Kind == obs.KindCounter {
			if pid := tr.Tracks()[e.Track].PID; pid != obs.MachinePID {
				t.Fatalf("counter on pid %d, want MachinePID", pid)
			}
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	o := New()
	l := lock("big", "kernel")
	id := o.Register(l)
	w := l.Acquire(0)
	l.Release(100)
	o.AttributeWait(id, "call", 0, 0, w)
	o.RunqDelay(0, 3, 500, 1000)

	m := obs.NewRegistry()
	o.RegisterMetrics(m)
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"gauge contend.lock.big.kernel.acquisitions 1",
		"gauge contend.order.inversions 0",
		"hist contend.class.big.wait.cycles",
		"hist contend.runq.delay.cycles count=1 sum=500",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics dump missing %q in:\n%s", want, got)
		}
	}
}

func TestReportDeterminism(t *testing.T) {
	build := func() string {
		o := New()
		l := lock("big", "kernel")
		id := o.Register(l)
		for core := 0; core < 4; core++ {
			w := l.Acquire(uint64(core) * 10)
			o.AttributeWait(id, "call", hw.PhysAddr(0x1000*(core%2+1)), core, w)
			l.Release(uint64(core)*10 + w + 80)
		}
		o.NameContainer(0x1000, "root")
		o.RunqDelay(1, 0x1000, 250, 9000)
		o.RunqDelay(0, 0x2000, 750, 9100)
		o.Steal(1, 0, 0x77, 0x1000, 9200)
		o.Blocked(0x77, 0x1000, 0x5000, 9300)
		o.ArmOrder(KernelOrder(), 4)
		var sb strings.Builder
		if err := o.WriteReport(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("report not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"== contention: locks ==",
		"lock big/kernel ",
		"runq core0 ",
		"runq cntr=root ",
		"steal core1<-core0 count=1",
		"blocked cntr=root on=0x5000 count=1",
		"order rule big -> container",
		"order inversions=0",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q in:\n%s", want, a)
		}
	}
}
