package contend

import (
	"fmt"
	"io"
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
)

// The contention report: plain text, sorted within every section, so
// equal runs render byte-identically — the property the CLI determinism
// checks and golden diffs rely on.

func sortStrings(s []string) { sort.Strings(s) }

// LockSummary is one row of the top-contended table.
type LockSummary struct {
	Ident        string // "class/instance"
	Acquisitions uint64
	Contended    uint64
	WaitCycles   uint64
	MaxQueue     uint64
	P50, P99     uint64 // wait-cycle quantiles over contended acquisitions
}

// Summary builds the per-lock rows sorted most-contended first (by wait
// cycles, then identity for a stable total order).
func (o *Observatory) Summary() []LockSummary {
	if o == nil {
		return nil
	}
	out := make([]LockSummary, 0, len(o.locks))
	for _, st := range o.locks {
		a, c, w := st.sim.Stats()
		out = append(out, LockSummary{
			Ident:        st.class + "/" + st.inst,
			Acquisitions: a, Contended: c, WaitCycles: w,
			MaxQueue: st.maxDepth,
			P50:      st.waitHist.Quantile(0.50),
			P99:      st.waitHist.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitCycles != out[j].WaitCycles {
			return out[i].WaitCycles > out[j].WaitCycles
		}
		return out[i].Ident < out[j].Ident
	})
	return out
}

// ClassSummary is one row of the by-class rollup: every frontier of a
// class (dozens of endpoints, one row) merged into aggregate counts and
// a merged wait distribution.
type ClassSummary struct {
	Class        string
	Locks        int // frontiers registered under the class
	Acquisitions uint64
	Contended    uint64
	WaitCycles   uint64
	MaxQueue     uint64 // deepest holder queue any instance saw
	P50, P99     uint64 // quantiles over the merged wait histogram
}

// ByClass rolls the per-lock rows up into one row per class, sorted
// most-contended first (wait cycles, then class name). The per-lock
// wait histograms share bounds by construction, so the class quantiles
// come from an exact merge, not an approximation over summaries.
func (o *Observatory) ByClass() []ClassSummary {
	if o == nil {
		return nil
	}
	byClass := map[string]*ClassSummary{}
	hists := map[string]*obs.Histogram{}
	var order []string
	for _, st := range o.locks {
		cs, ok := byClass[st.class]
		if !ok {
			cs = &ClassSummary{Class: st.class}
			byClass[st.class] = cs
			hists[st.class] = obs.NewHistogram(nil)
			order = append(order, st.class)
		}
		a, c, w := st.sim.Stats()
		cs.Locks++
		cs.Acquisitions += a
		cs.Contended += c
		cs.WaitCycles += w
		if st.maxDepth > cs.MaxQueue {
			cs.MaxQueue = st.maxDepth
		}
		// Identical bounds by construction; Merge cannot fail.
		_ = hists[st.class].Merge(st.waitHist)
	}
	out := make([]ClassSummary, 0, len(order))
	for _, class := range order {
		cs := byClass[class]
		cs.P50 = hists[class].Quantile(0.50)
		cs.P99 = hists[class].Quantile(0.99)
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitCycles != out[j].WaitCycles {
			return out[i].WaitCycles > out[j].WaitCycles
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// WriteLocksByClass writes the by-class rollup table — the view that
// keeps a sharded kernel's report readable when dozens of per-endpoint
// frontiers would otherwise flood the per-lock table.
func (o *Observatory) WriteLocksByClass(w io.Writer) error {
	if o == nil {
		return nil
	}
	for _, c := range o.ByClass() {
		if _, err := fmt.Fprintf(w, "class %s locks=%d acq=%d contended=%d waitcycles=%d maxqueue=%d p50=%d p99=%d\n",
			c.Class, c.Locks, c.Acquisitions, c.Contended, c.WaitCycles, c.MaxQueue, c.P50, c.P99); err != nil {
			return err
		}
	}
	return nil
}

// WriteLocks writes the top-contended lock table.
func (o *Observatory) WriteLocks(w io.Writer) error {
	if o == nil {
		return nil
	}
	for _, l := range o.Summary() {
		if _, err := fmt.Fprintf(w, "lock %s acq=%d contended=%d waitcycles=%d maxqueue=%d p50=%d p99=%d\n",
			l.Ident, l.Acquisitions, l.Contended, l.WaitCycles, l.MaxQueue, l.P50, l.P99); err != nil {
			return err
		}
	}
	return nil
}

// WriteAttribution writes the wait-attribution table: one row per
// (lock, syscall, container, core) cell, most wait first, ties broken
// by the row key so the order is total.
func (o *Observatory) WriteAttribution(w io.Writer) error {
	if o == nil {
		return nil
	}
	type row struct {
		key  attrKey
		line string
		wait uint64
		sort string
	}
	rows := make([]row, 0, len(o.rows))
	for k, r := range o.rows {
		ident := "?"
		if int(k.lock) < len(o.locks) {
			st := o.locks[k.lock]
			ident = st.class + "/" + st.inst
		}
		rows = append(rows, row{
			key:  k,
			wait: r.wait,
			sort: fmt.Sprintf("%s %s %s %d", ident, k.sys, o.nameOf(k.cntr), k.core),
			line: fmt.Sprintf("wait %s sys=%s cntr=%s core=%d count=%d contended=%d waitcycles=%d",
				ident, k.sys, o.nameOf(k.cntr), k.core, r.count, r.contended, r.wait),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].wait != rows[j].wait {
			return rows[i].wait > rows[j].wait
		}
		return rows[i].sort < rows[j].sort
	})
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r.line); err != nil {
			return err
		}
	}
	return nil
}

// WriteSched writes the run-queue delay, steal-provenance, and
// blocked-edge tables.
func (o *Observatory) WriteSched(w io.Writer) error {
	if o == nil {
		return nil
	}
	s := &o.sched
	for core, h := range s.coreDelay {
		if h == nil || h.Count() == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "runq core%d count=%d mean=%.1f p50=%d p99=%d\n",
			core, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	cntrs := make([]string, 0, len(s.cntrDelay))
	byName := make(map[string]hw.PhysAddr, len(s.cntrDelay))
	for c := range s.cntrDelay {
		n := o.nameOf(c)
		cntrs = append(cntrs, n)
		byName[n] = c
	}
	sort.Strings(cntrs)
	for _, n := range cntrs {
		h := s.cntrDelay[byName[n]]
		if _, err := fmt.Fprintf(w, "runq cntr=%s count=%d mean=%.1f p50=%d p99=%d\n",
			n, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	pairs := make([]stealPair, 0, len(s.stealProv))
	for p := range s.stealProv {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].thief != pairs[j].thief {
			return pairs[i].thief < pairs[j].thief
		}
		return pairs[i].victim < pairs[j].victim
	})
	for _, p := range pairs {
		if _, err := fmt.Fprintf(w, "steal core%d<-core%d count=%d\n", p.thief, p.victim, s.stealProv[p]); err != nil {
			return err
		}
	}
	edges := make([]blockEdge, 0, len(s.blockEdges))
	for e := range s.blockEdges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].cntr != edges[j].cntr {
			return edges[i].cntr < edges[j].cntr
		}
		return edges[i].on < edges[j].on
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "blocked cntr=%s on=%#x count=%d\n", o.nameOf(e.cntr), uint64(e.on), s.blockEdges[e]); err != nil {
			return err
		}
	}
	return nil
}

// WriteOrder writes the lock-order checker status: the armed DAG's
// rules and the first inversion, if any.
func (o *Observatory) WriteOrder(w io.Writer) error {
	if o == nil {
		return nil
	}
	if o.order == nil {
		_, err := fmt.Fprintln(w, "order disarmed")
		return err
	}
	for _, r := range o.order.order.Rules() {
		if _, err := fmt.Fprintf(w, "order rule %s\n", r); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "order inversions=%d\n", o.order.inversions); err != nil {
		return err
	}
	if v := o.order.first; v != nil {
		if _, err := fmt.Fprintf(w, "order first: %s\n", v); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport writes the full contention report: locks, attribution,
// scheduler, ordering.
func (o *Observatory) WriteReport(w io.Writer) error {
	if o == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "== contention: locks =="); err != nil {
		return err
	}
	if err := o.WriteLocks(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "== contention: attribution =="); err != nil {
		return err
	}
	if err := o.WriteAttribution(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "== contention: scheduler =="); err != nil {
		return err
	}
	if err := o.WriteSched(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "== contention: order =="); err != nil {
		return err
	}
	return o.WriteOrder(w)
}
