// Package contend is the contention observatory: one registry that
// every lock frontier (hw.LockSim) reports into, plus the scheduler's
// run-queue delay stream (pm.SchedObserver) and a runtime lock-order
// checker validating acquisitions against a declared ordering DAG.
//
// The kernel today has exactly one frontier — the big lock — but the
// observatory is written for 1..N: a sharded kernel registers each
// per-endpoint/per-container frontier under its class and the same
// attribution, counter tracks, and ordering checks apply unchanged.
//
// Like the rest of internal/obs, everything here only reads the
// deterministic cycle clocks and charges nothing: attaching an
// observatory cannot move a single cycle of any workload, and a
// detached one costs a nil check per hook site.
package contend

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
)

// LockID identifies one registered lock frontier within an Observatory.
type LockID int

// lockState is the per-registered-lock observation state.
type lockState struct {
	sim   *hw.LockSim
	class string
	inst  string // instance label, made unique per registration

	// waitHist distributes contended-acquisition wait cycles; per-class
	// views merge these at report time (identical bounds by
	// construction).
	waitHist *obs.Histogram

	// Queue-depth model: serveAt timestamps of acquisitions still ahead
	// of the lock's virtual timeline — an arriving core that must wait
	// queues behind every prior arrival whose service time lies beyond
	// its own arrival. Pruned on every acquisition, so the slice stays
	// as deep as the queue ever gets.
	pending []uint64

	// maxDepth is the deepest holder queue any arrival joined.
	maxDepth uint64

	// Counter-track state (lazy, only with a tracer attached): waitCum
	// is the cumulative wait-cycle counter whose slope is the lock's
	// wait rate; lastDepth dedupes queue-depth samples.
	waitCum   uint64
	lastDepth uint64
	emitted   bool // at least one counter sample written
	track     obs.TrackID
	nWait     obs.NameID
	nQueue    obs.NameID
}

// attrKey attributes wait cycles: which syscall, of which container, on
// which core, paid how long for which lock.
type attrKey struct {
	lock LockID
	sys  string
	cntr hw.PhysAddr
	core int
}

// attrRow accumulates one attribution cell.
type attrRow struct {
	count     uint64 // lock acquisitions through this cell
	contended uint64 // of which had to wait
	wait      uint64 // total wait cycles
}

// Observatory is the contention registry. Not safe for concurrent use —
// like the tracer and metrics registry it relies on the simulation's
// single-threaded execution.
type Observatory struct {
	trace *obs.Tracer

	locks  []*lockState
	lockIx map[*hw.LockSim]LockID
	insts  map[string]int // identity -> registrations, for unique labels

	rows  map[attrKey]*attrRow
	names map[hw.PhysAddr]string // container display names

	// Attached metrics registry (RegisterMetrics): per-class wait and
	// run-queue delay histograms are fed live, so a kernel re-attaching
	// the same observatory every boot never double-counts.
	metrics *obs.Registry
	mclass  map[string]*obs.Histogram
	mrunq   *obs.Histogram

	order *orderChecker // nil until ArmOrder
	sched schedState
}

// New builds an empty observatory.
func New() *Observatory {
	return &Observatory{
		lockIx: make(map[*hw.LockSim]LockID),
		insts:  make(map[string]int),
		rows:   make(map[attrKey]*attrRow),
		names:  make(map[hw.PhysAddr]string),
		sched:  newSchedState(),
	}
}

// AttachTrace wires a tracer in: per-lock Perfetto counter tracks
// (cumulative wait cycles, whose slope is the wait rate, and
// holder-queue depth) merge onto the existing trace timeline, and
// scheduler steal/blocked instants land on a machine-wide "sched"
// track. Nil detaches.
func (o *Observatory) AttachTrace(t *obs.Tracer) {
	if o == nil {
		return
	}
	o.trace = t
	if t != nil {
		o.sched.track = t.Track(obs.MachinePID, "machine", "sched")
		o.sched.nSteal = t.Name("sched.steal")
		o.sched.nBlocked = t.Name("sched.blocked")
		for _, l := range o.locks {
			o.internLockTrack(l)
		}
	}
}

// internLockTrack registers a lock's counter track and series names.
func (o *Observatory) internLockTrack(l *lockState) {
	base := "lock." + l.class + "." + l.inst
	l.track = o.trace.Track(obs.MachinePID, "machine", base)
	l.nWait = o.trace.Name(base + ".waitcycles")
	l.nQueue = o.trace.Name(base + ".queue")
}

// Register adds a lock frontier to the registry and installs the
// observatory as its observer, so every enabled acquisition and release
// reports in. Locks without an identity register as class "lock"; a
// re-registered identity gets a "#<n>" suffix so repeated boots against
// one observatory stay distinguishable (and deterministic).
func (o *Observatory) Register(l *hw.LockSim) LockID {
	if o == nil || l == nil {
		return -1
	}
	if id, ok := o.lockIx[l]; ok {
		return id
	}
	class, inst := l.Class(), l.Instance()
	if class == "" {
		class = "lock"
	}
	if inst == "" {
		inst = fmt.Sprint(len(o.locks))
	}
	key := class + "/" + inst
	if n := o.insts[key]; n > 0 {
		inst = fmt.Sprintf("%s#%d", inst, n)
	}
	o.insts[key]++
	st := &lockState{sim: l, class: class, inst: inst, waitHist: obs.NewHistogram(nil)}
	if o.trace != nil {
		o.internLockTrack(st)
	}
	id := LockID(len(o.locks))
	o.locks = append(o.locks, st)
	o.lockIx[l] = id
	l.SetObserver(o)
	if o.metrics != nil {
		o.registerLockMetrics(st)
	}
	return id
}

// LockAcquire implements hw.LockObserver: per-class wait histogram, the
// queue-depth model, and the counter tracks.
func (o *Observatory) LockAcquire(l *hw.LockSim, arrival, wait uint64) {
	id, ok := o.lockIx[l]
	if !ok {
		return
	}
	st := o.locks[id]
	// Prune arrivals already served by this lock's virtual time, then
	// count what is still ahead — the holder queue this arrival joins.
	// An entry whose service starts exactly at this arrival is still
	// ahead iff this arrival waits (a zero wait means the FIFO already
	// served it: its holder released at or before our arrival).
	keep := st.pending[:0]
	for _, serveAt := range st.pending {
		if serveAt > arrival || (serveAt == arrival && wait > 0) {
			keep = append(keep, serveAt)
		}
	}
	st.pending = keep
	depth := uint64(len(st.pending))
	if depth > st.maxDepth {
		st.maxDepth = depth
	}
	st.pending = append(st.pending, arrival+wait)
	if wait > 0 {
		st.waitHist.Observe(wait)
		st.waitCum += wait
		o.mclass[st.class].Observe(wait) // nil-safe when no registry
	}
	if o.trace != nil && (wait > 0 || depth != st.lastDepth || !st.emitted) {
		o.trace.Counter(st.track, st.nWait, arrival, st.waitCum)
		o.trace.Counter(st.track, st.nQueue, arrival, depth)
		st.lastDepth = depth
		st.emitted = true
	}
}

// LockRelease implements hw.LockObserver. The queue model keys off
// acquisition timestamps alone, so releases carry no extra signal here.
func (o *Observatory) LockRelease(l *hw.LockSim, frontier uint64) {}

// NameContainer gives a container a display name for attribution rows.
func (o *Observatory) NameContainer(c hw.PhysAddr, name string) {
	if o != nil {
		o.names[c] = name
	}
}

func (o *Observatory) nameOf(c hw.PhysAddr) string {
	if c == 0 {
		return "-"
	}
	if n, ok := o.names[c]; ok {
		return n
	}
	return fmt.Sprintf("cntr-%x", uint64(c))
}

// AttributeWait bills one pass through a lock to its (syscall,
// container, core) cell. wait may be zero — the cell still counts the
// acquisition, so contended shares are computable per cell.
func (o *Observatory) AttributeWait(id LockID, syscall string, cntr hw.PhysAddr, core int, wait uint64) {
	if o == nil || id < 0 {
		return
	}
	if syscall == "" {
		syscall = "?"
	}
	k := attrKey{lock: id, sys: syscall, cntr: cntr, core: core}
	r, ok := o.rows[k]
	if !ok {
		r = &attrRow{}
		o.rows[k] = r
	}
	r.count++
	if wait > 0 {
		r.contended++
		r.wait += wait
	}
}

// RegisterMetrics exposes the observatory in a metrics registry:
// per-lock acquisition/contention/wait gauges, per-class wait
// histograms, the run-queue delay histogram, and the inversion count.
// Already-recorded samples are folded in once; later samples feed the
// registry's histograms live, so a kernel re-attaching the same
// observatory every boot (RegisterMetrics is idempotent per registry)
// never double-counts.
func (o *Observatory) RegisterMetrics(m *obs.Registry) {
	if o == nil || m == nil || m == o.metrics {
		return
	}
	o.metrics = m
	o.mclass = make(map[string]*obs.Histogram)
	for _, st := range o.locks {
		o.registerLockMetrics(st)
	}
	m.Gauge("contend.order.inversions", func() uint64 { return o.InversionCount() })
	m.Gauge("contend.sched.steals", func() uint64 { return o.sched.steals })
	m.Gauge("contend.sched.blocked", func() uint64 { return o.sched.blocked })
	o.mrunq = m.Histogram("contend.runq.delay.cycles", nil)
	_ = o.mrunq.Merge(o.sched.allDelay)
}

// registerLockMetrics registers one lock's gauges and folds its samples
// into its class histogram.
func (o *Observatory) registerLockMetrics(st *lockState) {
	base := "contend.lock." + st.class + "." + st.inst
	o.metrics.Gauge(base+".acquisitions", func() uint64 { a, _, _ := st.sim.Stats(); return a })
	o.metrics.Gauge(base+".contended", func() uint64 { _, c, _ := st.sim.Stats(); return c })
	o.metrics.Gauge(base+".waitcycles", func() uint64 { _, _, w := st.sim.Stats(); return w })
	if _, ok := o.mclass[st.class]; !ok {
		o.mclass[st.class] = o.metrics.Histogram("contend.class."+st.class+".wait.cycles", nil)
	}
	// Bounds are identical by construction; Merge cannot fail.
	_ = o.mclass[st.class].Merge(st.waitHist)
}

// Locks returns (class, instance) identities in registration order.
func (o *Observatory) Locks() []string {
	out := make([]string, len(o.locks))
	for i, st := range o.locks {
		out[i] = st.class + "/" + st.inst
	}
	return out
}
