package contend

import (
	"fmt"
	"strings"
)

// The runtime lock-order checker. A declared ordering DAG over lock
// *classes* says which class may be acquired while another is held;
// while armed, the observatory validates every Acquired call against
// the classes already on that core's held stack and captures the first
// violation with both acquisition sites. Off by default — an unarmed
// observatory returns from Acquired/Released after one nil check — and
// armed in tests and under mck schedule exploration.

// Order is an ordering DAG over lock classes: an edge before→after
// permits acquiring an `after`-class lock while a `before`-class lock
// is held. Permissions are transitive (Declare computes the closure
// incrementally); anything undeclared — including nesting a class
// inside itself — is an inversion.
type Order struct {
	allow map[string]map[string]bool
}

// NewOrder builds an empty ordering.
func NewOrder() *Order {
	return &Order{allow: make(map[string]map[string]bool)}
}

// Declare permits acquiring class `after` while class `before` is held,
// plus everything transitivity implies. Declaring a cycle panics — an
// ordering with a cycle cannot order anything.
func (d *Order) Declare(before, after string) {
	if before != after && d.Allows(after, before) {
		panic(fmt.Sprintf("contend: ordering cycle: %s -> %s declared but %s -> %s already allowed", before, after, after, before))
	}
	d.edge(before, after)
	// Close transitively: everything that may hold `before` may now take
	// `after` and its successors; `after`'s successors become reachable
	// from `before`'s predecessors.
	for a, outs := range d.allow {
		if outs[before] || a == before {
			for b := range d.allow[after] {
				d.edge(a, b)
			}
			d.edge(a, after)
		}
	}
}

func (d *Order) edge(a, b string) {
	m, ok := d.allow[a]
	if !ok {
		m = make(map[string]bool)
		d.allow[a] = m
	}
	m[b] = true
}

// Allows reports whether class b may be acquired while class a is held.
func (d *Order) Allows(a, b string) bool {
	if d == nil {
		return true
	}
	return d.allow[a][b]
}

// Rules returns the ordering's permitted edges as "a -> b" strings,
// sorted — for the report rendering of the DAG.
func (d *Order) Rules() []string {
	if d == nil {
		return nil
	}
	var out []string
	for a, outs := range d.allow {
		for b := range outs {
			out = append(out, a+" -> "+b)
		}
	}
	sortStrings(out)
	return out
}

// KernelOrder returns the kernel's declared lock ordering
// (docs/CONCURRENCY.md "Lock ordering"): the big lock outermost, then
// container frontiers, then endpoint frontiers — the DAG the sharded
// funnel acquires every lock plan in. The container self-edge permits
// the one intra-class nesting the kernel performs: cross-container IPC
// holds the two containers of a rendezvous at once, acquired in
// ascending object address order (the plan builder sorts, so the
// nesting is still a total order). Endpoints stay strictly innermost:
// no endpoint -> container or endpoint -> big edge exists, which is
// exactly what the planted-inversion tests drive against.
func KernelOrder() *Order {
	d := NewOrder()
	d.Declare("big", "container")
	d.Declare("container", "container")
	d.Declare("container", "endpoint")
	return d
}

// heldLock is one entry of a core's held stack.
type heldLock struct {
	id   LockID
	site string
}

// Inversion captures one lock-order violation: while holding
// HeldClass/HeldInstance (acquired at HeldSite), core Core tried to
// acquire AcqClass/AcqInstance at AcqSite without a HeldClass→AcqClass
// edge in the ordering.
type Inversion struct {
	Core         int
	HeldClass    string
	HeldInstance string
	HeldSite     string
	AcqClass     string
	AcqInstance  string
	AcqSite      string
}

// String renders the deterministic two-site report.
func (v *Inversion) String() string {
	if v == nil {
		return "<no inversion>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lock-order inversion on core %d: acquiring %s/%s at %q while holding %s/%s acquired at %q (no %s -> %s edge declared)",
		v.Core, v.AcqClass, v.AcqInstance, v.AcqSite,
		v.HeldClass, v.HeldInstance, v.HeldSite,
		v.HeldClass, v.AcqClass)
	return b.String()
}

// orderChecker is the armed checker state.
type orderChecker struct {
	order      *Order
	held       [][]heldLock // per-core held stacks
	first      *Inversion
	inversions uint64
}

// ArmOrder arms the runtime lock-order checker against the given
// ordering for the given core count. Arming replaces any previous
// checker (held stacks reset); ArmOrder(nil, 0) disarms.
func (o *Observatory) ArmOrder(d *Order, cores int) {
	if o == nil {
		return
	}
	if d == nil {
		o.order = nil
		return
	}
	if cores < 1 {
		cores = 1
	}
	o.order = &orderChecker{order: d, held: make([][]heldLock, cores)}
}

// OrderArmed reports whether the checker is armed.
func (o *Observatory) OrderArmed() bool { return o != nil && o.order != nil }

// Acquired pushes lock id onto core's held stack after validating the
// acquisition against the ordering. site names the acquisition site
// ("syscall", "irq", ...) so an inversion report points at code, not
// just classes. No-op unless the checker is armed.
func (o *Observatory) Acquired(core int, id LockID, site string) {
	if o == nil || o.order == nil || id < 0 || int(id) >= len(o.locks) {
		return
	}
	c := o.order
	if core < 0 || core >= len(c.held) {
		core = 0
	}
	acq := o.locks[id]
	for _, h := range c.held[core] {
		held := o.locks[h.id]
		if !c.order.Allows(held.class, acq.class) {
			c.inversions++
			if c.first == nil {
				c.first = &Inversion{
					Core:         core,
					HeldClass:    held.class,
					HeldInstance: held.inst,
					HeldSite:     h.site,
					AcqClass:     acq.class,
					AcqInstance:  acq.inst,
					AcqSite:      site,
				}
			}
		}
	}
	c.held[core] = append(c.held[core], heldLock{id: id, site: site})
}

// Released pops lock id from core's held stack (topmost matching entry,
// so non-LIFO release orders still unwind). No-op unless armed.
func (o *Observatory) Released(core int, id LockID) {
	if o == nil || o.order == nil {
		return
	}
	c := o.order
	if core < 0 || core >= len(c.held) {
		core = 0
	}
	stack := c.held[core]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].id == id {
			c.held[core] = append(stack[:i], stack[i+1:]...)
			return
		}
	}
}

// FirstInversion returns the first captured lock-order violation (nil
// if none, or the checker never armed). First-capture is deterministic:
// same seed, same schedule, same inversion.
func (o *Observatory) FirstInversion() *Inversion {
	if o == nil || o.order == nil {
		return nil
	}
	return o.order.first
}

// InversionCount returns how many ordering violations the armed checker
// has seen (0 when disarmed).
func (o *Observatory) InversionCount() uint64 {
	if o == nil || o.order == nil {
		return 0
	}
	return o.order.inversions
}
