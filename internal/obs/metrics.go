package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// The metrics registry: named monotonic counters, fixed-bucket cycle
// histograms, and gauges (live views over external state). One registry
// serves a whole run; the kernel, drivers, supervisor, fault injector,
// and verifier all register into it, subsuming the ad-hoc per-subsystem
// counter blocks behind one interface. Like the tracer, everything is
// nil-safe and charges no cycles.

// Counter is a monotonic counter. Increments on a nil counter are
// no-ops, so call sites need no registry checks.
type Counter struct {
	v uint64
}

// NewCounter builds a standalone counter (not registered anywhere) —
// what subsystems use when no registry is attached, so their legacy
// counter views keep working unchanged.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram is a fixed-bucket histogram of uint64 samples (cycle
// latencies). Bounds are ascending inclusive upper bounds; one overflow
// bucket is implicit.
type Histogram struct {
	bounds []uint64
	counts []uint64
	sum    uint64
	n      uint64
}

// CycleBuckets is the default latency bucketing, spanning the cost
// model's range from a cache touch to a driver poll budget.
var CycleBuckets = []uint64{250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 64_000, 256_000, 1_000_000}

// NewHistogram builds a standalone histogram over the given bounds
// (CycleBuckets when nil or empty — a boundless histogram would make
// Quantile's overflow saturation ill-defined).
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = CycleBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sample total.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the sample mean (0 with no samples — the same
// divide-by-zero guard hw.Clock.PerSecond has).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile estimates the q-quantile as the upper bound of the bucket
// holding the rank-q sample — a conservative (never under-reporting)
// estimate, which is what an SLO check wants. Samples in the overflow
// bucket saturate to twice the last bound. Edge cases are pinned by
// tests: no samples returns 0, q <= 0 clamps to the first sample
// (rank 1), q >= 1 clamps to the last, and NaN reads as q = 0.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := uint64(1)
	if q > 0 { // NaN and q <= 0 keep rank 1
		rank = uint64(math.Ceil(q * float64(h.n)))
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return 2 * h.bounds[len(h.bounds)-1]
		}
	}
	return 2 * h.bounds[len(h.bounds)-1]
}

// Merge folds other's samples into h — the cross-machine aggregation
// primitive: each cluster machine observes into its own histogram on
// its own timeline, and the report merges them without re-observing.
// Both histograms must share identical bounds (bucket-exact merging is
// only defined then); a mismatch is an error and h is left untouched.
// Merging a nil or empty other, or merging into a nil h, is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil || other.n == 0 {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: histogram merge: %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return fmt.Errorf("obs: histogram merge: bucket %d bound %d vs %d", i, b, other.bounds[i])
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.n += other.n
	return nil
}

// Registry is the named-metric table. The simulation is single-threaded
// per run (syscalls serialize on the kernel big lock), so the registry
// is unsynchronized like the rest of the substrate.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() uint64),
	}
}

// Counter returns the named counter, creating it on first use. Two
// callers asking for the same name share one counter (how restarted
// driver generations accumulate). On a nil registry it returns nil,
// which is a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bounds (CycleBuckets when nil) on first use.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Gauge registers a live view: fn is read at dump time. Re-registering
// a name replaces the view (a respawned subsystem points the gauge at
// its new state).
func (r *Registry) Gauge(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.gauges[name] = fn
}

// WriteText renders the plain-text metrics dump, sorted by name within
// each section, so equal runs dump byte-identically:
//
//	counter driver.nvme.retries 12
//	gauge supervisor.restarts 1
//	hist syscall.call.cycles count=1000 sum=529000 mean=529.0 le500=1000 +inf=0
//
// Histogram buckets with zero samples are omitted except the overflow
// bucket, which always prints.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", n, r.counters[n].Value()); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", n, r.gauges[n]()); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		if _, err := fmt.Fprintf(w, "hist %s count=%d sum=%d mean=%.1f", n, h.Count(), h.Sum(), h.Mean()); err != nil {
			return err
		}
		for i, b := range h.bounds {
			if h.counts[i] != 0 {
				if _, err := fmt.Fprintf(w, " le%d=%d", b, h.counts[i]); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(w, " +inf=%d\n", h.counts[len(h.bounds)]); err != nil {
			return err
		}
	}
	return nil
}
