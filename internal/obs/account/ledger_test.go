package account

import (
	"strings"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
	"atmosphere/internal/obs"
)

const root = hw.PhysAddr(0x1000)

func testAlloc(frames int) *mem.Allocator {
	m := hw.NewPhysMem(frames)
	var clk hw.Clock
	return mem.NewAllocator(m, &clk, 1)
}

func bound(t *testing.T, frames int) (*Ledger, *mem.Allocator) {
	t.Helper()
	a := testAlloc(frames)
	l := NewLedger()
	l.Bind(a, root)
	l.NameContainer(root, "root")
	return l, a
}

func mustAudit(t *testing.T, l *Ledger) {
	t.Helper()
	if err := l.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestLedgerObjectLifecycle(t *testing.T) {
	l, a := bound(t, 64)
	l.SetContext(root)
	p, err := a.AllocPage4K(mem.OwnerProcessMgr)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ContainerPages(root); got != 1 {
		t.Fatalf("root pages = %d, want 1", got)
	}
	mustAudit(t, l)
	if err := a.FreePage(p); err != nil {
		t.Fatal(err)
	}
	if got := l.ContainerPages(root); got != 0 {
		t.Fatalf("root pages after free = %d, want 0", got)
	}
	mustAudit(t, l)
}

func TestLedgerUserRefsAndMove(t *testing.T) {
	l, a := bound(t, 64)
	other := hw.PhysAddr(0x2000)
	l.NameContainer(other, "other")
	l.SetContext(root)
	p, err := a.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.IncRef(p); err != nil { // sender grants a second ref
		t.Fatal(err)
	}
	mustAudit(t, l)
	l.MoveRef(p, root, InFlight)
	mustAudit(t, l) // per-page totals unchanged by a move
	l.MoveRef(p, InFlight, other)
	if got := l.ContainerPages(other); got != 1 {
		t.Fatalf("other pages = %d, want 1", got)
	}
	// Receiver unmaps its ref; root's original ref frees the page.
	l.SetContext(other)
	if _, err := a.DecRef(p); err != nil {
		t.Fatal(err)
	}
	l.SetContext(root)
	if _, err := a.DecRef(p); err != nil {
		t.Fatal(err)
	}
	if got := l.LivePages(); got != 0 {
		t.Fatalf("live = %d, want 0", got)
	}
	if got := l.Anomalies(); got != 0 {
		t.Fatalf("anomalies = %d, want 0", got)
	}
	mustAudit(t, l)
}

func TestLedgerSuperpageCounts4KUnits(t *testing.T) {
	l, a := bound(t, 1024)
	l.SetContext(root)
	if _, err := a.Merge2M(); err != nil {
		t.Fatal(err)
	}
	p, err := a.AllocUserPage(mem.Size2M)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ContainerPages(root); got != hw.Pages4KPer2M {
		t.Fatalf("root pages = %d, want %d", got, hw.Pages4KPer2M)
	}
	if l.Watermark() != hw.Pages4KPer2M {
		t.Fatalf("watermark = %d", l.Watermark())
	}
	mustAudit(t, l)
	if _, err := a.DecRef(p); err != nil {
		t.Fatal(err)
	}
	mustAudit(t, l)
}

// TestLedgerDetectsLeak is the auditor's negative test: a page freed
// behind the ledger's back must fail the audit naming the container
// that held it and the page delta.
func TestLedgerDetectsLeak(t *testing.T) {
	l, a := bound(t, 64)
	l.SetContext(root)
	p, err := a.AllocPage4K(mem.OwnerPageTable)
	if err != nil {
		t.Fatal(err)
	}
	mustAudit(t, l)
	a.SetObserver(nil) // the leak: lifecycle event the ledger never sees
	if err := a.FreePage(p); err != nil {
		t.Fatal(err)
	}
	a.SetObserver(l.PageEvent)
	err = l.Audit()
	if err == nil {
		t.Fatal("audit passed despite a page freed behind the ledger")
	}
	if !strings.Contains(err.Error(), "root") {
		t.Fatalf("audit error does not name the container: %v", err)
	}
	if !strings.Contains(err.Error(), "delta") {
		t.Fatalf("audit error does not give a page delta: %v", err)
	}
	_, fails := l.AuditStats()
	if fails != 1 {
		t.Fatalf("auditFails = %d, want 1", fails)
	}
}

func TestLedgerDetectsHiddenAlloc(t *testing.T) {
	l, a := bound(t, 64)
	a.SetObserver(nil)
	if _, err := a.AllocPage4K(mem.OwnerIOMMU); err != nil {
		t.Fatal(err)
	}
	a.SetObserver(l.PageEvent)
	if err := l.Audit(); err == nil {
		t.Fatal("audit passed despite a page allocated behind the ledger")
	}
}

func TestLedgerSeedsExistingState(t *testing.T) {
	a := testAlloc(64)
	po, err := a.AllocPage4K(mem.OwnerProcessMgr)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := a.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.IncRef(pu); err != nil {
		t.Fatal(err)
	}
	l := NewLedger()
	l.Bind(a, root)
	if got := l.ContainerPages(root); got != 2 {
		t.Fatalf("seeded root pages = %d, want 2", got)
	}
	mustAudit(t, l)
	_ = po
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.SetContext(root)
	l.SwapContext(root)
	l.PageEvent(mem.OpAllocObj, 0x1000, mem.Size4K)
	l.MoveRef(0x1000, root, InFlight)
	l.Attribute(0x1000, root)
	l.ChargeCycles(root, 10)
	l.NameContainer(root, "x")
	l.SetAuditEvery(1)
	l.RegisterMetrics(nil)
	l.RegisterContainerMetrics(nil, "x", root)
	if l.Rows() != nil || l.ContainerPages(root) != 0 || l.LivePages() != 0 ||
		l.Watermark() != 0 || l.Anomalies() != 0 || l.FragPercent() != 0 {
		t.Fatal("nil ledger returned nonzero state")
	}
	if err := l.Audit(); err != nil {
		t.Fatalf("nil audit: %v", err)
	}
	if err := l.MaybeAudit(); err != nil {
		t.Fatalf("nil maybe-audit: %v", err)
	}
}

func TestLedgerRowsAndMetrics(t *testing.T) {
	l, a := bound(t, 64)
	l.SetContext(root)
	if _, err := a.AllocPage4K(mem.OwnerProcessMgr); err != nil {
		t.Fatal(err)
	}
	l.ChargeCycles(root, 1234)
	rows := l.Rows()
	if len(rows) != 1 || rows[0].Name != "root" || rows[0].Cycles != 1234 || rows[0].Pages() != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := obs.NewRegistry()
	l.RegisterMetrics(r)
	l.RegisterContainerMetrics(r, "root", root)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"account.pages.live 1",
		"account.cntr.root.cycles 1234",
		"account.cntr.root.pages 1",
		"account.audit_failures 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
}

func TestLedgerMaybeAuditPeriod(t *testing.T) {
	l, a := bound(t, 64)
	l.SetAuditEvery(3)
	_ = a
	for i := 0; i < 7; i++ {
		if err := l.MaybeAudit(); err != nil {
			t.Fatal(err)
		}
	}
	audits, _ := l.AuditStats()
	if audits != 2 {
		t.Fatalf("audits = %d, want 2", audits)
	}
}
