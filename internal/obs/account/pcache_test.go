package account

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

// The audit must hold at every point of a per-core cache lifecycle —
// refill, hand-out, take-back, drain — including while an IPC grant
// reference is parked in-flight between sender and receiver.
func TestAuditWithPageCacheAndInFlightGrant(t *testing.T) {
	l, a := bound(t, 128)
	cntrA := hw.PhysAddr(0x2000)
	cntrB := hw.PhysAddr(0x3000)
	l.NameContainer(cntrA, "sender")
	l.NameContainer(cntrB, "receiver")
	cc := mem.NewCoreCaches(a, 2, 4)

	// Core 0 allocates for the sender: three batch refills (4 frames
	// each into the page-cache) with hand-outs interleaved.
	l.SetContext(cntrA)
	var pagesA []hw.PhysAddr
	for i := 0; i < 9; i++ {
		p, _, err := cc.AllocUser4K(0)
		if err != nil {
			t.Fatalf("core 0 alloc %d: %v", i, err)
		}
		pagesA = append(pagesA, p)
	}
	mustAudit(t, l)
	if got := l.ContainerPages(PageCache); got != 3 {
		t.Fatalf("page-cache holds %d pages after refills, want 3", got)
	}

	// Core 1 allocates for the receiver concurrently (its own refill).
	l.SetContext(cntrB)
	pB, _, err := cc.AllocUser4K(1)
	if err != nil {
		t.Fatalf("core 1 alloc: %v", err)
	}
	mustAudit(t, l)

	// Sender grants a page over IPC: the sender duplicates its ref and
	// the duplicate moves to in-flight. The audit must still balance
	// with the grant in transit...
	l.SetContext(cntrA)
	if err := a.IncRef(pagesA[0]); err != nil {
		t.Fatalf("IncRef: %v", err)
	}
	l.MoveRef(pagesA[0], cntrA, InFlight)
	mustAudit(t, l)
	if got := l.ContainerPages(InFlight); got != 1 {
		t.Fatalf("in-flight holds %d pages, want 1", got)
	}

	// ...and while cache refill/drain churns around it: freeing the
	// other eight frames on core 0 overfills its cache past 2x batch,
	// forcing an overflow drain back to the global free list.
	l.SetContext(cntrA)
	for _, p := range pagesA[1:] {
		if _, err := cc.FreeUser4K(0, p); err != nil {
			t.Fatalf("cache free: %v", err)
		}
	}
	if n := cc.Len(0); n > 8 {
		t.Fatalf("core 0 cache holds %d frames, overflow drain never ran", n)
	}
	l.SetContext(cntrB)
	if _, err := cc.FreeUser4K(1, pB); err != nil {
		t.Fatalf("core 1 cache free: %v", err)
	}
	mustAudit(t, l)

	// Grant delivered: in-flight ref lands on the receiver.
	l.MoveRef(pagesA[0], InFlight, cntrB)
	mustAudit(t, l)
	if got := l.ContainerPages(cntrB); got != 1 {
		t.Fatalf("receiver holds %d pages after delivery, want 1", got)
	}

	// Full teardown: both refs on the granted page dropped, caches
	// drained. Everything returns to the free list and the audit, live
	// count, and page-cache closure all read empty.
	l.SetContext(cntrB)
	if _, err := a.DecRef(pagesA[0]); err != nil {
		t.Fatalf("receiver DecRef: %v", err)
	}
	l.SetContext(cntrA)
	if _, err := a.DecRef(pagesA[0]); err != nil {
		t.Fatalf("sender DecRef: %v", err)
	}
	if err := cc.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	mustAudit(t, l)
	if got := l.ContainerPages(PageCache); got != 0 {
		t.Fatalf("page-cache still holds %d pages after drain", got)
	}
	if l.Anomalies() != 0 {
		t.Fatalf("%d attribution anomalies", l.Anomalies())
	}
}

// The page-cache pseudo-container renders by name in ledger rows.
func TestPageCacheRowName(t *testing.T) {
	l, a := bound(t, 64)
	cc := mem.NewCoreCaches(a, 1, 2)
	l.SetContext(root)
	if _, _, err := cc.AllocUser4K(0); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	found := false
	for _, r := range l.Rows() {
		if r.Cntr == PageCache {
			found = true
			if r.Name != "page-cache" {
				t.Fatalf("page-cache row named %q", r.Name)
			}
			if r.ObjPages != 1 {
				t.Fatalf("page-cache row has %d obj pages, want 1", r.ObjPages)
			}
		}
	}
	if !found {
		t.Fatalf("no page-cache row in %v", l.Rows())
	}
}
